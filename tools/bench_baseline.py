#!/usr/bin/env python3
"""Validate a bench_throughput JSON report and diff it against the committed
baseline.

The sweep report is deterministic except for wall-clock measurements: the
per-trial RNG streams are a pure function of (base seed, cell, trial), so
every science metric (interactions, parallel_time, stabilized, ...) must
reproduce bit-for-bit on any host at the pinned smoke scale. This script

  1. fails (exit 2) when the report is not parseable JSON or is missing the
     sweep structure — the "malformed JSON" CI gate;
  2. strips the wall-clock metrics (`wall_seconds` and anything derived from
     it) plus scheduler timing params, canonicalizes, and byte-compares with
     the baseline (exit 1 on drift);
  3. with --update, rewrites the baseline from the report instead.

Usage:
  tools/bench_baseline.py REPORT [--baseline bench/baselines/BENCH_throughput.json]
  tools/bench_baseline.py REPORT --update
"""

import argparse
import json
import pathlib
import sys

WALL_CLOCK_METRICS = {"wall_seconds", "interactions_per_second", "speedup"}
WALL_CLOCK_PARAMS = {"static_seconds", "stealing_seconds", "speedup"}


def canonicalize(report):
    """Drops timing data, keeps every deterministic field, sorts keys."""
    if not isinstance(report, dict) or "cells" not in report:
        raise ValueError("not a sweep report: no top-level 'cells' array")
    for cell in report["cells"]:
        cell["metrics"] = [m for m in cell.get("metrics", [])
                           if m.get("metric") not in WALL_CLOCK_METRICS]
        cell["params"] = {k: v for k, v in cell.get("params", {}).items()
                          if k not in WALL_CLOCK_PARAMS}
    return json.dumps(report, sort_keys=True, indent=1) + "\n"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report")
    parser.add_argument("--baseline",
                        default="bench/baselines/BENCH_throughput.json")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the report")
    args = parser.parse_args()

    try:
        with open(args.report) as f:
            canonical = canonicalize(json.load(f))
    except (OSError, ValueError) as e:
        print(f"bench-baseline: malformed report {args.report}: {e}")
        return 2

    baseline_path = pathlib.Path(args.baseline)
    if args.update:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(canonical)
        print(f"bench-baseline: wrote {baseline_path}")
        return 0

    if not baseline_path.is_file():
        print(f"bench-baseline: no baseline at {baseline_path} "
              f"(generate one with --update)")
        return 2
    expected = baseline_path.read_text()
    if canonical == expected:
        print("bench-baseline: report matches the committed baseline")
        return 0
    import difflib
    diff = difflib.unified_diff(expected.splitlines(), canonical.splitlines(),
                                fromfile=str(baseline_path),
                                tofile=args.report, lineterm="", n=2)
    shown = list(diff)[:60]
    print("bench-baseline: DRIFT against the committed baseline "
          "(science metrics changed — if intentional, rerun with --update):")
    print("\n".join(shown))
    return 1


if __name__ == "__main__":
    sys.exit(main())
