#!/usr/bin/env python3
"""Docs command checker: every ppsim_run/ppsim_query/ppsim_serve/
ppsim_client/bench_* invocation quoted in README.md and docs/ must
actually run.

For each command found in fenced code blocks or inline code spans:
  1. the binary must exist in the build directory;
  2. every --flag it uses must be registered by that binary's source
     (benches register flags via Cli::get_*; typos rot silently otherwise);
  3. the command is executed at smoke scale: size/trial flags are
     overridden with tiny values (the Cli parser is last-flag-wins, so
     appending overrides preserves the documented flags while shrinking the
     run), inside a scratch directory so report files never pollute the
     repo. A run fails on crash, on exit codes >= 2 (usage errors), or on a
     "error:" line in stderr (CheckFailure); exit code 1 without one is a
     science verdict (bound violated at toy scale) and is accepted.

ppsim_serve is a daemon: its quoted command (trailing `&` stripped) is
started in the background with --socket/--cache-dir rewritten into the
scratch directory, and later ppsim_client commands — whose --socket is
rewritten the same way — talk to that instance. The daemon is terminated
when the check finishes (or when another serve command replaces it).

Usage: tools/docs_check.py [--build-dir build] [--repo-root .]
"""

import argparse
import pathlib
import re
import shlex
import subprocess
import sys
import tempfile
import time

# Smoke-scale overrides, applied only when the binary registers the flag.
SMOKE_OVERRIDES = {
    "n": "20000",
    "trials": "1",
    "threads": "1",
    "kmin": "4",
    "kmax": "4",
    "walks": "200",
    "samples": "60",
    "max-parallel": "2000",
}
# Binaries whose model limits need smaller smoke sizes than the default.
PER_BINARY_OVERRIDES = {
    "bench_graph_topology": {"n": "2000"},  # explicit clique capped at 4096
    # --mixed-grid sizes: the documented imbalanced grid is deliberately
    # expensive; shrink both cell classes for the smoke run.
    "bench_throughput": {"small-n": "5000", "large-n": "1000000",
                         "small-cells": "3"},
    # At the smoke-scale n the documented checkpoint stride would never
    # fire; shrink it so recording recipes exercise the checkpoint path.
    "ppsim_run": {"checkpoint-every": "100000"},
}
PER_COMMAND_TIMEOUT = 180  # seconds

# Commands sharing one scratch directory run in document order, so a recipe
# that records an archive and then resumes/queries it works as quoted.
COMMAND_RE = re.compile(
    r"(?:\./build/)?(bench_[a-z0-9_]+|ppsim_run|ppsim_query|ppsim_serve|"
    r"ppsim_client)\b")
FLAG_REGISTRATION_RE = re.compile(
    r'get_(?:int|double|string|bool)\(\s*"([a-z0-9-]+)"')


def doc_files(root: pathlib.Path):
    files = [root / "README.md"]
    files += sorted((root / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def looks_like_command(text: str) -> bool:
    """True iff `text` is a binary invocation, not a prose mention: after the
    binary token every argument must be a --flag or a flag's value."""
    try:
        tokens = shlex.split(text)
    except ValueError:
        return False
    if not tokens or not COMMAND_RE.fullmatch(tokens[0].removeprefix("./build/")):
        return False
    expecting_value = False
    for t in tokens[1:]:
        if t.startswith("--"):
            expecting_value = "=" not in t
        elif expecting_value:
            expecting_value = False
        else:
            return False  # bare word after the binary: prose, not a command
    return True


def extract_commands(text: str):
    """Yields command strings from fenced code blocks and inline code."""
    commands = []
    fenced = re.findall(r"```[a-z]*\n(.*?)```", text, flags=re.DOTALL)
    for block in fenced:
        for line in block.splitlines():
            line = line.strip().lstrip("$ ").rstrip("\\").strip()
            line = line.split(" #", 1)[0].strip()  # strip trailing comments
            line = line.rstrip("&").strip()  # daemons are quoted with `&`
            if line.startswith("#") or not COMMAND_RE.search(line):
                continue
            m = COMMAND_RE.search(line)
            candidate = line[m.start():]
            if looks_like_command(candidate):
                commands.append(candidate)
    for span in re.findall(r"`([^`\n]+)`", text):
        span = span.strip()
        if COMMAND_RE.match(span) and looks_like_command(span):
            commands.append(span)
    return commands


def registered_flags(binary: str, root: pathlib.Path):
    """Flags the binary's source registers with Cli::get_*."""
    subdir = "bench" if binary.startswith("bench_") else "examples"
    source = root / subdir / f"{binary}.cpp"
    if not source.is_file():
        return None
    text = source.read_text()
    flags = set(FLAG_REGISTRATION_RE.findall(text))
    if "read_sweep_flags" in text:
        flags |= {"trials", "min-trials", "max-trials", "seed", "threads",
                  "json", "record-to", "checkpoint-every", "kernel",
                  "adversary", "churn", "regraph"}
    return flags


def command_flags(tokens):
    return [t[2:].split("=", 1)[0] for t in tokens if t.startswith("--")]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--repo-root", default=".")
    args = parser.parse_args()
    root = pathlib.Path(args.repo_root).resolve()
    build = (root / args.build_dir).resolve()

    commands = []
    for f in doc_files(root):
        for cmd in extract_commands(f.read_text()):
            commands.append((f.relative_to(root), cmd))
    if not commands:
        print("docs-check: no ppsim_run/bench_* commands found — extraction broken?")
        return 1

    seen = set()
    failures = []
    checked = 0
    scratch = pathlib.Path(tempfile.mkdtemp(prefix="ppsim-docs-check-"))
    server = None  # the one live ppsim_serve daemon, if any
    server_socket = scratch / "docs_check.sock"
    for source_file, cmd in commands:
        # Keep only the command tail starting at the binary token.
        m = COMMAND_RE.search(cmd)
        cmd = cmd[m.start():]
        if cmd in seen:
            continue
        seen.add(cmd)
        tokens = shlex.split(cmd)
        binary = tokens[0].split("/")[-1]
        binary_path = build / binary
        if not binary_path.is_file():
            failures.append(f"{source_file}: `{cmd}` — binary {binary} not in {build}")
            continue
        flags = registered_flags(binary, root)
        if flags is None:
            failures.append(f"{source_file}: `{cmd}` — no source for {binary}")
            continue
        unknown = [f for f in command_flags(tokens) if f not in flags]
        if unknown:
            failures.append(
                f"{source_file}: `{cmd}` — flags not registered by {binary}: "
                + ", ".join("--" + f for f in unknown))
            continue
        if len(tokens) == 1:
            # Bare prose mention (`bench_foo`): the existence check above is
            # the whole contract; executing an all-defaults run would only
            # duplicate the real quoted invocations.
            continue
        smoke = [str(binary_path)] + tokens[1:]
        overrides = SMOKE_OVERRIDES | PER_BINARY_OVERRIDES.get(binary, {})
        for flag, value in overrides.items():
            if flag in flags:
                smoke += [f"--{flag}", value]
        if "json" in flags:
            smoke += ["--json", str(scratch / f"{binary}.json")]
        # Documented socket paths point at /tmp examples; the smoke run keeps
        # daemon and clients on one scratch socket instead.
        if "socket" in flags:
            smoke += ["--socket", str(server_socket)]
        if binary == "ppsim_serve":
            if "cache-dir" in flags:
                smoke += ["--cache-dir", str(scratch / "cell-cache")]
            if server is not None:
                server.terminate()
                server.wait(timeout=30)
            checked += 1
            print(f"docs-check [{checked}] {cmd} (daemon)")
            server = subprocess.Popen(smoke, cwd=scratch,
                                      stdout=subprocess.DEVNULL,
                                      stderr=subprocess.DEVNULL)
            for _ in range(100):  # wait for the daemon to bind the socket
                if server_socket.exists() or server.poll() is not None:
                    break
                time.sleep(0.1)
            if server.poll() is not None:
                failures.append(
                    f"{source_file}: `{cmd}` — daemon exited {server.returncode}")
                server = None
            elif not server_socket.exists():
                failures.append(f"{source_file}: `{cmd}` — daemon never bound "
                                f"{server_socket}")
            continue
        checked += 1
        print(f"docs-check [{checked}] {cmd}")
        try:
            proc = subprocess.run(smoke, cwd=scratch, capture_output=True,
                                  text=True, timeout=PER_COMMAND_TIMEOUT)
        except subprocess.TimeoutExpired:
            failures.append(f"{source_file}: `{cmd}` — smoke run timed out")
            continue
        if proc.returncode not in (0, 1):  # signal exits are negative, caught too
            failures.append(
                f"{source_file}: `{cmd}` — exit {proc.returncode}\n{proc.stderr.strip()}")
        elif "error:" in proc.stderr:
            failures.append(
                f"{source_file}: `{cmd}` — stderr: {proc.stderr.strip()}")

    if server is not None:
        server.terminate()
        try:
            server.wait(timeout=30)
        except subprocess.TimeoutExpired:
            server.kill()

    print(f"\ndocs-check: {checked} unique commands executed, "
          f"{len(failures)} failures")
    for f in failures:
        print(f"  FAIL {f}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
