#include "ppsim/protocols/usd_gossip.hpp"

#include <algorithm>

#include "ppsim/util/check.hpp"

namespace ppsim {

UsdGossipRule::UsdGossipRule(std::size_t k) : k_(k) {
  PPSIM_CHECK(k >= 1, "USD needs at least one opinion");
}

State UsdGossipRule::update(State own, State seen) const {
  PPSIM_CHECK(own <= k_ && seen <= k_, "state out of range");
  if (own == kUndecided) {
    return seen;  // adopt whatever was seen (⊥ stays ⊥)
  }
  if (seen != kUndecided && seen != own) {
    return kUndecided;  // clash with a different opinion
  }
  return own;
}

std::string UsdGossipRule::name() const { return "usd-gossip-k" + std::to_string(k_); }

Configuration UsdGossipRule::initial(const std::vector<Count>& opinion_counts,
                                     Count undecided) const {
  PPSIM_CHECK(opinion_counts.size() == k_, "need one count per opinion");
  PPSIM_CHECK(undecided >= 0, "undecided count must be non-negative");
  std::vector<Count> counts;
  counts.reserve(k_ + 1);
  counts.push_back(undecided);
  counts.insert(counts.end(), opinion_counts.begin(), opinion_counts.end());
  return Configuration(std::move(counts));
}

double monochromatic_distance(const std::vector<Count>& opinion_counts) {
  Count max_count = 0;
  for (const Count c : opinion_counts) {
    PPSIM_CHECK(c >= 0, "opinion counts must be non-negative");
    max_count = std::max(max_count, c);
  }
  PPSIM_CHECK(max_count > 0, "monochromatic distance needs a nonzero opinion");
  double md = 0.0;
  const auto denom = static_cast<double>(max_count);
  for (const Count c : opinion_counts) {
    const double ratio = static_cast<double>(c) / denom;
    md += ratio * ratio;
  }
  return md;
}

}  // namespace ppsim
