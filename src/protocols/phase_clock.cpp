#include "ppsim/protocols/phase_clock.hpp"

#include "ppsim/util/check.hpp"

namespace ppsim {

PhaseClock::PhaseClock(std::size_t num_phases) : phases_(num_phases) {
  PPSIM_CHECK(num_phases >= 4, "phase clock needs at least 4 phases");
}

bool PhaseClock::is_leader(State s) const {
  PPSIM_CHECK(s < num_states(), "state out of range");
  return s >= phases_;
}

std::size_t PhaseClock::phase(State s) const {
  PPSIM_CHECK(s < num_states(), "state out of range");
  return s % phases_;
}

State PhaseClock::encode(bool leader, std::size_t p) const {
  PPSIM_CHECK(p < phases_, "phase out of range");
  return static_cast<State>((leader ? phases_ : 0) + p);
}

bool PhaseClock::ahead(std::size_t p, std::size_t q) const {
  const std::size_t d = (p + phases_ - q) % phases_;
  return d >= 1 && d < phases_ / 2;
}

Transition PhaseClock::apply(State initiator, State responder) const {
  const bool la = is_leader(initiator);
  const bool lb = is_leader(responder);
  const std::size_t pa = phase(initiator);
  const std::size_t pb = phase(responder);

  if (la && lb) return {initiator, responder};  // not intended; leave untouched

  if (la || lb) {
    const std::size_t pl = la ? pa : pb;
    const std::size_t pf = la ? pb : pa;
    std::size_t new_leader_phase = pl;
    std::size_t new_follower_phase = pf;
    if (pf == pl) {
      new_leader_phase = (pl + 1) % phases_;  // phase has come full circle
    } else if (ahead(pl, pf)) {
      new_follower_phase = pl;  // follower catches up
    }
    // A follower "ahead" of the leader only arises from wrap damage; the
    // leader's phase is authoritative, so pull the follower back.
    else {
      new_follower_phase = pl;
    }
    const State leader_state = encode(true, new_leader_phase);
    const State follower_state = encode(false, new_follower_phase);
    return la ? Transition{leader_state, follower_state}
              : Transition{follower_state, leader_state};
  }

  // Follower/follower: the one behind adopts the newer phase.
  if (ahead(pa, pb)) return {initiator, encode(false, pa)};
  if (ahead(pb, pa)) return {encode(false, pb), responder};
  return {initiator, responder};
}

std::optional<Opinion> PhaseClock::output(State s) const {
  return static_cast<Opinion>(phase(s) % 2);
}

std::string PhaseClock::name() const {
  return "phase-clock-p" + std::to_string(phases_);
}

std::string PhaseClock::state_name(State s) const {
  std::string name(1, is_leader(s) ? 'L' : 'F');
  name += std::to_string(phase(s));
  return name;
}

Configuration PhaseClock::initial(Count n) const {
  PPSIM_CHECK(n >= 2, "phase clock needs a leader and at least one follower");
  std::vector<Count> counts(num_states(), 0);
  counts[encode(false, 0)] = n - 1;
  counts[encode(true, 0)] = 1;
  return Configuration(std::move(counts));
}

}  // namespace ppsim
