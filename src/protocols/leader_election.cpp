#include "ppsim/protocols/leader_election.hpp"

#include "ppsim/util/check.hpp"

namespace ppsim {

Transition LeaderElection::apply(State initiator, State responder) const {
  PPSIM_CHECK(initiator < 2 && responder < 2, "state out of range");
  if (initiator == kLeader && responder == kLeader) {
    return {kLeader, kFollower};
  }
  return {initiator, responder};
}

std::optional<Opinion> LeaderElection::output(State s) const {
  PPSIM_CHECK(s < 2, "state out of range");
  return static_cast<Opinion>(s);
}

std::string LeaderElection::state_name(State s) const {
  PPSIM_CHECK(s < 2, "state out of range");
  return s == kLeader ? "L" : "F";
}

Configuration LeaderElection::initial(Count n) {
  PPSIM_CHECK(n >= 1, "population must be non-empty");
  return Configuration({0, n});
}

}  // namespace ppsim
