#include "ppsim/protocols/usd.hpp"

#include <algorithm>

#include "ppsim/util/check.hpp"

namespace ppsim {

UndecidedStateDynamics::UndecidedStateDynamics(std::size_t k) : k_(k) {
  PPSIM_CHECK(k >= 1, "USD needs at least one opinion");
}

Transition UndecidedStateDynamics::apply(State initiator, State responder) const {
  PPSIM_CHECK(initiator <= k_ && responder <= k_, "state out of range");
  const bool a_decided = initiator != kUndecided;
  const bool b_decided = responder != kUndecided;
  if (a_decided && b_decided && initiator != responder) {
    return {kUndecided, kUndecided};  // clash: both become undecided
  }
  if (a_decided && !b_decided) return {initiator, initiator};  // ⊥ adopts
  if (!a_decided && b_decided) return {responder, responder};
  return {initiator, responder};  // same opinion, or both undecided
}

std::optional<Opinion> UndecidedStateDynamics::output(State s) const {
  PPSIM_CHECK(s <= k_, "state out of range");
  if (s == kUndecided) return std::nullopt;
  return static_cast<Opinion>(s - 1);
}

std::string UndecidedStateDynamics::name() const {
  return "usd-k" + std::to_string(k_);
}

std::string UndecidedStateDynamics::state_name(State s) const {
  PPSIM_CHECK(s <= k_, "state out of range");
  return s == kUndecided ? "⊥" : "op" + std::to_string(s - 1);
}

Configuration UndecidedStateDynamics::initial_configuration(
    const std::vector<Count>& opinion_counts, Count undecided) {
  PPSIM_CHECK(undecided >= 0, "undecided count must be non-negative");
  std::vector<Count> counts;
  counts.reserve(opinion_counts.size() + 1);
  counts.push_back(undecided);
  counts.insert(counts.end(), opinion_counts.begin(), opinion_counts.end());
  return Configuration(std::move(counts));
}

UsdEngine::UsdEngine(std::vector<Count> opinion_counts, Count undecided,
                     std::uint64_t seed)
    : k_(opinion_counts.size()), rng_(seed) {
  PPSIM_CHECK(k_ >= 1, "USD needs at least one opinion");
  PPSIM_CHECK(undecided >= 0, "undecided count must be non-negative");
  counts_.reserve(k_ + 1);
  counts_.push_back(undecided);
  n_ = undecided;
  for (const Count c : opinion_counts) {
    PPSIM_CHECK(c >= 0, "opinion counts must be non-negative");
    counts_.push_back(c);
    n_ += c;
    if (c > 0) ++nonzero_opinions_;
  }
  PPSIM_CHECK(n_ >= 2, "population must have at least two agents");
  weights_ = FenwickTree(counts_);
}

Count UsdEngine::opinion_count(Opinion i) const {
  PPSIM_CHECK(i < k_, "opinion out of range");
  return counts_[i + 1];
}

Count UsdEngine::max_opinion_count() const noexcept {
  return *std::max_element(counts_.begin() + 1, counts_.end());
}

Count UsdEngine::min_opinion_count() const noexcept {
  return *std::min_element(counts_.begin() + 1, counts_.end());
}

std::optional<Opinion> UsdEngine::winner() const {
  if (!stabilized() || counts_[0] == n_) return std::nullopt;
  for (std::size_t i = 1; i < counts_.size(); ++i) {
    if (counts_[i] > 0) return static_cast<Opinion>(i - 1);
  }
  return std::nullopt;  // unreachable: stabilized on an opinion implies one survivor
}

bool UsdEngine::step() {
  // Draw an ordered pair of distinct agents: initiator uniform among n, then
  // responder uniform among the remaining n-1 (the initiator's agent is
  // removed from the urn for the second draw).
  const auto a = static_cast<State>(
      weights_.find(static_cast<std::int64_t>(rng_.bounded(static_cast<std::uint64_t>(n_)))));
  weights_.add(a, -1);
  const auto b = static_cast<State>(weights_.find(
      static_cast<std::int64_t>(rng_.bounded(static_cast<std::uint64_t>(n_ - 1)))));
  weights_.add(a, +1);
  ++interactions_;
  return apply_pair(a, b);
}

bool UsdEngine::apply_pair(State a, State b) {
  if (a == b) return false;  // same opinion, or both undecided: identity

  if (a == 0 || b == 0) {
    // Decided (opinion state `d`) meets undecided: ⊥ adopts the opinion.
    const State d = a == 0 ? b : a;
    --counts_[0];
    ++counts_[d];
    weights_.add(0, -1);
    weights_.add(d, +1);
    // counts_[d] was >= 1 before (an agent occupies it), so the set of
    // surviving opinions is unchanged.
    return true;
  }

  // Two distinct opinions clash: both agents become undecided.
  --counts_[a];
  --counts_[b];
  counts_[0] += 2;
  weights_.add(a, -1);
  weights_.add(b, -1);
  weights_.add(0, +2);
  if (counts_[a] == 0) --nonzero_opinions_;
  if (counts_[b] == 0) --nonzero_opinions_;
  return true;
}

bool UsdEngine::force_interaction(State initiator, State responder) {
  PPSIM_CHECK(initiator <= k_ && responder <= k_, "state out of range");
  PPSIM_CHECK(counts_[initiator] > 0 && counts_[responder] > 0,
              "forced interaction needs both states occupied");
  PPSIM_CHECK(initiator != responder || counts_[initiator] >= 2,
              "forced self-interaction needs two agents in the state");
  ++interactions_;
  return apply_pair(initiator, responder);
}

void UsdEngine::add_agent(State s) {
  PPSIM_CHECK(s <= k_, "state out of range");
  ++counts_[s];
  weights_.add(s, +1);
  ++n_;
  if (s != 0 && counts_[s] == 1) ++nonzero_opinions_;
}

void UsdEngine::remove_agent(State s) {
  PPSIM_CHECK(s <= k_, "state out of range");
  PPSIM_CHECK(counts_[s] > 0, "no agent occupies the departing state");
  PPSIM_CHECK(n_ > 2, "population cannot shrink below two agents");
  --counts_[s];
  weights_.add(s, -1);
  --n_;
  if (s != 0 && counts_[s] == 0) --nonzero_opinions_;
}

void UsdEngine::corrupt_agent(State from, State to) {
  PPSIM_CHECK(from <= k_ && to <= k_, "state out of range");
  PPSIM_CHECK(counts_[from] > 0, "no agent occupies the source state");
  if (from == to) return;
  --counts_[from];
  ++counts_[to];
  weights_.add(from, -1);
  weights_.add(to, +1);
  if (from != 0 && counts_[from] == 0) --nonzero_opinions_;
  if (to != 0 && counts_[to] == 1) ++nonzero_opinions_;
}

bool UsdEngine::run_until_stable(Interactions max_interactions) {
  PPSIM_CHECK(max_interactions >= 0, "interaction budget must be non-negative");
  while (interactions_ < max_interactions && !stabilized()) step();
  return stabilized();
}

}  // namespace ppsim
