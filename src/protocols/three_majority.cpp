#include "ppsim/protocols/three_majority.hpp"

#include "ppsim/util/check.hpp"

namespace ppsim {

ThreeMajorityEngine::ThreeMajorityEngine(const std::vector<Count>& opinion_counts,
                                         std::uint64_t seed)
    : k_(opinion_counts.size()), counts_(opinion_counts), rng_(seed) {
  PPSIM_CHECK(k_ >= 1, "3-majority needs at least one opinion");
  Count n = 0;
  for (std::size_t i = 0; i < opinion_counts.size(); ++i) {
    PPSIM_CHECK(opinion_counts[i] >= 0, "opinion counts must be non-negative");
    n += opinion_counts[i];
  }
  PPSIM_CHECK(n >= 4, "3-majority needs at least four agents");
  agents_.reserve(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < opinion_counts.size(); ++i) {
    for (Count c = 0; c < opinion_counts[i]; ++c) {
      agents_.push_back(static_cast<Opinion>(i));
    }
  }
  next_.resize(agents_.size());
}

Count ThreeMajorityEngine::opinion_count(Opinion i) const {
  PPSIM_CHECK(i < k_, "opinion out of range");
  return counts_[i];
}

bool ThreeMajorityEngine::consensus() const noexcept {
  for (const Count c : counts_) {
    if (c == population()) return true;
    if (c != 0) return false;
  }
  return false;
}

std::optional<Opinion> ThreeMajorityEngine::winner() const {
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == population()) return static_cast<Opinion>(i);
  }
  return std::nullopt;
}

Opinion ThreeMajorityEngine::sample_other(std::size_t self) noexcept {
  // Uniform over the other n-1 agents: draw from [0, n-1) and skip self.
  auto idx = static_cast<std::size_t>(rng_.bounded(agents_.size() - 1));
  if (idx >= self) ++idx;
  return agents_[idx];
}

void ThreeMajorityEngine::step_round() {
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    const Opinion s1 = sample_other(i);
    const Opinion s2 = sample_other(i);
    const Opinion s3 = sample_other(i);
    // Majority of the multiset {s1, s2, s3}; all-distinct falls back to s1.
    Opinion result = s1;
    if (s2 == s3) result = s2;
    next_[i] = result;
  }
  std::fill(counts_.begin(), counts_.end(), 0);
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    agents_[i] = next_[i];
    ++counts_[agents_[i]];
  }
  ++rounds_;
}

bool ThreeMajorityEngine::run_until_consensus(std::int64_t max_rounds) {
  PPSIM_CHECK(max_rounds >= 0, "round budget must be non-negative");
  while (rounds_ < max_rounds && !consensus()) step_round();
  return consensus();
}

}  // namespace ppsim
