#include "ppsim/protocols/epidemic.hpp"

#include "ppsim/util/check.hpp"

namespace ppsim {

Transition Epidemic::apply(State initiator, State responder) const {
  PPSIM_CHECK(initiator < 2 && responder < 2, "state out of range");
  if (initiator == kInfected || responder == kInfected) {
    return {kInfected, kInfected};
  }
  return {initiator, responder};
}

std::optional<Opinion> Epidemic::output(State s) const {
  PPSIM_CHECK(s < 2, "state out of range");
  return static_cast<Opinion>(s);
}

std::string Epidemic::state_name(State s) const {
  PPSIM_CHECK(s < 2, "state out of range");
  return s == kInfected ? "I" : "S";
}

Configuration Epidemic::initial(Count n, Count sources) {
  PPSIM_CHECK(n >= 1, "population must be non-empty");
  PPSIM_CHECK(sources >= 0 && sources <= n, "sources must be within the population");
  return Configuration({n - sources, sources});
}

}  // namespace ppsim
