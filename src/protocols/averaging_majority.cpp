#include "ppsim/protocols/averaging_majority.hpp"

#include "ppsim/util/check.hpp"

namespace ppsim {

AveragingMajority::AveragingMajority(Count m) : m_(m) {
  PPSIM_CHECK(m >= 1, "resolution must be at least 1");
}

Count AveragingMajority::state_value(State s) const {
  PPSIM_CHECK(s < num_states(), "state out of range");
  return static_cast<Count>(s) - m_;
}

State AveragingMajority::value_state(Count v) const {
  PPSIM_CHECK(v >= -m_ && v <= m_, "value out of range");
  return static_cast<State>(v + m_);
}

Transition AveragingMajority::apply(State initiator, State responder) const {
  const Count v1 = state_value(initiator);
  const Count v2 = state_value(responder);
  const Count sum = v1 + v2;
  // Floor division toward -inf (C++ / truncates toward zero).
  const Count lo = sum >= 0 ? sum / 2 : -((-sum + 1) / 2);
  const Count hi = sum - lo;
  // Agents are anonymous: if the resulting multiset equals the input
  // multiset, report a null transition so stability detection terminates
  // (otherwise {v, v+1} pairs would "swap" forever).
  if ((hi == v1 && lo == v2) || (hi == v2 && lo == v1)) {
    return {initiator, responder};
  }
  return {value_state(hi), value_state(lo)};
}

std::optional<Opinion> AveragingMajority::output(State s) const {
  const Count v = state_value(s);
  if (v > 0) return kOpinionA;
  if (v < 0) return kOpinionB;
  return std::nullopt;
}

std::string AveragingMajority::name() const {
  return "averaging-majority-m" + std::to_string(m_);
}

std::string AveragingMajority::state_name(State s) const {
  std::string name(1, 'v');
  name += std::to_string(state_value(s));
  return name;
}

Configuration AveragingMajority::initial(Count a, Count b) const {
  PPSIM_CHECK(a >= 0 && b >= 0, "initial counts must be non-negative");
  std::vector<Count> counts(num_states(), 0);
  counts[value_state(m_)] = a;
  counts[value_state(-m_)] = b;
  return Configuration(std::move(counts));
}

Count AveragingMajority::value_sum(const Configuration& config) const {
  PPSIM_CHECK(config.num_states() == num_states(), "configuration mismatch");
  Count sum = 0;
  for (State s = 0; s < num_states(); ++s) {
    sum += config.count(s) * state_value(s);
  }
  return sum;
}

}  // namespace ppsim
