#include "ppsim/protocols/synchronized_usd.hpp"

#include "ppsim/util/check.hpp"

namespace ppsim {

SynchronizedUsd::SynchronizedUsd(std::size_t k, std::size_t num_phases)
    : k_(k), clock_(num_phases) {
  PPSIM_CHECK(k >= 1, "synchronized USD needs at least one opinion");
}

std::size_t SynchronizedUsd::num_states() const {
  return clock_.num_states() * (k_ + 1);
}

State SynchronizedUsd::encode(State clock_state, State usd_state) const {
  PPSIM_CHECK(clock_state < clock_.num_states(), "clock state out of range");
  PPSIM_CHECK(usd_state <= k_, "usd state out of range");
  return static_cast<State>(clock_state * (k_ + 1) + usd_state);
}

State SynchronizedUsd::clock_part(State s) const {
  PPSIM_CHECK(s < num_states(), "state out of range");
  return static_cast<State>(s / (k_ + 1));
}

State SynchronizedUsd::usd_part(State s) const {
  PPSIM_CHECK(s < num_states(), "state out of range");
  return static_cast<State>(s % (k_ + 1));
}

Transition SynchronizedUsd::apply(State initiator, State responder) const {
  const State ca = clock_part(initiator);
  const State cb = clock_part(responder);
  State ua = usd_part(initiator);
  State ub = usd_part(responder);

  // Step 1: the clock component always runs.
  const Transition ct = clock_.apply(ca, cb);

  // Step 2: the USD component fires only when both agents agree on the
  // parity of their (updated) phase.
  const std::size_t parity_a = clock_.phase(ct.initiator) % 2;
  const std::size_t parity_b = clock_.phase(ct.responder) % 2;
  if (parity_a == parity_b) {
    const bool a_decided = ua != 0;
    const bool b_decided = ub != 0;
    if (parity_a == 0) {
      // Cancellation stage: clashes only.
      if (a_decided && b_decided && ua != ub) {
        ua = 0;
        ub = 0;
      }
    } else {
      // Recruitment stage: adoptions only.
      if (a_decided && !b_decided) {
        ub = ua;
      } else if (!a_decided && b_decided) {
        ua = ub;
      }
    }
  }

  return {encode(ct.initiator, ua), encode(ct.responder, ub)};
}

std::optional<Opinion> SynchronizedUsd::output(State s) const {
  const State u = usd_part(s);
  if (u == 0) return std::nullopt;
  return static_cast<Opinion>(u - 1);
}

std::string SynchronizedUsd::name() const {
  return "sync-usd-k" + std::to_string(k_) + "-p" + std::to_string(clock_.num_phases());
}

std::string SynchronizedUsd::state_name(State s) const {
  const State u = usd_part(s);
  return clock_.state_name(clock_part(s)) + "/" + (u == 0 ? "⊥" : "op" + std::to_string(u - 1));
}

Configuration SynchronizedUsd::initial(const std::vector<Count>& opinion_counts) const {
  PPSIM_CHECK(opinion_counts.size() == k_, "need one count per opinion");
  std::vector<Count> counts(num_states(), 0);
  const State follower0 = clock_.encode(false, 0);
  const State leader0 = clock_.encode(true, 0);
  Count total = 0;
  bool leader_placed = false;
  for (std::size_t i = 0; i < opinion_counts.size(); ++i) {
    PPSIM_CHECK(opinion_counts[i] >= 0, "opinion counts must be non-negative");
    Count c = opinion_counts[i];
    total += c;
    if (c > 0 && !leader_placed) {
      counts[encode(leader0, static_cast<State>(i + 1))] += 1;
      --c;
      leader_placed = true;
    }
    counts[encode(follower0, static_cast<State>(i + 1))] += c;
  }
  PPSIM_CHECK(leader_placed, "at least one agent must hold an opinion");
  PPSIM_CHECK(total >= 2, "population must have at least two agents");
  return Configuration(std::move(counts));
}

std::optional<Opinion> SynchronizedUsd::consensus_opinion(
    const Configuration& config) const {
  PPSIM_CHECK(config.num_states() == num_states(), "configuration mismatch");
  std::optional<Opinion> agreed;
  for (State s = 0; s < num_states(); ++s) {
    if (config.count(s) == 0) continue;
    const State u = usd_part(s);
    if (u == 0) return std::nullopt;
    const auto op = static_cast<Opinion>(u - 1);
    if (agreed.has_value() && *agreed != op) return std::nullopt;
    agreed = op;
  }
  return agreed;
}

}  // namespace ppsim
