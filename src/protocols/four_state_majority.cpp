#include "ppsim/protocols/four_state_majority.hpp"

#include "ppsim/util/check.hpp"

namespace ppsim {

Transition FourStateMajority::apply(State initiator, State responder) const {
  PPSIM_CHECK(initiator < 4 && responder < 4, "state out of range");

  // The rules are unordered; normalise so that `x` is the lexicographically
  // smaller state and remember whether we swapped.
  const State x = initiator <= responder ? initiator : responder;
  const State y = initiator <= responder ? responder : initiator;
  auto oriented = [&](State nx, State ny) -> Transition {
    return initiator <= responder ? Transition{nx, ny} : Transition{ny, nx};
  };

  if (x == kStrongA && y == kStrongB) return oriented(kWeakA, kWeakB);
  if (x == kStrongA && y == kWeakB) return oriented(kStrongA, kWeakA);
  if (x == kStrongB && y == kWeakA) return oriented(kStrongB, kWeakB);
  return {initiator, responder};
}

std::optional<Opinion> FourStateMajority::output(State s) const {
  PPSIM_CHECK(s < 4, "state out of range");
  return (s == kStrongA || s == kWeakA) ? kOpinionA : kOpinionB;
}

std::string FourStateMajority::state_name(State s) const {
  PPSIM_CHECK(s < 4, "state out of range");
  switch (s) {
    case kStrongA: return "A";
    case kStrongB: return "B";
    case kWeakA: return "a";
    default: return "b";
  }
}

Configuration FourStateMajority::initial(Count a, Count b) {
  PPSIM_CHECK(a >= 0 && b >= 0, "initial counts must be non-negative");
  return Configuration({a, b, 0, 0});
}

}  // namespace ppsim
