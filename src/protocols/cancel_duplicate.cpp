#include "ppsim/protocols/cancel_duplicate.hpp"

#include "ppsim/util/check.hpp"

namespace ppsim {

CancellationDuplication::CancellationDuplication(std::size_t max_exponent)
    : max_exp_(max_exponent) {
  PPSIM_CHECK(max_exponent <= 62, "weights must fit a signed 64-bit integer");
}

State CancellationDuplication::token_state(bool positive, std::size_t exp) const {
  PPSIM_CHECK(exp <= max_exp_, "exponent out of range");
  return static_cast<State>(3 + 2 * exp + (positive ? 0 : 1));
}

bool CancellationDuplication::is_token(State s) const {
  PPSIM_CHECK(s < num_states(), "state out of range");
  return s >= 3;
}

bool CancellationDuplication::is_positive(State s) const {
  PPSIM_CHECK(is_token(s), "blanks have no sign bit");
  return (s - 3) % 2 == 0;
}

std::size_t CancellationDuplication::exponent(State s) const {
  PPSIM_CHECK(is_token(s), "blanks have no exponent");
  return (s - 3) / 2;
}

Count CancellationDuplication::signed_weight(State s) const {
  PPSIM_CHECK(s < num_states(), "state out of range");
  if (!is_token(s)) return 0;
  const Count magnitude = Count{1} << exponent(s);
  return is_positive(s) ? magnitude : -magnitude;
}

Count CancellationDuplication::total_weight(const Configuration& config) const {
  PPSIM_CHECK(config.num_states() == num_states(), "configuration mismatch");
  Count total = 0;
  for (State s = 0; s < num_states(); ++s) {
    total += config.count(s) * signed_weight(s);
  }
  return total;
}

Transition CancellationDuplication::apply(State initiator, State responder) const {
  const bool a_token = is_token(initiator);
  const bool b_token = is_token(responder);

  if (a_token && b_token) {
    // Cancellation requires equal magnitude and opposite signs.
    if (exponent(initiator) == exponent(responder) &&
        is_positive(initiator) != is_positive(responder)) {
      const State blank_a = is_positive(initiator) ? kBlankPlus : kBlankMinus;
      const State blank_b = is_positive(responder) ? kBlankPlus : kBlankMinus;
      return {blank_a, blank_b};
    }
    return {initiator, responder};
  }

  if (a_token != b_token) {
    const State token = a_token ? initiator : responder;
    const std::size_t j = exponent(token);
    const bool pos = is_positive(token);
    if (j >= 1) {
      // Duplication: split the token's weight onto both agents.
      const State half = token_state(pos, j - 1);
      return {half, half};
    }
    // Unit tokens gossip their sign to the blank.
    const State blank = pos ? kBlankPlus : kBlankMinus;
    return a_token ? Transition{initiator, blank} : Transition{blank, responder};
  }

  return {initiator, responder};  // blank/blank: null
}

std::optional<Opinion> CancellationDuplication::output(State s) const {
  PPSIM_CHECK(s < num_states(), "state out of range");
  if (is_token(s)) return is_positive(s) ? kOpinionA : kOpinionB;
  if (s == kBlankPlus) return kOpinionA;
  if (s == kBlankMinus) return kOpinionB;
  return std::nullopt;  // neutral blank: uncommitted
}

std::string CancellationDuplication::name() const {
  return "cancel-duplicate-J" + std::to_string(max_exp_);
}

std::string CancellationDuplication::state_name(State s) const {
  PPSIM_CHECK(s < num_states(), "state out of range");
  if (s == kBlankNeutral) return "0?";
  if (s == kBlankPlus) return "0+";
  if (s == kBlankMinus) return "0-";
  std::string name(1, is_positive(s) ? '+' : '-');
  name += std::to_string(Count{1} << exponent(s));
  return name;
}

Configuration CancellationDuplication::initial(Count a, Count b) const {
  PPSIM_CHECK(a >= 0 && b >= 0, "initial counts must be non-negative");
  std::vector<Count> counts(num_states(), 0);
  counts[token_state(true, max_exp_)] = a;
  counts[token_state(false, max_exp_)] = b;
  return Configuration(std::move(counts));
}

}  // namespace ppsim
