#include "ppsim/io/archive_run.hpp"

#include <algorithm>

#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/check.hpp"

namespace ppsim::io {

namespace {

/// The shared engine-drive loop behind record_run and resume_run. The writer
/// is positioned either at a fresh header (checkpoint == nullopt) or right
/// after the last surviving checkpoint record.
RunOutcome drive(const Protocol& protocol, const Configuration& initial,
                 const ArchiveChannels& channels, const ArchiveRunSpec& spec,
                 TrajectoryWriter& writer,
                 const std::optional<EngineCheckpoint>& checkpoint) {
  PPSIM_CHECK(channels.names.size() == channels.projections.size(),
              "archive channels: one projection per name");
  PPSIM_CHECK(spec.record_stride > 0, "archive record stride must be resolved");

  Engine engine(spec.engine, protocol, initial, spec.seed,
                {.round_divisor = spec.round_divisor},
                {.tau_epsilon = spec.tau_epsilon});

  Recorder recorder(spec.record_stride);
  recorder.set_keep_series(false);  // archives stream; no in-memory copy
  for (std::size_t c = 0; c < channels.names.size(); ++c) {
    recorder.add_channel(channels.names[c], channels.projections[c]);
  }
  if (spec.checkpoint_every > 0) {
    recorder.set_checkpoint_stride(spec.checkpoint_every);
  }
  TrajectorySink sink(writer);
  recorder.add_sink(sink);

  if (checkpoint.has_value()) {
    engine.restore_checkpoint(*checkpoint);
    recorder.resume_at(*checkpoint);
  }
  engine.set_recorder(&recorder);
  if (!checkpoint.has_value()) {
    // Archive the initial configuration: engines only observe after their
    // first step, so without this the t = 0 point would never be stored.
    recorder.sample(engine.configuration(), 0);
  }
  const RunOutcome out = engine.run_until_stable(spec.max_interactions);
  recorder.finalize(engine.configuration(),
                    RecordFinish{.stabilized = out.stabilized,
                                 .interactions = out.interactions,
                                 .clamped = out.clamped,
                                 .consensus = out.consensus});
  engine.set_recorder(nullptr);
  return out;
}

}  // namespace

ArchiveChannels usd_archive_channels(std::size_t k) {
  ArchiveChannels channels;
  channels.names = {"undecided", "majority", "delta_max", "survivors"};
  channels.projections.push_back([](const Configuration& c, Interactions) {
    return static_cast<double>(c.count(UndecidedStateDynamics::kUndecided));
  });
  channels.projections.push_back([](const Configuration& c, Interactions) {
    return static_cast<double>(c.count(UndecidedStateDynamics::opinion_state(0)));
  });
  channels.projections.push_back([k](const Configuration& c, Interactions) {
    Count max_op = 0;
    Count min_op = c.population();
    for (std::size_t op = 0; op < k; ++op) {
      const Count x =
          c.count(UndecidedStateDynamics::opinion_state(static_cast<Opinion>(op)));
      max_op = std::max(max_op, x);
      min_op = std::min(min_op, x);
    }
    return static_cast<double>(max_op - min_op);
  });
  channels.projections.push_back([k](const Configuration& c, Interactions) {
    std::size_t survivors = 0;
    for (std::size_t op = 0; op < k; ++op) {
      if (c.count(UndecidedStateDynamics::opinion_state(static_cast<Opinion>(op))) >
          0) {
        ++survivors;
      }
    }
    return static_cast<double>(survivors);
  });
  return channels;
}

TrajectoryHeader make_header(const ArchiveRunSpec& spec, Count population,
                             std::size_t num_states,
                             const std::vector<std::string>& channels) {
  TrajectoryHeader header;
  header.engine = to_string(spec.engine);
  header.protocol = spec.protocol_name;
  header.seed = spec.seed;
  header.population = population;
  header.k = spec.k;
  header.num_states = num_states;
  header.stride = spec.record_stride;
  header.checkpoint_every = spec.checkpoint_every;
  header.max_interactions = spec.max_interactions;
  header.tau_epsilon = spec.tau_epsilon;
  header.round_divisor = spec.round_divisor;
  header.channels = channels;
  return header;
}

ArchiveRunSpec spec_from_header(const TrajectoryHeader& header) {
  ArchiveRunSpec spec;
  const auto kind = parse_engine(header.engine);
  PPSIM_CHECK(kind.has_value(), "archive header names an unknown engine: " +
                                    header.engine);
  spec.engine = *kind;
  spec.protocol_name = header.protocol;
  spec.seed = header.seed;
  spec.k = header.k;
  spec.max_interactions = header.max_interactions;
  spec.record_stride = header.stride;
  spec.checkpoint_every = header.checkpoint_every;
  spec.round_divisor = header.round_divisor;
  spec.tau_epsilon = header.tau_epsilon;
  return spec;
}

ArchiveRecorder::ArchiveRecorder(const ArchiveRunSpec& spec, Count population,
                                 std::size_t num_states,
                                 const ArchiveChannels& channels,
                                 const std::string& path)
    : writer_(path, make_header(spec, population, num_states, channels.names)),
      sink_(writer_),
      recorder_(spec.record_stride) {
  PPSIM_CHECK(channels.names.size() == channels.projections.size(),
              "archive channels: one projection per name");
  recorder_.set_keep_series(false);
  for (std::size_t c = 0; c < channels.names.size(); ++c) {
    recorder_.add_channel(channels.names[c], channels.projections[c]);
  }
  if (spec.checkpoint_every > 0) {
    recorder_.set_checkpoint_stride(spec.checkpoint_every);
  }
  recorder_.add_sink(sink_);
}

RunOutcome record_run(const Protocol& protocol, const Configuration& initial,
                      const ArchiveChannels& channels, const ArchiveRunSpec& spec_in,
                      const std::string& path) {
  ArchiveRunSpec spec = spec_in;
  if (spec.record_stride == 0) {
    spec.record_stride = std::max<Interactions>(1, initial.population() / 10);
  }
  const TrajectoryHeader header =
      make_header(spec, initial.population(), protocol.num_states(), channels.names);
  TrajectoryWriter writer(path, header);
  return drive(protocol, initial, channels, spec, writer, std::nullopt);
}

std::optional<RunOutcome> resume_run(const Protocol& protocol,
                                     const Configuration& initial,
                                     const ArchiveChannels& channels,
                                     const std::string& path) {
  TrajectoryWriter::Resumed resumed = TrajectoryWriter::resume(path);
  if (resumed.finished) return std::nullopt;
  PPSIM_CHECK(resumed.header.channels == channels.names,
              "archive channels do not match the header's: " + path);
  PPSIM_CHECK(initial.population() == resumed.header.population,
              "initial configuration does not match the archive's population");
  PPSIM_CHECK(protocol.num_states() == resumed.header.num_states,
              "protocol state space does not match the archive's");
  const ArchiveRunSpec spec = spec_from_header(resumed.header);
  return drive(protocol, initial, channels, spec, *resumed.writer,
               resumed.checkpoint);
}

}  // namespace ppsim::io
