#include "ppsim/io/trajectory.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>

#include "ppsim/util/check.hpp"

namespace ppsim::io {

namespace {

constexpr std::uint8_t kHeaderRecord = 1;
constexpr std::uint8_t kBlockRecord = 2;
constexpr std::uint8_t kCheckpointRecord = 3;
constexpr std::uint8_t kEndRecord = 4;

// Counts are capped at 2^53 (CollapsedSimulator::kMaxPopulation); any count
// or clock beyond int64 range in a checksummed record means real corruption.
bool fits_interactions(std::uint64_t v) {
  return v <= static_cast<std::uint64_t>(std::numeric_limits<Interactions>::max());
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return std::string(buf);
}

Bytes encode_header(const TrajectoryHeader& h) {
  Bytes b;
  put_varint(b, kTrajectoryFormatVersion);
  put_string(b, h.engine);
  put_string(b, h.protocol);
  put_fixed64(b, h.seed);
  put_varint(b, static_cast<std::uint64_t>(h.population));
  put_varint(b, static_cast<std::uint64_t>(h.k));
  put_varint(b, h.num_states);
  put_varint(b, static_cast<std::uint64_t>(h.stride));
  put_varint(b, static_cast<std::uint64_t>(h.checkpoint_every));
  put_varint(b, static_cast<std::uint64_t>(h.max_interactions));
  put_f64(b, h.tau_epsilon);
  put_varint(b, static_cast<std::uint64_t>(h.round_divisor));
  put_fixed64(b, h.spec_hash);
  put_string(b, h.build_version);
  put_varint(b, h.channels.size());
  for (const auto& name : h.channels) put_string(b, name);
  return b;
}

// Strict header decode: the reader constructor throws on any inconsistency
// (an archive without a sound header carries no usable data).
TrajectoryHeader decode_header(const std::uint8_t* data, std::size_t size) {
  ByteReader r(data, size);
  const std::uint64_t version = r.varint();
  PPSIM_CHECK(r.ok() && version == kTrajectoryFormatVersion,
              "unsupported trajectory format version");
  TrajectoryHeader h;
  h.engine = r.string();
  h.protocol = r.string();
  h.seed = r.fixed64();
  const std::uint64_t population = r.varint();
  const std::uint64_t k = r.varint();
  h.num_states = r.varint();
  const std::uint64_t stride = r.varint();
  const std::uint64_t checkpoint_every = r.varint();
  const std::uint64_t max_interactions = r.varint();
  h.tau_epsilon = r.f64();
  const std::uint64_t round_divisor = r.varint();
  h.spec_hash = r.fixed64();
  h.build_version = r.string();
  const std::uint64_t num_channels = r.varint();
  PPSIM_CHECK(r.ok() && num_channels <= size,
              "trajectory header is malformed");
  h.channels.reserve(num_channels);
  for (std::uint64_t i = 0; i < num_channels; ++i) {
    h.channels.push_back(r.string());
  }
  PPSIM_CHECK(r.ok() && r.at_end(), "trajectory header is malformed");
  PPSIM_CHECK(fits_interactions(population) && fits_interactions(k) &&
                  fits_interactions(stride) && fits_interactions(checkpoint_every) &&
                  fits_interactions(max_interactions) &&
                  fits_interactions(round_divisor),
              "trajectory header field out of range");
  h.population = static_cast<Count>(population);
  h.k = static_cast<Count>(k);
  h.stride = static_cast<Interactions>(stride);
  h.checkpoint_every = static_cast<Interactions>(checkpoint_every);
  h.max_interactions = static_cast<Interactions>(max_interactions);
  h.round_divisor = static_cast<Interactions>(round_divisor);
  PPSIM_CHECK(h.population >= 2, "trajectory header: population must be >= 2");
  PPSIM_CHECK(h.num_states >= 1, "trajectory header: empty state space");
  PPSIM_CHECK(h.stride > 0, "trajectory header: sampling stride must be positive");
  for (const auto& name : h.channels) validate_channel_name(name);
  return h;
}

Bytes encode_checkpoint(const EngineCheckpoint& cp) {
  Bytes b;
  put_varint(b, static_cast<std::uint64_t>(cp.interactions));
  put_varint(b, static_cast<std::uint64_t>(cp.clamped));
  put_svarint(b, cp.last_sample);
  for (const std::uint64_t w : cp.rng_state) put_fixed64(b, w);
  put_varint(b, cp.counts.size());
  for (const Count c : cp.counts) put_varint(b, static_cast<std::uint64_t>(c));
  return b;
}

// Tolerant checkpoint decode used while indexing: nullopt means the record
// (although checksummed) is semantically unusable — the parse stops there.
std::optional<EngineCheckpoint> decode_checkpoint(const std::uint8_t* data,
                                                  std::size_t size,
                                                  std::uint64_t num_states) {
  ByteReader r(data, size);
  EngineCheckpoint cp;
  const std::uint64_t interactions = r.varint();
  const std::uint64_t clamped = r.varint();
  cp.last_sample = r.svarint();
  for (auto& w : cp.rng_state) w = r.fixed64();
  const std::uint64_t n_counts = r.varint();
  if (!r.ok() || n_counts != num_states || !fits_interactions(interactions) ||
      !fits_interactions(clamped)) {
    return std::nullopt;
  }
  cp.interactions = static_cast<Interactions>(interactions);
  cp.clamped = static_cast<Interactions>(clamped);
  cp.counts.reserve(n_counts);
  for (std::uint64_t i = 0; i < n_counts; ++i) {
    const std::uint64_t c = r.varint();
    if (c > (std::uint64_t{1} << 53)) return std::nullopt;
    cp.counts.push_back(static_cast<Count>(c));
  }
  if (!r.ok() || !r.at_end()) return std::nullopt;
  if ((cp.rng_state[0] | cp.rng_state[1] | cp.rng_state[2] | cp.rng_state[3]) == 0) {
    return std::nullopt;  // xoshiro's forbidden all-zero state
  }
  if (cp.last_sample < -1 || cp.last_sample > cp.interactions) return std::nullopt;
  return cp;
}

Bytes encode_end(const TrajectoryEnd& end) {
  Bytes b;
  put_u8(b, end.stabilized ? 1 : 0);
  put_varint(b, static_cast<std::uint64_t>(end.interactions));
  put_varint(b, static_cast<std::uint64_t>(end.clamped));
  put_varint(b, end.consensus.has_value()
                    ? static_cast<std::uint64_t>(*end.consensus) + 1
                    : 0);
  return b;
}

std::optional<TrajectoryEnd> decode_end(const std::uint8_t* data, std::size_t size) {
  ByteReader r(data, size);
  TrajectoryEnd end;
  const std::uint8_t stabilized = r.u8();
  const std::uint64_t interactions = r.varint();
  const std::uint64_t clamped = r.varint();
  const std::uint64_t consensus = r.varint();
  if (!r.ok() || !r.at_end() || stabilized > 1 || !fits_interactions(interactions) ||
      !fits_interactions(clamped)) {
    return std::nullopt;
  }
  end.stabilized = stabilized == 1;
  end.interactions = static_cast<Interactions>(interactions);
  end.clamped = static_cast<Interactions>(clamped);
  if (consensus > 0) {
    if (consensus - 1 > std::numeric_limits<Opinion>::max()) return std::nullopt;
    end.consensus = static_cast<Opinion>(consensus - 1);
  }
  return end;
}

// True when every value in the column is an exactly representable integer,
// i.e. zigzag-delta coding is lossless for it. Counts (≤ 2^53) always are.
bool integral_column(const std::vector<double>& column) {
  constexpr double kLimit = 9007199254740992.0;  // 2^53
  for (const double v : column) {
    if (!std::isfinite(v) || v < -kLimit || v > kLimit || v != std::trunc(v)) {
      return false;
    }
  }
  return true;
}

Bytes encode_block(const std::vector<Interactions>& clock,
                   const std::vector<std::vector<double>>& values) {
  Bytes summary;
  put_varint(summary, static_cast<std::uint64_t>(clock.front()));
  put_varint(summary, static_cast<std::uint64_t>(clock.back()));
  for (const auto& column : values) {
    const auto [lo, hi] = std::minmax_element(column.begin(), column.end());
    put_f64(summary, *lo);
    put_f64(summary, *hi);
  }

  Bytes b;
  put_varint(b, clock.size());
  put_varint(b, summary.size());
  b.insert(b.end(), summary.begin(), summary.end());

  // Interaction-clock column: the clock is monotone, so deltas are
  // non-negative and stay unsigned varints.
  put_varint(b, static_cast<std::uint64_t>(clock.front()));
  for (std::size_t j = 1; j < clock.size(); ++j) {
    put_varint(b, static_cast<std::uint64_t>(clock[j] - clock[j - 1]));
  }

  for (const auto& column : values) {
    if (integral_column(column)) {
      put_u8(b, 1);
      std::int64_t prev = 0;
      for (std::size_t j = 0; j < column.size(); ++j) {
        const auto v = static_cast<std::int64_t>(column[j]);
        put_svarint(b, j == 0 ? v : v - prev);
        prev = v;
      }
    } else {
      put_u8(b, 0);
      for (const double v : column) put_f64(b, v);
    }
  }
  return b;
}

// Tolerant summary decode used while indexing (columns stay untouched).
std::optional<BlockSummary> decode_block_summary(const std::uint8_t* data,
                                                 std::size_t size,
                                                 std::size_t num_channels) {
  ByteReader r(data, size);
  BlockSummary s;
  s.num_samples = r.varint();
  const std::uint64_t summary_len = r.varint();
  if (!r.ok() || s.num_samples == 0 || s.num_samples > size ||
      summary_len > r.remaining()) {
    return std::nullopt;
  }
  const std::uint64_t first = r.varint();
  const std::uint64_t last = r.varint();
  if (!r.ok() || !fits_interactions(first) || !fits_interactions(last) ||
      first > last) {
    return std::nullopt;
  }
  s.first_interactions = static_cast<Interactions>(first);
  s.last_interactions = static_cast<Interactions>(last);
  s.min.reserve(num_channels);
  s.max.reserve(num_channels);
  for (std::size_t c = 0; c < num_channels; ++c) {
    s.min.push_back(r.f64());
    s.max.push_back(r.f64());
  }
  if (!r.ok()) return std::nullopt;
  return s;
}

struct RawRecord {
  std::uint8_t type = 0;
  std::size_t payload_offset = 0;
  std::size_t payload_size = 0;
  std::size_t end_offset = 0;
};

// Frames one record at `pos`: nullopt when the bytes there are not a
// complete, checksummed record (the torn-tail case).
std::optional<RawRecord> parse_frame(const std::vector<std::uint8_t>& bytes,
                                     std::size_t pos) {
  ByteReader r(bytes.data() + pos, bytes.size() - pos);
  const std::uint8_t type = r.u8();
  const std::uint64_t len = r.varint();
  if (!r.ok() || type < kHeaderRecord || type > kEndRecord) return std::nullopt;
  if (len > r.remaining() || r.remaining() - len < 8) return std::nullopt;
  RawRecord rec;
  rec.type = type;
  rec.payload_offset = pos + r.pos();
  rec.payload_size = static_cast<std::size_t>(len);
  ByteReader tail(bytes.data() + rec.payload_offset + rec.payload_size, 8);
  if (fnv1a(bytes.data() + rec.payload_offset, rec.payload_size) != tail.fixed64()) {
    return std::nullopt;
  }
  rec.end_offset = rec.payload_offset + rec.payload_size + 8;
  return rec;
}

}  // namespace

std::uint64_t TrajectoryHeader::compute_spec_hash() const {
  std::string canon = engine;
  canon += '|';
  canon += protocol;
  canon += '|';
  canon += hex64(seed);
  canon += '|';
  canon += std::to_string(population);
  canon += '|';
  canon += std::to_string(k);
  canon += '|';
  canon += std::to_string(num_states);
  canon += '|';
  canon += std::to_string(stride);
  canon += '|';
  canon += std::to_string(checkpoint_every);
  canon += '|';
  canon += std::to_string(max_interactions);
  canon += '|';
  canon += hex64(std::bit_cast<std::uint64_t>(tau_epsilon));
  canon += '|';
  canon += std::to_string(round_divisor);
  for (const auto& name : channels) {
    canon += '|';
    canon += name;
  }
  return fnv1a(std::string_view{canon});
}

// ---------------------------------------------------------------- writer --

TrajectoryWriter::TrajectoryWriter(const std::string& path, TrajectoryHeader header)
    : TrajectoryWriter(path, std::move(header), Options{}) {}

TrajectoryWriter::TrajectoryWriter(const std::string& path,
                                   TrajectoryHeader header, Options options)
    : path_(path), header_(std::move(header)), options_(options) {
  PPSIM_CHECK(options_.block_samples > 0, "block size must be positive");
  PPSIM_CHECK(header_.population >= 2, "trajectory header: population must be >= 2");
  PPSIM_CHECK(header_.num_states >= 1, "trajectory header: empty state space");
  PPSIM_CHECK(header_.stride > 0, "trajectory header: sampling stride must be positive");
  for (const auto& name : header_.channels) validate_channel_name(name);
  header_.build_version = std::string(kBuildVersion);
  header_.spec_hash = header_.compute_spec_hash();
  out_.open(path, std::ios::binary | std::ios::trunc);
  PPSIM_CHECK(out_.good(), "cannot open trajectory for writing: " + path);
  out_.write(kTrajectoryMagic.data(),
             static_cast<std::streamsize>(kTrajectoryMagic.size()));
  write_record(kHeaderRecord, encode_header(header_));
  pending_values_.resize(header_.channels.size());
}

TrajectoryWriter::TrajectoryWriter(AppendTag, const std::string& path,
                                   TrajectoryHeader header, Options options)
    : path_(path), header_(std::move(header)), options_(options) {
  PPSIM_CHECK(options_.block_samples > 0, "block size must be positive");
  out_.open(path, std::ios::binary | std::ios::app);
  PPSIM_CHECK(out_.good(), "cannot open trajectory for appending: " + path);
  pending_values_.resize(header_.channels.size());
}

TrajectoryWriter::~TrajectoryWriter() {
  // Deliberately no flush of the pending partial block: an unfinished writer
  // mirrors a killed process, and resume regenerates the tail bit-for-bit.
  if (out_.is_open()) out_.close();
}

void TrajectoryWriter::write_record(std::uint8_t type, const Bytes& payload) {
  Bytes frame;
  frame.reserve(payload.size() + 18);
  put_u8(frame, type);
  put_varint(frame, payload.size());
  frame.insert(frame.end(), payload.begin(), payload.end());
  put_fixed64(frame, fnv1a(payload));
  out_.write(reinterpret_cast<const char*>(frame.data()),
             static_cast<std::streamsize>(frame.size()));
  PPSIM_CHECK(out_.good(), "trajectory write failed: " + path_);
}

void TrajectoryWriter::sample(Interactions interactions,
                              const std::vector<double>& values) {
  PPSIM_CHECK(!finished_, "trajectory is finished: no further samples");
  PPSIM_CHECK(values.size() == header_.channels.size(),
              "sample arity must match the header's channel list");
  PPSIM_CHECK(interactions >= 0, "sample clock must be non-negative");
  PPSIM_CHECK(pending_clock_.empty() || interactions >= pending_clock_.back(),
              "sample clock must be monotone");
  pending_clock_.push_back(interactions);
  for (std::size_t c = 0; c < values.size(); ++c) {
    pending_values_[c].push_back(values[c]);
  }
  if (pending_clock_.size() >= options_.block_samples) flush_block();
}

void TrajectoryWriter::flush_block() {
  if (pending_clock_.empty()) return;
  write_record(kBlockRecord, encode_block(pending_clock_, pending_values_));
  pending_clock_.clear();
  for (auto& column : pending_values_) column.clear();
}

void TrajectoryWriter::checkpoint(const EngineCheckpoint& state) {
  PPSIM_CHECK(!finished_, "trajectory is finished: no further checkpoints");
  PPSIM_CHECK(state.counts.size() == header_.num_states,
              "checkpoint state-space size must match the header's");
  // A checkpoint is a clean cut: everything sampled so far must be on disk,
  // so the byte stream after this point is independent of when (or whether)
  // the process dies — the key to byte-identical resume.
  flush_block();
  write_record(kCheckpointRecord, encode_checkpoint(state));
}

void TrajectoryWriter::finish(const TrajectoryEnd& end) {
  PPSIM_CHECK(!finished_, "trajectory is already finished");
  flush_block();
  write_record(kEndRecord, encode_end(end));
  finished_ = true;
  out_.close();
  PPSIM_CHECK(out_.good(), "trajectory close failed: " + path_);
}

TrajectoryWriter::Resumed TrajectoryWriter::resume(const std::string& path) {
  return resume(path, Options{});
}

TrajectoryWriter::Resumed TrajectoryWriter::resume(const std::string& path,
                                                   Options options) {
  Resumed resumed;
  TrajectoryReader reader(path);
  resumed.header = reader.header();
  if (reader.finished()) {
    resumed.finished = true;
    return resumed;
  }
  resumed.checkpoint = reader.last_checkpoint();
  const std::size_t keep = reader.resume_offset();
  std::filesystem::resize_file(path, keep);
  resumed.writer.reset(
      new TrajectoryWriter(AppendTag{}, path, resumed.header, options));
  return resumed;
}

// ------------------------------------------------------------------ sink --

void TrajectorySink::open(const std::vector<std::string>& channel_names) {
  PPSIM_CHECK(channel_names == writer_.header().channels,
              "recorder channels must match the trajectory header's");
}

void TrajectorySink::sample(Interactions interactions, double time,
                            const std::vector<double>& values) {
  (void)time;  // derived on read: interactions / population
  writer_.sample(interactions, values);
}

void TrajectorySink::checkpoint(const EngineCheckpoint& state) {
  writer_.checkpoint(state);
}

void TrajectorySink::finish(const RecordFinish& fin) {
  writer_.finish(TrajectoryEnd{.stabilized = fin.stabilized,
                               .interactions = fin.interactions,
                               .clamped = fin.clamped,
                               .consensus = fin.consensus});
}

// ---------------------------------------------------------------- reader --

TrajectoryReader::TrajectoryReader(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PPSIM_CHECK(in.good(), "cannot open trajectory: " + path);
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  bytes_.resize(static_cast<std::size_t>(size));
  if (size > 0) in.read(reinterpret_cast<char*>(bytes_.data()), size);
  PPSIM_CHECK(in.good() || size == 0, "cannot read trajectory: " + path);
  parse();
}

void TrajectoryReader::parse() {
  PPSIM_CHECK(bytes_.size() >= kTrajectoryMagic.size() &&
                  std::memcmp(bytes_.data(), kTrajectoryMagic.data(),
                              kTrajectoryMagic.size()) == 0,
              "not a ppsim trajectory archive (bad magic)");
  std::size_t pos = kTrajectoryMagic.size();

  const auto header_frame = parse_frame(bytes_, pos);
  PPSIM_CHECK(header_frame.has_value() && header_frame->type == kHeaderRecord,
              "trajectory header record is missing or torn");
  header_ = decode_header(bytes_.data() + header_frame->payload_offset,
                          header_frame->payload_size);
  pos = header_frame->end_offset;
  resume_offset_ = pos;

  while (pos < bytes_.size()) {
    const auto frame = parse_frame(bytes_, pos);
    // A half-written record, trailing garbage, or anything after the end
    // record: keep everything parsed so far, report the tear, stop.
    if (!frame.has_value() || frame->type == kHeaderRecord || end_.has_value()) {
      torn_ = true;
      torn_offset_ = pos;
      return;
    }
    const std::uint8_t* payload = bytes_.data() + frame->payload_offset;
    switch (frame->type) {
      case kBlockRecord: {
        auto summary =
            decode_block_summary(payload, frame->payload_size, header_.channels.size());
        if (!summary.has_value()) {
          torn_ = true;
          torn_offset_ = pos;
          return;
        }
        blocks_.push_back(IndexedBlock{.summary = std::move(*summary),
                                       .payload_offset = frame->payload_offset,
                                       .payload_size = frame->payload_size});
        break;
      }
      case kCheckpointRecord: {
        auto cp = decode_checkpoint(payload, frame->payload_size, header_.num_states);
        if (!cp.has_value()) {
          torn_ = true;
          torn_offset_ = pos;
          return;
        }
        checkpoints_.push_back(std::move(*cp));
        resume_offset_ = frame->end_offset;
        break;
      }
      case kEndRecord: {
        auto end = decode_end(payload, frame->payload_size);
        if (!end.has_value()) {
          torn_ = true;
          torn_offset_ = pos;
          return;
        }
        end_ = *end;
        break;
      }
      default: {
        torn_ = true;
        torn_offset_ = pos;
        return;
      }
    }
    pos = frame->end_offset;
  }
}

TrajectoryReader::BlockData TrajectoryReader::decode_block(std::size_t i) const {
  const IndexedBlock& blk = blocks_.at(i);
  ByteReader r(bytes_.data() + blk.payload_offset, blk.payload_size);
  const std::uint64_t n = r.varint();
  const std::uint64_t summary_len = r.varint();
  PPSIM_CHECK(r.ok() && n == blk.summary.num_samples && n <= blk.payload_size,
              "trajectory block is inconsistent with its summary");
  r.skip(static_cast<std::size_t>(summary_len));

  BlockData data;
  data.interactions.reserve(n);
  const std::uint64_t first = r.varint();
  PPSIM_CHECK(r.ok() && fits_interactions(first),
              "trajectory block clock column is malformed");
  data.interactions.push_back(static_cast<Interactions>(first));
  for (std::uint64_t j = 1; j < n; ++j) {
    const std::uint64_t delta = r.varint();
    const Interactions prev = data.interactions.back();
    PPSIM_CHECK(r.ok() &&
                    delta <= static_cast<std::uint64_t>(
                                 std::numeric_limits<Interactions>::max() - prev),
                "trajectory block clock column is malformed");
    data.interactions.push_back(prev + static_cast<Interactions>(delta));
  }

  data.values.resize(header_.channels.size());
  for (auto& column : data.values) {
    column.reserve(n);
    const std::uint8_t encoding = r.u8();
    PPSIM_CHECK(r.ok() && encoding <= 1,
                "trajectory block has an unknown column encoding");
    if (encoding == 1) {
      std::int64_t value = 0;
      for (std::uint64_t j = 0; j < n; ++j) {
        const std::int64_t delta = r.svarint();
        value = j == 0 ? delta : value + delta;
        column.push_back(static_cast<double>(value));
      }
    } else {
      for (std::uint64_t j = 0; j < n; ++j) column.push_back(r.f64());
    }
  }
  PPSIM_CHECK(r.ok(), "trajectory block columns are truncated");
  PPSIM_CHECK(data.interactions.front() == blk.summary.first_interactions &&
                  data.interactions.back() == blk.summary.last_interactions,
              "trajectory block clock disagrees with its summary");
  return data;
}

std::optional<EngineCheckpoint> TrajectoryReader::last_checkpoint() const {
  if (checkpoints_.empty()) return std::nullopt;
  return checkpoints_.back();
}

std::size_t TrajectoryReader::total_samples() const noexcept {
  std::size_t total = 0;
  for (const auto& blk : blocks_) total += blk.summary.num_samples;
  return total;
}

std::optional<std::size_t> TrajectoryReader::channel_index(
    const std::string& name) const {
  for (std::size_t c = 0; c < header_.channels.size(); ++c) {
    if (header_.channels[c] == name) return c;
  }
  return std::nullopt;
}

TimeSeries TrajectoryReader::to_series(const std::vector<std::string>& channels,
                                       std::size_t every) const {
  PPSIM_CHECK(every >= 1, "downsampling factor must be >= 1");
  std::vector<std::size_t> selected;
  TimeSeries series;
  if (channels.empty()) {
    series.channel_names = header_.channels;
    for (std::size_t c = 0; c < header_.channels.size(); ++c) selected.push_back(c);
  } else {
    for (const auto& name : channels) {
      const auto idx = channel_index(name);
      PPSIM_CHECK(idx.has_value(), "unknown channel in archive: " + name);
      selected.push_back(*idx);
      series.channel_names.push_back(name);
    }
  }
  series.channels.resize(selected.size());
  const auto n = static_cast<double>(header_.population);
  std::size_t global = 0;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    const BlockData data = decode_block(i);
    for (std::size_t j = 0; j < data.interactions.size(); ++j, ++global) {
      if (global % every != 0) continue;
      series.parallel_time.push_back(static_cast<double>(data.interactions[j]) / n);
      for (std::size_t s = 0; s < selected.size(); ++s) {
        series.channels[s].push_back(data.values[selected[s]][j]);
      }
    }
  }
  return series;
}

double TrajectoryReader::first_time_at_least(const std::string& channel,
                                             double level) const {
  const auto idx = channel_index(channel);
  PPSIM_CHECK(idx.has_value(), "unknown channel in archive: " + channel);
  const auto n = static_cast<double>(header_.population);
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    // The footer's max bounds every sample in the block: a block that never
    // reaches the level is skipped without decoding a single column.
    if (blocks_[i].summary.max[*idx] < level) continue;
    const BlockData data = decode_block(i);
    for (std::size_t j = 0; j < data.interactions.size(); ++j) {
      if (data.values[*idx][j] >= level) {
        return static_cast<double>(data.interactions[j]) / n;
      }
    }
  }
  return std::numeric_limits<double>::quiet_NaN();
}

double TrajectoryReader::channel_max(const std::string& channel) const {
  const auto idx = channel_index(channel);
  PPSIM_CHECK(idx.has_value(), "unknown channel in archive: " + channel);
  double best = std::numeric_limits<double>::quiet_NaN();
  for (const auto& blk : blocks_) {
    const double m = blk.summary.max[*idx];
    if (std::isnan(best) || m > best) best = m;
  }
  return best;
}

double TrajectoryReader::channel_min(const std::string& channel) const {
  const auto idx = channel_index(channel);
  PPSIM_CHECK(idx.has_value(), "unknown channel in archive: " + channel);
  double best = std::numeric_limits<double>::quiet_NaN();
  for (const auto& blk : blocks_) {
    const double m = blk.summary.min[*idx];
    if (std::isnan(best) || m < best) best = m;
  }
  return best;
}

}  // namespace ppsim::io
