// AVX2 round kernel: batched exact binomial/multinomial variates for up to
// four lockstep trials of the same sweep cell.
//
// Shape of the implementation (real code only when PPSIM_KERNELS_AVX2 is
// set by CMake after the -mavx2 feature check; otherwise this file compiles
// to the "compiled out" registry stubs):
//
//   * The four trial generators are run as lanes of a SIMD xoshiro256++
//     (one __m256i per state word, the exact update rule of
//     util/rng.hpp's scalar generator). Each advance loads the tasks' live
//     256-bit states into the lanes and stores them back afterwards, so a
//     trial's randomness still flows through its own checkpointable RNG —
//     the lanes just advance in lockstep, one _mm256 step producing one
//     52-bit uniform per trial via the exponent-splice bit trick.
//   * Binomial draws are exact: inversion (one uniform, CDF walk) when
//     n·min(p,1−p) < 10, else the BTRS transformed-rejection sampler
//     (Hörmann 1993, the TensorFlow/JAX formulation with the Stirling-tail
//     series — no lgamma on the hot path, unlike
//     std::binomial_distribution's per-call distribution setup). All lanes
//     draw from shared (u, v) uniform blocks and iterate until every lane's
//     rejection loop accepts, so a group's draw count is a deterministic
//     function of the group's RNG states alone.
//   * The multinomial is the same conditional-binomial chain as the scalar
//     kernel, walked bucket-by-bucket across all lanes so the per-bucket
//     binomials vectorize their uniform supply.
//
// Determinism: a single advance() is a pure function of (task RNG state,
// law, batch); an advance_batch() group of the same tasks in the same order
// is a pure function of the group. The sweep runner forms groups by trial
// index, never by schedule, so avx2 sweep JSON is --threads-invariant. The
// draw *sequence* differs from kScalar by design; equivalence is pinned
// distributionally in tests/kernel_distribution_test.cpp (chi-square on the
// exact pair law, binomial moments at extreme parameters, KS against scalar
// hitting times).
#include "ppsim/kernels/round_kernel.hpp"

#if PPSIM_KERNELS_AVX2

#include <immintrin.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>

namespace ppsim::kernels {
namespace {

constexpr std::size_t kLanes = 4;

/// Four xoshiro256++ generators advanced in lockstep, states resident in
/// registers. Uses exactly util/rng.hpp's update rule so the states written
/// back remain valid checkpointable Xoshiro256pp states.
class Xoshiro4 {
 public:
  void load(RoundTask* const* tasks, std::size_t count) {
    std::array<std::array<std::uint64_t, 4>, kLanes> st;
    for (std::size_t l = 0; l < kLanes; ++l) {
      // Unused trailing lanes mirror lane 0; their output is discarded and
      // their state is never stored back.
      st[l] = tasks[std::min(l, count - 1)]->rng->state();
    }
    for (int w = 0; w < 4; ++w) {
      s_[w] = _mm256_set_epi64x(
          static_cast<long long>(st[3][w]), static_cast<long long>(st[2][w]),
          static_cast<long long>(st[1][w]), static_cast<long long>(st[0][w]));
    }
  }

  void store(RoundTask* const* tasks, std::size_t count) const {
    alignas(32) std::uint64_t w[4][kLanes];
    for (int i = 0; i < 4; ++i) {
      _mm256_store_si256(reinterpret_cast<__m256i*>(w[i]), s_[i]);
    }
    for (std::size_t l = 0; l < count; ++l) {
      tasks[l]->rng->set_state({w[0][l], w[1][l], w[2][l], w[3][l]});
    }
  }

  /// One lockstep step: writes a uniform in [0, 1) with 52 random bits per
  /// lane (top bits spliced into the [1, 2) mantissa, then shifted down).
  void uniforms(double out[kLanes]) {
    const __m256i bits = _mm256_srli_epi64(next(), 12);
    const __m256i one = _mm256_set1_epi64x(0x3FF0000000000000LL);
    const __m256d d = _mm256_castsi256_pd(_mm256_or_si256(bits, one));
    _mm256_storeu_pd(out, _mm256_sub_pd(d, _mm256_set1_pd(1.0)));
  }

 private:
  static __m256i rotl(__m256i x, int k) {
    return _mm256_or_si256(_mm256_slli_epi64(x, k),
                           _mm256_srli_epi64(x, 64 - k));
  }

  __m256i next() {
    const __m256i result =
        _mm256_add_epi64(rotl(_mm256_add_epi64(s_[0], s_[3]), 23), s_[0]);
    const __m256i t = _mm256_slli_epi64(s_[1], 17);
    s_[2] = _mm256_xor_si256(s_[2], s_[0]);
    s_[3] = _mm256_xor_si256(s_[3], s_[1]);
    s_[1] = _mm256_xor_si256(s_[1], s_[2]);
    s_[0] = _mm256_xor_si256(s_[0], s_[3]);
    s_[2] = _mm256_xor_si256(s_[2], t);
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  __m256i s_[4];
};

/// Stirling series tail t(k) = lgamma(k+1) − (k+½)·log(k) + k − ½·log(2π):
/// tabulated for k < 10, three-term asymptotic series beyond. The BTRS
/// acceptance bound is built from these tails instead of lgamma calls.
double stirling_tail(double k) {
  static constexpr double kTable[] = {
      0.0810614667953272,  0.0413406959554092,  0.0276779256849983,
      0.02079067210376509, 0.0166446911898211,  0.0138761288230707,
      0.0118967099458917,  0.0104112652619720,  0.00925546218271273,
      0.00833056343336287};
  if (k < 10.0) return kTable[static_cast<int>(k)];
  const double inv = 1.0 / (k + 1.0);
  const double inv2 = inv * inv;
  return (1.0 / 12.0 - (1.0 / 360.0 - (1.0 / 1260.0) * inv2) * inv2) * inv;
}

/// BTRS per-(n, p) setup, shared by every attempt of one draw. Requires
/// 0 < p ≤ 0.5 and n·p ≥ 10.
struct BtrsSetup {
  double r, b, a, c, vr, alpha, m;
  double n;

  void init(std::int64_t trials, double p) {
    n = static_cast<double>(trials);
    const double q = 1.0 - p;
    r = p / q;
    const double spq = std::sqrt(n * p * q);
    b = 1.15 + 2.53 * spq;
    a = -0.0873 + 0.0248 * b + 0.01 * p;
    c = n * p + 0.5;
    vr = 0.92 - 4.2 / b;
    alpha = (2.83 + 5.1 / b) * spq;
    m = std::floor((n + 1.0) * p);
  }

  /// One transformed-rejection attempt from the uniform pair (u, v).
  bool attempt(double u, double v, std::int64_t& out) const {
    u -= 0.5;
    const double us = 0.5 - std::abs(u);
    const double kd = std::floor((2.0 * a / us + b) * u + c);
    if (kd < 0.0 || kd > n) return false;
    if (us >= 0.07 && v <= vr) {
      out = static_cast<std::int64_t>(kd);
      return true;
    }
    const double lv = std::log(v * alpha / (a / (us * us) + b));
    const double bound =
        (m + 0.5) * std::log((m + 1.0) / (r * (n - m + 1.0))) +
        (n + 1.0) * std::log((n - m + 1.0) / (n - kd + 1.0)) +
        (kd + 0.5) * std::log(r * (n - kd + 1.0) / (kd + 1.0)) +
        stirling_tail(m) + stirling_tail(n - m) - stirling_tail(kd) -
        stirling_tail(n - kd);
    if (lv > bound) return false;
    out = static_cast<std::int64_t>(kd);
    return true;
  }
};

/// Inversion sampler: walks the CDF with a single uniform. Requires
/// 0 < p ≤ 0.5 and n·p < 10 (so the start probability q^n cannot
/// underflow: n·|log1p(−p)| ≤ 2·n·p < 20).
std::int64_t binomial_inversion(std::int64_t n, double p, double u) {
  const double r = p / (1.0 - p);
  const double nd = static_cast<double>(n);
  double pmf = std::exp(nd * std::log1p(-p));
  double cdf = pmf;
  std::int64_t k = 0;
  while (u > cdf && k < n) {
    ++k;
    pmf *= (nd - static_cast<double>(k) + 1.0) * r / static_cast<double>(k);
    cdf += pmf;
  }
  return k;
}

/// One pending per-lane binomial request; resolve_binomials() drains a set
/// of these against the shared uniform supply.
struct BinomialReq {
  std::int64_t n = 0;
  double p = 0.0;      ///< min(p, 1−p) after the reflection
  bool flip = false;   ///< result = n − draw(n, 1−p)
  bool use_btrs = false;
  BtrsSetup btrs;
  std::int64_t result = 0;
  bool pending = false;

  void init(std::int64_t trials, double prob) {
    prob = std::clamp(prob, 0.0, 1.0);
    if (trials <= 0 || prob == 0.0) {
      result = 0;
      pending = false;
      return;
    }
    if (prob == 1.0) {
      result = trials;
      pending = false;
      return;
    }
    n = trials;
    flip = prob > 0.5;
    p = flip ? 1.0 - prob : prob;
    use_btrs = static_cast<double>(n) * p >= 10.0;
    if (use_btrs) btrs.init(n, p);
    pending = true;
  }

  std::int64_t value() const { return flip ? n - result : result; }
};

/// Drains up to kLanes pending requests: every iteration draws one shared
/// (u, v) uniform block and lets each still-pending lane consume its lane's
/// values — inversion lanes finish on the first block, BTRS lanes loop
/// until their rejection test accepts. Trivial lanes (resolved in init)
/// consume no randomness at all, matching the scalar kernel's convention
/// for p ∈ {0, 1}.
void resolve_binomials(Xoshiro4& gen, BinomialReq* reqs, std::size_t count) {
  bool pending = false;
  for (std::size_t l = 0; l < count; ++l) pending = pending || reqs[l].pending;
  double u[kLanes];
  double v[kLanes];
  while (pending) {
    gen.uniforms(u);
    gen.uniforms(v);
    pending = false;
    for (std::size_t l = 0; l < count; ++l) {
      BinomialReq& req = reqs[l];
      if (!req.pending) continue;
      if (req.use_btrs) {
        if (!req.btrs.attempt(u[l], v[l], req.result)) {
          pending = true;
          continue;
        }
      } else {
        req.result = binomial_inversion(req.n, req.p, u[l]);
      }
      req.pending = false;
    }
  }
}

class Avx2Kernel final : public RoundKernel {
 public:
  KernelKind kind() const noexcept override { return KernelKind::kAvx2; }
  std::size_t lockstep_width() const noexcept override { return kLanes; }

  void advance(RoundTask& task) const override {
    RoundTask* one[1] = {&task};
    advance_group(one, 1);
  }

  void advance_batch(std::span<RoundTask* const> tasks) const override {
    for (std::size_t i = 0; i < tasks.size(); i += kLanes) {
      advance_group(tasks.data() + i, std::min(kLanes, tasks.size() - i));
    }
  }

 private:
  static void advance_group(RoundTask* const* tasks, std::size_t count) {
    Xoshiro4 gen;
    gen.load(tasks, count);

    // Stage 1: the null split — Binomial(batch, active/total) per lane.
    BinomialReq reqs[kLanes];
    for (std::size_t l = 0; l < count; ++l) {
      const PairLaw& law = *tasks[l]->law;
      reqs[l].init(tasks[l]->batch, law.active_weight() / law.total_weight());
    }
    resolve_binomials(gen, reqs, count);

    // Stage 2: the conditional-binomial multinomial chain, bucket position
    // by bucket position across the lanes. Lane l walks its own law's
    // weights; lanes that finish (remaining hits 0 or buckets exhausted)
    // drop out of the uniform supply.
    std::int64_t remaining[kLanes];
    double mass[kLanes];
    for (std::size_t l = 0; l < count; ++l) {
      const PairLaw& law = *tasks[l]->law;
      tasks[l]->active = reqs[l].value();
      tasks[l]->draws->assign(law.size(), 0);
      remaining[l] = reqs[l].value();
      mass[l] = law.active_weight();
    }
    for (std::size_t i = 0;; ++i) {
      bool any = false;
      for (std::size_t l = 0; l < count; ++l) {
        const std::vector<double>& w = tasks[l]->law->weights();
        if (remaining[l] <= 0 || i + 1 >= w.size()) {
          reqs[l].pending = false;
          reqs[l].result = 0;
          reqs[l].flip = false;
          continue;
        }
        const double p = mass[l] > 0.0 ? w[i] / mass[l] : 0.0;
        reqs[l].init(remaining[l], p);
        any = true;
      }
      if (!any) break;
      resolve_binomials(gen, reqs, count);
      for (std::size_t l = 0; l < count; ++l) {
        const std::vector<double>& w = tasks[l]->law->weights();
        if (remaining[l] <= 0 || i + 1 >= w.size()) continue;
        const std::int64_t draw = std::min(reqs[l].value(), remaining[l]);
        (*tasks[l]->draws)[i] = draw;
        remaining[l] -= draw;
        mass[l] -= w[i];
      }
    }
    // The last bucket absorbs what the chain left, exactly as the scalar
    // multinomial does.
    for (std::size_t l = 0; l < count; ++l) {
      if (remaining[l] > 0 && !tasks[l]->draws->empty()) {
        tasks[l]->draws->back() += remaining[l];
      }
    }

    gen.store(tasks, count);
  }
};

}  // namespace

bool avx2_compiled() noexcept { return true; }

const RoundKernel* avx2_kernel_or_null() noexcept {
  static const Avx2Kernel kernel;
  return &kernel;
}

}  // namespace ppsim::kernels

#else  // !PPSIM_KERNELS_AVX2

namespace ppsim::kernels {

bool avx2_compiled() noexcept { return false; }

const RoundKernel* avx2_kernel_or_null() noexcept { return nullptr; }

}  // namespace ppsim::kernels

#endif
