#include "ppsim/kernels/round_kernel.hpp"

#include "ppsim/util/check.hpp"

namespace ppsim::kernels {

std::string to_string(KernelKind kind) {
  switch (kind) {
    case KernelKind::kScalar:
      return "scalar";
    case KernelKind::kAvx2:
      return "avx2";
  }
  return "unknown";
}

std::optional<KernelKind> parse_kernel(const std::string& name) {
  if (name == "scalar") return KernelKind::kScalar;
  if (name == "avx2") return KernelKind::kAvx2;
  return std::nullopt;
}

bool avx2_supported() noexcept {
#if defined(__GNUC__) || defined(__clang__)
  return avx2_compiled() && __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

std::vector<KernelKind> available_kernels() {
  std::vector<KernelKind> kinds{KernelKind::kScalar};
  if (avx2_supported()) kinds.push_back(KernelKind::kAvx2);
  return kinds;
}

KernelKind auto_kind() noexcept {
  return avx2_supported() ? KernelKind::kAvx2 : KernelKind::kScalar;
}

const RoundKernel& resolve(KernelKind kind) {
  if (kind == KernelKind::kScalar) return scalar_kernel();
  PPSIM_CHECK(kind == KernelKind::kAvx2, "unknown kernel kind");
  PPSIM_CHECK(avx2_compiled(),
              "the avx2 round kernel was compiled out of this build "
              "(configure with -DPPSIM_ENABLE_AVX2=ON and a compiler "
              "accepting -mavx2); use --kernel scalar or --kernel auto");
  PPSIM_CHECK(avx2_supported(),
              "this CPU does not report the avx2 capability bit; use "
              "--kernel scalar or --kernel auto");
  const RoundKernel* kernel = avx2_kernel_or_null();
  PPSIM_CHECK(kernel != nullptr, "avx2 kernel registry inconsistency");
  return *kernel;
}

KernelKind parse_kernel_flag(const std::string& flag) {
  if (flag == "auto") return auto_kind();
  const std::optional<KernelKind> kind = parse_kernel(flag);
  PPSIM_CHECK(kind.has_value(),
              "--kernel must be auto, scalar or avx2; got '" + flag + "'");
  resolve(*kind);  // an explicitly requested backend must exist: fail early
  return *kind;
}

}  // namespace ppsim::kernels
