// The scalar baseline kernel: always built, and the determinism anchor.
//
// Its draw sequence is exactly the engines' historical inline code — one
// std::binomial_distribution draw for the null split, then the
// conditional-binomial multinomial chain (multinomial_into) — so every
// byte-identical-JSON pin and golden trajectory recorded before the kernels
// layer existed reproduces bit for bit (tests/engine_equivalence_test.cpp
// pins captured pre-refactor values against this kernel).
#include "ppsim/kernels/round_kernel.hpp"
#include "ppsim/util/random_variates.hpp"

namespace ppsim::kernels {
namespace {

class ScalarKernel final : public RoundKernel {
 public:
  KernelKind kind() const noexcept override { return KernelKind::kScalar; }

  void advance(RoundTask& task) const override {
    const PairLaw& law = *task.law;
    task.active = binomial(*task.rng, task.batch,
                           law.active_weight() / law.total_weight());
    if (task.active > 0) {
      multinomial_into(*task.rng, task.active, law.weights(), *task.draws);
    }
  }
};

}  // namespace

const RoundKernel& scalar_kernel() noexcept {
  static const ScalarKernel kernel;
  return kernel;
}

}  // namespace ppsim::kernels
