#include "ppsim/kernels/pair_law.hpp"

#include <algorithm>

#include "ppsim/util/check.hpp"

namespace ppsim::kernels {

void PairLaw::rebuild(const TransitionTable& table, const Configuration& config) {
  const auto n = static_cast<double>(config.population());
  total_weight_ = n * (n - 1.0);
  a_.clear();
  b_.clear();
  t_.clear();
  weight_.clear();
  consumption_.assign(config.num_states(), 0.0);
  active_weight_ = 0.0;
  const auto& counts = config.counts();
  const auto q = static_cast<State>(config.num_states());
  for (State a = 0; a < q; ++a) {
    if (counts[a] == 0) continue;
    for (State b = 0; b < q; ++b) {
      if (counts[b] == 0) continue;
      if (a == b && counts[a] < 2) continue;
      if (table.is_null(a, b)) continue;
      const double w = static_cast<double>(counts[a]) *
                       static_cast<double>(a == b ? counts[b] - 1 : counts[b]);
      const Transition t = table.apply(a, b);
      a_.push_back(a);
      b_.push_back(b);
      t_.push_back(t);
      weight_.push_back(w);
      active_weight_ += w;
      // One interaction on (a, b) removes an agent from each side whose
      // state actually changes — exactly what apply_one will move, so the
      // collapsed engine's τ drain bound matches the clamp's exposure.
      if (t.initiator != a) consumption_[a] += w;
      if (t.responder != b) consumption_[b] += w;
    }
  }
  ++generation_;
}

const AliasTable& PairLaw::alias() const {
  PPSIM_CHECK(!empty(), "alias table requires at least one active pair");
  if (alias_generation_ != generation_) {
    alias_ = AliasTable(weight_);
    alias_generation_ = generation_;
  }
  return alias_;
}

ApplyResult apply_one(const PairLaw& law, Configuration& config, std::size_t i,
                      Interactions m) {
  ApplyResult result;
  const State a = law.a(i);
  const State b = law.b(i);
  const Transition& t = law.transition(i);
  const Interactions drawn = m;
  // Clamp to the live counts: earlier pairs in this round may have drained a
  // state below what the start-of-round weights promised. Every clamp keeps
  // the bulk result inside the sequential chain's reachable set: each (a, a)
  // interaction needs two live a-agents, so with one leaver at most count-1
  // interactions can fire (never draining the state), and with two leavers
  // at most count/2.
  if (a == b) {
    const int leavers = (t.initiator != a ? 1 : 0) + (t.responder != a ? 1 : 0);
    const Interactions cap =
        leavers == 2 ? config.count(a) / 2 : config.count(a) - 1;
    m = std::min(m, std::max<Interactions>(0, cap));
    result.clamped = drawn - m;
    if (m == 0) return result;
    if (t.initiator != a) config.move_agents(a, t.initiator, m);
    if (t.responder != a) config.move_agents(a, t.responder, m);
  } else {
    // Both participants must be live, even on the side f leaves unchanged.
    if (config.count(a) == 0 || config.count(b) == 0) {
      result.clamped = drawn;
      return result;
    }
    if (t.initiator != a) m = std::min<Interactions>(m, config.count(a));
    if (t.responder != b) m = std::min<Interactions>(m, config.count(b));
    result.clamped = drawn - m;
    if (m == 0) return result;
    // Remove both participants before re-adding so a swap transition
    // (f(a,b) = (b,a)) never transiently overdraws either state.
    config.move_agents(a, t.initiator, m);
    config.move_agents(b, t.responder, m);
  }
  result.moved = true;
  return result;
}

ApplyResult apply_draws(const PairLaw& law, Configuration& config,
                        const std::vector<std::int64_t>& draws) {
  ApplyResult result;
  for (std::size_t i = 0; i < draws.size(); ++i) {
    if (draws[i] <= 0) continue;
    const ApplyResult one = apply_one(law, config, i, draws[i]);
    result.clamped = sat_add(result.clamped, one.clamped);
    result.moved = result.moved || one.moved;
  }
  return result;
}

}  // namespace ppsim::kernels
