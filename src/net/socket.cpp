#include "ppsim/net/socket.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "ppsim/util/check.hpp"

namespace ppsim::net {

namespace {

/// Fills a sockaddr_un for `path`, rejecting paths that don't fit — a
/// truncated path would bind somewhere the client never looks.
sockaddr_un make_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  PPSIM_CHECK(path.size() < sizeof(addr.sun_path),
              "unix socket path too long (" + std::to_string(path.size()) +
                  " bytes): " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Socket::send_all(std::string_view data) noexcept {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t sent = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += sent;
    left -= static_cast<std::size_t>(sent);
  }
  return true;
}

long Socket::recv_some(char* buf, std::size_t len) noexcept {
  while (true) {
    const ssize_t got = ::recv(fd_, buf, len, 0);
    if (got < 0 && errno == EINTR) continue;
    return static_cast<long>(got);
  }
}

Listener Listener::listen_on(const std::string& path, int backlog) {
  const sockaddr_un addr = make_address(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  PPSIM_CHECK(fd >= 0, std::string("socket(): ") + std::strerror(errno));
  ::unlink(path.c_str());  // clear a stale socket file from a dead daemon
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    PPSIM_CHECK(false, "bind(" + path + "): " + std::strerror(err));
  }
  if (::listen(fd, backlog) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(path.c_str());
    PPSIM_CHECK(false, "listen(" + path + "): " + std::strerror(err));
  }
  return Listener(fd, path);
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.path_.clear();
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    if (!path_.empty()) ::unlink(path_.c_str());
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.path_.clear();
  }
  return *this;
}

Listener::~Listener() {
  close();
  if (!path_.empty()) ::unlink(path_.c_str());
}

Socket Listener::accept() noexcept {
  while (true) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) return Socket(client);
    if (errno == EINTR) continue;
    return Socket();
  }
}

void Listener::close() noexcept {
  if (fd_ >= 0) {
    // shutdown() wakes a thread blocked in accept(); close alone may not.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

Socket connect_to(const std::string& path) {
  const sockaddr_un addr = make_address(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  PPSIM_CHECK(fd >= 0, std::string("socket(): ") + std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int err = errno;
    ::close(fd);
    PPSIM_CHECK(false, "connect(" + path + "): " + std::strerror(err));
  }
  return Socket(fd);
}

std::optional<std::string> LineChannel::read_line() {
  if (broken_) return std::nullopt;
  while (true) {
    const std::size_t lf = buffer_.find('\n');
    if (lf != std::string::npos) {
      std::string line = buffer_.substr(0, lf);
      buffer_.erase(0, lf + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (buffer_.size() > max_line_) {
      broken_ = true;  // over-long line: drop the peer, don't buffer forever
      return std::nullopt;
    }
    char chunk[4096];
    const long got = socket_.recv_some(chunk, sizeof chunk);
    if (got <= 0) {
      broken_ = true;
      return std::nullopt;
    }
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
}

bool LineChannel::write_line(std::string_view line) {
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');
  return socket_.send_all(framed);
}

}  // namespace ppsim::net
