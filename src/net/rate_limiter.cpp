#include "ppsim/net/rate_limiter.hpp"

#include <algorithm>

#include "ppsim/util/check.hpp"

namespace ppsim::net {

TokenBucket::TokenBucket(double capacity, double refill_per_second)
    : capacity_(capacity),
      refill_per_second_(refill_per_second),
      tokens_(capacity) {
  PPSIM_CHECK(capacity_ >= 1.0, "token bucket capacity must be >= 1");
  PPSIM_CHECK(refill_per_second_ > 0.0, "token bucket refill rate must be > 0");
}

void TokenBucket::refill(double now_seconds) {
  if (!started_) {
    started_ = true;
    last_refill_ = now_seconds;
    return;
  }
  if (now_seconds <= last_refill_) return;  // non-monotone caller clock
  tokens_ = std::min(capacity_,
                     tokens_ + (now_seconds - last_refill_) * refill_per_second_);
  last_refill_ = now_seconds;
}

bool TokenBucket::try_acquire(double now_seconds) {
  refill(now_seconds);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double TokenBucket::available(double now_seconds) {
  refill(now_seconds);
  return tokens_;
}

ClientRateLimiter::ClientRateLimiter(double capacity, double refill_per_second)
    : capacity_(capacity), refill_per_second_(refill_per_second) {
  // Validate eagerly: a bad rate should fail at server construction, not on
  // the first request.
  TokenBucket probe(capacity, refill_per_second);
  (void)probe;
}

bool ClientRateLimiter::try_acquire(std::uint64_t client, double now_seconds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = buckets_.find(client);
  if (it == buckets_.end()) {
    it = buckets_.emplace(client, TokenBucket(capacity_, refill_per_second_))
             .first;
  }
  return it->second.try_acquire(now_seconds);
}

}  // namespace ppsim::net
