#include "ppsim/net/service.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "ppsim/analysis/bounds.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/core/engine.hpp"
#include "ppsim/core/runner.hpp"
#include "ppsim/core/sweep.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/check.hpp"
#include "ppsim/util/json.hpp"

namespace ppsim::net {

namespace {

/// A request axis that is either one number or an array of numbers.
std::vector<std::int64_t> int_axis(const JsonValue& request,
                                   const std::string& key,
                                   std::int64_t fallback) {
  const JsonValue* v = request.find(key);
  if (v == nullptr) return {fallback};
  if (v->is_array()) {
    PPSIM_CHECK(!v->items().empty(), "request field '" + key + "' is empty");
    std::vector<std::int64_t> out;
    out.reserve(v->items().size());
    for (const JsonValue& item : v->items()) out.push_back(item.as_int());
    return out;
  }
  return {v->as_int()};
}

struct ParsedSubmit {
  SweepSpec spec;
  double max_parallel = 100000.0;
  bool engine_override = false;
  ScenarioSpec scenario;  ///< adversary/churn knobs (sequential engine only)
  std::string fn_id;  ///< trial function identity for the cache key
};

/// Builds the sweep spec a submit request describes, mirroring ppsim_run's
/// construction exactly (auto bias = whp_bias(n), budget = max_parallel * n,
/// engine auto = the specialized sequential UsdEngine) — the server's
/// byte-identity with the offline tool depends on this being the SAME
/// recipe, not a similar one.
ParsedSubmit parse_submit(const JsonValue& request,
                          const ServiceConfig& config) {
  const std::string protocol = request.get_string("protocol", "usd");
  PPSIM_CHECK(protocol == "usd",
              "the sweep service serves --protocol usd only (got '" +
                  protocol + "')");

  ParsedSubmit p;
  p.spec.name = request.get_string("name", "ppsim_run");
  PPSIM_CHECK(!p.spec.name.empty(), "request field 'name' must be non-empty");

  const std::int64_t trials = request.get_int("trials", 1);
  PPSIM_CHECK(trials >= 1 && static_cast<std::size_t>(trials) <= config.max_trials,
              "request field 'trials' out of range [1, " +
                  std::to_string(config.max_trials) + "]");
  p.spec.trials = static_cast<std::size_t>(trials);
  p.spec.base_seed = static_cast<std::uint64_t>(request.get_int("seed", 1));

  std::int64_t threads = request.get_int("threads", 1);
  PPSIM_CHECK(threads >= 0, "request field 'threads' must be >= 0");
  if (config.max_threads > 0) {
    threads = std::min<std::int64_t>(
        threads == 0 ? config.max_threads : threads, config.max_threads);
  }
  p.spec.threads = static_cast<unsigned>(threads);

  // kScalar default (not "auto"): a daemon's cache outlives one process, so
  // the default must not depend on which host resolved it. Clients wanting
  // the widest kernel ask for it explicitly.
  p.spec.kernel =
      kernels::parse_kernel_flag(request.get_string("kernel", "scalar"));

  const std::string engine_flag = request.get_string("engine", "auto");
  std::optional<EngineKind> engine;
  if (engine_flag != "auto") {
    engine = parse_engine(engine_flag);
    PPSIM_CHECK(engine.has_value(),
                "request field 'engine' must be auto | sequential | virtual |"
                " batched | collapsed");
  }
  p.engine_override = engine.has_value();

  p.max_parallel = request.get_number("max_parallel", 100000.0);
  PPSIM_CHECK(p.max_parallel > 0.0,
              "request field 'max_parallel' must be > 0");

  // Scenario knobs (core/scenario.hpp), mirroring ppsim_run's --adversary /
  // --churn. They land in every cell's params, so the canonical cell key —
  // and therefore the cache identity — distinguishes scenario sweeps from
  // plain ones without any fn_id change; a zero-knob request stamps nothing
  // and keys identically to a pre-scenario submit.
  p.scenario.adversary_strength = request.get_number("adversary", 0.0);
  p.scenario.churn_rate = request.get_number("churn", 0.0);
  PPSIM_CHECK(p.scenario.adversary_strength >= 0.0 &&
                  p.scenario.adversary_strength <= 1.0,
              "request field 'adversary' must be in [0, 1]");
  PPSIM_CHECK(p.scenario.churn_rate >= 0.0 && p.scenario.churn_rate <= 1.0,
              "request field 'churn' must be in [0, 1]");
  PPSIM_CHECK(!p.scenario.any() || !p.engine_override,
              "scenario fields (adversary/churn) require engine auto "
              "(the specialized sequential USD engine)");

  const std::vector<std::int64_t> ns = int_axis(request, "n", 100000);
  const std::vector<std::int64_t> ks = int_axis(request, "k", 2);
  PPSIM_CHECK(ns.size() * ks.size() <= config.max_cells,
              "request grid exceeds " + std::to_string(config.max_cells) +
                  " cells");

  const JsonValue* bias_field = request.find("bias");
  const bool auto_bias =
      bias_field == nullptr ||
      (bias_field->is_string() && bias_field->as_string() == "auto");

  // Grid order: n outer, k inner — cell_index feeds the seeding discipline,
  // so this order is part of the cacheable identity of every cell.
  for (const std::int64_t n : ns) {
    PPSIM_CHECK(n >= 2, "request field 'n' must be >= 2");
    for (const std::int64_t k : ks) {
      PPSIM_CHECK(k >= 1, "request field 'k' must be >= 1");
      SweepCell cell;
      cell.n = static_cast<Count>(n);
      cell.k = static_cast<std::size_t>(k);
      const Count bias =
          auto_bias ? static_cast<Count>(bounds::whp_bias(cell.n))
                    : static_cast<Count>(bias_field->as_int());
      cell.bias = static_cast<double>(bias);
      cell.protocol = "usd";
      cell.engine = engine.value_or(EngineKind::kSequential);
      cell.params = p.scenario.params();
      p.spec.cells.push_back(std::move(cell));
    }
  }

  // The budget (max_parallel * n) is the only trial input not already in the
  // canonical cell key, so the fn id carries it; n is in the key, making the
  // per-cell budget fully determined.
  p.fn_id = std::string(p.engine_override ? "usd/engine/v1" : "usd/specialized/v1") +
            ";max_parallel=" + JsonObject::render_double(p.max_parallel);
  return p;
}

/// The two USD trial bodies, verbatim from examples/ppsim_run.cpp (budget
/// and initial configuration derived per cell instead of hoisted, which
/// changes no bytes — both are deterministic functions of the cell).
SweepTrialFn make_trial_fn(const ParsedSubmit& p) {
  const double max_parallel = p.max_parallel;
  if (p.engine_override) {
    return [max_parallel](const SweepTrial& ctx) {
      const UndecidedStateDynamics usd(ctx.cell.k);
      const InitialConfig init = adversarial_configuration(
          ctx.cell.n, ctx.cell.k, static_cast<Count>(ctx.cell.bias));
      const Configuration initial =
          UndecidedStateDynamics::initial_configuration(init.opinion_counts);
      const auto budget = static_cast<Interactions>(
          max_parallel * static_cast<double>(ctx.cell.n));
      const kernels::KernelKind kernel =
          ctx.cell.kernel.value_or(kernels::KernelKind::kScalar);
      Engine engine(ctx.cell.engine, usd, initial, ctx.seed,
                    {.kernel = kernel}, {.kernel = kernel});
      return consensus_metrics(run_engine_trial(engine, budget));
    };
  }
  if (p.scenario.any()) {
    // Scenario body, verbatim from ppsim_run: engine seeded from ctx.seed
    // first, then the adversary's and churn's streams drawn from the trial
    // rng — so the server reproduces the offline tool's bytes exactly.
    const ScenarioSpec sc = p.scenario;
    return [max_parallel, sc](const SweepTrial& ctx) {
      const InitialConfig init = adversarial_configuration(
          ctx.cell.n, ctx.cell.k, static_cast<Count>(ctx.cell.bias));
      const auto budget = static_cast<Interactions>(
          max_parallel * static_cast<double>(ctx.cell.n));
      UsdEngine engine(init.opinion_counts, ctx.seed);
      AdversarialScheduler adversary(sc.adversary_strength, ctx.rng());
      ChurnModel churn(sc.churn_rate, sc.churn_rate,
                       ChurnModel::JoinPolicy::kUndecided, ctx.rng());
      while (!engine.stabilized() && engine.interactions() < budget) {
        adversary.step(engine);
        churn.step(engine);
      }
      TrialResult r;
      r.stabilized = engine.stabilized();
      r.interactions = engine.interactions();
      r.parallel_time = engine.time();
      r.winner = engine.winner();
      SweepMetrics m = consensus_metrics(r);
      m.emplace_back("interventions",
                     static_cast<double>(adversary.interventions()));
      m.emplace_back("joins", static_cast<double>(churn.joins()));
      m.emplace_back("leaves", static_cast<double>(churn.leaves()));
      m.emplace_back("final_population",
                     static_cast<double>(engine.population()));
      return m;
    };
  }
  return [max_parallel](const SweepTrial& ctx) {
    const InitialConfig init = adversarial_configuration(
        ctx.cell.n, ctx.cell.k, static_cast<Count>(ctx.cell.bias));
    const auto budget = static_cast<Interactions>(
        max_parallel * static_cast<double>(ctx.cell.n));
    UsdEngine engine(init.opinion_counts, ctx.seed);
    engine.run_until_stable(budget);
    TrialResult r;
    r.stabilized = engine.stabilized();
    r.interactions = engine.interactions();
    r.parallel_time = engine.time();
    r.winner = engine.winner();
    return consensus_metrics(r);
  };
}

std::string cell_line(const SweepCellResult& cr, kernels::KernelKind kernel,
                      bool cached) {
  JsonObject line;
  line.field("type", "cell")
      .field("cell_index", static_cast<std::int64_t>(cr.cell_index))
      .field("cached", cached)
      .field_json("data", sweep_cell_json(cr, kernel));
  return line.str();
}

}  // namespace

SweepService::SweepService(ServiceConfig config)
    : config_(std::move(config)),
      cache_({.memory_capacity = config_.cache_memory,
              .disk_dir = config_.cache_dir}) {}

void SweepService::run_job(const JsonValue& request, const EmitFn& emit,
                           const std::atomic<bool>* cancel) {
  const ParsedSubmit parsed = parse_submit(request, config_);
  const SweepRunner runner(parsed.spec);
  // The runner's spec has kernels stamped into every cell — key off THAT
  // spec, so the canonical key sees the resolved kernel.
  const SweepSpec& spec = runner.spec();
  const std::size_t num_cells = spec.cells.size();

  const std::lock_guard<std::mutex> job_lock(job_mutex_);

  std::vector<std::string> keys(num_cells);
  std::vector<std::optional<cache::CachedCellData>> hits(num_cells);
  SweepJobOptions opts;
  opts.skip.assign(num_cells, false);
  for (std::size_t c = 0; c < num_cells; ++c) {
    keys[c] = cache::canonical_cell_key(spec, c, parsed.fn_id);
    hits[c] = cache_.lookup(keys[c]);
    if (hits[c].has_value()) opts.skip[c] = true;
  }

  // One stop flag feeds the runner: a vanished client (emit false), an
  // external cancel, either way the job winds down cooperatively.
  std::atomic<bool> stop{false};
  std::mutex emit_mutex;
  const auto emit_line = [&](const std::string& line) {
    const std::lock_guard<std::mutex> lock(emit_mutex);
    if (!emit(line)) stop.store(true, std::memory_order_release);
  };

  // Cache hits replay first, in index order: stamp the cell from the spec,
  // rebuild aggregates through the shared path, stream.
  std::vector<SweepCellResult> replayed(num_cells);
  for (std::size_t c = 0; c < num_cells; ++c) {
    if (!hits[c].has_value()) continue;
    SweepCellResult& cr = replayed[c];
    cr.cell = spec.cells[c];
    cr.cell_index = c;
    cr.trials_requested = hits[c]->trials_requested;
    cr.trials_run = hits[c]->trials_run;
    cr.trials = hits[c]->trials;
    aggregate_sweep_cell(cr);
    emit_line(cell_line(cr, spec.kernel, /*cached=*/true));
  }

  opts.cancel = &stop;
  opts.on_cell = [&](const SweepCellResult& cr) {
    cache_.insert(keys[cr.cell_index],
                  {cr.trials_requested, cr.trials_run, cr.trials});
    emit_line(cell_line(cr, spec.kernel, /*cached=*/false));
  };

  const SweepTrialFn fn = make_trial_fn(parsed);
  const SweepTrialFn wrapped = [&](const SweepTrial& ctx) {
    if (cancel != nullptr && cancel->load(std::memory_order_acquire)) {
      stop.store(true, std::memory_order_release);
    }
    return fn(ctx);
  };
  SweepResult result = runner.run_job(wrapped, opts);

  std::uint64_t executed = 0;
  for (const SweepCellResult& cr : result.cells) {
    executed += cr.trials_run;
  }
  std::uint64_t cached_cells = 0;
  for (std::size_t c = 0; c < num_cells; ++c) {
    if (!hits[c].has_value()) continue;
    result.cells[c] = std::move(replayed[c]);
    ++cached_cells;
  }

  if (result.cancelled) {
    {
      const std::lock_guard<std::mutex> lock(counters_mutex_);
      ++counters_.jobs_failed;
    }
    emit_line(JsonObject()
                  .field("type", "error")
                  .field("error", "job cancelled")
                  .str());
    return;
  }

  {
    const std::lock_guard<std::mutex> lock(counters_mutex_);
    ++counters_.jobs_completed;
    counters_.cells_served += num_cells;
    counters_.cells_from_cache += cached_cells;
    counters_.trials_executed += executed;
  }

  // The report travels as an escaped string so the client can recover the
  // exact bytes (re-rendering parsed JSON would be a second serializer and
  // an invitation to drift).
  JsonObject done;
  done.field("type", "done")
      .field("cells", static_cast<std::int64_t>(num_cells))
      .field("cached_cells", static_cast<std::int64_t>(cached_cells))
      .field("trials_executed", static_cast<std::int64_t>(executed))
      .field("report", result.to_json());
  emit_line(done.str());
}

std::string SweepService::stats_json() const {
  const cache::CellCacheStats cs = cache_.stats();
  ServiceCounters sc = counters();
  JsonObject cache_obj;
  cache_obj.field("hits", static_cast<std::int64_t>(cs.hits))
      .field("memory_hits", static_cast<std::int64_t>(cs.memory_hits))
      .field("disk_hits", static_cast<std::int64_t>(cs.disk_hits))
      .field("misses", static_cast<std::int64_t>(cs.misses))
      .field("insertions", static_cast<std::int64_t>(cs.insertions))
      .field("evictions", static_cast<std::int64_t>(cs.evictions));
  JsonObject service_obj;
  service_obj
      .field("jobs_completed", static_cast<std::int64_t>(sc.jobs_completed))
      .field("jobs_failed", static_cast<std::int64_t>(sc.jobs_failed))
      .field("cells_served", static_cast<std::int64_t>(sc.cells_served))
      .field("cells_from_cache",
             static_cast<std::int64_t>(sc.cells_from_cache))
      .field("trials_executed",
             static_cast<std::int64_t>(sc.trials_executed));
  JsonObject line;
  line.field("type", "stats")
      .field("cache", cache_obj)
      .field("service", service_obj);
  return line.str();
}

ServiceCounters SweepService::counters() const {
  const std::lock_guard<std::mutex> lock(counters_mutex_);
  return counters_;
}

}  // namespace ppsim::net
