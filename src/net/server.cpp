#include "ppsim/net/server.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "ppsim/io/trajectory.hpp"
#include "ppsim/util/check.hpp"
#include "ppsim/util/json.hpp"

namespace ppsim::net {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string error_line(const std::string& message) {
  return JsonObject().field("type", "error").field("error", message).str();
}

std::string hex64(std::uint64_t v) {
  constexpr char hex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(i)] = hex[(v >> (60 - 4 * i)) & 0xf];
  }
  return out;
}

/// Expands "archive" (file | directory | comma list) into archive paths,
/// mirroring ppsim_query's --archive semantics: directory entries that are
/// not trajectory archives are skipped, explicitly named files must parse.
std::vector<std::string> expand_archives(const std::string& flag) {
  std::vector<std::string> paths;
  std::stringstream ss(flag);
  std::string entry;
  while (std::getline(ss, entry, ',')) {
    if (entry.empty()) continue;
    if (std::filesystem::is_directory(entry)) {
      std::vector<std::string> found;
      for (const auto& file : std::filesystem::directory_iterator(entry)) {
        if (!file.is_regular_file()) continue;
        std::ifstream in(file.path(), std::ios::binary);
        char magic[8] = {};
        in.read(magic, 8);
        if (in.gcount() == 8 &&
            std::string_view(magic, 8) == io::kTrajectoryMagic) {
          found.push_back(file.path().string());
        }
      }
      std::sort(found.begin(), found.end());
      paths.insert(paths.end(), found.begin(), found.end());
    } else {
      paths.push_back(entry);
    }
  }
  PPSIM_CHECK(!paths.empty(), "'archive' matched no files: " + flag);
  return paths;
}

/// One archive's summary, the same fields ppsim_query --json reports.
JsonObject archive_summary(const std::string& path,
                           const io::TrajectoryReader& reader) {
  const io::TrajectoryHeader& h = reader.header();
  JsonObject obj;
  obj.field("path", path)
      .field("engine", h.engine)
      .field("protocol", h.protocol)
      .field("seed", static_cast<std::int64_t>(h.seed))
      .field("n", static_cast<std::int64_t>(h.population))
      .field("k", static_cast<std::int64_t>(h.k))
      .field("num_states", static_cast<std::int64_t>(h.num_states))
      .field("stride", static_cast<std::int64_t>(h.stride))
      .field("checkpoint_every", static_cast<std::int64_t>(h.checkpoint_every))
      .field("max_interactions", static_cast<std::int64_t>(h.max_interactions))
      .field("spec_hash", hex64(h.spec_hash))
      .field("build_version", h.build_version)
      .field("blocks", static_cast<std::int64_t>(reader.num_blocks()))
      .field("samples", static_cast<std::int64_t>(reader.total_samples()))
      .field("checkpoints",
             static_cast<std::int64_t>(reader.checkpoints().size()))
      .field("finished", reader.finished())
      .field("torn_tail", reader.torn_tail());
  if (reader.finished()) {
    const io::TrajectoryEnd end = *reader.end();
    obj.field("stabilized", end.stabilized)
        .field("final_interactions", static_cast<std::int64_t>(end.interactions))
        .field("final_parallel_time",
               static_cast<double>(end.interactions) /
                   static_cast<double>(h.population))
        .field("consensus", end.consensus.has_value()
                                ? static_cast<std::int64_t>(*end.consensus)
                                : std::int64_t{-1});
  }
  std::vector<JsonObject> channel_stats;
  for (const auto& name : h.channels) {
    JsonObject cs;
    cs.field("channel", name)
        .field("min", reader.channel_min(name))
        .field("max", reader.channel_max(name));
    channel_stats.push_back(std::move(cs));
  }
  obj.field("channel_stats", channel_stats);
  return obj;
}

}  // namespace

SweepServer::SweepServer(ServerConfig config)
    : config_(std::move(config)),
      service_(config_.service),
      limiter_(config_.rate_burst, config_.rate_per_second) {
  PPSIM_CHECK(!config_.socket_path.empty(),
              "sweep server needs a socket path");
}

SweepServer::~SweepServer() { stop(); }

void SweepServer::run() {
  Listener listener = Listener::listen_on(config_.socket_path);
  {
    const std::lock_guard<std::mutex> lock(listener_mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      return;  // stop() raced construction; don't serve
    }
    listener_ = &listener;
  }
  std::uint64_t accepted = 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    if (config_.accept_limit > 0 && accepted >= config_.accept_limit) break;
    Socket client = listener.accept();
    if (!client.valid()) break;  // listener closed by stop()
    const std::uint64_t id = ++accepted;
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.emplace_back(
        [this, id, socket = std::move(client)]() mutable {
          serve_connection(std::move(socket), id);
        });
  }
  {
    const std::lock_guard<std::mutex> lock(listener_mutex_);
    listener_ = nullptr;
  }
  listener.close();
  std::vector<std::thread> to_join;
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    to_join.swap(connections_);
  }
  for (std::thread& t : to_join) t.join();
}

void SweepServer::stop() {
  stopping_.store(true, std::memory_order_release);
  const std::lock_guard<std::mutex> lock(listener_mutex_);
  if (listener_ != nullptr) listener_->close();
}

void SweepServer::serve_connection(Socket socket, std::uint64_t client_id) {
  LineChannel channel(std::move(socket));
  while (!stopping_.load(std::memory_order_acquire)) {
    const std::optional<std::string> line = channel.read_line();
    if (!line.has_value()) return;  // client closed (or misbehaved)
    if (line->empty()) continue;
    if (!limiter_.try_acquire(client_id, now_seconds())) {
      if (!channel.write_line(error_line("rate limited"))) return;
      continue;
    }
    handle_request(channel, *line);
  }
}

void SweepServer::handle_request(LineChannel& channel,
                                 const std::string& line) {
  try {
    const JsonValue request = JsonValue::parse(line);
    const std::string type = request.at("type").as_string();
    if (type == "submit") {
      service_.run_job(
          request,
          [&channel](const std::string& out) {
            return channel.write_line(out);
          },
          &stopping_);
      return;
    }
    if (type == "stats") {
      channel.write_line(service_.stats_json());
      return;
    }
    if (type == "archive_stats") {
      const std::string flag = request.at("archive").as_string();
      const std::vector<std::string> paths = expand_archives(flag);
      for (const std::string& path : paths) {
        const io::TrajectoryReader reader(path);
        JsonObject out;
        out.field("type", "archive").field("data", archive_summary(path, reader));
        if (!channel.write_line(out.str())) return;
      }
      channel.write_line(JsonObject()
                             .field("type", "done")
                             .field("archives",
                                    static_cast<std::int64_t>(paths.size()))
                             .str());
      return;
    }
    channel.write_line(error_line("unknown request type '" + type + "'"));
  } catch (const std::exception& e) {
    channel.write_line(error_line(e.what()));
  }
}

}  // namespace ppsim::net
