// SweepService: the transport-independent core of the ppsim_serve daemon.
//
// A service owns one CellCache and executes submitted sweep jobs against it:
//
//   submit request (parsed JSON)  ->  SweepSpec mirroring ppsim_run
//   per-cell cache lookup         ->  hits emitted immediately, in order
//   run_job over the misses       ->  each completed cell inserted + emitted
//   end-of-job summary            ->  the full unified report, byte-identical
//                                     to what an offline ppsim_run --json
//                                     writes for the same single-cell spec
//
// The byte-identity chain is the whole design: the spec built here uses
// exactly ppsim_run's construction (auto bias = whp_bias(n), budget =
// max_parallel * n, adversarial initial configuration, the same two USD
// trial bodies), cells stream through sweep_cell_json (the report's own
// renderer), and cache hits replay raw trials through aggregate_sweep_cell.
// A warm job therefore re-executes zero trials and still returns the same
// bytes as the cold one — tests/service_test.cpp pins all of it.
//
// Only --protocol usd is served: it is the paper's protocol, and every
// cacheable input of its two trial bodies is captured by the canonical cell
// key plus the trial_fn_id strings below. Serving a protocol whose trial
// closure captures state the key cannot see would silently poison the cache.
//
// Jobs are serialized by an internal mutex (one sweep saturates the worker
// pool; interleaving two would just thrash), but stats_json() and the cache
// are safe to read concurrently from other connections.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "ppsim/cache/cell_cache.hpp"
#include "ppsim/util/json_parse.hpp"

namespace ppsim::net {

struct ServiceConfig {
  /// In-memory LRU capacity of the cell cache, in cells.
  std::size_t cache_memory = 256;
  /// Persistent cache directory; "" = memory-only.
  std::string cache_dir;
  /// Worker-thread cap for a job; 0 honours each request's "threads" field
  /// (which itself defaults to 1, and never changes result bytes).
  unsigned max_threads = 0;
  /// Request validation caps — a local client is trusted not to be
  /// malicious, but not to be free of typos that would pin the machine.
  std::size_t max_cells = 4096;
  std::size_t max_trials = 100000;
};

/// Monotone service counters, exposed via stats_json() and the /stats
/// request.
struct ServiceCounters {
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t cells_served = 0;       ///< total cells delivered
  std::uint64_t cells_from_cache = 0;   ///< delivered without executing
  std::uint64_t trials_executed = 0;    ///< trials actually run (cold cells)
};

class SweepService {
 public:
  explicit SweepService(ServiceConfig config);

  /// Sink for response lines (one JSON document each, no trailing newline).
  /// Returning false cancels the job cooperatively — the transport uses it
  /// to abandon work for a vanished client.
  using EmitFn = std::function<bool(const std::string& line)>;

  /// Executes one submit request, streaming `cell` lines and a final `done`
  /// line through `emit`. Throws CheckFailure on an invalid request (the
  /// transport turns it into an error line). `cancel`, when non-null, stops
  /// the job cooperatively from outside (server shutdown).
  void run_job(const JsonValue& request, const EmitFn& emit,
               const std::atomic<bool>* cancel = nullptr);

  /// Cache + service counters as one JSON line (the /stats response body).
  std::string stats_json() const;

  ServiceCounters counters() const;
  cache::CellCacheStats cache_stats() const { return cache_.stats(); }

 private:
  ServiceConfig config_;
  cache::CellCache cache_;
  mutable std::mutex counters_mutex_;
  ServiceCounters counters_;
  std::mutex job_mutex_;  ///< one sweep job at a time
};

}  // namespace ppsim::net
