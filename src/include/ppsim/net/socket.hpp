// Minimal unix-domain stream sockets for the sweep service.
//
// The service speaks line-delimited JSON over a local AF_UNIX socket — no
// TLS, no name resolution, no portability layer, just a filesystem path as
// the rendezvous. This header wraps the raw fds in RAII (Socket owns one
// connection, Listener owns the listening fd AND the socket file, which it
// unlinks on destruction) and adds LineChannel, a buffered reader/writer
// that frames messages as LF-terminated lines with a hard line-length cap
// (a misbehaving peer cannot make the server buffer unbounded input).
// Writes use MSG_NOSIGNAL so a vanished client surfaces as a false return,
// never as SIGPIPE killing the daemon.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace ppsim::net {

/// One connected stream socket (RAII over the fd). Move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }
  void close() noexcept;

  /// Blocking write of the whole buffer; false on any error (including a
  /// peer that hung up — MSG_NOSIGNAL keeps SIGPIPE out of it).
  bool send_all(std::string_view data) noexcept;
  /// Blocking read of up to `len` bytes; returns bytes read, 0 on orderly
  /// shutdown, -1 on error. Retries EINTR internally.
  long recv_some(char* buf, std::size_t len) noexcept;

 private:
  int fd_ = -1;
};

/// Listening unix-domain socket bound to a filesystem path. The path is
/// unlinked on bind (stale socket files from a crashed daemon would
/// otherwise block restart) and again on destruction.
class Listener {
 public:
  /// Binds and listens on `path`; throws CheckFailure on failure (path too
  /// long for sockaddr_un, bind/listen errors).
  static Listener listen_on(const std::string& path, int backlog = 16);

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener();

  /// Blocks for the next connection; an invalid Socket means the listener
  /// was closed (the daemon's shutdown path) or accept failed terminally.
  Socket accept() noexcept;

  /// Closes the listening fd, waking a blocked accept(). Idempotent.
  void close() noexcept;

  const std::string& path() const noexcept { return path_; }

 private:
  Listener(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
};

/// Connects to a listening unix-domain socket; throws CheckFailure when the
/// daemon is not there.
Socket connect_to(const std::string& path);

/// LF-framed message channel over a Socket: one JSON document per line.
class LineChannel {
 public:
  /// `max_line` caps the bytes buffered while hunting for a LF; a longer
  /// line is a protocol violation and reads as end-of-stream.
  explicit LineChannel(Socket socket, std::size_t max_line = 1 << 20)
      : socket_(std::move(socket)), max_line_(max_line) {}

  /// Next line without its trailing LF (a final CR is stripped too, so a
  /// `nc`-driven session works); nullopt on EOF, error, or an over-long
  /// line.
  std::optional<std::string> read_line();

  /// Writes `line` plus LF; false when the peer is gone.
  bool write_line(std::string_view line);

  Socket& socket() noexcept { return socket_; }

 private:
  Socket socket_;
  std::size_t max_line_;
  std::string buffer_;
  bool broken_ = false;
};

}  // namespace ppsim::net
