// SweepServer: the socket front of the sweep service.
//
// One accept loop, one thread per connection, line-delimited JSON both
// ways. Each request line is a JSON object with a "type" member:
//
//   {"type":"submit", ...}        -> cell lines, then a done line
//   {"type":"stats"}              -> one stats line (cache + service counters)
//   {"type":"archive_stats",      -> one line per archive summarised via
//    "archive":"FILE|DIR|a,b"}       TrajectoryReader (read-only), then a
//                                    done line — the daemon subsumes
//                                    ppsim_query's summary mode
//
// Anything malformed answers {"type":"error","error":...} and keeps the
// connection; request admission is a per-client token bucket (capacity =
// burst, refill = sustained rate), and a rejected request costs an error
// line, never a queued job. A client that disappears mid-stream cancels its
// job cooperatively via the service's emit-returns-false path.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "ppsim/net/rate_limiter.hpp"
#include "ppsim/net/service.hpp"
#include "ppsim/net/socket.hpp"

namespace ppsim::net {

struct ServerConfig {
  std::string socket_path;
  ServiceConfig service;
  /// Token-bucket admission per client connection.
  double rate_burst = 8.0;      ///< bucket capacity (requests)
  double rate_per_second = 4.0; ///< sustained refill rate
  /// Stop after this many accepted connections; 0 = serve forever. The CI
  /// smoke lane uses it to run a bounded daemon without kill/trap plumbing.
  std::uint64_t accept_limit = 0;
};

class SweepServer {
 public:
  explicit SweepServer(ServerConfig config);
  ~SweepServer();

  /// Binds the socket and serves until stop() (or accept_limit). Blocks.
  void run();

  /// Wakes the accept loop and asks in-flight jobs to cancel; run() then
  /// joins every connection thread before returning. Safe from any thread.
  void stop();

  SweepService& service() noexcept { return service_; }
  const std::string& socket_path() const noexcept {
    return config_.socket_path;
  }

 private:
  void serve_connection(Socket socket, std::uint64_t client_id);
  void handle_request(LineChannel& channel, const std::string& line);

  ServerConfig config_;
  SweepService service_;
  ClientRateLimiter limiter_;
  std::atomic<bool> stopping_{false};
  Listener* listener_ = nullptr;  ///< run()-scoped, for stop() to close
  std::mutex listener_mutex_;
  std::vector<std::thread> connections_;
  std::mutex connections_mutex_;
};

}  // namespace ppsim::net
