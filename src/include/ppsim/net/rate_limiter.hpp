// Token-bucket rate limiting for the sweep service.
//
// Each client connection gets its own bucket: `capacity` tokens of burst,
// refilled continuously at `refill_per_second`. A request costs one token;
// when the bucket is dry the server answers an error line instead of
// queueing work — a sweep job can pin every core for seconds, so admission
// control has to happen before the job queue, not inside it.
//
// Time is injected by the caller (seconds on an arbitrary monotonic axis)
// rather than read from a clock here, so the refill arithmetic is testable
// deterministically and the server can use one steady_clock read per
// request.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace ppsim::net {

/// One token bucket. Not thread-safe; ClientRateLimiter adds the locking.
class TokenBucket {
 public:
  /// `capacity` = maximum burst (also the initial fill), must be >= 1;
  /// `refill_per_second` = sustained request rate, must be > 0.
  TokenBucket(double capacity, double refill_per_second);

  /// Takes one token if available at `now_seconds`. Calls with a
  /// non-monotone `now_seconds` are treated as "no time has passed".
  bool try_acquire(double now_seconds);

  /// Tokens available at `now_seconds` (refill applied, nothing consumed).
  double available(double now_seconds);

 private:
  void refill(double now_seconds);

  double capacity_;
  double refill_per_second_;
  double tokens_;
  double last_refill_ = 0.0;
  bool started_ = false;  ///< first call anchors the time axis
};

/// Per-client token buckets, keyed by an opaque client id (the server uses
/// the connection number). Buckets are created full on first sight and
/// never expire — client ids are bounded by the accept counter, not by an
/// open namespace. Thread-safe.
class ClientRateLimiter {
 public:
  ClientRateLimiter(double capacity, double refill_per_second);

  /// One token from `client`'s bucket at `now_seconds`.
  bool try_acquire(std::uint64_t client, double now_seconds);

 private:
  double capacity_;
  double refill_per_second_;
  std::mutex mutex_;
  std::unordered_map<std::uint64_t, TokenBucket> buckets_;
};

}  // namespace ppsim::net
