// One-call drivers tying the pieces of the recording pipeline together:
// Engine + Recorder + TrajectorySink. `record_run` simulates while streaming
// an archive to disk; `resume_run` re-opens a (possibly torn) archive,
// restores the last checkpoint into a fresh engine, and regenerates the rest
// of the run — byte-for-byte identical to what an uninterrupted run would
// have written, because checkpoints cut the stream at block boundaries and
// every draw after a checkpoint is a deterministic function of its state.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ppsim/core/engine.hpp"
#include "ppsim/core/recorder.hpp"
#include "ppsim/io/trajectory.hpp"

namespace ppsim::io {

/// A named set of recorder projections — the schema of an archive.
struct ArchiveChannels {
  std::vector<std::string> names;
  std::vector<Recorder::Projection> projections;
};

/// The standard USD observables, matching ppsim_run --series column for
/// column: undecided u(t), majority x_1(t), delta_max Δ(t), survivors.
ArchiveChannels usd_archive_channels(std::size_t k);

/// Everything that determines a recorded run (the header is built from it).
struct ArchiveRunSpec {
  EngineKind engine = EngineKind::kCollapsed;
  std::string protocol_name;         ///< stored in the header verbatim
  std::uint64_t seed = 0;
  Count k = 0;                       ///< opinions (0 = not applicable)
  Interactions max_interactions = 0;
  Interactions record_stride = 0;    ///< 0 = max(1, population / 10)
  Interactions checkpoint_every = 0; ///< 0 = no checkpoints
  Interactions round_divisor = 16;   ///< batched-engine knob
  double tau_epsilon = 0.05;         ///< collapsed-engine knob
};

/// Header for a run of `spec` (strides must already be resolved).
TrajectoryHeader make_header(const ArchiveRunSpec& spec, Count population,
                             std::size_t num_states,
                             const std::vector<std::string>& channels);

/// Rebuilds the spec a header was written from — how resume knows the
/// engine kind, seed, strides and budget without any side channel.
ArchiveRunSpec spec_from_header(const TrajectoryHeader& header);

/// Bundles writer + sink + configured recorder for callers that drive the
/// engine themselves (benches measuring custom observables while archiving):
/// construct, engine.set_recorder(&recorder()), run, finalize().
/// `spec.record_stride` must be resolved (> 0).
class ArchiveRecorder {
 public:
  ArchiveRecorder(const ArchiveRunSpec& spec, Count population,
                  std::size_t num_states, const ArchiveChannels& channels,
                  const std::string& path);

  Recorder& recorder() noexcept { return recorder_; }
  void finalize(const Configuration& config, const RecordFinish& fin) {
    recorder_.finalize(config, fin);
  }

 private:
  TrajectoryWriter writer_;
  TrajectorySink sink_;
  Recorder recorder_;
};

/// Runs `protocol` from `initial` under `spec`, archiving to `path`
/// (created/overwritten). Returns the run outcome.
RunOutcome record_run(const Protocol& protocol, const Configuration& initial,
                      const ArchiveChannels& channels, const ArchiveRunSpec& spec,
                      const std::string& path);

/// Continues an interrupted archive at `path`: truncates its torn tail,
/// restores the last checkpoint (or restarts, if none survived) and runs to
/// completion. `protocol`, `initial` and `channels` must match the original
/// call — the header pins population, state count and channel names, and
/// mismatches throw. Returns nullopt when the archive is already finished.
std::optional<RunOutcome> resume_run(const Protocol& protocol,
                                     const Configuration& initial,
                                     const ArchiveChannels& channels,
                                     const std::string& path);

}  // namespace ppsim::io
