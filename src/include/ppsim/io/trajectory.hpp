// The on-disk trajectory archive: a chunked columnar format for recorded
// simulation runs, with embedded engine checkpoints that make interrupted
// runs resumable.
//
// File layout (all multi-byte integers are varints or little-endian fixed
// words — see io/wire.hpp):
//
//   "PPTRAJ1\n"                                  8-byte magic
//   record*                                      framed records, in order
//
//   record   := u8 type | varint payload_len | payload | fixed64 fnv1a(payload)
//   types    := 1 header | 2 block | 3 checkpoint | 4 end
//
//   header     self-describing run metadata: engine, protocol, seed,
//              population, k, channel names, strides, budget, spec hash,
//              build version. Always the first record.
//   block      up to `block_samples` consecutive samples in columnar form:
//              a summary (sample count, first/last interaction clock,
//              per-channel min/max) readable without decoding the columns,
//              then the interaction-clock column (varint deltas — the clock
//              is monotone) and one column per channel (zigzag-delta varints
//              when every value in the block is integral, raw f64 words
//              otherwise).
//   checkpoint full engine state: interaction clock, clamped count, the
//              recorder's last-sample clock, the 256-bit RNG state, and the
//              counts vector. The writer flushes any pending partial block
//              *before* a checkpoint, so checkpoints always sit on block
//              boundaries — that makes the byte stream after a resumed
//              checkpoint identical to the uninterrupted run's.
//   end        terminal summary (stabilized?, final clocks, consensus).
//              An archive without one is an interrupted run.
//
// Torn tails: every record is independently checksummed, so a reader hitting
// a half-written record (the process died mid-write) keeps everything before
// it and reports the tail instead of failing. TrajectoryWriter::resume
// truncates exactly there and continues.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ppsim/core/record_sink.hpp"
#include "ppsim/core/types.hpp"
#include "ppsim/io/wire.hpp"

namespace ppsim::io {

inline constexpr std::string_view kTrajectoryMagic = "PPTRAJ1\n";
inline constexpr std::uint64_t kTrajectoryFormatVersion = 1;
/// Stamped into every header; bump when the producing code changes in a way
/// that affects archived bytes.
inline constexpr std::string_view kBuildVersion = "ppsim-0.8";

struct TrajectoryHeader {
  std::string engine;                  ///< to_string(EngineKind)
  std::string protocol;                ///< protocol name ("usd", ...)
  std::uint64_t seed = 0;
  Count population = 0;
  Count k = 0;                         ///< opinions (0 = not applicable)
  std::uint64_t num_states = 0;
  Interactions stride = 0;             ///< sampling stride (interactions)
  Interactions checkpoint_every = 0;   ///< checkpoint stride (0 = none)
  Interactions max_interactions = 0;   ///< run budget
  double tau_epsilon = 0.0;            ///< collapsed-engine knob (0 = n/a)
  Interactions round_divisor = 0;      ///< batched-engine knob (0 = n/a)
  std::uint64_t spec_hash = 0;         ///< fnv1a over the canonical spec string
  std::string build_version;
  std::vector<std::string> channels;

  /// Canonical hash over everything that determines the run (engine,
  /// protocol, seed, shape, strides, knobs, channels). Writers stamp it;
  /// queries use it to group archives of identical specs.
  std::uint64_t compute_spec_hash() const;
};

/// Terminal record payload.
struct TrajectoryEnd {
  bool stabilized = false;
  Interactions interactions = 0;
  Interactions clamped = 0;
  std::optional<Opinion> consensus;
};

/// Per-block metadata, readable without decoding the block's columns —
/// the footer that lets queries skip chunks.
struct BlockSummary {
  std::uint64_t num_samples = 0;
  Interactions first_interactions = 0;
  Interactions last_interactions = 0;
  std::vector<double> min;  ///< per channel
  std::vector<double> max;  ///< per channel
};

class TrajectoryWriter {
 public:
  struct Options {
    /// Samples per column block. Checkpoints cut blocks early (by design);
    /// this caps how much an unflushed tail can lose on a crash.
    std::size_t block_samples = 256;
  };

  /// Creates/overwrites `path` and writes the magic + header record.
  /// The header's spec_hash and build_version are stamped here.
  TrajectoryWriter(const std::string& path, TrajectoryHeader header);
  TrajectoryWriter(const std::string& path, TrajectoryHeader header,
                   Options options);
  ~TrajectoryWriter();

  TrajectoryWriter(const TrajectoryWriter&) = delete;
  TrajectoryWriter& operator=(const TrajectoryWriter&) = delete;

  const TrajectoryHeader& header() const noexcept { return header_; }

  /// Appends one sample (values.size() must equal the header's channel
  /// count). Flushes a block every Options::block_samples samples.
  void sample(Interactions interactions, const std::vector<double>& values);

  /// Flushes the pending block, then writes a checkpoint record.
  void checkpoint(const EngineCheckpoint& state);

  /// Flushes the pending block, writes the end record, and closes. No
  /// further writes are allowed.
  void finish(const TrajectoryEnd& end);

  struct Resumed {
    /// Writer positioned right after the last complete checkpoint (or the
    /// header, if the archive has none). Null when the archive is finished.
    std::unique_ptr<TrajectoryWriter> writer;
    TrajectoryHeader header;
    /// Engine state to restore; nullopt = restart from the initial
    /// configuration (no checkpoint survived).
    std::optional<EngineCheckpoint> checkpoint;
    /// True iff the archive already carries an end record — the run is
    /// complete and there is nothing to resume.
    bool finished = false;
  };

  /// Re-opens a (possibly torn) archive for continuation: parses it
  /// tolerantly, truncates everything after the last complete checkpoint
  /// record — data past it is regenerated bit-for-bit by the resumed run —
  /// and returns an append-mode writer plus the state to restore.
  static Resumed resume(const std::string& path);
  static Resumed resume(const std::string& path, Options options);

 private:
  struct AppendTag {};
  TrajectoryWriter(AppendTag, const std::string& path, TrajectoryHeader header,
                   Options options);

  void write_record(std::uint8_t type, const Bytes& payload);
  void flush_block();

  std::ofstream out_;
  std::string path_;
  TrajectoryHeader header_;
  Options options_;
  bool finished_ = false;
  std::vector<Interactions> pending_clock_;
  std::vector<std::vector<double>> pending_values_;  // [channel][sample]
};

/// RecordSink adapter: plugs a TrajectoryWriter into a Recorder, so the same
/// run can stream to disk and to the in-memory series at once.
class TrajectorySink final : public RecordSink {
 public:
  /// The writer must outlive the sink; open() validates the recorder's
  /// channel list against the archive header's.
  explicit TrajectorySink(TrajectoryWriter& writer) : writer_(writer) {}

  void open(const std::vector<std::string>& channel_names) override;
  void sample(Interactions interactions, double time,
              const std::vector<double>& values) override;
  void checkpoint(const EngineCheckpoint& state) override;
  void finish(const RecordFinish& fin) override;

 private:
  TrajectoryWriter& writer_;
};

class TrajectoryReader {
 public:
  struct BlockData {
    std::vector<Interactions> interactions;
    std::vector<std::vector<double>> values;  ///< [channel][sample]
  };

  /// Loads and indexes `path`. Throws CheckFailure when the file is not a
  /// trajectory archive at all (missing/short magic, torn or corrupt header
  /// record); any later corruption is reported via torn_tail() instead.
  explicit TrajectoryReader(const std::string& path);

  const TrajectoryHeader& header() const noexcept { return header_; }

  std::size_t num_blocks() const noexcept { return blocks_.size(); }
  const BlockSummary& block(std::size_t i) const { return blocks_.at(i).summary; }
  /// Decodes block i's columns (lazy: summaries alone never touch these
  /// bytes). Throws CheckFailure on a block whose checksummed payload is
  /// semantically inconsistent.
  BlockData decode_block(std::size_t i) const;

  const std::vector<EngineCheckpoint>& checkpoints() const noexcept {
    return checkpoints_;
  }
  std::optional<EngineCheckpoint> last_checkpoint() const;
  /// Byte offset just past the last complete checkpoint record (just past
  /// the header record when there is none) — where resume truncates.
  std::size_t resume_offset() const noexcept { return resume_offset_; }

  std::optional<TrajectoryEnd> end() const noexcept { return end_; }
  bool finished() const noexcept { return end_.has_value(); }

  /// True iff the file ended inside a record (or carried trailing bytes
  /// after the end record): everything before torn_offset() parsed clean.
  bool torn_tail() const noexcept { return torn_; }
  std::size_t torn_offset() const noexcept { return torn_offset_; }

  std::size_t total_samples() const noexcept;
  std::optional<std::size_t> channel_index(const std::string& name) const;

  /// Materializes (a projection of) the archive as the in-memory
  /// TimeSeries. `channels` empty = all channels, in header order;
  /// `every` ≥ 1 keeps every N-th sample (downsampling).
  TimeSeries to_series(const std::vector<std::string>& channels = {},
                       std::size_t every = 1) const;

  /// Smallest sampled parallel time at which `channel` ≥ `level`, skipping
  /// every block whose max footer stays below the level (NaN if never hit).
  double first_time_at_least(const std::string& channel, double level) const;

  /// Run-wide channel extrema straight from the block footers (NaN when the
  /// archive has no samples).
  double channel_max(const std::string& channel) const;
  double channel_min(const std::string& channel) const;

 private:
  struct IndexedBlock {
    BlockSummary summary;
    std::size_t payload_offset = 0;  ///< into bytes_
    std::size_t payload_size = 0;
  };

  void parse();

  std::vector<std::uint8_t> bytes_;
  TrajectoryHeader header_;
  std::vector<IndexedBlock> blocks_;
  std::vector<EngineCheckpoint> checkpoints_;
  std::optional<TrajectoryEnd> end_;
  bool torn_ = false;
  std::size_t torn_offset_ = 0;
  std::size_t resume_offset_ = 0;
};

}  // namespace ppsim::io
