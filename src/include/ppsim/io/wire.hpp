// Byte-level codecs for the trajectory archive format.
//
// Everything the archive stores goes through these primitives: LEB128
// varints (unsigned), zigzag-mapped varints (signed), little-endian fixed
// 64-bit words, IEEE-754 doubles via their bit pattern, and
// length-prefixed strings. The encoding is platform-independent and fully
// deterministic — a requirement, because the resume path byte-compares
// archives produced on different runs.
//
// ByteReader is the decoding counterpart designed for untrusted input: it
// never reads past the buffer, never throws on malformed bytes, and folds
// every failure into one sticky ok() flag the caller checks once at the
// end. That is what lets TrajectoryReader treat a truncated or corrupted
// file as "torn tail after the last good record" instead of crashing.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace ppsim::io {

using Bytes = std::vector<std::uint8_t>;

inline void put_u8(Bytes& out, std::uint8_t v) { out.push_back(v); }

/// Unsigned LEB128: 7 value bits per byte, high bit = continuation.
inline void put_varint(Bytes& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Zigzag maps signed to unsigned so small-magnitude values (of either
/// sign) get short varints: 0, -1, 1, -2, 2, ... → 0, 1, 2, 3, 4, ...
inline constexpr std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline constexpr std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

inline void put_svarint(Bytes& out, std::int64_t v) { put_varint(out, zigzag(v)); }

/// Little-endian fixed 64-bit word.
inline void put_fixed64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline void put_f64(Bytes& out, double v) {
  put_fixed64(out, std::bit_cast<std::uint64_t>(v));
}

/// varint length + raw bytes.
inline void put_string(Bytes& out, std::string_view s) {
  put_varint(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

/// FNV-1a 64-bit, the archive's per-record checksum. Not cryptographic —
/// it guards against truncation and bit rot, not adversaries.
inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;

inline std::uint64_t fnv1a(const std::uint8_t* data, std::size_t len,
                           std::uint64_t h = kFnvOffset) noexcept {
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

inline std::uint64_t fnv1a(const Bytes& bytes) noexcept {
  return fnv1a(bytes.data(), bytes.size());
}

inline std::uint64_t fnv1a(std::string_view s,
                           std::uint64_t h = kFnvOffset) noexcept {
  return fnv1a(reinterpret_cast<const std::uint8_t*>(s.data()), s.size(), h);
}

/// Bounded, non-throwing decoder over a byte span. Every accessor returns a
/// zero value once a malformed read happens; check ok() after a decode
/// sequence (reads never advance past the end, so a failed parse leaves a
/// usable position for torn-tail reporting).
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size) noexcept
      : data_(data), size_(size) {}

  bool ok() const noexcept { return ok_; }
  std::size_t pos() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return size_ - pos_; }
  bool at_end() const noexcept { return pos_ == size_; }

  std::uint8_t u8() noexcept {
    if (remaining() < 1) return fail<std::uint8_t>();
    return data_[pos_++];
  }

  std::uint64_t varint() noexcept {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (remaining() < 1) return fail<std::uint64_t>();
      const std::uint8_t byte = data_[pos_++];
      v |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
      if ((byte & 0x80u) == 0) {
        // Reject non-canonical 10-byte encodings that would shift bits off
        // the top (shift 63 admits only the low bit of the final byte).
        if (shift == 63 && byte > 1) return fail<std::uint64_t>();
        return v;
      }
    }
    return fail<std::uint64_t>();  // > 10 continuation bytes
  }

  std::int64_t svarint() noexcept { return unzigzag(varint()); }

  std::uint64_t fixed64() noexcept {
    if (remaining() < 8) return fail<std::uint64_t>();
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  double f64() noexcept { return std::bit_cast<double>(fixed64()); }

  std::string string() noexcept {
    const std::uint64_t len = varint();
    if (!ok_ || len > remaining()) return (fail<int>(), std::string{});
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return s;
  }

  void skip(std::size_t n) noexcept {
    if (n > remaining()) {
      fail<int>();
      return;
    }
    pos_ += n;
  }

 private:
  template <typename T>
  T fail() noexcept {
    ok_ = false;
    return T{};
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace ppsim::io
