// Streaming confidence-interval estimation for adaptive trial stopping.
//
// The sweep harness's --trials auto mode keeps running trials for a cell
// until the confidence interval of the target metric's mean is tight enough
// relative to the mean itself. This header supplies the statistics: a
// Welford-based streaming accumulator (RunningStats) extended with a
// Student-t interval, plus the normal and t quantile functions the interval
// needs. Everything is deterministic closed-form arithmetic — the stopping
// decision depends only on the multiset of observed values, never on
// scheduling, which is what keeps adaptive sweeps byte-identical across
// thread counts.
#pragma once

#include <cstdint>

#include "ppsim/util/stats.hpp"

namespace ppsim {

/// Inverse standard normal CDF (Acklam's rational approximation, relative
/// error < 1.15e-9 over (0, 1)). Precondition: 0 < p < 1 (checked).
double normal_quantile(double p);

/// Student-t quantile with `dof` degrees of freedom. Exact closed forms for
/// dof 1 and 2; the Cornish–Fisher expansion around the normal quantile for
/// dof >= 3 (relative error < 1e-4 in the ranges the stopping rule uses).
/// Precondition: 0 < p < 1 and dof >= 1 (checked).
double student_t_quantile(double p, std::int64_t dof);

/// A two-sided confidence interval for a mean: mean +/- half_width.
struct CiEstimate {
  std::int64_t count = 0;
  double mean = 0.0;
  double half_width = 0.0;  ///< infinite until two observations exist
  /// Half-width relative to |mean|: 0 when the interval is degenerate
  /// (half_width == 0), infinite when mean == 0 but half_width > 0.
  double relative_half_width() const noexcept;
};

/// Student-t interval for the mean of the accumulated sample.
CiEstimate mean_ci(const RunningStats& stats, double confidence);

/// Streaming CI accumulator: Welford moments plus a fixed confidence level,
/// answering "is the mean pinned to within rel_err yet?" after every batch
/// of observations. This is the object the sweep's adaptive controller keeps
/// per cell.
class StreamingCi {
 public:
  /// Confidence in (0, 1), e.g. 0.95. Checked.
  explicit StreamingCi(double confidence);

  void add(double x) noexcept { stats_.add(x); }
  std::int64_t count() const noexcept { return stats_.count(); }
  const RunningStats& stats() const noexcept { return stats_; }
  double confidence() const noexcept { return confidence_; }

  CiEstimate estimate() const { return mean_ci(stats_, confidence_); }

  /// True once the CI half-width is within rel_err * |mean| (degenerate
  /// zero-width intervals always satisfy; fewer than two observations never
  /// do).
  bool within_relative_error(double rel_err) const;

 private:
  RunningStats stats_;
  double confidence_;
};

}  // namespace ppsim
