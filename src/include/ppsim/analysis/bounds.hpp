// Closed-form expressions from the paper, collected in one place so that
// benches, tests and documentation all use identical formulas.
//
// All logarithms are natural logs: the paper's own Figure 1 uses
// k = √n/(log n · log log n) = 27 for n = 10^6, which only holds for ln.
#pragma once

#include <cstdint>

#include "ppsim/core/types.hpp"

namespace ppsim::bounds {

/// n/2 - n/(4k): the value u(t) settles around (Section 2; the dashed
/// reference line in Figure 1 left).
double usd_settle_point(Count n, std::size_t k);

/// Lemma 3.1 ceiling: with probability >= 1 - n^{-4}, for all t <= n^4,
///   u(t) <= n/2 - n/(4k) + 10n/(k-1)^2 + (20·13² + 1)·√(n ln n).
/// Requires k >= 2 (the 10n/(k-1)² term).
double lemma31_ceiling(Count n, std::size_t k);

/// Theorem 3.5: parallel-time lower bound (k/25)·ln(√n/(k ln n)).
/// Returns 0 when the log argument is <= 1 (bound degenerates).
double theorem35_parallel_lower_bound(Count n, std::size_t k);

/// Theorem 3.5 in interactions: n times the parallel bound.
double theorem35_interaction_lower_bound(Count n, std::size_t k);

/// Amir et al. (PODC'23) upper bound shape: k·ln n parallel time (constant
/// factors are not specified by the theorem; benches fit them).
double amir_parallel_upper_bound(Count n, std::size_t k);

/// Clementi et al. (arXiv:1707.05135) two-color USD tight analysis: Θ(ln n)
/// parallel time for k = 2 (constant factors unspecified; benches fit them
/// from the measured k = 2 cell). Valid for k = 2 only — the k dependence
/// is what separates it from the Amir et al. curve in bench_bounds_gap.
double clementi_two_color_parallel_bound(Count n);

/// Maximum initial pairwise difference Theorem 3.5 tolerates:
///   (√n/(k ln n))^{1/4} · √(n ln n).
double theorem35_max_bias(Count n, std::size_t k);

/// The standard "sufficient" bias √(n ln n) (cf. [6, 9]): with this much
/// initial advantage the plurality opinion wins w.h.p.
double whp_bias(Count n);

/// Lemma 3.3: interaction budget kn/25 during which an opinion starting at
/// <= 3n/(2k) stays below 2n/k w.h.p.
double lemma33_interactions(Count n, std::size_t k);

/// Lemma 3.4: interaction budget kn/24 during which the maximum pairwise
/// difference does not double w.h.p.
double lemma34_interactions(Count n, std::size_t k);

/// The level 3n/(2k) (Lemma 3.3 start ceiling) and 2n/k (target).
double lemma33_start_level(Count n, std::size_t k);
double lemma33_target_level(Count n, std::size_t k);

/// Number of induction epochs in Theorem 3.5:
///   log2( n^{3/4} / (k^{1/2} √(n ln n) f(n)) ), f(n) = (√n/(k ln n))^{1/4}.
/// Returns 0 if the argument is < 2.
double theorem35_epochs(Count n, std::size_t k);

/// Oliveto–Witt (Theorem A.1) escape-probability scale exp(-εℓ/(132 r²)).
double oliveto_witt_escape_bound(double epsilon, double ell, double r);

/// Bernstein tail (Theorem A.2): exp(-(t²/2) / (Σ E[X_i²] + M t / 3)).
double bernstein_tail(double t, double variance_sum, double m);

/// Lemma 3.2 escape bound for the lazy walk: after N <= T/(2q) steps,
///   P[Y(N) >= T] <= exp(-(T²/8) / (N(p - q²) + 2T/3)).
double lemma32_escape_bound(double t_level, double p, double q, double steps);

/// Lemma 3.2 hypothesis: T >= 32((p - q²)/(2q) + 2/3)·ln n.
bool lemma32_condition_holds(double t_level, double p, double q, Count n);

/// The paper's Figure 1 parameter: k(n) = round(√n / (ln n · ln ln n)).
std::size_t paper_k(Count n);

}  // namespace ppsim::bounds
