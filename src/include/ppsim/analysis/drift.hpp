// Exact one-step conditional expectations for USD — the quantities the
// paper's drift analysis is built on (Section 3).
//
// Conditioned on the configuration x = (x_1, ..., x_k, u) after interaction
// t, the next interaction draws an ordered pair of distinct agents uniformly
// at random, so (writing N2 = n(n-1)):
//
//   P[u -> u-1]      = 2 u (n-u) / N2                      (adopt)
//   P[u -> u+2]      = Σ_i x_i (n-u-x_i) / N2              (clash)
//   E[Δu]            = 2·P[u+2] - P[u-1]
//   P[x_i -> x_i+1]  = 2 x_i u / N2
//   P[x_i -> x_i-1]  = 2 x_i (n-u-x_i) / N2
//   E[Δx_i]          = 2 x_i (2u - n + x_i) / N2
//   E[Δ(x_i - x_j)]  = 2 (x_i - x_j)(2u - n + x_i + x_j) / N2
//
// Unlike the paper's Lemma 3.1 derivation we keep the exact 1/(n-1) factors
// (no O(1/n) slack): tests compare these numbers against Monte-Carlo
// one-step averages at 4-5 significant digits.
//
// Two derived quantities recur throughout the proof:
//   * the opinion threshold u_i = (n - x_i)/2 — x_i drifts up iff u > u_i
//     ("the larger x_i, the smaller the threshold");
//   * the settling point n/2 - n/(4k) that u(t) hovers below (Lemma 3.1,
//     Figure 1's reference line).
#pragma once

#include <vector>

#include "ppsim/core/types.hpp"
#include "ppsim/protocols/usd.hpp"

namespace ppsim {

class UsdDrift {
 public:
  /// counts layout as in UsdEngine::counts(): counts[0] = u,
  /// counts[i+1] = x_{i+1}. Population must be >= 2.
  explicit UsdDrift(std::vector<Count> counts);

  static UsdDrift from_engine(const UsdEngine& engine) {
    return UsdDrift(engine.counts());
  }

  Count n() const noexcept { return n_; }
  Count u() const noexcept { return counts_[0]; }
  Count x(Opinion i) const;
  std::size_t k() const noexcept { return counts_.size() - 1; }

  /// P[u(t+1) = u(t) - 1 | x]: a decided agent meets an undecided one.
  double prob_undecided_decrease() const noexcept;
  /// P[u(t+1) = u(t) + 2 | x]: two distinct opinions clash.
  double prob_undecided_increase() const noexcept;
  /// E[u(t+1) - u(t) | x].
  double expected_undecided_change() const noexcept;

  double prob_opinion_up(Opinion i) const;
  double prob_opinion_down(Opinion i) const;
  /// E[x_i(t+1) - x_i(t) | x] = 2 x_i (2u - n + x_i) / (n(n-1)).
  double expected_opinion_change(Opinion i) const;

  /// P[Δ_ij increases by one | x] (paper, proof of Lemma 3.4).
  double prob_delta_up(Opinion i, Opinion j) const;
  double prob_delta_down(Opinion i, Opinion j) const;
  /// E[Δ_ij(t+1) - Δ_ij(t) | x] = 2 Δ_ij (2u - n + x_i + x_j) / (n(n-1)).
  double expected_delta_change(Opinion i, Opinion j) const;

  /// The threshold u_i = (n - x_i) / 2: E[Δx_i] > 0 iff u > u_i.
  double opinion_threshold(Opinion i) const;

  /// The settling point n/2 - n/(4k) of the undecided count (Lemma 3.1 and
  /// the guide line in Figure 1).
  double settle_point() const noexcept;

 private:
  double pair_norm() const noexcept {  // n(n-1)
    return static_cast<double>(n_) * static_cast<double>(n_ - 1);
  }

  std::vector<Count> counts_;
  Count n_ = 0;
};

}  // namespace ppsim
