// First-hitting-time measurements over USD observables — the executable
// counterparts of Lemmas 3.1, 3.3 and 3.4.
//
// Exactness of the skip optimization: per interaction, any single opinion
// count changes by at most 1 and the max pairwise difference Δmax by at most
// 2, so after observing value v the earliest interaction at which a level
// L > v can be reached is ⌈(L-v)/c⌉ steps away (c = 1 or 2). Checking
// exactly there cannot miss the first hit, which keeps the measured hitting
// times exact while avoiding an O(k) scan per interaction.
#pragma once

#include <cstdint>
#include <string>

#include "ppsim/core/engine.hpp"
#include "ppsim/core/types.hpp"
#include "ppsim/io/trajectory.hpp"
#include "ppsim/protocols/usd.hpp"

namespace ppsim {

/// Result of a first-hitting measurement.
struct HittingResult {
  bool hit = false;
  Interactions interactions_at_hit = 0;  ///< valid iff hit
  Interactions interactions_used = 0;    ///< total interactions consumed
  bool stabilized = false;               ///< run ended in a stable config
};

/// First time x_i reaches `level` (starting from the engine's current
/// state). Consumes the engine's randomness; call on a fresh engine.
HittingResult time_until_opinion_reaches(UsdEngine& engine, Opinion i, Count level,
                                         Interactions max_interactions);

/// First time Δmax = max_{i,j}(x_i - x_j) reaches `level` (Lemma 3.4's
/// doubling event when level = 2·Δmax(0)).
HittingResult time_until_delta_reaches(UsdEngine& engine, Count level,
                                       Interactions max_interactions);

/// Runs to stabilization (or budget); the Theorem 3.5 measurement.
HittingResult time_until_stable(UsdEngine& engine, Interactions max_interactions);

/// Tracks the maximum of u(t) over a run (Lemma 3.1's subject). Runs until
/// stabilization or budget exhaustion and returns max_t u(t).
struct UndecidedExcursion {
  Count max_undecided = 0;
  Interactions interactions_used = 0;
  bool stabilized = false;
};
UndecidedExcursion max_undecided_over_run(UsdEngine& engine,
                                          Interactions max_interactions);

// Engine-facade variants for USD runs on the generic engines (in practice
// the collapsed/batched engines at populations beyond the specialized
// UsdEngine's reach). The engine's Configuration must use the USD state
// layout (state 0 = ⊥, state i+1 = opinion i). Observables are checked once
// per *round*, so hitting times are round-granular: exact for the
// single-interaction-round engines, and within one τ-leap round (≤
// tau_epsilon·n interactions) of the exact first-hitting time for the
// collapsed engine — see docs/REPRODUCING.md for how the benches report
// this.

HittingResult time_until_opinion_reaches(Engine& engine, Opinion i, Count level,
                                         Interactions max_interactions);

HittingResult time_until_delta_reaches(Engine& engine, Count level,
                                       Interactions max_interactions);

UndecidedExcursion max_undecided_over_run(Engine& engine,
                                          Interactions max_interactions);

// Archive-replay variants: the same statistics read back from a trajectory
// archive (io/trajectory.hpp) instead of a live engine — no simulation, no
// randomness consumed. Granularity is the archive's sampling stride (plus
// the producing engine's round granularity), the exact analogue of the
// engine-facade variants' per-round observation above.

/// Stabilization outcome of a recorded run (the Theorem 3.5 measurement
/// replayed). An interrupted archive reports hit = false with
/// interactions_used at the last recorded sample.
HittingResult archive_time_until_stable(const io::TrajectoryReader& archive);

/// First recorded sample at which `channel` >= `level`. Blocks whose
/// max-footer stays below the level are skipped without decoding.
HittingResult archive_first_hit(const io::TrajectoryReader& archive,
                                const std::string& channel, double level);

/// max_t u(t) of a recorded run, straight from the "undecided" channel's
/// block footers (no column decoding at all).
UndecidedExcursion archive_max_undecided(const io::TrajectoryReader& archive);

}  // namespace ppsim
