// Initial-configuration builders for the paper's experiments.
//
// The lower-bound construction (Section 3) fixes the worst-case start: all
// k-1 minority opinions have equal support and the majority opinion leads by
// a controlled bias. Exact equality of the minorities matters for the proof,
// so the builder distributes agents as n = (k-1)·m + (m + bias'), where the
// realised bias' is the requested bias rounded up by at most k-1 agents to
// make the arithmetic exact. All builders return counts indexed by opinion
// (opinion 0 = majority), ready for UsdEngine / UsdGossipRule::initial.
#pragma once

#include <cstdint>
#include <vector>

#include "ppsim/core/types.hpp"
#include "ppsim/util/rng.hpp"

namespace ppsim {

struct InitialConfig {
  std::vector<Count> opinion_counts;  ///< size k, opinion 0 = majority
  Count bias = 0;                     ///< realised x_0 - x_1 (>= requested)

  Count population() const;
  Count majority() const { return opinion_counts.at(0); }
  Count minority() const { return opinion_counts.size() > 1 ? opinion_counts.at(1) : 0; }
};

/// The adversarial configuration of Section 3: equal minorities, majority
/// ahead by ~`bias`. Requires n >= k and bias in [0, n - k + 1).
/// The realised bias is bias rounded up by < k (documented above); all
/// minorities are exactly equal.
InitialConfig adversarial_configuration(Count n, std::size_t k, Count requested_bias);

/// The paper's Figure 1 setup: n agents, k opinions, bias = ceil(√(n ln n)).
InitialConfig figure1_configuration(Count n, std::size_t k);

/// All opinions as equal as possible (remainder spread over the first few
/// opinions); the zero-bias stress case.
InitialConfig balanced_configuration(Count n, std::size_t k);

/// Two-party configuration: a agents for opinion 0, n - a for opinion 1.
InitialConfig two_party_configuration(Count n, Count majority_count);

/// Random multinomial split of n agents over k opinions (sorted descending
/// so opinion 0 is the plurality) — used by property tests and examples.
InitialConfig random_configuration(Count n, std::size_t k, Xoshiro256pp& rng);

}  // namespace ppsim
