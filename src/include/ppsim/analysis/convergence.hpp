// Convergence time vs stabilization time.
//
// The paper distinguishes the two (Section 1.2, footnote 2): convergence is
// the first time the system holds a configuration with the correct output
// property — which it might still leave; stabilization is when the output
// can never change again. "In the Undecided State Dynamics, convergence and
// stabilization are equivalent" (a committed monochromatic profile is
// absorbing); for other protocols — e.g. quantized averaging, where every
// agent can be on the correct sign long before the values stop moving — the
// two differ, and lower bounds on stabilization say nothing about
// convergence (the paper makes exactly this caveat about [22], [13]).
//
// This module measures both on a generic Simulator run:
//   * convergence_time: first interaction after which every agent's output
//     equals `target` (the first visit — the run may leave again);
//   * final_convergence_time: the last such entry time (i.e. the first
//     visit after which the output property never breaks again within the
//     observed run) — equals stabilization for output-stable protocols;
//   * stabilization_time: when the configuration became stable.
#pragma once

#include <optional>

#include "ppsim/core/simulator.hpp"
#include "ppsim/core/types.hpp"

namespace ppsim {

struct ConvergenceReport {
  bool stabilized = false;
  std::optional<Opinion> final_output;         ///< consensus output if any
  Interactions first_convergence = -1;         ///< -1 = never converged
  Interactions final_convergence = -1;         ///< last entry into correctness
  Interactions stabilization = -1;             ///< -1 = budget exhausted
  Interactions output_breaks = 0;              ///< times correctness was lost
};

/// Runs `sim` until stabilization (or budget) while tracking when the
/// all-agents-output-`target` property holds. The property is evaluated
/// after every interaction; cost O(S) per check, so intended for
/// small-to-moderate state spaces (baseline protocols).
ConvergenceReport measure_convergence(Simulator& sim, Opinion target,
                                      Interactions max_interactions);

}  // namespace ppsim
