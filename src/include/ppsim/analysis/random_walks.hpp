// The lazy ±1 random walk of Lemma 3.2, plus the coupled dominating walk Ỹ
// used in its proof.
//
// Lemma 3.2 (paper): let Y(0) = 0 and at each step
//     Y(t+1) = Y(t)      with probability 1 - p(t),
//     Y(t+1) = Y(t) + 1  with probability (p(t) + q(t))/2,
//     Y(t+1) = Y(t) - 1  with probability (p(t) - q(t))/2,
// with 0 <= p(t) <= p and -p(t) <= q(t) <= q. Then for
// T >= 32((p - q²)/(2q) + 2/3)·ln n, w.p. >= 1 - n^{-2} the walk stays below
// T for min{T/(2q), n²} steps.
//
// The proof couples Y to a walk Ỹ whose upward probability is inflated to
// (p(t) + q)/2 in a way that guarantees Ỹ(t) >= Y(t) pointwise; Bernstein's
// inequality then bounds Ỹ. `CoupledLazyWalks` implements exactly that
// coupling (same shared uniform draw per step), so the domination invariant
// is machine-checkable (tests) and escape probabilities of both processes
// can be compared against the analytic bound (bench_lemma32_walks).
#pragma once

#include <cstdint>
#include <functional>

#include "ppsim/core/types.hpp"
#include "ppsim/util/rng.hpp"

namespace ppsim {

/// Step distribution parameters of the lazy walk at one instant.
struct WalkRates {
  double p = 0.0;  ///< probability of moving at all, in [0, 1]
  double q = 0.0;  ///< drift: P(+1) - P(-1), in [-p, p]
};

/// The walk Y of Lemma 3.2 with (possibly time-varying) rates.
class LazyWalk {
 public:
  using RateFn = std::function<WalkRates(std::int64_t step)>;

  /// Constant-rate walk.
  LazyWalk(double p, double q, std::uint64_t seed);
  /// Time-varying rates (rates(t) must satisfy Lemma 3.2's constraints).
  LazyWalk(RateFn rates, std::uint64_t seed);

  std::int64_t position() const noexcept { return position_; }
  std::int64_t steps() const noexcept { return steps_; }

  void step();

  /// Runs until the position reaches `level` or `max_steps` are done.
  /// Returns true iff the level was reached.
  bool run_until_level(std::int64_t level, std::int64_t max_steps);

 private:
  RateFn rates_;
  Xoshiro256pp rng_;
  std::int64_t position_ = 0;
  std::int64_t steps_ = 0;
};

/// The coupling (Y, Ỹ) from the proof of Lemma 3.2: one shared uniform draw
/// drives both walks such that Ỹ >= Y always. `q_cap` is the uniform bound q.
class CoupledLazyWalks {
 public:
  CoupledLazyWalks(LazyWalk::RateFn rates, double q_cap, std::uint64_t seed);

  std::int64_t y() const noexcept { return y_; }
  std::int64_t y_tilde() const noexcept { return y_tilde_; }
  std::int64_t steps() const noexcept { return steps_; }

  void step();

 private:
  LazyWalk::RateFn rates_;
  double q_cap_;
  Xoshiro256pp rng_;
  std::int64_t y_ = 0;
  std::int64_t y_tilde_ = 0;
  std::int64_t steps_ = 0;
};

/// Monte-Carlo estimate of P[max_{t <= steps} Y(t) >= level] over `walks`
/// independent constant-rate walks.
struct EscapeEstimate {
  double probability = 0.0;
  std::int64_t walks = 0;
  std::int64_t escapes = 0;
};
EscapeEstimate estimate_escape_probability(double p, double q, std::int64_t level,
                                           std::int64_t steps, std::int64_t walks,
                                           std::uint64_t seed);

}  // namespace ppsim
