// Scaling-law fitting for the headline experiment (Theorem 3.5 vs the Amir
// et al. upper bound): given measured stabilization times over a sweep of
// (n, k), fit one free constant against each theory curve
//     T_LB(n, k) = c_lb · k · ln(√n / (k ln n))      (lower bound shape)
//     T_UB(n, k) = c_ub · k · ln n                   (upper bound shape)
// and report the constants plus R². The paper predicts both fits are good
// (the bounds are tight up to the log argument), with every measured point
// lying above the lower-bound curve evaluated with the paper's constant
// 1/25.
#pragma once

#include <vector>

#include "ppsim/core/types.hpp"
#include "ppsim/util/stats.hpp"

namespace ppsim {

struct ScalingPoint {
  Count n = 0;
  std::size_t k = 0;
  double measured_parallel_time = 0.0;
};

struct ScalingFit {
  ProportionalFit lower_bound_shape;  ///< vs k·ln(√n/(k ln n))
  ProportionalFit upper_bound_shape;  ///< vs k·ln n
  /// Affine fit T ≈ slope·k + intercept at fixed n. At simulable scales the
  /// bounds' log factors are nearly constant across the valid k range, so
  /// "stabilization grows linearly in k" (this fit, R² near 1) is the
  /// sharpest testable form of the Θ(k·log(·)) sandwich.
  LinearFit affine_in_k;
  /// min over points of measured / theorem35_parallel_lower_bound(n,k);
  /// the lower bound holds empirically iff this is >= 1.
  double min_ratio_to_lower_bound = 0.0;
};

/// Fits the measurements against the three shapes above. Points whose
/// lower bound degenerates (log argument <= 1, i.e. k near √n/ln n) are
/// rejected with CheckFailure — keep the sweep inside k = o(√n/log n).
ScalingFit fit_scaling(const std::vector<ScalingPoint>& points);

}  // namespace ppsim
