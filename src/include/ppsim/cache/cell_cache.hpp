// Content-addressed cache of completed sweep cells.
//
// A sweep cell's raw trial data is a pure function of its canonical inputs:
// the cell's axes and params, its position in the grid (stream indices are
// cell_index * trials + trial, so position IS an input), the trial count
// cap, the base seed, the stopping discipline, the resolved kernel, the
// identity of the trial function, and the build version. The cache keys on
// a canonical JSON rendering of exactly those inputs — render_double keeps
// the float spelling platform-invariant — and stores ONLY the raw per-trial
// metrics. Aggregates are deliberately not stored: a hit is replayed
// through the same aggregate_sweep_cell() path a cold run uses, so a cached
// cell can never diverge by a byte from a computed one (the load-bearing
// invariant the serve smoke test pins). The cache is an optimization, never
// a second code path for results.
//
// Two tiers: an in-memory LRU front (capacity in entries) and an optional
// write-through on-disk back (one checksummed record per key, named by the
// key's fnv1a hash, reusing io/wire primitives). Disk records embed the
// full canonical key and are verified on load — a hash collision or a
// corrupted file degrades to a miss, never to wrong data.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ppsim/core/sweep.hpp"

namespace ppsim::cache {

/// The canonical content address of cell `cell_index` of `spec` as computed
/// by the trial function identified by `trial_fn_id`. Deliberately EXCLUDES
/// spec.name, spec.threads, spec.scheduler and cell.name — none of them
/// influence the cell's trial data (thread/scheduler invariance is pinned by
/// sweep_test) — and INCLUDES io::kBuildVersion, so a rebuild that could
/// change numerics starts from a cold cache. `trial_fn_id` must encode
/// everything the trial closure captures that varies results (e.g. the
/// service uses "usd/engine/v1;budget=<b>").
std::string canonical_cell_key(const SweepSpec& spec, std::size_t cell_index,
                               std::string_view trial_fn_id);

/// Stable 64-bit content address of a canonical key (fnv1a), also the disk
/// file stem, rendered as 16 lowercase hex digits.
std::string cell_key_hash(std::string_view canonical_key);

/// What the cache stores per cell: the raw deterministic trial data, nothing
/// derived. The caller stamps cell/cell_index from its own spec and rebuilds
/// aggregates via aggregate_sweep_cell().
struct CachedCellData {
  std::size_t trials_requested = 0;
  std::size_t trials_run = 0;
  std::vector<SweepMetrics> trials;  ///< sized to trials_run
};

struct CellCacheStats {
  std::uint64_t hits = 0;         ///< memory_hits + disk_hits
  std::uint64_t memory_hits = 0;
  std::uint64_t disk_hits = 0;    ///< misses in memory served from disk
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;    ///< LRU entries displaced from memory
};

class CellCache {
 public:
  struct Options {
    /// Entries held by the in-memory LRU front (>= 1).
    std::size_t memory_capacity = 256;
    /// Directory for the persistent back; "" = memory-only. Created on
    /// demand; each entry is one "<fnv1a-hex>.ppcell" checksummed record.
    std::string disk_dir;
  };

  explicit CellCache(Options options);

  /// Returns the stored data for `canonical_key`, consulting memory first,
  /// then disk (a disk hit is promoted into memory). A corrupt, truncated
  /// or key-mismatched disk record counts as a miss. Thread-safe.
  std::optional<CachedCellData> lookup(const std::string& canonical_key);

  /// Stores `data` under `canonical_key` in memory and (when configured)
  /// write-through to disk. Throws CheckFailure on disk IO failure —
  /// a persistent cache that silently drops writes would turn "second run
  /// is all hits" into a flaky property. Thread-safe.
  void insert(const std::string& canonical_key, const CachedCellData& data);

  CellCacheStats stats() const;

 private:
  struct Entry {
    std::string key;
    CachedCellData data;
    /// Intrusive LRU list indices into entries_ (npos-terminated).
    std::size_t prev = npos;
    std::size_t next = npos;
  };
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::string disk_path(std::string_view canonical_key) const;
  void lru_unlink(std::size_t i);
  void lru_push_front(std::size_t i);
  void memory_insert(const std::string& key, const CachedCellData& data);
  std::optional<CachedCellData> disk_load(const std::string& canonical_key);
  void disk_store(const std::string& canonical_key,
                  const CachedCellData& data);

  Options options_;
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;                          ///< slab, LRU-linked
  std::unordered_map<std::string, std::size_t> index_;  ///< key -> slab slot
  std::vector<std::size_t> free_;                       ///< recycled slots
  std::size_t lru_head_ = npos;  ///< most recently used
  std::size_t lru_tail_ = npos;  ///< eviction candidate
  CellCacheStats stats_;
};

}  // namespace ppsim::cache
