// Phase-gated ("synchronized") Undecided State Dynamics.
//
// The paper's conclusion asks at which point extra memory plus partial
// synchronization can break the Ω(k log(√n/(k log n))) barrier, pointing at
// the synchronized USD of Bankhamer et al. (SODA'22, [9]) which reaches
// consensus in O(log² n) parallel time with O(k log n) states.
//
// This protocol is a *documented simplification* of that idea (DESIGN.md §5):
// agents carry a product state (phase-clock component × USD component) and
// the phase parity gates which USD rule may fire:
//   * parity 0 ("cancellation"): only clashes (i, j) -> (⊥, ⊥) fire;
//   * parity 1 ("recruitment"):  only adoptions (s, ⊥) -> (s, s) fire;
// and the USD rule fires only when both agents agree on the parity, which is
// the case for all but a vanishing fraction of interactions once the clock
// has burned in. The clock is the leader-driven PhaseClock; the number of
// clock phases P controls how long each gated stage lasts (Θ(log n) parallel
// time per phase).
//
// State encoding: state = clock_state * (k + 1) + usd_state, with usd_state
// as in UndecidedStateDynamics (0 = ⊥, i+1 = opinion i).
//
// Because the clock never stops ticking, no configuration is ever stable in
// the formal sense; the interesting event is *opinion consensus* (every
// agent's USD component holds the same opinion), exposed via
// `consensus_opinion`.
#pragma once

#include <optional>
#include <string>

#include "ppsim/core/configuration.hpp"
#include "ppsim/core/protocol.hpp"
#include "ppsim/protocols/phase_clock.hpp"

namespace ppsim {

class SynchronizedUsd final : public Protocol {
 public:
  SynchronizedUsd(std::size_t k, std::size_t num_phases);

  std::size_t num_opinions() const noexcept { return k_; }
  const PhaseClock& clock() const noexcept { return clock_; }

  std::size_t num_states() const override;
  Transition apply(State initiator, State responder) const override;
  std::optional<Opinion> output(State s) const override;
  std::string name() const override;
  std::string state_name(State s) const override;

  State encode(State clock_state, State usd_state) const;
  State clock_part(State s) const;
  State usd_part(State s) const;

  /// Initial configuration: one leader; opinion_counts[i] agents hold
  /// opinion i (the leader holds opinion of the first nonzero class).
  Configuration initial(const std::vector<Count>& opinion_counts) const;

  /// If every agent's USD component is the same opinion, returns it.
  std::optional<Opinion> consensus_opinion(const Configuration& config) const;

 private:
  std::size_t k_;
  PhaseClock clock_;
};

}  // namespace ppsim
