// The classic four-state exact majority protocol (Draief & Vojnović,
// INFOCOM'10; Mertzios et al., ICALP'14) — the paper's related-work baseline
// for constant-state exact majority.
//
// States: strong A, strong B, weak a, weak b. Unordered transition rules:
//     (A, B) -> (a, b)     two strong opposites cancel into weak,
//     (A, b) -> (A, a)     a strong agent flips opposing weak agents,
//     (B, a) -> (B, b)
//     everything else is a null transition.
//
// The difference of strong counts #A - #B is invariant, so with any nonzero
// initial difference the initial majority always wins (exact majority) —
// but stabilization takes Θ(n log n / |d|) interactions in expectation,
// which is why large-bias preprocessing (cf. Alistarh et al.) matters.
// With a perfect tie the population ends in a stable mixed {a, b}
// configuration with no consensus; callers observe winner == nullopt.
#pragma once

#include <optional>
#include <string>

#include "ppsim/core/configuration.hpp"
#include "ppsim/core/protocol.hpp"

namespace ppsim {

class FourStateMajority final : public Protocol {
 public:
  static constexpr State kStrongA = 0;
  static constexpr State kStrongB = 1;
  static constexpr State kWeakA = 2;
  static constexpr State kWeakB = 3;

  /// Opinion 0 = "A wins", opinion 1 = "B wins".
  static constexpr Opinion kOpinionA = 0;
  static constexpr Opinion kOpinionB = 1;

  std::size_t num_states() const override { return 4; }
  Transition apply(State initiator, State responder) const override;
  std::optional<Opinion> output(State s) const override;
  std::string name() const override { return "four-state-majority"; }
  std::string state_name(State s) const override;

  /// Initial configuration with `a` strong-A agents and `b` strong-B agents.
  static Configuration initial(Count a, Count b);
};

}  // namespace ppsim
