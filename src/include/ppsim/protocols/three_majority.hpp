// 3-majority dynamics in the synchronous Gossip model: each round every
// agent samples three uniformly random other agents and adopts the majority
// opinion among the three samples; if all three differ, it adopts the first
// sample. A classic fast plurality-consensus dynamic, included as a Gossip
// baseline alongside USD.
//
// Because the update depends on a 3-sample multiset, the exact counts-only
// multinomial trick used by GossipEngine does not scale in k; this protocol
// therefore ships its own per-agent engine (O(n) per round), which is
// plenty for the n ≤ 10^6 and O(log n)-round regimes it is used in.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ppsim/core/types.hpp"
#include "ppsim/util/rng.hpp"

namespace ppsim {

class ThreeMajorityEngine {
 public:
  /// opinion_counts[i] agents start with opinion i. Population >= 4 (an
  /// agent needs three distinct partners).
  ThreeMajorityEngine(const std::vector<Count>& opinion_counts, std::uint64_t seed);

  Count population() const noexcept { return static_cast<Count>(agents_.size()); }
  std::size_t num_opinions() const noexcept { return k_; }
  std::int64_t rounds() const noexcept { return rounds_; }

  Count opinion_count(Opinion i) const;
  const std::vector<Count>& counts() const noexcept { return counts_; }

  bool consensus() const noexcept;
  std::optional<Opinion> winner() const;

  /// Executes one synchronous round (all agents update simultaneously).
  void step_round();

  /// Runs until consensus or the round budget is exhausted; true on consensus.
  bool run_until_consensus(std::int64_t max_rounds);

 private:
  Opinion sample_other(std::size_t self) noexcept;

  std::size_t k_;
  std::vector<Opinion> agents_;
  std::vector<Opinion> next_;
  std::vector<Count> counts_;
  Xoshiro256pp rng_;
  std::int64_t rounds_ = 0;
};

}  // namespace ppsim
