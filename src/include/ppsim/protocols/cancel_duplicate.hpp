// Cancellation–duplication exact majority — the technique introduced by
// Angluin, Aspnes & Eisenstat ([8] in the paper) and reused by most
// fast exact-majority protocols since ([2, 5, 12, 14, ...]). This is a
// leaderless, unsynchronized rendition:
//
// Each agent carries a signed token of dyadic weight ±2^j (j <= J) or is
// "blank" (weight 0). Blanks remember the sign of the last token they met.
//   cancellation:  (+2^j, -2^j)       -> (blank+, blank-)
//   duplication:   (±2^j, blank·)     -> (±2^{j-1}, ±2^{j-1})   for j >= 1
//   sign gossip:   (±2^0, blank·)     -> (±2^0, blank±)         (j = 0)
//   everything else is null.
//
// The total signed weight Σ sign·2^j is invariant: cancellation removes
// +w and -w; duplication splits w into two halves. Opinion A starts at
// +2^J, opinion B at -2^J, so the invariant equals 2^J·(a - b) and its sign
// can never flip — the protocol computes *exact* majority. Duplication
// pushes surviving tokens down to weight 1, where opposite tokens can
// always cancel; with a - b = d > 0, exactly d·2^J units of + weight
// survive as +1 tokens whose sign gossip converts every blank.
//
// The role in this library: a second exact baseline with a state/time
// profile between the 4-state protocol (J = 0 is nearly that protocol) and
// quantized averaging, exhibiting the cancellation/duplication phase
// structure that [8] pioneered with a leader and [14] made leaderless.
//
// Caveat (and the very reason [8] synchronized the two phases with a
// leader): without synchronization the blanks can run out while
// opposite-sign tokens of *different* magnitudes survive — a stable
// configuration without consensus. The sign of the invariant is still
// correct, so committed outputs are never wrong, but consensus is only
// reached reliably when the surplus weight fits comfortably into unit
// tokens: choose J with d·2^J <= n/2 (measured: J=4 at n=100 gives 40/40
// consensus; J=7 at n=100 deadlocks in ~3/4 of runs — see
// cancel_duplicate_test.cpp, which codifies both regimes). Amplifying a
// small bias d therefore costs states exactly as in Alistarh et al. [5].
//
// State encoding: 0,1,2 = blank with memory {?, +, -};
//                 3 + 2j     = +2^j,
//                 3 + 2j + 1 = -2^j,  for j in [0, J].
#pragma once

#include <optional>
#include <string>

#include "ppsim/core/configuration.hpp"
#include "ppsim/core/protocol.hpp"

namespace ppsim {

class CancellationDuplication final : public Protocol {
 public:
  static constexpr Opinion kOpinionA = 0;  ///< positive weight
  static constexpr Opinion kOpinionB = 1;  ///< negative weight

  static constexpr State kBlankNeutral = 0;
  static constexpr State kBlankPlus = 1;
  static constexpr State kBlankMinus = 2;

  /// Tokens carry weights 2^0 .. 2^max_exponent.
  explicit CancellationDuplication(std::size_t max_exponent);

  std::size_t max_exponent() const noexcept { return max_exp_; }
  std::size_t num_states() const override { return 3 + 2 * (max_exp_ + 1); }

  State token_state(bool positive, std::size_t exponent) const;
  bool is_token(State s) const;
  bool is_positive(State s) const;
  std::size_t exponent(State s) const;

  /// Signed weight of a state: ±2^j for tokens, 0 for blanks.
  Count signed_weight(State s) const;
  /// The conserved quantity Σ over agents of signed_weight.
  Count total_weight(const Configuration& config) const;

  Transition apply(State initiator, State responder) const override;
  std::optional<Opinion> output(State s) const override;
  std::string name() const override;
  std::string state_name(State s) const override;

  /// a agents at +2^J, b agents at -2^J.
  Configuration initial(Count a, Count b) const;

 private:
  std::size_t max_exp_;
};

}  // namespace ppsim
