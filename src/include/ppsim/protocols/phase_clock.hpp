// Leader-driven phase clock (in the spirit of Angluin, Aspnes & Eisenstat's
// leader-synchronized protocols, which the paper cites as [8]).
//
// One designated leader carries the authoritative phase p ∈ Z_P. Followers
// learn newer phases epidemically; the leader advances the clock only after
// the current phase has propagated back to it:
//
//   follower ⊕ x      : the agent that is behind (in the windowed ring
//                       order) adopts the newer phase;
//   leader  ⊕ follower: if the follower has caught up to the leader's
//                       phase, the leader increments (mod P), otherwise the
//                       follower adopts the leader's phase.
//
// Each phase therefore lasts roughly one epidemic, i.e. Θ(log n) parallel
// time w.h.p. — long enough that phase parity can gate alternating
// computation stages (see SynchronizedUsd). The ring comparison uses a
// window of P/2, so P must be large enough that honest phase skew (O(1)
// phases) never wraps; P >= 4 is enforced.
//
// State encoding: state = phase            for followers,
//                 state = P + phase        for the leader.
#pragma once

#include <optional>
#include <string>

#include "ppsim/core/configuration.hpp"
#include "ppsim/core/protocol.hpp"

namespace ppsim {

class PhaseClock final : public Protocol {
 public:
  explicit PhaseClock(std::size_t num_phases);

  std::size_t num_phases() const noexcept { return phases_; }
  std::size_t num_states() const override { return 2 * phases_; }

  bool is_leader(State s) const;
  std::size_t phase(State s) const;
  State encode(bool leader, std::size_t phase) const;

  /// True iff `p` is strictly ahead of `q` in the windowed ring order
  /// (distance (p - q) mod P in [1, P/2)).
  bool ahead(std::size_t p, std::size_t q) const;

  Transition apply(State initiator, State responder) const override;
  /// Output = phase parity (the bit consumers of the clock read).
  std::optional<Opinion> output(State s) const override;
  std::string name() const override;
  std::string state_name(State s) const override;

  /// One leader and n-1 followers, all at phase 0.
  Configuration initial(Count n) const;

 private:
  std::size_t phases_;
};

}  // namespace ppsim
