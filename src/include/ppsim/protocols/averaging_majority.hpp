// Quantized-averaging exact majority in the style of Alistarh, Gelashvili &
// Vojnović (PODC'15): every agent holds an integer value in [-m, m]; opinion
// A starts at +m, opinion B at -m; an interaction replaces the two values by
// their (integer) average split:
//     (v1, v2) -> (⌈(v1+v2)/2⌉, ⌊(v1+v2)/2⌋).
//
// The sum of all values is invariant, so sign(sum) — the initial majority —
// is preserved. With resolution m >= n and any nonzero initial difference d,
// the terminal configuration (all values within ±1 of the mean m·d/n, whose
// magnitude is then >= 1) has every agent on the majority sign: exact
// majority with 2m+1 states. This is the canonical time/state trade-off
// baseline from the related work: more states (larger m) buy a much larger
// effective bias and hence faster stabilization than the 4-state protocol.
//
// The state space is 2m+1, which for m ≈ n is too large for a dense
// transition table — use Simulator::Engine::kVirtual with this protocol.
#pragma once

#include <optional>
#include <string>

#include "ppsim/core/configuration.hpp"
#include "ppsim/core/protocol.hpp"

namespace ppsim {

class AveragingMajority final : public Protocol {
 public:
  static constexpr Opinion kOpinionA = 0;  ///< positive values
  static constexpr Opinion kOpinionB = 1;  ///< negative values

  /// Resolution m >= 1. State s encodes value s - m ∈ [-m, m].
  explicit AveragingMajority(Count m);

  Count resolution() const noexcept { return m_; }
  Count state_value(State s) const;
  State value_state(Count v) const;

  std::size_t num_states() const override { return static_cast<std::size_t>(2 * m_ + 1); }
  Transition apply(State initiator, State responder) const override;
  /// Positive value -> A, negative -> B, zero -> uncommitted.
  std::optional<Opinion> output(State s) const override;
  std::string name() const override;
  std::string state_name(State s) const override;

  /// Initial configuration: `a` agents at +m, `b` agents at -m.
  Configuration initial(Count a, Count b) const;

  /// The conserved quantity: sum of all agent values.
  Count value_sum(const Configuration& config) const;

 private:
  Count m_;
};

}  // namespace ppsim
