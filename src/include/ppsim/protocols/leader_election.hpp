// Fratricide leader election: every leader that meets another leader demotes
// one of the two to follower; eventually exactly one leader survives.
//
//     (L, L) -> (L, F),    everything else null.
//
// This is the textbook Θ(n) parallel-time leader election (the survey
// literature the paper cites treats leader election alongside majority as
// the canonical population-protocol problems). In this library it serves
// as (a) a framework test with an easily checkable stable configuration and
// (b) the bootstrap for the leader-driven phase clock.
#pragma once

#include <optional>
#include <string>

#include "ppsim/core/configuration.hpp"
#include "ppsim/core/protocol.hpp"

namespace ppsim {

class LeaderElection final : public Protocol {
 public:
  static constexpr State kFollower = 0;
  static constexpr State kLeader = 1;

  std::size_t num_states() const override { return 2; }
  Transition apply(State initiator, State responder) const override;
  /// Output: 1 for leader, 0 for follower (an "am I the leader?" bit, not a
  /// consensus value — stable configurations are intentionally mixed).
  std::optional<Opinion> output(State s) const override;
  std::string name() const override { return "leader-election"; }
  std::string state_name(State s) const override;

  /// Everyone starts as a leader (the standard uniform start).
  static Configuration initial(Count n);
};

}  // namespace ppsim
