// Unconditional Undecided State Dynamics (USD) for k opinions — the protocol
// whose stabilization time the paper lower-bounds.
//
// State space Σ = {⊥, 1, ..., k} (k+1 states; we index opinions 0-based in
// code and reserve state 0 for ⊥). Transition function (Section 1.1):
//     f(s1, s2) = (⊥, ⊥)   if s1 ≠ s2 and both are opinions,
//     f(s, ⊥)   = (s, s)   for any opinion s (and symmetrically),
//     f          = identity otherwise.
//
// Two implementations are provided:
//   * UndecidedStateDynamics — a Protocol, usable with the generic engines
//     (table-driven Simulator, stability machinery, gossip comparisons);
//   * UsdEngine — a specialized sequential engine for the paper-scale
//     experiments (n = 10^6, ~10^8 interactions): no virtual dispatch, O(1)
//     stabilization detection, direct access to the observables the paper
//     plots (u(t), x_i(t), Δmax(t)).
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ppsim/core/configuration.hpp"
#include "ppsim/core/protocol.hpp"
#include "ppsim/core/types.hpp"
#include "ppsim/util/fenwick.hpp"
#include "ppsim/util/rng.hpp"

namespace ppsim {

/// Generic-protocol formulation of k-opinion USD.
class UndecidedStateDynamics final : public Protocol {
 public:
  static constexpr State kUndecided = 0;

  explicit UndecidedStateDynamics(std::size_t k);

  /// State encoding an opinion (opinions are 0-based; state = opinion + 1).
  static State opinion_state(Opinion i) noexcept { return static_cast<State>(i + 1); }

  /// Configuration over the k+1 USD states (k = opinion_counts.size()):
  /// opinion_counts[i] agents on opinion i, `undecided` agents in ⊥. This is
  /// the one place that knows the ⊥-first state layout — use it instead of
  /// hand-prepending a zero to the counts.
  static Configuration initial_configuration(const std::vector<Count>& opinion_counts,
                                             Count undecided = 0);

  std::size_t num_opinions() const noexcept { return k_; }
  std::size_t num_states() const override { return k_ + 1; }
  Transition apply(State initiator, State responder) const override;
  std::optional<Opinion> output(State s) const override;
  std::string name() const override;
  std::string state_name(State s) const override;

 private:
  std::size_t k_;
};

/// Specialized exact engine for USD.
///
/// Observables mirror the paper's notation: `undecided()` is u(t),
/// `opinion_count(i)` is x_{i+1}(t) (0-based), `delta_max()` is
/// max_{i,j}(x_i - x_j). All counts are exact; the engine performs the same
/// stochastic process as Simulator + UndecidedStateDynamics, only faster.
class UsdEngine {
 public:
  /// Starts from `opinion_counts[i]` agents holding opinion i and
  /// `undecided` agents in ⊥. Population must be at least 2.
  UsdEngine(std::vector<Count> opinion_counts, Count undecided, std::uint64_t seed);

  /// Convenience constructor: all agents decided (u(0) = 0, as in the paper).
  UsdEngine(std::vector<Count> opinion_counts, std::uint64_t seed)
      : UsdEngine(std::move(opinion_counts), 0, seed) {}

  Count population() const noexcept { return n_; }
  std::size_t num_opinions() const noexcept { return k_; }
  Interactions interactions() const noexcept { return interactions_; }
  double time() const noexcept { return parallel_time(interactions_, n_); }

  Count undecided() const noexcept { return counts_[0]; }
  Count opinion_count(Opinion i) const;
  /// Number of opinions with a nonzero count.
  std::size_t surviving_opinions() const noexcept { return nonzero_opinions_; }

  /// max_i x_i, min over *surviving* semantics is intentionally NOT used:
  /// the paper's Δ ranges over all k opinions, including extinct ones.
  Count max_opinion_count() const noexcept;
  Count min_opinion_count() const noexcept;
  /// Δ(t) = max_{i,j} (x_i(t) - x_j(t)) = max count - min count. O(k).
  Count delta_max() const noexcept { return max_opinion_count() - min_opinion_count(); }

  /// O(1) stabilization test: stable iff all agents share one opinion or all
  /// are undecided (the only configurations where f cannot fire).
  bool stabilized() const noexcept {
    return counts_[0] == n_ || (counts_[0] == 0 && nonzero_opinions_ == 1);
  }

  /// The winning opinion if stabilized on an opinion; nullopt otherwise
  /// (not yet stable, or stabilized all-undecided).
  std::optional<Opinion> winner() const;

  /// Performs one interaction. Returns true iff any state changed.
  bool step();

  /// Runs until stabilized or the *total* interaction count reaches
  /// `max_interactions`. Returns true iff stabilized.
  bool run_until_stable(Interactions max_interactions);

  /// Runs like run_until_stable, invoking `observer(*this)` after every
  /// interaction. The observer is inlined — this is the hot-loop hook used
  /// by the recorders and hitting-time detectors.
  template <typename F>
  bool run_observed(Interactions max_interactions, F&& observer) {
    while (interactions_ < max_interactions && !stabilized()) {
      step();
      observer(static_cast<const UsdEngine&>(*this));
    }
    return stabilized();
  }

  /// Runs until `predicate(*this)` holds (checked after each interaction) or
  /// budget/stabilization stops the run. Returns true iff the predicate
  /// fired.
  template <typename P>
  bool run_until(Interactions max_interactions, P&& predicate) {
    while (interactions_ < max_interactions && !stabilized()) {
      step();
      if (predicate(static_cast<const UsdEngine&>(*this))) return true;
    }
    return false;
  }

  /// Adversarially moves one agent between states (layout: 0 = ⊥,
  /// i+1 = opinion i) while maintaining every engine invariant. This is the
  /// hook for fault injection (see core/faults.hpp) — it is NOT part of the
  /// protocol's own dynamics and does not count as an interaction.
  /// Throws CheckFailure if no agent occupies `from`.
  void corrupt_agent(State from, State to);

  /// Applies the USD transition to a *chosen* ordered pair of agents instead
  /// of a uniformly sampled one. This is the adversarial-scheduler hook (see
  /// core/scenario.hpp): it consumes one interaction from the budget, exactly
  /// like step(), but no RNG draw. Both states must be occupied; when
  /// `initiator == responder` the state must hold at least two agents (the
  /// pair is distinct agents). Returns true iff any state changed.
  bool force_interaction(State initiator, State responder);

  /// Population churn: one agent joins in state `s` / leaves from state `s`.
  /// Neither counts as an interaction. remove_agent keeps the population at
  /// the engine minimum of 2 — callers must not shrink below that.
  /// Throws CheckFailure on an unoccupied source or an out-of-range state.
  void add_agent(State s);
  void remove_agent(State s);

  /// Snapshot as a Configuration over the k+1 USD states (state 0 = ⊥).
  Configuration snapshot() const { return Configuration(counts_); }

  /// Raw counts, counts()[0] = u, counts()[i+1] = x_{i+1}. Exposed for
  /// recorders; treat as read-only.
  const std::vector<Count>& counts() const noexcept { return counts_; }

 private:
  /// Applies the transition to an already-chosen ordered pair of distinct
  /// agents in states (a, b), updating counts/weights/survivor bookkeeping.
  bool apply_pair(State a, State b);

  std::size_t k_;
  Count n_;
  std::vector<Count> counts_;      // counts_[0] = undecided, counts_[i+1] = opinion i
  FenwickTree weights_;            // mirrors counts_ for O(log k) pair sampling
  Xoshiro256pp rng_;
  Interactions interactions_ = 0;
  std::size_t nonzero_opinions_ = 0;
};

}  // namespace ppsim
