// Undecided State Dynamics in the synchronous Gossip (PULL) model, as
// analyzed by Becchetti, Clementi, Natale, Pasquale & Silvestri (SODA'15),
// whose stabilization bound is O(md(c) · log n) rounds w.h.p., where md(c)
// is the *monochromatic distance* of the starting configuration.
//
// One-way update (only the chooser moves):
//     ⊥  sees opinion j          -> j       (adopt)
//     i  sees opinion j ≠ i      -> ⊥       (clash)
//     anything else              -> no change.
//
// The paper (Section 1.2) stresses that USD behaves *qualitatively
// differently* under the two schedulers — in the population model an agent
// can change opinion Ω(log n) times per parallel round while a constant
// fraction is never selected; in Gossip every agent updates exactly once per
// round. bench_gossip_compare measures that difference.
#pragma once

#include <string>
#include <vector>

#include "ppsim/core/configuration.hpp"
#include "ppsim/core/gossip.hpp"
#include "ppsim/core/types.hpp"

namespace ppsim {

class UsdGossipRule final : public GossipRule {
 public:
  static constexpr State kUndecided = 0;

  explicit UsdGossipRule(std::size_t k);

  std::size_t num_opinions() const noexcept { return k_; }
  std::size_t num_states() const override { return k_ + 1; }
  State update(State own, State seen) const override;
  std::string name() const override;

  /// Builds the k+1-state configuration from per-opinion counts (+ ⊥ count).
  Configuration initial(const std::vector<Count>& opinion_counts,
                        Count undecided = 0) const;

 private:
  std::size_t k_;
};

/// Monochromatic distance of a configuration (Becchetti et al., SODA'15):
///     md(c) = Σ_i (x_i / x_max)²,
/// where the sum ranges over all opinions and x_max is the largest opinion
/// count. md ∈ [1, k]: 1 for a monochromatic opinion profile, k when all
/// opinions are equally strong. Undecided agents do not contribute.
/// Throws CheckFailure if every opinion count is zero.
double monochromatic_distance(const std::vector<Count>& opinion_counts);

}  // namespace ppsim
