// One-way epidemic (broadcast): an informed agent infects any uninformed
// partner. Completes in Θ(n log n) interactions (Θ(log n) parallel time)
// w.h.p. — the basic spreading primitive underlying phase clocks and the
// paper's trivial Ω(log n) lower bound ("in o(log n) parallel time, w.h.p.
// there are nodes that have not interacted at all").
//
//     (I, S) -> (I, I),   (S, I) -> (I, I),   everything else null.
#pragma once

#include <optional>
#include <string>

#include "ppsim/core/configuration.hpp"
#include "ppsim/core/protocol.hpp"

namespace ppsim {

class Epidemic final : public Protocol {
 public:
  static constexpr State kSusceptible = 0;
  static constexpr State kInfected = 1;

  std::size_t num_states() const override { return 2; }
  Transition apply(State initiator, State responder) const override;
  std::optional<Opinion> output(State s) const override;
  std::string name() const override { return "epidemic"; }
  std::string state_name(State s) const override;

  /// `sources` infected agents among n total.
  static Configuration initial(Count n, Count sources);
};

}  // namespace ppsim
