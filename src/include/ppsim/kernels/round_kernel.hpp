// Round-sampling kernels with runtime capability dispatch.
//
// One simulated round of the counts-space engines is two draws against the
// frozen start-of-round PairLaw:
//
//   active ~ Binomial(batch, active_weight / total_weight)   // null split
//   draws  ~ Multinomial(active, pair weights)               // pair split
//
// That sampling step — not the O(S²) law rebuild or the count updates — is
// the hot path at paper scale (n ≥ 10⁹, many trials per sweep cell), and it
// is what a RoundKernel implements. The layer follows the classic
// accelerator-dispatch shape: a scalar CPU baseline that is *always* built
// and bit-identical to the historical inline draw sequence (so every
// byte-identical-JSON determinism pin keeps holding), plus optional
// accelerated backends compiled behind CMake feature checks and selected at
// *runtime* from CPU capability bits. Today's accelerated backend is kAvx2
// (4-lane SIMD xoshiro256++ feeding batched BTRS/inversion binomial
// variates, advancing 4 lockstep trials per uniform block); a CUDA/OpenCL
// backend plugs in by adding a KernelKind, an implementation file gated in
// CMake, and a branch in resolve() — engines and the sweep runner are
// already written against the interface.
//
// Determinism contract:
//   * kScalar consumes the engine RNG exactly as the pre-kernel engines did:
//     one std::binomial_distribution draw for the null split, then the
//     conditional-binomial multinomial chain. Bit-identical, always.
//   * kAvx2 consumes the engine RNG differently (it runs the trial's
//     generator as SIMD lanes), so its draw sequence legitimately differs;
//     it is validated distributionally (chi-square on the exact pair law,
//     KS against scalar hitting times — tests/kernel_distribution_test.cpp).
//     Results are still deterministic per (seed, kernel, lockstep group):
//     lockstep groups are formed by trial index, never by schedule order,
//     so sweep JSON stays byte-identical at any --threads for kAvx2 too.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ppsim/core/types.hpp"
#include "ppsim/kernels/pair_law.hpp"
#include "ppsim/util/rng.hpp"

namespace ppsim::kernels {

enum class KernelKind {
  kScalar,  ///< always built; the determinism anchor
  kAvx2,    ///< CMake feature-gated, runtime cpuid-dispatched SIMD variates
};

/// "scalar" | "avx2" (flag values and JSON field).
std::string to_string(KernelKind kind);

/// Inverse of to_string; nullopt for unknown names (including "auto" —
/// resolve the auto policy with parse_kernel_flag/auto_kind instead).
std::optional<KernelKind> parse_kernel(const std::string& name);

/// One staged round: the kernel reads (law, batch, rng) and writes (active,
/// draws). `draws` is engine-owned scratch resized by the kernel to
/// law->size(); it is filled only when active > 0.
struct RoundTask {
  const PairLaw* law = nullptr;
  Interactions batch = 0;
  Xoshiro256pp* rng = nullptr;
  std::vector<std::int64_t>* draws = nullptr;
  Interactions active = 0;  ///< out: non-null interactions this round
};

class RoundKernel {
 public:
  virtual ~RoundKernel() = default;
  virtual KernelKind kind() const noexcept = 0;

  /// Number of lockstep trials one advance_batch() call exploits; 1 means
  /// the kernel gains nothing from batching beyond a plain loop.
  virtual std::size_t lockstep_width() const noexcept { return 1; }

  /// Samples one round into task.active / *task.draws.
  virtual void advance(RoundTask& task) const = 0;

  /// Samples one round for each staged task. The default runs advance() per
  /// task, so for kScalar a lockstep launch is *bit-identical* to advancing
  /// the trials one by one — the scalar path never forks behavior on how
  /// the sweep runner happened to group work.
  virtual void advance_batch(std::span<RoundTask* const> tasks) const {
    for (RoundTask* task : tasks) advance(*task);
  }
};

/// True when the AVX2 backend was compiled in (CMake found -mavx2 and
/// PPSIM_ENABLE_AVX2 was ON).
bool avx2_compiled() noexcept;

/// True when the AVX2 backend is compiled in *and* this CPU reports the
/// avx2 capability bit — the runtime dispatch predicate.
bool avx2_supported() noexcept;

/// The always-available scalar baseline.
const RoundKernel& scalar_kernel() noexcept;

/// The AVX2 backend, or nullptr when compiled out. Does not check cpuid.
const RoundKernel* avx2_kernel_or_null() noexcept;

/// Kinds usable on this build + host, scalar first.
std::vector<KernelKind> available_kernels();

/// The kind `--kernel auto` resolves to: the fastest supported backend
/// (kAvx2 when compiled in and the CPU has it), else kScalar.
KernelKind auto_kind() noexcept;

/// Maps a kind to its kernel. Throws CheckFailure with a clear message when
/// the backend is compiled out or the CPU lacks the capability.
const RoundKernel& resolve(KernelKind kind);

/// Parses the CLI surface: "auto" → auto_kind(), "scalar"/"avx2" → the
/// explicit kind (throwing the resolve() error early when an explicitly
/// requested backend is unavailable on this build/host), anything else →
/// CheckFailure naming the valid values.
KernelKind parse_kernel_flag(const std::string& flag);

}  // namespace ppsim::kernels
