// The exact ordered-pair interaction law of a counts-space configuration —
// the shared substrate of every round kernel.
//
// Under the uniform scheduler one interaction picks an ordered pair of
// distinct agents, i.e. ordered state pair (a, b) with probability
// w(a,b) / n(n−1), where w(a,b) = c_a·c_b for a ≠ b and w(a,a) = c_a·(c_a−1)
// (an agent never interacts with itself). Both round engines need the same
// derived data from that law each round: the enumeration of *active*
// (non-null) pairs with their weights and transitions, the active/total
// weight split for the null binomial, the per-state consumption rates the
// collapsed engine's τ controller integrates, and — on the exact single-draw
// path — a Walker/Vose alias table over the active weights. Before the
// kernels layer existed this enumeration was written twice (collapsed and
// batched engines, verbatim); PairLaw is the single copy both build on and
// the structure a RoundKernel consumes.
//
// Cache discipline: rebuild() bumps a generation counter, and the lazily
// built alias table records the generation it was built for — so alias
// staleness can never desynchronize from the law itself. Engines track one
// counter of their own (counts generation) and rebuild the law when it
// moved; everything downstream invalidates through this single chain
// (counts generation → law generation → alias generation) instead of
// hand-maintained dirty flags at every mutation site.
#pragma once

#include <cstdint>
#include <vector>

#include "ppsim/core/configuration.hpp"
#include "ppsim/core/transition_table.hpp"
#include "ppsim/core/types.hpp"
#include "ppsim/util/alias_table.hpp"

namespace ppsim::kernels {

class PairLaw {
 public:
  /// Recomputes the active-pair enumeration from the live counts. O(S²).
  /// Bumps generation(); the alias table is invalidated implicitly.
  void rebuild(const TransitionTable& table, const Configuration& config);

  /// True when no active pair exists (the configuration is stable: every
  /// interaction is null).
  bool empty() const noexcept { return weight_.empty(); }
  std::size_t size() const noexcept { return weight_.size(); }

  State a(std::size_t i) const noexcept { return a_[i]; }
  State b(std::size_t i) const noexcept { return b_[i]; }
  const Transition& transition(std::size_t i) const noexcept { return t_[i]; }
  double weight(std::size_t i) const noexcept { return weight_[i]; }
  const std::vector<double>& weights() const noexcept { return weight_; }

  /// Σ w over the active pairs / over all n(n−1) ordered pairs. The ratio is
  /// the per-interaction probability of a non-null draw.
  double active_weight() const noexcept { return active_weight_; }
  double total_weight() const noexcept { return total_weight_; }

  /// Per-state Σ w_i · (agents of s removed by pair i): the expected removal
  /// weight the collapsed engine's τ controller bounds against ε·c_s.
  double consumption(std::size_t s) const noexcept { return consumption_[s]; }
  std::size_t num_states() const noexcept { return consumption_.size(); }

  /// Monotone build counter; 0 before the first rebuild().
  std::uint64_t generation() const noexcept { return generation_; }

  /// Walker/Vose alias table over weights(), built lazily and cached per
  /// generation — callers can never observe a table from a previous build.
  /// Requires !empty().
  const AliasTable& alias() const;

 private:
  std::vector<State> a_;
  std::vector<State> b_;
  std::vector<Transition> t_;
  std::vector<double> weight_;
  std::vector<double> consumption_;
  double active_weight_ = 0.0;
  double total_weight_ = 0.0;
  std::uint64_t generation_ = 0;
  mutable AliasTable alias_;
  mutable std::uint64_t alias_generation_ = 0;  ///< generation alias_ matches
};

/// Outcome of applying drawn interactions to the live counts.
struct ApplyResult {
  Interactions clamped = 0;  ///< attempted-but-unrealised overdraw
  bool moved = false;        ///< any count changed (law is now stale)
};

/// Applies m interactions of active pair i with the engines' shared overdraw
/// clamp: bulk moves are limited to the live counts so Configuration's
/// invariants (non-negative counts, constant population) hold
/// unconditionally even when earlier pairs in the round drained a state
/// below what the start-of-round weights promised.
ApplyResult apply_one(const PairLaw& law, Configuration& config, std::size_t i,
                      Interactions m);

/// Applies a whole round's multinomial draws (draws[i] interactions of pair
/// i, in pair order) through apply_one, accumulating the clamp count.
ApplyResult apply_draws(const PairLaw& law, Configuration& config,
                        const std::vector<std::int64_t>& draws);

}  // namespace ppsim::kernels
