// Work-stealing task scheduler: the execution substrate under SweepRunner.
//
// The previous pool walked one shared atomic counter over a fixed work-item
// range, which cannot express *dynamic* work: adaptive trial stopping
// (--trials auto) submits new trial waves from inside completing tasks, and a
// grid mixing n=10^3 cells (microseconds) with n=10^11 collapsed cells
// (seconds) wants expensive cells started early and finished out of order
// instead of convoying behind the submission order. This scheduler provides:
//
//   * per-worker deques — the owner pushes and pops at the back (LIFO, cache
//     warm), thieves take from the front (FIFO, oldest first);
//   * steal-half — a thief migrates half of the victim's queue in one lock
//     acquisition, so imbalance decays geometrically instead of one task per
//     steal;
//   * idle backoff — a starved worker spins over randomized victims a bounded
//     number of rounds, then parks on a condition variable with a growing
//     timeout; every submission wakes parked workers.
//
// Tasks submitted from within a worker go to that worker's own deque (work
// stays local until stolen); external submissions round-robin across workers.
// wait_idle() blocks until every submitted task — including tasks submitted
// by running tasks — has finished.
//
// Determinism contract: the scheduler makes NO ordering promises. Callers
// that need schedule-independent results (SweepRunner's byte-identical JSON
// pin) must make every task write only its own pre-sized slot and must not
// branch on completion order. Tasks must not throw — wrap and capture.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <atomic>
#include <condition_variable>

namespace ppsim {

class TaskScheduler {
 public:
  using Task = std::function<void()>;

  /// Spawns `threads` workers (at least 1). Workers live until destruction.
  explicit TaskScheduler(unsigned threads);

  /// Joins the workers. Pending tasks are still executed (drains the queues
  /// before exiting), so destroying a scheduler implies wait_idle().
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// Enqueues a task. Callable from any thread, including from inside a
  /// running task (the adaptive-stopping controller submits follow-up waves
  /// this way); worker-local submissions stay on the submitting worker's
  /// deque until stolen.
  void submit(Task task);

  /// Blocks until all submitted tasks (and the tasks they submitted) have
  /// completed. Must be called from outside the worker pool.
  void wait_idle();

  unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Executed/steal counters summed over workers; read them only while the
  /// scheduler is idle (wait_idle() returned, no concurrent submit).
  struct Stats {
    std::uint64_t executed = 0;      ///< tasks run to completion
    std::uint64_t steals = 0;        ///< successful steal operations
    std::uint64_t stolen_tasks = 0;  ///< tasks migrated by those steals
  };
  Stats stats() const;

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<Task> queue;  ///< owner: back; thieves: front
    std::uint64_t executed = 0;
    std::uint64_t steals = 0;
    std::uint64_t stolen_tasks = 0;
    /// Cheap per-worker xorshift state for randomized victim selection.
    std::uint64_t victim_rng = 0;
  };

  void worker_loop(std::size_t self);
  bool try_pop_own(std::size_t self, Task& task);
  bool try_steal(std::size_t self, Task& task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::jthread> threads_;

  std::mutex park_mutex_;             ///< guards the two condition variables
  std::condition_variable work_cv_;   ///< starved workers park here
  std::condition_variable idle_cv_;   ///< wait_idle() parks here

  std::atomic<std::size_t> pending_{0};  ///< submitted but not yet finished
  std::atomic<std::size_t> round_robin_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace ppsim
