// Interaction graphs for the general population-protocol model.
//
// Angluin et al.'s original model (the paper's reference [7]) places the
// population on a graph: the scheduler may only select endpoints of an edge.
// The paper (like most of the literature) specializes to the clique — this
// module provides the general model so the clique assumption itself can be
// probed (bench_graph_topology: the lower-bound picture changes drastically
// on sparse topologies, e.g. USD on a cycle mixes in Θ(n) parallel time
// instead of polylog).
//
// Graphs are immutable after construction: a flat edge list for uniform
// edge sampling plus CSR-style adjacency for neighbourhood queries.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "ppsim/core/types.hpp"
#include "ppsim/util/rng.hpp"

namespace ppsim {

using NodeId = std::uint32_t;

class InteractionGraph {
 public:
  /// Builds from an explicit undirected edge list (no self-loops; parallel
  /// edges are allowed and weight the scheduler accordingly).
  InteractionGraph(NodeId num_nodes, std::vector<std::pair<NodeId, NodeId>> edges);

  NodeId num_nodes() const noexcept { return num_nodes_; }
  std::size_t num_edges() const noexcept { return edges_.size(); }

  const std::pair<NodeId, NodeId>& edge(std::size_t i) const;

  /// Uniformly random edge (the scheduler's draw).
  const std::pair<NodeId, NodeId>& sample_edge(Xoshiro256pp& rng) const noexcept {
    return edges_[static_cast<std::size_t>(rng.bounded(edges_.size()))];
  }

  std::size_t degree(NodeId v) const;
  /// Neighbors of v (with multiplicity for parallel edges).
  std::vector<NodeId> neighbors(NodeId v) const;

  /// BFS connectivity test — protocols can only stabilize globally on
  /// connected graphs.
  bool is_connected() const;

  // ---- generators ------------------------------------------------------
  static InteractionGraph complete(NodeId n);
  static InteractionGraph cycle(NodeId n);
  static InteractionGraph path(NodeId n);
  static InteractionGraph star(NodeId n);  ///< node 0 is the hub
  /// Erdős–Rényi G(n, p); NOT guaranteed connected — check is_connected().
  static InteractionGraph erdos_renyi(NodeId n, double p, Xoshiro256pp& rng);
  /// Random d-regular multigraph via the configuration model (self-loops
  /// rejected by resampling; parallel edges possible). Requires n·d even.
  static InteractionGraph random_regular(NodeId n, std::size_t d, Xoshiro256pp& rng);

 private:
  NodeId num_nodes_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
  // CSR adjacency built lazily at construction.
  std::vector<std::size_t> adj_offsets_;
  std::vector<NodeId> adj_;
};

}  // namespace ppsim
