// The uniform random scheduler on the clique.
//
// At each discrete time step the scheduler picks an ordered pair of two
// *distinct* agents uniformly at random (Section 1.1 of the paper: "two nodes
// are selected for interaction, chosen uniformly at random (without
// replacement)"). With anonymous agents a configuration is just a count
// vector, so pair selection reduces to sampling the initiator's state with
// probability count(s)/n and the responder's state from the remaining n-1
// agents. A Fenwick tree over the counts makes both draws O(log S).
#pragma once

#include <utility>

#include "ppsim/core/configuration.hpp"
#include "ppsim/core/types.hpp"
#include "ppsim/util/fenwick.hpp"
#include "ppsim/util/rng.hpp"

namespace ppsim {

class PairSampler {
 public:
  /// Builds the sampler over the configuration's counts.
  /// Requires a population of at least two agents.
  explicit PairSampler(const Configuration& config);

  /// Draws an ordered pair of states of two distinct uniformly random
  /// agents. Does not modify the tracked counts.
  std::pair<State, State> sample(Xoshiro256pp& rng) noexcept;

  /// Keeps the sampler in sync after an agent moves between states.
  void move_agent(State from, State to) noexcept {
    if (from == to) return;
    weights_.add(from, -1);
    weights_.add(to, +1);
  }

  Count population() const noexcept { return population_; }

 private:
  FenwickTree weights_;
  Count population_;
};

}  // namespace ppsim
