// Batched (round-based) simulation engine for population protocols.
//
// The sequential Simulator performs one interaction per step; USD-style
// dynamics stabilize only after Θ(n·polylog n) interactions, so paper-scale
// populations (n ≥ 10⁷) cost minutes of wall clock. This engine simulates a
// whole *round* of B = Θ(n) interactions in O(q²) work, where q = |Σ|:
//
//   1. Under the uniform scheduler each interaction picks an ordered pair of
//      distinct agents, i.e. ordered state pair (a, b) with probability
//      w(a,b) / n(n-1), where w(a,b) = c_a·c_b for a ≠ b and
//      w(a,a) = c_a·(c_a - 1) (the self-pair collision correction: an agent
//      never interacts with itself).
//   2. The number of interactions landing on each pair over B draws is
//      multinomial in these weights. We first split off the null pairs
//      (f leaves both states unchanged) with one binomial draw, then
//      distribute the remainder over the active non-null pairs with an exact
//      multinomial (sequential conditional binomials).
//   3. Each non-null pair's interactions are applied in bulk through the
//      TransitionTable: m interactions on (a, b) move m agents a → f(a,b).i
//      and m agents b → f(a,b).r.
//
// Exactness: with round size 1 the engine realises *exactly* the sequential
// Markov chain (one multinomial draw selects one pair with the correct
// probabilities). For larger rounds it is a τ-leaping approximation: all B
// pair draws in a round see the *start-of-round* configuration, so rates are
// stale by the O(B/n) fraction of agents that interact within the round.
// Bulk moves are clamped to the live counts (Configuration's invariants —
// non-negative counts, constant population — are preserved unconditionally);
// `clamped_interactions()` reports how often that correction fired, which is
// ~never for round divisors ≥ 8 (overdraw needs a many-sigma multinomial
// deviation). See README.md for guidance on choosing the round size.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "ppsim/core/configuration.hpp"
#include "ppsim/core/protocol.hpp"
#include "ppsim/core/simulator.hpp"
#include "ppsim/core/transition_table.hpp"
#include "ppsim/core/types.hpp"
#include "ppsim/kernels/pair_law.hpp"
#include "ppsim/kernels/round_kernel.hpp"
#include "ppsim/util/rng.hpp"

namespace ppsim {

class BatchedSimulator {
 public:
  struct Options {
    /// Round size is max(1, population / round_divisor) interactions.
    /// Larger divisors mean smaller rounds: less τ-leaping staleness, more
    /// rounds. A divisor ≥ population gives rounds of a single interaction,
    /// which reproduces the sequential chain exactly.
    Interactions round_divisor = 16;
    /// Round-sampling backend (kernels/round_kernel.hpp). kScalar is
    /// bit-identical to the historical draw sequence; kAvx2 throws at
    /// construction when the build or CPU lacks it.
    kernels::KernelKind kernel = kernels::KernelKind::kScalar;
  };

  /// The protocol must outlive the simulator. Requires ≥ 2 agents.
  BatchedSimulator(const Protocol& protocol, Configuration initial,
                   std::uint64_t seed, Options options);
  BatchedSimulator(const Protocol& protocol, Configuration initial,
                   std::uint64_t seed);

  const Configuration& configuration() const noexcept { return config_; }
  Interactions interactions() const noexcept { return interactions_; }
  double parallel_time() const noexcept {
    return ppsim::parallel_time(interactions_, config_.population());
  }
  Interactions round_size() const noexcept { return round_size_; }
  Interactions clamped_interactions() const noexcept { return clamped_; }

  /// Simulates one round of at most `max_interactions` interactions (the
  /// round size caps it). Returns the number of interactions simulated.
  Interactions step_round(Interactions max_interactions);

  /// Runs whole rounds until the protocol stabilizes or `max_interactions`
  /// total interactions (counted from construction) have been simulated.
  /// Same contract as Simulator::run_until_stable.
  RunOutcome run_until_stable(Interactions max_interactions);

  /// Runs until `predicate(config, interactions)` holds or the budget is
  /// exhausted. The predicate is checked once per *round* (coarser than the
  /// sequential engine's per-interaction check).
  RunOutcome run_until(
      const std::function<bool(const Configuration&, Interactions)>& predicate,
      Interactions max_interactions);

  /// True iff no applicable pair can change any state.
  bool is_stable() const { return table_.is_stable(config_); }

  /// If every agent's output is the same committed opinion, returns it.
  std::optional<Opinion> consensus_output() const {
    return ppsim::consensus_output(protocol_, config_);
  }

  /// Streams strided samples (and engine checkpoints) from inside the run
  /// loops, once per round. Not owned; nullptr detaches.
  void set_recorder(Recorder* recorder) noexcept { recorder_ = recorder; }

  /// Snapshot / restore of the full mutable state (counts, RNG, clocks);
  /// see Simulator::checkpoint_state for the contract. The pair law is a
  /// deterministic function of the counts, so restoring just bumps the
  /// counts generation (the single invalidation point).
  EngineCheckpoint checkpoint_state() const;
  void restore_checkpoint(const EngineCheckpoint& state);

  /// The round kernel this engine samples with (resolved from
  /// Options::kernel at construction).
  const kernels::RoundKernel& kernel() const noexcept { return *kernel_; }

 private:
  RunOutcome outcome() const;
  void observe() {
    if (recorder_ == nullptr) return;
    recorder_->maybe_sample(config_, interactions_);
    if (recorder_->checkpoint_due(interactions_)) {
      recorder_->record_checkpoint(checkpoint_state());
    }
  }

  const Protocol& protocol_;
  TransitionTable table_;
  Configuration config_;
  Xoshiro256pp rng_;
  Interactions round_size_;
  const kernels::RoundKernel* kernel_;
  Interactions interactions_ = 0;
  Interactions clamped_ = 0;
  Recorder* recorder_ = nullptr;

  // The active-pair law, rebuilt when law_generation_ falls behind
  // counts_generation_. Historically this engine re-enumerated the pairs
  // every round; the rebuild is RNG-free, so skipping it while no count has
  // moved leaves the draw sequence bit-identical and saves the O(S²) scan
  // on null-heavy stretches.
  kernels::PairLaw law_;
  std::uint64_t counts_generation_ = 1;
  std::uint64_t law_generation_ = 0;  ///< counts generation law_ was built at
  std::vector<std::int64_t> draws_;   ///< kernel scratch (multinomial output)
};

}  // namespace ppsim
