// One switchable front door for the generic simulation engines.
//
// The library now has four ways to run a Protocol: the sequential
// table-driven Simulator, the sequential virtual-dispatch Simulator, the
// round-based BatchedSimulator, and the counts-space CollapsedSimulator.
// Runner experiments, the benches and examples/ppsim_run select between
// them with one EngineKind value instead of hard-coding an engine type;
// Engine forwards the shared surface (run_until_stable / run_until /
// RunOutcome / observables) to whichever implementation the kind names.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <variant>

#include "ppsim/core/batched_simulator.hpp"
#include "ppsim/core/collapsed_simulator.hpp"
#include "ppsim/core/configuration.hpp"
#include "ppsim/core/protocol.hpp"
#include "ppsim/core/simulator.hpp"
#include "ppsim/core/types.hpp"

namespace ppsim {

enum class EngineKind {
  kSequential,         ///< Simulator, table-driven dispatch (exact)
  kSequentialVirtual,  ///< Simulator, Protocol-vtable dispatch (exact)
  kBatched,            ///< BatchedSimulator (τ-leaping rounds; see its header)
  kCollapsed,          ///< CollapsedSimulator (counts-space, adaptive τ rounds)
};

/// "sequential" | "virtual" | "batched" | "collapsed" (flag values for
/// benches/examples).
std::string to_string(EngineKind kind);

/// Inverse of to_string; nullopt for unknown names.
std::optional<EngineKind> parse_engine(const std::string& name);

class Engine {
 public:
  /// The protocol must outlive the engine. `batched_options` only applies to
  /// EngineKind::kBatched, `collapsed_options` only to EngineKind::kCollapsed.
  Engine(EngineKind kind, const Protocol& protocol, Configuration initial,
         std::uint64_t seed, BatchedSimulator::Options batched_options = {},
         CollapsedSimulator::Options collapsed_options = {});

  EngineKind kind() const noexcept { return kind_; }
  const Configuration& configuration() const;
  Interactions interactions() const;
  /// Attempted-but-unrealised interactions (τ-leaping overdraw); 0 for the
  /// exact sequential engines. See RunOutcome::clamped.
  Interactions clamped_interactions() const;
  double parallel_time() const;

  RunOutcome run_until_stable(Interactions max_interactions);
  /// Note: the batched engine checks the predicate once per round, the
  /// sequential engines once per interaction.
  RunOutcome run_until(
      const std::function<bool(const Configuration&, Interactions)>& predicate,
      Interactions max_interactions);
  bool is_stable() const;
  std::optional<Opinion> consensus_output() const;

  /// Streams strided samples (plus engine checkpoints when the recorder has
  /// a checkpoint stride) from inside the run loops: the sequential engines
  /// observe once per interaction, the round engines once per round. Not
  /// owned; nullptr detaches; the recorder must outlive the run calls.
  void set_recorder(Recorder* recorder);

  /// Full mutable engine state (counts, RNG, interaction clock) — the
  /// payload of the trajectory archive's checkpoint records.
  EngineCheckpoint checkpoint_state() const;

  /// Restores a checkpoint_state() snapshot taken from an engine of the
  /// same kind, protocol, and population; the run then continues on the
  /// exact draw sequence of the original.
  void restore_checkpoint(const EngineCheckpoint& state);

 private:
  EngineKind kind_;
  std::variant<Simulator, BatchedSimulator, CollapsedSimulator> impl_;
};

}  // namespace ppsim
