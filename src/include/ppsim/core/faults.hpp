// Fault injection for population protocols.
//
// The stabilization guarantees in the paper (and this library) are proved
// for a fault-free scheduler. Real deployments — sensor networks, chemical
// computers — see transient state corruption. This module injects faults
// into a UsdEngine run so the protocol's *self-stabilization* behaviour can
// be measured (bench_fault_tolerance):
//
//   * transient corruption: at rate `rate` per interaction, one uniformly
//     random agent's state is replaced by a uniformly random *different*
//     state (opinion or ⊥). This models bit-flips / sensing glitches. Every
//     fired Bernoulli moves exactly one agent, so the realised corruption
//     count concentrates around rate · interactions (faults_test pins the
//     target-state distribution with a chi-square test).
//
// Two facts worth measuring (and tested in faults_test.cpp):
//   * under any positive corruption rate, USD never formally stabilizes
//     (corruption can always revive an extinct opinion), but it holds a
//     large *near-consensus* majority once the fault-free dynamics would
//     have stabilized;
//   * after corruption stops, USD stabilizes from whatever configuration
//     the faults left behind — the dynamics themselves are self-stabilizing
//     for plurality (modulo which opinion wins).
//
// The injector owns the fault randomness (separate stream from the engine's
// scheduler, so fault patterns are reproducible independently of the
// trajectory randomness).
#pragma once

#include <cstdint>

#include "ppsim/core/collapsed_simulator.hpp"
#include "ppsim/core/types.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/rng.hpp"

namespace ppsim {

class UsdFaultInjector {
 public:
  /// `rate` = expected corruptions per interaction, in [0, 1].
  UsdFaultInjector(double rate, std::uint64_t seed);

  double rate() const noexcept { return rate_; }
  Interactions corruptions() const noexcept { return corruptions_; }

  /// Possibly corrupts one agent of the engine (call once per interaction).
  /// Returns true iff a corruption was injected, i.e. iff the Bernoulli(rate)
  /// draw fired — a fired draw always moves an agent.
  bool maybe_corrupt(UsdEngine& engine);

  /// Runs the engine for exactly `interactions` interactions with fault
  /// injection interleaved (the engine's stabilized() state is ignored —
  /// faults can always re-activate the dynamics).
  void run(UsdEngine& engine, Interactions interactions);

 private:
  double rate_;
  Xoshiro256pp rng_;
  Interactions corruptions_ = 0;
};

/// Counts-space sibling of UsdFaultInjector for EngineKind::kCollapsed:
/// the same per-interaction corruption law (Bernoulli(rate) per interaction;
/// victim uniform over agents; target uniform over the other S − 1 states),
/// applied in windows so the collapsed engine's τ-leaping rounds stay
/// batched. apply_window draws the number of corruptions in a `window` of
/// interactions from the exact Binomial(window, rate) and places each one
/// individually — so the realised corruption rate matches the agent-space
/// injector's (faults/scenario tests pin the parity).
class CountsFaultInjector {
 public:
  /// `rate` = expected corruptions per interaction, in [0, 1].
  CountsFaultInjector(double rate, std::uint64_t seed);

  double rate() const noexcept { return rate_; }
  Interactions corruptions() const noexcept { return corruptions_; }

  /// Injects Binomial(window, rate) corruptions into the simulator's counts
  /// (call once per completed round of `window` interactions). Returns the
  /// number injected.
  Interactions apply_window(CollapsedSimulator& sim, Interactions window);

  /// Runs the simulator for exactly `interactions` interactions, alternating
  /// engine rounds with corruption windows of the realised round length
  /// (stability is ignored — faults can re-activate the dynamics).
  void run(CollapsedSimulator& sim, Interactions interactions);

 private:
  double rate_;
  Xoshiro256pp rng_;
  Interactions corruptions_ = 0;
};

/// Fraction of agents on the most common opinion (undecided agents count
/// against it): the "near-consensus quality" metric used by the fault
/// benches. 1.0 = perfect consensus.
double consensus_quality(const UsdEngine& engine);

}  // namespace ppsim
