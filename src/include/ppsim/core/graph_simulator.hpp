// Exact sequential engine for population protocols on arbitrary interaction
// graphs (the general Angluin et al. model).
//
// On a graph, anonymous-agent count vectors no longer determine the dynamics
// — *which* agent holds a state matters — so this engine keeps a per-agent
// state array. Each step draws an edge uniformly at random, orients it
// uniformly (initiator/responder), and applies the compiled transition
// table. Cost O(1) per interaction; memory O(n + |E|).
//
// On the clique this process coincides with the counts-based Simulator
// (uniform edge = uniform unordered pair; uniform orientation = uniform
// ordered pair), which the tests exploit for cross-validation.
#pragma once

#include <optional>
#include <vector>

#include "ppsim/core/configuration.hpp"
#include "ppsim/core/graph.hpp"
#include "ppsim/core/protocol.hpp"
#include "ppsim/core/transition_table.hpp"
#include "ppsim/core/types.hpp"
#include "ppsim/util/rng.hpp"

namespace ppsim {

class GraphSimulator {
 public:
  /// `initial_states[v]` is node v's starting state. The protocol and graph
  /// must outlive the simulator.
  GraphSimulator(const Protocol& protocol, const InteractionGraph& graph,
                 std::vector<State> initial_states, std::uint64_t seed);

  const InteractionGraph& graph() const noexcept { return *graph_; }

  /// Swaps in a new interaction topology mid-run (time-varying graphs, see
  /// core/scenario.hpp). Agent states are untouched — only future edge draws
  /// use `g`. The new graph must cover the same node set and must outlive
  /// the simulator (or the next rebind).
  void rebind_graph(const InteractionGraph& g);
  Count population() const noexcept { return static_cast<Count>(states_.size()); }
  Interactions interactions() const noexcept { return interactions_; }
  double parallel_time() const noexcept {
    return ppsim::parallel_time(interactions_, population());
  }

  State state_of(NodeId v) const;
  const std::vector<State>& states() const noexcept { return states_; }

  /// Aggregate per-state counts (maintained incrementally; O(S) to copy).
  Configuration configuration() const { return Configuration(counts_); }
  Count count(State s) const;

  /// One interaction: uniform edge, uniform orientation, apply f.
  /// Returns true iff a state changed.
  bool step();

  /// True iff no edge can fire a non-null transition (exact stability on
  /// this topology; O(|E|)).
  bool is_stable() const;

  /// Runs until stable (checked every `stability_stride` interactions) or
  /// the budget is reached. Returns true iff stable.
  bool run_until_stable(Interactions max_interactions);

  /// If every node's output is the same committed opinion, returns it.
  std::optional<Opinion> consensus_output() const;

  void set_stability_check_stride(Interactions stride);

 private:
  const Protocol& protocol_;
  const InteractionGraph* graph_;  // never null; rebind_graph retargets it
  TransitionTable table_;
  std::vector<State> states_;
  std::vector<Count> counts_;
  Xoshiro256pp rng_;
  Interactions interactions_ = 0;
  Interactions stability_stride_;
};

}  // namespace ppsim
