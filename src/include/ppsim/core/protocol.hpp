// The abstract population protocol: a deterministic transition function
// f : Σ² → Σ² over ordered (initiator, responder) pairs, plus an output map
// γ : Σ → Γ ∪ {⊥}. This matches the formalisation in Section 1.1 of the
// paper (El-Hayek, Elsässer, Schmid, PODC'25).
//
// Implementations must be stateless value-like objects: all dynamics live in
// the Configuration, never in the protocol.
#pragma once

#include <optional>
#include <string>

#include "ppsim/core/types.hpp"

namespace ppsim {

class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Cardinality of the state space Σ. May grow with n (e.g. USD uses k+1).
  virtual std::size_t num_states() const = 0;

  /// The deterministic transition function applied to an ordered pair.
  /// Symmetric protocols simply ignore the ordering.
  virtual Transition apply(State initiator, State responder) const = 0;

  /// Output map γ. nullopt means the state has no committed output (e.g. the
  /// undecided state ⊥ in USD, or value 0 in quantized averaging).
  virtual std::optional<Opinion> output(State s) const = 0;

  /// Protocol name for logs, tables and test diagnostics.
  virtual std::string name() const = 0;

  /// Debug name of a state; default "s<i>".
  virtual std::string state_name(State s) const { return "s" + std::to_string(s); }

 protected:
  Protocol() = default;
  Protocol(const Protocol&) = default;
  Protocol& operator=(const Protocol&) = default;
};

}  // namespace ppsim
