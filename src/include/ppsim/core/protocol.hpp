// The abstract population protocol: a deterministic transition function
// f : Σ² → Σ² over ordered (initiator, responder) pairs, plus an output map
// γ : Σ → Γ ∪ {⊥}. This matches the formalisation in Section 1.1 of the
// paper (El-Hayek, Elsässer, Schmid, PODC'25).
//
// Implementations must be stateless value-like objects: all dynamics live in
// the Configuration, never in the protocol.
#pragma once

#include <optional>
#include <string>

#include "ppsim/core/configuration.hpp"
#include "ppsim/core/types.hpp"

namespace ppsim {

class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Cardinality of the state space Σ. May grow with n (e.g. USD uses k+1).
  virtual std::size_t num_states() const = 0;

  /// The deterministic transition function applied to an ordered pair.
  /// Symmetric protocols simply ignore the ordering.
  virtual Transition apply(State initiator, State responder) const = 0;

  /// Output map γ. nullopt means the state has no committed output (e.g. the
  /// undecided state ⊥ in USD, or value 0 in quantized averaging).
  virtual std::optional<Opinion> output(State s) const = 0;

  /// Protocol name for logs, tables and test diagnostics.
  virtual std::string name() const = 0;

  /// Debug name of a state; default "s<i>".
  virtual std::string state_name(State s) const { return "s" + std::to_string(s); }

 protected:
  Protocol() = default;
  Protocol(const Protocol&) = default;
  Protocol& operator=(const Protocol&) = default;
};

/// If every agent present in `config` outputs the same committed opinion
/// under γ, returns it; nullopt if any agent is uncommitted or outputs
/// disagree. Shared by every engine that reports a RunOutcome.
inline std::optional<Opinion> consensus_output(const Protocol& protocol,
                                               const Configuration& config) {
  std::optional<Opinion> agreed;
  const auto& counts = config.counts();
  for (State s = 0; s < config.num_states(); ++s) {
    if (counts[s] == 0) continue;
    const std::optional<Opinion> o = protocol.output(s);
    if (!o.has_value()) return std::nullopt;  // some agent is uncommitted
    if (agreed.has_value() && *agreed != *o) return std::nullopt;
    agreed = o;
  }
  return agreed;
}

}  // namespace ppsim
