// Counts-space ("collapsed") simulation engine for population protocols.
//
// The sequential Simulator materializes nothing but already works on counts;
// its cost is still one RNG draw per *interaction*, and the BatchedSimulator
// leaps in fixed rounds of n/divisor interactions regardless of how fast the
// configuration is actually moving. This engine simulates the pair-count
// Markov chain directly and is built for populations far beyond what either
// can reach (n = 10^9–10^11):
//
//   * State is only the S = |Σ| counts (a Configuration). No per-agent data
//     structure exists at any n.
//   * Single-interaction rounds sample the ordered interacting pair from the
//     *exact* pair distribution — P[(a, b)] = w(a,b) / n(n−1) with
//     w(a,b) = c_a·c_b for a ≠ b and w(a,a) = c_a·(c_a − 1) — through a
//     Walker/Vose AliasTable over the active (non-null) pairs that is
//     rebuilt lazily: null interactions leave the counts unchanged, so the
//     table survives them untouched and a rebuild costs O(S²) only when a
//     state count actually moved.
//   * Multi-interaction rounds batch a run of identical-distribution draws:
//     one binomial splits off the null interactions, one exact multinomial
//     distributes the rest over the active pairs (same two-stage law as the
//     batched engine), and the round length τ comes from an adaptive
//     controller instead of a fixed clamp heuristic.
//
// The τ controller (choose_tau) bounds per-round drift error two ways:
//   1. per-state: the *expected* number of interactions consuming state s in
//     the round is at most tau_epsilon · c_s, so no state's count drifts by
//     more than an ε fraction in expectation (and the overdraw clamp, kept
//     for safety, needs a many-sigma multinomial deviation to fire);
//   2. aggregate: τ ≤ tau_epsilon · n, bounding the total fraction of agents
//     whose states go stale within one round (this also covers inflow-driven
//     growth of states that start the round near zero, e.g. u(0) = 0 in the
//     paper's initial configurations).
// With tau_epsilon = 0.05 and USD-style dynamics τ stays near ε·n throughout
// a run — orders of magnitude fewer rounds than interactions — while
// shrinking automatically wherever a state is being drained quickly.
//
// Exactness: with max_round = 1 (or budget 1) every round is a single draw
// from the exact pair law, realising precisely the sequential Markov chain;
// tests/engine_equivalence_test.cpp pins this against the sequential
// engines. For larger rounds it is a τ-leaping approximation with the error
// knobs above. Counts and interaction totals use 64-bit saturating
// arithmetic (util/check sat_add/sat_mul); populations are capped at 2^53 so
// every count stays exactly representable in the double-precision weights.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "ppsim/core/configuration.hpp"
#include "ppsim/core/protocol.hpp"
#include "ppsim/core/simulator.hpp"
#include "ppsim/core/transition_table.hpp"
#include "ppsim/core/types.hpp"
#include "ppsim/kernels/pair_law.hpp"
#include "ppsim/kernels/round_kernel.hpp"
#include "ppsim/util/rng.hpp"

namespace ppsim {

class CollapsedSimulator {
 public:
  struct Options {
    /// Per-round drift tolerance ε of the τ controller (see file comment).
    /// Smaller is more accurate and slower; 0.05 keeps the stabilization-time
    /// distribution within the batched engine's measured KS envelope while
    /// adapting the round length to the configuration.
    double tau_epsilon = 0.05;
    /// Hard cap on the round length; 0 = no cap (the controller decides).
    /// max_round = 1 forces single-interaction rounds, i.e. the exact
    /// sequential chain.
    Interactions max_round = 0;
    /// Round-sampling backend (kernels/round_kernel.hpp). kScalar is
    /// bit-identical to the historical draw sequence; kAvx2 throws at
    /// construction when the build or CPU lacks it.
    kernels::KernelKind kernel = kernels::KernelKind::kScalar;
  };

  /// Largest supported population: counts and pair weights must stay exactly
  /// representable in a double (2^53).
  static constexpr Count kMaxPopulation = Count{1} << 53;

  /// The protocol must outlive the simulator. Requires 2 ≤ n ≤ 2^53.
  CollapsedSimulator(const Protocol& protocol, Configuration initial,
                     std::uint64_t seed, Options options);
  CollapsedSimulator(const Protocol& protocol, Configuration initial,
                     std::uint64_t seed);

  const Configuration& configuration() const noexcept { return config_; }
  Interactions interactions() const noexcept { return interactions_; }
  double parallel_time() const noexcept {
    return ppsim::parallel_time(interactions_, config_.population());
  }
  Interactions clamped_interactions() const noexcept { return clamped_; }
  /// Length the τ controller chose for the most recent round (0 before the
  /// first round). Exposed for tests and adaptivity diagnostics.
  Interactions last_round_size() const noexcept { return last_round_size_; }

  /// Simulates one round of at most `max_interactions` interactions; the τ
  /// controller picks the actual length. Returns the number simulated. If
  /// the configuration is stable the whole budget is consumed in one null
  /// round (nothing can change, so the leap is exact).
  Interactions step_round(Interactions max_interactions);

  /// Runs whole rounds until the protocol stabilizes or `max_interactions`
  /// total interactions (counted from construction) have been simulated.
  /// Same contract as Simulator::run_until_stable.
  RunOutcome run_until_stable(Interactions max_interactions);

  /// Runs until `predicate(config, interactions)` holds or the budget is
  /// exhausted. The predicate is checked once per *round* (round boundaries
  /// are ≤ tau_epsilon·n interactions apart, so per-round observables lag
  /// the exact chain by at most that much).
  RunOutcome run_until(
      const std::function<bool(const Configuration&, Interactions)>& predicate,
      Interactions max_interactions);

  /// True iff no applicable pair can change any state.
  bool is_stable() const { return table_.is_stable(config_); }

  /// If every agent's output is the same committed opinion, returns it.
  std::optional<Opinion> consensus_output() const {
    return ppsim::consensus_output(protocol_, config_);
  }

  /// Scenario hooks (core/scenario.hpp, core/faults.hpp): counts-space
  /// corruption and churn between rounds. None of them consume interactions;
  /// all funnel through the single counts-invalidation point, so the pair
  /// law rebuilds before the next round. corrupt_agents moves `m` agents
  /// from → to; add_agents/remove_agents grow/shrink the population (bounded
  /// to [2, kMaxPopulation]).
  void corrupt_agents(State from, State to, Count m);
  void add_agents(State s, Count m);
  void remove_agents(State s, Count m);

  /// Streams strided samples (and engine checkpoints) from inside the run
  /// loops, once per round. Not owned; nullptr detaches.
  void set_recorder(Recorder* recorder) noexcept { recorder_ = recorder; }

  /// Snapshot / restore of the full mutable state. The pair law and its
  /// alias table are deterministic functions of the counts, so restoring
  /// just bumps the counts generation (the single invalidation point); the
  /// resumed run then makes exactly the draws the original would have made.
  EngineCheckpoint checkpoint_state() const;
  void restore_checkpoint(const EngineCheckpoint& state);

  /// The round kernel this engine samples with (resolved from
  /// Options::kernel at construction).
  const kernels::RoundKernel& kernel() const noexcept { return *kernel_; }

  /// Lockstep staging API (the sweep runner's whole-cell kernel launches —
  /// see SweepRunner::run's lockstep overload). stage_round picks the round
  /// length and either handles it locally (stable leap, exact single-draw
  /// path) returning false, or stages a kernel task over this engine's law,
  /// RNG and scratch and returns true; the caller then runs the kernel
  /// (possibly batched with other engines' tasks) and calls commit_round.
  /// step_round(b) ≡ stage_round(b, t) && (kernel().advance(t),
  /// commit_round(t)). Requires max_interactions > 0.
  bool stage_round(Interactions max_interactions, kernels::RoundTask& task);
  void commit_round(const kernels::RoundTask& task);

 private:
  RunOutcome outcome() const;
  void observe() {
    if (recorder_ == nullptr) return;
    recorder_->maybe_sample(config_, interactions_);
    if (recorder_->checkpoint_due(interactions_)) {
      recorder_->record_checkpoint(checkpoint_state());
    }
  }
  /// Any count mutation funnels through this single invalidation point:
  /// the pair law (and transitively its alias table) rebuilds iff the
  /// counts generation moved since it was last built.
  void touch_counts() noexcept { ++counts_generation_; }
  /// Rebuilds the pair law if a count changed since the last build. O(S²).
  void refresh_law();
  /// Adaptive round length: min over the drift bounds, clamped to
  /// [1, budget] and options_.max_round. Requires a fresh law.
  Interactions choose_tau(Interactions budget) const;

  const Protocol& protocol_;
  TransitionTable table_;
  Configuration config_;
  Xoshiro256pp rng_;
  Options options_;
  const kernels::RoundKernel* kernel_;
  Interactions interactions_ = 0;
  Interactions clamped_ = 0;
  Interactions last_round_size_ = 0;
  Recorder* recorder_ = nullptr;

  // The active-pair law, rebuilt when law_generation_ falls behind
  // counts_generation_ (kernels/pair_law.hpp owns the enumeration and the
  // lazily built alias table).
  kernels::PairLaw law_;
  std::uint64_t counts_generation_ = 1;
  std::uint64_t law_generation_ = 0;  ///< counts generation law_ was built at
  std::vector<std::int64_t> draws_;   ///< kernel scratch (multinomial output)
};

}  // namespace ppsim
