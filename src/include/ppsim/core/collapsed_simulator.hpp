// Counts-space ("collapsed") simulation engine for population protocols.
//
// The sequential Simulator materializes nothing but already works on counts;
// its cost is still one RNG draw per *interaction*, and the BatchedSimulator
// leaps in fixed rounds of n/divisor interactions regardless of how fast the
// configuration is actually moving. This engine simulates the pair-count
// Markov chain directly and is built for populations far beyond what either
// can reach (n = 10^9–10^11):
//
//   * State is only the S = |Σ| counts (a Configuration). No per-agent data
//     structure exists at any n.
//   * Single-interaction rounds sample the ordered interacting pair from the
//     *exact* pair distribution — P[(a, b)] = w(a,b) / n(n−1) with
//     w(a,b) = c_a·c_b for a ≠ b and w(a,a) = c_a·(c_a − 1) — through a
//     Walker/Vose AliasTable over the active (non-null) pairs that is
//     rebuilt lazily: null interactions leave the counts unchanged, so the
//     table survives them untouched and a rebuild costs O(S²) only when a
//     state count actually moved.
//   * Multi-interaction rounds batch a run of identical-distribution draws:
//     one binomial splits off the null interactions, one exact multinomial
//     distributes the rest over the active pairs (same two-stage law as the
//     batched engine), and the round length τ comes from an adaptive
//     controller instead of a fixed clamp heuristic.
//
// The τ controller (choose_tau) bounds per-round drift error two ways:
//   1. per-state: the *expected* number of interactions consuming state s in
//     the round is at most tau_epsilon · c_s, so no state's count drifts by
//     more than an ε fraction in expectation (and the overdraw clamp, kept
//     for safety, needs a many-sigma multinomial deviation to fire);
//   2. aggregate: τ ≤ tau_epsilon · n, bounding the total fraction of agents
//     whose states go stale within one round (this also covers inflow-driven
//     growth of states that start the round near zero, e.g. u(0) = 0 in the
//     paper's initial configurations).
// With tau_epsilon = 0.05 and USD-style dynamics τ stays near ε·n throughout
// a run — orders of magnitude fewer rounds than interactions — while
// shrinking automatically wherever a state is being drained quickly.
//
// Exactness: with max_round = 1 (or budget 1) every round is a single draw
// from the exact pair law, realising precisely the sequential Markov chain;
// tests/engine_equivalence_test.cpp pins this against the sequential
// engines. For larger rounds it is a τ-leaping approximation with the error
// knobs above. Counts and interaction totals use 64-bit saturating
// arithmetic (util/check sat_add/sat_mul); populations are capped at 2^53 so
// every count stays exactly representable in the double-precision weights.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "ppsim/core/configuration.hpp"
#include "ppsim/core/protocol.hpp"
#include "ppsim/core/simulator.hpp"
#include "ppsim/core/transition_table.hpp"
#include "ppsim/core/types.hpp"
#include "ppsim/util/alias_table.hpp"
#include "ppsim/util/rng.hpp"

namespace ppsim {

class CollapsedSimulator {
 public:
  struct Options {
    /// Per-round drift tolerance ε of the τ controller (see file comment).
    /// Smaller is more accurate and slower; 0.05 keeps the stabilization-time
    /// distribution within the batched engine's measured KS envelope while
    /// adapting the round length to the configuration.
    double tau_epsilon = 0.05;
    /// Hard cap on the round length; 0 = no cap (the controller decides).
    /// max_round = 1 forces single-interaction rounds, i.e. the exact
    /// sequential chain.
    Interactions max_round = 0;
  };

  /// Largest supported population: counts and pair weights must stay exactly
  /// representable in a double (2^53).
  static constexpr Count kMaxPopulation = Count{1} << 53;

  /// The protocol must outlive the simulator. Requires 2 ≤ n ≤ 2^53.
  CollapsedSimulator(const Protocol& protocol, Configuration initial,
                     std::uint64_t seed, Options options);
  CollapsedSimulator(const Protocol& protocol, Configuration initial,
                     std::uint64_t seed);

  const Configuration& configuration() const noexcept { return config_; }
  Interactions interactions() const noexcept { return interactions_; }
  double parallel_time() const noexcept {
    return ppsim::parallel_time(interactions_, config_.population());
  }
  Interactions clamped_interactions() const noexcept { return clamped_; }
  /// Length the τ controller chose for the most recent round (0 before the
  /// first round). Exposed for tests and adaptivity diagnostics.
  Interactions last_round_size() const noexcept { return last_round_size_; }

  /// Simulates one round of at most `max_interactions` interactions; the τ
  /// controller picks the actual length. Returns the number simulated. If
  /// the configuration is stable the whole budget is consumed in one null
  /// round (nothing can change, so the leap is exact).
  Interactions step_round(Interactions max_interactions);

  /// Runs whole rounds until the protocol stabilizes or `max_interactions`
  /// total interactions (counted from construction) have been simulated.
  /// Same contract as Simulator::run_until_stable.
  RunOutcome run_until_stable(Interactions max_interactions);

  /// Runs until `predicate(config, interactions)` holds or the budget is
  /// exhausted. The predicate is checked once per *round* (round boundaries
  /// are ≤ tau_epsilon·n interactions apart, so per-round observables lag
  /// the exact chain by at most that much).
  RunOutcome run_until(
      const std::function<bool(const Configuration&, Interactions)>& predicate,
      Interactions max_interactions);

  /// True iff no applicable pair can change any state.
  bool is_stable() const { return table_.is_stable(config_); }

  /// If every agent's output is the same committed opinion, returns it.
  std::optional<Opinion> consensus_output() const {
    return ppsim::consensus_output(protocol_, config_);
  }

  /// Streams strided samples (and engine checkpoints) from inside the run
  /// loops, once per round. Not owned; nullptr detaches.
  void set_recorder(Recorder* recorder) noexcept { recorder_ = recorder; }

  /// Snapshot / restore of the full mutable state. The pair caches and the
  /// alias table are deterministic functions of the counts, so restoring
  /// just marks them dirty; the resumed run then makes exactly the draws
  /// the original would have made.
  EngineCheckpoint checkpoint_state() const;
  void restore_checkpoint(const EngineCheckpoint& state);

 private:
  RunOutcome outcome() const;
  void observe() {
    if (recorder_ == nullptr) return;
    recorder_->maybe_sample(config_, interactions_);
    if (recorder_->checkpoint_due(interactions_)) {
      recorder_->record_checkpoint(checkpoint_state());
    }
  }
  /// Rebuilds the active-pair enumeration (weights, transitions, per-state
  /// consumption) if a count changed since the last build. O(S²).
  void refresh_pairs();
  /// Adaptive round length: min over the drift bounds, clamped to
  /// [1, budget] and options_.max_round. Requires fresh pair data.
  Interactions choose_tau(Interactions budget) const;
  /// Applies m interactions of active pair i with the batched engine's
  /// overdraw clamp; marks the pair data dirty if any count moved.
  void apply_bulk(std::size_t i, Interactions m);

  const Protocol& protocol_;
  TransitionTable table_;
  Configuration config_;
  Xoshiro256pp rng_;
  Options options_;
  Interactions interactions_ = 0;
  Interactions clamped_ = 0;
  Interactions last_round_size_ = 0;
  Recorder* recorder_ = nullptr;

  // Active-pair data, valid while !pairs_dirty_ (counts unchanged).
  bool pairs_dirty_ = true;
  double total_weight_ = 0.0;   // n·(n−1), all ordered pairs
  double active_weight_ = 0.0;  // Σ w over non-null pairs
  std::vector<State> pair_a_;
  std::vector<State> pair_b_;
  std::vector<Transition> pair_t_;
  std::vector<double> pair_weight_;
  std::vector<double> consumption_;  // per-state Σ w_i · (agents of s removed)
  AliasTable alias_;                 // over pair_weight_; built on demand
  bool alias_built_ = false;
};

}  // namespace ppsim
