// Exact sequential-interaction engine for arbitrary population protocols.
//
// Two dispatch modes share one implementation:
//   * table-driven (default) — f is compiled into a dense TransitionTable;
//     best for small-to-moderate state spaces (USD, 4-state majority, ...);
//   * virtual — f is invoked through the Protocol vtable; needed for state
//     spaces too large to tabulate (e.g. quantized averaging with m ≈ n).
//
// The engine owns the configuration, the pair sampler and the RNG, so a
// Simulator is a self-contained, restartable experiment. Stabilization
// checks run every `stability_check_stride` interactions (exactness is not
// affected: stability is absorbing, so late detection only costs time).
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "ppsim/core/configuration.hpp"
#include "ppsim/core/protocol.hpp"
#include "ppsim/core/recorder.hpp"
#include "ppsim/core/scheduler.hpp"
#include "ppsim/core/transition_table.hpp"
#include "ppsim/core/types.hpp"
#include "ppsim/util/rng.hpp"

namespace ppsim {

/// Outcome of a bounded run.
struct RunOutcome {
  bool stabilized = false;
  Interactions interactions = 0;             ///< attempted interactions so far
  /// Interactions the engine attempted but could not realise (τ-leaping
  /// overdraw clamped to live counts). Always 0 for the exact sequential
  /// engines; for the batched engine, `interactions - clamped` is the
  /// effective count — report both so throughput numbers are honest.
  Interactions clamped = 0;
  std::optional<Opinion> consensus;          ///< output all agents agree on, if any
};

class Simulator {
 public:
  enum class Engine { kTable, kVirtual };

  /// The protocol must outlive the simulator.
  Simulator(const Protocol& protocol, Configuration initial, std::uint64_t seed,
            Engine engine = Engine::kTable);

  const Configuration& configuration() const noexcept { return config_; }
  Interactions interactions() const noexcept { return interactions_; }
  double parallel_time() const noexcept {
    return ppsim::parallel_time(interactions_, config_.population());
  }

  /// Performs exactly one interaction. Returns true iff a state changed.
  bool step();

  /// Runs until the protocol stabilizes or `max_interactions` total
  /// interactions have been performed (counted from construction).
  RunOutcome run_until_stable(Interactions max_interactions);

  /// Runs until `predicate(config, interactions)` is true (checked after
  /// every interaction), the protocol stabilizes (checked every
  /// `stability_check_stride` interactions — once stable the configuration
  /// is frozen, so an unfired configuration predicate never fires), or the
  /// budget is exhausted. Returns the outcome; `stabilized` reflects
  /// protocol stability at exit.
  RunOutcome run_until(
      const std::function<bool(const Configuration&, Interactions)>& predicate,
      Interactions max_interactions);

  /// True iff no applicable pair can change any state.
  bool is_stable() const;

  /// If every agent's output is the same committed opinion, returns it.
  std::optional<Opinion> consensus_output() const;

  /// How often run_until_stable re-checks stability (default: population
  /// size, i.e. once per parallel time unit).
  void set_stability_check_stride(Interactions stride);

  /// Streams strided samples (and, when the recorder has a checkpoint
  /// stride, full engine snapshots) from inside the run loops. Not owned;
  /// nullptr detaches. The recorder must outlive the run calls.
  void set_recorder(Recorder* recorder) noexcept { recorder_ = recorder; }

  /// Everything needed to continue this run in another process: counts,
  /// RNG state, interaction clock (the PairSampler is rebuilt from counts).
  EngineCheckpoint checkpoint_state() const;

  /// Restores a state captured by checkpoint_state() on an engine built
  /// with the same protocol and state-space shape. After restoring, the
  /// run continues on exactly the sequence of draws the original would
  /// have made.
  void restore_checkpoint(const EngineCheckpoint& state);

 private:
  void observe() {
    if (recorder_ == nullptr) return;
    recorder_->maybe_sample(config_, interactions_);
    if (recorder_->checkpoint_due(interactions_)) {
      recorder_->record_checkpoint(checkpoint_state());
    }
  }

  const Protocol& protocol_;
  std::optional<TransitionTable> table_;  // engaged in kTable mode
  Configuration config_;
  PairSampler sampler_;
  Xoshiro256pp rng_;
  Interactions interactions_ = 0;
  Interactions stability_stride_;
  Recorder* recorder_ = nullptr;
};

}  // namespace ppsim
