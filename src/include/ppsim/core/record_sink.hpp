// Destinations for recorded simulation data.
//
// The Recorder (core/recorder.hpp) decides *when* to observe a run — strided
// samples, periodic engine checkpoints, a final record. RecordSink is the
// *where*: an interface every destination implements, so the same run can
// stream to an in-memory series (MemorySink, the historical behavior), an
// on-disk trajectory archive (io/trajectory.hpp TrajectorySink), or both at
// once. Sinks receive fully evaluated channel values — projections run once
// per sample regardless of fan-out.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "ppsim/core/types.hpp"

namespace ppsim {

/// A recorded multi-channel time series.
struct TimeSeries {
  std::vector<std::string> channel_names;
  std::vector<double> parallel_time;            ///< sample times (interactions / n)
  std::vector<std::vector<double>> channels;    ///< channels[c][sample]

  std::size_t num_samples() const noexcept { return parallel_time.size(); }

  /// Writes "time <tab> ch0 <tab> ch1 ..." rows with a header line.
  void write_tsv(std::ostream& os) const;
};

/// Full mutable state of a simulation engine at one instant — everything a
/// later process needs to continue the run bit-for-bit: the counts vector
/// (the PairSampler and the collapsed engine's pair caches are deterministic
/// functions of it), the 256-bit RNG state, and the interaction clock.
struct EngineCheckpoint {
  std::vector<Count> counts;
  std::array<std::uint64_t, 4> rng_state{};
  Interactions interactions = 0;
  Interactions clamped = 0;            ///< τ-leaping overdraw so far
  /// Interaction count of the most recent sample (-1 if none yet). Filled in
  /// by the Recorder so a resumed run can dedup its final forced sample
  /// exactly like the uninterrupted run would.
  Interactions last_sample = -1;
};

/// Terminal summary delivered to every sink exactly once, at the end of a
/// recorded run.
struct RecordFinish {
  bool stabilized = false;
  Interactions interactions = 0;
  Interactions clamped = 0;
  std::optional<Opinion> consensus;
};

/// Channel names become TSV column headers and archive metadata; embedded
/// separators or newlines would corrupt both. Throws CheckFailure on an
/// empty name or one containing '\t', '\n' or '\r'.
void validate_channel_name(const std::string& name);

class RecordSink {
 public:
  virtual ~RecordSink() = default;

  /// Called once, before the first sample, with the final channel list.
  virtual void open(const std::vector<std::string>& channel_names) {
    (void)channel_names;
  }

  /// One strided observation: `values[c]` is channel c evaluated at
  /// `interactions` attempted interactions (`time` = interactions / n).
  virtual void sample(Interactions interactions, double time,
                      const std::vector<double>& values) = 0;

  /// Periodic full-engine snapshot (only emitted when a checkpoint stride is
  /// configured on the Recorder). Default: ignore.
  virtual void checkpoint(const EngineCheckpoint& state) { (void)state; }

  /// End of run. Default: ignore.
  virtual void finish(const RecordFinish& fin) { (void)fin; }
};

/// The drop-in equivalent of the pre-sink Recorder: accumulates every sample
/// into a TimeSeries in memory.
class MemorySink final : public RecordSink {
 public:
  void open(const std::vector<std::string>& channel_names) override;
  void sample(Interactions interactions, double time,
              const std::vector<double>& values) override;

  const TimeSeries& series() const noexcept { return series_; }
  TimeSeries take_series() && { return std::move(series_); }

 private:
  TimeSeries series_;
};

}  // namespace ppsim
