// Multi-trial Monte-Carlo driver.
//
// Experiments in this library are functions (seed, trial_index) -> result.
// The runner derives independent per-trial seeds from one user-facing base
// seed (SplitMix64 stream), optionally fans trials out over a thread pool,
// and aggregates outcomes. Results are bitwise independent of the thread
// count: trial i always receives the same seed.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "ppsim/core/engine.hpp"
#include "ppsim/core/types.hpp"
#include "ppsim/util/stats.hpp"

namespace ppsim {

/// Outcome of one Monte-Carlo trial of a consensus experiment.
struct TrialResult {
  bool stabilized = false;
  Interactions interactions = 0;   ///< attempted interactions
  Interactions clamped = 0;        ///< τ-leaping overdraw (see RunOutcome)
  double parallel_time = 0.0;
  std::optional<Opinion> winner;
};

/// Runs `engine` to stabilization (or budget) and packages the outcome —
/// the glue letting any EngineKind be driven from a sweep cell or a legacy
/// trial loop with identical accounting (attempted vs clamped interactions).
TrialResult run_engine_trial(Engine& engine, Interactions max_interactions);

/// Same, streaming through `recorder` (attached for the duration of the run,
/// finalized with the outcome afterwards). With recorder == nullptr this is
/// exactly the overload above, so benches can thread an optional archive
/// sink through one call site.
TrialResult run_engine_trial(Engine& engine, Interactions max_interactions,
                             Recorder* recorder);

using TrialFn = std::function<TrialResult(std::uint64_t seed, std::size_t trial)>;

/// Runs `num_trials` trials. `num_threads == 0` means use the hardware
/// concurrency (capped by the trial count).
std::vector<TrialResult> run_trials(const TrialFn& trial_fn, std::size_t num_trials,
                                    std::uint64_t base_seed, unsigned num_threads = 0);

/// Deterministic per-trial seed derivation (exposed for tests and for
/// reproducing a single trial from a recorded experiment).
std::uint64_t trial_seed(std::uint64_t base_seed, std::size_t trial);

/// Aggregate view over a batch of trials.
struct TrialAggregate {
  std::size_t trials = 0;
  std::size_t stabilized = 0;
  RunningStats parallel_time;                 ///< over stabilized trials only
  std::map<Opinion, std::size_t> wins;        ///< winner histogram
  std::size_t no_winner = 0;                  ///< stabilized without consensus

  double stabilized_fraction() const;
  /// Fraction of *all* trials won by `opinion`.
  double win_rate(Opinion opinion) const;
};

TrialAggregate aggregate(const std::vector<TrialResult>& results);

}  // namespace ppsim
