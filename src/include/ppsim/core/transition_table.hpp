// Dense S×S transition table compiled from a Protocol.
//
// The generic simulation engine is table-driven: compiling f once removes
// virtual dispatch from the per-interaction hot path and lets us precompute
// which ordered pairs are "null" (leave both states unchanged). Null-pair
// knowledge is what makes exact stabilization detection cheap: a
// configuration is stable iff every pair of present states is null.
#pragma once

#include <memory>
#include <vector>

#include "ppsim/core/configuration.hpp"
#include "ppsim/core/protocol.hpp"
#include "ppsim/core/types.hpp"

namespace ppsim {

class TransitionTable {
 public:
  /// Compiles the protocol's transition function. Cost O(S²) in time and
  /// memory; callers with huge state spaces should use the virtual-dispatch
  /// engine instead (see Simulator::Engine).
  explicit TransitionTable(const Protocol& protocol);

  std::size_t num_states() const noexcept { return num_states_; }

  /// f(a, b) for the ordered pair.
  Transition apply(State a, State b) const noexcept {
    return table_[index(a, b)];
  }

  /// True iff f(a, b) leaves both participants unchanged.
  bool is_null(State a, State b) const noexcept { return null_[index(a, b)]; }

  /// True iff no applicable pair in `config` can change any state, i.e. the
  /// configuration is stable in the sense of the paper ("the output of the
  /// system does not change anymore"). O(S²) worst case, but skips states
  /// with zero count.
  bool is_stable(const Configuration& config) const;

 private:
  std::size_t index(State a, State b) const noexcept {
    return static_cast<std::size_t>(a) * num_states_ + b;
  }

  std::size_t num_states_;
  std::vector<Transition> table_;
  std::vector<char> null_;  // char, not bool: avoids bitset proxy on hot path
};

}  // namespace ppsim
