// Shared vocabulary types for the population protocol framework.
//
// Conventions used across the library:
//   * `State`  — index into a protocol's state space Σ = {0, ..., S-1}.
//   * `Opinion` — index into the output alphabet Γ = {0, ..., k-1}.
//   * `Count`  — signed 64-bit agent counts (signed so that intermediate
//     arithmetic like drift deltas never hits unsigned wraparound; see Core
//     Guidelines ES.106).
//   * `Interactions` — number of scheduler steps; parallel time is
//     interactions / n, as in the paper.
#pragma once

#include <cstdint>

namespace ppsim {

using State = std::uint32_t;
using Opinion = std::uint32_t;
using Count = std::int64_t;
using Interactions = std::int64_t;

/// Result of applying the transition function f : Σ² → Σ² to an ordered pair
/// (initiator, responder).
struct Transition {
  State initiator;
  State responder;

  friend bool operator==(const Transition&, const Transition&) = default;
};

/// Converts interactions to parallel time for a population of size n.
constexpr double parallel_time(Interactions interactions, Count n) {
  return static_cast<double>(interactions) / static_cast<double>(n);
}

}  // namespace ppsim
