// Synchronous Gossip (PULL) communication model.
//
// Section 1.2 of the paper contrasts the population protocol model with the
// Gossip model: "in each discrete time step, every node randomly chooses
// another node for interaction" and updates its own state once per round.
// Becchetti et al. (SODA'15) analyzed USD in this model via the
// monochromatic distance; Amir et al. note the two models "exhibit
// significant qualitative differences". This engine lets us measure those
// differences directly (bench_gossip_compare).
//
// Exactness without per-agent arrays: in a PULL round every node samples a
// partner independently and uniformly among the other n-1 nodes, then
// applies `update(own, seen)`. Conditioned on the current configuration, the
// numbers of class-s nodes observing each class s' are jointly multinomial
// with weights count(s') - [s'=s], so a round can be sampled exactly with
// one multinomial draw per occupied class.
#pragma once

#include <cstdint>
#include <string>

#include "ppsim/core/configuration.hpp"
#include "ppsim/core/types.hpp"
#include "ppsim/util/rng.hpp"

namespace ppsim {

/// One-way (PULL) state update rule: the chooser moves to update(own, seen);
/// the observed partner is unaffected.
class GossipRule {
 public:
  virtual ~GossipRule() = default;
  virtual std::size_t num_states() const = 0;
  virtual State update(State own, State seen) const = 0;
  virtual std::string name() const = 0;

 protected:
  GossipRule() = default;
  GossipRule(const GossipRule&) = default;
  GossipRule& operator=(const GossipRule&) = default;
};

struct GossipOutcome {
  bool stabilized = false;
  std::int64_t rounds = 0;
};

class GossipEngine {
 public:
  /// The rule must outlive the engine. Needs at least two agents.
  GossipEngine(const GossipRule& rule, Configuration initial, std::uint64_t seed);

  const Configuration& configuration() const noexcept { return config_; }
  std::int64_t rounds() const noexcept { return rounds_; }

  /// Executes one exact synchronous round.
  void step_round();

  /// True iff no node can change state in any future round (every
  /// observable (own, seen) pair maps to own).
  bool is_stable() const;

  /// Runs until stable or `max_rounds` rounds have been executed in total.
  GossipOutcome run_until_stable(std::int64_t max_rounds);

 private:
  const GossipRule& rule_;
  Configuration config_;
  Xoshiro256pp rng_;
  std::int64_t rounds_ = 0;
};

}  // namespace ppsim
