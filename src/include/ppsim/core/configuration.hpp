// A population configuration: how many of the n (anonymous) agents are in
// each protocol state. The class maintains two invariants established at
// construction and preserved by every mutator:
//   1. every per-state count is non-negative;
//   2. the total population size only changes through the explicit churn
//      mutators add_agents/remove_agents — move_agent/move_agents preserve it
//      exactly.
#pragma once

#include <string>
#include <vector>

#include "ppsim/core/types.hpp"

namespace ppsim {

class Configuration {
 public:
  /// Builds a configuration from per-state counts (size = |Σ|).
  /// Throws CheckFailure on negative counts or an empty state space.
  explicit Configuration(std::vector<Count> counts);

  /// All agents in a single state.
  static Configuration monochromatic(std::size_t num_states, State s, Count n);

  std::size_t num_states() const noexcept { return counts_.size(); }
  Count population() const noexcept { return population_; }

  Count count(State s) const;
  const std::vector<Count>& counts() const noexcept { return counts_; }

  /// Moves one agent from state `from` to state `to`.
  /// Throws CheckFailure if no agent is in `from`.
  void move_agent(State from, State to);

  /// Moves `m` agents at once (bulk variant used by the Gossip engine).
  void move_agents(State from, State to, Count m);

  /// Population churn (core/scenario.hpp): `m` agents join in state `s` /
  /// leave from state `s`, growing or shrinking the population. remove_agents
  /// throws CheckFailure when fewer than `m` agents occupy `s`.
  void add_agents(State s, Count m);
  void remove_agents(State s, Count m);

  /// True iff all agents share one state.
  bool is_monochromatic() const noexcept;

  /// State with the largest count (smallest index wins ties).
  State argmax() const noexcept;

  /// Number of states with a nonzero count.
  std::size_t support_size() const noexcept;

  /// Human-readable rendering "[c0, c1, ...]" for logs and test failures.
  std::string to_string() const;

  friend bool operator==(const Configuration&, const Configuration&) = default;

 private:
  std::vector<Count> counts_;
  Count population_ = 0;
};

}  // namespace ppsim
