// Time-series recording for simulation runs.
//
// A Recorder owns a set of named channels, each a projection of the current
// configuration (plus the interaction counter) to a double. Engines call
// `maybe_sample` after every interaction; the recorder keeps one sample per
// `stride` interactions, which is how the Figure 1 benches obtain the series
// the paper plots without paying per-step overhead.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ppsim/core/configuration.hpp"
#include "ppsim/core/types.hpp"

namespace ppsim {

/// A recorded multi-channel time series.
struct TimeSeries {
  std::vector<std::string> channel_names;
  std::vector<double> parallel_time;            ///< sample times (interactions / n)
  std::vector<std::vector<double>> channels;    ///< channels[c][sample]

  std::size_t num_samples() const noexcept { return parallel_time.size(); }

  /// Writes "time <tab> ch0 <tab> ch1 ..." rows with a header line.
  void write_tsv(std::ostream& os) const;
};

class Recorder {
 public:
  using Projection = std::function<double(const Configuration&, Interactions)>;

  /// Samples once every `stride` interactions (the sample at interaction 0
  /// is always taken).
  explicit Recorder(Interactions stride);

  void add_channel(std::string name, Projection projection);

  /// Called by engines after each interaction; cheap when not sampling.
  void maybe_sample(const Configuration& config, Interactions interactions) {
    if (interactions >= next_sample_) sample(config, interactions);
  }

  /// Forces a sample now (used to capture the final configuration).
  void sample(const Configuration& config, Interactions interactions);

  TimeSeries take_series() &&;
  const TimeSeries& series() const noexcept { return series_; }

 private:
  Interactions stride_;
  Interactions next_sample_ = 0;
  std::vector<Projection> projections_;
  TimeSeries series_;
};

}  // namespace ppsim
