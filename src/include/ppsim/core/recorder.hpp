// Time-series recording for simulation runs.
//
// A Recorder owns a set of named channels, each a projection of the current
// configuration (plus the interaction counter) to a double. Engines call
// `maybe_sample` after every interaction (or round); the recorder keeps one
// sample per `stride` interactions — the sampling lattice 0, stride,
// 2·stride, … — which is how the Figure 1 benches obtain the series the
// paper plots without paying per-step overhead.
//
// The Recorder is the *when* of recording; RecordSink (core/record_sink.hpp)
// is the *where*. By default samples accumulate in a built-in MemorySink
// (the historical in-memory TimeSeries, still reachable via series() /
// take_series()); additional sinks — e.g. the on-disk trajectory archive of
// io/trajectory.hpp — fan out from the same projection evaluations. With a
// checkpoint stride configured, engines driven through set_recorder also
// deliver periodic EngineCheckpoint snapshots, which is what makes huge
// collapsed runs resumable.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ppsim/core/configuration.hpp"
#include "ppsim/core/record_sink.hpp"
#include "ppsim/core/types.hpp"

namespace ppsim {

class Recorder {
 public:
  using Projection = std::function<double(const Configuration&, Interactions)>;

  /// Samples once every `stride` interactions (the sample at interaction 0
  /// is always taken).
  explicit Recorder(Interactions stride);

  /// Channel names are validated (validate_channel_name) so a stray tab or
  /// newline can never corrupt a TSV table or an archive header.
  void add_channel(std::string name, Projection projection);

  /// Attaches an additional destination (not owned; must outlive the
  /// recorder). Must be called before the first sample.
  void add_sink(RecordSink& sink);

  /// Disables the built-in MemorySink for pure-streaming runs, so an
  /// n = 10¹¹ archive job does not also grow an in-memory series.
  void set_keep_series(bool keep);

  /// Asks engines to deliver an EngineCheckpoint every `stride` interactions
  /// (0 = never, the default). Like samples, checkpoints live on a lattice:
  /// stride, 2·stride, … — an engine observing past a lattice point emits
  /// one checkpoint and the lattice advances by whole strides.
  void set_checkpoint_stride(Interactions stride);

  /// Called by engines after each interaction/round; cheap when not sampling.
  void maybe_sample(const Configuration& config, Interactions interactions) {
    if (interactions >= next_sample_) sample(config, interactions);
  }

  /// Forces a sample now (used to capture the final configuration).
  void sample(const Configuration& config, Interactions interactions);

  /// True iff an engine observing `interactions` should deliver a
  /// checkpoint via record_checkpoint.
  bool checkpoint_due(Interactions interactions) const noexcept {
    return checkpoint_stride_ > 0 && interactions >= next_checkpoint_;
  }

  /// Forwards an engine snapshot to every sink (stamping last_sample for
  /// resume bookkeeping) and advances the checkpoint lattice.
  void record_checkpoint(EngineCheckpoint state);

  /// Restart bookkeeping after an engine was restored from `state`: every
  /// sample and checkpoint up to state.interactions already exists in the
  /// archive, so both lattices resume at their next point past it.
  void resume_at(const EngineCheckpoint& state);

  /// Ends a recorded run: forces a final sample (skipped when one already
  /// exists at exactly fin.interactions) and calls finish() on every sink.
  void finalize(const Configuration& config, const RecordFinish& fin);

  TimeSeries take_series() &&;
  const TimeSeries& series() const noexcept { return memory_.series(); }
  Interactions stride() const noexcept { return stride_; }
  /// Interaction count of the most recent sample (-1 before the first).
  Interactions last_sample() const noexcept { return last_sample_; }

 private:
  /// Announces the locked channel list to every sink before the first sample.
  void ensure_open();

  Interactions stride_;
  Interactions next_sample_ = 0;
  Interactions checkpoint_stride_ = 0;
  Interactions next_checkpoint_ = 0;
  Interactions last_sample_ = -1;
  bool keep_series_ = true;
  bool opened_ = false;
  std::vector<std::string> channel_names_;
  std::vector<Projection> projections_;
  std::vector<double> scratch_;
  MemorySink memory_;
  std::vector<RecordSink*> sinks_;
};

}  // namespace ppsim
