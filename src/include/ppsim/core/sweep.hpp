// Declarative parameter-sweep harness: the scaling substrate for every
// experiment in this repo.
//
// Validating the paper's lower bound empirically means sweeping (n, k, bias,
// engine, protocol) over many independent trials. Before this subsystem each
// of the 15 bench binaries hand-rolled its own single-threaded trial loop
// and its own JSON emit code; now a bench is a SweepSpec (the grid) plus a
// trial lambda (one cell, one RNG stream -> named scalar metrics), and the
// runner owns everything repeatable:
//
//   * a work-stealing task scheduler (core/task_scheduler.hpp) fanning
//     (cell, trial) tasks out over --threads workers — cells complete out of
//     order, expensive cells start early, and imbalanced grids (n=10^3 cells
//     next to n=10^11 collapsed cells) no longer convoy behind the
//     submission order; the previous shared-counter pool survives as
//     SweepSchedulerKind::kStaticPool, the measured baseline;
//   * deterministic per-trial randomness: trial (c, t) always draws from
//     Xoshiro256pp(base_seed).stream(c * trials + t), an O(1) jump-stream
//     derivation, so results are bitwise identical at any thread count;
//   * adaptive trial stopping (--trials auto[:rel_err]): trials are issued
//     in doubling waves, and once the wave-prefix confidence interval of the
//     target metric's mean is within rel_err the cell stops early. Stopping
//     decisions are evaluated over deterministic trial-index prefixes, never
//     over "whatever finished first", so adaptive sweeps keep the same
//     byte-identical-JSON guarantee as fixed ones;
//   * per-cell aggregation (count/mean/stddev/min/quantiles/max via
//     util/stats summarize());
//   * one unified JSON reporter (SweepResult::to_json) replacing the ad-hoc
//     per-bench emit code — reports from --threads 1 and --threads N are
//     byte-identical (wall-clock time is deliberately kept out of the JSON).
//
// Trial lambdas must be thread-compatible: read-only on shared captures,
// writes confined to the returned metrics (the runner stores them in
// per-trial slots, so no locking is needed downstream).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ppsim/core/engine.hpp"
#include "ppsim/core/runner.hpp"
#include "ppsim/core/scenario.hpp"
#include "ppsim/core/task_scheduler.hpp"
#include "ppsim/core/types.hpp"
#include "ppsim/kernels/round_kernel.hpp"
#include "ppsim/util/cli.hpp"
#include "ppsim/util/rng.hpp"
#include "ppsim/util/stats.hpp"

namespace ppsim {

/// One grid point of a sweep: the canonical axes the paper's experiments
/// vary (n, k, bias, engine, protocol) plus free-form named scalars for
/// bench-specific knobs (corruption rate, walk drift, ...). Cells are plain
/// data — the trial lambda interprets them.
struct SweepCell {
  Count n = 0;
  std::size_t k = 0;
  double bias = 0.0;
  EngineKind engine = EngineKind::kSequential;
  std::string protocol = "usd";
  Interactions round_divisor = 16;  ///< batched engine granularity
  double tau_epsilon = 0.05;        ///< collapsed engine drift tolerance
  /// Round kernel for the batched/collapsed engines; nullopt inherits
  /// SweepSpec::kernel (SweepRunner stamps the resolved kind in at
  /// construction, so downstream readers always see a value).
  std::optional<kernels::KernelKind> kernel;
  /// Bench-specific scalar knobs, carried into the report verbatim.
  std::vector<std::pair<std::string, double>> params;
  /// Row label for tables/reports; label() falls back to "n=..,k=..".
  std::string name;

  double param(const std::string& key, double fallback) const;
  std::string label() const;
};

/// Adaptive trial stopping (--trials auto). When `adaptive`, the runner
/// issues trials for each cell in doubling waves starting at `min_trials`
/// and stops the cell once the two-sided Student-t confidence interval of
/// the target metric's mean (over the completed trial-index prefix) has
/// half-width <= rel_err * |mean| — or once spec.trials (the cap) is
/// reached. Cells whose trials never report the metric stop at min_trials:
/// the rule cannot guide them, and silently running to the cap would turn a
/// typo into a 64x cost overrun.
struct TrialStopping {
  bool adaptive = false;
  double rel_err = 0.05;           ///< target relative CI half-width
  double confidence = 0.95;        ///< CI confidence level, in (0, 1)
  std::size_t min_trials = 8;      ///< first wave; also the floor per cell
  std::string metric = "parallel_time";  ///< metric whose mean is pinned
};

/// Which execution substrate run() uses. kWorkStealing is the default;
/// kStaticPool is the pre-scheduler shared-atomic-counter pool, kept as the
/// measured baseline (bench_throughput --mixed-grid) and as a differential
/// determinism oracle. The static pool cannot express dynamic work, so it
/// rejects adaptive stopping.
enum class SweepSchedulerKind { kWorkStealing, kStaticPool };

/// The declarative sweep: grid x trial count x seeding x parallelism.
struct SweepSpec {
  std::string name;               ///< bench/experiment name (report header)
  std::vector<SweepCell> cells;
  std::size_t trials = 1;         ///< trials per cell (the cap when adaptive)
  std::uint64_t base_seed = 42;
  unsigned threads = 1;           ///< worker count; 0 = hardware concurrency
  TrialStopping stopping;         ///< fixed by default
  SweepSchedulerKind scheduler = SweepSchedulerKind::kWorkStealing;
  /// Default round kernel for cells that don't name their own. kScalar is
  /// the determinism anchor: its draw sequence predates the kernels layer,
  /// so every byte-identical-JSON pin assumes it.
  kernels::KernelKind kernel = kernels::KernelKind::kScalar;
};

/// Everything one trial may depend on. `rng` is the trial's private jump
/// stream; `seed` is a scalar drawn from it for engines that expand their
/// own seed (UsdEngine, GossipEngine, ...). Using both is fine — the stream
/// is private to this (cell, trial) pair.
struct SweepTrial {
  const SweepCell& cell;
  std::size_t cell_index;
  std::size_t trial;           ///< trial index within the cell
  std::uint64_t stream_index;  ///< cell_index * spec.trials + trial
  std::uint64_t seed;
  Xoshiro256pp& rng;

  /// Builds the engine the cell names (kind + round_divisor) over `initial`,
  /// seeded from this trial's stream — any EngineKind can be driven from a
  /// sweep cell. The protocol must outlive the engine.
  Engine make_engine(const Protocol& protocol, Configuration initial) const;
};

/// Named scalar observables produced by one trial. Insertion order is
/// preserved into the aggregation and the report; a metric may be omitted
/// by some trials (e.g. "recovery_time" only when recovered) — aggregates
/// then cover the trials that reported it.
using SweepMetrics = std::vector<std::pair<std::string, double>>;

using SweepTrialFn = std::function<SweepMetrics(const SweepTrial&)>;

/// Lockstep cell description for whole-cell kernel launches (the run()
/// overload below). A cell is lockstep-eligible when its trial function is
/// exactly "run the collapsed engine over `initial` to stabilization or
/// `budget` interactions and report consensus_metrics" — the plan hands the
/// runner enough to build the per-trial engines itself, so one kernel
/// launch can advance a whole group of trials in lockstep. The protocol and
/// configuration must outlive the run() call.
struct LockstepPlan {
  const Protocol* protocol = nullptr;
  const Configuration* initial = nullptr;
  Interactions budget = 0;
};

/// Returns the lockstep plan for a cell, or nullopt when the cell must run
/// through the ordinary per-trial path (non-collapsed engine, recording,
/// bench-specific metrics, ...).
using LockstepPlanFn =
    std::function<std::optional<LockstepPlan>(const SweepCell&)>;

/// Per-cell aggregate of one metric (Summary: count, mean, stddev, min,
/// p25, median, p75, max) plus the raw per-trial values in trial order.
struct SweepMetricAggregate {
  std::string metric;
  Summary summary;
  std::vector<double> values;
};

struct SweepCellResult;

/// Rebuilds a cell's aggregates from its raw per-trial metrics: resizes
/// `trials` down to `trials_run`, then recomputes `aggregates` (metric order
/// = first occurrence across trials in trial-index order, values in trial
/// order, Summary via util/stats summarize()). This is THE aggregation path
/// — the runner calls it when a cell completes, and the cell cache calls it
/// when replaying stored raw trials, so a cache hit re-derives byte-identical
/// aggregates instead of trusting stored ones.
void aggregate_sweep_cell(SweepCellResult& cr);

struct SweepCellResult {
  SweepCell cell;
  std::size_t cell_index = 0;
  std::size_t trials_requested = 0;  ///< spec.trials (the cap when adaptive)
  std::size_t trials_run = 0;        ///< trials actually executed (== requested
                                     ///< for fixed-trial sweeps, always)
  std::vector<SweepMetrics> trials;  ///< per-trial metrics, trial order
  std::vector<SweepMetricAggregate> aggregates;

  const SweepMetricAggregate* find(const std::string& metric) const;
  /// Per-trial values of `metric`, in trial order (empty if never reported).
  std::vector<double> values(const std::string& metric) const;
  /// Mean of `metric` over the trials that reported it; `fallback` if none.
  double mean(const std::string& metric, double fallback = 0.0) const;
  /// Sum / min / max over the trials that reported the metric.
  double sum(const std::string& metric) const;
  double min(const std::string& metric, double fallback = 0.0) const;
  double max(const std::string& metric, double fallback = 0.0) const;
  /// Per-trial values of metric `value` over trials where metric `flag` is
  /// nonzero (e.g. parallel time over stabilized trials only — budget-capped
  /// trials would otherwise smuggle the budget into time statistics).
  std::vector<double> values_where(const std::string& value,
                                   const std::string& flag) const;
  /// Mean of metric `value` over trials where metric `flag` is nonzero.
  double mean_where(const std::string& value, const std::string& flag,
                    double fallback = 0.0) const;
  /// Min / max of metric `value` over trials where metric `flag` is nonzero.
  double min_where(const std::string& value, const std::string& flag,
                   double fallback = 0.0) const;
  double max_where(const std::string& value, const std::string& flag,
                   double fallback = 0.0) const;
  /// Fraction of trials whose `flag` metric is nonzero (0 if no trials).
  double rate(const std::string& flag) const;
};

struct SweepResult {
  std::string name;
  std::size_t trials = 0;  ///< spec.trials (the per-cell cap when adaptive)
  std::uint64_t base_seed = 0;
  unsigned threads = 1;  ///< resolved worker count actually used
  TrialStopping stopping;
  kernels::KernelKind kernel = kernels::KernelKind::kScalar;  ///< spec default
  std::vector<SweepCellResult> cells;
  /// True when a cooperative cancel (SweepJobOptions::cancel) was observed:
  /// cells that completed every scheduled trial are delivered normally, the
  /// rest are returned empty (trials_run = 0, no aggregates). Like
  /// wall_seconds this is runtime state, deliberately NOT in the JSON — a
  /// cancelled job must never masquerade as a (differently shaped) report.
  bool cancelled = false;
  double wall_seconds = 0.0;  ///< whole-sweep wall clock (not in the JSON)
  /// Work-stealing execution counters (zero under the static pool). Like
  /// wall_seconds these are timing-dependent, so they stay out of the JSON.
  TaskScheduler::Stats scheduler_stats;

  /// Unified report: spec header, then one entry per cell with the cell's
  /// axes/params, per-metric aggregates and raw per-trial values. Does NOT
  /// include wall_seconds or threads — two runs of the same spec at
  /// different thread counts must serialize byte-identically.
  std::string to_json() const;
  /// Writes to_json() (plus trailing newline) to `path`; empty path = no-op.
  void write_json(const std::string& path) const;
};

/// One cell's entry of the unified report, rendered standalone.
/// `default_kernel` resolves cells whose kernel is nullopt (SweepResult
/// passes its spec default). Exposed so the sweep service can stream a cell
/// the moment it completes using exactly the bytes the final report will
/// contain — to_json() is a join of these strings, nothing more.
std::string sweep_cell_json(const SweepCellResult& cr,
                            kernels::KernelKind default_kernel);

/// Completion callback for one sweep cell: fired exactly once per completed
/// cell, by whichever worker finishes the cell's last trial (the "last
/// finisher"), with the cell's fully aggregated deterministic result. The
/// invocation ORDER across cells follows completion and is therefore
/// schedule-dependent — but every delivered SweepCellResult is the same
/// bytes at any thread count, and the assembled SweepResult orders cells by
/// index regardless (tests/sweep_test.cpp pins JSON invariance under
/// callback order). Callbacks may run concurrently from different workers;
/// the callee synchronizes. Keep them cheap: a slow callback stalls one
/// worker, not the job.
using SweepCellCallback = std::function<void(const SweepCellResult&)>;

/// Options for SweepRunner::run_job — the asynchronous-consumption form of a
/// sweep that the service layer builds on. run(fn) is run_job with all
/// defaults.
struct SweepJobOptions {
  /// Per-cell completion callback (see SweepCellCallback); null = none.
  SweepCellCallback on_cell;
  /// Lockstep eligibility plan (the run(fn, plan) overload's second arg).
  LockstepPlanFn lockstep;
  /// Cooperative cancellation: when non-null and *cancel becomes true,
  /// workers stop STARTING trials. Trials already in flight finish; cells
  /// whose every scheduled trial still completed are aggregated and
  /// delivered via on_cell as usual, the rest come back empty and the
  /// returned SweepResult has cancelled = true. The flag must outlive the
  /// run_job call (which blocks until in-flight work drains).
  const std::atomic<bool>* cancel = nullptr;
  /// Per-cell skip mask (empty = run everything). Skipped cells execute no
  /// trials and fire no callback; they come back empty (trials_run = 0) at
  /// their original cell_index, which is what keeps the seeding discipline
  /// intact when a caller splices in cached results: stream indices are
  /// cell_index * trials + trial, so cached cells must keep their position
  /// rather than being compacted out of the spec.
  std::vector<bool> skip;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepSpec spec);

  const SweepSpec& spec() const noexcept { return spec_; }

  /// The jump-stream index feeding (cell, trial) — the documented seeding
  /// scheme: base seed -> stream index = cell * trials_per_cell + trial.
  static std::uint64_t stream_index(std::size_t cell_index,
                                    std::size_t trials_per_cell,
                                    std::size_t trial) noexcept {
    return static_cast<std::uint64_t>(cell_index) * trials_per_cell + trial;
  }

  /// The generator driving stream `index` of `base_seed` (exposed so a
  /// single recorded trial can be reproduced outside a sweep).
  static Xoshiro256pp trial_stream(std::uint64_t base_seed, std::uint64_t index) {
    return Xoshiro256pp(base_seed).stream(index);
  }

  /// Worker count actually used: spec.threads (0 = hardware concurrency)
  /// clamped against the *initial* work-item bound cells x spec.trials —
  /// i.e. cells x max_trials when stopping is adaptive. The clamp must not
  /// track the dynamic adaptive work count (waves start at min_trials):
  /// extra workers idle cheaply, while re-clamping per wave would make the
  /// resolved thread count — a reported field — depend on stopping decisions.
  static unsigned resolved_threads(const SweepSpec& spec) noexcept;

  /// Runs trials x cells over the scheduler and aggregates. Every task
  /// writes only its own pre-sized result slot, stopping decisions are
  /// evaluated over deterministic trial-index prefixes, and per-cell
  /// aggregation is a pure function of the cell's trial data — so the
  /// outcome is independent of scheduling: byte-identical JSON at any
  /// --threads, for fixed and adaptive trial counts alike. Thin wrapper
  /// over run_job with default options.
  SweepResult run(const SweepTrialFn& fn) const;

  /// Like run(fn), but cells for which `plan` returns a LockstepPlan are
  /// executed as whole-cell kernel launches: their trials are grouped in
  /// runs of kernel().lockstep_width() consecutive trial indices, each
  /// group's engines are stepped round-by-round through the staging API
  /// (CollapsedSimulator::stage_round / commit_round) and one
  /// advance_batch call per round samples every lane — the layout the AVX2
  /// kernel vectorizes across. Seeding replicates the per-trial discipline
  /// exactly, so with the scalar kernel the report is byte-identical to
  /// run(fn) (tests/sweep_test.cpp pins this). Cells fall back to the
  /// per-trial path when the plan is nullopt, the engine is not collapsed,
  /// stopping is adaptive, or the scheduler is the static pool. Thin
  /// wrapper over run_job.
  SweepResult run(const SweepTrialFn& fn, const LockstepPlanFn& plan) const;

  /// The job form both run() overloads delegate to: a sweep submission with
  /// incremental result assembly. Each cell is aggregated by its last
  /// finisher the moment its final trial lands (not in a sequential pass at
  /// the end), opts.on_cell streams completed cells to the caller while
  /// later cells are still running, opts.cancel stops the job
  /// cooperatively, and opts.skip leaves chosen cells empty at their
  /// original index for the caller to fill (the cache-hit path). Blocks
  /// until the job drains; rethrows the first trial exception.
  SweepResult run_job(const SweepTrialFn& fn, const SweepJobOptions& opts) const;

 private:
  SweepResult run_static_pool(const SweepTrialFn& fn,
                              const SweepJobOptions& opts,
                              SweepResult result) const;
  SweepResult run_work_stealing(const SweepTrialFn& fn,
                                const SweepJobOptions& opts,
                                SweepResult result) const;

  SweepSpec spec_;
};

/// The shared sweep-facing CLI surface, so every bench spells the common
/// flags identically: --trials (a count, or auto[:rel_err] for adaptive
/// stopping), --min-trials / --max-trials (adaptive wave floor and cap),
/// --seed, --threads (0 = hardware), --json (unified report path; empty
/// disables), --kernel (auto|scalar|avx2 round-sampling backend; auto picks
/// the widest kernel this build+CPU supports, and an explicitly requested
/// unavailable backend fails fast with a clear error), --record-to
/// (trajectory-archive destination; empty disables), --checkpoint-every
/// (checkpoint stride for recorded runs, 0 = none), and the scenario knobs
/// --adversary STRENGTH, --churn RATE[:undecided|uniform] and --regraph
/// ROUNDS (core/scenario.hpp; all default off, and binaries that cannot
/// honour a knob reject it via ScenarioSpec::require_only).
struct SweepCliOptions {
  std::size_t trials = 1;  ///< fixed count, or the cap when stopping.adaptive
  std::uint64_t seed = 42;
  unsigned threads = 1;
  std::string json;
  /// Resolved --kernel choice ("auto" already resolved against this host).
  kernels::KernelKind kernel = kernels::KernelKind::kScalar;
  /// Trajectory-archive destination ("" = no recording). Binaries that
  /// record one run treat it as a file path; benches that archive a
  /// representative trial per cell treat it as a directory.
  std::string record_to;
  /// Checkpoint stride (interactions) for recorded runs; 0 = no checkpoints.
  Interactions checkpoint_every = 0;
  /// Scenario knobs (--adversary / --churn / --regraph), all off by default.
  ScenarioSpec scenario;
  TrialStopping stopping;

  /// Applies the shared flags to a spec (trials/base_seed/threads/stopping),
  /// leaving name/cells/scheduler to the bench. Benches may override
  /// spec.stopping.metric afterwards to aim --trials auto at their own
  /// headline metric.
  void configure(SweepSpec& spec) const;
};

SweepCliOptions read_sweep_flags(Cli& cli, std::size_t default_trials,
                                 std::uint64_t default_seed,
                                 const std::string& default_json);

/// Standard metric block for consensus trials, so every bench reports the
/// same names: stabilized (0/1), parallel_time, interactions (attempted),
/// clamped, effective_interactions, winner (opinion index, -1 = none) and
/// majority_win (winner == 0).
SweepMetrics consensus_metrics(const TrialResult& r);

}  // namespace ppsim
