// Adversarial scenarios: the schedules the paper's lower bound reasons about
// but an oblivious simulator never produces.
//
// Everything this library measured before this layer ran under the uniform
// scheduler on a fixed population and a static topology. The paper's Theorem
// 3.5, however, is proved against a *adaptive* adversary — one that watches
// the configuration and steers interactions against the trailing opinion —
// and real deployments add churn (agents joining/leaving mid-run) and
// time-varying connectivity on top. This module packages those three regimes
// behind small, independently testable drivers:
//
//   * AdversarialScheduler — wraps a UsdEngine. Each interaction is, with
//     probability `strength`, replaced by an adversarially chosen pair:
//     the trailing surviving opinion is forced to clash with a partner drawn
//     proportionally to the counts of the *other* surviving opinions (both
//     agents drop to ⊥, starving the trailer — the shape of the paper's
//     lower-bound adversary). With the remaining 1 − strength probability
//     the engine takes its own uniform step. strength = 0 makes ZERO
//     adversary RNG draws and delegates every step to the engine, so it is
//     byte-identical to the uniform scheduler (scenario_test pins this).
//
//   * ChurnModel — open populations. Per interaction (sequential) or per
//     τ-leaping round (collapsed, via exact binomial windowing), agents join
//     at `join_rate` — entering ⊥ or a uniformly random opinion — and a
//     uniformly random agent leaves at `leave_rate`. The model keeps a
//     join/leave ledger that the population size must track exactly; leaves
//     that would shrink the population below the engine minimum of 2 are
//     skipped and never enter the ledger.
//
//   * DynamicGraph — time-varying topologies for GraphSimulator: the edge
//     set is resampled from a generator every `resample_every` interactions
//     and rebound into the running simulator, states untouched.
//
// ScenarioSpec is the CLI-facing bundle (--adversary / --churn / --regraph)
// threaded through SweepCliOptions; its params() stamps only NON-DEFAULT
// knobs into SweepCell::params, so a zero-knob spec serializes byte-identical
// to a pre-scenario one (and distinct knobs hash to distinct cache keys).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ppsim/core/collapsed_simulator.hpp"
#include "ppsim/core/graph.hpp"
#include "ppsim/core/graph_simulator.hpp"
#include "ppsim/core/types.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/rng.hpp"

namespace ppsim {

/// CLI-facing scenario knobs, all defaulting to "off".
struct ScenarioSpec {
  /// Probability an interaction is adversarially scheduled, in [0, 1].
  double adversary_strength = 0.0;
  /// Per-interaction join AND leave rate (the CLI's --churn drives both, so
  /// the population stays constant in expectation), in [0, 1].
  double churn_rate = 0.0;
  /// Joiners enter ⊥ (true) or a uniformly random opinion (false).
  bool churn_joiners_undecided = true;
  /// Resample the interaction graph every this many *rounds* (n
  /// interactions); 0 = static graph.
  Interactions regraph_every = 0;

  bool any() const noexcept {
    return adversary_strength > 0.0 || churn_rate > 0.0 || regraph_every > 0;
  }

  /// Non-default knobs as SweepCell::params entries. Empty at defaults —
  /// load-bearing for the strength-0/churn-0 byte-identity guarantees.
  std::vector<std::pair<std::string, double>> params() const;

  /// Throws CheckFailure when a knob is set that `context` cannot honour.
  void require_only(bool adversary_ok, bool churn_ok, bool regraph_ok,
                    const std::string& context) const;
};

/// Adaptive adversary over a UsdEngine (see file comment for the law).
class AdversarialScheduler {
 public:
  /// `strength` = probability of an adversarial intervention per
  /// interaction, in [0, 1]. strength 0 never touches `seed`'s stream.
  AdversarialScheduler(double strength, std::uint64_t seed);

  double strength() const noexcept { return strength_; }
  /// Number of interactions the adversary scheduled (≤ engine interactions).
  Interactions interventions() const noexcept { return interventions_; }

  /// Trailing / leading *surviving* opinion state (1-based USD layout), or
  /// nullopt when no opinion survives. Ties break to the lowest state index.
  static std::optional<State> trailing_opinion(const std::vector<Count>& counts);
  static std::optional<State> leading_opinion(const std::vector<Count>& counts);

  /// One interaction under this scheduler. Returns true iff the adversary
  /// intervened (the engine's interaction clock advances either way).
  bool step(UsdEngine& engine);

  /// Runs for exactly `interactions` further interactions.
  void run(UsdEngine& engine, Interactions interactions);

  /// Runs until the engine stabilizes or its total interaction count
  /// reaches `max_interactions`. Returns true iff stabilized.
  bool run_until_stable(UsdEngine& engine, Interactions max_interactions);

 private:
  /// Forces the adversarial pair; falls back to a uniform engine step when
  /// the configuration offers nothing to target. Returns true iff forced.
  bool intervene(UsdEngine& engine);

  double strength_;
  Xoshiro256pp rng_;
  Interactions interventions_ = 0;
};

/// Open-population churn for both USD engines (see file comment).
class ChurnModel {
 public:
  enum class JoinPolicy {
    kUndecided,       ///< joiners enter ⊥
    kUniformOpinion,  ///< joiners pick one of the k opinions uniformly
  };

  ChurnModel(double join_rate, double leave_rate, JoinPolicy policy,
             std::uint64_t seed);

  double join_rate() const noexcept { return join_rate_; }
  double leave_rate() const noexcept { return leave_rate_; }
  /// Performed joins/leaves: the population must equal
  /// initial + joins() − leaves() at every quiescent point.
  Count joins() const noexcept { return joins_; }
  Count leaves() const noexcept { return leaves_; }

  /// One interaction's worth of churn (call after each engine step).
  void step(UsdEngine& engine);

  /// Runs the engine for exactly `interactions` interactions with churn
  /// interleaved (stabilization is ignored — a join can always unstabilize).
  void run(UsdEngine& engine, Interactions interactions);

  /// Applies a whole window's churn to the collapsed engine: join and leave
  /// totals are drawn from the exact Binomial(window, rate) laws, then
  /// placed one agent at a time. Rate-0 sides make zero draws.
  void apply_window(CollapsedSimulator& sim, Interactions window);

  /// Runs the collapsed engine for exactly `interactions` interactions,
  /// alternating τ-leaping rounds with churn windows of the realised length.
  void run(CollapsedSimulator& sim, Interactions interactions);

 private:
  State join_state(std::size_t num_states);
  /// Uniformly random occupied state (counts-weighted scan).
  static State victim_state(const std::vector<Count>& counts, Count victim_index);

  double join_rate_;
  double leave_rate_;
  JoinPolicy policy_;
  Xoshiro256pp rng_;
  Count joins_ = 0;
  Count leaves_ = 0;
};

/// Time-varying interaction graph driver for GraphSimulator.
class DynamicGraph {
 public:
  using Generator = std::function<InteractionGraph(Xoshiro256pp&)>;

  /// Generates the initial topology immediately (so `graph()` can seed a
  /// GraphSimulator), then resamples every `resample_every` interactions.
  DynamicGraph(Generator generator, Interactions resample_every,
               std::uint64_t seed);

  /// Current topology. Re-read after run_until_stable — resampling replaces
  /// the referenced object.
  const InteractionGraph& graph() const noexcept { return graph_; }
  std::size_t resamples() const noexcept { return resamples_; }

  /// Drives `sim` (which must have been constructed on this object's
  /// graph()) until stable or `max_interactions` total, resampling and
  /// rebinding the topology at every boundary. Returns true iff stable.
  bool run_until_stable(GraphSimulator& sim, Interactions max_interactions);

 private:
  Generator generator_;
  Interactions resample_every_;
  Xoshiro256pp rng_;
  InteractionGraph graph_;
  std::size_t resamples_ = 0;
};

}  // namespace ppsim
