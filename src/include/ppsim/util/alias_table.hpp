// Walker/Vose alias method: O(1) sampling from a fixed discrete distribution
// after O(S) preprocessing.
//
// Used where the distribution does not change between draws (workload
// generators, initial-opinion assignment, gossip partner-class sampling in
// tests). The interaction engines use FenwickTree instead because their
// distributions mutate on every step.
#pragma once

#include <cstdint>
#include <vector>

#include "ppsim/util/rng.hpp"

namespace ppsim {

class AliasTable {
 public:
  AliasTable() = default;

  /// Builds the table from non-negative weights (need not be normalised).
  /// Throws CheckFailure if weights are empty, contain a negative entry, or
  /// sum to zero.
  explicit AliasTable(const std::vector<double>& weights);

  /// Draws a category index with probability weight[i] / sum(weights).
  std::size_t sample(Xoshiro256pp& rng) const noexcept {
    const std::size_t i = static_cast<std::size_t>(rng.bounded(prob_.size()));
    return rng.canonical() < prob_[i] ? i : alias_[i];
  }

  std::size_t size() const noexcept { return prob_.size(); }

  /// Exact probability assigned to category i (for testing).
  double probability(std::size_t i) const;

 private:
  std::vector<double> prob_;        // acceptance threshold per column
  std::vector<std::size_t> alias_;  // fallback category per column
  std::vector<double> normalized_;  // original weights / sum, kept for probability()
};

}  // namespace ppsim
