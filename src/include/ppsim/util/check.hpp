// Invariant checking and safe narrowing helpers.
//
// The library validates preconditions at API boundaries with PPSIM_CHECK
// (always on; simulation state is cheap to validate relative to the work it
// guards) and uses PPSIM_ASSERT for internal consistency checks that are
// compiled out in release builds.
#pragma once

#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace ppsim {

/// Thrown when a PPSIM_CHECK precondition fails. Deriving from
/// std::invalid_argument keeps call sites testable with EXPECT_THROW.
class CheckFailure : public std::invalid_argument {
 public:
  explicit CheckFailure(const std::string& what) : std::invalid_argument(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "PPSIM_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}

}  // namespace detail

/// Always-on precondition check. Usage:
///   PPSIM_CHECK(n > 1, "population must have at least two agents");
#define PPSIM_CHECK(expr, msg)                                              \
  do {                                                                      \
    if (!(expr)) ::ppsim::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Debug-only internal assertion (compiled out with NDEBUG).
#ifdef NDEBUG
#define PPSIM_ASSERT(expr) ((void)0)
#else
#define PPSIM_ASSERT(expr) PPSIM_CHECK(expr, "internal assertion")
#endif

/// Saturating 64-bit addition: clamps to the std::int64_t range instead of
/// overflowing (signed overflow is UB). Used for count/interaction
/// accounting at populations where products and budgets approach 2^63
/// (e.g. the counts-space CollapsedSimulator at n = 10^9–10^11).
constexpr std::int64_t sat_add(std::int64_t a, std::int64_t b) noexcept {
  std::int64_t result = 0;
  if (__builtin_add_overflow(a, b, &result)) {
    return b > 0 ? std::numeric_limits<std::int64_t>::max()
                 : std::numeric_limits<std::int64_t>::min();
  }
  return result;
}

/// Saturating 64-bit multiplication; clamps like sat_add. The ordered-pair
/// count n·(n−1) saturates near n ≈ 3·10^9 — callers that need the exact
/// weight beyond that must switch to double arithmetic (and can detect the
/// switch point by comparing against the saturated value).
constexpr std::int64_t sat_mul(std::int64_t a, std::int64_t b) noexcept {
  std::int64_t result = 0;
  if (__builtin_mul_overflow(a, b, &result)) {
    return (a > 0) == (b > 0) ? std::numeric_limits<std::int64_t>::max()
                              : std::numeric_limits<std::int64_t>::min();
  }
  return result;
}

/// Checked narrowing conversion in the spirit of gsl::narrow: throws if the
/// round-trip changes the value (including sign changes).
template <typename To, typename From>
constexpr To narrow_cast(From value) {
  static_assert(std::is_arithmetic_v<To> && std::is_arithmetic_v<From>);
  const To result = static_cast<To>(value);
  if (static_cast<From>(result) != value ||
      (std::is_signed_v<From> != std::is_signed_v<To> && ((value < From{}) != (result < To{})))) {
    throw CheckFailure("narrow_cast changed the value");
  }
  return result;
}

}  // namespace ppsim
