// Invariant checking and safe narrowing helpers.
//
// The library validates preconditions at API boundaries with PPSIM_CHECK
// (always on; simulation state is cheap to validate relative to the work it
// guards) and uses PPSIM_ASSERT for internal consistency checks that are
// compiled out in release builds.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace ppsim {

/// Thrown when a PPSIM_CHECK precondition fails. Deriving from
/// std::invalid_argument keeps call sites testable with EXPECT_THROW.
class CheckFailure : public std::invalid_argument {
 public:
  explicit CheckFailure(const std::string& what) : std::invalid_argument(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "PPSIM_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckFailure(os.str());
}

}  // namespace detail

/// Always-on precondition check. Usage:
///   PPSIM_CHECK(n > 1, "population must have at least two agents");
#define PPSIM_CHECK(expr, msg)                                              \
  do {                                                                      \
    if (!(expr)) ::ppsim::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Debug-only internal assertion (compiled out with NDEBUG).
#ifdef NDEBUG
#define PPSIM_ASSERT(expr) ((void)0)
#else
#define PPSIM_ASSERT(expr) PPSIM_CHECK(expr, "internal assertion")
#endif

/// Checked narrowing conversion in the spirit of gsl::narrow: throws if the
/// round-trip changes the value (including sign changes).
template <typename To, typename From>
constexpr To narrow_cast(From value) {
  static_assert(std::is_arithmetic_v<To> && std::is_arithmetic_v<From>);
  const To result = static_cast<To>(value);
  if (static_cast<From>(result) != value ||
      (std::is_signed_v<From> != std::is_signed_v<To> && ((value < From{}) != (result < To{})))) {
    throw CheckFailure("narrow_cast changed the value");
  }
  return result;
}

}  // namespace ppsim
