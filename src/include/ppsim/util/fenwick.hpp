// Fenwick (binary indexed) tree over non-negative integer weights, with
// weighted-category sampling.
//
// This is the core data structure of the exact interaction engine: a
// population configuration is a vector of per-state counts, and drawing an
// agent uniformly at random is equivalent to drawing a category with
// probability proportional to its count. The Fenwick tree supports
//   * point update of a count        O(log S)
//   * prefix sum                     O(log S)
//   * inverse-CDF lookup (sampling)  O(log S)
// where S is the number of states — so one interaction costs O(log S)
// regardless of the population size n.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ppsim/util/check.hpp"

namespace ppsim {

/// Fenwick tree specialised to signed 64-bit totals (counts never exceed the
/// population size, and intermediate deltas may be negative).
class FenwickTree {
 public:
  FenwickTree() = default;

  /// Builds a tree of `size` categories, all zero.
  explicit FenwickTree(std::size_t size) : tree_(size + 1, 0) {}

  /// Builds a tree from initial per-category weights in O(S).
  explicit FenwickTree(const std::vector<std::int64_t>& weights)
      : tree_(weights.size() + 1, 0) {
    for (std::size_t i = 0; i < weights.size(); ++i) {
      PPSIM_CHECK(weights[i] >= 0, "Fenwick weights must be non-negative");
      tree_[i + 1] += weights[i];
      const std::size_t up = (i + 1) + ((i + 1) & -(i + 1));
      if (up < tree_.size()) tree_[up] += tree_[i + 1];
    }
  }

  std::size_t size() const noexcept { return tree_.empty() ? 0 : tree_.size() - 1; }

  /// Adds `delta` to category `i`. The resulting weight must stay >= 0;
  /// enforced only in debug builds (hot path).
  void add(std::size_t i, std::int64_t delta) noexcept {
    for (std::size_t j = i + 1; j < tree_.size(); j += j & -j) tree_[j] += delta;
  }

  /// Sum of weights in categories [0, i).
  std::int64_t prefix_sum(std::size_t i) const noexcept {
    std::int64_t s = 0;
    for (std::size_t j = i; j > 0; j -= j & -j) s += tree_[j];
    return s;
  }

  /// Weight of a single category.
  std::int64_t weight(std::size_t i) const noexcept {
    return prefix_sum(i + 1) - prefix_sum(i);
  }

  /// Total weight over all categories.
  std::int64_t total() const noexcept { return prefix_sum(size()); }

  /// Returns the smallest category c such that prefix_sum(c+1) > target,
  /// i.e. maps target in [0, total) to a category by inverse CDF.
  /// Precondition: 0 <= target < total().
  std::size_t find(std::int64_t target) const noexcept {
    std::size_t pos = 0;
    std::size_t mask = highest_pow2();
    while (mask > 0) {
      const std::size_t next = pos + mask;
      if (next < tree_.size() && tree_[next] <= target) {
        target -= tree_[next];
        pos = next;
      }
      mask >>= 1;
    }
    return pos;  // categories are 0-based; pos counts full prefix blocks
  }

 private:
  std::size_t highest_pow2() const noexcept {
    std::size_t p = 1;
    while ((p << 1) < tree_.size()) p <<= 1;
    return p;
  }

  std::vector<std::int64_t> tree_;
};

}  // namespace ppsim
