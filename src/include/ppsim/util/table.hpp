// Tabular output used by every bench harness: the same rows can be emitted
// as machine-readable TSV (for plotting) and as an aligned console table
// (for eyeballing). Cells are stored as strings; numeric helpers format with
// stable precision so diffs between runs are meaningful.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ppsim {

/// Fixed-precision formatting helpers (used for table cells and logs).
std::string format_double(double v, int precision = 4);
std::string format_sci(double v, int precision = 3);
std::string format_int(std::int64_t v);

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  std::size_t num_columns() const noexcept { return columns_.size(); }
  std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Appends a row; must have exactly num_columns() cells.
  void add_row(std::vector<std::string> cells);

  /// Convenience: starts a row builder.
  class RowBuilder {
   public:
    explicit RowBuilder(Table& table) : table_(table) {}
    RowBuilder& cell(std::string v);
    RowBuilder& cell(std::int64_t v);
    RowBuilder& cell(double v, int precision = 4);
    /// Commits the row (checks the cell count).
    void done();

   private:
    Table& table_;
    std::vector<std::string> cells_;
  };
  RowBuilder row() { return RowBuilder(*this); }

  /// Writes tab-separated values with a header line.
  void write_tsv(std::ostream& os) const;

  /// Writes an aligned, human-readable table.
  void write_pretty(std::ostream& os) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ppsim
