// Exact samplers for the discrete distributions the synchronous engines and
// workload generators need: binomial, multinomial, hypergeometric.
//
// Exactness matters: the Gossip engine's correctness proof (tests/
// gossip_test.cpp) relies on each round being distributed *exactly* as the
// model prescribes, so approximations (normal/Poisson) are not used here.
// Binomial sampling delegates to std::binomial_distribution, which libstdc++
// implements exactly; multinomial and hypergeometric are reduced to
// sequential conditional binomial/inverse-CDF draws.
#pragma once

#include <cstdint>
#include <vector>

#include "ppsim/util/rng.hpp"

namespace ppsim {

/// Exact Binomial(trials, p) sample. p is clamped to [0, 1]; NaN p throws
/// (a NaN would silently pass the clamp and hand std::binomial_distribution
/// an invalid parameter — undefined behavior, not a bad sample).
///
/// Stability at paper scale (audited for n up to 2^53, the engines' count
/// cap): libstdc++'s implementation reflects p > 0.5 internally, switches
/// between a waiting-time walk (small n·p) and a rejection sampler, and
/// computes with log-space intermediates — no overflow or precision cliff
/// at n = 10^11-scale trials with extreme p. tests/random_variates_test.cpp
/// pins moments and tails at exactly those parameters.
std::int64_t binomial(Xoshiro256pp& rng, std::int64_t trials, double p);

/// Exact multinomial: partitions `trials` into weights.size() buckets where
/// bucket i receives each trial independently with probability
/// weights[i] / sum(weights). Implemented as sequential conditional
/// binomials, so the result is an exact multinomial sample.
/// Throws CheckFailure on negative weights or zero total with trials > 0.
std::vector<std::int64_t> multinomial(Xoshiro256pp& rng, std::int64_t trials,
                                      const std::vector<double>& weights);

/// multinomial() into a caller-owned buffer (resized to weights.size()),
/// so per-round callers — the scalar round kernel — don't allocate on the
/// hot path. Identical draw sequence to multinomial(): the vector-returning
/// overload is a wrapper around this.
void multinomial_into(Xoshiro256pp& rng, std::int64_t trials,
                      const std::vector<double>& weights,
                      std::vector<std::int64_t>& out);

/// Convenience overload with integer weights (counts).
std::vector<std::int64_t> multinomial(Xoshiro256pp& rng, std::int64_t trials,
                                      const std::vector<std::int64_t>& weights);

/// Exact hypergeometric: number of "successes" when drawing `draws` items
/// without replacement from a pool of `successes` + `failures` items.
/// Implemented by inverse-CDF walk from the mode-adjacent tail; O(result).
std::int64_t hypergeometric(Xoshiro256pp& rng, std::int64_t successes,
                            std::int64_t failures, std::int64_t draws);

}  // namespace ppsim
