// Pseudo-random number generation for the simulation engines.
//
// We implement xoshiro256++ (Blackman & Vigna) seeded through SplitMix64.
// Rationale instead of std::mt19937_64:
//   * ~2x faster per draw, which matters at 10^8+ interactions per run;
//   * jump() gives 2^128 non-overlapping subsequences for parallel
//     Monte-Carlo trials with a single user-facing seed;
//   * fully deterministic and portable across platforms, so every
//     experiment in EXPERIMENTS.md is reproducible from (seed, trial).
//
// Bounded integers use Lemire's unbiased multiply-shift rejection method.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace ppsim {

/// SplitMix64: tiny PRNG used only to expand a 64-bit seed into the 256-bit
/// xoshiro state (as recommended by the xoshiro authors).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ generator. Satisfies std::uniform_random_bit_generator, so it
/// can also drive <random> distributions where exactness matters more than
/// raw speed (e.g. std::binomial_distribution in the Gossip engine).
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state via SplitMix64(seed).
  explicit Xoshiro256pp(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : state_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Advances the state by 2^128 draws. Calling jump() t times on a copy
  /// yields a stream guaranteed not to overlap the first 2^128 draws of the
  /// original — the basis for deterministic parallel trials.
  void jump() noexcept;

  /// Advances the state by 2^192 draws (the xoshiro256 "long jump"): 2^64
  /// jump()-sized blocks in one O(1) call. Used by stream() so per-trial
  /// stream derivation does not degrade to O(index) chained jumps.
  void long_jump() noexcept;

  /// An independent stream for trial `index`, derived in O(1) regardless of
  /// the index: the index is folded into the 256-bit state through SplitMix64
  /// (distinct indices give distinct states by construction) and the result
  /// advanced by one long_jump(). This is the per-trial seeding primitive of
  /// the sweep harness: stream indices are cell * trials + trial, so every
  /// (cell, trial) pair maps to the same generator at any thread count.
  Xoshiro256pp stream(std::uint64_t index) const noexcept;

  /// Unbiased uniform integer in [0, bound) via Lemire's method.
  /// Precondition: bound > 0 (unchecked on the hot path; callers in this
  /// library always pass population sizes >= 1).
  std::uint64_t bounded(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double canonical() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli(p) draw.
  bool bernoulli(double p) noexcept { return canonical() < p; }

  /// The raw 256-bit generator state, for engine checkpoints (the trajectory
  /// archive stores it so an interrupted run resumes on the exact same
  /// random sequence).
  const std::array<std::uint64_t, 4>& state() const noexcept { return state_; }

  /// Restores a state captured by state(). The all-zero state is xoshiro's
  /// one forbidden fixed point; restoring it is a no-op (callers that parse
  /// untrusted checkpoint bytes reject it loudly before getting here).
  void set_state(const std::array<std::uint64_t, 4>& state) noexcept {
    if ((state[0] | state[1] | state[2] | state[3]) == 0) return;
    state_ = state;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int s) noexcept {
    return (x << s) | (x >> (64 - s));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace ppsim
