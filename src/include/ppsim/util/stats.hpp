// Statistics toolkit used by the Monte-Carlo runner, the drift validators and
// the scaling-law fits: running moments (Welford), order statistics,
// histograms, chi-square goodness of fit, least-squares regression, and
// bootstrap confidence intervals.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ppsim/util/rng.hpp"

namespace ppsim {

/// Numerically stable running mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;

  std::int64_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two observations.
  double variance() const noexcept;
  double stddev() const noexcept;
  /// Standard error of the mean; 0 for fewer than two observations.
  double sem() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Merges another accumulator (parallel reduction; Chan et al. update).
  void merge(const RunningStats& other) noexcept;

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample summary over a materialised vector of observations.
struct Summary {
  std::int64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};

/// Computes a Summary (copies and sorts internally).
Summary summarize(std::vector<double> values);

/// Linear interpolation quantile of a *sorted* sample, q in [0, 1].
double quantile_sorted(const std::vector<double>& sorted, double q);

/// Pearson chi-square statistic for observed counts vs expected counts.
/// Buckets with expected == 0 must have observed == 0 (checked).
double chi_square_statistic(const std::vector<std::int64_t>& observed,
                            const std::vector<double>& expected);

/// Upper-tail survival function of the chi-square distribution with `dof`
/// degrees of freedom, via the regularised incomplete gamma function.
/// Good to ~1e-10 relative accuracy for the ranges tests use.
double chi_square_sf(double statistic, int dof);

/// Ordinary least squares y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};
LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y);

/// Least squares through the origin, y = slope * x (used for fitting
/// stabilization times against a theory curve with one free constant).
struct ProportionalFit {
  double slope = 0.0;
  double r_squared = 0.0;
};
ProportionalFit proportional_fit(const std::vector<double>& x,
                                 const std::vector<double>& y);

/// Percentile bootstrap confidence interval for the mean.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};
Interval bootstrap_mean_ci(const std::vector<double>& values, double confidence,
                           int resamples, Xoshiro256pp& rng);

/// Histogram with equal-width bins over [lo, hi); values outside are clamped
/// into the edge bins so mass is conserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::int64_t bin_count(std::size_t i) const;
  std::size_t bins() const noexcept { return counts_.size(); }
  std::int64_t total() const noexcept { return total_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

 private:
  double lo_;
  double width_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

}  // namespace ppsim
