// Minimal JSON parser: the decoding counterpart of util/json's writer.
//
// The sweep service speaks line-delimited JSON over a local socket, so the
// library needs to *read* JSON for the first time — requests arrive from
// untrusted clients and must parse without crashing, recursing without
// bound, or accepting garbage silently. The parser is a strict RFC 8259
// recursive-descent over a string_view: no comments, no trailing commas, no
// NaN/Infinity literals, a hard nesting-depth cap, and the whole input must
// be consumed (a requirement for line-framed protocols — trailing bytes on
// a request line are an error, not a second message).
//
// JsonValue is a small immutable variant; object member order is preserved
// (mirroring the writer's insertion-ordered rendering) and duplicate keys
// are rejected. Accessors throw CheckFailure on type mismatches so service
// request validation collapses to "parse, then read the fields you expect".
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ppsim {

namespace detail {
struct JsonParser;
}

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses `text` as one complete JSON value (throws CheckFailure on any
  /// syntax error, on nesting deeper than 64 levels, and on trailing
  /// non-whitespace bytes).
  static JsonValue parse(std::string_view text);

  JsonValue() = default;  // null

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_object() const noexcept { return type_ == Type::kObject; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }

  /// Typed accessors; throw CheckFailure when the value is another type.
  bool as_bool() const;
  double as_number() const;
  /// as_number, checked to be integral and in the int64 range.
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;  ///< array elements
  /// Object members in source order.
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object member lookup; nullptr when absent (throws when not an object).
  const JsonValue* find(const std::string& key) const;
  /// Member lookup that throws CheckFailure when the key is absent.
  const JsonValue& at(const std::string& key) const;

  /// Convenience getters with defaults, for flat request objects. Each
  /// throws CheckFailure when the member exists but has the wrong type.
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  double get_number(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

 private:
  friend struct detail::JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace ppsim
