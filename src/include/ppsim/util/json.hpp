// Minimal JSON writer shared by the sweep reporter and the bench binaries.
//
// Promoted from bench_common.hpp so library code (core/sweep.cpp) can emit
// the unified sweep report without depending on bench scaffolding. The
// surface is deliberately tiny — an insertion-ordered object builder with
// eagerly rendered values — because every report in this repo is a flat
// tree of numbers, strings and arrays, and insertion order is what makes
// two reports byte-comparable (the sweep determinism test diffs raw bytes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ppsim {

/// JSON object/array builder (numbers, strings, booleans, nested objects and
/// arrays), no external dependency. Values are rendered eagerly in insertion
/// order; doubles use canonical shortest round-trip formatting (see
/// render_double) so equal doubles render equally, distinct doubles render
/// distinctly, and the bytes never depend on the host libc.
class JsonObject {
 public:
  JsonObject& field(const std::string& key, const std::string& value);
  JsonObject& field(const std::string& key, const char* value) {
    return field(key, std::string(value));
  }
  JsonObject& field(const std::string& key, std::int64_t value);
  JsonObject& field(const std::string& key, double value);
  JsonObject& field(const std::string& key, bool value);
  JsonObject& field(const std::string& key, const JsonObject& value);
  JsonObject& field(const std::string& key, const std::vector<JsonObject>& items);
  JsonObject& field(const std::string& key, const std::vector<double>& items);
  /// Embeds an already-rendered JSON value verbatim (e.g. a nested
  /// SweepResult::to_json() report). The caller owns its validity.
  JsonObject& field_json(const std::string& key, const std::string& rendered_json);

  std::string str() const { return "{" + body_ + "}"; }

  /// Writes the object (one line) to `path`; throws CheckFailure on IO error.
  void write_file(const std::string& path) const;

  /// RFC 8259 string escaping (exposed for the reporter's array rendering).
  static std::string escape(const std::string& s);
  /// The canonical number rendering used by double fields: integral values
  /// within the exact-integer range (|v| < 2^53) as plain digits, everything
  /// else as the shortest string that parses back to the identical double
  /// (std::to_chars general form — no libc printf involved, so the bytes are
  /// platform-invariant). Cache keys and byte-identity pins depend on this.
  static std::string render_double(double v);

 private:
  JsonObject& raw(const std::string& key, const std::string& rendered);

  std::string body_;
};

}  // namespace ppsim
