// Minimal command-line flag parser for the bench and example binaries.
// Supports --name value and --name=value forms plus boolean switches.
// Unknown flags are an error (typos in experiment parameters must not pass
// silently). Every bench prints its resolved parameters so recorded outputs
// are self-describing.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ppsim {

class Cli {
 public:
  /// Parses argv; throws CheckFailure on malformed input.
  Cli(int argc, const char* const* argv);

  /// Typed getters with defaults. Each call registers the flag as known;
  /// call them all before validate_no_unknown_flags().
  std::int64_t get_int(const std::string& name, std::int64_t default_value);
  double get_double(const std::string& name, double default_value);
  std::string get_string(const std::string& name, const std::string& default_value);
  bool get_bool(const std::string& name, bool default_value);

  /// True if the flag was present on the command line.
  bool has(const std::string& name) const;

  /// Throws if the command line contained flags never requested by getters.
  void validate_no_unknown_flags() const;

  const std::string& program_name() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> known_;
};

}  // namespace ppsim
