// Minimal terminal line-plot renderer, used by the Figure 1 benches and the
// examples so the reproduced figures can be inspected without leaving the
// console. Multiple series share one canvas; each series gets a glyph and a
// legend entry. Also supports horizontal reference lines (e.g. the paper's
// y = n/2 - n/4k guide line).
#pragma once

#include <string>
#include <vector>

namespace ppsim {

class AsciiPlot {
 public:
  /// Canvas of `width` x `height` character cells.
  AsciiPlot(std::size_t width, std::size_t height);

  /// Adds a named series. x and y must have equal, nonzero length.
  void add_series(const std::string& name, char glyph, const std::vector<double>& x,
                  const std::vector<double>& y);

  /// Adds a horizontal reference line at y = value.
  void add_hline(const std::string& name, char glyph, double value);

  /// Optional axis labels.
  void set_labels(std::string x_label, std::string y_label);

  /// Renders the canvas with axes, tick labels and a legend.
  std::string render() const;

 private:
  struct Series {
    std::string name;
    char glyph;
    std::vector<double> x;
    std::vector<double> y;
  };
  struct HLine {
    std::string name;
    char glyph;
    double value;
  };

  std::size_t width_;
  std::size_t height_;
  std::string x_label_ = "x";
  std::string y_label_ = "y";
  std::vector<Series> series_;
  std::vector<HLine> hlines_;
};

}  // namespace ppsim
