#include "ppsim/analysis/streaming_ci.hpp"

#include <cmath>
#include <limits>

#include "ppsim/util/check.hpp"

namespace ppsim {

double normal_quantile(double p) {
  PPSIM_CHECK(p > 0.0 && p < 1.0, "normal_quantile needs p in (0, 1)");
  // Acklam's algorithm: rational approximations on a central region and two
  // tails, with the breakpoints at p = 0.02425.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double student_t_quantile(double p, std::int64_t dof) {
  PPSIM_CHECK(p > 0.0 && p < 1.0, "student_t_quantile needs p in (0, 1)");
  PPSIM_CHECK(dof >= 1, "student_t_quantile needs dof >= 1");
  if (dof == 1) {
    // Cauchy: F^-1(p) = tan(pi (p - 1/2)).
    constexpr double kPi = 3.14159265358979323846;
    return std::tan(kPi * (p - 0.5));
  }
  if (dof == 2) {
    // Exact: t = alpha * sqrt(2 / (1 - alpha^2)) with alpha = 2p - 1.
    const double alpha = 2.0 * p - 1.0;
    return alpha * std::sqrt(2.0 / (1.0 - alpha * alpha));
  }
  // Cornish–Fisher expansion of the t quantile around the normal quantile
  // (Abramowitz & Stegun 26.7.5), in powers of 1/dof.
  const double z = normal_quantile(p);
  const double v = static_cast<double>(dof);
  const double z2 = z * z;
  const double g1 = z * (z2 + 1.0) / 4.0;
  const double g2 = z * ((5.0 * z2 + 16.0) * z2 + 3.0) / 96.0;
  const double g3 = z * (((3.0 * z2 + 19.0) * z2 + 17.0) * z2 - 15.0) / 384.0;
  const double g4 =
      z * ((((79.0 * z2 + 776.0) * z2 + 1482.0) * z2 - 1920.0) * z2 - 945.0) /
      92160.0;
  return z + g1 / v + g2 / (v * v) + g3 / (v * v * v) + g4 / (v * v * v * v);
}

double CiEstimate::relative_half_width() const noexcept {
  if (half_width == 0.0) return 0.0;
  if (mean == 0.0) return std::numeric_limits<double>::infinity();
  return half_width / std::fabs(mean);
}

CiEstimate mean_ci(const RunningStats& stats, double confidence) {
  PPSIM_CHECK(confidence > 0.0 && confidence < 1.0,
              "confidence must be in (0, 1)");
  CiEstimate est;
  est.count = stats.count();
  est.mean = stats.mean();
  if (stats.count() < 2) {
    est.half_width = std::numeric_limits<double>::infinity();
    return est;
  }
  const double t =
      student_t_quantile(0.5 + confidence / 2.0, stats.count() - 1);
  est.half_width = t * stats.sem();
  return est;
}

StreamingCi::StreamingCi(double confidence) : confidence_(confidence) {
  PPSIM_CHECK(confidence > 0.0 && confidence < 1.0,
              "confidence must be in (0, 1)");
}

bool StreamingCi::within_relative_error(double rel_err) const {
  const CiEstimate est = estimate();
  if (est.count < 2) return false;
  return est.relative_half_width() <= rel_err;
}

}  // namespace ppsim
