#include "ppsim/analysis/convergence.hpp"

#include "ppsim/util/check.hpp"

namespace ppsim {

ConvergenceReport measure_convergence(Simulator& sim, Opinion target,
                                      Interactions max_interactions) {
  PPSIM_CHECK(max_interactions >= 0, "interaction budget must be non-negative");

  ConvergenceReport report;
  auto output_correct = [&]() {
    const std::optional<Opinion> out = sim.consensus_output();
    return out.has_value() && *out == target;
  };

  bool correct = output_correct();
  if (correct) {
    report.first_convergence = sim.interactions();
    report.final_convergence = sim.interactions();
  }

  // Stability checks are strided (they cost O(S²)); output checks run every
  // interaction because convergence is defined per interaction.
  Interactions next_stability_check = sim.interactions();
  while (sim.interactions() < max_interactions) {
    if (sim.interactions() >= next_stability_check) {
      if (sim.is_stable()) break;
      next_stability_check = sim.interactions() + sim.configuration().population();
    }
    sim.step();
    const bool now_correct = output_correct();
    if (now_correct && !correct) {
      if (report.first_convergence < 0) report.first_convergence = sim.interactions();
      report.final_convergence = sim.interactions();
    } else if (!now_correct && correct) {
      ++report.output_breaks;
    }
    correct = now_correct;
  }

  report.stabilized = sim.is_stable();
  if (report.stabilized) report.stabilization = sim.interactions();
  report.final_output = sim.consensus_output();
  // If the run ended out of the correct set, the recorded entry times are
  // stale; only keep final_convergence when correctness currently holds.
  if (!correct) report.final_convergence = -1;
  return report;
}

}  // namespace ppsim
