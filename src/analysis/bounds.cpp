#include "ppsim/analysis/bounds.hpp"

#include <cmath>

#include "ppsim/util/check.hpp"

namespace ppsim::bounds {

namespace {

double as_d(Count n) { return static_cast<double>(n); }
double as_d(std::size_t k) { return static_cast<double>(k); }

void check_nk(Count n, std::size_t k) {
  PPSIM_CHECK(n >= 2, "population must have at least two agents");
  PPSIM_CHECK(k >= 1, "need at least one opinion");
}

}  // namespace

double usd_settle_point(Count n, std::size_t k) {
  check_nk(n, k);
  return as_d(n) / 2.0 - as_d(n) / (4.0 * as_d(k));
}

double lemma31_ceiling(Count n, std::size_t k) {
  check_nk(n, k);
  PPSIM_CHECK(k >= 2, "Lemma 3.1 ceiling needs k >= 2");
  const double nn = as_d(n);
  const double kk = as_d(k);
  const double root = std::sqrt(nn * std::log(nn));
  return nn / 2.0 - nn / (4.0 * kk) + 10.0 * nn / ((kk - 1.0) * (kk - 1.0)) +
         (20.0 * 13.0 * 13.0 + 1.0) * root;
}

double theorem35_parallel_lower_bound(Count n, std::size_t k) {
  check_nk(n, k);
  const double nn = as_d(n);
  const double kk = as_d(k);
  const double arg = std::sqrt(nn) / (kk * std::log(nn));
  if (arg <= 1.0) return 0.0;
  return kk / 25.0 * std::log(arg);
}

double theorem35_interaction_lower_bound(Count n, std::size_t k) {
  return as_d(n) * theorem35_parallel_lower_bound(n, k);
}

double amir_parallel_upper_bound(Count n, std::size_t k) {
  check_nk(n, k);
  return as_d(k) * std::log(as_d(n));
}

double clementi_two_color_parallel_bound(Count n) {
  PPSIM_CHECK(n >= 2, "population must have at least two agents");
  return std::log(as_d(n));
}

double theorem35_max_bias(Count n, std::size_t k) {
  check_nk(n, k);
  const double nn = as_d(n);
  const double kk = as_d(k);
  const double f = std::pow(std::sqrt(nn) / (kk * std::log(nn)), 0.25);
  return f * std::sqrt(nn * std::log(nn));
}

double whp_bias(Count n) {
  PPSIM_CHECK(n >= 2, "population must have at least two agents");
  return std::sqrt(as_d(n) * std::log(as_d(n)));
}

double lemma33_interactions(Count n, std::size_t k) {
  check_nk(n, k);
  return as_d(k) * as_d(n) / 25.0;
}

double lemma34_interactions(Count n, std::size_t k) {
  check_nk(n, k);
  return as_d(k) * as_d(n) / 24.0;
}

double lemma33_start_level(Count n, std::size_t k) {
  check_nk(n, k);
  return 1.5 * as_d(n) / as_d(k);
}

double lemma33_target_level(Count n, std::size_t k) {
  check_nk(n, k);
  return 2.0 * as_d(n) / as_d(k);
}

double theorem35_epochs(Count n, std::size_t k) {
  check_nk(n, k);
  const double nn = as_d(n);
  const double kk = as_d(k);
  const double f = std::pow(std::sqrt(nn) / (kk * std::log(nn)), 0.25);
  const double arg =
      std::pow(nn, 0.75) / (std::sqrt(kk) * std::sqrt(nn * std::log(nn)) * f);
  if (arg <= 1.0) return 0.0;
  return std::log2(arg);
}

double oliveto_witt_escape_bound(double epsilon, double ell, double r) {
  PPSIM_CHECK(epsilon > 0.0 && ell > 0.0 && r >= 1.0, "Theorem A.1 domain");
  return std::exp(-epsilon * ell / (132.0 * r * r));
}

double bernstein_tail(double t, double variance_sum, double m) {
  PPSIM_CHECK(t > 0.0 && variance_sum >= 0.0 && m > 0.0, "Bernstein domain");
  return std::exp(-(t * t / 2.0) / (variance_sum + m * t / 3.0));
}

double lemma32_escape_bound(double t_level, double p, double q, double steps) {
  PPSIM_CHECK(t_level > 0.0 && p > 0.0 && q > 0.0 && steps > 0.0, "Lemma 3.2 domain");
  PPSIM_CHECK(q <= p, "q must not exceed p (|E[step]| <= P[move])");
  const double var = steps * (p - q * q);
  return std::exp(-(t_level * t_level / 8.0) / (var + 2.0 * t_level / 3.0));
}

bool lemma32_condition_holds(double t_level, double p, double q, Count n) {
  PPSIM_CHECK(t_level > 0.0 && p > 0.0 && q > 0.0, "Lemma 3.2 domain");
  PPSIM_CHECK(n >= 2, "population must have at least two agents");
  const double rhs = 32.0 * ((p - q * q) / (2.0 * q) + 2.0 / 3.0) * std::log(as_d(n));
  return t_level >= rhs;
}

std::size_t paper_k(Count n) {
  PPSIM_CHECK(n >= 16, "paper_k needs ln ln n > 0");
  const double nn = as_d(n);
  const double k = std::sqrt(nn) / (std::log(nn) * std::log(std::log(nn)));
  // Floor, not round: the paper's own instance (n = 10^6 -> k = 27) floors
  // the value 27.57.
  return static_cast<std::size_t>(k);
}

}  // namespace ppsim::bounds
