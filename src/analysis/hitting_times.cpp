#include "ppsim/analysis/hitting_times.hpp"

#include <algorithm>

#include "ppsim/util/check.hpp"

namespace ppsim {

namespace {

/// Shared skip-ahead loop: `value()` is monotone in nothing, but changes by
/// at most `max_step_change` per interaction, which makes the skip exact.
template <typename ValueFn>
HittingResult hit_level(UsdEngine& engine, Count level, Count max_step_change,
                        Interactions max_interactions, ValueFn&& value) {
  PPSIM_CHECK(max_interactions >= 0, "interaction budget must be non-negative");
  HittingResult result;
  for (;;) {
    const Count v = value(engine);
    if (v >= level) {
      result.hit = true;
      result.interactions_at_hit = engine.interactions();
      break;
    }
    if (engine.stabilized() || engine.interactions() >= max_interactions) break;
    const Count gap = level - v;
    const Interactions skip = std::max<Interactions>(
        1, (gap + max_step_change - 1) / max_step_change);
    const Interactions budget =
        std::min(engine.interactions() + skip, max_interactions);
    while (engine.interactions() < budget && !engine.stabilized()) engine.step();
  }
  result.interactions_used = engine.interactions();
  result.stabilized = engine.stabilized();
  return result;
}

}  // namespace

HittingResult time_until_opinion_reaches(UsdEngine& engine, Opinion i, Count level,
                                         Interactions max_interactions) {
  PPSIM_CHECK(i < engine.num_opinions(), "opinion out of range");
  // x_i changes by at most 1 per interaction.
  return hit_level(engine, level, /*max_step_change=*/1, max_interactions,
                   [i](const UsdEngine& e) { return e.opinion_count(i); });
}

HittingResult time_until_delta_reaches(UsdEngine& engine, Count level,
                                       Interactions max_interactions) {
  // One interaction moves at most one agent into an opinion (max +1) or two
  // agents out of two opinions (min -1 each, affecting max and min by at
  // most 1 each): |ΔΔmax| <= 2.
  return hit_level(engine, level, /*max_step_change=*/2, max_interactions,
                   [](const UsdEngine& e) { return e.delta_max(); });
}

HittingResult time_until_stable(UsdEngine& engine, Interactions max_interactions) {
  PPSIM_CHECK(max_interactions >= 0, "interaction budget must be non-negative");
  HittingResult result;
  engine.run_until_stable(max_interactions);
  result.stabilized = engine.stabilized();
  result.hit = result.stabilized;
  result.interactions_at_hit = engine.interactions();
  result.interactions_used = engine.interactions();
  return result;
}

UndecidedExcursion max_undecided_over_run(UsdEngine& engine,
                                          Interactions max_interactions) {
  PPSIM_CHECK(max_interactions >= 0, "interaction budget must be non-negative");
  UndecidedExcursion result;
  result.max_undecided = engine.undecided();
  engine.run_observed(max_interactions, [&result](const UsdEngine& e) {
    result.max_undecided = std::max(result.max_undecided, e.undecided());
  });
  result.interactions_used = engine.interactions();
  result.stabilized = engine.stabilized();
  return result;
}

namespace {

/// Facade-engine first-hitting loop: run_until checks the predicate once per
/// round (including before the first round), so the recorded hit is the
/// first round boundary at or past the true hitting time. run_until's loop
/// condition skips the predicate on the round that exhausts the budget, so
/// the final configuration is re-checked here — otherwise a hit inside the
/// last round would be reported as a miss, diverging from the UsdEngine
/// overloads.
template <typename ValueFn>
HittingResult hit_level_engine(Engine& engine, Count level,
                               Interactions max_interactions, ValueFn&& value) {
  PPSIM_CHECK(max_interactions >= 0, "interaction budget must be non-negative");
  HittingResult result;
  const RunOutcome out = engine.run_until(
      [&](const Configuration& c, Interactions t) {
        if (value(c) >= level) {
          result.hit = true;
          result.interactions_at_hit = t;
          return true;
        }
        return false;
      },
      max_interactions);
  if (!result.hit && value(engine.configuration()) >= level) {
    result.hit = true;
    result.interactions_at_hit = out.interactions;
  }
  result.interactions_used = out.interactions;
  result.stabilized = out.stabilized;
  return result;
}

}  // namespace

HittingResult time_until_opinion_reaches(Engine& engine, Opinion i, Count level,
                                         Interactions max_interactions) {
  const State s = UndecidedStateDynamics::opinion_state(i);
  PPSIM_CHECK(s < engine.configuration().num_states(), "opinion out of range");
  return hit_level_engine(engine, level, max_interactions,
                          [s](const Configuration& c) { return c.count(s); });
}

HittingResult time_until_delta_reaches(Engine& engine, Count level,
                                       Interactions max_interactions) {
  return hit_level_engine(
      engine, level, max_interactions, [](const Configuration& c) {
        Count max_op = 0;
        Count min_op = c.population();
        for (State s = 1; s < static_cast<State>(c.num_states()); ++s) {
          max_op = std::max(max_op, c.count(s));
          min_op = std::min(min_op, c.count(s));
        }
        return max_op - min_op;
      });
}

UndecidedExcursion max_undecided_over_run(Engine& engine,
                                          Interactions max_interactions) {
  PPSIM_CHECK(max_interactions >= 0, "interaction budget must be non-negative");
  UndecidedExcursion result;
  result.max_undecided = engine.configuration().count(UndecidedStateDynamics::kUndecided);
  const RunOutcome out = engine.run_until(
      [&result](const Configuration& c, Interactions) {
        result.max_undecided =
            std::max(result.max_undecided, c.count(UndecidedStateDynamics::kUndecided));
        return false;  // sampling only; the engine stops at stability
      },
      max_interactions);
  // run_until skips the predicate on the round that exhausts the budget;
  // sample the final configuration so the last round's u(t) is not dropped.
  result.max_undecided =
      std::max(result.max_undecided,
               engine.configuration().count(UndecidedStateDynamics::kUndecided));
  result.interactions_used = out.interactions;
  result.stabilized = out.stabilized;
  return result;
}

namespace {

/// Interaction clock of the last recorded sample (0 for an empty archive).
Interactions archive_last_clock(const io::TrajectoryReader& archive) {
  const std::size_t blocks = archive.num_blocks();
  return blocks == 0 ? 0 : archive.block(blocks - 1).last_interactions;
}

}  // namespace

HittingResult archive_time_until_stable(const io::TrajectoryReader& archive) {
  HittingResult result;
  if (archive.finished()) {
    const io::TrajectoryEnd end = *archive.end();
    result.hit = end.stabilized;
    result.stabilized = end.stabilized;
    result.interactions_used = end.interactions;
    if (end.stabilized) result.interactions_at_hit = end.interactions;
  } else {
    result.interactions_used = archive_last_clock(archive);
  }
  return result;
}

HittingResult archive_first_hit(const io::TrajectoryReader& archive,
                                const std::string& channel, double level) {
  const auto idx = archive.channel_index(channel);
  PPSIM_CHECK(idx.has_value(), "unknown channel in archive: " + channel);
  HittingResult result;
  result.interactions_used = archive_last_clock(archive);
  if (archive.finished()) result.stabilized = archive.end()->stabilized;
  for (std::size_t i = 0; i < archive.num_blocks(); ++i) {
    if (archive.block(i).max[*idx] < level) continue;  // footer skip
    const io::TrajectoryReader::BlockData data = archive.decode_block(i);
    for (std::size_t j = 0; j < data.interactions.size(); ++j) {
      if (data.values[*idx][j] >= level) {
        result.hit = true;
        result.interactions_at_hit = data.interactions[j];
        return result;
      }
    }
  }
  return result;
}

UndecidedExcursion archive_max_undecided(const io::TrajectoryReader& archive) {
  UndecidedExcursion result;
  const double max_u = archive.channel_max("undecided");
  result.max_undecided = max_u == max_u ? static_cast<Count>(max_u) : 0;
  if (archive.finished()) {
    result.interactions_used = archive.end()->interactions;
    result.stabilized = archive.end()->stabilized;
  } else {
    result.interactions_used = archive_last_clock(archive);
  }
  return result;
}

}  // namespace ppsim

