#include "ppsim/analysis/scaling.hpp"

#include <algorithm>
#include <limits>

#include "ppsim/analysis/bounds.hpp"
#include "ppsim/util/check.hpp"

namespace ppsim {

ScalingFit fit_scaling(const std::vector<ScalingPoint>& points) {
  PPSIM_CHECK(!points.empty(), "need at least one scaling point");

  std::vector<double> lb_x;
  std::vector<double> ub_x;
  std::vector<double> k_x;
  std::vector<double> y;
  lb_x.reserve(points.size());
  ub_x.reserve(points.size());
  k_x.reserve(points.size());
  y.reserve(points.size());

  double min_ratio = std::numeric_limits<double>::infinity();
  for (const auto& pt : points) {
    const double lb = bounds::theorem35_parallel_lower_bound(pt.n, pt.k);
    const double ub = bounds::amir_parallel_upper_bound(pt.n, pt.k);
    PPSIM_CHECK(lb > 0.0, "lower bound degenerates at this (n, k); pick k = o(sqrt(n)/log n)");
    lb_x.push_back(lb);
    ub_x.push_back(ub);
    k_x.push_back(static_cast<double>(pt.k));
    y.push_back(pt.measured_parallel_time);
    min_ratio = std::min(min_ratio, pt.measured_parallel_time / lb);
  }

  ScalingFit fit;
  fit.lower_bound_shape = proportional_fit(lb_x, y);
  fit.upper_bound_shape = proportional_fit(ub_x, y);
  if (points.size() >= 2) fit.affine_in_k = linear_fit(k_x, y);
  fit.min_ratio_to_lower_bound = min_ratio;
  return fit;
}

}  // namespace ppsim
