#include "ppsim/analysis/drift.hpp"

#include <numeric>

#include "ppsim/util/check.hpp"

namespace ppsim {

UsdDrift::UsdDrift(std::vector<Count> counts) : counts_(std::move(counts)) {
  PPSIM_CHECK(counts_.size() >= 2, "need the undecided count plus at least one opinion");
  for (const Count c : counts_) PPSIM_CHECK(c >= 0, "counts must be non-negative");
  n_ = std::accumulate(counts_.begin(), counts_.end(), Count{0});
  PPSIM_CHECK(n_ >= 2, "population must have at least two agents");
}

Count UsdDrift::x(Opinion i) const {
  PPSIM_CHECK(i < k(), "opinion out of range");
  return counts_[i + 1];
}

double UsdDrift::prob_undecided_decrease() const noexcept {
  const auto uu = static_cast<double>(counts_[0]);
  const auto nn = static_cast<double>(n_);
  return 2.0 * uu * (nn - uu) / pair_norm();
}

double UsdDrift::prob_undecided_increase() const noexcept {
  const auto uu = static_cast<double>(counts_[0]);
  const auto nn = static_cast<double>(n_);
  double sum = 0.0;
  for (std::size_t i = 1; i < counts_.size(); ++i) {
    const auto xi = static_cast<double>(counts_[i]);
    sum += xi * (nn - uu - xi);
  }
  return sum / pair_norm();
}

double UsdDrift::expected_undecided_change() const noexcept {
  return 2.0 * prob_undecided_increase() - prob_undecided_decrease();
}

double UsdDrift::prob_opinion_up(Opinion i) const {
  const auto xi = static_cast<double>(x(i));
  const auto uu = static_cast<double>(counts_[0]);
  return 2.0 * xi * uu / pair_norm();
}

double UsdDrift::prob_opinion_down(Opinion i) const {
  const auto xi = static_cast<double>(x(i));
  const auto nn = static_cast<double>(n_);
  const auto uu = static_cast<double>(counts_[0]);
  return 2.0 * xi * (nn - uu - xi) / pair_norm();
}

double UsdDrift::expected_opinion_change(Opinion i) const {
  const auto xi = static_cast<double>(x(i));
  const auto nn = static_cast<double>(n_);
  const auto uu = static_cast<double>(counts_[0]);
  return 2.0 * xi * (2.0 * uu - nn + xi) / pair_norm();
}

double UsdDrift::prob_delta_up(Opinion i, Opinion j) const {
  const auto xi = static_cast<double>(x(i));
  const auto xj = static_cast<double>(x(j));
  const auto nn = static_cast<double>(n_);
  const auto uu = static_cast<double>(counts_[0]);
  // x_i adopts an undecided agent, or x_j clashes with a third opinion.
  return (2.0 * xi * uu + 2.0 * xj * (nn - uu - xi - xj)) / pair_norm();
}

double UsdDrift::prob_delta_down(Opinion i, Opinion j) const {
  return prob_delta_up(j, i);
}

double UsdDrift::expected_delta_change(Opinion i, Opinion j) const {
  const auto xi = static_cast<double>(x(i));
  const auto xj = static_cast<double>(x(j));
  const auto nn = static_cast<double>(n_);
  const auto uu = static_cast<double>(counts_[0]);
  return 2.0 * (xi - xj) * (2.0 * uu - nn + xi + xj) / pair_norm();
}

double UsdDrift::opinion_threshold(Opinion i) const {
  return (static_cast<double>(n_) - static_cast<double>(x(i))) / 2.0;
}

double UsdDrift::settle_point() const noexcept {
  const auto nn = static_cast<double>(n_);
  return nn / 2.0 - nn / (4.0 * static_cast<double>(k()));
}

}  // namespace ppsim
