#include "ppsim/analysis/initial.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ppsim/util/check.hpp"
#include "ppsim/util/random_variates.hpp"

namespace ppsim {

Count InitialConfig::population() const {
  return std::accumulate(opinion_counts.begin(), opinion_counts.end(), Count{0});
}

InitialConfig adversarial_configuration(Count n, std::size_t k, Count requested_bias) {
  PPSIM_CHECK(k >= 1, "need at least one opinion");
  PPSIM_CHECK(n >= static_cast<Count>(k), "need at least one agent per opinion");
  PPSIM_CHECK(requested_bias >= 0, "bias must be non-negative");

  if (k == 1) {
    return InitialConfig{{n}, 0};
  }

  // Minority level m = floor((n - bias) / k); the majority absorbs the
  // remainder, so the realised bias is n - k·m in [bias, bias + k).
  PPSIM_CHECK(requested_bias <= n - static_cast<Count>(k) + 1,
              "bias too large for the population");
  const Count m = (n - requested_bias) / static_cast<Count>(k);
  PPSIM_CHECK(m >= 1, "bias leaves no room for the minorities");
  const Count majority = n - static_cast<Count>(k - 1) * m;

  InitialConfig config;
  config.opinion_counts.assign(k, m);
  config.opinion_counts[0] = majority;
  config.bias = majority - m;
  PPSIM_CHECK(config.bias >= requested_bias, "internal: realised bias too small");
  PPSIM_CHECK(config.bias < requested_bias + static_cast<Count>(k),
              "internal: realised bias too large");
  return config;
}

InitialConfig figure1_configuration(Count n, std::size_t k) {
  PPSIM_CHECK(n >= 2, "population must have at least two agents");
  const auto bias = static_cast<Count>(
      std::ceil(std::sqrt(static_cast<double>(n) * std::log(static_cast<double>(n)))));
  return adversarial_configuration(n, k, bias);
}

InitialConfig balanced_configuration(Count n, std::size_t k) {
  PPSIM_CHECK(k >= 1, "need at least one opinion");
  PPSIM_CHECK(n >= static_cast<Count>(k), "need at least one agent per opinion");
  InitialConfig config;
  const Count base = n / static_cast<Count>(k);
  Count remainder = n % static_cast<Count>(k);
  config.opinion_counts.assign(k, base);
  for (std::size_t i = 0; i < k && remainder > 0; ++i, --remainder) {
    ++config.opinion_counts[i];
  }
  config.bias = config.opinion_counts[0] - config.opinion_counts.back();
  return config;
}

InitialConfig two_party_configuration(Count n, Count majority_count) {
  PPSIM_CHECK(n >= 2, "population must have at least two agents");
  PPSIM_CHECK(majority_count >= 0 && majority_count <= n,
              "majority count must be within the population");
  PPSIM_CHECK(2 * majority_count >= n,
              "opinion 0 must hold at least half the population");
  InitialConfig config;
  config.opinion_counts = {majority_count, n - majority_count};
  config.bias = 2 * majority_count - n;
  return config;
}

InitialConfig random_configuration(Count n, std::size_t k, Xoshiro256pp& rng) {
  PPSIM_CHECK(k >= 1, "need at least one opinion");
  PPSIM_CHECK(n >= static_cast<Count>(k), "need at least one agent per opinion");
  const std::vector<std::int64_t> weights(k, 1);
  std::vector<Count> counts = multinomial(rng, n, weights);
  std::sort(counts.begin(), counts.end(), std::greater<>());
  InitialConfig config;
  config.bias = counts.size() > 1 ? counts[0] - counts[1] : 0;
  config.opinion_counts = std::move(counts);
  return config;
}

}  // namespace ppsim
