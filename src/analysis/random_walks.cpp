#include "ppsim/analysis/random_walks.hpp"

#include "ppsim/util/check.hpp"

namespace ppsim {

namespace {

void check_rates(const WalkRates& r) {
  PPSIM_CHECK(r.p >= 0.0 && r.p <= 1.0, "p must be a probability");
  PPSIM_CHECK(r.q >= -r.p && r.q <= r.p, "q must lie in [-p, p]");
}

}  // namespace

LazyWalk::LazyWalk(double p, double q, std::uint64_t seed)
    : LazyWalk([p, q](std::int64_t) { return WalkRates{p, q}; }, seed) {}

LazyWalk::LazyWalk(RateFn rates, std::uint64_t seed)
    : rates_(std::move(rates)), rng_(seed) {
  PPSIM_CHECK(static_cast<bool>(rates_), "rate function must be callable");
}

void LazyWalk::step() {
  const WalkRates r = rates_(steps_);
  check_rates(r);
  const double u = rng_.canonical();
  if (u >= 1.0 - r.p) {
    // The walk moves; up with conditional probability (p+q)/(2p).
    position_ += (u < 1.0 - r.p + (r.p + r.q) / 2.0) ? +1 : -1;
  }
  ++steps_;
}

bool LazyWalk::run_until_level(std::int64_t level, std::int64_t max_steps) {
  PPSIM_CHECK(max_steps >= 0, "step budget must be non-negative");
  while (steps_ < max_steps) {
    if (position_ >= level) return true;
    step();
  }
  return position_ >= level;
}

CoupledLazyWalks::CoupledLazyWalks(LazyWalk::RateFn rates, double q_cap,
                                   std::uint64_t seed)
    : rates_(std::move(rates)), q_cap_(q_cap), rng_(seed) {
  PPSIM_CHECK(static_cast<bool>(rates_), "rate function must be callable");
  PPSIM_CHECK(q_cap >= 0.0, "the uniform drift cap q must be non-negative");
}

void CoupledLazyWalks::step() {
  // Exactly the four-interval construction from the paper's proof:
  //   r <= 1-p(t)                         : both stay
  //   .. <= 1-p(t) + (p(t)+q(t))/2        : both +1
  //   .. <= 1-p(t) + (p(t)+q)/2           : Y -1, Ỹ +1
  //   else                                : both -1
  const WalkRates r = rates_(steps_);
  check_rates(r);
  PPSIM_CHECK(r.q <= q_cap_, "rate q(t) exceeds the uniform cap q");
  const double u = rng_.canonical();
  const double stay = 1.0 - r.p;
  const double both_up = stay + (r.p + r.q) / 2.0;
  const double split = stay + (r.p + q_cap_) / 2.0;
  if (u <= stay) {
    // both stay
  } else if (u <= both_up) {
    ++y_;
    ++y_tilde_;
  } else if (u <= split) {
    --y_;
    ++y_tilde_;
  } else {
    --y_;
    --y_tilde_;
  }
  ++steps_;
}

EscapeEstimate estimate_escape_probability(double p, double q, std::int64_t level,
                                           std::int64_t steps, std::int64_t walks,
                                           std::uint64_t seed) {
  PPSIM_CHECK(level > 0, "escape level must be positive");
  PPSIM_CHECK(walks > 0, "need at least one walk");
  EscapeEstimate est;
  est.walks = walks;
  SplitMix64 seeds(seed);
  for (std::int64_t w = 0; w < walks; ++w) {
    LazyWalk walk(p, q, seeds.next());
    if (walk.run_until_level(level, steps)) ++est.escapes;
  }
  est.probability = static_cast<double>(est.escapes) / static_cast<double>(est.walks);
  return est;
}

}  // namespace ppsim
