#include "ppsim/cache/cell_cache.hpp"

#include <filesystem>
#include <fstream>

#include "ppsim/io/trajectory.hpp"
#include "ppsim/io/wire.hpp"
#include "ppsim/util/check.hpp"
#include "ppsim/util/json.hpp"

namespace ppsim::cache {

namespace {

constexpr std::string_view kMagic = "PPCELL1\n";

}  // namespace

std::string canonical_cell_key(const SweepSpec& spec, std::size_t cell_index,
                               std::string_view trial_fn_id) {
  PPSIM_CHECK(cell_index < spec.cells.size(),
              "canonical_cell_key: cell index out of range");
  const SweepCell& cell = spec.cells[cell_index];
  JsonObject params;
  for (const auto& [key, value] : cell.params) params.field(key, value);
  JsonObject cell_obj;
  cell_obj.field("n", cell.n)
      .field("k", static_cast<std::int64_t>(cell.k))
      .field("bias", cell.bias)
      .field("engine", to_string(cell.engine))
      .field("protocol", cell.protocol)
      .field("round_divisor", cell.round_divisor)
      .field("tau_epsilon", cell.tau_epsilon)
      .field("kernel", kernels::to_string(cell.kernel.value_or(spec.kernel)))
      .field("params", params);
  JsonObject stopping;
  stopping.field("mode", spec.stopping.adaptive ? "auto" : "fixed");
  if (spec.stopping.adaptive) {
    stopping.field("rel_err", spec.stopping.rel_err)
        .field("confidence", spec.stopping.confidence)
        .field("min_trials",
               static_cast<std::int64_t>(spec.stopping.min_trials))
        .field("metric", spec.stopping.metric);
  }
  JsonObject key;
  key.field("build", std::string(io::kBuildVersion))
      .field("fn", std::string(trial_fn_id))
      .field("cell_index", static_cast<std::int64_t>(cell_index))
      .field("trials", static_cast<std::int64_t>(spec.trials))
      .field("base_seed", static_cast<std::int64_t>(spec.base_seed))
      .field("stopping", stopping)
      .field("cell", cell_obj);
  return key.str();
}

std::string cell_key_hash(std::string_view canonical_key) {
  const std::uint64_t h = io::fnv1a(canonical_key);
  constexpr char hex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(i)] = hex[(h >> (60 - 4 * i)) & 0xf];
  }
  return out;
}

CellCache::CellCache(Options options) : options_(std::move(options)) {
  PPSIM_CHECK(options_.memory_capacity >= 1,
              "cell cache needs a memory capacity of at least one entry");
  if (!options_.disk_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.disk_dir, ec);
    PPSIM_CHECK(!ec, "cannot create cell cache directory " + options_.disk_dir +
                         ": " + ec.message());
  }
}

std::string CellCache::disk_path(std::string_view canonical_key) const {
  return options_.disk_dir + "/" + cell_key_hash(canonical_key) + ".ppcell";
}

void CellCache::lru_unlink(std::size_t i) {
  Entry& e = entries_[i];
  if (e.prev != npos) {
    entries_[e.prev].next = e.next;
  } else {
    lru_head_ = e.next;
  }
  if (e.next != npos) {
    entries_[e.next].prev = e.prev;
  } else {
    lru_tail_ = e.prev;
  }
  e.prev = e.next = npos;
}

void CellCache::lru_push_front(std::size_t i) {
  Entry& e = entries_[i];
  e.prev = npos;
  e.next = lru_head_;
  if (lru_head_ != npos) entries_[lru_head_].prev = i;
  lru_head_ = i;
  if (lru_tail_ == npos) lru_tail_ = i;
}

void CellCache::memory_insert(const std::string& key,
                              const CachedCellData& data) {
  const auto it = index_.find(key);
  if (it != index_.end()) {
    entries_[it->second].data = data;
    lru_unlink(it->second);
    lru_push_front(it->second);
    return;
  }
  if (index_.size() >= options_.memory_capacity) {
    const std::size_t victim = lru_tail_;
    lru_unlink(victim);
    index_.erase(entries_[victim].key);
    entries_[victim] = Entry{};
    free_.push_back(victim);
    ++stats_.evictions;
  }
  std::size_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = entries_.size();
    entries_.emplace_back();
  }
  entries_[slot].key = key;
  entries_[slot].data = data;
  lru_push_front(slot);
  index_.emplace(key, slot);
}

std::optional<CachedCellData> CellCache::lookup(
    const std::string& canonical_key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(canonical_key);
  if (it != index_.end()) {
    lru_unlink(it->second);
    lru_push_front(it->second);
    ++stats_.hits;
    ++stats_.memory_hits;
    return entries_[it->second].data;
  }
  if (!options_.disk_dir.empty()) {
    std::optional<CachedCellData> loaded = disk_load(canonical_key);
    if (loaded.has_value()) {
      memory_insert(canonical_key, *loaded);  // promote
      ++stats_.hits;
      ++stats_.disk_hits;
      return loaded;
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

void CellCache::insert(const std::string& canonical_key,
                       const CachedCellData& data) {
  PPSIM_CHECK(data.trials.size() == data.trials_run &&
                  data.trials_run <= data.trials_requested,
              "cell cache insert: inconsistent trial counts");
  const std::lock_guard<std::mutex> lock(mutex_);
  memory_insert(canonical_key, data);
  ++stats_.insertions;
  if (!options_.disk_dir.empty()) disk_store(canonical_key, data);
}

CellCacheStats CellCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::optional<CachedCellData> CellCache::disk_load(
    const std::string& canonical_key) {
  // Disk records are untrusted input (another build, a torn write, bit
  // rot): every anomaly — bad magic, checksum mismatch, malformed body,
  // or a hash collision surfacing as a key mismatch — degrades to a miss.
  std::ifstream in(disk_path(canonical_key), std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  const std::size_t header = kMagic.size();
  if (raw.size() < header + 8 ||
      std::string_view(raw.data(), header) != kMagic) {
    return std::nullopt;
  }
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(raw.data());
  const std::size_t body_len = raw.size() - header - 8;
  std::uint64_t stored_sum = 0;
  for (int i = 0; i < 8; ++i) {
    stored_sum |= static_cast<std::uint64_t>(bytes[header + body_len +
                                                   static_cast<std::size_t>(i)])
                  << (8 * i);
  }
  if (io::fnv1a(bytes + header, body_len) != stored_sum) return std::nullopt;

  io::ByteReader reader(bytes + header, body_len);
  if (reader.string() != canonical_key) return std::nullopt;
  CachedCellData data;
  data.trials_requested = static_cast<std::size_t>(reader.varint());
  data.trials_run = static_cast<std::size_t>(reader.varint());
  const std::uint64_t trial_count = reader.varint();
  if (!reader.ok() || trial_count != data.trials_run ||
      data.trials_run > data.trials_requested) {
    return std::nullopt;
  }
  data.trials.resize(static_cast<std::size_t>(trial_count));
  for (SweepMetrics& trial : data.trials) {
    const std::uint64_t metric_count = reader.varint();
    if (!reader.ok() || metric_count > reader.remaining()) return std::nullopt;
    trial.reserve(static_cast<std::size_t>(metric_count));
    for (std::uint64_t m = 0; m < metric_count; ++m) {
      std::string name = reader.string();
      const double value = reader.f64();
      trial.emplace_back(std::move(name), value);
    }
  }
  if (!reader.ok() || !reader.at_end()) return std::nullopt;
  return data;
}

void CellCache::disk_store(const std::string& canonical_key,
                           const CachedCellData& data) {
  io::Bytes body;
  io::put_string(body, canonical_key);
  io::put_varint(body, data.trials_requested);
  io::put_varint(body, data.trials_run);
  io::put_varint(body, data.trials.size());
  for (const SweepMetrics& trial : data.trials) {
    io::put_varint(body, trial.size());
    for (const auto& [name, value] : trial) {
      io::put_string(body, name);
      io::put_f64(body, value);
    }
  }
  const std::string path = disk_path(canonical_key);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    PPSIM_CHECK(out.good(), "cannot open cell cache file " + tmp);
    out.write(kMagic.data(), static_cast<std::streamsize>(kMagic.size()));
    out.write(reinterpret_cast<const char*>(body.data()),
              static_cast<std::streamsize>(body.size()));
    io::Bytes sum;
    io::put_fixed64(sum, io::fnv1a(body));
    out.write(reinterpret_cast<const char*>(sum.data()),
              static_cast<std::streamsize>(sum.size()));
    PPSIM_CHECK(out.good(), "failed writing cell cache file " + tmp);
  }
  // Atomic publish: a reader (this process or another sharing the
  // directory) sees either the old record or the complete new one.
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  PPSIM_CHECK(!ec, "cannot publish cell cache file " + path + ": " +
                       ec.message());
}

}  // namespace ppsim::cache
