#include "ppsim/util/json.hpp"

#include <charconv>
#include <cmath>
#include <fstream>

#include "ppsim/util/check.hpp"

namespace ppsim {

std::string JsonObject::escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // RFC 8259: all other control characters need \u00XX form.
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonObject::render_double(double v) {
  // Canonical emission: equal doubles must render equally and *distinct*
  // doubles must render distinctly, on every platform — sweep reports are
  // byte-compared across runs and the cell cache keys on rendered spec
  // strings, so a libc-dependent printf (or a fixed 12-digit precision that
  // conflates neighbouring doubles) would silently break both. Integral
  // values inside the exact-integer range render as plain digits (keeps
  // interaction counts readable); everything else uses std::to_chars'
  // shortest round-trip form, which is locale- and libc-independent.
  constexpr double kExactIntegerBound = 9007199254740992.0;  // 2^53
  if (std::isfinite(v) && v == std::floor(v) &&
      std::fabs(v) < kExactIntegerBound) {
    if (v == 0.0 && std::signbit(v)) return "-0";
    return std::to_string(static_cast<long long>(v));
  }
  char buf[64];
  const std::to_chars_result res =
      std::to_chars(buf, buf + sizeof buf, v, std::chars_format::general);
  return std::string(buf, res.ptr);
}

JsonObject& JsonObject::field(const std::string& key, const std::string& value) {
  return raw(key, '"' + escape(value) + '"');
}

JsonObject& JsonObject::field(const std::string& key, std::int64_t value) {
  return raw(key, std::to_string(value));
}

JsonObject& JsonObject::field(const std::string& key, double value) {
  return raw(key, render_double(value));
}

JsonObject& JsonObject::field(const std::string& key, bool value) {
  return raw(key, value ? "true" : "false");
}

JsonObject& JsonObject::field(const std::string& key, const JsonObject& value) {
  return raw(key, value.str());
}

JsonObject& JsonObject::field(const std::string& key,
                              const std::vector<JsonObject>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i].str();
  }
  return raw(key, out + "]");
}

JsonObject& JsonObject::field(const std::string& key,
                              const std::vector<double>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += render_double(items[i]);
  }
  return raw(key, out + "]");
}

JsonObject& JsonObject::field_json(const std::string& key,
                                   const std::string& rendered_json) {
  return raw(key, rendered_json);
}

void JsonObject::write_file(const std::string& path) const {
  std::ofstream out(path);
  PPSIM_CHECK(out.good(), "cannot open json output file " + path);
  out << str() << "\n";
}

JsonObject& JsonObject::raw(const std::string& key, const std::string& rendered) {
  if (!body_.empty()) body_ += ", ";
  body_ += '"' + escape(key) + "\": " + rendered;
  return *this;
}

}  // namespace ppsim
