#include "ppsim/util/json.hpp"

#include <fstream>
#include <sstream>

#include "ppsim/util/check.hpp"

namespace ppsim {

std::string JsonObject::escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // RFC 8259: all other control characters need \u00XX form.
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonObject::render_double(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

JsonObject& JsonObject::field(const std::string& key, const std::string& value) {
  return raw(key, '"' + escape(value) + '"');
}

JsonObject& JsonObject::field(const std::string& key, std::int64_t value) {
  return raw(key, std::to_string(value));
}

JsonObject& JsonObject::field(const std::string& key, double value) {
  return raw(key, render_double(value));
}

JsonObject& JsonObject::field(const std::string& key, bool value) {
  return raw(key, value ? "true" : "false");
}

JsonObject& JsonObject::field(const std::string& key, const JsonObject& value) {
  return raw(key, value.str());
}

JsonObject& JsonObject::field(const std::string& key,
                              const std::vector<JsonObject>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i].str();
  }
  return raw(key, out + "]");
}

JsonObject& JsonObject::field(const std::string& key,
                              const std::vector<double>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += render_double(items[i]);
  }
  return raw(key, out + "]");
}

JsonObject& JsonObject::field_json(const std::string& key,
                                   const std::string& rendered_json) {
  return raw(key, rendered_json);
}

void JsonObject::write_file(const std::string& path) const {
  std::ofstream out(path);
  PPSIM_CHECK(out.good(), "cannot open json output file " + path);
  out << str() << "\n";
}

JsonObject& JsonObject::raw(const std::string& key, const std::string& rendered) {
  if (!body_.empty()) body_ += ", ";
  body_ += '"' + escape(key) + "\": " + rendered;
  return *this;
}

}  // namespace ppsim
