#include "ppsim/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "ppsim/util/check.hpp"

namespace ppsim {

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string format_sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

std::string format_int(std::int64_t v) { return std::to_string(v); }

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  PPSIM_CHECK(!columns_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  PPSIM_CHECK(cells.size() == columns_.size(), "row width must match header");
  rows_.push_back(std::move(cells));
}

Table::RowBuilder& Table::RowBuilder::cell(std::string v) {
  cells_.push_back(std::move(v));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(std::int64_t v) {
  cells_.push_back(format_int(v));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(double v, int precision) {
  cells_.push_back(format_double(v, precision));
  return *this;
}

void Table::RowBuilder::done() { table_.add_row(std::move(cells_)); }

void Table::write_tsv(std::ostream& os) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << columns_[c] << (c + 1 < columns_.size() ? '\t' : '\n');
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << (c + 1 < row.size() ? '\t' : '\n');
    }
  }
}

void Table::write_pretty(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto line = [&](char fill, char sep) {
    os << sep;
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << std::string(width[c] + 2, fill) << sep;
    }
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(width[c] - cells[c].size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  line('-', '+');
  emit(columns_);
  line('-', '+');
  for (const auto& row : rows_) emit(row);
  line('-', '+');
}

}  // namespace ppsim
