#include "ppsim/util/random_variates.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>

#include "ppsim/util/check.hpp"

namespace ppsim {

std::int64_t binomial(Xoshiro256pp& rng, std::int64_t trials, double p) {
  PPSIM_CHECK(trials >= 0, "binomial trials must be non-negative");
  PPSIM_CHECK(!std::isnan(p), "binomial p must not be NaN");
  if (trials == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  if (p == 0.0) return 0;
  if (p == 1.0) return trials;
  std::binomial_distribution<std::int64_t> dist(trials, p);
  return dist(rng);
}

void multinomial_into(Xoshiro256pp& rng, std::int64_t trials,
                      const std::vector<double>& weights,
                      std::vector<std::int64_t>& out) {
  PPSIM_CHECK(trials >= 0, "multinomial trials must be non-negative");
  double total = 0.0;
  for (const double w : weights) {
    PPSIM_CHECK(w >= 0.0, "multinomial weights must be non-negative");
    total += w;
  }
  PPSIM_CHECK(trials == 0 || total > 0.0,
              "multinomial needs positive total weight to place trials");

  out.assign(weights.size(), 0);
  std::int64_t remaining = trials;
  double mass = total;
  for (std::size_t i = 0; i + 1 < weights.size() && remaining > 0; ++i) {
    // Conditional law of bucket i given what earlier buckets consumed is
    // Binomial(remaining, w_i / remaining-mass); this chain is exact.
    const double p = mass > 0.0 ? weights[i] / mass : 0.0;
    const std::int64_t draw = binomial(rng, remaining, p);
    out[i] = draw;
    remaining -= draw;
    mass -= weights[i];
  }
  if (!weights.empty()) out.back() += remaining;
}

std::vector<std::int64_t> multinomial(Xoshiro256pp& rng, std::int64_t trials,
                                      const std::vector<double>& weights) {
  std::vector<std::int64_t> out;
  multinomial_into(rng, trials, weights, out);
  return out;
}

std::vector<std::int64_t> multinomial(Xoshiro256pp& rng, std::int64_t trials,
                                      const std::vector<std::int64_t>& weights) {
  std::vector<double> w(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    PPSIM_CHECK(weights[i] >= 0, "multinomial weights must be non-negative");
    w[i] = static_cast<double>(weights[i]);
  }
  return multinomial(rng, trials, w);
}

std::int64_t hypergeometric(Xoshiro256pp& rng, std::int64_t successes,
                            std::int64_t failures, std::int64_t draws) {
  PPSIM_CHECK(successes >= 0 && failures >= 0, "pool sizes must be non-negative");
  PPSIM_CHECK(draws >= 0 && draws <= successes + failures,
              "draws must not exceed the pool");

  // Symmetry reductions keep the inverse-CDF walk short.
  const std::int64_t pool = successes + failures;
  if (draws == 0 || successes == 0) return 0;
  if (failures == 0) return draws;
  if (draws > pool / 2) {
    // Drawing d is the complement of leaving pool-d behind.
    return successes - hypergeometric(rng, successes, failures, pool - draws);
  }

  // Inverse CDF from k = max(0, draws - failures) upward using the ratio
  //   P(k+1)/P(k) = (successes-k)(draws-k) / ((k+1)(failures-draws+k+1)).
  const std::int64_t lo = std::max<std::int64_t>(0, draws - failures);
  const std::int64_t hi = std::min(successes, draws);

  // log P(lo) via lgamma to avoid underflow for large pools.
  auto lchoose = [](std::int64_t a, std::int64_t b) {
    return std::lgamma(static_cast<double>(a + 1)) -
           std::lgamma(static_cast<double>(b + 1)) -
           std::lgamma(static_cast<double>(a - b + 1));
  };
  double logp = lchoose(successes, lo) + lchoose(failures, draws - lo) - lchoose(pool, draws);
  double p = std::exp(logp);
  double u = rng.canonical();
  std::int64_t k = lo;
  while (k < hi && u >= p) {
    u -= p;
    const double ratio =
        (static_cast<double>(successes - k) * static_cast<double>(draws - k)) /
        (static_cast<double>(k + 1) * static_cast<double>(failures - draws + k + 1));
    p *= ratio;
    ++k;
  }
  return k;
}

}  // namespace ppsim
