#include "ppsim/util/json_parse.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

#include "ppsim/util/check.hpp"

namespace ppsim {

namespace detail {

/// Strict RFC 8259 recursive descent. Befriended by JsonValue so the
/// builders can fill the private variant state directly.
struct JsonParser {
  std::string_view text;
  std::size_t pos = 0;

  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw CheckFailure("json parse error at byte " + std::to_string(pos) +
                       ": " + what);
  }

  bool at_end() const noexcept { return pos >= text.size(); }
  char peek() const noexcept { return at_end() ? '\0' : text[pos]; }

  void skip_ws() noexcept {
    while (!at_end() && (text[pos] == ' ' || text[pos] == '\t' ||
                         text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) noexcept {
    if (peek() != c) return false;
    ++pos;
    return true;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::uint32_t hex4() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
      ++pos;
    }
    return v;
  }

  std::string string_body() {
    expect('"');
    std::string out;
    for (;;) {
      if (at_end()) fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) fail("unterminated escape");
      const char esc = text[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (!consume('\\') || !consume('u')) fail("lone high surrogate");
            const std::uint32_t lo = hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  double number() {
    const std::size_t start = pos;
    // Validate the RFC 8259 grammar by hand (from_chars/strtod accept hex,
    // inf, nan and leading '+', none of which are JSON), then convert the
    // validated span.
    consume('-');
    if (consume('0')) {
      // A leading zero takes no further integer digits.
    } else {
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("invalid number");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    }
    if (consume('.')) {
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digits required after '.'");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos;
      if (peek() == '+' || peek() == '-') ++pos;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digits required in exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    }
    double value = 0.0;
    const char* first = text.data() + start;
    const char* last = text.data() + pos;
    const std::from_chars_result res = std::from_chars(first, last, value);
    if (res.ec == std::errc::result_out_of_range) {
      // Overflow to ±inf / underflow to 0, as strtod would; JSON puts no
      // bound on magnitude, so accept the clamped value instead of failing.
      value = std::strtod(std::string(first, last).c_str(), nullptr);
    } else if (res.ec != std::errc{} || res.ptr != last) {
      fail("invalid number");
    }
    return value;
  }

  bool consume_keyword(std::string_view kw) noexcept {
    if (text.substr(pos, kw.size()) != kw) return false;
    pos += kw.size();
    return true;
  }

  JsonValue value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    JsonValue out;
    switch (peek()) {
      case '{': {
        ++pos;
        out.type_ = JsonValue::Type::kObject;
        skip_ws();
        if (consume('}')) return out;
        for (;;) {
          skip_ws();
          std::string key = string_body();
          for (const auto& [existing, member] : out.members_) {
            (void)member;
            if (existing == key) fail("duplicate object key \"" + key + "\"");
          }
          skip_ws();
          expect(':');
          out.members_.emplace_back(std::move(key), value(depth + 1));
          skip_ws();
          if (consume(',')) continue;
          expect('}');
          return out;
        }
      }
      case '[': {
        ++pos;
        out.type_ = JsonValue::Type::kArray;
        skip_ws();
        if (consume(']')) return out;
        for (;;) {
          out.items_.push_back(value(depth + 1));
          skip_ws();
          if (consume(',')) continue;
          expect(']');
          return out;
        }
      }
      case '"':
        out.type_ = JsonValue::Type::kString;
        out.string_ = string_body();
        return out;
      case 't':
        if (!consume_keyword("true")) fail("invalid literal");
        out.type_ = JsonValue::Type::kBool;
        out.bool_ = true;
        return out;
      case 'f':
        if (!consume_keyword("false")) fail("invalid literal");
        out.type_ = JsonValue::Type::kBool;
        out.bool_ = false;
        return out;
      case 'n':
        if (!consume_keyword("null")) fail("invalid literal");
        out.type_ = JsonValue::Type::kNull;
        return out;
      default:
        out.type_ = JsonValue::Type::kNumber;
        out.number_ = number();
        return out;
    }
  }
};

}  // namespace detail

JsonValue JsonValue::parse(std::string_view text) {
  detail::JsonParser p{text};
  JsonValue out = p.value(0);
  p.skip_ws();
  if (!p.at_end()) p.fail("trailing bytes after the JSON value");
  return out;
}

namespace {

[[noreturn]] void type_error(const char* wanted, JsonValue::Type got) {
  static constexpr const char* kNames[] = {"null",   "bool",  "number",
                                           "string", "array", "object"};
  throw CheckFailure(std::string("json value is ") +
                     kNames[static_cast<int>(got)] + ", wanted " + wanted);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

std::int64_t JsonValue::as_int() const {
  const double v = as_number();
  constexpr double kBound = 9223372036854775808.0;  // 2^63
  PPSIM_CHECK(v == static_cast<double>(static_cast<std::int64_t>(v)) &&
                  v >= -kBound && v < kBound,
              "json number is not an exact int64");
  return static_cast<std::int64_t>(v);
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (type_ != Type::kObject) type_error("object", type_);
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [name, value] : members()) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  PPSIM_CHECK(v != nullptr, "missing json member \"" + key + "\"");
  return *v;
}

std::string JsonValue::get_string(const std::string& key,
                                  const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_string();
}

double JsonValue::get_number(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_number();
}

std::int64_t JsonValue::get_int(const std::string& key,
                                std::int64_t fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_int();
}

bool JsonValue::get_bool(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->as_bool();
}

}  // namespace ppsim
