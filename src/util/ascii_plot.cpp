#include "ppsim/util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "ppsim/util/check.hpp"
#include "ppsim/util/table.hpp"

namespace ppsim {

AsciiPlot::AsciiPlot(std::size_t width, std::size_t height)
    : width_(width), height_(height) {
  PPSIM_CHECK(width >= 16 && height >= 4, "plot canvas too small");
}

void AsciiPlot::add_series(const std::string& name, char glyph,
                           const std::vector<double>& x, const std::vector<double>& y) {
  PPSIM_CHECK(!x.empty() && x.size() == y.size(), "series needs matching x/y");
  series_.push_back(Series{name, glyph, x, y});
}

void AsciiPlot::add_hline(const std::string& name, char glyph, double value) {
  hlines_.push_back(HLine{name, glyph, value});
}

void AsciiPlot::set_labels(std::string x_label, std::string y_label) {
  x_label_ = std::move(x_label);
  y_label_ = std::move(y_label);
}

std::string AsciiPlot::render() const {
  PPSIM_CHECK(!series_.empty(), "nothing to plot");

  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin;
  double ymin = std::numeric_limits<double>::infinity();
  double ymax = -ymin;
  for (const auto& s : series_) {
    for (const double v : s.x) {
      xmin = std::min(xmin, v);
      xmax = std::max(xmax, v);
    }
    for (const double v : s.y) {
      ymin = std::min(ymin, v);
      ymax = std::max(ymax, v);
    }
  }
  for (const auto& h : hlines_) {
    ymin = std::min(ymin, h.value);
    ymax = std::max(ymax, h.value);
  }
  if (xmax == xmin) xmax = xmin + 1.0;
  if (ymax == ymin) ymax = ymin + 1.0;

  std::vector<std::string> canvas(height_, std::string(width_, ' '));
  auto to_col = [&](double x) {
    const double f = (x - xmin) / (xmax - xmin);
    const auto c = static_cast<std::size_t>(std::lround(f * static_cast<double>(width_ - 1)));
    return std::min(c, width_ - 1);
  };
  auto to_row = [&](double y) {
    const double f = (y - ymin) / (ymax - ymin);
    const auto r = static_cast<std::size_t>(std::lround(f * static_cast<double>(height_ - 1)));
    return height_ - 1 - std::min(r, height_ - 1);  // row 0 is the top
  };

  for (const auto& h : hlines_) {
    const std::size_t r = to_row(h.value);
    for (std::size_t c = 0; c < width_; ++c) {
      if (canvas[r][c] == ' ') canvas[r][c] = h.glyph;
    }
  }
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      canvas[to_row(s.y[i])][to_col(s.x[i])] = s.glyph;
    }
  }

  std::ostringstream os;
  os << y_label_ << " [" << format_sci(ymin, 2) << ", " << format_sci(ymax, 2) << "]\n";
  for (const auto& line : canvas) os << '|' << line << "|\n";
  os << '+' << std::string(width_, '-') << "+\n";
  os << x_label_ << " [" << format_double(xmin, 2) << ", " << format_double(xmax, 2)
     << "]\n";
  os << "legend:";
  for (const auto& s : series_) os << "  '" << s.glyph << "' " << s.name;
  for (const auto& h : hlines_) os << "  '" << h.glyph << "' " << h.name;
  os << '\n';
  return os.str();
}

}  // namespace ppsim
