#include "ppsim/util/alias_table.hpp"

#include <numeric>

#include "ppsim/util/check.hpp"

namespace ppsim {

AliasTable::AliasTable(const std::vector<double>& weights) {
  PPSIM_CHECK(!weights.empty(), "alias table needs at least one category");
  double sum = 0.0;
  for (const double w : weights) {
    PPSIM_CHECK(w >= 0.0, "alias table weights must be non-negative");
    sum += w;
  }
  PPSIM_CHECK(sum > 0.0, "alias table weights must not all be zero");

  const std::size_t s = weights.size();
  normalized_.resize(s);
  for (std::size_t i = 0; i < s; ++i) normalized_[i] = weights[i] / sum;

  prob_.assign(s, 0.0);
  alias_.assign(s, 0);

  // Vose's stable partition into columns below/above average weight.
  std::vector<double> scaled(s);
  for (std::size_t i = 0; i < s; ++i) scaled[i] = normalized_[i] * static_cast<double>(s);

  std::vector<std::size_t> small, large;
  small.reserve(s);
  large.reserve(s);
  for (std::size_t i = 0; i < s; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }

  while (!small.empty() && !large.empty()) {
    const std::size_t lo = small.back();
    small.pop_back();
    const std::size_t hi = large.back();
    prob_[lo] = scaled[lo];
    alias_[lo] = hi;
    scaled[hi] = (scaled[hi] + scaled[lo]) - 1.0;
    if (scaled[hi] < 1.0) {
      large.pop_back();
      small.push_back(hi);
    }
  }
  // Residual columns carry probability 1 (floating-point leftovers).
  for (const std::size_t i : large) prob_[i] = 1.0;
  for (const std::size_t i : small) prob_[i] = 1.0;
}

double AliasTable::probability(std::size_t i) const {
  PPSIM_CHECK(i < normalized_.size(), "category out of range");
  return normalized_[i];
}

}  // namespace ppsim
