#include "ppsim/util/rng.hpp"

namespace ppsim {

namespace {

// Shared driver for jump() / long_jump(): both are linear maps of the state
// implemented as a GF(2) polynomial evaluated by 256 single-step advances
// (Blackman & Vigna's reference implementation).
template <typename Step>
std::array<std::uint64_t, 4> polynomial_jump(
    const std::array<std::uint64_t, 4>& poly,
    const std::array<std::uint64_t, 4>& state, Step&& step) {
  std::array<std::uint64_t, 4> current = state;
  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t word : poly) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (std::uint64_t{1} << bit)) {
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] ^= current[i];
      }
      step(current);
    }
  }
  return acc;
}

void advance_one(std::array<std::uint64_t, 4>& s) noexcept {
  // One xoshiro256++ state transition (the output computation is irrelevant
  // for jumping; only the linear state map matters).
  const std::uint64_t t = s[1] << 17;
  s[2] ^= s[0];
  s[3] ^= s[1];
  s[1] ^= s[2];
  s[0] ^= s[3];
  s[2] ^= t;
  s[3] = (s[3] << 45) | (s[3] >> 19);
}

}  // namespace

void Xoshiro256pp::jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180ec6d33cfd0abaull, 0xd5a61266f0c9392cull,
      0xa9582618e03fc9aaull, 0x39abdc4529b1661cull};
  state_ = polynomial_jump(kJump, state_, advance_one);
}

void Xoshiro256pp::long_jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kLongJump = {
      0x76e15d3efefdcbbfull, 0xc5004e441c522fb3ull,
      0x77710069854ee241ull, 0x39109bb02acbe635ull};
  state_ = polynomial_jump(kLongJump, state_, advance_one);
}

Xoshiro256pp Xoshiro256pp::stream(std::uint64_t index) const noexcept {
  // O(1) derivation, independent of `index` (the pre-PR3 implementation
  // chained `index + 1` jump() calls, making sweep setup quadratic in the
  // trial count; the outputs deliberately changed — see rng_test for the
  // locked replacements).
  //
  // SplitMix64's first output is a bijection of its seed, so distinct
  // indices are guaranteed to perturb word 0 differently: streams for
  // distinct indices start from distinct states. long_jump() (a bijection)
  // then moves the derived state 2^192 draws away from the perturbed point,
  // decorrelating it from the base generator's neighbourhood. Overlap
  // between any two streams within 2^128 draws is not structurally excluded
  // (as chained jumps would) but has probability ~2^-128 per pair — far
  // below any physical failure rate.
  Xoshiro256pp out = *this;
  SplitMix64 sm(index);
  bool nonzero = false;
  for (auto& w : out.state_) {
    w ^= sm.next();
    nonzero = nonzero || w != 0;
  }
  if (!nonzero) out.state_[3] = 0x9e3779b97f4a7c15ull;  // xoshiro forbids 0
  out.long_jump();
  return out;
}

std::uint64_t Xoshiro256pp::bounded(std::uint64_t bound) noexcept {
  // Lemire's multiply-shift with rejection of the biased low region.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace ppsim
