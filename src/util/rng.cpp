#include "ppsim/util/rng.hpp"

namespace ppsim {

void Xoshiro256pp::jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180ec6d33cfd0abaull, 0xd5a61266f0c9392cull,
      0xa9582618e03fc9aaull, 0x39abdc4529b1661cull};

  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (std::uint64_t{1} << bit)) {
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] ^= state_[i];
      }
      (*this)();
    }
  }
  state_ = acc;
}

Xoshiro256pp Xoshiro256pp::stream(std::uint64_t index) const noexcept {
  Xoshiro256pp copy = *this;
  for (std::uint64_t i = 0; i <= index; ++i) copy.jump();
  return copy;
}

std::uint64_t Xoshiro256pp::bounded(std::uint64_t bound) noexcept {
  // Lemire's multiply-shift with rejection of the biased low region.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace ppsim
