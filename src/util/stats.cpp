#include "ppsim/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "ppsim/util/check.hpp"

namespace ppsim {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sem() const noexcept {
  return count_ > 1 ? stddev() / std::sqrt(static_cast<double>(count_)) : 0.0;
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  PPSIM_CHECK(!sorted.empty(), "quantile of empty sample");
  PPSIM_CHECK(q >= 0.0 && q <= 1.0, "quantile level must be in [0,1]");
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Summary summarize(std::vector<double> values) {
  PPSIM_CHECK(!values.empty(), "summarize needs at least one observation");
  std::sort(values.begin(), values.end());
  RunningStats rs;
  for (const double v : values) rs.add(v);
  Summary s;
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = values.front();
  s.p25 = quantile_sorted(values, 0.25);
  s.median = quantile_sorted(values, 0.50);
  s.p75 = quantile_sorted(values, 0.75);
  s.max = values.back();
  return s;
}

double chi_square_statistic(const std::vector<std::int64_t>& observed,
                            const std::vector<double>& expected) {
  PPSIM_CHECK(observed.size() == expected.size(), "bucket count mismatch");
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (expected[i] == 0.0) {
      PPSIM_CHECK(observed[i] == 0, "observed mass in zero-expectation bucket");
      continue;
    }
    const double diff = static_cast<double>(observed[i]) - expected[i];
    stat += diff * diff / expected[i];
  }
  return stat;
}

namespace {

/// Regularised lower incomplete gamma P(a, x), series + continued fraction
/// (Numerical Recipes style; both branches converge fast for our use).
double gamma_p(double a, double x) {
  PPSIM_CHECK(a > 0.0 && x >= 0.0, "gamma_p domain");
  if (x == 0.0) return 0.0;
  const double lg = std::lgamma(a);
  if (x < a + 1.0) {
    // Series representation.
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int i = 0; i < 500; ++i) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::fabs(del) < std::fabs(sum) * 1e-15) break;
    }
    return sum * std::exp(-x + a * std::log(x) - lg);
  }
  // Continued fraction for Q(a, x); P = 1 - Q.
  const double tiny = std::numeric_limits<double>::min() / 1e-30;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  const double q = std::exp(-x + a * std::log(x) - lg) * h;
  return 1.0 - q;
}

}  // namespace

double chi_square_sf(double statistic, int dof) {
  PPSIM_CHECK(dof > 0, "chi-square needs positive degrees of freedom");
  PPSIM_CHECK(statistic >= 0.0, "chi-square statistic must be non-negative");
  return 1.0 - gamma_p(static_cast<double>(dof) / 2.0, statistic / 2.0);
}

LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y) {
  PPSIM_CHECK(x.size() == y.size(), "x/y size mismatch");
  PPSIM_CHECK(x.size() >= 2, "linear fit needs at least two points");
  const auto n = static_cast<double>(x.size());
  const double mx = std::accumulate(x.begin(), x.end(), 0.0) / n;
  const double my = std::accumulate(y.begin(), y.end(), 0.0) / n;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
    syy += (y[i] - my) * (y[i] - my);
  }
  PPSIM_CHECK(sxx > 0.0, "linear fit needs varying x");
  LinearFit f;
  f.slope = sxy / sxx;
  f.intercept = my - f.slope * mx;
  f.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return f;
}

ProportionalFit proportional_fit(const std::vector<double>& x,
                                 const std::vector<double>& y) {
  PPSIM_CHECK(x.size() == y.size(), "x/y size mismatch");
  PPSIM_CHECK(!x.empty(), "proportional fit needs at least one point");
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  PPSIM_CHECK(sxx > 0.0, "proportional fit needs nonzero x");
  ProportionalFit f;
  f.slope = sxy / sxx;
  // R^2 about the mean of y, consistent with linear_fit.
  const auto n = static_cast<double>(y.size());
  const double my = std::accumulate(y.begin(), y.end(), 0.0) / n;
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = y[i] - f.slope * x[i];
    ss_res += r * r;
    ss_tot += (y[i] - my) * (y[i] - my);
  }
  f.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return f;
}

Interval bootstrap_mean_ci(const std::vector<double>& values, double confidence,
                           int resamples, Xoshiro256pp& rng) {
  PPSIM_CHECK(!values.empty(), "bootstrap of empty sample");
  PPSIM_CHECK(confidence > 0.0 && confidence < 1.0, "confidence must be in (0,1)");
  PPSIM_CHECK(resamples > 0, "need at least one resample");
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      sum += values[static_cast<std::size_t>(rng.bounded(values.size()))];
    }
    means.push_back(sum / static_cast<double>(values.size()));
  }
  std::sort(means.begin(), means.end());
  const double alpha = (1.0 - confidence) / 2.0;
  return Interval{quantile_sorted(means, alpha), quantile_sorted(means, 1.0 - alpha)};
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  PPSIM_CHECK(bins > 0, "histogram needs at least one bin");
  PPSIM_CHECK(hi > lo, "histogram range must be non-empty");
}

void Histogram::add(double x) noexcept {
  auto idx = static_cast<std::int64_t>(std::floor((x - lo_) / width_));
  idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::int64_t Histogram::bin_count(std::size_t i) const {
  PPSIM_CHECK(i < counts_.size(), "bin out of range");
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  PPSIM_CHECK(i < counts_.size(), "bin out of range");
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

}  // namespace ppsim
