#include "ppsim/util/cli.hpp"

#include <cstdlib>

#include "ppsim/util/check.hpp"

namespace ppsim {

Cli::Cli(int argc, const char* const* argv) {
  PPSIM_CHECK(argc >= 1, "argc must include the program name");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    PPSIM_CHECK(arg.rfind("--", 0) == 0, "flags must start with --: " + arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // boolean switch
    }
  }
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t default_value) {
  known_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  PPSIM_CHECK(end != nullptr && *end == '\0', "flag --" + name + " expects an integer");
  return v;
}

double Cli::get_double(const std::string& name, double default_value) {
  known_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  PPSIM_CHECK(end != nullptr && *end == '\0', "flag --" + name + " expects a number");
  return v;
}

std::string Cli::get_string(const std::string& name, const std::string& default_value) {
  known_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

bool Cli::get_bool(const std::string& name, bool default_value) {
  known_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  PPSIM_CHECK(it->second == "true" || it->second == "false",
              "flag --" + name + " expects true/false");
  return it->second == "true";
}

bool Cli::has(const std::string& name) const { return values_.count(name) > 0; }

void Cli::validate_no_unknown_flags() const {
  for (const auto& [name, value] : values_) {
    (void)value;
    PPSIM_CHECK(known_.count(name) > 0, "unknown flag --" + name);
  }
}

}  // namespace ppsim
