#include "ppsim/core/engine.hpp"

#include "ppsim/util/check.hpp"

namespace ppsim {

namespace {

using EngineVariant = std::variant<Simulator, BatchedSimulator, CollapsedSimulator>;

EngineVariant make_impl(
    EngineKind kind, const Protocol& protocol, Configuration initial,
    std::uint64_t seed, BatchedSimulator::Options batched_options,
    CollapsedSimulator::Options collapsed_options) {
  switch (kind) {
    case EngineKind::kSequential:
      return EngineVariant(
          std::in_place_type<Simulator>, protocol, std::move(initial), seed,
          Simulator::Engine::kTable);
    case EngineKind::kSequentialVirtual:
      return EngineVariant(
          std::in_place_type<Simulator>, protocol, std::move(initial), seed,
          Simulator::Engine::kVirtual);
    case EngineKind::kBatched:
      return EngineVariant(
          std::in_place_type<BatchedSimulator>, protocol, std::move(initial), seed,
          batched_options);
    case EngineKind::kCollapsed:
      return EngineVariant(
          std::in_place_type<CollapsedSimulator>, protocol, std::move(initial),
          seed, collapsed_options);
  }
  // Reachable only through a forged enum value (e.g. a bad static_cast from
  // an untrusted flag): fail loudly instead of falling off a value-returning
  // function. check_failed is [[noreturn]], which PPSIM_CHECK's conditional
  // hides from flow analysis.
  detail::check_failed("kind is a valid EngineKind", __FILE__, __LINE__,
                       "unknown engine kind " +
                           std::to_string(static_cast<int>(kind)));
}

}  // namespace

std::string to_string(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSequential: return "sequential";
    case EngineKind::kSequentialVirtual: return "virtual";
    case EngineKind::kBatched: return "batched";
    case EngineKind::kCollapsed: return "collapsed";
  }
  return "unknown";
}

std::optional<EngineKind> parse_engine(const std::string& name) {
  if (name == "sequential") return EngineKind::kSequential;
  if (name == "virtual") return EngineKind::kSequentialVirtual;
  if (name == "batched") return EngineKind::kBatched;
  if (name == "collapsed") return EngineKind::kCollapsed;
  return std::nullopt;
}

Engine::Engine(EngineKind kind, const Protocol& protocol, Configuration initial,
               std::uint64_t seed, BatchedSimulator::Options batched_options,
               CollapsedSimulator::Options collapsed_options)
    : kind_(kind),
      impl_(make_impl(kind, protocol, std::move(initial), seed, batched_options,
                      collapsed_options)) {}

const Configuration& Engine::configuration() const {
  return std::visit([](const auto& e) -> const Configuration& { return e.configuration(); },
                    impl_);
}

Interactions Engine::interactions() const {
  return std::visit([](const auto& e) { return e.interactions(); }, impl_);
}

Interactions Engine::clamped_interactions() const {
  return std::visit(
      [](const auto& e) -> Interactions {
        if constexpr (requires { e.clamped_interactions(); }) {
          return e.clamped_interactions();
        } else {
          return 0;  // exact sequential engines never clamp
        }
      },
      impl_);
}

double Engine::parallel_time() const {
  return std::visit([](const auto& e) { return e.parallel_time(); }, impl_);
}

RunOutcome Engine::run_until_stable(Interactions max_interactions) {
  return std::visit([&](auto& e) { return e.run_until_stable(max_interactions); }, impl_);
}

RunOutcome Engine::run_until(
    const std::function<bool(const Configuration&, Interactions)>& predicate,
    Interactions max_interactions) {
  return std::visit([&](auto& e) { return e.run_until(predicate, max_interactions); },
                    impl_);
}

bool Engine::is_stable() const {
  return std::visit([](const auto& e) { return e.is_stable(); }, impl_);
}

std::optional<Opinion> Engine::consensus_output() const {
  return std::visit([](const auto& e) { return e.consensus_output(); }, impl_);
}

void Engine::set_recorder(Recorder* recorder) {
  std::visit([&](auto& e) { e.set_recorder(recorder); }, impl_);
}

EngineCheckpoint Engine::checkpoint_state() const {
  return std::visit([](const auto& e) { return e.checkpoint_state(); }, impl_);
}

void Engine::restore_checkpoint(const EngineCheckpoint& state) {
  std::visit([&](auto& e) { e.restore_checkpoint(state); }, impl_);
}

}  // namespace ppsim
