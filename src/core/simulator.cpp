#include "ppsim/core/simulator.hpp"

#include "ppsim/util/check.hpp"

namespace ppsim {

Simulator::Simulator(const Protocol& protocol, Configuration initial,
                     std::uint64_t seed, Engine engine)
    : protocol_(protocol),
      config_(std::move(initial)),
      sampler_(config_),
      rng_(seed),
      stability_stride_(config_.population()) {
  PPSIM_CHECK(config_.num_states() == protocol.num_states(),
              "configuration size must match the protocol's state space");
  if (engine == Engine::kTable) table_.emplace(protocol);
}

bool Simulator::step() {
  const auto [a, b] = sampler_.sample(rng_);
  const Transition t = table_ ? table_->apply(a, b) : protocol_.apply(a, b);
  ++interactions_;
  if (t.initiator == a && t.responder == b) return false;
  if (t.initiator != a) {
    config_.move_agent(a, t.initiator);
    sampler_.move_agent(a, t.initiator);
  }
  if (t.responder != b) {
    config_.move_agent(b, t.responder);
    sampler_.move_agent(b, t.responder);
  }
  return true;
}

RunOutcome Simulator::run_until_stable(Interactions max_interactions) {
  PPSIM_CHECK(max_interactions >= 0, "interaction budget must be non-negative");
  while (interactions_ < max_interactions) {
    if (is_stable()) break;
    const Interactions chunk =
        std::min(stability_stride_, max_interactions - interactions_);
    for (Interactions i = 0; i < chunk; ++i) {
      step();
      observe();
    }
  }
  RunOutcome out;
  out.stabilized = is_stable();
  out.interactions = interactions_;
  out.consensus = consensus_output();
  return out;
}

RunOutcome Simulator::run_until(
    const std::function<bool(const Configuration&, Interactions)>& predicate,
    Interactions max_interactions) {
  PPSIM_CHECK(max_interactions >= 0, "interaction budget must be non-negative");
  Interactions next_stability_check = interactions_ + stability_stride_;
  while (interactions_ < max_interactions &&
         !predicate(config_, interactions_)) {
    // Stop on stability like run_until_stable (and BatchedSimulator::
    // run_until): once stable the configuration never changes again, so a
    // configuration predicate that has not fired never will.
    if (interactions_ >= next_stability_check) {
      if (is_stable()) break;
      next_stability_check = interactions_ + stability_stride_;
    }
    step();
    observe();
  }
  RunOutcome out;
  out.stabilized = is_stable();
  out.interactions = interactions_;
  out.consensus = consensus_output();
  return out;
}

bool Simulator::is_stable() const {
  if (table_) return table_->is_stable(config_);
  // Virtual mode: same pair scan as TransitionTable::is_stable but through
  // the vtable. O(S²) — acceptable because stability checks are strided.
  const auto& counts = config_.counts();
  const auto s = static_cast<State>(config_.num_states());
  for (State a = 0; a < s; ++a) {
    if (counts[a] == 0) continue;
    for (State b = 0; b < s; ++b) {
      if (counts[b] == 0) continue;
      if (a == b && counts[a] < 2) continue;
      const Transition t = protocol_.apply(a, b);
      if (t.initiator != a || t.responder != b) return false;
    }
  }
  return true;
}

std::optional<Opinion> Simulator::consensus_output() const {
  return ppsim::consensus_output(protocol_, config_);
}

void Simulator::set_stability_check_stride(Interactions stride) {
  PPSIM_CHECK(stride > 0, "stability check stride must be positive");
  stability_stride_ = stride;
}

EngineCheckpoint Simulator::checkpoint_state() const {
  EngineCheckpoint cp;
  cp.counts = config_.counts();
  cp.rng_state = rng_.state();
  cp.interactions = interactions_;
  return cp;
}

void Simulator::restore_checkpoint(const EngineCheckpoint& state) {
  PPSIM_CHECK(state.counts.size() == config_.num_states(),
              "checkpoint state-space size must match the engine's");
  Configuration restored(state.counts);
  PPSIM_CHECK(restored.population() == config_.population(),
              "checkpoint population must match the engine's");
  config_ = std::move(restored);
  sampler_ = PairSampler(config_);
  rng_.set_state(state.rng_state);
  PPSIM_CHECK(state.interactions >= 0, "checkpoint clock must be non-negative");
  interactions_ = state.interactions;
}

}  // namespace ppsim
