#include "ppsim/core/collapsed_simulator.hpp"

#include <algorithm>
#include <cmath>

#include "ppsim/util/check.hpp"

namespace ppsim {

CollapsedSimulator::CollapsedSimulator(const Protocol& protocol,
                                       Configuration initial, std::uint64_t seed,
                                       Options options)
    : protocol_(protocol),
      table_(protocol),
      config_(std::move(initial)),
      rng_(seed),
      options_(options),
      kernel_(&kernels::resolve(options.kernel)) {
  PPSIM_CHECK(config_.num_states() == protocol.num_states(),
              "configuration size must match the protocol's state space");
  PPSIM_CHECK(config_.population() >= 2, "population must have at least two agents");
  PPSIM_CHECK(config_.population() <= kMaxPopulation,
              "population exceeds 2^53: counts would lose exactness in the "
              "double-precision pair weights");
  PPSIM_CHECK(options_.tau_epsilon > 0.0 && options_.tau_epsilon <= 1.0,
              "tau_epsilon must be in (0, 1]");
  PPSIM_CHECK(options_.max_round >= 0, "max_round must be non-negative");
}

CollapsedSimulator::CollapsedSimulator(const Protocol& protocol,
                                       Configuration initial, std::uint64_t seed)
    : CollapsedSimulator(protocol, std::move(initial), seed, Options()) {}

void CollapsedSimulator::refresh_law() {
  if (law_generation_ == counts_generation_) return;
  law_.rebuild(table_, config_);
  law_generation_ = counts_generation_;
}

Interactions CollapsedSimulator::choose_tau(Interactions budget) const {
  const auto n = static_cast<double>(config_.population());
  // Aggregate staleness cap: at most an ε fraction of all agents interact
  // within one round.
  double tau = options_.tau_epsilon * n;
  const auto& counts = config_.counts();
  for (std::size_t s = 0; s < law_.num_states(); ++s) {
    if (law_.consumption(s) <= 0.0) continue;
    // consumption(s) / total_weight = expected agents of s removed per
    // interaction; bound the round's expected drain to ε·c_s.
    const double per_state = options_.tau_epsilon *
                             static_cast<double>(counts[s]) *
                             law_.total_weight() / law_.consumption(s);
    tau = std::min(tau, per_state);
  }
  Interactions t = tau >= static_cast<double>(budget)
                       ? budget
                       : std::max<Interactions>(1, static_cast<Interactions>(tau));
  if (options_.max_round > 0) t = std::min(t, options_.max_round);
  return std::min(t, budget);
}

bool CollapsedSimulator::stage_round(Interactions max_interactions,
                                     kernels::RoundTask& task) {
  refresh_law();

  if (law_.empty()) {
    // Stable: every interaction is null, so leaping over the entire budget
    // is exact (no count can ever change again).
    interactions_ = sat_add(interactions_, max_interactions);
    last_round_size_ = max_interactions;
    return false;
  }

  const Interactions batch = choose_tau(max_interactions);
  last_round_size_ = batch;
  interactions_ = sat_add(interactions_, batch);

  if (batch == 1) {
    // Exact single-draw path: Bernoulli(active/total) selects "some non-null
    // pair", then the alias table picks which one — the product law is
    // exactly w(a,b)/n(n−1). Null draws leave the counts (and therefore the
    // alias table) untouched, so the O(S²) rebuild amortizes over them.
    if (rng_.bernoulli(law_.active_weight() / law_.total_weight())) {
      const kernels::ApplyResult applied =
          kernels::apply_one(law_, config_, law_.alias().sample(rng_), 1);
      clamped_ = sat_add(clamped_, applied.clamped);
      if (applied.moved) touch_counts();
    }
    return false;
  }

  task.law = &law_;
  task.batch = batch;
  task.rng = &rng_;
  task.draws = &draws_;
  task.active = 0;
  return true;
}

void CollapsedSimulator::commit_round(const kernels::RoundTask& task) {
  if (task.active == 0) return;
  const kernels::ApplyResult applied =
      kernels::apply_draws(law_, config_, *task.draws);
  clamped_ = sat_add(clamped_, applied.clamped);
  if (applied.moved) touch_counts();
}

void CollapsedSimulator::corrupt_agents(State from, State to, Count m) {
  if (from == to || m == 0) return;
  config_.move_agents(from, to, m);
  touch_counts();
}

void CollapsedSimulator::add_agents(State s, Count m) {
  if (m == 0) return;
  PPSIM_CHECK(config_.population() + m <= kMaxPopulation,
              "churn would push the population past 2^53");
  config_.add_agents(s, m);
  touch_counts();
}

void CollapsedSimulator::remove_agents(State s, Count m) {
  if (m == 0) return;
  PPSIM_CHECK(config_.population() - m >= 2,
              "churn cannot shrink the population below two agents");
  config_.remove_agents(s, m);
  touch_counts();
}

Interactions CollapsedSimulator::step_round(Interactions max_interactions) {
  PPSIM_CHECK(max_interactions >= 0, "interaction budget must be non-negative");
  if (max_interactions == 0) return 0;
  // Identical-distribution batch rounds go stage → kernel → commit: all
  // `batch` draws see the start-of-round counts; the kernel splits off the
  // null interactions with one binomial and distributes the rest over the
  // active pairs with an exact multinomial (grouping a multinomial's
  // buckets and splitting afterwards preserves the law).
  kernels::RoundTask task;
  if (stage_round(max_interactions, task)) {
    kernel_->advance(task);
    commit_round(task);
  }
  return last_round_size_;
}

RunOutcome CollapsedSimulator::run_until_stable(Interactions max_interactions) {
  PPSIM_CHECK(max_interactions >= 0, "interaction budget must be non-negative");
  while (interactions_ < max_interactions) {
    if (is_stable()) break;
    step_round(max_interactions - interactions_);
    observe();
  }
  return outcome();
}

RunOutcome CollapsedSimulator::run_until(
    const std::function<bool(const Configuration&, Interactions)>& predicate,
    Interactions max_interactions) {
  PPSIM_CHECK(max_interactions >= 0, "interaction budget must be non-negative");
  while (interactions_ < max_interactions && !predicate(config_, interactions_)) {
    if (is_stable()) break;
    step_round(max_interactions - interactions_);
    observe();
  }
  return outcome();
}

EngineCheckpoint CollapsedSimulator::checkpoint_state() const {
  EngineCheckpoint cp;
  cp.counts = config_.counts();
  cp.rng_state = rng_.state();
  cp.interactions = interactions_;
  cp.clamped = clamped_;
  return cp;
}

void CollapsedSimulator::restore_checkpoint(const EngineCheckpoint& state) {
  PPSIM_CHECK(state.counts.size() == config_.num_states(),
              "checkpoint state-space size must match the engine's");
  Configuration restored(state.counts);
  PPSIM_CHECK(restored.population() == config_.population(),
              "checkpoint population must match the engine's");
  config_ = std::move(restored);
  rng_.set_state(state.rng_state);
  PPSIM_CHECK(state.interactions >= 0 && state.clamped >= 0,
              "checkpoint clocks must be non-negative");
  interactions_ = state.interactions;
  clamped_ = state.clamped;
  last_round_size_ = 0;
  // One generation bump invalidates the law and (transitively) its alias
  // table — the regression that motivated the generation chain was exactly
  // a restore path refreshing one hand-maintained dirty flag but not the
  // other.
  touch_counts();
}

RunOutcome CollapsedSimulator::outcome() const {
  RunOutcome out;
  out.stabilized = is_stable();
  out.interactions = interactions_;
  out.clamped = clamped_;
  out.consensus = consensus_output();
  return out;
}

}  // namespace ppsim
