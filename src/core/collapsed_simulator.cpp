#include "ppsim/core/collapsed_simulator.hpp"

#include <algorithm>
#include <cmath>

#include "ppsim/util/check.hpp"
#include "ppsim/util/random_variates.hpp"

namespace ppsim {

CollapsedSimulator::CollapsedSimulator(const Protocol& protocol,
                                       Configuration initial, std::uint64_t seed,
                                       Options options)
    : protocol_(protocol),
      table_(protocol),
      config_(std::move(initial)),
      rng_(seed),
      options_(options) {
  PPSIM_CHECK(config_.num_states() == protocol.num_states(),
              "configuration size must match the protocol's state space");
  PPSIM_CHECK(config_.population() >= 2, "population must have at least two agents");
  PPSIM_CHECK(config_.population() <= kMaxPopulation,
              "population exceeds 2^53: counts would lose exactness in the "
              "double-precision pair weights");
  PPSIM_CHECK(options_.tau_epsilon > 0.0 && options_.tau_epsilon <= 1.0,
              "tau_epsilon must be in (0, 1]");
  PPSIM_CHECK(options_.max_round >= 0, "max_round must be non-negative");
  consumption_.resize(config_.num_states());
}

CollapsedSimulator::CollapsedSimulator(const Protocol& protocol,
                                       Configuration initial, std::uint64_t seed)
    : CollapsedSimulator(protocol, std::move(initial), seed, Options()) {}

void CollapsedSimulator::refresh_pairs() {
  if (!pairs_dirty_) return;
  const auto n = static_cast<double>(config_.population());
  total_weight_ = n * (n - 1.0);
  pair_a_.clear();
  pair_b_.clear();
  pair_t_.clear();
  pair_weight_.clear();
  std::fill(consumption_.begin(), consumption_.end(), 0.0);
  active_weight_ = 0.0;
  const auto& counts = config_.counts();
  const auto q = static_cast<State>(config_.num_states());
  for (State a = 0; a < q; ++a) {
    if (counts[a] == 0) continue;
    for (State b = 0; b < q; ++b) {
      if (counts[b] == 0) continue;
      if (a == b && counts[a] < 2) continue;
      if (table_.is_null(a, b)) continue;
      const double w = static_cast<double>(counts[a]) *
                       static_cast<double>(a == b ? counts[b] - 1 : counts[b]);
      const Transition t = table_.apply(a, b);
      pair_a_.push_back(a);
      pair_b_.push_back(b);
      pair_t_.push_back(t);
      pair_weight_.push_back(w);
      active_weight_ += w;
      // One interaction on (a, b) removes an agent from each side whose
      // state actually changes — exactly what apply_bulk will move, so the
      // τ controller's drain bound matches the clamp's exposure.
      if (t.initiator != a) consumption_[a] += w;
      if (t.responder != b) consumption_[b] += w;
    }
  }
  pairs_dirty_ = false;
  alias_built_ = false;
}

Interactions CollapsedSimulator::choose_tau(Interactions budget) const {
  const auto n = static_cast<double>(config_.population());
  // Aggregate staleness cap: at most an ε fraction of all agents interact
  // within one round.
  double tau = options_.tau_epsilon * n;
  const auto& counts = config_.counts();
  for (std::size_t s = 0; s < consumption_.size(); ++s) {
    if (consumption_[s] <= 0.0) continue;
    // consumption_[s] / total_weight_ = expected agents of s removed per
    // interaction; bound the round's expected drain to ε·c_s.
    const double per_state =
        options_.tau_epsilon * static_cast<double>(counts[s]) * total_weight_ /
        consumption_[s];
    tau = std::min(tau, per_state);
  }
  Interactions t = tau >= static_cast<double>(budget)
                       ? budget
                       : std::max<Interactions>(1, static_cast<Interactions>(tau));
  if (options_.max_round > 0) t = std::min(t, options_.max_round);
  return std::min(t, budget);
}

void CollapsedSimulator::apply_bulk(std::size_t i, Interactions m) {
  const State a = pair_a_[i];
  const State b = pair_b_[i];
  const Transition t = pair_t_[i];
  const Interactions drawn = m;
  // Clamp to the live counts, exactly as the batched engine does: earlier
  // pairs in this round may have drained a state below what the
  // start-of-round weights promised. The τ controller makes this a
  // many-sigma event, but the invariant (non-negative counts, constant
  // population) must hold unconditionally.
  if (a == b) {
    const int leavers = (t.initiator != a ? 1 : 0) + (t.responder != a ? 1 : 0);
    const Interactions cap =
        leavers == 2 ? config_.count(a) / 2 : config_.count(a) - 1;
    m = std::min(m, std::max<Interactions>(0, cap));
    clamped_ = sat_add(clamped_, drawn - m);
    if (m == 0) return;
    if (t.initiator != a) config_.move_agents(a, t.initiator, m);
    if (t.responder != a) config_.move_agents(a, t.responder, m);
  } else {
    if (config_.count(a) == 0 || config_.count(b) == 0) {
      clamped_ = sat_add(clamped_, drawn);
      return;
    }
    if (t.initiator != a) m = std::min<Interactions>(m, config_.count(a));
    if (t.responder != b) m = std::min<Interactions>(m, config_.count(b));
    clamped_ = sat_add(clamped_, drawn - m);
    if (m == 0) return;
    config_.move_agents(a, t.initiator, m);
    config_.move_agents(b, t.responder, m);
  }
  pairs_dirty_ = true;  // a count moved: weights and the alias table are stale
}

Interactions CollapsedSimulator::step_round(Interactions max_interactions) {
  PPSIM_CHECK(max_interactions >= 0, "interaction budget must be non-negative");
  if (max_interactions == 0) return 0;
  refresh_pairs();

  if (pair_weight_.empty()) {
    // Stable: every interaction is null, so leaping over the entire budget
    // is exact (no count can ever change again).
    interactions_ = sat_add(interactions_, max_interactions);
    last_round_size_ = max_interactions;
    return max_interactions;
  }

  const Interactions batch = choose_tau(max_interactions);
  last_round_size_ = batch;
  interactions_ = sat_add(interactions_, batch);

  if (batch == 1) {
    // Exact single-draw path: Bernoulli(active/total) selects "some non-null
    // pair", then the alias table picks which one — the product law is
    // exactly w(a,b)/n(n−1). Null draws leave the counts (and therefore the
    // alias table) untouched, so the O(S²) rebuild amortizes over them.
    if (rng_.bernoulli(active_weight_ / total_weight_)) {
      if (!alias_built_) {
        alias_ = AliasTable(pair_weight_);
        alias_built_ = true;
      }
      apply_bulk(alias_.sample(rng_), 1);
    }
    return 1;
  }

  // Identical-distribution batch: all `batch` draws see the start-of-round
  // counts. Split off the null interactions with one binomial, distribute
  // the rest over the active pairs with an exact multinomial (grouping a
  // multinomial's buckets and splitting afterwards preserves the law).
  const Interactions active =
      binomial(rng_, batch, active_weight_ / total_weight_);
  if (active == 0) return batch;
  const std::vector<std::int64_t> draws = multinomial(rng_, active, pair_weight_);
  for (std::size_t i = 0; i < draws.size(); ++i) {
    if (draws[i] > 0) apply_bulk(i, draws[i]);
  }
  return batch;
}

RunOutcome CollapsedSimulator::run_until_stable(Interactions max_interactions) {
  PPSIM_CHECK(max_interactions >= 0, "interaction budget must be non-negative");
  while (interactions_ < max_interactions) {
    if (is_stable()) break;
    step_round(max_interactions - interactions_);
    observe();
  }
  return outcome();
}

RunOutcome CollapsedSimulator::run_until(
    const std::function<bool(const Configuration&, Interactions)>& predicate,
    Interactions max_interactions) {
  PPSIM_CHECK(max_interactions >= 0, "interaction budget must be non-negative");
  while (interactions_ < max_interactions && !predicate(config_, interactions_)) {
    if (is_stable()) break;
    step_round(max_interactions - interactions_);
    observe();
  }
  return outcome();
}

EngineCheckpoint CollapsedSimulator::checkpoint_state() const {
  EngineCheckpoint cp;
  cp.counts = config_.counts();
  cp.rng_state = rng_.state();
  cp.interactions = interactions_;
  cp.clamped = clamped_;
  return cp;
}

void CollapsedSimulator::restore_checkpoint(const EngineCheckpoint& state) {
  PPSIM_CHECK(state.counts.size() == config_.num_states(),
              "checkpoint state-space size must match the engine's");
  Configuration restored(state.counts);
  PPSIM_CHECK(restored.population() == config_.population(),
              "checkpoint population must match the engine's");
  config_ = std::move(restored);
  rng_.set_state(state.rng_state);
  PPSIM_CHECK(state.interactions >= 0 && state.clamped >= 0,
              "checkpoint clocks must be non-negative");
  interactions_ = state.interactions;
  clamped_ = state.clamped;
  last_round_size_ = 0;
  pairs_dirty_ = true;
  alias_built_ = false;
}

RunOutcome CollapsedSimulator::outcome() const {
  RunOutcome out;
  out.stabilized = is_stable();
  out.interactions = interactions_;
  out.clamped = clamped_;
  out.consensus = consensus_output();
  return out;
}

}  // namespace ppsim
