#include "ppsim/core/scenario.hpp"

#include <algorithm>

#include "ppsim/util/check.hpp"
#include "ppsim/util/random_variates.hpp"

namespace ppsim {

std::vector<std::pair<std::string, double>> ScenarioSpec::params() const {
  std::vector<std::pair<std::string, double>> out;
  if (adversary_strength > 0.0) {
    out.emplace_back("adversary_strength", adversary_strength);
  }
  if (churn_rate > 0.0) {
    out.emplace_back("churn_rate", churn_rate);
    if (!churn_joiners_undecided) out.emplace_back("churn_uniform", 1.0);
  }
  if (regraph_every > 0) {
    out.emplace_back("regraph_every", static_cast<double>(regraph_every));
  }
  return out;
}

void ScenarioSpec::require_only(bool adversary_ok, bool churn_ok,
                                bool regraph_ok,
                                const std::string& context) const {
  PPSIM_CHECK(adversary_ok || adversary_strength == 0.0,
              "--adversary is not supported by " + context);
  PPSIM_CHECK(churn_ok || churn_rate == 0.0,
              "--churn is not supported by " + context);
  PPSIM_CHECK(regraph_ok || regraph_every == 0,
              "--regraph is not supported by " + context);
}

AdversarialScheduler::AdversarialScheduler(double strength, std::uint64_t seed)
    : strength_(strength), rng_(seed) {
  PPSIM_CHECK(strength >= 0.0 && strength <= 1.0,
              "adversary strength must be in [0, 1]");
}

std::optional<State> AdversarialScheduler::trailing_opinion(
    const std::vector<Count>& counts) {
  std::optional<State> best;
  for (std::size_t s = 1; s < counts.size(); ++s) {
    if (counts[s] == 0) continue;
    if (!best.has_value() || counts[s] < counts[*best]) {
      best = static_cast<State>(s);
    }
  }
  return best;
}

std::optional<State> AdversarialScheduler::leading_opinion(
    const std::vector<Count>& counts) {
  std::optional<State> best;
  for (std::size_t s = 1; s < counts.size(); ++s) {
    if (counts[s] == 0) continue;
    if (!best.has_value() || counts[s] > counts[*best]) {
      best = static_cast<State>(s);
    }
  }
  return best;
}

bool AdversarialScheduler::intervene(UsdEngine& engine) {
  const auto& counts = engine.counts();
  const std::optional<State> trailing = trailing_opinion(counts);
  if (!trailing.has_value()) {
    // All-⊥: nothing to starve; take a uniform step.
    engine.step();
    return false;
  }
  if (engine.surviving_opinions() >= 2) {
    // Partner ∝ counts over the other surviving opinions: the trailer meets
    // a random *decided* agent, so both collapse to ⊥ and the trailer pays
    // proportionally more than under the uniform scheduler. This is the
    // target-selection law scenario_test pins with a chi-square.
    Count total = 0;
    for (std::size_t s = 1; s < counts.size(); ++s) {
      if (static_cast<State>(s) != *trailing) total += counts[s];
    }
    auto pick = static_cast<Count>(rng_.bounded(static_cast<std::uint64_t>(total)));
    State partner = 0;
    for (std::size_t s = 1; s < counts.size(); ++s) {
      if (static_cast<State>(s) == *trailing) continue;
      if (pick < counts[s]) {
        partner = static_cast<State>(s);
        break;
      }
      pick -= counts[s];
    }
    engine.force_interaction(*trailing, partner);
    ++interventions_;
    return true;
  }
  if (engine.undecided() > 0) {
    // One opinion left: starving is over, so the strongest schedule left to
    // the adversary is deterministic recruitment (it cannot prevent the
    // inevitable winner, only reshape the approach).
    engine.force_interaction(*trailing, 0);
    ++interventions_;
    return true;
  }
  engine.step();  // consensus already reached; keep the clock semantics
  return false;
}

bool AdversarialScheduler::step(UsdEngine& engine) {
  // strength 0 short-circuits before any RNG draw: the adversary's stream is
  // untouched and the run is byte-identical to the uniform scheduler's.
  if (strength_ > 0.0 && rng_.bernoulli(strength_)) {
    return intervene(engine);
  }
  engine.step();
  return false;
}

void AdversarialScheduler::run(UsdEngine& engine, Interactions interactions) {
  PPSIM_CHECK(interactions >= 0, "interaction budget must be non-negative");
  for (Interactions i = 0; i < interactions; ++i) step(engine);
}

bool AdversarialScheduler::run_until_stable(UsdEngine& engine,
                                            Interactions max_interactions) {
  PPSIM_CHECK(max_interactions >= 0, "interaction budget must be non-negative");
  while (engine.interactions() < max_interactions && !engine.stabilized()) {
    step(engine);
  }
  return engine.stabilized();
}

ChurnModel::ChurnModel(double join_rate, double leave_rate, JoinPolicy policy,
                       std::uint64_t seed)
    : join_rate_(join_rate), leave_rate_(leave_rate), policy_(policy), rng_(seed) {
  PPSIM_CHECK(join_rate >= 0.0 && join_rate <= 1.0, "join rate must be in [0, 1]");
  PPSIM_CHECK(leave_rate >= 0.0 && leave_rate <= 1.0,
              "leave rate must be in [0, 1]");
}

State ChurnModel::join_state(std::size_t num_states) {
  if (policy_ == JoinPolicy::kUndecided) return 0;
  return static_cast<State>(rng_.bounded(num_states - 1) + 1);
}

State ChurnModel::victim_state(const std::vector<Count>& counts,
                               Count victim_index) {
  for (std::size_t s = 0; s < counts.size(); ++s) {
    if (victim_index < counts[s]) return static_cast<State>(s);
    victim_index -= counts[s];
  }
  return static_cast<State>(counts.size() - 1);  // unreachable for valid input
}

void ChurnModel::step(UsdEngine& engine) {
  // Rate-0 sides make zero draws — churn 0 is byte-identical to no churn.
  if (join_rate_ > 0.0 && rng_.bernoulli(join_rate_)) {
    engine.add_agent(join_state(engine.num_opinions() + 1));
    ++joins_;
  }
  if (leave_rate_ > 0.0 && rng_.bernoulli(leave_rate_)) {
    if (engine.population() > 2) {
      const auto n = static_cast<std::uint64_t>(engine.population());
      engine.remove_agent(
          victim_state(engine.counts(), static_cast<Count>(rng_.bounded(n))));
      ++leaves_;
    }
    // else: the departure is suppressed (engine floor of 2) and deliberately
    // NOT recorded — the ledger counts performed operations only.
  }
}

void ChurnModel::run(UsdEngine& engine, Interactions interactions) {
  PPSIM_CHECK(interactions >= 0, "interaction budget must be non-negative");
  for (Interactions i = 0; i < interactions; ++i) {
    engine.step();
    step(engine);
  }
}

void ChurnModel::apply_window(CollapsedSimulator& sim, Interactions window) {
  PPSIM_CHECK(window >= 0, "churn window must be non-negative");
  if (window == 0) return;
  const std::size_t num_states = sim.configuration().num_states();
  if (join_rate_ > 0.0) {
    const auto joining = binomial(rng_, window, join_rate_);
    if (policy_ == JoinPolicy::kUndecided) {
      // All joiners land in ⊥ — one bulk add, no per-agent draws, so huge
      // stable-leap windows stay O(1).
      sim.add_agents(0, static_cast<Count>(joining));
      joins_ += static_cast<Count>(joining);
    } else {
      for (std::int64_t j = 0; j < joining; ++j) {
        sim.add_agents(join_state(num_states), 1);
        ++joins_;
      }
    }
  }
  if (leave_rate_ > 0.0) {
    const auto leaving = binomial(rng_, window, leave_rate_);
    for (std::int64_t l = 0; l < leaving; ++l) {
      if (sim.configuration().population() <= 2) break;  // engine floor
      const auto n =
          static_cast<std::uint64_t>(sim.configuration().population());
      sim.remove_agents(victim_state(sim.configuration().counts(),
                                     static_cast<Count>(rng_.bounded(n))),
                        1);
      ++leaves_;
    }
  }
}

void ChurnModel::run(CollapsedSimulator& sim, Interactions interactions) {
  PPSIM_CHECK(interactions >= 0, "interaction budget must be non-negative");
  Interactions done = 0;
  while (done < interactions) {
    const Interactions w = sim.step_round(interactions - done);
    done += w;
    apply_window(sim, w);
  }
}

DynamicGraph::DynamicGraph(Generator generator, Interactions resample_every,
                           std::uint64_t seed)
    : generator_(std::move(generator)),
      resample_every_(resample_every),
      rng_(seed),
      graph_(generator_(rng_)) {
  PPSIM_CHECK(resample_every_ > 0, "resample interval must be positive");
}

bool DynamicGraph::run_until_stable(GraphSimulator& sim,
                                    Interactions max_interactions) {
  PPSIM_CHECK(max_interactions >= 0, "interaction budget must be non-negative");
  while (sim.interactions() < max_interactions) {
    // Run to the next resample boundary (or the budget, whichever is first).
    const Interactions boundary =
        (sim.interactions() / resample_every_ + 1) * resample_every_;
    if (sim.run_until_stable(std::min(boundary, max_interactions))) return true;
    if (sim.interactions() >= max_interactions) break;
    graph_ = generator_(rng_);
    ++resamples_;
    sim.rebind_graph(graph_);
  }
  return sim.is_stable();
}

}  // namespace ppsim
