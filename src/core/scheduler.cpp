#include "ppsim/core/scheduler.hpp"

#include "ppsim/util/check.hpp"

namespace ppsim {

PairSampler::PairSampler(const Configuration& config)
    : weights_(config.counts()), population_(config.population()) {
  PPSIM_CHECK(population_ >= 2, "pair sampling needs at least two agents");
}

std::pair<State, State> PairSampler::sample(Xoshiro256pp& rng) noexcept {
  const auto n = static_cast<std::uint64_t>(population_);
  const auto first =
      static_cast<State>(weights_.find(static_cast<std::int64_t>(rng.bounded(n))));
  // Sample the responder among the remaining n-1 agents: remove the
  // initiator from the urn, draw, and put it back.
  weights_.add(first, -1);
  const auto second =
      static_cast<State>(weights_.find(static_cast<std::int64_t>(rng.bounded(n - 1))));
  weights_.add(first, +1);
  return {first, second};
}

}  // namespace ppsim
