#include "ppsim/core/graph.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "ppsim/util/check.hpp"

namespace ppsim {

InteractionGraph::InteractionGraph(NodeId num_nodes,
                                   std::vector<std::pair<NodeId, NodeId>> edges)
    : num_nodes_(num_nodes), edges_(std::move(edges)) {
  PPSIM_CHECK(num_nodes >= 2, "graph needs at least two nodes");
  PPSIM_CHECK(!edges_.empty(), "graph needs at least one edge");
  std::vector<std::size_t> deg(num_nodes, 0);
  for (const auto& [a, b] : edges_) {
    PPSIM_CHECK(a < num_nodes && b < num_nodes, "edge endpoint out of range");
    PPSIM_CHECK(a != b, "self-loops are not allowed");
    ++deg[a];
    ++deg[b];
  }
  adj_offsets_.assign(num_nodes + 1, 0);
  for (NodeId v = 0; v < num_nodes; ++v) adj_offsets_[v + 1] = adj_offsets_[v] + deg[v];
  adj_.resize(adj_offsets_.back());
  std::vector<std::size_t> cursor(adj_offsets_.begin(), adj_offsets_.end() - 1);
  for (const auto& [a, b] : edges_) {
    adj_[cursor[a]++] = b;
    adj_[cursor[b]++] = a;
  }
}

const std::pair<NodeId, NodeId>& InteractionGraph::edge(std::size_t i) const {
  PPSIM_CHECK(i < edges_.size(), "edge index out of range");
  return edges_[i];
}

std::size_t InteractionGraph::degree(NodeId v) const {
  PPSIM_CHECK(v < num_nodes_, "node out of range");
  return adj_offsets_[v + 1] - adj_offsets_[v];
}

std::vector<NodeId> InteractionGraph::neighbors(NodeId v) const {
  PPSIM_CHECK(v < num_nodes_, "node out of range");
  return {adj_.begin() + static_cast<std::ptrdiff_t>(adj_offsets_[v]),
          adj_.begin() + static_cast<std::ptrdiff_t>(adj_offsets_[v + 1])};
}

bool InteractionGraph::is_connected() const {
  std::vector<char> seen(num_nodes_, 0);
  std::queue<NodeId> frontier;
  frontier.push(0);
  seen[0] = 1;
  NodeId reached = 1;
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    for (std::size_t i = adj_offsets_[v]; i < adj_offsets_[v + 1]; ++i) {
      const NodeId w = adj_[i];
      if (!seen[w]) {
        seen[w] = 1;
        ++reached;
        frontier.push(w);
      }
    }
  }
  return reached == num_nodes_;
}

InteractionGraph InteractionGraph::complete(NodeId n) {
  PPSIM_CHECK(n >= 2, "graph needs at least two nodes");
  PPSIM_CHECK(n <= 4096, "explicit clique too large; use the counts-based engine");
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) edges.emplace_back(a, b);
  }
  return InteractionGraph(n, std::move(edges));
}

InteractionGraph InteractionGraph::cycle(NodeId n) {
  PPSIM_CHECK(n >= 3, "cycle needs at least three nodes");
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(n);
  for (NodeId v = 0; v < n; ++v) edges.emplace_back(v, (v + 1) % n);
  return InteractionGraph(n, std::move(edges));
}

InteractionGraph InteractionGraph::path(NodeId n) {
  PPSIM_CHECK(n >= 2, "path needs at least two nodes");
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(n - 1);
  for (NodeId v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  return InteractionGraph(n, std::move(edges));
}

InteractionGraph InteractionGraph::star(NodeId n) {
  PPSIM_CHECK(n >= 2, "star needs at least two nodes");
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(n - 1);
  for (NodeId v = 1; v < n; ++v) edges.emplace_back(0, v);
  return InteractionGraph(n, std::move(edges));
}

InteractionGraph InteractionGraph::erdos_renyi(NodeId n, double p, Xoshiro256pp& rng) {
  PPSIM_CHECK(n >= 2, "graph needs at least two nodes");
  PPSIM_CHECK(p > 0.0 && p <= 1.0, "edge probability must be in (0, 1]");
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      if (rng.bernoulli(p)) edges.emplace_back(a, b);
    }
  }
  PPSIM_CHECK(!edges.empty(), "G(n,p) came out empty; increase p");
  return InteractionGraph(n, std::move(edges));
}

InteractionGraph InteractionGraph::random_regular(NodeId n, std::size_t d,
                                                  Xoshiro256pp& rng) {
  PPSIM_CHECK(n >= 2 && d >= 1, "need n >= 2, d >= 1");
  PPSIM_CHECK((static_cast<std::size_t>(n) * d) % 2 == 0, "n·d must be even");
  PPSIM_CHECK(d < n, "degree must be below n");
  // Configuration model: pair up half-edges uniformly; resample the whole
  // matching if a self-loop appears (parallel edges are tolerated — they
  // only reweight the scheduler slightly).
  std::vector<NodeId> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * d);
  for (int attempt = 0; attempt < 100; ++attempt) {
    stubs.clear();
    for (NodeId v = 0; v < n; ++v) {
      for (std::size_t i = 0; i < d; ++i) stubs.push_back(v);
    }
    // Fisher-Yates pairing.
    bool self_loop = false;
    std::vector<std::pair<NodeId, NodeId>> edges;
    edges.reserve(stubs.size() / 2);
    for (std::size_t remaining = stubs.size(); remaining > 0; remaining -= 2) {
      const auto i = static_cast<std::size_t>(rng.bounded(remaining));
      std::swap(stubs[i], stubs[remaining - 1]);
      const auto j = static_cast<std::size_t>(rng.bounded(remaining - 1));
      std::swap(stubs[j], stubs[remaining - 2]);
      const NodeId a = stubs[remaining - 1];
      const NodeId b = stubs[remaining - 2];
      if (a == b) {
        self_loop = true;
        break;
      }
      edges.emplace_back(a, b);
    }
    if (!self_loop) return InteractionGraph(n, std::move(edges));
  }
  throw CheckFailure("configuration model failed to avoid self-loops in 100 attempts");
}

}  // namespace ppsim
