#include "ppsim/core/runner.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "ppsim/util/check.hpp"
#include "ppsim/util/rng.hpp"

namespace ppsim {

TrialResult run_engine_trial(Engine& engine, Interactions max_interactions) {
  return run_engine_trial(engine, max_interactions, nullptr);
}

TrialResult run_engine_trial(Engine& engine, Interactions max_interactions,
                             Recorder* recorder) {
  if (recorder != nullptr) engine.set_recorder(recorder);
  const RunOutcome out = engine.run_until_stable(max_interactions);
  if (recorder != nullptr) {
    recorder->finalize(engine.configuration(),
                       RecordFinish{.stabilized = out.stabilized,
                                    .interactions = out.interactions,
                                    .clamped = out.clamped,
                                    .consensus = out.consensus});
    engine.set_recorder(nullptr);
  }
  TrialResult r;
  r.stabilized = out.stabilized;
  r.interactions = out.interactions;
  r.clamped = out.clamped;
  r.parallel_time = engine.parallel_time();
  r.winner = out.consensus;
  return r;
}

std::uint64_t trial_seed(std::uint64_t base_seed, std::size_t trial) {
  // SplitMix64 is an injective mixing of the counter, so distinct trials get
  // distinct, well-scrambled seeds from one base seed.
  SplitMix64 sm(base_seed);
  std::uint64_t seed = 0;
  for (std::size_t i = 0; i <= trial; ++i) seed = sm.next();
  return seed;
}

std::vector<TrialResult> run_trials(const TrialFn& trial_fn, std::size_t num_trials,
                                    std::uint64_t base_seed, unsigned num_threads) {
  PPSIM_CHECK(static_cast<bool>(trial_fn), "trial function must be callable");
  std::vector<TrialResult> results(num_trials);
  if (num_trials == 0) return results;

  // Precompute seeds sequentially (the stream is cheap); workers then only
  // read their own slots.
  std::vector<std::uint64_t> seeds(num_trials);
  {
    SplitMix64 sm(base_seed);
    for (auto& s : seeds) s = sm.next();
  }

  unsigned threads = num_threads == 0 ? std::thread::hardware_concurrency() : num_threads;
  threads = std::max(1u, std::min<unsigned>(threads, narrow_cast<unsigned>(num_trials)));

  if (threads == 1) {
    for (std::size_t i = 0; i < num_trials; ++i) results[i] = trial_fn(seeds[i], i);
    return results;
  }

  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_trials) return;
      results[i] = trial_fn(seeds[i], i);
    }
  };
  std::vector<std::jthread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  pool.clear();  // joins
  return results;
}

double TrialAggregate::stabilized_fraction() const {
  return trials == 0 ? 0.0
                     : static_cast<double>(stabilized) / static_cast<double>(trials);
}

double TrialAggregate::win_rate(Opinion opinion) const {
  if (trials == 0) return 0.0;
  const auto it = wins.find(opinion);
  const std::size_t w = it == wins.end() ? 0 : it->second;
  return static_cast<double>(w) / static_cast<double>(trials);
}

TrialAggregate aggregate(const std::vector<TrialResult>& results) {
  TrialAggregate agg;
  agg.trials = results.size();
  for (const auto& r : results) {
    if (!r.stabilized) continue;
    ++agg.stabilized;
    agg.parallel_time.add(r.parallel_time);
    if (r.winner.has_value()) {
      ++agg.wins[*r.winner];
    } else {
      ++agg.no_winner;
    }
  }
  return agg;
}

}  // namespace ppsim
