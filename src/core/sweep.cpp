#include "ppsim/core/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>

#include "ppsim/analysis/streaming_ci.hpp"
#include "ppsim/core/collapsed_simulator.hpp"
#include "ppsim/core/task_scheduler.hpp"
#include "ppsim/util/check.hpp"
#include "ppsim/util/json.hpp"

namespace ppsim {

double SweepCell::param(const std::string& key, double fallback) const {
  for (const auto& [name_, value] : params) {
    if (name_ == key) return value;
  }
  return fallback;
}

std::string SweepCell::label() const {
  if (!name.empty()) return name;
  return "n=" + std::to_string(n) + ",k=" + std::to_string(k);
}

Engine SweepTrial::make_engine(const Protocol& protocol,
                               Configuration initial) const {
  // Each engine built by this trial draws its own scalar seed from the
  // trial's private stream, so a trial comparing several engines (e.g.
  // bench_gossip_compare) seeds them from disjoint draws deterministically.
  const kernels::KernelKind kernel =
      cell.kernel.value_or(kernels::KernelKind::kScalar);
  return Engine(cell.engine, protocol, std::move(initial), rng(),
                {.round_divisor = cell.round_divisor, .kernel = kernel},
                {.tau_epsilon = cell.tau_epsilon, .kernel = kernel});
}

const SweepMetricAggregate* SweepCellResult::find(const std::string& metric) const {
  for (const auto& agg : aggregates) {
    if (agg.metric == metric) return &agg;
  }
  return nullptr;
}

std::vector<double> SweepCellResult::values(const std::string& metric) const {
  const SweepMetricAggregate* agg = find(metric);
  return agg == nullptr ? std::vector<double>{} : agg->values;
}

double SweepCellResult::mean(const std::string& metric, double fallback) const {
  const SweepMetricAggregate* agg = find(metric);
  return agg == nullptr || agg->summary.count == 0 ? fallback : agg->summary.mean;
}

double SweepCellResult::sum(const std::string& metric) const {
  double total = 0.0;
  for (const double v : values(metric)) total += v;
  return total;
}

double SweepCellResult::min(const std::string& metric, double fallback) const {
  const SweepMetricAggregate* agg = find(metric);
  return agg == nullptr || agg->summary.count == 0 ? fallback : agg->summary.min;
}

double SweepCellResult::max(const std::string& metric, double fallback) const {
  const SweepMetricAggregate* agg = find(metric);
  return agg == nullptr || agg->summary.count == 0 ? fallback : agg->summary.max;
}

std::vector<double> SweepCellResult::values_where(const std::string& value,
                                                  const std::string& flag) const {
  std::vector<double> selected;
  for (const SweepMetrics& trial : trials) {
    bool flagged = false;
    std::optional<double> v;
    for (const auto& [metric, x] : trial) {
      if (metric == flag && x != 0.0) flagged = true;
      if (metric == value) v = x;
    }
    if (flagged && v.has_value()) selected.push_back(*v);
  }
  return selected;
}

double SweepCellResult::mean_where(const std::string& value, const std::string& flag,
                                   double fallback) const {
  const std::vector<double> selected = values_where(value, flag);
  if (selected.empty()) return fallback;
  double total = 0.0;
  for (const double v : selected) total += v;
  return total / static_cast<double>(selected.size());
}

double SweepCellResult::min_where(const std::string& value, const std::string& flag,
                                  double fallback) const {
  const std::vector<double> selected = values_where(value, flag);
  return selected.empty() ? fallback
                          : *std::min_element(selected.begin(), selected.end());
}

double SweepCellResult::max_where(const std::string& value, const std::string& flag,
                                  double fallback) const {
  const std::vector<double> selected = values_where(value, flag);
  return selected.empty() ? fallback
                          : *std::max_element(selected.begin(), selected.end());
}

double SweepCellResult::rate(const std::string& flag) const {
  if (trials.empty()) return 0.0;
  std::size_t hits = 0;
  for (const SweepMetrics& trial : trials) {
    for (const auto& [metric, x] : trial) {
      if (metric == flag && x != 0.0) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(trials.size());
}

void aggregate_sweep_cell(SweepCellResult& cr) {
  // Pure function of (trials[0..trials_run), trials_run): called by the
  // cell's last finisher during a run AND by the cell cache when replaying
  // stored raw trials, so both paths derive identical aggregate bytes.
  cr.trials.resize(cr.trials_run);  // drop never-run adaptive slots
  cr.aggregates.clear();
  std::vector<std::string> order;
  for (const SweepMetrics& trial : cr.trials) {
    for (const auto& [metric, value] : trial) {
      (void)value;
      if (std::find(order.begin(), order.end(), metric) == order.end()) {
        order.push_back(metric);
      }
    }
  }
  for (const std::string& metric : order) {
    SweepMetricAggregate agg;
    agg.metric = metric;
    for (const SweepMetrics& trial : cr.trials) {
      for (const auto& [name_, value] : trial) {
        if (name_ == metric) agg.values.push_back(value);
      }
    }
    agg.summary = summarize(agg.values);
    cr.aggregates.push_back(std::move(agg));
  }
}

std::string sweep_cell_json(const SweepCellResult& cr,
                            kernels::KernelKind default_kernel) {
  JsonObject params;
  for (const auto& [key, value] : cr.cell.params) params.field(key, value);
  std::vector<JsonObject> metric_objects;
  metric_objects.reserve(cr.aggregates.size());
  for (const SweepMetricAggregate& agg : cr.aggregates) {
    JsonObject m;
    m.field("metric", agg.metric)
        .field("count", agg.summary.count)
        .field("mean", agg.summary.mean)
        .field("stddev", agg.summary.stddev)
        .field("min", agg.summary.min)
        .field("p25", agg.summary.p25)
        .field("median", agg.summary.median)
        .field("p75", agg.summary.p75)
        .field("max", agg.summary.max)
        .field("values", agg.values);
    metric_objects.push_back(m);
  }
  JsonObject c;
  c.field("cell", cr.cell.label())
      .field("n", cr.cell.n)
      .field("k", static_cast<std::int64_t>(cr.cell.k))
      .field("bias", cr.cell.bias)
      .field("engine", to_string(cr.cell.engine))
      .field("protocol", cr.cell.protocol)
      .field("round_divisor", cr.cell.round_divisor)
      .field("tau_epsilon", cr.cell.tau_epsilon)
      .field("kernel",
             kernels::to_string(cr.cell.kernel.value_or(default_kernel)))
      .field("trials_requested", static_cast<std::int64_t>(cr.trials_requested))
      .field("trials_run", static_cast<std::int64_t>(cr.trials_run))
      .field("params", params)
      .field("metrics", metric_objects);
  return c.str();
}

std::string SweepResult::to_json() const {
  // The report's cell array is a verbatim join of sweep_cell_json strings —
  // the per-cell bytes a service streams mid-job ARE the report's bytes.
  std::string cell_array = "[";
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c > 0) cell_array += ", ";
    cell_array += sweep_cell_json(cells[c], kernel);
  }
  cell_array += "]";
  JsonObject stopping_obj;
  stopping_obj.field("mode", stopping.adaptive ? "auto" : "fixed");
  if (stopping.adaptive) {
    stopping_obj.field("rel_err", stopping.rel_err)
        .field("confidence", stopping.confidence)
        .field("min_trials", static_cast<std::int64_t>(stopping.min_trials))
        .field("metric", stopping.metric);
  }
  JsonObject report;
  report.field("sweep", name)
      .field("trials_per_cell", static_cast<std::int64_t>(trials))
      .field("base_seed", static_cast<std::int64_t>(base_seed))
      .field("stopping", stopping_obj)
      .field("seeding", "xoshiro256pp stream(cell * trials + trial)")
      .field("kernel", kernels::to_string(kernel))
      .field_json("cells", cell_array);
  return report.str();
}

void SweepResult::write_json(const std::string& path) const {
  if (path.empty()) return;
  std::ofstream out(path);
  PPSIM_CHECK(out.good(), "cannot open json output file " + path);
  out << to_json() << "\n";
}

SweepRunner::SweepRunner(SweepSpec spec) : spec_(std::move(spec)) {
  PPSIM_CHECK(!spec_.name.empty(), "sweep spec must be named");
  PPSIM_CHECK(spec_.trials > 0, "sweep needs at least one trial per cell");
  // Stamp the spec default into every cell that didn't name its own kernel,
  // so trial lambdas and the report see the resolved kind uniformly (and
  // fail fast here if a requested kernel is unavailable on this host).
  for (SweepCell& cell : spec_.cells) {
    if (!cell.kernel.has_value()) cell.kernel = spec_.kernel;
    (void)kernels::resolve(*cell.kernel);
  }
}

unsigned SweepRunner::resolved_threads(const SweepSpec& spec) noexcept {
  // Clamp against the *initial* work-item bound cells x spec.trials (i.e.
  // cells x max_trials under adaptive stopping). The bound must not track
  // the dynamic adaptive work count: waves start at min_trials and may never
  // grow, but idle workers are cheap, whereas a schedule-dependent resolved
  // thread count would leak stopping decisions into a reported field.
  const std::size_t item_bound =
      std::max<std::size_t>(1, spec.cells.size() * spec.trials);
  unsigned threads =
      spec.threads == 0 ? std::thread::hardware_concurrency() : spec.threads;
  return std::max(1u, std::min<unsigned>(
                          threads, static_cast<unsigned>(std::min<std::size_t>(
                                       item_bound, 1u << 16))));
}

SweepResult SweepRunner::run(const SweepTrialFn& fn) const {
  return run_job(fn, SweepJobOptions{});
}

SweepResult SweepRunner::run(const SweepTrialFn& fn,
                             const LockstepPlanFn& plan) const {
  SweepJobOptions opts;
  opts.lockstep = plan;
  return run_job(fn, opts);
}

SweepResult SweepRunner::run_job(const SweepTrialFn& fn,
                                 const SweepJobOptions& opts) const {
  PPSIM_CHECK(static_cast<bool>(fn), "sweep trial function must be callable");
  PPSIM_CHECK(opts.skip.empty() || opts.skip.size() == spec_.cells.size(),
              "job skip mask must be empty or one entry per cell");
  const TrialStopping& stopping = spec_.stopping;
  if (stopping.adaptive) {
    PPSIM_CHECK(spec_.scheduler == SweepSchedulerKind::kWorkStealing,
                "the static pool cannot run adaptive stopping (fixed work "
                "range); use the work-stealing scheduler");
    PPSIM_CHECK(stopping.min_trials >= 2,
                "adaptive stopping needs min_trials >= 2 (a CI needs two "
                "observations)");
    PPSIM_CHECK(stopping.rel_err > 0.0, "adaptive rel_err must be positive");
    PPSIM_CHECK(stopping.confidence > 0.0 && stopping.confidence < 1.0,
                "adaptive confidence must be in (0, 1)");
    PPSIM_CHECK(!stopping.metric.empty(), "adaptive stopping needs a metric");
  }

  const std::size_t num_cells = spec_.cells.size();
  const std::size_t trials = spec_.trials;

  SweepResult result;
  result.name = spec_.name;
  result.trials = trials;
  result.base_seed = spec_.base_seed;
  result.stopping = stopping;
  result.kernel = spec_.kernel;
  result.threads = resolved_threads(spec_);
  result.cells.resize(num_cells);
  for (std::size_t c = 0; c < num_cells; ++c) {
    result.cells[c].cell = spec_.cells[c];
    result.cells[c].cell_index = c;
    result.cells[c].trials_requested = trials;
    // Pre-sized per-slot storage: every (cell, trial) task writes only its
    // own slot, so schedule order can never leak into the result. Skipped
    // cells stay empty — the caller splices their data in afterwards.
    if (opts.skip.empty() || !opts.skip[c]) {
      result.cells[c].trials.resize(trials);
    }
  }
  if (num_cells == 0) return result;

  const auto start = std::chrono::steady_clock::now();

  result = spec_.scheduler == SweepSchedulerKind::kStaticPool
               ? run_static_pool(fn, opts, std::move(result))
               : run_work_stealing(fn, opts, std::move(result));

  result.cancelled =
      opts.cancel != nullptr && opts.cancel->load(std::memory_order_acquire);

  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  result.wall_seconds = elapsed.count();
  return result;
}

SweepResult SweepRunner::run_static_pool(const SweepTrialFn& fn,
                                         const SweepJobOptions& opts,
                                         SweepResult result) const {
  // The pre-scheduler baseline: a fixed pool walking one shared atomic
  // counter over the cell-major (cell, trial) range. Kept for measured
  // comparisons (bench_throughput --mixed-grid) and as a differential
  // oracle: its output must match the work-stealing path byte for byte —
  // including the job surface, so it carries the same per-cell completion
  // accounting (last finisher aggregates and fires on_cell).
  const std::size_t num_cells = spec_.cells.size();
  const std::size_t trials = spec_.trials;
  const std::size_t total = num_cells * trials;

  const auto skipped = [&](std::size_t c) {
    return !opts.skip.empty() && opts.skip[c];
  };
  const auto stop_requested = [&] {
    return opts.cancel != nullptr &&
           opts.cancel->load(std::memory_order_acquire);
  };

  // remaining[c] counts this cell's not-yet-finished trials; the worker
  // that drops it to zero owns the cell's aggregation + callback.
  std::vector<std::atomic<std::size_t>> remaining(num_cells);
  for (std::size_t c = 0; c < num_cells; ++c) {
    remaining[c].store(trials, std::memory_order_relaxed);
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      if (stop_requested()) return;  // leave unfinished cells incomplete
      const std::size_t item = next.fetch_add(1, std::memory_order_relaxed);
      if (item >= total) return;
      const std::size_t c = item / trials;
      const std::size_t t = item % trials;
      if (skipped(c)) continue;
      try {
        const std::uint64_t index = stream_index(c, trials, t);
        Xoshiro256pp rng = trial_stream(spec_.base_seed, index);
        const std::uint64_t seed = rng();
        const SweepTrial ctx{spec_.cells[c], c, t, index, seed, rng};
        result.cells[c].trials[t] = fn(ctx);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        next.store(total, std::memory_order_relaxed);  // drain the queue
        return;
      }
      if (remaining[c].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        SweepCellResult& cr = result.cells[c];
        cr.trials_run = trials;
        aggregate_sweep_cell(cr);
        if (opts.on_cell) opts.on_cell(cr);
      }
    }
  };

  if (result.threads == 1) {
    worker();
  } else {
    std::vector<std::jthread> pool;
    pool.reserve(result.threads);
    for (unsigned i = 0; i < result.threads; ++i) pool.emplace_back(worker);
    pool.clear();  // joins
  }
  if (first_error) std::rethrow_exception(first_error);
  // A cancelled (or errored-elsewhere) job may leave cells short of their
  // trial count; return those empty rather than half-filled.
  for (std::size_t c = 0; c < num_cells; ++c) {
    SweepCellResult& cr = result.cells[c];
    if (skipped(c) || remaining[c].load(std::memory_order_acquire) > 0) {
      cr.trials.clear();
      cr.trials_run = 0;
    }
  }
  return result;
}

SweepResult SweepRunner::run_work_stealing(const SweepTrialFn& fn,
                                           const SweepJobOptions& opts,
                                           SweepResult result) const {
  const std::size_t num_cells = spec_.cells.size();
  const std::size_t cap = spec_.trials;
  const TrialStopping& stopping = spec_.stopping;
  const std::size_t first_wave =
      stopping.adaptive ? std::min(stopping.min_trials, cap) : cap;

  const auto skipped = [&](std::size_t c) {
    return !opts.skip.empty() && opts.skip[c];
  };

  // Lockstep eligibility, decided up front on the controller thread. A
  // lockstep cell's trials run in groups of the kernel's lockstep width
  // through the collapsed engine's staging API; adaptive stopping issues
  // trials in data-dependent waves that would split the groups, so it
  // forces the per-trial path.
  std::vector<std::optional<LockstepPlan>> lockstep(num_cells);
  if (opts.lockstep && !stopping.adaptive) {
    for (std::size_t c = 0; c < num_cells; ++c) {
      const SweepCell& cell = spec_.cells[c];
      if (skipped(c) || cell.engine != EngineKind::kCollapsed) continue;
      lockstep[c] = opts.lockstep(cell);
      if (!lockstep[c].has_value()) continue;
      PPSIM_CHECK(lockstep[c]->protocol != nullptr &&
                      lockstep[c]->initial != nullptr &&
                      lockstep[c]->budget > 0,
                  "lockstep plan needs a protocol, an initial configuration "
                  "and a positive interaction budget");
    }
  }

  // Per-cell job state. `outstanding` and `executed` are the only fields
  // touched by concurrent trial tasks; everything else is owned by the wave
  // controller, which runs exclusively (the counter reaches zero exactly
  // once per wave, and the next wave's counter is set before any of its
  // tasks exist).
  struct CellControl {
    std::atomic<std::size_t> outstanding{0};
    std::atomic<std::size_t> executed{0};  ///< trials actually run (no holes)
    std::size_t scheduled = 0;  ///< trials submitted so far
    std::size_t consumed = 0;   ///< trials folded into the streaming CI
    bool done = false;          ///< finish_cell ran (aggregated + delivered)
    std::unique_ptr<StreamingCi> ci;
  };
  std::vector<CellControl> control(num_cells);

  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::atomic<bool> cancelled{false};

  // Cooperative stop: the caller's cancel flag or an internal trial error.
  // Checked before *starting* work — in-flight trials always finish, so a
  // fully executed cell can still be aggregated and delivered.
  const auto stop_requested = [&] {
    return cancelled.load(std::memory_order_acquire) ||
           (opts.cancel != nullptr &&
            opts.cancel->load(std::memory_order_acquire));
  };

  TaskScheduler scheduler(result.threads);

  std::function<void(std::size_t)> wave_complete;

  // Completes a cell: aggregate the deterministic trial data and hand the
  // finished SweepCellResult to the caller. Runs on whichever worker
  // finished the cell's last trial, concurrently with other cells' work —
  // safe because it touches only this cell's slot and the callback's own
  // synchronization is the callee's contract.
  auto finish_cell = [&](std::size_t c) {
    CellControl& cc = control[c];
    SweepCellResult& cr = result.cells[c];
    cr.trials_run = cc.scheduled;
    aggregate_sweep_cell(cr);
    cc.done = true;
    if (opts.on_cell) opts.on_cell(cr);
  };

  // One (cell, trial) task: run the trial into its pre-sized slot, then
  // decrement the cell's wave counter. The wave's last decrement (acq_rel)
  // acquires every slot write the wave made, so the controller running in
  // wave_complete reads settled data.
  auto trial_task = [&](std::size_t c, std::size_t t) {
    return [&, c, t] {
      if (!stop_requested()) {
        try {
          const std::uint64_t index = stream_index(c, cap, t);
          Xoshiro256pp rng = trial_stream(spec_.base_seed, index);
          const std::uint64_t seed = rng();
          const SweepTrial ctx{spec_.cells[c], c, t, index, seed, rng};
          result.cells[c].trials[t] = fn(ctx);
          control[c].executed.fetch_add(1, std::memory_order_relaxed);
        } catch (...) {
          {
            const std::lock_guard<std::mutex> lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
          }
          cancelled.store(true, std::memory_order_release);
        }
      }
      if (control[c].outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        wave_complete(c);
      }
    };
  };

  // Runs trials [from, to) of a lockstep cell as one group: per-lane
  // engines replicate the per-trial seed discipline (the trial's scalar
  // `seed` draw, then make_engine's own draw), and every round all live
  // lanes stage their kernel task so one advance_batch call samples them
  // together. With the scalar kernel this is draw-for-draw identical to the
  // per-trial path; with the AVX2 kernel the lanes advance in SIMD lockstep.
  auto run_lockstep_group = [&](std::size_t c, std::size_t from,
                                std::size_t to) {
    const SweepCell& cell = spec_.cells[c];
    const LockstepPlan& lp = *lockstep[c];
    const kernels::KernelKind kind =
        cell.kernel.value_or(kernels::KernelKind::kScalar);
    const kernels::RoundKernel& kernel = kernels::resolve(kind);
    const std::size_t lanes = to - from;
    std::vector<std::unique_ptr<CollapsedSimulator>> sims;
    sims.reserve(lanes);
    for (std::size_t t = from; t < to; ++t) {
      Xoshiro256pp rng = trial_stream(spec_.base_seed, stream_index(c, cap, t));
      (void)rng();  // the per-trial path's SweepTrial::seed draw
      CollapsedSimulator::Options opts;
      opts.tau_epsilon = cell.tau_epsilon;
      opts.kernel = kind;
      sims.push_back(std::make_unique<CollapsedSimulator>(
          *lp.protocol, Configuration(*lp.initial), rng(), opts));
    }
    std::vector<kernels::RoundTask> tasks(lanes);
    std::vector<kernels::RoundTask*> staged;
    std::vector<std::size_t> staged_lane;
    std::vector<bool> done(lanes, false);
    std::size_t live = lanes;
    while (live > 0) {
      staged.clear();
      staged_lane.clear();
      for (std::size_t l = 0; l < lanes; ++l) {
        if (done[l]) continue;
        CollapsedSimulator& sim = *sims[l];
        // Mirror run_until_stable's loop: stop on budget or stability,
        // then package the same TrialResult run_engine_trial would.
        if (sim.interactions() >= lp.budget || sim.is_stable()) {
          TrialResult r;
          r.stabilized = sim.is_stable();
          r.interactions = sim.interactions();
          r.clamped = sim.clamped_interactions();
          r.parallel_time = sim.parallel_time();
          r.winner = sim.consensus_output();
          result.cells[c].trials[from + l] = consensus_metrics(r);
          done[l] = true;
          --live;
          continue;
        }
        if (sim.stage_round(lp.budget - sim.interactions(), tasks[l])) {
          staged.push_back(&tasks[l]);
          staged_lane.push_back(l);
        }
      }
      if (!staged.empty()) {
        kernel.advance_batch(staged);
        for (std::size_t i = 0; i < staged.size(); ++i) {
          sims[staged_lane[i]]->commit_round(*staged[i]);
        }
      }
    }
  };

  auto group_task = [&](std::size_t c, std::size_t from, std::size_t to) {
    return [&, c, from, to] {
      if (!stop_requested()) {
        try {
          run_lockstep_group(c, from, to);
          control[c].executed.fetch_add(to - from, std::memory_order_relaxed);
        } catch (...) {
          {
            const std::lock_guard<std::mutex> lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
          }
          cancelled.store(true, std::memory_order_release);
        }
      }
      if (control[c].outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        wave_complete(c);
      }
    };
  };

  auto submit_wave = [&](std::size_t c, std::size_t from, std::size_t to) {
    CellControl& cc = control[c];
    cc.outstanding.store(to - from, std::memory_order_relaxed);
    cc.scheduled = to;
    for (std::size_t t = from; t < to; ++t) {
      scheduler.submit(trial_task(c, t));
    }
  };

  wave_complete = [&](std::size_t c) {
    CellControl& cc = control[c];
    SweepCellResult& cr = result.cells[c];
    // Holes (trials skipped by a stop, or lost to an error) mean this cell
    // has incomplete data: leave it unfinished — it is cleared after the
    // drain, and the error path rethrows anyway.
    if (cc.executed.load(std::memory_order_relaxed) != cc.scheduled) return;
    if (!stopping.adaptive) {
      finish_cell(c);
      return;
    }
    // Fold the newly completed prefix into the streaming CI in trial-index
    // order. The stopping decision therefore depends only on (base_seed,
    // cell, wave sizes) — never on which worker finished first.
    for (std::size_t t = cc.consumed; t < cc.scheduled; ++t) {
      for (const auto& [name_, value] : cr.trials[t]) {
        if (name_ == stopping.metric) {
          cc.ci->add(value);
          break;
        }
      }
    }
    cc.consumed = cc.scheduled;
    const bool metric_unobserved = cc.ci->count() == 0;
    if (cc.scheduled >= cap || metric_unobserved ||
        cc.ci->within_relative_error(stopping.rel_err) || stop_requested()) {
      // stop_requested: don't open another wave, but this cell's completed
      // prefix is valid deterministic data — deliver it.
      finish_cell(c);
      return;
    }
    submit_wave(c, cc.scheduled, std::min(cap, cc.scheduled * 2));
  };

  // Lockstep cells submit one task per trial *group* (the kernel's lockstep
  // width); everything else keeps the per-trial tasks. Groups are formed
  // from consecutive trial indices only — never from "whatever is ready" —
  // so the grouping is a pure function of (cell, cap, width) and results
  // stay schedule-independent.
  std::vector<std::size_t> group_width(num_cells, 0);
  for (std::size_t c = 0; c < num_cells; ++c) {
    if (skipped(c)) continue;  // no tasks, no waves, no callback
    if (stopping.adaptive) {
      control[c].ci = std::make_unique<StreamingCi>(stopping.confidence);
    }
    if (lockstep[c].has_value()) {
      const kernels::KernelKind kind =
          spec_.cells[c].kernel.value_or(kernels::KernelKind::kScalar);
      const std::size_t width =
          std::max<std::size_t>(1, kernels::resolve(kind).lockstep_width());
      group_width[c] = width;
      const std::size_t groups = (cap + width - 1) / width;
      control[c].outstanding.store(groups, std::memory_order_relaxed);
      control[c].scheduled = cap;
    } else {
      control[c].outstanding.store(first_wave, std::memory_order_relaxed);
      control[c].scheduled = first_wave;
    }
  }
  // Interleave the initial submission by trial index across cells (trial 0
  // of every cell, then trial 1, ...): expensive cells start on the first
  // scheduling round instead of queueing behind every earlier cell's full
  // trial range — the convoy the static pool's cell-major order suffers.
  // Lockstep groups join the interleave at their first trial index.
  for (std::size_t t = 0; t < first_wave; ++t) {
    for (std::size_t c = 0; c < num_cells; ++c) {
      if (skipped(c)) continue;
      if (group_width[c] > 0) {
        if (t % group_width[c] == 0 && t < cap) {
          scheduler.submit(group_task(c, t, std::min(cap, t + group_width[c])));
        }
      } else {
        scheduler.submit(trial_task(c, t));
      }
    }
  }
  scheduler.wait_idle();
  result.scheduler_stats = scheduler.stats();
  if (first_error) std::rethrow_exception(first_error);
  // Cells a stop left incomplete come back empty, never half-filled.
  for (std::size_t c = 0; c < num_cells; ++c) {
    SweepCellResult& cr = result.cells[c];
    if (skipped(c) || !control[c].done) {
      cr.trials.clear();
      cr.trials_run = 0;
      cr.aggregates.clear();
    }
  }
  return result;
}

SweepMetrics consensus_metrics(const TrialResult& r) {
  return {
      {"stabilized", r.stabilized ? 1.0 : 0.0},
      {"parallel_time", r.parallel_time},
      {"interactions", static_cast<double>(r.interactions)},
      {"clamped", static_cast<double>(r.clamped)},
      {"effective_interactions", static_cast<double>(r.interactions - r.clamped)},
      {"winner", r.winner.has_value() ? static_cast<double>(*r.winner) : -1.0},
      {"majority_win", r.winner.has_value() && *r.winner == 0 ? 1.0 : 0.0},
  };
}

void SweepCliOptions::configure(SweepSpec& spec) const {
  spec.trials = trials;
  spec.base_seed = seed;
  spec.threads = threads;
  spec.stopping = stopping;
  spec.kernel = kernel;
}

SweepCliOptions read_sweep_flags(Cli& cli, std::size_t default_trials,
                                 std::uint64_t default_seed,
                                 const std::string& default_json) {
  SweepCliOptions opts;
  const std::string trials_flag =
      cli.get_string("trials", std::to_string(default_trials));
  const auto min_trials =
      static_cast<std::size_t>(cli.get_int("min-trials", 8));
  const auto max_trials =
      static_cast<std::size_t>(cli.get_int("max-trials", 512));
  if (trials_flag == "auto" || trials_flag.rfind("auto:", 0) == 0) {
    opts.stopping.adaptive = true;
    if (trials_flag.size() > 4) {
      const std::string rel = trials_flag.substr(5);
      std::size_t consumed = 0;
      double rel_err = 0.0;
      try {
        rel_err = std::stod(rel, &consumed);
      } catch (const std::exception&) {
        consumed = 0;
      }
      PPSIM_CHECK(!rel.empty() && consumed == rel.size(),
                  "--trials auto:REL needs a numeric REL, got '" + rel + "'");
      opts.stopping.rel_err = rel_err;
    }
    PPSIM_CHECK(opts.stopping.rel_err > 0.0, "--trials auto rel_err must be > 0");
    PPSIM_CHECK(min_trials >= 2, "--min-trials must be at least 2");
    PPSIM_CHECK(max_trials >= min_trials,
                "--max-trials must be >= --min-trials");
    opts.stopping.min_trials = min_trials;
    opts.trials = max_trials;  // the per-cell cap
  } else {
    std::size_t consumed = 0;
    long long fixed = 0;
    try {
      fixed = std::stoll(trials_flag, &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    PPSIM_CHECK(!trials_flag.empty() && consumed == trials_flag.size() &&
                    fixed > 0,
                "--trials must be a positive count or auto[:rel_err], got '" +
                    trials_flag + "'");
    opts.trials = static_cast<std::size_t>(fixed);
  }
  opts.seed = static_cast<std::uint64_t>(
      cli.get_int("seed", static_cast<std::int64_t>(default_seed)));
  opts.threads = static_cast<unsigned>(cli.get_int("threads", 0));
  opts.json = cli.get_string("json", default_json);
  opts.kernel = kernels::parse_kernel_flag(cli.get_string("kernel", "auto"));
  opts.record_to = cli.get_string("record-to", "");
  opts.checkpoint_every = cli.get_int("checkpoint-every", 0);
  PPSIM_CHECK(opts.checkpoint_every >= 0,
              "--checkpoint-every must be non-negative");
  opts.scenario.adversary_strength = cli.get_double("adversary", 0.0);
  PPSIM_CHECK(opts.scenario.adversary_strength >= 0.0 &&
                  opts.scenario.adversary_strength <= 1.0,
              "--adversary strength must be in [0, 1]");
  // --churn RATE[:undecided|uniform] — the policy suffix picks the state
  // joiners enter (default undecided, the paper's ⊥).
  const std::string churn_flag = cli.get_string("churn", "0");
  std::string churn_rate = churn_flag;
  if (const auto colon = churn_flag.find(':'); colon != std::string::npos) {
    churn_rate = churn_flag.substr(0, colon);
    const std::string policy = churn_flag.substr(colon + 1);
    if (policy == "uniform") {
      opts.scenario.churn_joiners_undecided = false;
    } else {
      PPSIM_CHECK(policy == "undecided",
                  "--churn policy must be undecided or uniform, got '" +
                      policy + "'");
    }
  }
  {
    std::size_t consumed = 0;
    double rate = 0.0;
    try {
      rate = std::stod(churn_rate, &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    PPSIM_CHECK(!churn_rate.empty() && consumed == churn_rate.size() &&
                    rate >= 0.0 && rate <= 1.0,
                "--churn must be RATE[:undecided|uniform] with RATE in "
                "[0, 1], got '" +
                    churn_flag + "'");
    opts.scenario.churn_rate = rate;
  }
  opts.scenario.regraph_every = cli.get_int("regraph", 0);
  PPSIM_CHECK(opts.scenario.regraph_every >= 0,
              "--regraph must be a non-negative round count");
  return opts;
}

}  // namespace ppsim
