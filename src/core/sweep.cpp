#include "ppsim/core/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <fstream>
#include <mutex>
#include <thread>

#include "ppsim/util/check.hpp"
#include "ppsim/util/json.hpp"

namespace ppsim {

double SweepCell::param(const std::string& key, double fallback) const {
  for (const auto& [name_, value] : params) {
    if (name_ == key) return value;
  }
  return fallback;
}

std::string SweepCell::label() const {
  if (!name.empty()) return name;
  return "n=" + std::to_string(n) + ",k=" + std::to_string(k);
}

Engine SweepTrial::make_engine(const Protocol& protocol,
                               Configuration initial) const {
  // Each engine built by this trial draws its own scalar seed from the
  // trial's private stream, so a trial comparing several engines (e.g.
  // bench_gossip_compare) seeds them from disjoint draws deterministically.
  return Engine(cell.engine, protocol, std::move(initial), rng(),
                {.round_divisor = cell.round_divisor},
                {.tau_epsilon = cell.tau_epsilon});
}

const SweepMetricAggregate* SweepCellResult::find(const std::string& metric) const {
  for (const auto& agg : aggregates) {
    if (agg.metric == metric) return &agg;
  }
  return nullptr;
}

std::vector<double> SweepCellResult::values(const std::string& metric) const {
  const SweepMetricAggregate* agg = find(metric);
  return agg == nullptr ? std::vector<double>{} : agg->values;
}

double SweepCellResult::mean(const std::string& metric, double fallback) const {
  const SweepMetricAggregate* agg = find(metric);
  return agg == nullptr || agg->summary.count == 0 ? fallback : agg->summary.mean;
}

double SweepCellResult::sum(const std::string& metric) const {
  double total = 0.0;
  for (const double v : values(metric)) total += v;
  return total;
}

double SweepCellResult::min(const std::string& metric, double fallback) const {
  const SweepMetricAggregate* agg = find(metric);
  return agg == nullptr || agg->summary.count == 0 ? fallback : agg->summary.min;
}

double SweepCellResult::max(const std::string& metric, double fallback) const {
  const SweepMetricAggregate* agg = find(metric);
  return agg == nullptr || agg->summary.count == 0 ? fallback : agg->summary.max;
}

std::vector<double> SweepCellResult::values_where(const std::string& value,
                                                  const std::string& flag) const {
  std::vector<double> selected;
  for (const SweepMetrics& trial : trials) {
    bool flagged = false;
    std::optional<double> v;
    for (const auto& [metric, x] : trial) {
      if (metric == flag && x != 0.0) flagged = true;
      if (metric == value) v = x;
    }
    if (flagged && v.has_value()) selected.push_back(*v);
  }
  return selected;
}

double SweepCellResult::mean_where(const std::string& value, const std::string& flag,
                                   double fallback) const {
  const std::vector<double> selected = values_where(value, flag);
  if (selected.empty()) return fallback;
  double total = 0.0;
  for (const double v : selected) total += v;
  return total / static_cast<double>(selected.size());
}

double SweepCellResult::min_where(const std::string& value, const std::string& flag,
                                  double fallback) const {
  const std::vector<double> selected = values_where(value, flag);
  return selected.empty() ? fallback
                          : *std::min_element(selected.begin(), selected.end());
}

double SweepCellResult::max_where(const std::string& value, const std::string& flag,
                                  double fallback) const {
  const std::vector<double> selected = values_where(value, flag);
  return selected.empty() ? fallback
                          : *std::max_element(selected.begin(), selected.end());
}

double SweepCellResult::rate(const std::string& flag) const {
  if (trials.empty()) return 0.0;
  std::size_t hits = 0;
  for (const SweepMetrics& trial : trials) {
    for (const auto& [metric, x] : trial) {
      if (metric == flag && x != 0.0) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(trials.size());
}

std::string SweepResult::to_json() const {
  std::vector<JsonObject> cell_objects;
  cell_objects.reserve(cells.size());
  for (const SweepCellResult& cr : cells) {
    JsonObject params;
    for (const auto& [key, value] : cr.cell.params) params.field(key, value);
    std::vector<JsonObject> metric_objects;
    metric_objects.reserve(cr.aggregates.size());
    for (const SweepMetricAggregate& agg : cr.aggregates) {
      JsonObject m;
      m.field("metric", agg.metric)
          .field("count", agg.summary.count)
          .field("mean", agg.summary.mean)
          .field("stddev", agg.summary.stddev)
          .field("min", agg.summary.min)
          .field("p25", agg.summary.p25)
          .field("median", agg.summary.median)
          .field("p75", agg.summary.p75)
          .field("max", agg.summary.max)
          .field("values", agg.values);
      metric_objects.push_back(m);
    }
    JsonObject c;
    c.field("cell", cr.cell.label())
        .field("n", cr.cell.n)
        .field("k", static_cast<std::int64_t>(cr.cell.k))
        .field("bias", cr.cell.bias)
        .field("engine", to_string(cr.cell.engine))
        .field("protocol", cr.cell.protocol)
        .field("round_divisor", cr.cell.round_divisor)
        .field("tau_epsilon", cr.cell.tau_epsilon)
        .field("params", params)
        .field("metrics", metric_objects);
    cell_objects.push_back(c);
  }
  JsonObject report;
  report.field("sweep", name)
      .field("trials_per_cell", static_cast<std::int64_t>(trials))
      .field("base_seed", static_cast<std::int64_t>(base_seed))
      .field("seeding", "xoshiro256pp stream(cell * trials + trial)")
      .field("cells", cell_objects);
  return report.str();
}

void SweepResult::write_json(const std::string& path) const {
  if (path.empty()) return;
  std::ofstream out(path);
  PPSIM_CHECK(out.good(), "cannot open json output file " + path);
  out << to_json() << "\n";
}

SweepRunner::SweepRunner(SweepSpec spec) : spec_(std::move(spec)) {
  PPSIM_CHECK(!spec_.name.empty(), "sweep spec must be named");
  PPSIM_CHECK(spec_.trials > 0, "sweep needs at least one trial per cell");
}

SweepResult SweepRunner::run(const SweepTrialFn& fn) const {
  PPSIM_CHECK(static_cast<bool>(fn), "sweep trial function must be callable");
  const std::size_t num_cells = spec_.cells.size();
  const std::size_t trials = spec_.trials;
  const std::size_t total = num_cells * trials;

  SweepResult result;
  result.name = spec_.name;
  result.trials = trials;
  result.base_seed = spec_.base_seed;
  result.cells.resize(num_cells);
  for (std::size_t c = 0; c < num_cells; ++c) {
    result.cells[c].cell = spec_.cells[c];
    result.cells[c].cell_index = c;
    result.cells[c].trials.resize(trials);
  }

  unsigned threads =
      spec_.threads == 0 ? std::thread::hardware_concurrency() : spec_.threads;
  threads = std::max(1u, std::min<unsigned>(
                             threads, static_cast<unsigned>(std::min<std::size_t>(
                                          total, 1u << 16))));
  result.threads = threads;
  if (total == 0) return result;

  const auto start = std::chrono::steady_clock::now();

  // One work item per (cell, trial); items are claimed dynamically but each
  // writes only its own slot, so the result is scheduling-independent.
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      const std::size_t item = next.fetch_add(1, std::memory_order_relaxed);
      if (item >= total) return;
      const std::size_t c = item / trials;
      const std::size_t t = item % trials;
      try {
        const std::uint64_t index = stream_index(c, trials, t);
        Xoshiro256pp rng = trial_stream(spec_.base_seed, index);
        const std::uint64_t seed = rng();
        const SweepTrial ctx{spec_.cells[c], c, t, index, seed, rng};
        result.cells[c].trials[t] = fn(ctx);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        next.store(total, std::memory_order_relaxed);  // drain the queue
        return;
      }
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::jthread> pool;
    pool.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) pool.emplace_back(worker);
    pool.clear();  // joins
  }
  if (first_error) std::rethrow_exception(first_error);

  // Aggregate sequentially (cheap relative to the trials, and sequential
  // aggregation keeps metric order = first-occurrence order deterministic).
  for (SweepCellResult& cr : result.cells) {
    std::vector<std::string> order;
    for (const SweepMetrics& trial : cr.trials) {
      for (const auto& [metric, value] : trial) {
        (void)value;
        if (std::find(order.begin(), order.end(), metric) == order.end()) {
          order.push_back(metric);
        }
      }
    }
    for (const std::string& metric : order) {
      SweepMetricAggregate agg;
      agg.metric = metric;
      for (const SweepMetrics& trial : cr.trials) {
        for (const auto& [name_, value] : trial) {
          if (name_ == metric) agg.values.push_back(value);
        }
      }
      agg.summary = summarize(agg.values);
      cr.aggregates.push_back(std::move(agg));
    }
  }

  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  result.wall_seconds = elapsed.count();
  return result;
}

SweepMetrics consensus_metrics(const TrialResult& r) {
  return {
      {"stabilized", r.stabilized ? 1.0 : 0.0},
      {"parallel_time", r.parallel_time},
      {"interactions", static_cast<double>(r.interactions)},
      {"clamped", static_cast<double>(r.clamped)},
      {"effective_interactions", static_cast<double>(r.interactions - r.clamped)},
      {"winner", r.winner.has_value() ? static_cast<double>(*r.winner) : -1.0},
      {"majority_win", r.winner.has_value() && *r.winner == 0 ? 1.0 : 0.0},
  };
}

SweepCliOptions read_sweep_flags(Cli& cli, std::size_t default_trials,
                                 std::uint64_t default_seed,
                                 const std::string& default_json) {
  SweepCliOptions opts;
  opts.trials = static_cast<std::size_t>(
      cli.get_int("trials", static_cast<std::int64_t>(default_trials)));
  opts.seed = static_cast<std::uint64_t>(
      cli.get_int("seed", static_cast<std::int64_t>(default_seed)));
  opts.threads = static_cast<unsigned>(cli.get_int("threads", 0));
  opts.json = cli.get_string("json", default_json);
  PPSIM_CHECK(opts.trials > 0, "--trials must be positive");
  return opts;
}

}  // namespace ppsim
