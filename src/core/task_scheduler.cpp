#include "ppsim/core/task_scheduler.hpp"

#include <algorithm>
#include <chrono>

#include "ppsim/util/check.hpp"

namespace ppsim {
namespace {

// Identifies the worker a thread belongs to so submit() can route
// worker-local submissions to the submitter's own deque.
thread_local TaskScheduler* tls_scheduler = nullptr;
thread_local std::size_t tls_worker_index = 0;

std::uint64_t xorshift64(std::uint64_t& s) noexcept {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

}  // namespace

TaskScheduler::TaskScheduler(unsigned threads) {
  const unsigned count = std::max(1u, threads);
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    auto w = std::make_unique<Worker>();
    // Any nonzero, distinct seeds work: victim order only affects timing.
    w->victim_rng = 0x9e3779b97f4a7c15ull ^ (i + 1);
    workers_.push_back(std::move(w));
  }
  threads_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

TaskScheduler::~TaskScheduler() {
  wait_idle();
  stop_.store(true, std::memory_order_release);
  {
    const std::lock_guard<std::mutex> lock(park_mutex_);
    work_cv_.notify_all();
  }
  threads_.clear();  // joins
}

void TaskScheduler::submit(Task task) {
  PPSIM_CHECK(static_cast<bool>(task), "cannot submit an empty task");
  std::size_t target;
  if (tls_scheduler == this) {
    target = tls_worker_index;  // worker-local: stay on the submitter's deque
  } else {
    target = round_robin_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  }
  pending_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(workers_[target]->mutex);
    workers_[target]->queue.push_back(std::move(task));
  }
  {
    const std::lock_guard<std::mutex> lock(park_mutex_);
    work_cv_.notify_all();
  }
}

void TaskScheduler::wait_idle() {
  std::unique_lock<std::mutex> lock(park_mutex_);
  idle_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

TaskScheduler::Stats TaskScheduler::stats() const {
  Stats total;
  for (const auto& w : workers_) {
    const std::lock_guard<std::mutex> lock(w->mutex);
    total.executed += w->executed;
    total.steals += w->steals;
    total.stolen_tasks += w->stolen_tasks;
  }
  return total;
}

bool TaskScheduler::try_pop_own(std::size_t self, Task& task) {
  Worker& w = *workers_[self];
  const std::lock_guard<std::mutex> lock(w.mutex);
  if (w.queue.empty()) return false;
  task = std::move(w.queue.back());
  w.queue.pop_back();
  return true;
}

bool TaskScheduler::try_steal(std::size_t self, Task& task) {
  Worker& me = *workers_[self];
  const std::size_t count = workers_.size();
  if (count == 1) return false;
  // Visit the other workers starting from a random offset, so simultaneous
  // thieves fan out over different victims.
  const std::size_t start = xorshift64(me.victim_rng) % count;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t victim_index = (start + i) % count;
    if (victim_index == self) continue;
    Worker& victim = *workers_[victim_index];
    std::vector<Task> loot;
    {
      const std::lock_guard<std::mutex> lock(victim.mutex);
      const std::size_t available = victim.queue.size();
      if (available == 0) continue;
      // Steal-half, oldest first: the front of the deque is the work the
      // owner would get to last.
      const std::size_t take = (available + 1) / 2;
      loot.reserve(take);
      for (std::size_t j = 0; j < take; ++j) {
        loot.push_back(std::move(victim.queue.front()));
        victim.queue.pop_front();
      }
    }
    task = std::move(loot.front());
    {
      const std::lock_guard<std::mutex> lock(me.mutex);
      me.steals += 1;
      me.stolen_tasks += loot.size();
      for (std::size_t j = 1; j < loot.size(); ++j) {
        me.queue.push_back(std::move(loot[j]));
      }
    }
    if (loot.size() > 1) {
      // The surplus we just re-queued is stealable in turn.
      const std::lock_guard<std::mutex> lock(park_mutex_);
      work_cv_.notify_all();
    }
    return true;
  }
  return false;
}

void TaskScheduler::worker_loop(std::size_t self) {
  tls_scheduler = this;
  tls_worker_index = self;
  // Bounded spinning before parking: a couple of full victim sweeps covers
  // the transient where work exists but sits in another deque.
  constexpr int kSpinRounds = 4;
  std::chrono::microseconds backoff{128};
  constexpr std::chrono::microseconds kMaxBackoff{4000};
  for (;;) {
    Task task;
    bool found = try_pop_own(self, task);
    if (!found) {
      for (int round = 0; round < kSpinRounds && !found; ++round) {
        found = try_steal(self, task);
      }
    }
    if (found) {
      backoff = std::chrono::microseconds{128};
      task();
      task = nullptr;  // release captures before accounting
      {
        const std::lock_guard<std::mutex> lock(workers_[self]->mutex);
        workers_[self]->executed += 1;
      }
      // Finish AFTER execution: tasks submitted by this task have already
      // raised pending_, so the count can only reach zero once the whole
      // transitive frontier is done.
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const std::lock_guard<std::mutex> lock(park_mutex_);
        idle_cv_.notify_all();
      }
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) return;
    // Park with a growing timeout. The timeout (rather than a precise
    // predicate) bounds the cost of any submit/park race to one backoff
    // period; submissions also notify work_cv_ eagerly.
    std::unique_lock<std::mutex> lock(park_mutex_);
    work_cv_.wait_for(lock, backoff);
    backoff = std::min(kMaxBackoff, backoff * 2);
  }
}

}  // namespace ppsim
