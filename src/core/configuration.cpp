#include "ppsim/core/configuration.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "ppsim/util/check.hpp"

namespace ppsim {

Configuration::Configuration(std::vector<Count> counts) : counts_(std::move(counts)) {
  PPSIM_CHECK(!counts_.empty(), "configuration needs at least one state");
  for (const Count c : counts_) {
    PPSIM_CHECK(c >= 0, "per-state counts must be non-negative");
  }
  population_ = std::accumulate(counts_.begin(), counts_.end(), Count{0});
}

Configuration Configuration::monochromatic(std::size_t num_states, State s, Count n) {
  PPSIM_CHECK(s < num_states, "state out of range");
  PPSIM_CHECK(n >= 0, "population must be non-negative");
  std::vector<Count> counts(num_states, 0);
  counts[s] = n;
  return Configuration(std::move(counts));
}

Count Configuration::count(State s) const {
  PPSIM_CHECK(s < counts_.size(), "state out of range");
  return counts_[s];
}

void Configuration::move_agent(State from, State to) { move_agents(from, to, 1); }

void Configuration::move_agents(State from, State to, Count m) {
  PPSIM_CHECK(from < counts_.size() && to < counts_.size(), "state out of range");
  PPSIM_CHECK(m >= 0, "cannot move a negative number of agents");
  if (from == to || m == 0) return;
  PPSIM_CHECK(counts_[from] >= m, "not enough agents in source state");
  counts_[from] -= m;
  counts_[to] += m;
}

void Configuration::add_agents(State s, Count m) {
  PPSIM_CHECK(s < counts_.size(), "state out of range");
  PPSIM_CHECK(m >= 0, "cannot add a negative number of agents");
  counts_[s] += m;
  population_ += m;
}

void Configuration::remove_agents(State s, Count m) {
  PPSIM_CHECK(s < counts_.size(), "state out of range");
  PPSIM_CHECK(m >= 0, "cannot remove a negative number of agents");
  PPSIM_CHECK(counts_[s] >= m, "not enough agents in the departing state");
  counts_[s] -= m;
  population_ -= m;
}

bool Configuration::is_monochromatic() const noexcept {
  for (const Count c : counts_) {
    if (c == population_) return true;
    if (c != 0) return false;
  }
  // All-zero counts (empty population) counts as monochromatic.
  return true;
}

State Configuration::argmax() const noexcept {
  const auto it = std::max_element(counts_.begin(), counts_.end());
  return static_cast<State>(std::distance(counts_.begin(), it));
}

std::size_t Configuration::support_size() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(counts_.begin(), counts_.end(), [](Count c) { return c > 0; }));
}

std::string Configuration::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (i > 0) os << ", ";
    os << counts_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace ppsim
