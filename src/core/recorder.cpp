#include "ppsim/core/recorder.hpp"

#include "ppsim/util/check.hpp"

namespace ppsim {

Recorder::Recorder(Interactions stride) : stride_(stride) {
  PPSIM_CHECK(stride > 0, "recorder stride must be positive");
}

void Recorder::add_channel(std::string name, Projection projection) {
  PPSIM_CHECK(!opened_, "channels must be added before the first sample");
  validate_channel_name(name);
  channel_names_.push_back(std::move(name));
  projections_.push_back(std::move(projection));
}

void Recorder::add_sink(RecordSink& sink) {
  PPSIM_CHECK(!opened_, "sinks must be attached before the first sample");
  sinks_.push_back(&sink);
}

void Recorder::set_keep_series(bool keep) {
  PPSIM_CHECK(!opened_, "set_keep_series must precede the first sample");
  keep_series_ = keep;
}

void Recorder::set_checkpoint_stride(Interactions stride) {
  PPSIM_CHECK(stride >= 0, "checkpoint stride must be non-negative");
  checkpoint_stride_ = stride;
  next_checkpoint_ = stride;
}

void Recorder::ensure_open() {
  if (opened_) return;
  opened_ = true;
  if (keep_series_) memory_.open(channel_names_);
  for (auto* sink : sinks_) sink->open(channel_names_);
}

void Recorder::sample(const Configuration& config, Interactions interactions) {
  ensure_open();
  scratch_.clear();
  for (auto& projection : projections_) {
    scratch_.push_back(projection(config, interactions));
  }
  const double time = parallel_time(interactions, config.population());
  if (keep_series_) memory_.sample(interactions, time, scratch_);
  for (auto* sink : sinks_) sink->sample(interactions, time, scratch_);
  last_sample_ = interactions;
  // Advance by whole strides so the sampling lattice never drifts: a batched
  // or collapsed round that overshoots a lattice point yields one (late)
  // sample, and the next sample is still due at the next lattice point —
  // not at overshoot + stride.
  while (next_sample_ <= interactions) next_sample_ += stride_;
}

void Recorder::record_checkpoint(EngineCheckpoint state) {
  ensure_open();
  state.last_sample = last_sample_;
  for (auto* sink : sinks_) sink->checkpoint(state);
  while (next_checkpoint_ <= state.interactions) {
    next_checkpoint_ += checkpoint_stride_;
  }
}

void Recorder::resume_at(const EngineCheckpoint& state) {
  PPSIM_CHECK(!opened_, "resume_at must precede the first sample");
  PPSIM_CHECK(state.interactions >= 0, "checkpoint clock must be non-negative");
  last_sample_ = state.last_sample;
  // At the instant a checkpoint is written, maybe_sample has already fired
  // for every due lattice point (engines observe samples before
  // checkpoints), so both lattices are pure functions of the checkpoint's
  // interaction clock: the next event is the first point strictly past it.
  next_sample_ = (state.interactions / stride_ + 1) * stride_;
  if (checkpoint_stride_ > 0) {
    next_checkpoint_ =
        (state.interactions / checkpoint_stride_ + 1) * checkpoint_stride_;
  }
}

void Recorder::finalize(const Configuration& config, const RecordFinish& fin) {
  if (fin.interactions != last_sample_) {
    sample(config, fin.interactions);
  } else {
    ensure_open();
  }
  for (auto* sink : sinks_) sink->finish(fin);
}

TimeSeries Recorder::take_series() && { return std::move(memory_).take_series(); }

}  // namespace ppsim
