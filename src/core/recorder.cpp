#include "ppsim/core/recorder.hpp"

#include <ostream>

#include "ppsim/util/check.hpp"

namespace ppsim {

void TimeSeries::write_tsv(std::ostream& os) const {
  os << "parallel_time";
  for (const auto& name : channel_names) os << '\t' << name;
  os << '\n';
  for (std::size_t s = 0; s < parallel_time.size(); ++s) {
    os << parallel_time[s];
    for (const auto& channel : channels) os << '\t' << channel[s];
    os << '\n';
  }
}

Recorder::Recorder(Interactions stride) : stride_(stride) {
  PPSIM_CHECK(stride > 0, "recorder stride must be positive");
}

void Recorder::add_channel(std::string name, Projection projection) {
  PPSIM_CHECK(series_.parallel_time.empty(),
              "channels must be added before the first sample");
  series_.channel_names.push_back(std::move(name));
  series_.channels.emplace_back();
  projections_.push_back(std::move(projection));
}

void Recorder::sample(const Configuration& config, Interactions interactions) {
  series_.parallel_time.push_back(parallel_time(interactions, config.population()));
  for (std::size_t c = 0; c < projections_.size(); ++c) {
    series_.channels[c].push_back(projections_[c](config, interactions));
  }
  next_sample_ = interactions + stride_;
}

TimeSeries Recorder::take_series() && { return std::move(series_); }

}  // namespace ppsim
