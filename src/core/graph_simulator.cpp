#include "ppsim/core/graph_simulator.hpp"

#include "ppsim/util/check.hpp"

namespace ppsim {

GraphSimulator::GraphSimulator(const Protocol& protocol, const InteractionGraph& graph,
                               std::vector<State> initial_states, std::uint64_t seed)
    : protocol_(protocol),
      graph_(&graph),
      table_(protocol),
      states_(std::move(initial_states)),
      counts_(protocol.num_states(), 0),
      rng_(seed),
      stability_stride_(static_cast<Interactions>(states_.size())) {
  PPSIM_CHECK(states_.size() == graph.num_nodes(),
              "need exactly one initial state per node");
  for (const State s : states_) {
    PPSIM_CHECK(s < protocol.num_states(), "initial state out of range");
    ++counts_[s];
  }
}

State GraphSimulator::state_of(NodeId v) const {
  PPSIM_CHECK(v < states_.size(), "node out of range");
  return states_[v];
}

Count GraphSimulator::count(State s) const {
  PPSIM_CHECK(s < counts_.size(), "state out of range");
  return counts_[s];
}

void GraphSimulator::rebind_graph(const InteractionGraph& g) {
  PPSIM_CHECK(g.num_nodes() == states_.size(),
              "rebound graph must cover the same node set");
  graph_ = &g;
}

bool GraphSimulator::step() {
  const auto& [a, b] = graph_->sample_edge(rng_);
  // Uniform orientation: either endpoint may be the initiator.
  const bool swap = (rng_() & 1) != 0;
  const NodeId init = swap ? b : a;
  const NodeId resp = swap ? a : b;
  const Transition t = table_.apply(states_[init], states_[resp]);
  ++interactions_;
  bool changed = false;
  if (t.initiator != states_[init]) {
    --counts_[states_[init]];
    ++counts_[t.initiator];
    states_[init] = t.initiator;
    changed = true;
  }
  if (t.responder != states_[resp]) {
    --counts_[states_[resp]];
    ++counts_[t.responder];
    states_[resp] = t.responder;
    changed = true;
  }
  return changed;
}

bool GraphSimulator::is_stable() const {
  for (std::size_t e = 0; e < graph_->num_edges(); ++e) {
    const auto& [a, b] = graph_->edge(e);
    if (!table_.is_null(states_[a], states_[b])) return false;
    if (!table_.is_null(states_[b], states_[a])) return false;
  }
  return true;
}

bool GraphSimulator::run_until_stable(Interactions max_interactions) {
  PPSIM_CHECK(max_interactions >= 0, "interaction budget must be non-negative");
  while (interactions_ < max_interactions) {
    if (is_stable()) return true;
    const Interactions chunk =
        std::min(stability_stride_, max_interactions - interactions_);
    for (Interactions i = 0; i < chunk; ++i) step();
  }
  return is_stable();
}

std::optional<Opinion> GraphSimulator::consensus_output() const {
  std::optional<Opinion> agreed;
  for (State s = 0; s < counts_.size(); ++s) {
    if (counts_[s] == 0) continue;
    const std::optional<Opinion> o = protocol_.output(s);
    if (!o.has_value()) return std::nullopt;
    if (agreed.has_value() && *agreed != *o) return std::nullopt;
    agreed = o;
  }
  return agreed;
}

void GraphSimulator::set_stability_check_stride(Interactions stride) {
  PPSIM_CHECK(stride > 0, "stability check stride must be positive");
  stability_stride_ = stride;
}

}  // namespace ppsim
