#include "ppsim/core/faults.hpp"

#include "ppsim/util/check.hpp"
#include "ppsim/util/random_variates.hpp"

namespace ppsim {

UsdFaultInjector::UsdFaultInjector(double rate, std::uint64_t seed)
    : rate_(rate), rng_(seed) {
  PPSIM_CHECK(rate >= 0.0 && rate <= 1.0, "corruption rate must be in [0, 1]");
}

bool UsdFaultInjector::maybe_corrupt(UsdEngine& engine) {
  if (rate_ == 0.0 || !rng_.bernoulli(rate_)) return false;

  // Pick a uniformly random *agent* (weighted by current counts) and move
  // it to a uniformly random state among the k+1 USD states.
  const auto& counts = engine.counts();
  const auto n = static_cast<std::uint64_t>(engine.population());
  auto victim_index = static_cast<Count>(rng_.bounded(n));
  State from = 0;
  for (std::size_t s = 0; s < counts.size(); ++s) {
    if (victim_index < counts[s]) {
      from = static_cast<State>(s);
      break;
    }
    victim_index -= counts[s];
  }
  // Sample the target uniformly from the *other* num_states - 1 states, so
  // every fired Bernoulli corrupts exactly one agent. (Sampling over all
  // k+1 states and dropping to == from would silently shrink the effective
  // corruption rate to rate * k/(k+1).)
  auto to = static_cast<State>(rng_.bounded(counts.size() - 1));
  if (to >= from) ++to;
  engine.corrupt_agent(from, to);
  ++corruptions_;
  return true;
}

void UsdFaultInjector::run(UsdEngine& engine, Interactions interactions) {
  PPSIM_CHECK(interactions >= 0, "interaction budget must be non-negative");
  for (Interactions i = 0; i < interactions; ++i) {
    engine.step();
    maybe_corrupt(engine);
  }
}

CountsFaultInjector::CountsFaultInjector(double rate, std::uint64_t seed)
    : rate_(rate), rng_(seed) {
  PPSIM_CHECK(rate >= 0.0 && rate <= 1.0, "corruption rate must be in [0, 1]");
}

Interactions CountsFaultInjector::apply_window(CollapsedSimulator& sim,
                                               Interactions window) {
  PPSIM_CHECK(window >= 0, "corruption window must be non-negative");
  if (rate_ == 0.0 || window == 0) return 0;
  const auto fired = binomial(rng_, window, rate_);
  for (std::int64_t f = 0; f < fired; ++f) {
    // Same law as UsdFaultInjector::maybe_corrupt, one agent at a time:
    // victim uniform over agents (counts-weighted scan), target uniform over
    // the other S − 1 states so every fired draw corrupts exactly one agent.
    const auto& counts = sim.configuration().counts();
    const auto n = static_cast<std::uint64_t>(sim.configuration().population());
    auto victim_index = static_cast<Count>(rng_.bounded(n));
    State from = 0;
    for (std::size_t s = 0; s < counts.size(); ++s) {
      if (victim_index < counts[s]) {
        from = static_cast<State>(s);
        break;
      }
      victim_index -= counts[s];
    }
    auto to = static_cast<State>(rng_.bounded(counts.size() - 1));
    if (to >= from) ++to;
    sim.corrupt_agents(from, to, 1);
    ++corruptions_;
  }
  return static_cast<Interactions>(fired);
}

void CountsFaultInjector::run(CollapsedSimulator& sim, Interactions interactions) {
  PPSIM_CHECK(interactions >= 0, "interaction budget must be non-negative");
  Interactions done = 0;
  while (done < interactions) {
    const Interactions w = sim.step_round(interactions - done);
    done += w;
    apply_window(sim, w);
  }
}

double consensus_quality(const UsdEngine& engine) {
  return static_cast<double>(engine.max_opinion_count()) /
         static_cast<double>(engine.population());
}

}  // namespace ppsim
