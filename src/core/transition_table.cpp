#include "ppsim/core/transition_table.hpp"

#include "ppsim/util/check.hpp"

namespace ppsim {

TransitionTable::TransitionTable(const Protocol& protocol)
    : num_states_(protocol.num_states()) {
  PPSIM_CHECK(num_states_ > 0, "protocol must have at least one state");
  PPSIM_CHECK(num_states_ <= 1u << 14,
              "state space too large for a dense table; use the virtual-dispatch engine");
  table_.resize(num_states_ * num_states_);
  null_.resize(num_states_ * num_states_);
  for (State a = 0; a < num_states_; ++a) {
    for (State b = 0; b < num_states_; ++b) {
      const Transition t = protocol.apply(a, b);
      PPSIM_CHECK(t.initiator < num_states_ && t.responder < num_states_,
                  "transition function returned an out-of-range state");
      table_[index(a, b)] = t;
      null_[index(a, b)] = (t.initiator == a && t.responder == b) ? 1 : 0;
    }
  }
}

bool TransitionTable::is_stable(const Configuration& config) const {
  PPSIM_CHECK(config.num_states() == num_states_, "configuration/table state mismatch");
  const auto& counts = config.counts();
  for (State a = 0; a < num_states_; ++a) {
    if (counts[a] == 0) continue;
    for (State b = 0; b < num_states_; ++b) {
      if (counts[b] == 0) continue;
      if (a == b && counts[a] < 2) continue;  // needs two distinct agents
      if (!is_null(a, b)) return false;
    }
  }
  return true;
}

}  // namespace ppsim
