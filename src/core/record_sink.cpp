#include "ppsim/core/record_sink.hpp"

#include <ostream>

#include "ppsim/util/check.hpp"

namespace ppsim {

void TimeSeries::write_tsv(std::ostream& os) const {
  os << "parallel_time";
  for (const auto& name : channel_names) os << '\t' << name;
  os << '\n';
  for (std::size_t s = 0; s < parallel_time.size(); ++s) {
    os << parallel_time[s];
    for (const auto& channel : channels) os << '\t' << channel[s];
    os << '\n';
  }
}

void validate_channel_name(const std::string& name) {
  PPSIM_CHECK(!name.empty(), "channel name must be non-empty");
  PPSIM_CHECK(name.find_first_of("\t\n\r") == std::string::npos,
              "channel name must not contain tabs or newlines: they would "
              "corrupt the TSV header (channel: " + name + ")");
}

void MemorySink::open(const std::vector<std::string>& channel_names) {
  for (const auto& name : channel_names) validate_channel_name(name);
  series_.channel_names = channel_names;
  series_.channels.assign(channel_names.size(), {});
}

void MemorySink::sample(Interactions interactions, double time,
                        const std::vector<double>& values) {
  (void)interactions;
  PPSIM_CHECK(values.size() == series_.channels.size(),
              "sample arity must match the opened channel list");
  series_.parallel_time.push_back(time);
  for (std::size_t c = 0; c < values.size(); ++c) {
    series_.channels[c].push_back(values[c]);
  }
}

}  // namespace ppsim
