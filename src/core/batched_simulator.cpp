#include "ppsim/core/batched_simulator.hpp"

#include <algorithm>

#include "ppsim/util/check.hpp"

namespace ppsim {

BatchedSimulator::BatchedSimulator(const Protocol& protocol, Configuration initial,
                                   std::uint64_t seed, Options options)
    : protocol_(protocol),
      table_(protocol),
      config_(std::move(initial)),
      rng_(seed),
      kernel_(&kernels::resolve(options.kernel)) {
  PPSIM_CHECK(config_.num_states() == protocol.num_states(),
              "configuration size must match the protocol's state space");
  PPSIM_CHECK(config_.population() >= 2, "population must have at least two agents");
  PPSIM_CHECK(options.round_divisor > 0, "round divisor must be positive");
  round_size_ = std::max<Interactions>(1, config_.population() / options.round_divisor);
}

BatchedSimulator::BatchedSimulator(const Protocol& protocol, Configuration initial,
                                   std::uint64_t seed)
    : BatchedSimulator(protocol, std::move(initial), seed, Options()) {}

Interactions BatchedSimulator::step_round(Interactions max_interactions) {
  PPSIM_CHECK(max_interactions >= 0, "interaction budget must be non-negative");
  const Interactions batch = std::min(round_size_, max_interactions);
  if (batch == 0) return 0;

  // Rebuild the active-pair law only when a count moved since the last
  // build (the rebuild is RNG-free, so the lazy skip is draw-identical to
  // the historical every-round enumeration).
  if (law_generation_ != counts_generation_) {
    law_.rebuild(table_, config_);
    law_generation_ = counts_generation_;
  }

  interactions_ += batch;
  if (law_.empty()) return batch;  // stable: every interaction is null

  // The kernel splits the round into null and non-null interactions with one
  // binomial, then distributes the non-null ones over the active pairs with
  // an exact multinomial. Grouping a multinomial's buckets and splitting the
  // group afterwards is exact, so this two-stage draw has the same law as
  // one multinomial over all q² pairs.
  kernels::RoundTask task;
  task.law = &law_;
  task.batch = batch;
  task.rng = &rng_;
  task.draws = &draws_;
  kernel_->advance(task);
  if (task.active == 0) return batch;

  const kernels::ApplyResult applied = kernels::apply_draws(law_, config_, draws_);
  clamped_ = sat_add(clamped_, applied.clamped);
  if (applied.moved) ++counts_generation_;
  return batch;
}

RunOutcome BatchedSimulator::run_until_stable(Interactions max_interactions) {
  PPSIM_CHECK(max_interactions >= 0, "interaction budget must be non-negative");
  while (interactions_ < max_interactions) {
    if (is_stable()) break;
    step_round(max_interactions - interactions_);
    observe();
  }
  return outcome();
}

RunOutcome BatchedSimulator::run_until(
    const std::function<bool(const Configuration&, Interactions)>& predicate,
    Interactions max_interactions) {
  PPSIM_CHECK(max_interactions >= 0, "interaction budget must be non-negative");
  while (interactions_ < max_interactions && !predicate(config_, interactions_)) {
    if (is_stable()) break;
    step_round(max_interactions - interactions_);
    observe();
  }
  return outcome();
}

EngineCheckpoint BatchedSimulator::checkpoint_state() const {
  EngineCheckpoint cp;
  cp.counts = config_.counts();
  cp.rng_state = rng_.state();
  cp.interactions = interactions_;
  cp.clamped = clamped_;
  return cp;
}

void BatchedSimulator::restore_checkpoint(const EngineCheckpoint& state) {
  PPSIM_CHECK(state.counts.size() == config_.num_states(),
              "checkpoint state-space size must match the engine's");
  Configuration restored(state.counts);
  PPSIM_CHECK(restored.population() == config_.population(),
              "checkpoint population must match the engine's");
  config_ = std::move(restored);
  rng_.set_state(state.rng_state);
  PPSIM_CHECK(state.interactions >= 0 && state.clamped >= 0,
              "checkpoint clocks must be non-negative");
  interactions_ = state.interactions;
  clamped_ = state.clamped;
  // One generation bump invalidates the law; the resumed run then makes
  // exactly the draws the original would have made.
  ++counts_generation_;
}

RunOutcome BatchedSimulator::outcome() const {
  RunOutcome out;
  out.stabilized = is_stable();
  out.interactions = interactions_;
  // interactions_ is credited with the whole batch before clamping, so the
  // clamped share must ride along or throughput reports double-count it.
  out.clamped = clamped_;
  out.consensus = consensus_output();
  return out;
}

}  // namespace ppsim
