#include "ppsim/core/batched_simulator.hpp"

#include <algorithm>

#include "ppsim/util/check.hpp"
#include "ppsim/util/random_variates.hpp"

namespace ppsim {

BatchedSimulator::BatchedSimulator(const Protocol& protocol, Configuration initial,
                                   std::uint64_t seed, Options options)
    : protocol_(protocol),
      table_(protocol),
      config_(std::move(initial)),
      rng_(seed) {
  PPSIM_CHECK(config_.num_states() == protocol.num_states(),
              "configuration size must match the protocol's state space");
  PPSIM_CHECK(config_.population() >= 2, "population must have at least two agents");
  PPSIM_CHECK(options.round_divisor > 0, "round divisor must be positive");
  round_size_ = std::max<Interactions>(1, config_.population() / options.round_divisor);
}

BatchedSimulator::BatchedSimulator(const Protocol& protocol, Configuration initial,
                                   std::uint64_t seed)
    : BatchedSimulator(protocol, std::move(initial), seed, Options()) {}

Interactions BatchedSimulator::step_round(Interactions max_interactions) {
  PPSIM_CHECK(max_interactions >= 0, "interaction budget must be non-negative");
  const Interactions batch = std::min(round_size_, max_interactions);
  if (batch == 0) return 0;

  const auto n = static_cast<double>(config_.population());
  const double total_weight = n * (n - 1.0);  // ordered pairs of distinct agents

  // Enumerate the active non-null ordered pairs and their weights.
  pair_a_.clear();
  pair_b_.clear();
  pair_weight_.clear();
  const auto& counts = config_.counts();
  const auto q = static_cast<State>(config_.num_states());
  double active_weight = 0.0;
  for (State a = 0; a < q; ++a) {
    if (counts[a] == 0) continue;
    for (State b = 0; b < q; ++b) {
      if (counts[b] == 0) continue;
      if (a == b && counts[a] < 2) continue;
      if (table_.is_null(a, b)) continue;
      const double w = static_cast<double>(counts[a]) *
                       static_cast<double>(a == b ? counts[b] - 1 : counts[b]);
      pair_a_.push_back(a);
      pair_b_.push_back(b);
      pair_weight_.push_back(w);
      active_weight += w;
    }
  }

  interactions_ += batch;
  if (pair_weight_.empty()) return batch;  // stable: every interaction is null

  // Split the round into null and non-null interactions, then distribute the
  // non-null ones over the active pairs. Grouping a multinomial's buckets and
  // splitting the group afterwards is exact, so this two-stage draw has the
  // same law as one multinomial over all q² pairs.
  const Interactions active = binomial(rng_, batch, active_weight / total_weight);
  if (active == 0) return batch;
  const std::vector<std::int64_t> draws = multinomial(rng_, active, pair_weight_);

  for (std::size_t i = 0; i < draws.size(); ++i) {
    if (draws[i] == 0) continue;
    const State a = pair_a_[i];
    const State b = pair_b_[i];
    const Transition t = table_.apply(a, b);
    Interactions m = draws[i];
    // Clamp to the live counts: earlier pairs in this round may have drained
    // a state below what the start-of-round weights promised. Every clamp
    // keeps the bulk result inside the sequential chain's reachable set:
    // each (a, a) interaction needs two live a-agents, so with one leaver at
    // most count-1 interactions can fire (never draining the state), and
    // with two leavers at most count/2.
    if (a == b) {
      const int leavers = (t.initiator != a ? 1 : 0) + (t.responder != a ? 1 : 0);
      const Interactions cap = leavers == 2 ? config_.count(a) / 2
                                            : config_.count(a) - 1;
      m = std::min(m, std::max<Interactions>(0, cap));
      clamped_ += draws[i] - m;
      if (m == 0) continue;
      if (t.initiator != a) config_.move_agents(a, t.initiator, m);
      if (t.responder != a) config_.move_agents(a, t.responder, m);
    } else {
      // Both participants must be live, even on the side f leaves unchanged.
      if (config_.count(a) == 0 || config_.count(b) == 0) {
        clamped_ += draws[i];
        continue;
      }
      if (t.initiator != a) m = std::min<Interactions>(m, config_.count(a));
      if (t.responder != b) m = std::min<Interactions>(m, config_.count(b));
      clamped_ += draws[i] - m;
      if (m == 0) continue;
      // Remove both participants before re-adding so a swap transition
      // (f(a,b) = (b,a)) never transiently overdraws either state.
      config_.move_agents(a, t.initiator, m);
      config_.move_agents(b, t.responder, m);
    }
  }
  return batch;
}

RunOutcome BatchedSimulator::run_until_stable(Interactions max_interactions) {
  PPSIM_CHECK(max_interactions >= 0, "interaction budget must be non-negative");
  while (interactions_ < max_interactions) {
    if (is_stable()) break;
    step_round(max_interactions - interactions_);
    observe();
  }
  return outcome();
}

RunOutcome BatchedSimulator::run_until(
    const std::function<bool(const Configuration&, Interactions)>& predicate,
    Interactions max_interactions) {
  PPSIM_CHECK(max_interactions >= 0, "interaction budget must be non-negative");
  while (interactions_ < max_interactions && !predicate(config_, interactions_)) {
    if (is_stable()) break;
    step_round(max_interactions - interactions_);
    observe();
  }
  return outcome();
}

EngineCheckpoint BatchedSimulator::checkpoint_state() const {
  EngineCheckpoint cp;
  cp.counts = config_.counts();
  cp.rng_state = rng_.state();
  cp.interactions = interactions_;
  cp.clamped = clamped_;
  return cp;
}

void BatchedSimulator::restore_checkpoint(const EngineCheckpoint& state) {
  PPSIM_CHECK(state.counts.size() == config_.num_states(),
              "checkpoint state-space size must match the engine's");
  Configuration restored(state.counts);
  PPSIM_CHECK(restored.population() == config_.population(),
              "checkpoint population must match the engine's");
  config_ = std::move(restored);
  rng_.set_state(state.rng_state);
  PPSIM_CHECK(state.interactions >= 0 && state.clamped >= 0,
              "checkpoint clocks must be non-negative");
  interactions_ = state.interactions;
  clamped_ = state.clamped;
}

RunOutcome BatchedSimulator::outcome() const {
  RunOutcome out;
  out.stabilized = is_stable();
  out.interactions = interactions_;
  // interactions_ is credited with the whole batch before clamping, so the
  // clamped share must ride along or throughput reports double-count it.
  out.clamped = clamped_;
  out.consensus = consensus_output();
  return out;
}

}  // namespace ppsim
