#include "ppsim/core/gossip.hpp"

#include <vector>

#include "ppsim/util/check.hpp"
#include "ppsim/util/random_variates.hpp"

namespace ppsim {

GossipEngine::GossipEngine(const GossipRule& rule, Configuration initial,
                           std::uint64_t seed)
    : rule_(rule), config_(std::move(initial)), rng_(seed) {
  PPSIM_CHECK(config_.num_states() == rule.num_states(),
              "configuration size must match the rule's state space");
  PPSIM_CHECK(config_.population() >= 2, "gossip needs at least two agents");
}

void GossipEngine::step_round() {
  const std::size_t s = config_.num_states();
  const auto& old_counts = config_.counts();

  std::vector<Count> new_counts(s, 0);
  std::vector<std::int64_t> weights(s);
  for (State own = 0; own < s; ++own) {
    const Count c = old_counts[own];
    if (c == 0) continue;
    // Partner-class weights exclude the observer itself.
    for (State seen = 0; seen < s; ++seen) {
      weights[seen] = old_counts[seen] - (seen == own ? 1 : 0);
    }
    const std::vector<std::int64_t> observed = multinomial(rng_, c, weights);
    for (State seen = 0; seen < s; ++seen) {
      if (observed[seen] == 0) continue;
      new_counts[rule_.update(own, seen)] += observed[seen];
    }
  }

  config_ = Configuration(std::move(new_counts));
  ++rounds_;
}

bool GossipEngine::is_stable() const {
  const std::size_t s = config_.num_states();
  const auto& counts = config_.counts();
  for (State own = 0; own < s; ++own) {
    if (counts[own] == 0) continue;
    for (State seen = 0; seen < s; ++seen) {
      const Count visible = counts[seen] - (seen == own ? 1 : 0);
      if (visible <= 0) continue;
      if (rule_.update(own, seen) != own) return false;
    }
  }
  return true;
}

GossipOutcome GossipEngine::run_until_stable(std::int64_t max_rounds) {
  PPSIM_CHECK(max_rounds >= 0, "round budget must be non-negative");
  while (rounds_ < max_rounds && !is_stable()) step_round();
  return GossipOutcome{is_stable(), rounds_};
}

}  // namespace ppsim
