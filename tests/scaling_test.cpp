// Scaling-law fitting: synthetic recovery of constants and validation
// semantics of the lower-bound ratio.
#include "ppsim/analysis/scaling.hpp"

#include <gtest/gtest.h>

#include "ppsim/analysis/bounds.hpp"
#include "ppsim/util/check.hpp"

namespace ppsim {
namespace {

TEST(ScalingFitTest, RecoversSyntheticLowerBoundConstant) {
  // Fabricate measurements that are exactly 3x the lower-bound shape; the
  // fit must recover c = 3 with perfect R².
  std::vector<ScalingPoint> points;
  const Count n = 250000;
  for (std::size_t k : {4u, 8u, 12u, 16u, 24u}) {
    points.push_back(
        {n, k, 3.0 * bounds::theorem35_parallel_lower_bound(n, k)});
  }
  const ScalingFit fit = fit_scaling(points);
  EXPECT_NEAR(fit.lower_bound_shape.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.lower_bound_shape.r_squared, 1.0, 1e-9);
  EXPECT_NEAR(fit.min_ratio_to_lower_bound, 3.0, 1e-9);
}

TEST(ScalingFitTest, RecoversSyntheticUpperBoundConstant) {
  std::vector<ScalingPoint> points;
  const Count n = 250000;
  for (std::size_t k : {4u, 8u, 12u, 16u, 24u}) {
    points.push_back({n, k, 0.5 * bounds::amir_parallel_upper_bound(n, k)});
  }
  const ScalingFit fit = fit_scaling(points);
  EXPECT_NEAR(fit.upper_bound_shape.slope, 0.5, 1e-9);
  EXPECT_NEAR(fit.upper_bound_shape.r_squared, 1.0, 1e-9);
}

TEST(ScalingFitTest, MinRatioFlagsViolation) {
  // A point below the lower bound (ratio < 1) must be reported as such.
  const Count n = 250000;
  const std::size_t k = 8;
  const double lb = bounds::theorem35_parallel_lower_bound(n, k);
  const ScalingFit fit = fit_scaling({{n, k, 0.5 * lb}});
  EXPECT_LT(fit.min_ratio_to_lower_bound, 1.0);
}

TEST(ScalingFitTest, RejectsDegenerateRegime) {
  EXPECT_THROW(fit_scaling({}), CheckFailure);
  // k too large: lower bound is zero -> cannot fit.
  EXPECT_THROW(fit_scaling({{10000, 100, 5.0}}), CheckFailure);
}

}  // namespace
}  // namespace ppsim
