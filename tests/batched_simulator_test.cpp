// BatchedSimulator: exact invariants (population conservation, accounting,
// determinism, single-interaction rounds), bulk-apply correctness on a
// protocol with non-null self-pairs, and the headline distributional
// equivalence — batched vs. sequential stabilization-time samples on
// 3-opinion USD must agree under a two-sample KS-style test for several
// distinct seeds.
#include "ppsim/core/batched_simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ppsim/core/engine.hpp"
#include "ppsim/core/simulator.hpp"
#include "ppsim/protocols/leader_election.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/check.hpp"
#include "ppsim/util/stats.hpp"

namespace ppsim {
namespace {

constexpr std::size_t kK = 3;
const std::vector<Count> kUsdCounts = {0, 250, 200, 150};  // ⊥, x1, x2, x3

/// Two-sample Kolmogorov–Smirnov distance sup_x |F_a(x) - F_b(x)|.
double ks_distance(std::vector<double> a, std::vector<double> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  double d = 0.0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.size() && ib < b.size()) {
    if (a[ia] <= b[ib]) {
      ++ia;
    } else {
      ++ib;
    }
    d = std::max(d, std::abs(static_cast<double>(ia) / na -
                             static_cast<double>(ib) / nb));
  }
  return d;
}

TEST(BatchedSimulatorTest, RejectsDegenerateInputs) {
  const UndecidedStateDynamics usd(kK);
  EXPECT_THROW(BatchedSimulator(usd, Configuration({1, 0, 0, 0}), 1, {}),
               CheckFailure);  // single agent
  EXPECT_THROW(BatchedSimulator(usd, Configuration({0, 5, 5}), 1, {}),
               CheckFailure);  // state-space mismatch
  EXPECT_THROW(BatchedSimulator(usd, Configuration(kUsdCounts), 1, {.round_divisor = 0}),
               CheckFailure);
}

TEST(BatchedSimulatorTest, RoundSizeFollowsDivisor) {
  const UndecidedStateDynamics usd(kK);
  BatchedSimulator coarse(usd, Configuration(kUsdCounts), 1, {.round_divisor = 16});
  EXPECT_EQ(coarse.round_size(), 600 / 16);
  BatchedSimulator exact(usd, Configuration(kUsdCounts), 1,
                         {.round_divisor = 1'000'000});
  EXPECT_EQ(exact.round_size(), 1);  // divisor ≥ n ⇒ sequential-exact rounds
}

TEST(BatchedSimulatorTest, RoundsConservePopulationAndAccountInteractions) {
  const UndecidedStateDynamics usd(kK);
  BatchedSimulator sim(usd, Configuration(kUsdCounts), 42);
  Interactions total = 0;
  for (int round = 0; round < 200 && !sim.is_stable(); ++round) {
    total += sim.step_round(1'000'000);
    ASSERT_EQ(sim.configuration().population(), 600) << "round " << round;
    for (const Count c : sim.configuration().counts()) ASSERT_GE(c, 0);
  }
  EXPECT_EQ(sim.interactions(), total);
  // The overdraw clamp is a many-sigma event at this round size.
  EXPECT_EQ(sim.clamped_interactions(), 0);
}

TEST(BatchedSimulatorTest, BudgetIsRespectedExactly) {
  const UndecidedStateDynamics usd(kK);
  BatchedSimulator sim(usd, Configuration(kUsdCounts), 7);
  const RunOutcome out = sim.run_until_stable(100);  // budget < one round
  EXPECT_EQ(out.interactions, 100);
  EXPECT_EQ(sim.interactions(), 100);
}

TEST(BatchedSimulatorTest, SameSeedGivesIdenticalTrajectory) {
  const UndecidedStateDynamics usd(kK);
  BatchedSimulator a(usd, Configuration(kUsdCounts), 99);
  BatchedSimulator b(usd, Configuration(kUsdCounts), 99);
  for (int round = 0; round < 300; ++round) {
    a.step_round(1'000'000);
    b.step_round(1'000'000);
    ASSERT_EQ(a.configuration(), b.configuration()) << "diverged at round " << round;
  }
}

TEST(BatchedSimulatorTest, StabilizesToUsdConsensus) {
  const UndecidedStateDynamics usd(kK);
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    BatchedSimulator sim(usd, Configuration(kUsdCounts), seed);
    const RunOutcome out = sim.run_until_stable(10'000'000);
    ASSERT_TRUE(out.stabilized) << "seed " << seed;
    ASSERT_TRUE(out.consensus.has_value()) << "seed " << seed;
    // Stable USD with a consensus is monochromatic on one opinion state.
    EXPECT_TRUE(sim.configuration().is_monochromatic());
    EXPECT_EQ(sim.configuration().count(
                  UndecidedStateDynamics::opinion_state(*out.consensus)),
              600);
  }
}

TEST(BatchedSimulatorTest, HandlesNonNullSelfPairs) {
  // Leader election's (L, L) -> (L, F) transition exercises the a == b bulk
  // branch: every interaction drains one agent from the self-pair's state.
  const LeaderElection protocol;
  BatchedSimulator sim(protocol, LeaderElection::initial(1000), 5);
  const RunOutcome out = sim.run_until_stable(50'000'000);
  ASSERT_TRUE(out.stabilized);
  EXPECT_EQ(sim.configuration().population(), 1000);
  EXPECT_EQ(sim.configuration().count(LeaderElection::kLeader), 1);
}

TEST(BatchedSimulatorTest, EngineFacadeSelectsBatched) {
  const UndecidedStateDynamics usd(kK);
  Engine engine(EngineKind::kBatched, usd, Configuration(kUsdCounts), 3);
  const RunOutcome out = engine.run_until_stable(10'000'000);
  EXPECT_TRUE(out.stabilized);
  EXPECT_TRUE(engine.is_stable());
  EXPECT_EQ(engine.interactions(), out.interactions);
  EXPECT_EQ(engine.consensus_output(), out.consensus);
  EXPECT_EQ(parse_engine("batched"), EngineKind::kBatched);
  EXPECT_EQ(to_string(EngineKind::kBatched), "batched");
  EXPECT_FALSE(parse_engine("warp-drive").has_value());
}

// --------------------------- distributional equivalence vs. sequential ----

std::vector<double> sequential_stabilization_sample(int trials, std::uint64_t seed0) {
  const UndecidedStateDynamics usd(kK);
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    Simulator sim(usd, Configuration(kUsdCounts), seed0 + static_cast<std::uint64_t>(t));
    sim.set_stability_check_stride(1);  // exact stopping times for the KS check
    const RunOutcome out = sim.run_until_stable(50'000'000);
    EXPECT_TRUE(out.stabilized);
    times.push_back(static_cast<double>(out.interactions));
  }
  return times;
}

std::vector<double> batched_stabilization_sample(int trials, std::uint64_t seed0,
                                                 Interactions round_divisor) {
  const UndecidedStateDynamics usd(kK);
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    BatchedSimulator sim(usd, Configuration(kUsdCounts),
                         seed0 + static_cast<std::uint64_t>(t),
                         {.round_divisor = round_divisor});
    const RunOutcome out = sim.run_until_stable(50'000'000);
    EXPECT_TRUE(out.stabilized);
    EXPECT_TRUE(out.consensus.has_value());
    EXPECT_EQ(sim.configuration().population(), 600);
    times.push_back(static_cast<double>(out.interactions));
  }
  return times;
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, StabilizationTimesShareDistributionWithSequential) {
  // KS-style two-sample check on stabilization-time samples. With 300
  // samples a side the α = 0.001 KS critical distance is ≈ 0.16; the
  // τ-leaping bias at round_divisor = 16 (measured: < 1% of the mean, well
  // under the ~12% distribution spread) stays far below that. The sequential
  // sampler records exact stopping times (stride 1) so the comparison is
  // against the true sequential law, not its stride-quantized readout.
  const std::uint64_t seed = GetParam();
  constexpr int kTrials = 300;
  const std::vector<double> seq = sequential_stabilization_sample(kTrials, seed);
  const std::vector<double> bat = batched_stabilization_sample(kTrials, seed + 500'000, 16);
  EXPECT_LE(ks_distance(seq, bat), 0.195);

  RunningStats s;
  RunningStats b;
  for (const double x : seq) s.add(x);
  for (const double x : bat) b.add(x);
  EXPECT_NEAR(s.mean(), b.mean(), 5.0 * (s.sem() + b.sem()));
}

INSTANTIATE_TEST_SUITE_P(ThreeSeeds, SeedSweep,
                         ::testing::Values<std::uint64_t>(1000, 2000, 3000),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(BatchedSimulatorTest, SingleInteractionRoundsMatchSequentialMean) {
  // With round size 1 the batched engine realises exactly the sequential
  // chain (one pair draw per round with the correct law), so stabilization
  // means must agree within Monte-Carlo error.
  constexpr int kTrials = 120;
  RunningStats seq;
  RunningStats bat;
  for (const double x : sequential_stabilization_sample(kTrials, 70'000)) seq.add(x);
  for (const double x : batched_stabilization_sample(kTrials, 80'000, 1'000'000)) {
    bat.add(x);
  }
  EXPECT_NEAR(seq.mean(), bat.mean(), 5.0 * (seq.sem() + bat.sem()));
}

}  // namespace
}  // namespace ppsim
