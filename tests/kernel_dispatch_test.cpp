// Kernel registry and dispatch semantics: parsing, capability-driven
// selection, the failure modes for explicitly requesting an unavailable
// backend, PairLaw's generation-counter invalidation, and the scalar
// kernel's lockstep (advance_batch) contract — batching tasks must be
// bit-identical to advancing them one by one.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "ppsim/core/batched_simulator.hpp"
#include "ppsim/core/collapsed_simulator.hpp"
#include "ppsim/core/configuration.hpp"
#include "ppsim/core/transition_table.hpp"
#include "ppsim/kernels/pair_law.hpp"
#include "ppsim/kernels/round_kernel.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/check.hpp"
#include "ppsim/util/rng.hpp"

namespace ppsim::kernels {
namespace {

TEST(KernelRegistryTest, NamesRoundTrip) {
  EXPECT_EQ(to_string(KernelKind::kScalar), "scalar");
  EXPECT_EQ(to_string(KernelKind::kAvx2), "avx2");
  EXPECT_EQ(parse_kernel("scalar"), KernelKind::kScalar);
  EXPECT_EQ(parse_kernel("avx2"), KernelKind::kAvx2);
  EXPECT_EQ(parse_kernel("auto"), std::nullopt);
  EXPECT_EQ(parse_kernel("sse9"), std::nullopt);
}

TEST(KernelRegistryTest, ScalarIsAlwaysAvailable) {
  const RoundKernel& scalar = scalar_kernel();
  EXPECT_EQ(scalar.kind(), KernelKind::kScalar);
  EXPECT_EQ(scalar.lockstep_width(), 1u);
  EXPECT_EQ(&resolve(KernelKind::kScalar), &scalar);

  const auto kinds = available_kernels();
  ASSERT_FALSE(kinds.empty());
  EXPECT_EQ(kinds.front(), KernelKind::kScalar);
}

TEST(KernelRegistryTest, CompiledFlagMatchesRegistryPointer) {
  // The stub translation unit must keep the registry consistent: the avx2
  // kernel object exists iff the SIMD implementation was compiled in.
  EXPECT_EQ(avx2_compiled(), avx2_kernel_or_null() != nullptr);
  if (!avx2_compiled()) {
    EXPECT_FALSE(avx2_supported());
  }
}

TEST(KernelRegistryTest, AutoPicksTheWidestSupportedKernel) {
  if (avx2_supported()) {
    EXPECT_EQ(auto_kind(), KernelKind::kAvx2);
    const RoundKernel& k = resolve(KernelKind::kAvx2);
    EXPECT_EQ(k.kind(), KernelKind::kAvx2);
    EXPECT_GE(k.lockstep_width(), 2u);
    const auto kinds = available_kernels();
    EXPECT_NE(std::find(kinds.begin(), kinds.end(), KernelKind::kAvx2),
              kinds.end());
  } else {
    EXPECT_EQ(auto_kind(), KernelKind::kScalar);
    EXPECT_THROW(resolve(KernelKind::kAvx2), CheckFailure);
  }
  // "auto" must always resolve without throwing, whatever the host.
  EXPECT_EQ(parse_kernel_flag("auto"), auto_kind());
  EXPECT_EQ(parse_kernel_flag("scalar"), KernelKind::kScalar);
}

TEST(KernelRegistryTest, ExplicitUnsupportedKernelFailsWithClearError) {
  if (avx2_supported()) GTEST_SKIP() << "host supports avx2";
  try {
    parse_kernel_flag("avx2");
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    // The message must tell the user both what failed and what to do.
    const std::string what = e.what();
    EXPECT_NE(what.find("avx2"), std::string::npos) << what;
    EXPECT_NE(what.find("--kernel scalar"), std::string::npos) << what;
  }
}

TEST(KernelRegistryTest, UnknownFlagValueThrows) {
  EXPECT_THROW(parse_kernel_flag("sse9"), CheckFailure);
  EXPECT_THROW(parse_kernel_flag(""), CheckFailure);
}

TEST(KernelRegistryTest, EnginesRejectUnavailableKernel) {
  if (avx2_supported()) GTEST_SKIP() << "host supports avx2";
  const UndecidedStateDynamics usd(3);
  CollapsedSimulator::Options collapsed_opts;
  collapsed_opts.kernel = KernelKind::kAvx2;
  EXPECT_THROW(CollapsedSimulator(usd, Configuration({0, 4, 3, 3}), 1,
                                  collapsed_opts),
               CheckFailure);
  BatchedSimulator::Options batched_opts;
  batched_opts.kernel = KernelKind::kAvx2;
  EXPECT_THROW(BatchedSimulator(usd, Configuration({0, 4, 3, 3}), 1,
                                batched_opts),
               CheckFailure);
}

// ------------------------------------------------------------- pair law --

TEST(PairLawTest, GenerationAdvancesPerRebuildAndAliasFollowsLazily) {
  const UndecidedStateDynamics usd(2);
  const TransitionTable table(usd);
  PairLaw law;
  EXPECT_EQ(law.generation(), 0u);
  EXPECT_TRUE(law.empty());

  const Configuration config({0, 6, 4});
  law.rebuild(table, config);
  EXPECT_EQ(law.generation(), 1u);
  ASSERT_FALSE(law.empty());
  EXPECT_GT(law.active_weight(), 0.0);
  EXPECT_DOUBLE_EQ(law.total_weight(), 10.0 * 9.0);

  // The alias table is built lazily and cached per generation: the same
  // object comes back until a rebuild bumps the generation.
  const AliasTable* alias = &law.alias();
  EXPECT_EQ(alias, &law.alias());
  law.rebuild(table, config);
  EXPECT_EQ(law.generation(), 2u);
  EXPECT_EQ(alias, &law.alias());  // same storage, rebuilt in place
}

TEST(PairLawTest, WeightsMatchTheOrderedPairCounts) {
  const UndecidedStateDynamics usd(2);
  const TransitionTable table(usd);
  PairLaw law;
  law.rebuild(table, Configuration({2, 5, 3}));
  // Every listed pair must carry weight c_a·c_b (c_a·(c_a−1) on the
  // diagonal) and the total must be n(n−1).
  double active = 0.0;
  const std::vector<Count> counts = {2, 5, 3};
  for (std::size_t i = 0; i < law.size(); ++i) {
    const double ca = static_cast<double>(counts[law.a(i)]);
    const double cb = static_cast<double>(counts[law.b(i)]);
    const double expect = law.a(i) == law.b(i) ? ca * (ca - 1.0) : ca * cb;
    EXPECT_DOUBLE_EQ(law.weight(i), expect);
    active += law.weight(i);
  }
  EXPECT_DOUBLE_EQ(law.active_weight(), active);
}

// ------------------------------------------------------------- lockstep --

/// Runs `rounds` staged rounds through the collapsed engine, advancing the
/// staged tasks either one by one or as one advance_batch launch.
std::vector<Count> run_staged(const Protocol& protocol, bool batched,
                              int rounds) {
  constexpr std::size_t kLanes = 3;
  std::vector<std::unique_ptr<CollapsedSimulator>> lanes;
  for (std::size_t t = 0; t < kLanes; ++t) {
    lanes.push_back(std::make_unique<CollapsedSimulator>(
        protocol, Configuration({0, 400, 350, 250}), 1000 + t));
  }
  const RoundKernel& kernel = scalar_kernel();
  std::vector<RoundTask> tasks(kLanes);
  for (int r = 0; r < rounds; ++r) {
    std::vector<RoundTask*> staged;
    std::vector<std::size_t> staged_lane;
    for (std::size_t t = 0; t < kLanes; ++t) {
      if (lanes[t]->stage_round(1'000'000, tasks[t])) {
        staged.push_back(&tasks[t]);
        staged_lane.push_back(t);
      }
    }
    if (batched) {
      kernel.advance_batch(staged);
    } else {
      for (RoundTask* task : staged) kernel.advance(*task);
    }
    for (std::size_t i = 0; i < staged.size(); ++i) {
      lanes[staged_lane[i]]->commit_round(*staged[i]);
    }
  }
  std::vector<Count> out;
  for (const auto& lane : lanes) {
    const auto& c = lane->configuration().counts();
    out.insert(out.end(), c.begin(), c.end());
    out.push_back(static_cast<Count>(lane->interactions()));
  }
  return out;
}

TEST(ScalarLockstepTest, AdvanceBatchIsBitIdenticalToPerTaskAdvance) {
  const UndecidedStateDynamics usd(3);
  EXPECT_EQ(run_staged(usd, true, 40), run_staged(usd, false, 40));
}

TEST(ScalarLockstepTest, StagedPathMatchesStepRound) {
  // stage_round + kernel.advance + commit_round must equal step_round draw
  // for draw: run the same seed both ways and compare the trajectory.
  const UndecidedStateDynamics usd(3);
  CollapsedSimulator direct(usd, Configuration({0, 400, 350, 250}), 77);
  CollapsedSimulator staged(usd, Configuration({0, 400, 350, 250}), 77);
  for (int r = 0; r < 60; ++r) {
    direct.step_round(1'000'000);
    RoundTask task;
    if (staged.stage_round(1'000'000, task)) {
      staged.kernel().advance(task);
      staged.commit_round(task);
    }
    ASSERT_EQ(direct.configuration().counts(), staged.configuration().counts());
    ASSERT_EQ(direct.interactions(), staged.interactions());
  }
}

}  // namespace
}  // namespace ppsim::kernels
