// PairSampler: the scheduler must draw ordered pairs of *distinct* agents
// uniformly. With counts-based states this means:
//   P[first in state a]  = count(a)/n
//   P[(a, b)]            = count(a)·(count(b) - [a=b]) / (n(n-1)).
// We verify the exact pair distribution with a chi-square test and check
// without-replacement behaviour on singleton states.
#include "ppsim/core/scheduler.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "ppsim/util/check.hpp"
#include "ppsim/util/stats.hpp"

namespace ppsim {
namespace {

TEST(PairSamplerTest, RequiresTwoAgents) {
  EXPECT_THROW(PairSampler(Configuration({1, 0})), CheckFailure);
  EXPECT_NO_THROW(PairSampler(Configuration({1, 1})));
}

TEST(PairSamplerTest, SingletonStateNeverPairsWithItself) {
  // State 0 has exactly one agent: the ordered pair (0, 0) is impossible.
  PairSampler sampler(Configuration({1, 9}));
  Xoshiro256pp rng(1);
  for (int i = 0; i < 20000; ++i) {
    const auto [a, b] = sampler.sample(rng);
    EXPECT_FALSE(a == 0 && b == 0);
  }
}

TEST(PairSamplerTest, TwoAgentsAlwaysMeetEachOther) {
  PairSampler sampler(Configuration({1, 1}));
  Xoshiro256pp rng(2);
  for (int i = 0; i < 1000; ++i) {
    const auto [a, b] = sampler.sample(rng);
    EXPECT_NE(a, b);
  }
}

TEST(PairSamplerTest, SamplingDoesNotMutateWeights) {
  PairSampler sampler(Configuration({3, 7}));
  Xoshiro256pp rng(3);
  std::map<std::pair<State, State>, int> first_pass;
  for (int i = 0; i < 1000; ++i) ++first_pass[sampler.sample(rng)];
  // Re-running with the same seed must reproduce the same draws — the urn
  // was restored after every sample.
  Xoshiro256pp rng2(3);
  std::map<std::pair<State, State>, int> second_pass;
  for (int i = 0; i < 1000; ++i) ++second_pass[sampler.sample(rng2)];
  EXPECT_EQ(first_pass, second_pass);
}

TEST(PairSamplerTest, PairDistributionIsExact) {
  // counts = [4, 6], n = 10. Ordered-pair probabilities:
  //   (0,0): 4·3/90, (0,1): 4·6/90, (1,0): 6·4/90, (1,1): 6·5/90.
  const std::vector<Count> counts = {4, 6};
  PairSampler sampler{Configuration(counts)};
  Xoshiro256pp rng(42);
  constexpr int kDraws = 200000;

  std::map<std::pair<State, State>, std::int64_t> hits;
  for (int i = 0; i < kDraws; ++i) ++hits[sampler.sample(rng)];

  std::vector<std::int64_t> observed;
  std::vector<double> expected;
  const double norm = 10.0 * 9.0;
  for (State a = 0; a < 2; ++a) {
    for (State b = 0; b < 2; ++b) {
      observed.push_back(hits[{a, b}]);
      const double ca = static_cast<double>(counts[a]);
      const double cb = static_cast<double>(counts[b]) - (a == b ? 1.0 : 0.0);
      expected.push_back(ca * cb / norm * kDraws);
    }
  }
  const double stat = chi_square_statistic(observed, expected);
  EXPECT_GT(chi_square_sf(stat, 3), 1e-6) << "chi-square " << stat;
}

TEST(PairSamplerTest, ThreeStateMarginalsAreUniformOverAgents) {
  const std::vector<Count> counts = {2, 3, 5};
  PairSampler sampler{Configuration(counts)};
  Xoshiro256pp rng(7);
  constexpr int kDraws = 150000;
  std::vector<std::int64_t> first(3, 0);
  for (int i = 0; i < kDraws; ++i) ++first[sampler.sample(rng).first];
  std::vector<double> expected;
  for (const Count c : counts) expected.push_back(static_cast<double>(c) / 10.0 * kDraws);
  const double stat = chi_square_statistic(first, expected);
  EXPECT_GT(chi_square_sf(stat, 2), 1e-6);
}

TEST(PairSamplerTest, MoveAgentKeepsSamplerInSync) {
  PairSampler sampler(Configuration({10, 0}));
  Xoshiro256pp rng(9);
  // Initially state 1 is empty: never sampled.
  for (int i = 0; i < 100; ++i) {
    const auto [a, b] = sampler.sample(rng);
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 0u);
  }
  // Move everyone to state 1 and the picture flips.
  for (int i = 0; i < 10; ++i) sampler.move_agent(0, 1);
  for (int i = 0; i < 100; ++i) {
    const auto [a, b] = sampler.sample(rng);
    EXPECT_EQ(a, 1u);
    EXPECT_EQ(b, 1u);
  }
}

}  // namespace
}  // namespace ppsim
