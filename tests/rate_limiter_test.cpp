// Token-bucket admission control for the sweep service. Time is injected,
// so every property here is deterministic: burst up to capacity, continuous
// refill at the configured rate, and per-client isolation in the keyed
// limiter.
#include "ppsim/net/rate_limiter.hpp"

#include <gtest/gtest.h>

#include "ppsim/util/check.hpp"

namespace ppsim::net {
namespace {

TEST(TokenBucketTest, BurstUpToCapacityThenDry) {
  TokenBucket bucket(3.0, 1.0);
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_FALSE(bucket.try_acquire(0.0));  // burst spent, no time passed
  EXPECT_DOUBLE_EQ(bucket.available(0.0), 0.0);
}

TEST(TokenBucketTest, RefillsContinuouslyAtTheConfiguredRate) {
  TokenBucket bucket(4.0, 2.0);  // 2 tokens/second
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_FALSE(bucket.try_acquire(0.0));
  // 0.25s later: half a token — still not enough for a request.
  EXPECT_FALSE(bucket.try_acquire(0.25));
  // 0.5s total: exactly one token accrued.
  EXPECT_TRUE(bucket.try_acquire(0.5));
  EXPECT_FALSE(bucket.try_acquire(0.5));
  // Long idle refills to capacity, never beyond.
  EXPECT_DOUBLE_EQ(bucket.available(1000.0), 4.0);
}

TEST(TokenBucketTest, NonMonotoneClockReadsAsNoTimePassed) {
  TokenBucket bucket(1.0, 1.0);
  EXPECT_TRUE(bucket.try_acquire(10.0));
  // A clock that runs backwards must not mint tokens.
  EXPECT_FALSE(bucket.try_acquire(5.0));
  EXPECT_TRUE(bucket.try_acquire(11.0));
}

TEST(TokenBucketTest, FirstCallAnchorsTheTimeAxis) {
  // Buckets start full regardless of the first timestamp's absolute value
  // (the server feeds steady_clock seconds, whose epoch is arbitrary).
  TokenBucket bucket(2.0, 1.0);
  EXPECT_TRUE(bucket.try_acquire(1e9));
  EXPECT_TRUE(bucket.try_acquire(1e9));
  EXPECT_FALSE(bucket.try_acquire(1e9));
  EXPECT_TRUE(bucket.try_acquire(1e9 + 1.0));
}

TEST(TokenBucketTest, RejectsUnusableParameters) {
  EXPECT_THROW(TokenBucket(0.5, 1.0), CheckFailure);
  EXPECT_THROW(TokenBucket(1.0, 0.0), CheckFailure);
  EXPECT_THROW(TokenBucket(1.0, -2.0), CheckFailure);
  EXPECT_THROW(ClientRateLimiter(0.0, 1.0), CheckFailure);
}

TEST(ClientRateLimiterTest, ClientsDrainIndependentBuckets) {
  ClientRateLimiter limiter(2.0, 1.0);
  // Client 1 exhausts its burst; client 2's bucket is untouched.
  EXPECT_TRUE(limiter.try_acquire(1, 0.0));
  EXPECT_TRUE(limiter.try_acquire(1, 0.0));
  EXPECT_FALSE(limiter.try_acquire(1, 0.0));
  EXPECT_TRUE(limiter.try_acquire(2, 0.0));
  EXPECT_TRUE(limiter.try_acquire(2, 0.0));
  EXPECT_FALSE(limiter.try_acquire(2, 0.0));
  // Refill is per client too.
  EXPECT_TRUE(limiter.try_acquire(1, 1.0));
  EXPECT_FALSE(limiter.try_acquire(1, 1.0));
}

TEST(ClientRateLimiterTest, LateJoinersStartWithAFullBurst) {
  ClientRateLimiter limiter(1.0, 0.001);
  EXPECT_TRUE(limiter.try_acquire(1, 0.0));
  EXPECT_FALSE(limiter.try_acquire(1, 5.0));  // 0.005 tokens accrued
  // A client first seen at t=5 is not charged for history before it joined.
  EXPECT_TRUE(limiter.try_acquire(2, 5.0));
}

}  // namespace
}  // namespace ppsim::net
