// SweepService + SweepServer: the job-service core and its socket front.
//
// The load-bearing invariants pinned here:
//   * a submit's end-of-job report is byte-identical to what an offline
//     SweepRunner produces for the ppsim_run-mirrored spec (the service is
//     a transport, never a second results path);
//   * re-submitting a spec serves every cell from the cache, re-executes
//     ZERO trials, and still returns the identical bytes;
//   * concurrent clients with overlapping specs get consistent answers and
//     a monotonically growing hit counter;
//   * admission control answers error lines, it does not queue work.
#include "ppsim/net/server.hpp"
#include "ppsim/net/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "ppsim/analysis/bounds.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/core/engine.hpp"
#include "ppsim/core/runner.hpp"
#include "ppsim/core/scenario.hpp"
#include "ppsim/core/sweep.hpp"
#include "ppsim/net/socket.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/check.hpp"
#include "ppsim/util/json_parse.hpp"

namespace ppsim::net {
namespace {

constexpr Count kN = 300;
constexpr std::size_t kK = 2;
constexpr double kMaxParallel = 100000.0;

JsonValue submit_request(std::uint64_t seed = 7, std::size_t trials = 2) {
  return JsonValue::parse(
      R"({"type": "submit", "n": )" + std::to_string(kN) +
      R"(, "k": )" + std::to_string(kK) + R"(, "trials": )" +
      std::to_string(trials) + R"(, "seed": )" + std::to_string(seed) +
      R"(, "threads": 2})");
}

/// Runs one request through an in-process service, collecting every line.
std::vector<std::string> run_collect(SweepService& service,
                                     const JsonValue& request) {
  std::vector<std::string> lines;
  service.run_job(request, [&](const std::string& line) {
    lines.push_back(line);
    return true;
  });
  return lines;
}

/// The report string carried by the final done line.
std::string report_of(const std::vector<std::string>& lines) {
  EXPECT_FALSE(lines.empty());
  const JsonValue done = JsonValue::parse(lines.back());
  EXPECT_EQ(done.at("type").as_string(), "done");
  return done.at("report").as_string();
}

/// The offline oracle: the spec and trial body ppsim_run builds for
/// `--protocol usd --engine auto`, reimplemented here independently of the
/// service's own mirroring code.
std::string offline_report(std::uint64_t seed, std::size_t trials) {
  const Count bias = static_cast<Count>(bounds::whp_bias(kN));
  SweepSpec spec;
  spec.name = "ppsim_run";
  SweepCell cell;
  cell.n = kN;
  cell.k = kK;
  cell.bias = static_cast<double>(bias);
  cell.protocol = "usd";
  cell.engine = EngineKind::kSequential;
  spec.cells.push_back(cell);
  spec.trials = trials;
  spec.base_seed = seed;
  spec.threads = 2;
  spec.kernel = kernels::KernelKind::kScalar;
  const InitialConfig init = adversarial_configuration(kN, kK, bias);
  const auto budget =
      static_cast<Interactions>(kMaxParallel * static_cast<double>(kN));
  return SweepRunner(spec)
      .run([&](const SweepTrial& ctx) {
        UsdEngine engine(init.opinion_counts, ctx.seed);
        engine.run_until_stable(budget);
        TrialResult r;
        r.stabilized = engine.stabilized();
        r.interactions = engine.interactions();
        r.parallel_time = engine.time();
        r.winner = engine.winner();
        return consensus_metrics(r);
      })
      .to_json();
}

TEST(SweepServiceTest, SubmitStreamsCellsThenDoneMatchingTheOfflineRunner) {
  SweepService service({.cache_memory = 16, .cache_dir = ""});
  const std::vector<std::string> lines =
      run_collect(service, submit_request());
  ASSERT_EQ(lines.size(), 2u);  // one cell + done
  const JsonValue cell = JsonValue::parse(lines[0]);
  EXPECT_EQ(cell.at("type").as_string(), "cell");
  EXPECT_EQ(cell.at("cell_index").as_int(), 0);
  EXPECT_FALSE(cell.at("cached").as_bool());
  EXPECT_EQ(cell.at("data").at("n").as_int(), kN);
  EXPECT_EQ(report_of(lines), offline_report(7, 2));
  const ServiceCounters c = service.counters();
  EXPECT_EQ(c.jobs_completed, 1u);
  EXPECT_EQ(c.cells_served, 1u);
  EXPECT_EQ(c.cells_from_cache, 0u);
  EXPECT_EQ(c.trials_executed, 2u);
}

TEST(SweepServiceTest, WarmResubmitServesEveryCellFromCacheByteIdentically) {
  SweepService service({.cache_memory = 16, .cache_dir = ""});
  const std::vector<std::string> cold =
      run_collect(service, submit_request());
  const std::uint64_t executed_after_cold =
      service.counters().trials_executed;
  const std::vector<std::string> warm =
      run_collect(service, submit_request());
  // Zero trials re-executed, every cell cached, identical bytes end to end.
  EXPECT_EQ(service.counters().trials_executed, executed_after_cold);
  EXPECT_EQ(report_of(warm), report_of(cold));
  const JsonValue done = JsonValue::parse(warm.back());
  EXPECT_EQ(done.at("cached_cells").as_int(), done.at("cells").as_int());
  EXPECT_EQ(done.at("trials_executed").as_int(), 0);
  const JsonValue warm_cell = JsonValue::parse(warm[0]);
  EXPECT_TRUE(warm_cell.at("cached").as_bool());
  // And the streamed cell bytes are the same as the cold run's.
  const JsonValue cold_cell = JsonValue::parse(cold[0]);
  EXPECT_EQ(warm_cell.at("data").members().size(),
            cold_cell.at("data").members().size());
  EXPECT_GE(service.cache_stats().hits, 1u);
  EXPECT_EQ(service.counters().cells_from_cache, 1u);
}

TEST(SweepServiceTest, GridRequestsStreamEveryCellOnce) {
  SweepService service({.cache_memory = 16, .cache_dir = ""});
  const JsonValue request = JsonValue::parse(
      R"({"type": "submit", "n": [200, 300], "k": [2, 3], "trials": 1,)"
      R"( "seed": 3, "threads": 4})");
  const std::vector<std::string> lines = run_collect(service, request);
  ASSERT_EQ(lines.size(), 5u);  // 4 cells + done
  std::set<std::int64_t> indices;
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    const JsonValue cell = JsonValue::parse(lines[i]);
    indices.insert(cell.at("cell_index").as_int());
  }
  EXPECT_EQ(indices, (std::set<std::int64_t>{0, 1, 2, 3}));
  // n outer, k inner: cell 1 is (n=200, k=3).
  const JsonValue report = JsonValue::parse(report_of(lines));
  const JsonValue& cell1 = report.at("cells").items()[1];
  EXPECT_EQ(cell1.at("n").as_int(), 200);
  EXPECT_EQ(cell1.at("k").as_int(), 3);
}

TEST(SweepServiceTest, EngineOverrideMirrorsTheGenericFacade) {
  SweepService service({.cache_memory = 16, .cache_dir = ""});
  const JsonValue request = JsonValue::parse(
      R"({"type": "submit", "n": 300, "k": 2, "engine": "collapsed",)"
      R"( "trials": 2, "seed": 5, "threads": 2})");
  const std::vector<std::string> lines = run_collect(service, request);
  // Offline oracle: ppsim_run's --engine collapsed path.
  const Count bias = static_cast<Count>(bounds::whp_bias(kN));
  SweepSpec spec;
  spec.name = "ppsim_run";
  SweepCell cell;
  cell.n = kN;
  cell.k = kK;
  cell.bias = static_cast<double>(bias);
  cell.protocol = "usd";
  cell.engine = EngineKind::kCollapsed;
  spec.cells.push_back(cell);
  spec.trials = 2;
  spec.base_seed = 5;
  spec.threads = 2;
  spec.kernel = kernels::KernelKind::kScalar;
  const UndecidedStateDynamics usd(kK);
  const InitialConfig init = adversarial_configuration(kN, kK, bias);
  const Configuration initial =
      UndecidedStateDynamics::initial_configuration(init.opinion_counts);
  const auto budget =
      static_cast<Interactions>(kMaxParallel * static_cast<double>(kN));
  const std::string offline =
      SweepRunner(spec)
          .run([&](const SweepTrial& ctx) {
            const kernels::KernelKind kernel =
                ctx.cell.kernel.value_or(kernels::KernelKind::kScalar);
            Engine engine(ctx.cell.engine, usd, initial, ctx.seed,
                          {.kernel = kernel}, {.kernel = kernel});
            return consensus_metrics(run_engine_trial(engine, budget));
          })
          .to_json();
  EXPECT_EQ(report_of(lines), offline);
}

TEST(SweepServiceTest, ScenarioFieldsRoundTripMatchingTheOfflineRunner) {
  SweepService service({.cache_memory = 16, .cache_dir = ""});
  const JsonValue request = JsonValue::parse(
      R"({"type": "submit", "n": 300, "k": 2, "trials": 2, "seed": 7,)"
      R"( "threads": 2, "adversary": 0.25, "churn": 0.001})");
  const std::vector<std::string> lines = run_collect(service, request);
  ASSERT_EQ(lines.size(), 2u);
  // The knobs round-trip into the streamed cell's params block.
  const JsonValue cell = JsonValue::parse(lines[0]);
  const JsonValue& params = cell.at("data").at("params");
  EXPECT_EQ(params.at("adversary_strength").as_number(), 0.25);
  EXPECT_EQ(params.at("churn_rate").as_number(), 0.001);
  // Offline oracle: ppsim_run's --adversary/--churn scenario body, rebuilt
  // here independently of the service's mirroring code.
  const Count bias = static_cast<Count>(bounds::whp_bias(kN));
  SweepSpec spec;
  spec.name = "ppsim_run";
  SweepCell oracle_cell;
  oracle_cell.n = kN;
  oracle_cell.k = kK;
  oracle_cell.bias = static_cast<double>(bias);
  oracle_cell.protocol = "usd";
  oracle_cell.engine = EngineKind::kSequential;
  ScenarioSpec scenario;
  scenario.adversary_strength = 0.25;
  scenario.churn_rate = 0.001;
  oracle_cell.params = scenario.params();
  spec.cells.push_back(oracle_cell);
  spec.trials = 2;
  spec.base_seed = 7;
  spec.threads = 2;
  spec.kernel = kernels::KernelKind::kScalar;
  const InitialConfig init = adversarial_configuration(kN, kK, bias);
  const auto budget =
      static_cast<Interactions>(kMaxParallel * static_cast<double>(kN));
  const std::string offline =
      SweepRunner(spec)
          .run([&](const SweepTrial& ctx) {
            UsdEngine engine(init.opinion_counts, ctx.seed);
            AdversarialScheduler adversary(scenario.adversary_strength,
                                           ctx.rng());
            ChurnModel churn(scenario.churn_rate, scenario.churn_rate,
                             ChurnModel::JoinPolicy::kUndecided, ctx.rng());
            while (!engine.stabilized() && engine.interactions() < budget) {
              adversary.step(engine);
              churn.step(engine);
            }
            TrialResult r;
            r.stabilized = engine.stabilized();
            r.interactions = engine.interactions();
            r.parallel_time = engine.time();
            r.winner = engine.winner();
            SweepMetrics m = consensus_metrics(r);
            m.emplace_back("interventions",
                           static_cast<double>(adversary.interventions()));
            m.emplace_back("joins", static_cast<double>(churn.joins()));
            m.emplace_back("leaves", static_cast<double>(churn.leaves()));
            m.emplace_back("final_population",
                           static_cast<double>(engine.population()));
            return m;
          })
          .to_json();
  EXPECT_EQ(report_of(lines), offline);
}

TEST(SweepServiceTest, ScenarioParamsKeyTheCacheDistinctlyFromPlainSubmits) {
  SweepService service({.cache_memory = 16, .cache_dir = ""});
  const JsonValue scenario_request = JsonValue::parse(
      R"({"type": "submit", "n": 300, "k": 2, "trials": 2, "seed": 7,)"
      R"( "threads": 2, "adversary": 0.25, "churn": 0.001})");
  run_collect(service, scenario_request);
  const std::uint64_t after_scenario = service.counters().trials_executed;
  EXPECT_EQ(after_scenario, 2u);
  // A plain submit of the otherwise-identical spec must NOT be served from
  // the scenario run's cache entry: the knobs live in the cell params, so
  // the canonical cell keys differ and the plain cells compute cold.
  const std::vector<std::string> plain =
      run_collect(service, submit_request());
  EXPECT_EQ(service.counters().trials_executed, after_scenario + 2);
  EXPECT_EQ(service.counters().cells_from_cache, 0u);
  EXPECT_EQ(report_of(plain), offline_report(7, 2));
  // Re-submitting the scenario spec IS a cache hit — same knobs, same key.
  const std::vector<std::string> warm =
      run_collect(service, scenario_request);
  EXPECT_EQ(service.counters().trials_executed, after_scenario + 2);
  EXPECT_EQ(service.counters().cells_from_cache, 1u);
  EXPECT_TRUE(JsonValue::parse(warm[0]).at("cached").as_bool());
}

TEST(SweepServiceTest, InvalidRequestsAreRejectedBeforeAnyWork) {
  SweepService service({.cache_memory = 16, .cache_dir = ""});
  const auto reject = [&](const std::string& request) {
    EXPECT_THROW(
        service.run_job(JsonValue::parse(request),
                        [](const std::string&) { return true; }),
        CheckFailure)
        << request;
  };
  reject(R"({"type": "submit", "protocol": "three-majority"})");
  reject(R"({"type": "submit", "trials": 0})");
  reject(R"({"type": "submit", "n": 1})");
  reject(R"({"type": "submit", "k": 0})");
  reject(R"({"type": "submit", "n": []})");
  reject(R"({"type": "submit", "engine": "warp"})");
  reject(R"({"type": "submit", "max_parallel": 0})");
  reject(R"({"type": "submit", "bias": 1.5})");  // non-integral bias
  reject(R"({"type": "submit", "adversary": 1.5})");
  reject(R"({"type": "submit", "churn": -0.1})");
  // Scenario knobs run the specialized sequential body only.
  reject(R"({"type": "submit", "adversary": 0.3, "engine": "collapsed"})");
  EXPECT_EQ(service.counters().jobs_completed, 0u);
  EXPECT_EQ(service.counters().trials_executed, 0u);
}

TEST(SweepServiceTest, AVanishedClientCancelsItsJob) {
  SweepService service({.cache_memory = 16, .cache_dir = ""});
  const JsonValue request = JsonValue::parse(
      R"({"type": "submit", "n": [200, 240, 280, 320], "k": 2,)"
      R"( "trials": 4, "seed": 11, "threads": 2})");
  std::atomic<int> delivered{0};
  service.run_job(request, [&](const std::string&) {
    // First line lands, then the "client" is gone.
    return ++delivered == 1;
  });
  EXPECT_EQ(service.counters().jobs_completed, 0u);
  EXPECT_EQ(service.counters().jobs_failed, 1u);
}

// ---------------------------------------------------------------- socket --

std::string socket_path(const std::string& stem) {
  return testing::TempDir() + "/" + stem + ".sock";
}

/// Connects with retries (the server thread may still be binding).
LineChannel connect_with_retry(const std::string& path) {
  for (int attempt = 0;; ++attempt) {
    try {
      return LineChannel(connect_to(path));
    } catch (const CheckFailure&) {
      if (attempt > 200) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

/// Sends one request line and reads until a done/error line (inclusive).
std::vector<std::string> roundtrip(LineChannel& channel,
                                   const std::string& request) {
  EXPECT_TRUE(channel.write_line(request));
  std::vector<std::string> lines;
  while (true) {
    std::optional<std::string> line = channel.read_line();
    if (!line.has_value()) break;
    lines.push_back(*line);
    const JsonValue parsed = JsonValue::parse(*line);
    const std::string type = parsed.at("type").as_string();
    if (type == "done" || type == "error" || type == "stats") break;
  }
  return lines;
}

TEST(SweepServerTest, SoakConcurrentClientsWithOverlappingSpecs) {
  ServerConfig config;
  config.socket_path = socket_path("ppsim_soak");
  config.service = {.cache_memory = 64, .cache_dir = ""};
  config.rate_burst = 100.0;  // admission is not under test here
  config.rate_per_second = 100.0;
  SweepServer server(config);
  std::thread serving([&] { server.run(); });

  constexpr int kClients = 3;
  constexpr int kRequestsPerClient = 2;
  const std::uint64_t hits_before = server.service().cache_stats().hits;
  std::vector<std::string> reports(kClients * kRequestsPerClient);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      LineChannel channel = connect_with_retry(config.socket_path);
      for (int r = 0; r < kRequestsPerClient; ++r) {
        // Every client submits the SAME spec: maximal cache overlap.
        const std::vector<std::string> lines = roundtrip(
            channel,
            R"({"type": "submit", "n": [200, 300], "k": 2, "trials": 2,)"
            R"( "seed": 9, "threads": 2})");
        ASSERT_FALSE(lines.empty());
        const JsonValue done = JsonValue::parse(lines.back());
        ASSERT_EQ(done.at("type").as_string(), "done");
        reports[static_cast<std::size_t>(c * kRequestsPerClient + r)] =
            done.at("report").as_string();
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.stop();
  serving.join();

  // Every answer to the shared spec is the same bytes, no matter which
  // client asked, when, or whether the cells came from cache.
  for (const std::string& report : reports) {
    EXPECT_EQ(report, reports[0]);
    EXPECT_FALSE(report.empty());
  }
  // The overlap was actually served from cache, and the hit counter only
  // ever grows: 6 submissions x 2 cells, at most 2 computed cold.
  const auto stats = server.service().cache_stats();
  EXPECT_GE(stats.hits, hits_before + 10);
  EXPECT_EQ(server.service().counters().jobs_completed,
            static_cast<std::uint64_t>(kClients * kRequestsPerClient));
}

TEST(SweepServerTest, RateLimiterAnswersErrorLinesNotQueuedWork) {
  ServerConfig config;
  config.socket_path = socket_path("ppsim_rate");
  config.service = {.cache_memory = 4, .cache_dir = ""};
  config.rate_burst = 1.0;          // one request of burst...
  config.rate_per_second = 0.0001;  // ...and essentially no refill
  SweepServer server(config);
  std::thread serving([&] { server.run(); });
  {
    LineChannel channel = connect_with_retry(config.socket_path);
    const std::vector<std::string> first =
        roundtrip(channel, R"({"type": "stats"})");
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(JsonValue::parse(first[0]).at("type").as_string(), "stats");
    const std::vector<std::string> second =
        roundtrip(channel, R"({"type": "stats"})");
    ASSERT_EQ(second.size(), 1u);
    const JsonValue error = JsonValue::parse(second[0]);
    EXPECT_EQ(error.at("type").as_string(), "error");
    EXPECT_EQ(error.at("error").as_string(), "rate limited");
    // A second connection is a different client: its own full bucket.
    LineChannel other = connect_with_retry(config.socket_path);
    const std::vector<std::string> third =
        roundtrip(other, R"({"type": "stats"})");
    ASSERT_EQ(third.size(), 1u);
    EXPECT_EQ(JsonValue::parse(third[0]).at("type").as_string(), "stats");
  }
  server.stop();
  serving.join();
}

TEST(SweepServerTest, MalformedLinesAnswerErrorsAndKeepTheConnection) {
  ServerConfig config;
  config.socket_path = socket_path("ppsim_bad");
  config.service = {.cache_memory = 4, .cache_dir = ""};
  SweepServer server(config);
  std::thread serving([&] { server.run(); });
  {
    LineChannel channel = connect_with_retry(config.socket_path);
    for (const std::string& bad :
         {std::string("this is not json"), std::string(R"({"no":"type"})"),
          std::string(R"({"type":"warp"})")}) {
      const std::vector<std::string> lines = roundtrip(channel, bad);
      ASSERT_EQ(lines.size(), 1u) << bad;
      EXPECT_EQ(JsonValue::parse(lines[0]).at("type").as_string(), "error");
    }
    // The connection still serves real requests afterwards.
    const std::vector<std::string> ok =
        roundtrip(channel, R"({"type": "stats"})");
    ASSERT_EQ(ok.size(), 1u);
    EXPECT_EQ(JsonValue::parse(ok[0]).at("type").as_string(), "stats");
  }
  server.stop();
  serving.join();
}

}  // namespace
}  // namespace ppsim::net
