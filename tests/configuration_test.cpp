// Configuration invariants: population conservation, non-negativity, bulk
// moves, and observables.
#include "ppsim/core/configuration.hpp"

#include <gtest/gtest.h>

#include "ppsim/util/check.hpp"

namespace ppsim {
namespace {

TEST(ConfigurationTest, ConstructionComputesPopulation) {
  const Configuration c({3, 0, 7});
  EXPECT_EQ(c.num_states(), 3u);
  EXPECT_EQ(c.population(), 10);
  EXPECT_EQ(c.count(0), 3);
  EXPECT_EQ(c.count(1), 0);
  EXPECT_EQ(c.count(2), 7);
}

TEST(ConfigurationTest, RejectsInvalidConstruction) {
  EXPECT_THROW(Configuration({}), CheckFailure);
  EXPECT_THROW(Configuration({3, -1}), CheckFailure);
}

TEST(ConfigurationTest, MonochromaticFactory) {
  const Configuration c = Configuration::monochromatic(4, 2, 100);
  EXPECT_EQ(c.count(2), 100);
  EXPECT_EQ(c.population(), 100);
  EXPECT_TRUE(c.is_monochromatic());
  EXPECT_THROW(Configuration::monochromatic(4, 4, 1), CheckFailure);
}

TEST(ConfigurationTest, MoveAgentConservesPopulation) {
  Configuration c({5, 5});
  c.move_agent(0, 1);
  EXPECT_EQ(c.count(0), 4);
  EXPECT_EQ(c.count(1), 6);
  EXPECT_EQ(c.population(), 10);
}

TEST(ConfigurationTest, MoveAgentSelfIsNoop) {
  Configuration c({5, 5});
  c.move_agent(1, 1);
  EXPECT_EQ(c.count(1), 5);
}

TEST(ConfigurationTest, MoveFromEmptyStateThrows) {
  Configuration c({0, 5});
  EXPECT_THROW(c.move_agent(0, 1), CheckFailure);
  EXPECT_THROW(c.move_agent(2, 0), CheckFailure);  // out of range
}

TEST(ConfigurationTest, BulkMove) {
  Configuration c({10, 0});
  c.move_agents(0, 1, 7);
  EXPECT_EQ(c.count(0), 3);
  EXPECT_EQ(c.count(1), 7);
  EXPECT_THROW(c.move_agents(0, 1, 4), CheckFailure);   // only 3 left
  EXPECT_THROW(c.move_agents(1, 0, -1), CheckFailure);  // negative
  c.move_agents(1, 1, 5);                               // self-move no-op
  EXPECT_EQ(c.count(1), 7);
}

TEST(ConfigurationTest, MonochromaticDetection) {
  EXPECT_TRUE(Configuration({0, 10, 0}).is_monochromatic());
  EXPECT_FALSE(Configuration({1, 9, 0}).is_monochromatic());
}

TEST(ConfigurationTest, ArgmaxAndSupport) {
  const Configuration c({2, 9, 0, 9});
  EXPECT_EQ(c.argmax(), 1u);  // ties break to the smallest index
  EXPECT_EQ(c.support_size(), 3u);
}

TEST(ConfigurationTest, ToStringFormat) {
  EXPECT_EQ(Configuration({1, 2, 3}).to_string(), "[1, 2, 3]");
}

TEST(ConfigurationTest, EqualityIsStructural) {
  EXPECT_EQ(Configuration({1, 2}), Configuration({1, 2}));
  EXPECT_NE(Configuration({1, 2}), Configuration({2, 1}));
}

}  // namespace
}  // namespace ppsim
