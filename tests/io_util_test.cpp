// Table emission, ASCII plotting and CLI parsing.
#include <gtest/gtest.h>

#include <sstream>

#include "ppsim/util/ascii_plot.hpp"
#include "ppsim/util/check.hpp"
#include "ppsim/util/cli.hpp"
#include "ppsim/util/table.hpp"

namespace ppsim {
namespace {

// ----------------------------------------------------------------- table ----

TEST(TableTest, TsvRoundTrip) {
  Table t({"n", "k", "time"});
  t.row().cell(std::int64_t{1000}).cell(std::int64_t{8}).cell(3.25, 2).done();
  t.row().cell(std::int64_t{2000}).cell(std::int64_t{16}).cell(7.5, 2).done();
  std::ostringstream os;
  t.write_tsv(os);
  EXPECT_EQ(os.str(), "n\tk\ttime\n1000\t8\t3.25\n2000\t16\t7.50\n");
}

TEST(TableTest, PrettyContainsAllCells) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(std::int64_t{42}).done();
  std::ostringstream os;
  t.write_pretty(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(TableTest, RejectsWrongRowWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckFailure);
  EXPECT_THROW(Table({}), CheckFailure);
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_int(-7), "-7");
  EXPECT_EQ(format_sci(12345.0, 2), "1.23e+04");
}

// ------------------------------------------------------------------ plot ----

TEST(AsciiPlotTest, RendersSeriesGlyphsAndLegend) {
  AsciiPlot plot(40, 10);
  plot.add_series("rising", '*', {0.0, 1.0, 2.0}, {0.0, 5.0, 10.0});
  plot.add_hline("guide", '-', 5.0);
  plot.set_labels("t", "count");
  const std::string out = plot.render();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("rising"), std::string::npos);
  EXPECT_NE(out.find("guide"), std::string::npos);
  EXPECT_NE(out.find("count"), std::string::npos);
}

TEST(AsciiPlotTest, RejectsEmptyAndTiny) {
  EXPECT_THROW(AsciiPlot(2, 2), CheckFailure);
  AsciiPlot plot(40, 10);
  EXPECT_THROW(plot.render(), CheckFailure);  // nothing to plot
  EXPECT_THROW(plot.add_series("bad", 'x', {}, {}), CheckFailure);
  EXPECT_THROW(plot.add_series("bad", 'x', {1.0}, {1.0, 2.0}), CheckFailure);
}

TEST(AsciiPlotTest, ConstantSeriesDoesNotDivideByZero) {
  AsciiPlot plot(40, 10);
  plot.add_series("flat", 'o', {0.0, 1.0}, {3.0, 3.0});
  EXPECT_NO_THROW(plot.render());
}

// ------------------------------------------------------------------- cli ----

TEST(CliTest, ParsesSpaceAndEqualsForms) {
  const char* argv[] = {"prog", "--n", "1000", "--k=27", "--verbose"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("n", 0), 1000);
  EXPECT_EQ(cli.get_int("k", 0), 27);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_NO_THROW(cli.validate_no_unknown_flags());
}

TEST(CliTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_EQ(cli.get_int("n", 123), 123);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 2.5), 2.5);
  EXPECT_EQ(cli.get_string("name", "default"), "default");
  EXPECT_FALSE(cli.get_bool("flag", false));
  EXPECT_FALSE(cli.has("n"));
}

TEST(CliTest, RejectsMalformedInput) {
  const char* bad_prefix[] = {"prog", "n", "5"};
  EXPECT_THROW(Cli(3, bad_prefix), CheckFailure);

  const char* bad_int[] = {"prog", "--n", "12x"};
  Cli cli(3, bad_int);
  EXPECT_THROW(cli.get_int("n", 0), CheckFailure);
}

TEST(CliTest, UnknownFlagsDetected) {
  const char* argv[] = {"prog", "--typo", "5"};
  Cli cli(3, argv);
  cli.get_int("n", 0);  // registers "n" only
  EXPECT_THROW(cli.validate_no_unknown_flags(), CheckFailure);
}

TEST(CliTest, NegativeNumbersAsValues) {
  const char* argv[] = {"prog", "--bias=-5"};
  Cli cli(2, argv);
  EXPECT_EQ(cli.get_int("bias", 0), -5);
}

}  // namespace
}  // namespace ppsim
