// Integration tests that validate the paper's quantitative claims at
// CI-friendly scale (n = 10^4 – 10^5 instead of 10^6). These are the same
// measurements the bench harnesses perform at paper scale; EXPERIMENTS.md
// records the paper-scale numbers.
#include <gtest/gtest.h>

#include <cmath>

#include "ppsim/analysis/bounds.hpp"
#include "ppsim/analysis/drift.hpp"
#include "ppsim/analysis/hitting_times.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/core/runner.hpp"
#include "ppsim/protocols/usd.hpp"

namespace ppsim {
namespace {

// ----------------------------------------------------------- Lemma 3.1 ----

TEST(PaperLemma31, UndecidedNeverExceedsCeiling) {
  // The ceiling holds w.p. >= 1 - n^{-4}; at n = 20000 a violation over a
  // handful of seeds is effectively impossible.
  const Count n = 20000;
  const std::size_t k = 10;
  const double ceiling = bounds::lemma31_ceiling(n, k);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const InitialConfig init = figure1_configuration(n, k);
    UsdEngine engine(init.opinion_counts, seed);
    const UndecidedExcursion exc = max_undecided_over_run(engine, 100 * n);
    EXPECT_LT(static_cast<double>(exc.max_undecided), ceiling) << "seed " << seed;
  }
}

TEST(PaperLemma31, UndecidedSettlesNearSettlePoint) {
  // After burn-in, u(t) should hover near n/2 - n/4k (Figure 1's guide
  // line); with the √(n log n) correction terms this is a loose band test.
  const Count n = 50000;
  const std::size_t k = 8;
  const InitialConfig init = figure1_configuration(n, k);
  UsdEngine engine(init.opinion_counts, 42);
  // burn in 10 parallel time units
  for (Interactions i = 0; i < 10 * n; ++i) engine.step();
  const double settle = bounds::usd_settle_point(n, k);
  RunningStats u_obs;
  for (int s = 0; s < 1000; ++s) {
    for (Interactions i = 0; i < n / 100; ++i) engine.step();
    u_obs.add(static_cast<double>(engine.undecided()));
    if (engine.stabilized()) break;
  }
  const double slack = 3.0 * std::sqrt(static_cast<double>(n) *
                                       std::log(static_cast<double>(n)));
  EXPECT_NEAR(u_obs.mean(), settle, slack);
}

TEST(PaperLemma31, AmirSandwichHolds) {
  // Amir et al.: n/2 - x_1/2 <= u(t) <= n/2 after the first n·log n
  // interactions (up to the fluctuation terms; we allow the Lemma 3.1
  // √(n log n) slack on both sides).
  const Count n = 30000;
  const std::size_t k = 6;
  const InitialConfig init = figure1_configuration(n, k);
  UsdEngine engine(init.opinion_counts, 7);
  const auto burn_in = static_cast<Interactions>(
      static_cast<double>(n) * std::log(static_cast<double>(n)));
  for (Interactions i = 0; i < burn_in && !engine.stabilized(); ++i) engine.step();
  const double slack =
      2.0 * std::sqrt(static_cast<double>(n) * std::log(static_cast<double>(n)));
  for (int probe = 0; probe < 200 && !engine.stabilized(); ++probe) {
    for (Interactions i = 0; i < n / 20; ++i) engine.step();
    const auto u = static_cast<double>(engine.undecided());
    const auto x1 = static_cast<double>(engine.max_opinion_count());
    ASSERT_LE(u, static_cast<double>(n) / 2.0 + slack);
    ASSERT_GE(u, static_cast<double>(n) / 2.0 - x1 / 2.0 - slack);
  }
}

// ----------------------------------------------------------- Lemma 3.3 ----

TEST(PaperLemma33, OpinionGrowthIsSlow) {
  // From the adversarial configuration, no opinion reaches 2n/k within
  // kn/25 interactions w.h.p. Verify for the majority opinion, the most
  // likely violator.
  const Count n = 50000;
  const std::size_t k = 10;
  const auto target = static_cast<Count>(bounds::lemma33_target_level(n, k));
  const auto budget = static_cast<Interactions>(bounds::lemma33_interactions(n, k));
  for (std::uint64_t seed = 11; seed <= 15; ++seed) {
    const InitialConfig init = figure1_configuration(n, k);
    ASSERT_LT(static_cast<double>(init.majority()),
              bounds::lemma33_start_level(n, k));
    UsdEngine engine(init.opinion_counts, seed);
    const HittingResult r = time_until_opinion_reaches(engine, 0, target, budget);
    EXPECT_FALSE(r.hit) << "seed " << seed << ": x_0 reached 2n/k after "
                        << r.interactions_at_hit << " interactions (budget "
                        << budget << ")";
  }
}

// ----------------------------------------------------------- Lemma 3.4 ----

TEST(PaperLemma34, MaxDifferenceDoesNotDoubleFast) {
  // With initial difference α/2 = ω(√(n log n)), Δmax needs more than kn/24
  // interactions to reach α, w.h.p.
  const Count n = 50000;
  const std::size_t k = 10;
  const auto alpha_half = static_cast<Count>(2.0 * bounds::whp_bias(n));
  const auto budget = static_cast<Interactions>(bounds::lemma34_interactions(n, k));
  for (std::uint64_t seed = 21; seed <= 25; ++seed) {
    const InitialConfig init = adversarial_configuration(n, k, alpha_half);
    UsdEngine engine(init.opinion_counts, seed);
    const HittingResult r =
        time_until_delta_reaches(engine, 2 * init.bias, budget);
    EXPECT_FALSE(r.hit) << "seed " << seed << ": Δmax doubled after "
                        << r.interactions_at_hit << " interactions";
  }
}

// --------------------------------------------------------- Theorem 3.5 ----

TEST(PaperTheorem35, StabilizationSlowerThanLowerBound) {
  // Measured stabilization (parallel time) must exceed the paper's lower
  // bound (k/25)·ln(√n/(k ln n)) on the adversarial configuration.
  const Count n = 40000;
  const std::size_t k = 8;
  const double lb = bounds::theorem35_parallel_lower_bound(n, k);
  ASSERT_GT(lb, 0.0);
  auto trial = [&](std::uint64_t seed, std::size_t) {
    const InitialConfig init = figure1_configuration(n, k);
    UsdEngine engine(init.opinion_counts, seed);
    engine.run_until_stable(5000 * n);
    TrialResult r;
    r.stabilized = engine.stabilized();
    r.parallel_time = engine.time();
    r.winner = engine.winner();
    return r;
  };
  const auto results = run_trials(trial, 5, 123, 0);
  for (const auto& r : results) {
    ASSERT_TRUE(r.stabilized);
    EXPECT_GT(r.parallel_time, lb);
  }
}

TEST(PaperTheorem35, BiasWithinTheoremStillWinsWithWhpBias) {
  // The subtle point: the lower bound applies even though the √(n ln n)
  // bias guarantees the majority wins. Check the winner is opinion 0 in
  // every trial.
  const Count n = 40000;
  const std::size_t k = 8;
  auto trial = [&](std::uint64_t seed, std::size_t) {
    const InitialConfig init = figure1_configuration(n, k);
    UsdEngine engine(init.opinion_counts, seed);
    engine.run_until_stable(5000 * n);
    TrialResult r;
    r.stabilized = engine.stabilized();
    r.winner = engine.winner();
    return r;
  };
  const auto results = run_trials(trial, 8, 321, 0);
  int majority_wins = 0;
  for (const auto& r : results) {
    ASSERT_TRUE(r.stabilized);
    if (r.winner.has_value() && *r.winner == 0) ++majority_wins;
  }
  // w.h.p. all trials; allow at most one upset at this small n.
  EXPECT_GE(majority_wins, 7);
}

// -------------------------------------------- Figure 1 qualitative shape ----

TEST(PaperFigure1, DoublingTakesMostOfTheStabilizationTime) {
  // Figure 1 (right): reaching 2·x_1(0) consumes the bulk of the run
  // (~70 of ~90 parallel time units at paper scale). At small scale we
  // assert it takes at least a third of the total stabilization time.
  const Count n = 30000;
  const std::size_t k = bounds::paper_k(n);  // paper's k(n)
  const InitialConfig init = figure1_configuration(n, k);

  UsdEngine doubling_engine(init.opinion_counts, 99);
  const HittingResult doubling = time_until_opinion_reaches(
      doubling_engine, 0, 2 * init.majority(), 100000 * n);
  ASSERT_TRUE(doubling.hit);

  UsdEngine full_engine(init.opinion_counts, 99);
  const HittingResult full = time_until_stable(full_engine, 100000 * n);
  ASSERT_TRUE(full.hit);

  EXPECT_GT(static_cast<double>(doubling.interactions_at_hit),
            static_cast<double>(full.interactions_at_hit) / 3.0);
  EXPECT_LE(doubling.interactions_at_hit, full.interactions_at_hit);
}

TEST(PaperFigure1, MinorityOpinionsAreNotMonotone) {
  // Figure 1 (left) observation: "not all minority opinions are strictly
  // decreasing over time, but many are actually increasing over a long time
  // period". After the initial burn-in (where every opinion halves while u
  // climbs), some minority must later exceed its post-burn-in level by a
  // clear margin.
  const Count n = 30000;
  const std::size_t k = 10;
  const InitialConfig init = figure1_configuration(n, k);
  UsdEngine engine(init.opinion_counts, 5);
  for (Interactions i = 0; i < 5 * n; ++i) engine.step();  // burn-in
  std::vector<Count> after_burn_in(k);
  for (Opinion j = 0; j < k; ++j) after_burn_in[j] = engine.opinion_count(j);

  bool some_minority_rose = false;
  for (int sample = 0; sample < 2000 && !engine.stabilized(); ++sample) {
    for (Interactions i = 0; i < n / 10; ++i) engine.step();
    for (Opinion j = 1; j < k; ++j) {
      if (static_cast<double>(engine.opinion_count(j)) >
          1.1 * static_cast<double>(after_burn_in[j])) {
        some_minority_rose = true;
        break;
      }
    }
    if (some_minority_rose) break;
  }
  EXPECT_TRUE(some_minority_rose);
}

TEST(PaperFigure1, UndecidedClimbsFastThenStaysNearSettle) {
  // Figure 1 (left): u(0) = 0, climbs to ≈ n/2 - n/4k within a few parallel
  // time units, then stays in a band around it.
  const Count n = 30000;
  const std::size_t k = 10;
  const InitialConfig init = figure1_configuration(n, k);
  UsdEngine engine(init.opinion_counts, 17);
  for (Interactions i = 0; i < 5 * n; ++i) engine.step();  // 5 parallel units
  const double settle = bounds::usd_settle_point(n, k);
  EXPECT_GT(static_cast<double>(engine.undecided()), 0.8 * settle);
  EXPECT_LT(static_cast<double>(engine.undecided()),
            bounds::lemma31_ceiling(n, k));
}

}  // namespace
}  // namespace ppsim
