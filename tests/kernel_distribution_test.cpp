// Distributional validation of the AVX2 round kernel against the exact
// two-stage law the scalar kernel realises. The AVX2 backend uses its own
// binomial samplers (inversion + BTRS rejection) and a vectorised
// xoshiro256++, so its draw *values* differ from scalar — correctness is the
// distribution, pinned three ways:
//   1. chi-square of accumulated pair draws (including the null bucket)
//      against the exact start-of-round law;
//   2. moments of the stage-1 null-split binomial at extreme p, including
//      paper-scale batch sizes;
//   3. two-sample KS between avx2 and scalar stabilization times on USD.
// Every test SKIPs on hosts without AVX2 (the CI avx2 lane runs them).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <vector>

#include "ppsim/core/collapsed_simulator.hpp"
#include "ppsim/core/configuration.hpp"
#include "ppsim/core/transition_table.hpp"
#include "ppsim/kernels/pair_law.hpp"
#include "ppsim/kernels/round_kernel.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/rng.hpp"
#include "ppsim/util/stats.hpp"
#include "scenario_stat_util.hpp"

namespace ppsim::kernels {
namespace {

/// One-directional epidemic on {0, 1}: f(1, 0) = (1, 1), all else null.
/// With counts (c0, c1) the only active pair has weight c1·c0, giving a
/// single-bucket law whose null-split binomial is easy to reason about.
class OneWayEpidemic final : public Protocol {
 public:
  std::size_t num_states() const override { return 2; }
  Transition apply(State initiator, State responder) const override {
    if (initiator == 1 && responder == 0) return {1, 1};
    return {initiator, responder};
  }
  std::optional<Opinion> output(State) const override { return 0; }
  std::string name() const override { return "one-way epidemic"; }
};

class Avx2DistributionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!avx2_supported()) {
      GTEST_SKIP() << "host lacks AVX2 (or the kernel was compiled out)";
    }
    kernel_ = &resolve(KernelKind::kAvx2);
  }

  /// Stages `lanes` independent tasks over `law` with the given batch and
  /// runs one advance_batch; returns per-lane (active, draws).
  void advance_lanes(const PairLaw& law, Interactions batch,
                     std::vector<Xoshiro256pp>& rngs,
                     std::vector<RoundTask>& tasks,
                     std::vector<std::vector<std::int64_t>>& draws) {
    tasks.resize(rngs.size());
    draws.resize(rngs.size());
    std::vector<RoundTask*> staged;
    for (std::size_t l = 0; l < rngs.size(); ++l) {
      tasks[l].law = &law;
      tasks[l].batch = batch;
      tasks[l].rng = &rngs[l];
      tasks[l].draws = &draws[l];
      tasks[l].active = 0;
      staged.push_back(&tasks[l]);
    }
    kernel_->advance_batch(staged);
  }

  const RoundKernel* kernel_ = nullptr;
};

TEST_F(Avx2DistributionTest, PairDrawsMatchTheExactLawByChiSquare) {
  const UndecidedStateDynamics usd(3);
  const TransitionTable table(usd);
  PairLaw law;
  law.rebuild(table, Configuration({10, 40, 35, 25}));
  ASSERT_FALSE(law.empty());

  constexpr Interactions kBatch = 500;
  constexpr int kRounds = 400;
  std::vector<Xoshiro256pp> rngs;
  for (int l = 0; l < 4; ++l) rngs.emplace_back(900 + l);
  std::vector<RoundTask> tasks;
  std::vector<std::vector<std::int64_t>> draws;

  // Accumulate every draw into one histogram: bucket i = active pair i,
  // last bucket = null interactions. The counts never change (we never
  // apply the draws), so every round samples the same multinomial law.
  std::vector<std::int64_t> observed(law.size() + 1, 0);
  for (int r = 0; r < kRounds; ++r) {
    advance_lanes(law, kBatch, rngs, tasks, draws);
    for (std::size_t l = 0; l < rngs.size(); ++l) {
      std::int64_t sum = 0;
      if (tasks[l].active > 0) {
        ASSERT_EQ(draws[l].size(), law.size());
        for (std::size_t i = 0; i < law.size(); ++i) {
          ASSERT_GE(draws[l][i], 0);
          observed[i] += draws[l][i];
          sum += draws[l][i];
        }
      }
      // Conservation: the multinomial places exactly `active` draws.
      ASSERT_EQ(sum, tasks[l].active);
      ASSERT_LE(tasks[l].active, kBatch);
      observed.back() += kBatch - tasks[l].active;
    }
  }

  const double total =
      static_cast<double>(kBatch) * kRounds * static_cast<double>(rngs.size());
  std::vector<double> expected(law.size() + 1, 0.0);
  for (std::size_t i = 0; i < law.size(); ++i) {
    expected[i] = total * law.weight(i) / law.total_weight();
  }
  expected.back() =
      total * (1.0 - law.active_weight() / law.total_weight());

  const double stat = chi_square_statistic(observed, expected);
  const double p = chi_square_sf(stat, static_cast<int>(law.size()));
  EXPECT_GT(p, 1e-4) << "chi-square " << stat << " on " << law.size()
                     << " dof";
}

TEST_F(Avx2DistributionTest, NullSplitBinomialMomentsAtExtremeP) {
  // One active pair: stage-1 active ~ Binomial(batch, c1·c0 / n(n−1)).
  // Near-epidemic-end counts make p extreme; the large batch drives the
  // sampler through its BTRS branch, the tiny p through inversion.
  const OneWayEpidemic epidemic;
  const TransitionTable table(epidemic);
  struct Case {
    Count c0, c1;
    Interactions batch;
  };
  const std::vector<Case> cases = {
      {1, 99'999, 2'000'000},     // p ≈ 1e-5·…: inversion branch
      {50'000, 50'000, 200'000},  // p ≈ 0.25: BTRS branch
      {99'999, 1, 400'000},       // tiny p again, asymmetric counts
  };
  for (const Case& c : cases) {
    PairLaw law;
    law.rebuild(table, Configuration({c.c0, c.c1}));
    ASSERT_EQ(law.size(), 1u);
    const double p_active = law.active_weight() / law.total_weight();
    const double mean = static_cast<double>(c.batch) * p_active;
    const double sd =
        std::sqrt(static_cast<double>(c.batch) * p_active * (1.0 - p_active));

    constexpr int kRounds = 250;
    std::vector<Xoshiro256pp> rngs;
    for (int l = 0; l < 4; ++l) rngs.emplace_back(31 + l);
    std::vector<RoundTask> tasks;
    std::vector<std::vector<std::int64_t>> draws;
    RunningStats stats;
    for (int r = 0; r < kRounds; ++r) {
      advance_lanes(law, c.batch, rngs, tasks, draws);
      for (std::size_t l = 0; l < rngs.size(); ++l) {
        ASSERT_GE(tasks[l].active, 0);
        ASSERT_LE(tasks[l].active, c.batch);
        stats.add(static_cast<double>(tasks[l].active));
      }
    }
    // 5σ window on the sample mean; variance within a generous factor.
    const double samples = static_cast<double>(stats.count());
    EXPECT_NEAR(stats.mean(), mean, 5.0 * sd / std::sqrt(samples))
        << "c0=" << c.c0 << " c1=" << c.c1;
    EXPECT_NEAR(stats.stddev(), sd, 0.2 * sd)
        << "c0=" << c.c0 << " c1=" << c.c1;
  }
}

TEST_F(Avx2DistributionTest, LockstepGroupIsDeterministic) {
  // Same seeds, same group → identical results on repeat (the lane packing
  // and shared uniform blocks must not leak nondeterminism).
  const UndecidedStateDynamics usd(3);
  const TransitionTable table(usd);
  PairLaw law;
  law.rebuild(table, Configuration({0, 400, 350, 250}));

  auto run_once = [&]() {
    std::vector<Xoshiro256pp> rngs;
    for (int l = 0; l < 4; ++l) rngs.emplace_back(555 + l);
    std::vector<RoundTask> tasks;
    std::vector<std::vector<std::int64_t>> draws;
    std::vector<std::int64_t> trace;
    for (int r = 0; r < 50; ++r) {
      advance_lanes(law, 300, rngs, tasks, draws);
      for (std::size_t l = 0; l < rngs.size(); ++l) {
        trace.push_back(tasks[l].active);
        for (const std::int64_t d : draws[l]) trace.push_back(d);
      }
    }
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_F(Avx2DistributionTest, StabilizationTimesMatchScalarByKS) {
  const UndecidedStateDynamics usd(3);
  constexpr int kTrials = 100;
  auto sample = [&](KernelKind kind) {
    std::vector<double> times;
    for (int t = 0; t < kTrials; ++t) {
      CollapsedSimulator::Options opts;
      opts.kernel = kind;
      CollapsedSimulator sim(usd, Configuration({0, 40, 25, 15}),
                             7000 + static_cast<std::uint64_t>(t), opts);
      const RunOutcome out = sim.run_until_stable(50'000'000);
      EXPECT_TRUE(out.stabilized);
      times.push_back(sim.parallel_time());
    }
    return times;
  };
  const double d = testutil::ks_distance(sample(KernelKind::kAvx2),
                                         sample(KernelKind::kScalar));
  // Two-sample KS critical value at α = 0.001 for 100 vs 100 samples:
  // 1.949·sqrt(2/100) ≈ 0.276.
  EXPECT_LT(d, testutil::ks_two_sample_critical(kTrials, kTrials));
}

}  // namespace
}  // namespace ppsim::kernels
