// Canonical JSON number emission: shortest round-trip formatting.
//
// The sweep reports are byte-compared across runs/threads/schedulers and the
// cell cache derives content-addressed keys from rendered spec strings, so
// JsonObject::render_double must be a pure, platform-invariant function of
// the double: equal doubles render equally, distinct doubles render
// distinctly, and every rendered string parses back to the identical bits.
// The previous fixed 12-significant-digit printf broke the second property
// (neighbouring doubles conflated) and delegated rounding to the host libc.
#include "ppsim/util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <random>
#include <string>

namespace ppsim {
namespace {

double reparse(const std::string& s) { return std::strtod(s.c_str(), nullptr); }

TEST(JsonCanonicalTest, CommonValuesKeepTheirNaturalSpelling) {
  EXPECT_EQ(JsonObject::render_double(0.0), "0");
  EXPECT_EQ(JsonObject::render_double(1.0), "1");
  EXPECT_EQ(JsonObject::render_double(-1.0), "-1");
  EXPECT_EQ(JsonObject::render_double(0.5), "0.5");
  EXPECT_EQ(JsonObject::render_double(0.1), "0.1");
  EXPECT_EQ(JsonObject::render_double(16.5), "16.5");
  EXPECT_EQ(JsonObject::render_double(0.05), "0.05");
  EXPECT_EQ(JsonObject::render_double(0.2), "0.2");
  EXPECT_EQ(JsonObject::render_double(850000.0), "850000");
}

TEST(JsonCanonicalTest, IntegralValuesRenderAsPlainDigitsUpToTwoPow53) {
  // Interaction counts at n = 10^11 reach ~10^13; they must stay readable
  // integers instead of flipping to scientific notation mid-range.
  EXPECT_EQ(JsonObject::render_double(1e6), "1000000");
  EXPECT_EQ(JsonObject::render_double(1e12), "1000000000000");
  EXPECT_EQ(JsonObject::render_double(1e13), "10000000000000");
  EXPECT_EQ(JsonObject::render_double(-123456789012345.0), "-123456789012345");
  EXPECT_EQ(JsonObject::render_double(9007199254740991.0), "9007199254740991");
  // Past 2^53 integers are no longer exact; shortest-form takes over.
  EXPECT_EQ(JsonObject::render_double(1e16), "1e+16");
}

TEST(JsonCanonicalTest, NegativeZeroKeepsItsSign) {
  EXPECT_EQ(JsonObject::render_double(-0.0), "-0");
  EXPECT_TRUE(std::signbit(reparse(JsonObject::render_double(-0.0))));
}

TEST(JsonCanonicalTest, ShortestFormStillRoundTripsBitExactly) {
  const double values[] = {
      1.0 / 3.0,
      0.7071067811865476,       // sqrt(0.5): needs 16 digits
      35355.33905932738,        // the old 12-digit render truncated this
      2.2250738585072014e-308,  // DBL_MIN
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::denorm_min(),
      6.02214076e23,
      1.5e-7,
      3.141592653589793,
  };
  for (const double v : values) {
    const std::string s = JsonObject::render_double(v);
    const double r = reparse(s);
    EXPECT_EQ(std::memcmp(&v, &r, sizeof v), 0)
        << "render '" << s << "' did not round-trip " << v;
  }
}

TEST(JsonCanonicalTest, AdjacentDoublesRenderDistinctly) {
  // The regression the 12-digit printf had: doubles differing only past the
  // 12th significant digit rendered identically, so two different results
  // could collide on one cache key (and a byte-identity pin could pass on
  // actually-divergent data).
  const double a = 0.7071067811865476;
  const double b = std::nextafter(a, 1.0);
  EXPECT_NE(a, b);
  EXPECT_NE(JsonObject::render_double(a), JsonObject::render_double(b));
  EXPECT_EQ(JsonObject::render_double(1.0000000000000002),
            "1.0000000000000002");
}

TEST(JsonCanonicalTest, RandomDoublesRoundTripThroughTheRenderer) {
  std::mt19937_64 gen(12345);
  std::uniform_real_distribution<double> mantissa(-1.0, 1.0);
  std::uniform_int_distribution<int> exponent(-300, 300);
  for (int i = 0; i < 2000; ++i) {
    const double v = std::ldexp(mantissa(gen), exponent(gen));
    const std::string s = JsonObject::render_double(v);
    const double back = reparse(s);
    EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0)
        << "'" << s << "' lost bits of " << v;
  }
}

TEST(JsonCanonicalTest, FieldAndArrayRenderingUseTheCanonicalForm) {
  JsonObject obj;
  obj.field("t", 0.7071067811865476)
      .field("values", std::vector<double>{1e13, 0.1});
  EXPECT_EQ(obj.str(),
            "{\"t\": 0.7071067811865476, \"values\": [10000000000000, 0.1]}");
}

}  // namespace
}  // namespace ppsim
