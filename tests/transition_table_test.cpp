// TransitionTable compilation and stability detection, exercised through the
// USD protocol (whose rule set covers null, symmetric and asymmetric cases).
#include "ppsim/core/transition_table.hpp"

#include <gtest/gtest.h>

#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/check.hpp"

namespace ppsim {
namespace {

TEST(TransitionTableTest, CompilesUsdRules) {
  const UndecidedStateDynamics usd(3);  // states: ⊥=0, opinions 1..3
  const TransitionTable table(usd);
  EXPECT_EQ(table.num_states(), 4u);

  // clash
  EXPECT_EQ(table.apply(1, 2), (Transition{0, 0}));
  EXPECT_EQ(table.apply(3, 1), (Transition{0, 0}));
  // adoption, both orders
  EXPECT_EQ(table.apply(2, 0), (Transition{2, 2}));
  EXPECT_EQ(table.apply(0, 2), (Transition{2, 2}));
  // null transitions
  EXPECT_EQ(table.apply(1, 1), (Transition{1, 1}));
  EXPECT_EQ(table.apply(0, 0), (Transition{0, 0}));
}

TEST(TransitionTableTest, NullDetectionMatchesApply) {
  const UndecidedStateDynamics usd(4);
  const TransitionTable table(usd);
  for (State a = 0; a < table.num_states(); ++a) {
    for (State b = 0; b < table.num_states(); ++b) {
      const Transition t = table.apply(a, b);
      EXPECT_EQ(table.is_null(a, b), t.initiator == a && t.responder == b);
    }
  }
}

TEST(TransitionTableTest, StabilityOnUsdConfigurations) {
  const UndecidedStateDynamics usd(3);
  const TransitionTable table(usd);

  // All agents on one opinion: stable.
  EXPECT_TRUE(table.is_stable(Configuration({0, 10, 0, 0})));
  // All undecided: stable.
  EXPECT_TRUE(table.is_stable(Configuration({10, 0, 0, 0})));
  // Opinion + undecided: adoption can fire.
  EXPECT_FALSE(table.is_stable(Configuration({5, 5, 0, 0})));
  // Two opinions: clash can fire.
  EXPECT_FALSE(table.is_stable(Configuration({0, 5, 5, 0})));
}

TEST(TransitionTableTest, SameStatePairNeedsTwoAgents) {
  // A single leader cannot interact with itself: (L, L) requires count >= 2.
  struct SelfClash final : Protocol {
    std::size_t num_states() const override { return 2; }
    Transition apply(State a, State b) const override {
      if (a == 1 && b == 1) return {1, 0};
      return {a, b};
    }
    std::optional<Opinion> output(State s) const override { return s; }
    std::string name() const override { return "self-clash"; }
  };
  const SelfClash protocol;
  const TransitionTable table(protocol);
  EXPECT_TRUE(table.is_stable(Configuration({5, 1})));   // one "leader"
  EXPECT_FALSE(table.is_stable(Configuration({5, 2})));  // two can clash
}

TEST(TransitionTableTest, RejectsOutOfRangeTransitions) {
  struct Broken final : Protocol {
    std::size_t num_states() const override { return 2; }
    Transition apply(State, State) const override { return {5, 0}; }
    std::optional<Opinion> output(State s) const override { return s; }
    std::string name() const override { return "broken"; }
  };
  const Broken protocol;
  EXPECT_THROW(TransitionTable{protocol}, CheckFailure);
}

TEST(TransitionTableTest, ConfigurationSizeMismatchThrows) {
  const UndecidedStateDynamics usd(2);
  const TransitionTable table(usd);
  EXPECT_THROW(table.is_stable(Configuration({1, 1})), CheckFailure);
}

}  // namespace
}  // namespace ppsim
