// Exact-majority baselines: the 4-state protocol's invariant and exactness,
// and quantized averaging's conservation law and sign correctness.
#include <gtest/gtest.h>

#include "ppsim/core/runner.hpp"
#include "ppsim/core/simulator.hpp"
#include "ppsim/protocols/averaging_majority.hpp"
#include "ppsim/protocols/four_state_majority.hpp"
#include "ppsim/util/check.hpp"

namespace ppsim {
namespace {

// ----------------------------------------------------------- four-state ----

TEST(FourStateMajorityTest, TransitionRules) {
  const FourStateMajority p;
  using M = FourStateMajority;
  // strong/strong cancellation, both orders
  EXPECT_EQ(p.apply(M::kStrongA, M::kStrongB), (Transition{M::kWeakA, M::kWeakB}));
  EXPECT_EQ(p.apply(M::kStrongB, M::kStrongA), (Transition{M::kWeakB, M::kWeakA}));
  // strong converts opposing weak
  EXPECT_EQ(p.apply(M::kStrongA, M::kWeakB), (Transition{M::kStrongA, M::kWeakA}));
  EXPECT_EQ(p.apply(M::kWeakB, M::kStrongA), (Transition{M::kWeakA, M::kStrongA}));
  EXPECT_EQ(p.apply(M::kStrongB, M::kWeakA), (Transition{M::kStrongB, M::kWeakB}));
  // null examples
  EXPECT_EQ(p.apply(M::kStrongA, M::kWeakA), (Transition{M::kStrongA, M::kWeakA}));
  EXPECT_EQ(p.apply(M::kWeakA, M::kWeakB), (Transition{M::kWeakA, M::kWeakB}));
}

TEST(FourStateMajorityTest, OutputGroupsStrongAndWeak) {
  const FourStateMajority p;
  using M = FourStateMajority;
  EXPECT_EQ(*p.output(M::kStrongA), M::kOpinionA);
  EXPECT_EQ(*p.output(M::kWeakA), M::kOpinionA);
  EXPECT_EQ(*p.output(M::kStrongB), M::kOpinionB);
  EXPECT_EQ(*p.output(M::kWeakB), M::kOpinionB);
}

TEST(FourStateMajorityTest, StrongDifferenceIsInvariant) {
  const FourStateMajority p;
  Simulator sim(p, FourStateMajority::initial(60, 40), 3);
  const Count initial_diff = 60 - 40;
  for (int i = 0; i < 20000; ++i) {
    sim.step();
    const auto& c = sim.configuration();
    ASSERT_EQ(c.count(FourStateMajority::kStrongA) - c.count(FourStateMajority::kStrongB),
              initial_diff);
  }
}

TEST(FourStateMajorityTest, ExactEvenWithMinimalBias) {
  // d = 1 out of n = 101: exact majority must still always pick A.
  const FourStateMajority p;
  auto trial = [&p](std::uint64_t seed, std::size_t) {
    Simulator sim(p, FourStateMajority::initial(51, 50), seed);
    const RunOutcome out = sim.run_until_stable(50'000'000);
    TrialResult r;
    r.stabilized = out.stabilized;
    r.winner = out.consensus;
    return r;
  };
  const auto results = run_trials(trial, 20, 1234, 0);
  for (const auto& r : results) {
    ASSERT_TRUE(r.stabilized);
    ASSERT_TRUE(r.winner.has_value());
    EXPECT_EQ(*r.winner, FourStateMajority::kOpinionA);
  }
}

TEST(FourStateMajorityTest, MinorityNeverWins) {
  const FourStateMajority p;
  auto trial = [&p](std::uint64_t seed, std::size_t) {
    Simulator sim(p, FourStateMajority::initial(40, 60), seed);
    const RunOutcome out = sim.run_until_stable(50'000'000);
    TrialResult r;
    r.stabilized = out.stabilized;
    r.winner = out.consensus;
    return r;
  };
  const auto results = run_trials(trial, 10, 555, 0);
  for (const auto& r : results) {
    ASSERT_TRUE(r.stabilized);
    EXPECT_EQ(*r.winner, FourStateMajority::kOpinionB);
  }
}

TEST(FourStateMajorityTest, TieEndsWithoutConsensus) {
  const FourStateMajority p;
  Simulator sim(p, FourStateMajority::initial(50, 50), 7);
  const RunOutcome out = sim.run_until_stable(50'000'000);
  ASSERT_TRUE(out.stabilized);
  // All strong agents cancelled; mixed weak states remain.
  EXPECT_EQ(sim.configuration().count(FourStateMajority::kStrongA), 0);
  EXPECT_EQ(sim.configuration().count(FourStateMajority::kStrongB), 0);
  EXPECT_FALSE(out.consensus.has_value());
}

// ------------------------------------------------------------ averaging ----

TEST(AveragingMajorityTest, StateValueRoundTrip) {
  const AveragingMajority p(10);
  EXPECT_EQ(p.num_states(), 21u);
  for (Count v = -10; v <= 10; ++v) {
    EXPECT_EQ(p.state_value(p.value_state(v)), v);
  }
  EXPECT_THROW(p.value_state(11), CheckFailure);
  EXPECT_THROW(AveragingMajority(0), CheckFailure);
}

TEST(AveragingMajorityTest, TransitionAveragesWithCeilFloor) {
  const AveragingMajority p(10);
  // (5, 2) -> (4, 3)
  EXPECT_EQ(p.apply(p.value_state(5), p.value_state(2)),
            (Transition{p.value_state(4), p.value_state(3)}));
  // (-5, 2) -> (-1, -2)  (sum -3: ceil -1, floor -2)
  EXPECT_EQ(p.apply(p.value_state(-5), p.value_state(2)),
            (Transition{p.value_state(-1), p.value_state(-2)}));
  // adjacent values are a null transition (multiset-preserving)
  const State a = p.value_state(3);
  const State b = p.value_state(4);
  EXPECT_EQ(p.apply(a, b), (Transition{a, b}));
  // equal values unchanged
  EXPECT_EQ(p.apply(a, a), (Transition{a, a}));
}

TEST(AveragingMajorityTest, OutputSign) {
  const AveragingMajority p(5);
  EXPECT_EQ(*p.output(p.value_state(3)), AveragingMajority::kOpinionA);
  EXPECT_EQ(*p.output(p.value_state(-1)), AveragingMajority::kOpinionB);
  EXPECT_FALSE(p.output(p.value_state(0)).has_value());
}

TEST(AveragingMajorityTest, ValueSumIsInvariant) {
  const AveragingMajority p(16);
  Simulator sim(p, p.initial(30, 20), 11, Simulator::Engine::kVirtual);
  const Count initial_sum = p.value_sum(sim.configuration());
  EXPECT_EQ(initial_sum, 16 * (30 - 20));
  for (int i = 0; i < 20000; ++i) {
    sim.step();
  }
  EXPECT_EQ(p.value_sum(sim.configuration()), initial_sum);
}

TEST(AveragingMajorityTest, ExactMajorityWithLargeResolution) {
  // m >= n makes the protocol exact: with a = 26 vs b = 24 (d = 2, n = 50),
  // the terminal mean is m·d/n = 64·2/50 > 1, so every agent ends positive.
  const AveragingMajority p(64);
  auto trial = [&p](std::uint64_t seed, std::size_t) {
    Simulator sim(p, p.initial(26, 24), seed, Simulator::Engine::kVirtual);
    const RunOutcome out = sim.run_until_stable(20'000'000);
    TrialResult r;
    r.stabilized = out.stabilized;
    r.winner = out.consensus;
    return r;
  };
  const auto results = run_trials(trial, 10, 2222, 0);
  for (const auto& r : results) {
    ASSERT_TRUE(r.stabilized);
    ASSERT_TRUE(r.winner.has_value());
    EXPECT_EQ(*r.winner, AveragingMajority::kOpinionA);
  }
}

TEST(AveragingMajorityTest, TerminalValuesSpanAtMostTwoAdjacentLevels) {
  const AveragingMajority p(32);
  Simulator sim(p, p.initial(20, 12), 77, Simulator::Engine::kVirtual);
  const RunOutcome out = sim.run_until_stable(20'000'000);
  ASSERT_TRUE(out.stabilized);
  Count lo = 1000;
  Count hi = -1000;
  for (State s = 0; s < p.num_states(); ++s) {
    if (sim.configuration().count(s) == 0) continue;
    lo = std::min(lo, p.state_value(s));
    hi = std::max(hi, p.state_value(s));
  }
  EXPECT_LE(hi - lo, 1);
}

TEST(AveragingMajorityTest, FasterThanFourStateOnSmallBias) {
  // The whole point of the averaging baseline: amplified bias beats the
  // 4-state protocol when the raw bias is small. Compare mean stabilization
  // interactions on n = 100, d = 2.
  const AveragingMajority avg(128);
  const FourStateMajority four;
  RunningStats avg_time;
  RunningStats four_time;
  for (int t = 0; t < 10; ++t) {
    Simulator s1(avg, avg.initial(51, 49), 100 + static_cast<std::uint64_t>(t),
                 Simulator::Engine::kVirtual);
    const RunOutcome o1 = s1.run_until_stable(100'000'000);
    ASSERT_TRUE(o1.stabilized);
    avg_time.add(static_cast<double>(o1.interactions));

    Simulator s2(four, FourStateMajority::initial(51, 49),
                 200 + static_cast<std::uint64_t>(t));
    const RunOutcome o2 = s2.run_until_stable(100'000'000);
    ASSERT_TRUE(o2.stabilized);
    four_time.add(static_cast<double>(o2.interactions));
  }
  EXPECT_LT(avg_time.mean(), four_time.mean());
}

}  // namespace
}  // namespace ppsim
