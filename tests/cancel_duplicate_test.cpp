// Cancellation–duplication exact majority: encoding, transition semantics,
// the conserved signed weight, and end-to-end exactness on pinned seeds.
#include "ppsim/protocols/cancel_duplicate.hpp"

#include <gtest/gtest.h>

#include "ppsim/core/runner.hpp"
#include "ppsim/core/simulator.hpp"
#include "ppsim/util/check.hpp"

namespace ppsim {
namespace {

TEST(CancelDuplicateTest, EncodingRoundTrip) {
  const CancellationDuplication p(4);
  EXPECT_EQ(p.num_states(), 3u + 10u);
  for (const bool pos : {true, false}) {
    for (std::size_t j = 0; j <= 4; ++j) {
      const State s = p.token_state(pos, j);
      EXPECT_TRUE(p.is_token(s));
      EXPECT_EQ(p.is_positive(s), pos);
      EXPECT_EQ(p.exponent(s), j);
      EXPECT_EQ(p.signed_weight(s), (pos ? 1 : -1) * (Count{1} << j));
    }
  }
  EXPECT_EQ(p.signed_weight(CancellationDuplication::kBlankPlus), 0);
  EXPECT_THROW(p.token_state(true, 5), CheckFailure);
  EXPECT_THROW(CancellationDuplication(63), CheckFailure);
}

TEST(CancelDuplicateTest, CancellationRule) {
  const CancellationDuplication p(3);
  const State plus4 = p.token_state(true, 2);
  const State minus4 = p.token_state(false, 2);
  const Transition t = p.apply(plus4, minus4);
  EXPECT_EQ(t.initiator, CancellationDuplication::kBlankPlus);
  EXPECT_EQ(t.responder, CancellationDuplication::kBlankMinus);
  // different magnitudes do NOT cancel
  const State minus2 = p.token_state(false, 1);
  EXPECT_EQ(p.apply(plus4, minus2), (Transition{plus4, minus2}));
  // same sign never cancels
  EXPECT_EQ(p.apply(plus4, plus4), (Transition{plus4, plus4}));
}

TEST(CancelDuplicateTest, DuplicationRule) {
  const CancellationDuplication p(3);
  const State plus8 = p.token_state(true, 3);
  const State plus4 = p.token_state(true, 2);
  const Transition t = p.apply(plus8, CancellationDuplication::kBlankMinus);
  EXPECT_EQ(t.initiator, plus4);
  EXPECT_EQ(t.responder, plus4);
  // symmetric order
  const Transition t2 = p.apply(CancellationDuplication::kBlankNeutral, plus8);
  EXPECT_EQ(t2.initiator, plus4);
  EXPECT_EQ(t2.responder, plus4);
}

TEST(CancelDuplicateTest, UnitTokensGossipSign) {
  const CancellationDuplication p(3);
  const State plus1 = p.token_state(true, 0);
  const State minus1 = p.token_state(false, 0);
  EXPECT_EQ(p.apply(plus1, CancellationDuplication::kBlankMinus),
            (Transition{plus1, CancellationDuplication::kBlankPlus}));
  EXPECT_EQ(p.apply(CancellationDuplication::kBlankNeutral, minus1),
            (Transition{CancellationDuplication::kBlankMinus, minus1}));
  // already-converted blank: null transition (stability depends on it)
  EXPECT_EQ(p.apply(plus1, CancellationDuplication::kBlankPlus),
            (Transition{plus1, CancellationDuplication::kBlankPlus}));
}

TEST(CancelDuplicateTest, BlankPairsAreNull) {
  const CancellationDuplication p(2);
  EXPECT_EQ(p.apply(CancellationDuplication::kBlankPlus,
                    CancellationDuplication::kBlankMinus),
            (Transition{CancellationDuplication::kBlankPlus,
                        CancellationDuplication::kBlankMinus}));
}

TEST(CancelDuplicateTest, OutputMap) {
  const CancellationDuplication p(2);
  EXPECT_EQ(*p.output(p.token_state(true, 1)), CancellationDuplication::kOpinionA);
  EXPECT_EQ(*p.output(p.token_state(false, 0)), CancellationDuplication::kOpinionB);
  EXPECT_EQ(*p.output(CancellationDuplication::kBlankPlus),
            CancellationDuplication::kOpinionA);
  EXPECT_FALSE(p.output(CancellationDuplication::kBlankNeutral).has_value());
}

TEST(CancelDuplicateTest, SignedWeightIsInvariant) {
  const CancellationDuplication p(6);
  Simulator sim(p, p.initial(30, 20), 13);
  const Count initial = p.total_weight(sim.configuration());
  EXPECT_EQ(initial, (30 - 20) * (Count{1} << 6));
  for (int i = 0; i < 30000; ++i) {
    sim.step();
  }
  EXPECT_EQ(p.total_weight(sim.configuration()), initial);
}

TEST(CancelDuplicateTest, ExactMajorityInTheSafeRegime) {
  // d = 2 out of n = 100 — far below USD's w.h.p. threshold, but exact
  // protocols must still always commit to A. J = 4 keeps the surplus
  // d·2^J = 32 well within the unit-token capacity (the safe regime from
  // the header); all pinned seeds must reach consensus on A.
  const CancellationDuplication p(4);
  auto trial = [&p](std::uint64_t seed, std::size_t) {
    Simulator sim(p, p.initial(51, 49), seed);
    const RunOutcome out = sim.run_until_stable(100'000'000);
    TrialResult r;
    r.stabilized = out.stabilized;
    r.winner = out.consensus;
    return r;
  };
  const auto results = run_trials(trial, 10, 909, 0);
  for (const auto& r : results) {
    ASSERT_TRUE(r.stabilized);
    ASSERT_TRUE(r.winner.has_value());
    EXPECT_EQ(*r.winner, CancellationDuplication::kOpinionA);
  }
}

TEST(CancelDuplicateTest, UnsynchronizedDeadlockRegimeIsReal) {
  // The header's caveat, codified: with J = 7 at n = 100 the surplus
  // d·2^J = 256 cannot fit into unit tokens, blanks starve, and a majority
  // of runs stabilize WITHOUT consensus — the deadlock that made [8]
  // synchronize cancellation/duplication phases with a leader. Even then,
  // no run may ever commit to the minority.
  const CancellationDuplication p(7);
  std::size_t no_consensus = 0;
  auto trial = [&p](std::uint64_t seed, std::size_t) {
    Simulator sim(p, p.initial(51, 49), seed);
    const RunOutcome out = sim.run_until_stable(100'000'000);
    TrialResult r;
    r.stabilized = out.stabilized;
    r.winner = out.consensus;
    return r;
  };
  const auto results = run_trials(trial, 20, 909, 0);
  for (const auto& r : results) {
    ASSERT_TRUE(r.stabilized);
    if (!r.winner.has_value()) {
      ++no_consensus;
    } else {
      EXPECT_EQ(*r.winner, CancellationDuplication::kOpinionA);
    }
  }
  EXPECT_GT(no_consensus, 0u) << "deadlock regime unexpectedly disappeared";
}

TEST(CancelDuplicateTest, MinorityNeverCommitsWrongly) {
  // Even on runs that might deadlock, committed outputs must match the
  // invariant's sign: no agent may end in a minus state when the total
  // weight is positive... (minus *tokens* can deadlock, but blank-minus
  // plus positive tokens cannot be a consensus). Check no trial reports
  // consensus on B.
  const CancellationDuplication p(6);
  auto trial = [&p](std::uint64_t seed, std::size_t) {
    Simulator sim(p, p.initial(35, 25), seed);
    const RunOutcome out = sim.run_until_stable(100'000'000);
    TrialResult r;
    r.stabilized = out.stabilized;
    r.winner = out.consensus;
    return r;
  };
  const auto results = run_trials(trial, 10, 2024, 0);
  for (const auto& r : results) {
    if (r.winner.has_value()) {
      EXPECT_EQ(*r.winner, CancellationDuplication::kOpinionA);
    }
  }
}

TEST(CancelDuplicateTest, TieCancelsAllTokens) {
  const CancellationDuplication p(5);
  Simulator sim(p, p.initial(40, 40), 31);
  const RunOutcome out = sim.run_until_stable(100'000'000);
  ASSERT_TRUE(out.stabilized);
  // Invariant 0: every token must eventually cancel; blanks remain split.
  Count tokens = 0;
  for (State s = 3; s < p.num_states(); ++s) {
    tokens += sim.configuration().count(s);
  }
  EXPECT_EQ(tokens, 0);
  EXPECT_FALSE(out.consensus.has_value());
}

}  // namespace
}  // namespace ppsim
