// Fault injection: invariant preservation under corruption, reproducible
// fault streams, near-consensus under sustained faults, and recovery
// (self-stabilization) once faults stop.
#include "ppsim/core/faults.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "ppsim/util/check.hpp"
#include "ppsim/util/stats.hpp"
#include "scenario_stat_util.hpp"

namespace ppsim {
namespace {

TEST(CorruptAgentTest, MaintainsEngineInvariants) {
  UsdEngine engine({10, 5, 0}, 3, 1);
  engine.corrupt_agent(1, 3);  // opinion 0 -> opinion 2 (previously extinct)
  EXPECT_EQ(engine.opinion_count(0), 9);
  EXPECT_EQ(engine.opinion_count(2), 1);
  EXPECT_EQ(engine.surviving_opinions(), 3u);
  EXPECT_EQ(engine.population(), 18);

  engine.corrupt_agent(3, 0);  // back out: opinion 2 extinct again
  EXPECT_EQ(engine.surviving_opinions(), 2u);
  EXPECT_EQ(engine.undecided(), 4);

  EXPECT_THROW(engine.corrupt_agent(3, 0), CheckFailure);  // now empty
  EXPECT_THROW(engine.corrupt_agent(7, 0), CheckFailure);  // out of range

  // the engine still simulates correctly afterwards
  for (int i = 0; i < 1000; ++i) engine.step();
  const auto& c = engine.counts();
  EXPECT_EQ(std::accumulate(c.begin(), c.end(), Count{0}), 18);
}

TEST(CorruptAgentTest, CanRestartStabilizedEngine) {
  UsdEngine engine({10, 0}, 1);
  ASSERT_TRUE(engine.stabilized());
  engine.corrupt_agent(1, 2);  // revive the extinct opinion
  EXPECT_FALSE(engine.stabilized());
}

TEST(FaultInjectorTest, ZeroRateNeverCorrupts) {
  UsdFaultInjector injector(0.0, 5);
  UsdEngine engine({50, 50}, 7);
  injector.run(engine, 5000);
  EXPECT_EQ(injector.corruptions(), 0);
}

TEST(FaultInjectorTest, RateControlsCorruptionFrequency) {
  // Every fired Bernoulli(0.1) now corrupts (the pre-fix injector dropped
  // draws whose resampled target equalled the victim's state, deflating the
  // effective rate to rate * k/(k+1) ≈ 2/3 · rate here). Expect ~2000 ± 4σ,
  // σ = sqrt(20000 · 0.1 · 0.9) ≈ 42.
  UsdFaultInjector injector(0.1, 5);
  UsdEngine engine({500, 500}, 7);
  injector.run(engine, 20000);
  EXPECT_GT(injector.corruptions(), 2000 - 4 * 42);
  EXPECT_LT(injector.corruptions(), 2000 + 4 * 42);
}

TEST(FaultInjectorTest, CorruptionTargetsAreUniformChiSquare) {
  // With every state equally populated the victim is uniform over the k+1
  // states, and the fixed target resampling is uniform over the other k, so
  // the post-corruption (target) state distribution must be uniform over all
  // k+1 states. The pre-fix injector hit this distribution too, but at a
  // deflated rate — the companion test above pins the rate; this one pins
  // the shape. Counts are diffed around each injection to observe the
  // target; large equal counts keep the victim distribution ~uniform for
  // the whole run.
  const std::size_t k = 3;  // 4 USD states: ⊥ + 3 opinions
  UsdEngine engine({100000, 100000, 100000}, 100000, 99);
  UsdFaultInjector injector(1.0, 17);
  constexpr int kEvents = 40000;
  std::vector<std::int64_t> observed(k + 1, 0);
  for (int i = 0; i < kEvents; ++i) {
    const std::vector<Count> before = engine.counts();
    ASSERT_TRUE(injector.maybe_corrupt(engine));
    int gained = -1;
    for (std::size_t s = 0; s <= k; ++s) {
      if (engine.counts()[s] == before[s] + 1) gained = static_cast<int>(s);
    }
    ASSERT_GE(gained, 0) << "a fired corruption must move an agent";
    ++observed[static_cast<std::size_t>(gained)];
  }
  EXPECT_EQ(injector.corruptions(), kEvents);
  const double p = testutil::chi_square_pvalue(
      observed, testutil::uniform_expectation(k + 1, kEvents));
  // A correct injector fails this with probability < 1e-6; the pre-fix
  // injector (target sampled over all k+1 states, equal-state draws
  // dropped) passes the shape but fails the rate test above.
  EXPECT_GT(p, 1e-6);
}

TEST(FaultInjectorTest, FaultStreamIsReproducible) {
  UsdEngine a({300, 200}, 42);
  UsdFaultInjector ia(0.05, 9);
  ia.run(a, 10000);

  UsdEngine b({300, 200}, 42);
  UsdFaultInjector ib(0.05, 9);
  ib.run(b, 10000);

  EXPECT_EQ(a.counts(), b.counts());
  EXPECT_EQ(ia.corruptions(), ib.corruptions());
}

TEST(FaultInjectorTest, RejectsBadRate) {
  EXPECT_THROW(UsdFaultInjector(-0.1, 1), CheckFailure);
  EXPECT_THROW(UsdFaultInjector(1.5, 1), CheckFailure);
}

TEST(FaultInjectorTest, EmptyScheduleIsANoOp) {
  // Zero-interaction schedule: no steps, no corruption draws, configuration
  // untouched — and a negative budget is rejected rather than wrapping.
  UsdFaultInjector injector(1.0, 3);
  UsdEngine engine({30, 20}, 7);
  const auto before = engine.counts();
  injector.run(engine, 0);
  EXPECT_EQ(engine.interactions(), 0);
  EXPECT_EQ(injector.corruptions(), 0);
  EXPECT_EQ(engine.counts(), before);
  EXPECT_THROW(injector.run(engine, -1), CheckFailure);
}

TEST(FaultInjectorTest, SingleAgentPopulationIsRejectedAtTheBoundary) {
  // The interaction model needs two distinct agents, so a one-agent engine
  // cannot exist: the fault machinery never has to special-case it.
  EXPECT_THROW(UsdEngine({1}, 1), CheckFailure);
  EXPECT_THROW(UsdEngine({0, 0}, 1, 1), CheckFailure);
  // Two agents is the smallest legal population; corruption still works.
  UsdEngine tiny({1, 1}, 5);
  UsdFaultInjector injector(1.0, 6);
  injector.run(tiny, 50);
  EXPECT_EQ(tiny.population(), 2);
}

TEST(FaultInjectorTest, RunOnStabilizedEngineStillConsumesSchedule) {
  // run() deliberately ignores stabilized(): faults can re-activate the
  // dynamics, so the schedule must keep stepping (and possibly corrupting)
  // a consensus configuration.
  UsdEngine engine({10, 0}, 4);
  ASSERT_TRUE(engine.stabilized());
  UsdFaultInjector injector(0.5, 8);
  injector.run(engine, 2000);
  EXPECT_EQ(engine.interactions(), 2000);
  EXPECT_GT(injector.corruptions(), 0);
}

TEST(FaultToleranceTest, NearConsensusUnderSustainedFaults) {
  // Strong bias, small corruption rate: after the fault-free stabilization
  // horizon the system should hold a near-consensus (quality >= 0.9) even
  // though formal stabilization is impossible under faults.
  const Count n = 10000;
  UsdEngine engine({7000, 3000}, 11);
  UsdFaultInjector injector(0.001, 13);
  injector.run(engine, 100 * n);
  EXPECT_FALSE(engine.stabilized());  // faults keep it alive...
  EXPECT_GT(consensus_quality(engine), 0.9);  // ...but the majority holds
}

TEST(FaultToleranceTest, RecoversAfterFaultsStop) {
  // Self-stabilization: run with heavy corruption, then stop the faults and
  // confirm the dynamics still reach a proper consensus.
  const Count n = 5000;
  UsdEngine engine({3500, 1500}, 17);
  UsdFaultInjector injector(0.01, 19);
  injector.run(engine, 20 * n);
  ASSERT_FALSE(engine.stabilized());
  ASSERT_TRUE(engine.run_until_stable(100000 * n));
  EXPECT_TRUE(engine.winner().has_value());
}

TEST(ConsensusQualityTest, Definition) {
  UsdEngine perfect({10, 0}, 1);
  EXPECT_DOUBLE_EQ(consensus_quality(perfect), 1.0);
  UsdEngine split({5, 5}, 1);
  EXPECT_DOUBLE_EQ(consensus_quality(split), 0.5);
  UsdEngine with_undecided({5, 0}, 5, 1);
  EXPECT_DOUBLE_EQ(consensus_quality(with_undecided), 0.5);
}

}  // namespace
}  // namespace ppsim
