// SweepRunner: thread-count-invariant determinism (byte-identical JSON),
// the documented seeding scheme (base seed -> stream index = cell * trials
// + trial), per-cell aggregation, cell-driven engine construction and error
// propagation.
#include "ppsim/core/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/check.hpp"

namespace ppsim {
namespace {

SweepSpec small_usd_spec(unsigned threads) {
  SweepSpec spec;
  spec.name = "sweep_test";
  spec.trials = 6;
  spec.base_seed = 99;
  spec.threads = threads;
  for (const Count n : {60, 100}) {
    for (const std::size_t k : {2, 3}) {
      SweepCell cell;
      cell.n = n;
      cell.k = k;
      spec.cells.push_back(cell);
    }
  }
  return spec;
}

SweepMetrics usd_trial(const SweepTrial& ctx) {
  std::vector<Count> counts(ctx.cell.k, ctx.cell.n / static_cast<Count>(ctx.cell.k));
  counts[0] += ctx.cell.n - counts[0] * static_cast<Count>(ctx.cell.k);
  UsdEngine engine(counts, ctx.seed);
  engine.run_until_stable(1'000'000);
  TrialResult r;
  r.stabilized = engine.stabilized();
  r.interactions = engine.interactions();
  r.parallel_time = engine.time();
  r.winner = engine.winner();
  return consensus_metrics(r);
}

TEST(SweepRunnerTest, ThreadCountDoesNotChangeTheJsonByte4Byte) {
  // The acceptance property of the harness: a run with --threads 1 and a
  // run with --threads 8 produce byte-identical unified JSON reports.
  const SweepResult serial = SweepRunner(small_usd_spec(1)).run(usd_trial);
  const SweepResult parallel = SweepRunner(small_usd_spec(8)).run(usd_trial);
  EXPECT_EQ(serial.to_json(), parallel.to_json());
  EXPECT_EQ(serial.threads, 1u);
  EXPECT_EQ(parallel.threads, 8u);
}

TEST(SweepRunnerTest, PerTrialResultsMatchAcrossThreadCounts) {
  const SweepResult serial = SweepRunner(small_usd_spec(1)).run(usd_trial);
  const SweepResult parallel = SweepRunner(small_usd_spec(4)).run(usd_trial);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t c = 0; c < serial.cells.size(); ++c) {
    EXPECT_EQ(serial.cells[c].trials, parallel.cells[c].trials) << "cell " << c;
  }
}

TEST(SweepRunnerTest, SeedingSchemeIsCellTimesTrialsPlusTrial) {
  SweepSpec spec;
  spec.name = "seeding";
  spec.trials = 4;
  spec.base_seed = 1234;
  spec.cells.resize(3);
  const SweepResult result = SweepRunner(spec).run([](const SweepTrial& ctx) {
    return SweepMetrics{
        {"stream_index", static_cast<double>(ctx.stream_index)},
        {"seed", static_cast<double>(ctx.seed >> 11)},  // exact in a double
    };
  });
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t t = 0; t < 4; ++t) {
      const std::uint64_t expected_index = c * 4 + t;
      EXPECT_EQ(result.cells[c].values("stream_index")[t],
                static_cast<double>(expected_index));
      // The derived seed is the first draw of the documented stream.
      Xoshiro256pp stream = SweepRunner::trial_stream(1234, expected_index);
      EXPECT_EQ(result.cells[c].values("seed")[t],
                static_cast<double>(stream() >> 11));
    }
  }
}

TEST(SweepRunnerTest, AggregatesMatchSummarize) {
  SweepSpec spec;
  spec.name = "agg";
  spec.trials = 5;
  spec.cells.resize(1);
  const SweepResult result = SweepRunner(spec).run([](const SweepTrial& ctx) {
    return SweepMetrics{{"value", static_cast<double>(ctx.trial * ctx.trial)}};
  });
  const SweepCellResult& cr = result.cells[0];
  const SweepMetricAggregate* agg = cr.find("value");
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->summary.count, 5);
  EXPECT_DOUBLE_EQ(agg->summary.mean, (0.0 + 1 + 4 + 9 + 16) / 5);
  EXPECT_DOUBLE_EQ(agg->summary.min, 0.0);
  EXPECT_DOUBLE_EQ(agg->summary.max, 16.0);
  EXPECT_DOUBLE_EQ(agg->summary.median, 4.0);
  EXPECT_DOUBLE_EQ(cr.sum("value"), 30.0);
  EXPECT_DOUBLE_EQ(cr.max("value"), 16.0);
}

TEST(SweepRunnerTest, RaggedMetricsAggregateOverReportingTrials) {
  SweepSpec spec;
  spec.name = "ragged";
  spec.trials = 4;
  spec.cells.resize(1);
  const SweepResult result = SweepRunner(spec).run([](const SweepTrial& ctx) {
    SweepMetrics m = {{"always", 1.0}};
    if (ctx.trial % 2 == 0) m.emplace_back("sometimes", static_cast<double>(ctx.trial));
    return m;
  });
  const SweepCellResult& cr = result.cells[0];
  EXPECT_EQ(cr.values("always").size(), 4u);
  EXPECT_EQ(cr.values("sometimes").size(), 2u);
  EXPECT_DOUBLE_EQ(cr.mean("sometimes"), 1.0);  // (0 + 2) / 2
  EXPECT_DOUBLE_EQ(cr.mean("missing", -7.0), -7.0);
}

TEST(SweepRunnerTest, ConditionalHelpersSelectByFlag) {
  SweepSpec spec;
  spec.name = "cond";
  spec.trials = 4;
  spec.cells.resize(1);
  const SweepResult result = SweepRunner(spec).run([](const SweepTrial& ctx) {
    return SweepMetrics{
        {"flag", ctx.trial < 2 ? 1.0 : 0.0},
        {"value", static_cast<double>(ctx.trial + 10)},
    };
  });
  const SweepCellResult& cr = result.cells[0];
  EXPECT_DOUBLE_EQ(cr.rate("flag"), 0.5);
  EXPECT_DOUBLE_EQ(cr.mean_where("value", "flag"), 10.5);  // trials 0, 1
  EXPECT_DOUBLE_EQ(cr.min_where("value", "flag"), 10.0);
  EXPECT_DOUBLE_EQ(cr.max_where("value", "flag"), 11.0);
  EXPECT_EQ(cr.values_where("value", "flag").size(), 2u);
  EXPECT_DOUBLE_EQ(cr.min_where("value", "absent", -3.0), -3.0);
}

TEST(SweepRunnerTest, CellDrivesAnyEngineKindWithClampedAccounting) {
  // A cell naming the batched engine builds a batched simulator through the
  // facade, and the standard metric block separates attempted vs effective
  // interactions (the τ-leaping clamp used to be double-reported).
  const UndecidedStateDynamics usd(2);
  const Configuration initial =
      UndecidedStateDynamics::initial_configuration({600, 400});
  for (const EngineKind kind :
       {EngineKind::kSequential, EngineKind::kSequentialVirtual,
        EngineKind::kBatched}) {
    SweepSpec spec;
    spec.name = "engine";
    spec.trials = 2;
    SweepCell cell;
    cell.n = 1000;
    cell.k = 2;
    cell.engine = kind;
    cell.round_divisor = 8;
    spec.cells.push_back(cell);
    const SweepResult result =
        SweepRunner(spec).run([&](const SweepTrial& ctx) {
          Engine engine = ctx.make_engine(usd, initial);
          EXPECT_EQ(engine.kind(), kind);
          const TrialResult r = run_engine_trial(engine, 10'000'000);
          EXPECT_EQ(engine.clamped_interactions(), r.clamped);
          return consensus_metrics(r);
        });
    const SweepCellResult& cr = result.cells[0];
    for (std::size_t t = 0; t < 2; ++t) {
      EXPECT_DOUBLE_EQ(cr.values("effective_interactions")[t],
                       cr.values("interactions")[t] - cr.values("clamped")[t]);
    }
    if (kind != EngineKind::kBatched) {
      EXPECT_DOUBLE_EQ(cr.sum("clamped"), 0.0);  // exact engines never clamp
    }
  }
}

TEST(SweepRunnerTest, CollapsedEngineSweepIsThreadCountInvariantByteForByte) {
  // The billion-agent workflow is a collapsed-engine sweep fanned out over
  // threads; its unified JSON must stay byte-identical at any thread count,
  // exactly like the sequential-engine sweeps pinned above.
  const UndecidedStateDynamics usd(3);
  const Configuration initial =
      UndecidedStateDynamics::initial_configuration({500, 300, 200});
  auto spec_for = [&](unsigned threads) {
    SweepSpec spec;
    spec.name = "collapsed_sweep";
    spec.trials = 6;
    spec.base_seed = 77;
    spec.threads = threads;
    for (const double eps : {0.05, 0.2}) {
      SweepCell cell;
      cell.n = 1000;
      cell.k = 3;
      cell.engine = EngineKind::kCollapsed;
      cell.tau_epsilon = eps;
      spec.cells.push_back(cell);
    }
    return spec;
  };
  auto trial = [&](const SweepTrial& ctx) {
    Engine engine = ctx.make_engine(usd, initial);
    EXPECT_EQ(engine.kind(), EngineKind::kCollapsed);
    return consensus_metrics(run_engine_trial(engine, 50'000'000));
  };
  const SweepResult serial = SweepRunner(spec_for(1)).run(trial);
  const SweepResult parallel = SweepRunner(spec_for(8)).run(trial);
  const std::string json = serial.to_json();
  EXPECT_EQ(json, parallel.to_json());
  // The report names the engine and carries the collapsed-engine knob.
  EXPECT_NE(json.find("\"engine\": \"collapsed\""), std::string::npos);
  EXPECT_NE(json.find("\"tau_epsilon\": 0.2"), std::string::npos);
  for (const SweepCellResult& cr : serial.cells) {
    EXPECT_DOUBLE_EQ(cr.rate("stabilized"), 1.0);
  }
}

TEST(SweepRunnerTest, TrialExceptionsPropagate) {
  SweepSpec spec;
  spec.name = "boom";
  spec.trials = 8;
  spec.threads = 4;
  spec.cells.resize(2);
  std::atomic<int> calls{0};
  EXPECT_THROW(SweepRunner(spec).run([&](const SweepTrial& ctx) -> SweepMetrics {
    ++calls;
    if (ctx.stream_index == 5) throw std::runtime_error("trial failed");
    return {};
  }),
               std::runtime_error);
  EXPECT_LE(calls.load(), 16);
}

TEST(SweepRunnerTest, RejectsEmptyNameZeroTrialsAndNullFunction) {
  SweepSpec unnamed;
  unnamed.trials = 1;
  EXPECT_THROW(SweepRunner(std::move(unnamed)), CheckFailure);
  SweepSpec no_trials;
  no_trials.name = "x";
  no_trials.trials = 0;
  EXPECT_THROW(SweepRunner(std::move(no_trials)), CheckFailure);
  SweepSpec ok;
  ok.name = "x";
  EXPECT_THROW(SweepRunner(std::move(ok)).run(SweepTrialFn{}), CheckFailure);
}

TEST(SweepRunnerTest, EmptyCellListProducesEmptyResult) {
  SweepSpec spec;
  spec.name = "empty";
  const SweepResult result = SweepRunner(spec).run(
      [](const SweepTrial&) -> SweepMetrics { return {}; });
  EXPECT_TRUE(result.cells.empty());
  EXPECT_NE(result.to_json().find("\"cells\": []"), std::string::npos);
}

TEST(SweepCellTest, ParamLookupAndLabel) {
  SweepCell cell;
  cell.n = 100;
  cell.k = 7;
  cell.params = {{"rate", 0.25}};
  EXPECT_DOUBLE_EQ(cell.param("rate", -1.0), 0.25);
  EXPECT_DOUBLE_EQ(cell.param("absent", -1.0), -1.0);
  EXPECT_EQ(cell.label(), "n=100,k=7");
  cell.name = "custom";
  EXPECT_EQ(cell.label(), "custom");
}

TEST(SweepResultTest, JsonCarriesCellAxesAndMetricValues) {
  SweepSpec spec;
  spec.name = "json";
  spec.trials = 2;
  SweepCell cell;
  cell.n = 10;
  cell.k = 2;
  cell.protocol = "usd";
  cell.params = {{"rho", 0.5}};
  spec.cells.push_back(cell);
  const SweepResult result = SweepRunner(spec).run([](const SweepTrial& ctx) {
    return SweepMetrics{{"m", static_cast<double>(ctx.trial)}};
  });
  const std::string json = result.to_json();
  EXPECT_NE(json.find("\"sweep\": \"json\""), std::string::npos);
  EXPECT_NE(json.find("\"rho\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"metric\": \"m\""), std::string::npos);
  EXPECT_NE(json.find("\"values\": [0, 1]"), std::string::npos);
  EXPECT_NE(json.find("stream(cell * trials + trial)"), std::string::npos);
  // Wall clock must stay out of the report (byte-identity across runs).
  EXPECT_EQ(json.find("wall"), std::string::npos);
}

}  // namespace
}  // namespace ppsim
