// SweepRunner: thread-count-invariant determinism (byte-identical JSON),
// the documented seeding scheme (base seed -> stream index = cell * trials
// + trial), per-cell aggregation, cell-driven engine construction and error
// propagation.
#include "ppsim/core/sweep.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/check.hpp"

namespace ppsim {
namespace {

SweepSpec small_usd_spec(unsigned threads) {
  SweepSpec spec;
  spec.name = "sweep_test";
  spec.trials = 6;
  spec.base_seed = 99;
  spec.threads = threads;
  for (const Count n : {60, 100}) {
    for (const std::size_t k : {2, 3}) {
      SweepCell cell;
      cell.n = n;
      cell.k = k;
      spec.cells.push_back(cell);
    }
  }
  return spec;
}

SweepMetrics usd_trial(const SweepTrial& ctx) {
  std::vector<Count> counts(ctx.cell.k, ctx.cell.n / static_cast<Count>(ctx.cell.k));
  counts[0] += ctx.cell.n - counts[0] * static_cast<Count>(ctx.cell.k);
  UsdEngine engine(counts, ctx.seed);
  engine.run_until_stable(1'000'000);
  TrialResult r;
  r.stabilized = engine.stabilized();
  r.interactions = engine.interactions();
  r.parallel_time = engine.time();
  r.winner = engine.winner();
  return consensus_metrics(r);
}

TEST(SweepRunnerTest, ThreadCountDoesNotChangeTheJsonByte4Byte) {
  // The acceptance property of the harness: a run with --threads 1 and a
  // run with --threads 8 produce byte-identical unified JSON reports.
  const SweepResult serial = SweepRunner(small_usd_spec(1)).run(usd_trial);
  const SweepResult parallel = SweepRunner(small_usd_spec(8)).run(usd_trial);
  EXPECT_EQ(serial.to_json(), parallel.to_json());
  EXPECT_EQ(serial.threads, 1u);
  EXPECT_EQ(parallel.threads, 8u);
}

TEST(SweepRunnerTest, PerTrialResultsMatchAcrossThreadCounts) {
  const SweepResult serial = SweepRunner(small_usd_spec(1)).run(usd_trial);
  const SweepResult parallel = SweepRunner(small_usd_spec(4)).run(usd_trial);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t c = 0; c < serial.cells.size(); ++c) {
    EXPECT_EQ(serial.cells[c].trials, parallel.cells[c].trials) << "cell " << c;
  }
}

TEST(SweepRunnerTest, SeedingSchemeIsCellTimesTrialsPlusTrial) {
  SweepSpec spec;
  spec.name = "seeding";
  spec.trials = 4;
  spec.base_seed = 1234;
  spec.cells.resize(3);
  const SweepResult result = SweepRunner(spec).run([](const SweepTrial& ctx) {
    return SweepMetrics{
        {"stream_index", static_cast<double>(ctx.stream_index)},
        {"seed", static_cast<double>(ctx.seed >> 11)},  // exact in a double
    };
  });
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t t = 0; t < 4; ++t) {
      const std::uint64_t expected_index = c * 4 + t;
      EXPECT_EQ(result.cells[c].values("stream_index")[t],
                static_cast<double>(expected_index));
      // The derived seed is the first draw of the documented stream.
      Xoshiro256pp stream = SweepRunner::trial_stream(1234, expected_index);
      EXPECT_EQ(result.cells[c].values("seed")[t],
                static_cast<double>(stream() >> 11));
    }
  }
}

TEST(SweepRunnerTest, AggregatesMatchSummarize) {
  SweepSpec spec;
  spec.name = "agg";
  spec.trials = 5;
  spec.cells.resize(1);
  const SweepResult result = SweepRunner(spec).run([](const SweepTrial& ctx) {
    return SweepMetrics{{"value", static_cast<double>(ctx.trial * ctx.trial)}};
  });
  const SweepCellResult& cr = result.cells[0];
  const SweepMetricAggregate* agg = cr.find("value");
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->summary.count, 5);
  EXPECT_DOUBLE_EQ(agg->summary.mean, (0.0 + 1 + 4 + 9 + 16) / 5);
  EXPECT_DOUBLE_EQ(agg->summary.min, 0.0);
  EXPECT_DOUBLE_EQ(agg->summary.max, 16.0);
  EXPECT_DOUBLE_EQ(agg->summary.median, 4.0);
  EXPECT_DOUBLE_EQ(cr.sum("value"), 30.0);
  EXPECT_DOUBLE_EQ(cr.max("value"), 16.0);
}

TEST(SweepRunnerTest, RaggedMetricsAggregateOverReportingTrials) {
  SweepSpec spec;
  spec.name = "ragged";
  spec.trials = 4;
  spec.cells.resize(1);
  const SweepResult result = SweepRunner(spec).run([](const SweepTrial& ctx) {
    SweepMetrics m = {{"always", 1.0}};
    if (ctx.trial % 2 == 0) m.emplace_back("sometimes", static_cast<double>(ctx.trial));
    return m;
  });
  const SweepCellResult& cr = result.cells[0];
  EXPECT_EQ(cr.values("always").size(), 4u);
  EXPECT_EQ(cr.values("sometimes").size(), 2u);
  EXPECT_DOUBLE_EQ(cr.mean("sometimes"), 1.0);  // (0 + 2) / 2
  EXPECT_DOUBLE_EQ(cr.mean("missing", -7.0), -7.0);
}

TEST(SweepRunnerTest, ConditionalHelpersSelectByFlag) {
  SweepSpec spec;
  spec.name = "cond";
  spec.trials = 4;
  spec.cells.resize(1);
  const SweepResult result = SweepRunner(spec).run([](const SweepTrial& ctx) {
    return SweepMetrics{
        {"flag", ctx.trial < 2 ? 1.0 : 0.0},
        {"value", static_cast<double>(ctx.trial + 10)},
    };
  });
  const SweepCellResult& cr = result.cells[0];
  EXPECT_DOUBLE_EQ(cr.rate("flag"), 0.5);
  EXPECT_DOUBLE_EQ(cr.mean_where("value", "flag"), 10.5);  // trials 0, 1
  EXPECT_DOUBLE_EQ(cr.min_where("value", "flag"), 10.0);
  EXPECT_DOUBLE_EQ(cr.max_where("value", "flag"), 11.0);
  EXPECT_EQ(cr.values_where("value", "flag").size(), 2u);
  EXPECT_DOUBLE_EQ(cr.min_where("value", "absent", -3.0), -3.0);
}

TEST(SweepRunnerTest, CellDrivesAnyEngineKindWithClampedAccounting) {
  // A cell naming the batched engine builds a batched simulator through the
  // facade, and the standard metric block separates attempted vs effective
  // interactions (the τ-leaping clamp used to be double-reported).
  const UndecidedStateDynamics usd(2);
  const Configuration initial =
      UndecidedStateDynamics::initial_configuration({600, 400});
  for (const EngineKind kind :
       {EngineKind::kSequential, EngineKind::kSequentialVirtual,
        EngineKind::kBatched}) {
    SweepSpec spec;
    spec.name = "engine";
    spec.trials = 2;
    SweepCell cell;
    cell.n = 1000;
    cell.k = 2;
    cell.engine = kind;
    cell.round_divisor = 8;
    spec.cells.push_back(cell);
    const SweepResult result =
        SweepRunner(spec).run([&](const SweepTrial& ctx) {
          Engine engine = ctx.make_engine(usd, initial);
          EXPECT_EQ(engine.kind(), kind);
          const TrialResult r = run_engine_trial(engine, 10'000'000);
          EXPECT_EQ(engine.clamped_interactions(), r.clamped);
          return consensus_metrics(r);
        });
    const SweepCellResult& cr = result.cells[0];
    for (std::size_t t = 0; t < 2; ++t) {
      EXPECT_DOUBLE_EQ(cr.values("effective_interactions")[t],
                       cr.values("interactions")[t] - cr.values("clamped")[t]);
    }
    if (kind != EngineKind::kBatched) {
      EXPECT_DOUBLE_EQ(cr.sum("clamped"), 0.0);  // exact engines never clamp
    }
  }
}

TEST(SweepRunnerTest, CollapsedEngineSweepIsThreadCountInvariantByteForByte) {
  // The billion-agent workflow is a collapsed-engine sweep fanned out over
  // threads; its unified JSON must stay byte-identical at any thread count,
  // exactly like the sequential-engine sweeps pinned above.
  const UndecidedStateDynamics usd(3);
  const Configuration initial =
      UndecidedStateDynamics::initial_configuration({500, 300, 200});
  auto spec_for = [&](unsigned threads) {
    SweepSpec spec;
    spec.name = "collapsed_sweep";
    spec.trials = 6;
    spec.base_seed = 77;
    spec.threads = threads;
    for (const double eps : {0.05, 0.2}) {
      SweepCell cell;
      cell.n = 1000;
      cell.k = 3;
      cell.engine = EngineKind::kCollapsed;
      cell.tau_epsilon = eps;
      spec.cells.push_back(cell);
    }
    return spec;
  };
  auto trial = [&](const SweepTrial& ctx) {
    Engine engine = ctx.make_engine(usd, initial);
    EXPECT_EQ(engine.kind(), EngineKind::kCollapsed);
    return consensus_metrics(run_engine_trial(engine, 50'000'000));
  };
  const SweepResult serial = SweepRunner(spec_for(1)).run(trial);
  const SweepResult parallel = SweepRunner(spec_for(8)).run(trial);
  const std::string json = serial.to_json();
  EXPECT_EQ(json, parallel.to_json());
  // The report names the engine and carries the collapsed-engine knob.
  EXPECT_NE(json.find("\"engine\": \"collapsed\""), std::string::npos);
  EXPECT_NE(json.find("\"tau_epsilon\": 0.2"), std::string::npos);
  for (const SweepCellResult& cr : serial.cells) {
    EXPECT_DOUBLE_EQ(cr.rate("stabilized"), 1.0);
  }
}

TEST(SweepRunnerTest, TrialExceptionsPropagate) {
  SweepSpec spec;
  spec.name = "boom";
  spec.trials = 8;
  spec.threads = 4;
  spec.cells.resize(2);
  std::atomic<int> calls{0};
  EXPECT_THROW(SweepRunner(spec).run([&](const SweepTrial& ctx) -> SweepMetrics {
    ++calls;
    if (ctx.stream_index == 5) throw std::runtime_error("trial failed");
    return {};
  }),
               std::runtime_error);
  EXPECT_LE(calls.load(), 16);
}

TEST(SweepRunnerTest, RejectsEmptyNameZeroTrialsAndNullFunction) {
  SweepSpec unnamed;
  unnamed.trials = 1;
  EXPECT_THROW(SweepRunner(std::move(unnamed)), CheckFailure);
  SweepSpec no_trials;
  no_trials.name = "x";
  no_trials.trials = 0;
  EXPECT_THROW(SweepRunner(std::move(no_trials)), CheckFailure);
  SweepSpec ok;
  ok.name = "x";
  EXPECT_THROW(SweepRunner(std::move(ok)).run(SweepTrialFn{}), CheckFailure);
}

TEST(SweepRunnerTest, EmptyCellListProducesEmptyResult) {
  SweepSpec spec;
  spec.name = "empty";
  const SweepResult result = SweepRunner(spec).run(
      [](const SweepTrial&) -> SweepMetrics { return {}; });
  EXPECT_TRUE(result.cells.empty());
  EXPECT_NE(result.to_json().find("\"cells\": []"), std::string::npos);
}

TEST(SweepRunnerTest, ResolvedThreadsClampsToInitialWorkItemCount) {
  // Regression: the clamp used to compare against cells.size() alone, so a
  // 1-cell grid with many trials was forced down to one worker no matter
  // what --threads asked for. The bound is the initial work-item count
  // cells x trials.
  SweepSpec spec;
  spec.name = "clamp";
  spec.trials = 3;
  spec.threads = 64;
  spec.cells.resize(1);
  EXPECT_EQ(SweepRunner::resolved_threads(spec), 3u);
  const auto seed_trial = [](const SweepTrial& ctx) {
    return SweepMetrics{{"seed", static_cast<double>(ctx.seed >> 11)}};
  };
  const SweepResult wide = SweepRunner(spec).run(seed_trial);
  EXPECT_EQ(wide.threads, 3u);
  // And the clamped run still reproduces the serial bytes exactly.
  SweepSpec serial_spec = spec;
  serial_spec.threads = 1;
  const SweepResult serial = SweepRunner(serial_spec).run(seed_trial);
  EXPECT_EQ(serial.to_json(), wide.to_json());
}

TEST(SweepRunnerTest, FixedTrialRunsReportRequestedEqualsRun) {
  // Satellite contract: the report distinguishes trials_requested from
  // trials_run, and for fixed-trial sweeps the two are always equal.
  const SweepResult result = SweepRunner(small_usd_spec(4)).run(usd_trial);
  for (const SweepCellResult& cr : result.cells) {
    EXPECT_EQ(cr.trials_requested, 6u);
    EXPECT_EQ(cr.trials_run, 6u);
    EXPECT_EQ(cr.trials.size(), 6u);
  }
  const std::string json = result.to_json();
  EXPECT_NE(json.find("\"trials_requested\": 6"), std::string::npos);
  EXPECT_NE(json.find("\"trials_run\": 6"), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"fixed\""), std::string::npos);
}

TEST(SweepRunnerTest, StaticPoolMatchesWorkStealingByteForByte) {
  // The legacy static pool is kept as a differential oracle: same spec, same
  // seeds, different execution substrate, identical bytes.
  SweepSpec ws = small_usd_spec(4);
  SweepSpec pool = small_usd_spec(4);
  pool.scheduler = SweepSchedulerKind::kStaticPool;
  const SweepResult a = SweepRunner(ws).run(usd_trial);
  const SweepResult b = SweepRunner(pool).run(usd_trial);
  EXPECT_EQ(a.to_json(), b.to_json());
}

SweepSpec adaptive_usd_spec(unsigned threads) {
  SweepSpec spec = small_usd_spec(threads);
  spec.trials = 32;  // the cap
  spec.stopping.adaptive = true;
  spec.stopping.rel_err = 0.15;
  spec.stopping.min_trials = 4;
  spec.stopping.metric = "parallel_time";
  return spec;
}

TEST(SweepRunnerTest, AdaptiveSweepJsonIsThreadCountInvariant) {
  // The tentpole guarantee extended to --trials auto: stopping decisions are
  // evaluated over deterministic trial-index prefixes, so adaptive sweeps
  // serialize byte-identically at any thread count too.
  const SweepResult serial = SweepRunner(adaptive_usd_spec(1)).run(usd_trial);
  const SweepResult parallel = SweepRunner(adaptive_usd_spec(8)).run(usd_trial);
  const std::string json = serial.to_json();
  EXPECT_EQ(json, parallel.to_json());
  EXPECT_NE(json.find("\"mode\": \"auto\""), std::string::npos);
  EXPECT_NE(json.find("\"rel_err\": 0.15"), std::string::npos);
  for (const SweepCellResult& cr : serial.cells) {
    EXPECT_EQ(cr.trials_requested, 32u);
    EXPECT_GE(cr.trials_run, 4u);
    EXPECT_LE(cr.trials_run, 32u);
    EXPECT_EQ(cr.trials.size(), cr.trials_run);
  }
}

TEST(SweepRunnerTest, AdaptiveStoppingValidatesItsParameters) {
  auto adaptive = [] {
    SweepSpec spec;
    spec.name = "bad";
    spec.trials = 8;
    spec.cells.resize(1);
    spec.stopping.adaptive = true;
    return spec;
  };
  const auto noop = [](const SweepTrial&) -> SweepMetrics { return {}; };
  SweepSpec rel = adaptive();
  rel.stopping.rel_err = 0.0;
  EXPECT_THROW(SweepRunner(std::move(rel)).run(noop), CheckFailure);
  SweepSpec conf = adaptive();
  conf.stopping.confidence = 1.0;
  EXPECT_THROW(SweepRunner(std::move(conf)).run(noop), CheckFailure);
  SweepSpec floor = adaptive();
  floor.stopping.min_trials = 1;
  EXPECT_THROW(SweepRunner(std::move(floor)).run(noop), CheckFailure);
  SweepSpec metric = adaptive();
  metric.stopping.metric.clear();
  EXPECT_THROW(SweepRunner(std::move(metric)).run(noop), CheckFailure);
  // The static pool cannot express dynamic work; adaptive mode rejects it.
  SweepSpec pool = adaptive();
  pool.scheduler = SweepSchedulerKind::kStaticPool;
  EXPECT_THROW(SweepRunner(std::move(pool)).run(noop), CheckFailure);
}

TEST(SweepCellTest, ParamLookupAndLabel) {
  SweepCell cell;
  cell.n = 100;
  cell.k = 7;
  cell.params = {{"rate", 0.25}};
  EXPECT_DOUBLE_EQ(cell.param("rate", -1.0), 0.25);
  EXPECT_DOUBLE_EQ(cell.param("absent", -1.0), -1.0);
  EXPECT_EQ(cell.label(), "n=100,k=7");
  cell.name = "custom";
  EXPECT_EQ(cell.label(), "custom");
}

TEST(SweepResultTest, JsonCarriesCellAxesAndMetricValues) {
  SweepSpec spec;
  spec.name = "json";
  spec.trials = 2;
  SweepCell cell;
  cell.n = 10;
  cell.k = 2;
  cell.protocol = "usd";
  cell.params = {{"rho", 0.5}};
  spec.cells.push_back(cell);
  const SweepResult result = SweepRunner(spec).run([](const SweepTrial& ctx) {
    return SweepMetrics{{"m", static_cast<double>(ctx.trial)}};
  });
  const std::string json = result.to_json();
  EXPECT_NE(json.find("\"sweep\": \"json\""), std::string::npos);
  EXPECT_NE(json.find("\"rho\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"metric\": \"m\""), std::string::npos);
  EXPECT_NE(json.find("\"values\": [0, 1]"), std::string::npos);
  EXPECT_NE(json.find("stream(cell * trials + trial)"), std::string::npos);
  // Wall clock must stay out of the report (byte-identity across runs).
  EXPECT_EQ(json.find("wall"), std::string::npos);
}

TEST(SweepRunnerTest, CellCallbackOrderNeverAffectsTheEmittedJson) {
  // run_job streams cells to on_cell in completion order — a schedule-
  // dependent order by design. The pin: whatever order the callbacks fire
  // in, the assembled report is the same bytes, and each streamed cell
  // carries exactly the data the report ends up holding at its cell_index.
  const std::string reference =
      SweepRunner(small_usd_spec(1)).run(usd_trial).to_json();
  for (const unsigned threads : {1u, 4u, 8u}) {
    std::mutex mutex;
    std::vector<std::size_t> order;
    std::vector<std::vector<SweepMetrics>> streamed(4);
    SweepJobOptions opts;
    opts.on_cell = [&](const SweepCellResult& cr) {
      const std::lock_guard<std::mutex> lock(mutex);
      order.push_back(cr.cell_index);
      streamed[cr.cell_index] = cr.trials;
    };
    const SweepResult result =
        SweepRunner(small_usd_spec(threads)).run_job(usd_trial, opts);
    EXPECT_EQ(result.to_json(), reference) << "threads=" << threads;
    // Exactly one callback per cell, each carrying the final cell data.
    std::vector<std::size_t> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<std::size_t>{0, 1, 2, 3}));
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(streamed[c], result.cells[c].trials) << "cell " << c;
    }
  }
}

TEST(SweepRunnerTest, LockstepLaunchIsByteIdenticalToPerTrialWithScalar) {
  // run(fn, plan) routes eligible collapsed cells through whole-cell kernel
  // launches (grouped trials, staged rounds, one advance_batch per round).
  // The scalar kernel's lockstep contract is bit-identical draws, and the
  // group runner replicates the per-trial seed discipline — so the unified
  // JSON must match run(fn) byte for byte, at any thread count.
  const UndecidedStateDynamics usd(3);
  const Configuration initial({0, 400, 350, 250});
  auto spec_for = [&](unsigned threads) {
    SweepSpec spec;
    spec.name = "sweep_lockstep_test";
    spec.trials = 6;
    spec.base_seed = 31337;
    spec.threads = threads;
    for (const double eps : {0.05, 0.2}) {
      SweepCell cell;
      cell.n = 1000;
      cell.k = 3;
      cell.engine = EngineKind::kCollapsed;
      cell.tau_epsilon = eps;
      spec.cells.push_back(cell);
    }
    // A batched cell in the same sweep must silently take the per-trial
    // path (the plan only covers collapsed cells).
    SweepCell batched;
    batched.n = 1000;
    batched.k = 3;
    batched.engine = EngineKind::kBatched;
    spec.cells.push_back(batched);
    return spec;
  };
  constexpr Interactions kBudget = 50'000'000;
  auto trial = [&](const SweepTrial& ctx) {
    Engine engine = ctx.make_engine(usd, initial);
    return consensus_metrics(run_engine_trial(engine, kBudget));
  };
  auto plan = [&](const SweepCell& cell) -> std::optional<LockstepPlan> {
    if (cell.engine != EngineKind::kCollapsed) return std::nullopt;
    return LockstepPlan{&usd, &initial, kBudget};
  };
  const std::string per_trial =
      SweepRunner(spec_for(1)).run(trial).to_json();
  EXPECT_EQ(per_trial, SweepRunner(spec_for(1)).run(trial, plan).to_json());
  EXPECT_EQ(per_trial, SweepRunner(spec_for(8)).run(trial, plan).to_json());
  // The report records the kernel on the header and every cell.
  EXPECT_NE(per_trial.find("\"kernel\": \"scalar\""), std::string::npos);
}

}  // namespace
}  // namespace ppsim
