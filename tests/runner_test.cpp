// Monte-Carlo runner: seed derivation, thread-count independence,
// aggregation semantics.
#include "ppsim/core/runner.hpp"

#include <gtest/gtest.h>

#include <set>

#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/check.hpp"

namespace ppsim {
namespace {

TEST(RunnerTest, TrialSeedsAreDistinctAndStable) {
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 100; ++i) seeds.insert(trial_seed(7, i));
  EXPECT_EQ(seeds.size(), 100u);
  EXPECT_EQ(trial_seed(7, 50), trial_seed(7, 50));
  EXPECT_NE(trial_seed(7, 0), trial_seed(8, 0));
}

TEST(RunnerTest, ResultsIndependentOfThreadCount) {
  auto trial = [](std::uint64_t seed, std::size_t) {
    UsdEngine engine({60, 40}, seed);
    engine.run_until_stable(1'000'000);
    TrialResult r;
    r.stabilized = engine.stabilized();
    r.interactions = engine.interactions();
    r.parallel_time = engine.time();
    r.winner = engine.winner();
    return r;
  };
  const auto serial = run_trials(trial, 16, 99, 1);
  const auto parallel = run_trials(trial, 16, 99, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].interactions, parallel[i].interactions) << "trial " << i;
    EXPECT_EQ(serial[i].winner, parallel[i].winner) << "trial " << i;
  }
}

TEST(RunnerTest, ZeroTrialsIsEmpty) {
  const auto results = run_trials(
      [](std::uint64_t, std::size_t) { return TrialResult{}; }, 0, 1, 4);
  EXPECT_TRUE(results.empty());
}

TEST(RunnerTest, NullFunctionRejected) {
  EXPECT_THROW(run_trials(TrialFn{}, 1, 1, 1), CheckFailure);
}

TEST(RunnerTest, TrialIndexIsPassedThrough) {
  auto trial = [](std::uint64_t, std::size_t index) {
    TrialResult r;
    r.interactions = static_cast<Interactions>(index);
    r.stabilized = true;
    return r;
  };
  const auto results = run_trials(trial, 10, 5, 4);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].interactions, static_cast<Interactions>(i));
  }
}

TEST(AggregateTest, CountsWinnersAndStabilization) {
  std::vector<TrialResult> results;
  for (int i = 0; i < 10; ++i) {
    TrialResult r;
    r.stabilized = i < 8;  // two trials time out
    r.parallel_time = 10.0 + i;
    if (i < 6) {
      r.winner = 0;
    } else if (i < 8) {
      r.winner = 1;
    }
    results.push_back(r);
  }
  const TrialAggregate agg = aggregate(results);
  EXPECT_EQ(agg.trials, 10u);
  EXPECT_EQ(agg.stabilized, 8u);
  EXPECT_DOUBLE_EQ(agg.stabilized_fraction(), 0.8);
  EXPECT_DOUBLE_EQ(agg.win_rate(0), 0.6);
  EXPECT_DOUBLE_EQ(agg.win_rate(1), 0.2);
  EXPECT_DOUBLE_EQ(agg.win_rate(2), 0.0);
  EXPECT_EQ(agg.no_winner, 0u);
  EXPECT_EQ(agg.parallel_time.count(), 8);
}

TEST(AggregateTest, EmptyBatch) {
  const TrialAggregate agg = aggregate({});
  EXPECT_EQ(agg.trials, 0u);
  EXPECT_DOUBLE_EQ(agg.stabilized_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(agg.win_rate(0), 0.0);
}

TEST(AggregateTest, StabilizedWithoutConsensusCounted) {
  TrialResult r;
  r.stabilized = true;  // e.g. all-undecided absorbing state
  const TrialAggregate agg = aggregate({r});
  EXPECT_EQ(agg.no_winner, 1u);
}

}  // namespace
}  // namespace ppsim
