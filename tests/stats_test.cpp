// Statistics toolkit: Welford vs closed forms, merge associativity,
// quantiles, chi-square survival values against known tables, regression on
// synthetic data, bootstrap coverage, histogram binning.
#include "ppsim/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ppsim/util/check.hpp"

namespace ppsim {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sem(), 0.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // sample variance of the classic example: Σ(x-5)² = 32, /7
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleObservation) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  const std::vector<double> data = {1.5, -2.0, 0.25, 10.0, 4.5, 4.5, -7.75, 3.0};
  for (std::size_t i = 0; i < data.size(); ++i) {
    all.add(data[i]);
    (i < data.size() / 2 ? left : right).add(data[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-12);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(Quantiles, SortedSampleInterpolation) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0 / 3.0), 2.0);
}

TEST(Quantiles, RejectsBadInput) {
  EXPECT_THROW(quantile_sorted({}, 0.5), CheckFailure);
  EXPECT_THROW(quantile_sorted({1.0}, -0.1), CheckFailure);
  EXPECT_THROW(quantile_sorted({1.0}, 1.1), CheckFailure);
}

TEST(Summary, MatchesComponents) {
  const Summary s = summarize({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_EQ(s.count, 5);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
}

TEST(ChiSquare, StatisticDefinition) {
  const double stat = chi_square_statistic({12, 8}, {10.0, 10.0});
  EXPECT_DOUBLE_EQ(stat, 0.4 + 0.4);
}

TEST(ChiSquare, ZeroExpectationRequiresZeroObserved) {
  EXPECT_NO_THROW(chi_square_statistic({0, 10}, {0.0, 10.0}));
  EXPECT_THROW(chi_square_statistic({1, 9}, {0.0, 10.0}), CheckFailure);
}

TEST(ChiSquare, SurvivalFunctionKnownValues) {
  // Known critical values: P(X² >= 3.841 | dof=1) ≈ 0.05,
  // P(X² >= 18.307 | dof=10) ≈ 0.05, P(X² >= 2.706 | dof=1) ≈ 0.10.
  EXPECT_NEAR(chi_square_sf(3.841, 1), 0.05, 5e-4);
  EXPECT_NEAR(chi_square_sf(18.307, 10), 0.05, 5e-4);
  EXPECT_NEAR(chi_square_sf(2.706, 1), 0.10, 5e-4);
  EXPECT_NEAR(chi_square_sf(0.0, 5), 1.0, 1e-12);
}

TEST(ChiSquare, SurvivalMonotoneInStatistic) {
  double prev = 1.0;
  for (double stat = 0.5; stat < 30.0; stat += 0.5) {
    const double p = chi_square_sf(stat, 4);
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(LinearFit, ExactLine) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {3.0, 5.0, 7.0, 9.0};  // y = 2x + 1
  const LinearFit f = linear_fit(x, y);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineRecoversSlope) {
  Xoshiro256pp rng(42);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    const double xi = static_cast<double>(i) / 10.0;
    x.push_back(xi);
    y.push_back(3.0 * xi - 2.0 + (rng.canonical() - 0.5));
  }
  const LinearFit f = linear_fit(x, y);
  EXPECT_NEAR(f.slope, 3.0, 0.05);
  EXPECT_NEAR(f.intercept, -2.0, 0.5);
  EXPECT_GT(f.r_squared, 0.99);
}

TEST(LinearFit, RejectsDegenerateInput) {
  EXPECT_THROW(linear_fit({1.0}, {1.0}), CheckFailure);
  EXPECT_THROW(linear_fit({1.0, 1.0}, {1.0, 2.0}), CheckFailure);  // constant x
  EXPECT_THROW(linear_fit({1.0, 2.0}, {1.0}), CheckFailure);       // size mismatch
}

TEST(ProportionalFit, ExactProportionality) {
  const ProportionalFit f = proportional_fit({1.0, 2.0, 4.0}, {2.5, 5.0, 10.0});
  EXPECT_NEAR(f.slope, 2.5, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(ProportionalFit, MinimizesSquaredError) {
  // For y = {1, 3} at x = {1, 2}, least squares through origin gives
  // slope = Σxy/Σx² = (1 + 6)/5 = 1.4.
  const ProportionalFit f = proportional_fit({1.0, 2.0}, {1.0, 3.0});
  EXPECT_NEAR(f.slope, 1.4, 1e-12);
}

TEST(Bootstrap, CoversTrueMeanOfTightSample) {
  Xoshiro256pp rng(7);
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(10.0 + rng.canonical());
  const Interval ci = bootstrap_mean_ci(values, 0.95, 500, rng);
  EXPECT_LT(ci.lo, 10.55);
  EXPECT_GT(ci.hi, 10.45);
  EXPECT_LT(ci.hi - ci.lo, 0.2);
}

TEST(Bootstrap, RejectsBadInput) {
  Xoshiro256pp rng(7);
  EXPECT_THROW(bootstrap_mean_ci({}, 0.95, 100, rng), CheckFailure);
  EXPECT_THROW(bootstrap_mean_ci({1.0}, 1.5, 100, rng), CheckFailure);
  EXPECT_THROW(bootstrap_mean_ci({1.0}, 0.95, 0, rng), CheckFailure);
}

TEST(HistogramTest, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 4
  h.add(-3.0);   // clamped to bin 0
  h.add(15.0);   // clamped to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5);
  EXPECT_EQ(h.bin_count(0), 2);
  EXPECT_EQ(h.bin_count(2), 1);
  EXPECT_EQ(h.bin_count(4), 2);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(2), 6.0);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), CheckFailure);
  EXPECT_THROW(Histogram(1.0, 1.0, 3), CheckFailure);
}

}  // namespace
}  // namespace ppsim
