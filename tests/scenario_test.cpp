// Scenario layer pins: the adversary's target-selection law (chi-square),
// the degenerate-parameter equivalences (strength 0 ≡ uniform scheduler,
// churn 0 ≡ fixed population, byte-identical sweep JSON), churn's population
// accounting against its join/leave ledger, adversarial-sweep determinism
// across thread counts, dynamic-graph resampling, and the agent-space vs
// counts-space fault-rate parity that makes faulted sweeps meaningful under
// EngineKind::kCollapsed.
#include "ppsim/core/scenario.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <tuple>
#include <vector>

#include "ppsim/core/collapsed_simulator.hpp"
#include "ppsim/core/faults.hpp"
#include "ppsim/core/graph_simulator.hpp"
#include "ppsim/core/sweep.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/check.hpp"
#include "scenario_stat_util.hpp"

namespace ppsim {
namespace {

Count total_count(const std::vector<Count>& counts) {
  return std::accumulate(counts.begin(), counts.end(), Count{0});
}

TEST(ScenarioSpecTest, DefaultsAreOffAndEmitNoParams) {
  const ScenarioSpec spec;
  EXPECT_FALSE(spec.any());
  EXPECT_TRUE(spec.params().empty());  // zero-knob specs serialize unchanged
  spec.require_only(false, false, false, "anything");  // no knobs, no throw
}

TEST(ScenarioSpecTest, KnobsStampNamedParamsAndGateUnsupportedContexts) {
  ScenarioSpec spec;
  spec.adversary_strength = 0.25;
  spec.churn_rate = 0.01;
  spec.churn_joiners_undecided = false;
  spec.regraph_every = 8;
  EXPECT_TRUE(spec.any());
  const auto params = spec.params();
  ASSERT_EQ(params.size(), 4u);
  EXPECT_EQ(params[0].first, "adversary_strength");
  EXPECT_DOUBLE_EQ(params[0].second, 0.25);
  EXPECT_EQ(params[1].first, "churn_rate");
  EXPECT_EQ(params[2].first, "churn_uniform");
  EXPECT_EQ(params[3].first, "regraph_every");
  EXPECT_THROW(spec.require_only(false, true, true, "x"), CheckFailure);
  EXPECT_THROW(spec.require_only(true, false, true, "x"), CheckFailure);
  EXPECT_THROW(spec.require_only(true, true, false, "x"), CheckFailure);
  spec.require_only(true, true, true, "x");
}

TEST(AdversarialSchedulerTest, TrailingAndLeadingHelpers) {
  EXPECT_EQ(AdversarialScheduler::trailing_opinion({5, 0, 3, 0, 7}), 2);
  EXPECT_EQ(AdversarialScheduler::leading_opinion({5, 0, 3, 0, 7}), 4);
  // Ties break to the lowest state index; extinct opinions never qualify.
  EXPECT_EQ(AdversarialScheduler::trailing_opinion({0, 4, 4}), 1);
  EXPECT_EQ(AdversarialScheduler::leading_opinion({0, 4, 4}), 1);
  EXPECT_FALSE(AdversarialScheduler::trailing_opinion({9, 0, 0}).has_value());
}

TEST(AdversarialSchedulerTest, TargetSelectionLawChiSquare) {
  // Strength 1: every step is an intervention. The trailing opinion starts
  // smallest and only shrinks under interventions, so it stays the trailer
  // for the whole run; the partner must be drawn ∝ counts over the OTHER
  // surviving opinions. Expected bucket masses accumulate the per-event
  // probabilities (the counts move, so the law is not i.i.d.).
  UsdEngine engine({200000, 300000, 400000, 500000}, 0, 21);
  AdversarialScheduler adv(1.0, 33);
  constexpr int kEvents = 20000;
  const State trailing = *AdversarialScheduler::trailing_opinion(engine.counts());
  ASSERT_EQ(trailing, 1);
  std::vector<std::int64_t> observed(3, 0);  // partners: states 2, 3, 4
  std::vector<double> expected(3, 0.0);
  for (int i = 0; i < kEvents; ++i) {
    const std::vector<Count> before = engine.counts();
    Count others = 0;
    for (State s = 2; s <= 4; ++s) others += before[s];
    for (State s = 2; s <= 4; ++s) {
      expected[s - 2] +=
          static_cast<double>(before[s]) / static_cast<double>(others);
    }
    ASSERT_TRUE(adv.step(engine));
    // The intervention clashes trailing with exactly one partner: both lose
    // one agent, ⊥ gains two.
    ASSERT_EQ(engine.counts()[trailing], before[trailing] - 1);
    int partner = -1;
    for (State s = 2; s <= 4; ++s) {
      if (engine.counts()[s] == before[s] - 1) partner = static_cast<int>(s);
    }
    ASSERT_GE(partner, 2);
    ++observed[static_cast<std::size_t>(partner) - 2];
  }
  EXPECT_EQ(adv.interventions(), kEvents);
  EXPECT_GT(testutil::chi_square_pvalue(observed, expected), 1e-6);
}

TEST(AdversarialSchedulerTest, InterventionRateMatchesStrength) {
  // strength 0.3 over 20000 steps: interventions ~ Binomial(20000, 0.3),
  // σ ≈ 65; 4σ window.
  UsdEngine engine({400000, 400000, 400000}, 0, 5);
  AdversarialScheduler adv(0.3, 11);
  constexpr Interactions kSteps = 20000;
  adv.run(engine, kSteps);
  EXPECT_EQ(engine.interactions(), kSteps);
  const double mean = 0.3 * static_cast<double>(kSteps);
  const double sigma = std::sqrt(static_cast<double>(kSteps) * 0.3 * 0.7);
  EXPECT_GT(static_cast<double>(adv.interventions()), mean - 4.0 * sigma);
  EXPECT_LT(static_cast<double>(adv.interventions()), mean + 4.0 * sigma);
}

TEST(AdversarialSchedulerTest, StrengthZeroIsTheUniformScheduler) {
  // strength 0 must consume ZERO adversary randomness and delegate every
  // step to the engine — the runs are identical interaction for interaction.
  UsdEngine plain({700, 300}, 50, 99);
  UsdEngine driven({700, 300}, 50, 99);
  AdversarialScheduler adv(0.0, 1234);  // seed irrelevant: never drawn from
  for (int i = 0; i < 5000; ++i) {
    plain.step();
    EXPECT_FALSE(adv.step(driven));
    ASSERT_EQ(plain.counts(), driven.counts());
  }
  EXPECT_EQ(adv.interventions(), 0);
  // ... and to stabilization.
  const bool a = plain.run_until_stable(10'000'000);
  const bool b = adv.run_until_stable(driven, 10'000'000);
  EXPECT_EQ(a, b);
  EXPECT_EQ(plain.counts(), driven.counts());
  EXPECT_EQ(plain.interactions(), driven.interactions());
}

TEST(AdversarialSchedulerTest, PositiveStrengthStarvesTheTrailingOpinion) {
  // The adversary's forced clash removes one agent from the trailer AND one
  // from a stronger opinion: the absolute bias is preserved while both
  // counts shrink, so the relative bias grows and the minority is starved
  // into extinction. Behavioral pin over paired seeds: the majority wins
  // every adversarial run (the uniform scheduler occasionally lets the
  // minority win at this bias), interventions actually fire, and total
  // stabilization time is *shorter* than uniform — the measurable signature
  // distinguishing this law from a no-op or a symmetric perturbation.
  double uniform_total = 0.0;
  double adversarial_total = 0.0;
  for (std::uint64_t t = 0; t < 12; ++t) {
    UsdEngine plain({3000, 2000}, 700 + t);
    ASSERT_TRUE(plain.run_until_stable(100'000'000));
    uniform_total += plain.time();
    UsdEngine hard({3000, 2000}, 700 + t);
    AdversarialScheduler adv(0.5, 900 + t);
    ASSERT_TRUE(adv.run_until_stable(hard, 100'000'000));
    ASSERT_GT(adv.interventions(), 0);
    ASSERT_EQ(hard.winner(), std::optional<Opinion>(0));
    adversarial_total += hard.time();
  }
  EXPECT_LT(adversarial_total, uniform_total);
}

TEST(ChurnModelTest, PopulationTracksLedgerExactly) {
  UsdEngine engine({600, 400}, 13);
  ChurnModel churn(0.05, 0.03, ChurnModel::JoinPolicy::kUndecided, 77);
  const Count initial = engine.population();
  for (int chunk = 0; chunk < 20; ++chunk) {
    churn.run(engine, 1000);
    ASSERT_EQ(engine.population(),
              initial + churn.joins() - churn.leaves());
    ASSERT_EQ(total_count(engine.counts()), engine.population());
  }
  EXPECT_GT(churn.joins(), 0);
  EXPECT_GT(churn.leaves(), 0);
}

TEST(ChurnModelTest, UniformOpinionJoinersAreUniformOverOpinionsChiSquare) {
  // Join-only churn at rate 1, with the engine held still (churn.step does
  // not advance the dynamics): every call joins exactly one agent, and the
  // diff identifies its entry state. Under the uniform policy joiners must
  // be uniform over the k opinions and never enter ⊥.
  const std::size_t k = 3;
  UsdEngine engine({5000, 5000, 5000}, 5000, 3);
  ChurnModel churn(1.0, 0.0, ChurnModel::JoinPolicy::kUniformOpinion, 9);
  constexpr int kEvents = 30000;
  std::vector<std::int64_t> joined(k, 0);
  for (int i = 0; i < kEvents; ++i) {
    const std::vector<Count> before = engine.counts();
    churn.step(engine);
    int entered = -1;
    for (std::size_t s = 0; s <= k; ++s) {
      if (engine.counts()[s] == before[s] + 1) entered = static_cast<int>(s);
    }
    ASSERT_GT(entered, 0) << "uniform-policy joiners must not enter ⊥";
    ++joined[static_cast<std::size_t>(entered) - 1];
  }
  EXPECT_EQ(churn.joins(), kEvents);
  EXPECT_EQ(churn.leaves(), 0);
  EXPECT_EQ(engine.population(), 20000 + kEvents);
  EXPECT_GT(testutil::chi_square_pvalue(
                joined, testutil::uniform_expectation(k, kEvents)),
            1e-6);
}

TEST(ChurnModelTest, LeaveHeavyRunFloorsAtTwoAgentsWithoutUnderflow) {
  // join 0 / leave 0.5 on a tiny population: the engine floor of 2 must
  // hold, suppressed departures must stay out of the ledger, and no count
  // ever underflows (CheckFailure would throw).
  UsdEngine engine({6, 6}, 41);
  ChurnModel churn(0.0, 0.5, ChurnModel::JoinPolicy::kUndecided, 43);
  churn.run(engine, 5000);
  EXPECT_EQ(engine.population(), 2);
  EXPECT_EQ(churn.joins(), 0);
  EXPECT_EQ(churn.leaves(), 10);  // exactly initial − floor departures
  EXPECT_EQ(total_count(engine.counts()), 2);
}

TEST(ChurnModelTest, CollapsedEngineLedgerConservation) {
  const UndecidedStateDynamics usd(3);
  CollapsedSimulator sim(usd, Configuration({0, 40000, 30000, 30000}), 17);
  ChurnModel churn(0.02, 0.02, ChurnModel::JoinPolicy::kUniformOpinion, 23);
  const Count initial = sim.configuration().population();
  for (int chunk = 0; chunk < 10; ++chunk) {
    churn.run(sim, 20000);
    ASSERT_EQ(sim.configuration().population(),
              initial + churn.joins() - churn.leaves());
    ASSERT_EQ(total_count(sim.configuration().counts()),
              sim.configuration().population());
  }
  EXPECT_GT(churn.joins(), 0);
  EXPECT_GT(churn.leaves(), 0);
}

TEST(ChurnModelTest, CollapsedLeaveHeavyRunFloorsAtTwo) {
  const UndecidedStateDynamics usd(2);
  CollapsedSimulator sim(usd, Configuration({0, 10, 10}), 29);
  ChurnModel churn(0.0, 0.9, ChurnModel::JoinPolicy::kUndecided, 31);
  churn.run(sim, 10000);
  EXPECT_EQ(sim.configuration().population(), 2);
  EXPECT_EQ(churn.leaves(), 18);
}

TEST(ChurnModelTest, ZeroChurnIsAFixedPopulationNoOp) {
  // Rate 0 makes zero churn draws: the run is identical to an un-churned
  // engine with the same seed, step for step.
  UsdEngine plain({500, 500}, 7);
  UsdEngine churned({500, 500}, 7);
  ChurnModel churn(0.0, 0.0, ChurnModel::JoinPolicy::kUndecided, 1);
  for (int i = 0; i < 10000; ++i) {
    plain.step();
    churned.step();
    churn.step(churned);
    ASSERT_EQ(plain.counts(), churned.counts());
  }
  EXPECT_EQ(churn.joins(), 0);
  EXPECT_EQ(churn.leaves(), 0);
  EXPECT_EQ(churned.population(), 1000);
}

TEST(FaultParityTest, CollapsedCorruptionRateMatchesAgentSpaceInjector) {
  // The counts-space injector must realize the same corruption rate as the
  // agent-space one: both ~ Binomial(T, rate), T = 200000, rate = 0.01,
  // σ ≈ 44.5. Each realized count sits within 4σ of rate·T, which also
  // bounds their mutual gap.
  constexpr Interactions kBudget = 200000;
  constexpr double kRate = 0.01;
  const double mean = kRate * static_cast<double>(kBudget);
  const double sigma =
      std::sqrt(static_cast<double>(kBudget) * kRate * (1.0 - kRate));

  UsdEngine engine({40000, 30000, 30000}, 0, 61);
  UsdFaultInjector agent_space(kRate, 67);
  agent_space.run(engine, kBudget);
  EXPECT_EQ(engine.interactions(), kBudget);

  const UndecidedStateDynamics usd(3);
  CollapsedSimulator sim(usd, Configuration({0, 40000, 30000, 30000}), 61);
  CountsFaultInjector counts_space(kRate, 67);
  counts_space.run(sim, kBudget);
  EXPECT_EQ(sim.interactions(), kBudget);

  for (const double realized :
       {static_cast<double>(agent_space.corruptions()),
        static_cast<double>(counts_space.corruptions())}) {
    EXPECT_GT(realized, mean - 4.0 * sigma);
    EXPECT_LT(realized, mean + 4.0 * sigma);
  }
  // Population is invariant under corruption on both engines.
  EXPECT_EQ(engine.population(), 100000);
  EXPECT_EQ(sim.configuration().population(), 100000);
}

TEST(FaultParityTest, ZeroRateCountsInjectorMakesNoDraws) {
  const UndecidedStateDynamics usd(2);
  CollapsedSimulator faulted(usd, Configuration({0, 600, 400}), 83);
  CollapsedSimulator plain(usd, Configuration({0, 600, 400}), 83);
  CountsFaultInjector injector(0.0, 5);
  injector.run(faulted, 50000);
  plain.run_until_stable(50000);
  EXPECT_EQ(injector.corruptions(), 0);
  EXPECT_EQ(faulted.configuration().counts(), plain.configuration().counts());
}

TEST(DynamicGraphTest, ResamplesRebindAndStabilize) {
  const UndecidedStateDynamics usd(2);
  const NodeId n = 200;
  auto generator = [n](Xoshiro256pp& rng) {
    return InteractionGraph::random_regular(n, 8, rng);
  };
  auto run_once = [&]() {
    DynamicGraph dyn(generator, 5 * static_cast<Interactions>(n), 111);
    std::vector<State> init(n, 1);
    for (NodeId v = 150; v < n; ++v) init[v] = 2;
    GraphSimulator sim(usd, dyn.graph(), std::move(init), 222);
    const bool stable =
        dyn.run_until_stable(sim, 5'000'000);
    return std::tuple(stable, dyn.resamples(), sim.configuration().counts(),
                      sim.interactions());
  };
  const auto [stable, resamples, counts, interactions] = run_once();
  EXPECT_TRUE(stable);
  EXPECT_GT(resamples, 0u);
  EXPECT_EQ(total_count(counts), 200);
  // Same seeds ⇒ identical topology sequence and trajectory.
  EXPECT_EQ(run_once(), std::tuple(stable, resamples, counts, interactions));
}

TEST(DynamicGraphTest, RejectsZeroResampleInterval) {
  auto generator = [](Xoshiro256pp&) { return InteractionGraph::cycle(10); };
  EXPECT_THROW(DynamicGraph(generator, 0, 1), CheckFailure);
}

// ---- sweep-level pins ------------------------------------------------------

std::vector<Count> cell_counts(const SweepCell& cell) {
  // Majority split with a fixed 10% bias, as the benches do.
  std::vector<Count> counts(cell.k, cell.n / static_cast<Count>(cell.k));
  counts[0] += cell.n - total_count(counts);
  return counts;
}

SweepMetrics plain_body(const SweepTrial& ctx) {
  UsdEngine engine(cell_counts(ctx.cell), ctx.seed);
  const bool stabilized = engine.run_until_stable(2000 * ctx.cell.n);
  return {{"stabilized", stabilized ? 1.0 : 0.0},
          {"parallel_time", engine.time()}};
}

SweepTrialFn scenario_body(const ScenarioSpec scenario) {
  return [scenario](const SweepTrial& ctx) -> SweepMetrics {
    UsdEngine engine(cell_counts(ctx.cell), ctx.seed);
    // Scenario streams are drawn AFTER ctx.seed, so the engine's seeding is
    // identical to the plain body's.
    AdversarialScheduler adv(scenario.adversary_strength, ctx.rng());
    ChurnModel churn(scenario.churn_rate, scenario.churn_rate,
                     scenario.churn_joiners_undecided
                         ? ChurnModel::JoinPolicy::kUndecided
                         : ChurnModel::JoinPolicy::kUniformOpinion,
                     ctx.rng());
    const Interactions budget = 2000 * ctx.cell.n;
    while (engine.interactions() < budget && !engine.stabilized()) {
      adv.step(engine);
      churn.step(engine);
    }
    return {{"stabilized", engine.stabilized() ? 1.0 : 0.0},
            {"parallel_time", engine.time()}};
  };
}

SweepSpec small_spec() {
  SweepSpec spec;
  spec.name = "scenario-pin";
  for (const Count n : {400, 900}) {
    SweepCell cell;
    cell.n = n;
    cell.k = 3;
    spec.cells.push_back(cell);
  }
  spec.trials = 6;
  spec.base_seed = 99;
  return spec;
}

TEST(ScenarioSweepTest, ZeroKnobScenarioBodyIsByteIdenticalToPlain) {
  // The scenario body at strength 0 / churn 0 draws its (unused) scenario
  // seeds from the trial stream but never the engine's — its JSON must be
  // byte-identical to the plain body's.
  const SweepSpec spec = small_spec();
  const std::string plain = SweepRunner(spec).run(plain_body).to_json();
  const std::string zero =
      SweepRunner(spec).run(scenario_body(ScenarioSpec{})).to_json();
  EXPECT_EQ(plain, zero);
}

TEST(ScenarioSweepTest, AdversarialSweepIsByteIdenticalAcrossThreads) {
  ScenarioSpec scenario;
  scenario.adversary_strength = 0.2;
  scenario.churn_rate = 0.01;
  SweepSpec spec = small_spec();
  for (SweepCell& cell : spec.cells) cell.params = scenario.params();

  SweepSpec threaded = spec;
  threaded.threads = 8;
  const std::string lo = SweepRunner(spec).run(scenario_body(scenario)).to_json();
  const std::string hi =
      SweepRunner(threaded).run(scenario_body(scenario)).to_json();
  EXPECT_EQ(lo, hi);

  // Same pin under adaptive stopping (--trials auto): prefix-evaluated
  // stopping keeps the byte-identity guarantee.
  SweepSpec adaptive = spec;
  adaptive.stopping.adaptive = true;
  adaptive.stopping.min_trials = 4;
  adaptive.trials = 8;
  SweepSpec adaptive_hi = adaptive;
  adaptive_hi.threads = 8;
  const std::string alo =
      SweepRunner(adaptive).run(scenario_body(scenario)).to_json();
  const std::string ahi =
      SweepRunner(adaptive_hi).run(scenario_body(scenario)).to_json();
  EXPECT_EQ(alo, ahi);

  // And the scenario params visibly mark the report as adversarial — it can
  // never be mistaken for (or cached as) the plain sweep's.
  const std::string plain = SweepRunner(small_spec()).run(plain_body).to_json();
  EXPECT_NE(lo, plain);
}

}  // namespace
}  // namespace ppsim
