// Trajectory archive format: wire-codec roundtrips, writer/reader
// roundtrips, block-footer queries, and crash consistency — a reader over a
// file chopped at *every* byte offset must recover every complete record,
// report the torn tail, and never crash.
#include "ppsim/io/trajectory.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "ppsim/io/wire.hpp"
#include "ppsim/util/check.hpp"

namespace ppsim::io {
namespace {

std::string tmp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::uint8_t* data,
                std::size_t size) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data), static_cast<std::streamsize>(size));
}

TrajectoryHeader test_header() {
  TrajectoryHeader h;
  h.engine = "collapsed";
  h.protocol = "usd";
  h.seed = 12345;
  h.population = 1000;
  h.k = 4;
  h.num_states = 5;
  h.stride = 100;
  h.checkpoint_every = 400;
  h.max_interactions = 100000;
  h.tau_epsilon = 0.05;
  h.round_divisor = 16;
  h.channels = {"undecided", "majority"};
  return h;
}

TEST(WireTest, VarintRoundtrip) {
  const std::uint64_t cases[] = {0,   1,    127,        128,
                                 300, 1u << 20, (1ull << 56) + 17, ~0ull};
  for (const std::uint64_t v : cases) {
    Bytes b;
    put_varint(b, v);
    ByteReader r(b.data(), b.size());
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.at_end());
  }
}

TEST(WireTest, SvarintRoundtrip) {
  const std::int64_t cases[] = {0, -1, 1, -64, 63, -1'000'000,
                                std::numeric_limits<std::int64_t>::min(),
                                std::numeric_limits<std::int64_t>::max()};
  for (const std::int64_t v : cases) {
    Bytes b;
    put_svarint(b, v);
    ByteReader r(b.data(), b.size());
    EXPECT_EQ(r.svarint(), v);
    EXPECT_TRUE(r.ok());
  }
}

TEST(WireTest, FixedAndDoubleRoundtrip) {
  Bytes b;
  put_fixed64(b, 0xdeadbeefcafef00dull);
  put_f64(b, -1234.5678);
  put_string(b, "hello");
  ByteReader r(b.data(), b.size());
  EXPECT_EQ(r.fixed64(), 0xdeadbeefcafef00dull);
  EXPECT_DOUBLE_EQ(r.f64(), -1234.5678);
  EXPECT_EQ(r.string(), "hello");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(WireTest, ReaderNeverOverruns) {
  Bytes b;
  put_varint(b, 1u << 20);
  ByteReader r(b.data(), 1);  // truncated mid-varint
  r.varint();
  EXPECT_FALSE(r.ok());
  ByteReader r2(b.data(), b.size());
  r2.skip(b.size() + 1);
  EXPECT_FALSE(r2.ok());
}

TEST(WireTest, RejectsNonCanonicalVarint) {
  // Eleven continuation bytes can never be a canonical u64.
  Bytes b(11, 0x80);
  ByteReader r(b.data(), b.size());
  r.varint();
  EXPECT_FALSE(r.ok());
}

TEST(TrajectoryTest, WriterReaderRoundtrip) {
  const std::string path = tmp_path("roundtrip.pptraj");
  TrajectoryWriter::Options options;
  options.block_samples = 4;
  {
    TrajectoryWriter writer(path, test_header(), options);
    for (int j = 0; j < 10; ++j) {
      writer.sample(j * 100, {1000.0 - j, static_cast<double>(j) / 3.0});
    }
    EngineCheckpoint cp;
    cp.counts = {100, 200, 300, 400, 0};
    cp.rng_state = {1, 2, 3, 4};
    cp.interactions = 950;
    writer.checkpoint(cp);
    writer.finish(TrajectoryEnd{.stabilized = true,
                                .interactions = 990,
                                .clamped = 7,
                                .consensus = Opinion{2}});
  }

  TrajectoryReader reader(path);
  EXPECT_FALSE(reader.torn_tail());
  const TrajectoryHeader& h = reader.header();
  EXPECT_EQ(h.engine, "collapsed");
  EXPECT_EQ(h.protocol, "usd");
  EXPECT_EQ(h.seed, 12345u);
  EXPECT_EQ(h.population, 1000);
  EXPECT_EQ(h.k, 4);
  EXPECT_EQ(h.stride, 100);
  EXPECT_EQ(h.checkpoint_every, 400);
  EXPECT_EQ(h.build_version, std::string(kBuildVersion));
  EXPECT_EQ(h.spec_hash, h.compute_spec_hash());
  ASSERT_EQ(h.channels, (std::vector<std::string>{"undecided", "majority"}));

  // 10 samples at 4 per block: blocks of 4, 4, then the checkpoint flushes
  // the pending 2.
  ASSERT_EQ(reader.num_blocks(), 3u);
  EXPECT_EQ(reader.block(0).num_samples, 4u);
  EXPECT_EQ(reader.block(2).num_samples, 2u);
  EXPECT_EQ(reader.total_samples(), 10u);
  EXPECT_EQ(reader.block(0).first_interactions, 0);
  EXPECT_EQ(reader.block(0).last_interactions, 300);
  EXPECT_DOUBLE_EQ(reader.block(0).max[0], 1000.0);
  EXPECT_DOUBLE_EQ(reader.block(0).min[0], 997.0);

  ASSERT_EQ(reader.checkpoints().size(), 1u);
  EXPECT_EQ(reader.checkpoints()[0].interactions, 950);
  EXPECT_EQ(reader.checkpoints()[0].counts,
            (std::vector<Count>{100, 200, 300, 400, 0}));

  ASSERT_TRUE(reader.finished());
  EXPECT_TRUE(reader.end()->stabilized);
  EXPECT_EQ(reader.end()->interactions, 990);
  EXPECT_EQ(reader.end()->clamped, 7);
  ASSERT_TRUE(reader.end()->consensus.has_value());
  EXPECT_EQ(*reader.end()->consensus, 2);

  // Full decode: integral column survives delta coding, fractional column
  // survives via raw doubles.
  const TimeSeries series = reader.to_series();
  ASSERT_EQ(series.num_samples(), 10u);
  for (int j = 0; j < 10; ++j) {
    EXPECT_DOUBLE_EQ(series.parallel_time[static_cast<std::size_t>(j)],
                     static_cast<double>(j * 100) / 1000.0);
    EXPECT_DOUBLE_EQ(series.channels[0][static_cast<std::size_t>(j)], 1000.0 - j);
    EXPECT_DOUBLE_EQ(series.channels[1][static_cast<std::size_t>(j)],
                     static_cast<double>(j) / 3.0);
  }

  // Projection + downsampling.
  const TimeSeries every3 = reader.to_series({"majority"}, 3);
  ASSERT_EQ(every3.channel_names, std::vector<std::string>{"majority"});
  EXPECT_EQ(every3.num_samples(), 4u);  // samples 0, 3, 6, 9
  EXPECT_THROW(reader.to_series({"nope"}), CheckFailure);
}

TEST(TrajectoryTest, FooterQueriesSkipBlocks) {
  const std::string path = tmp_path("footers.pptraj");
  TrajectoryWriter::Options options;
  options.block_samples = 8;
  {
    TrajectoryWriter writer(path, test_header(), options);
    for (int j = 0; j < 64; ++j) {
      writer.sample(j * 100, {static_cast<double>(j), 64.0 - j});
    }
    writer.finish(TrajectoryEnd{.stabilized = false, .interactions = 6300});
  }
  TrajectoryReader reader(path);
  ASSERT_EQ(reader.num_blocks(), 8u);
  // undecided rises 0..63: the first sample with value >= 40 is j = 40, at
  // parallel time 40*100/1000.
  EXPECT_DOUBLE_EQ(reader.first_time_at_least("undecided", 40.0), 4.0);
  EXPECT_TRUE(std::isnan(reader.first_time_at_least("undecided", 1000.0)));
  EXPECT_DOUBLE_EQ(reader.channel_max("undecided"), 63.0);
  EXPECT_DOUBLE_EQ(reader.channel_min("majority"), 1.0);
  EXPECT_THROW(reader.channel_max("nope"), CheckFailure);
}

TEST(TrajectoryTest, RejectsNonArchiveFiles) {
  const std::string path = tmp_path("not_an_archive.bin");
  const std::string junk = "this is not a trajectory archive at all";
  write_file(path, reinterpret_cast<const std::uint8_t*>(junk.data()), junk.size());
  EXPECT_THROW(TrajectoryReader{path}, CheckFailure);
  EXPECT_THROW(TrajectoryReader{tmp_path("missing.pptraj")}, CheckFailure);
}

TEST(TrajectoryTest, WriterValidatesInputs) {
  TrajectoryHeader bad = test_header();
  bad.channels = {"tab\tseparated"};
  EXPECT_THROW(TrajectoryWriter(tmp_path("bad.pptraj"), bad), CheckFailure);

  TrajectoryWriter writer(tmp_path("arity.pptraj"), test_header());
  EXPECT_THROW(writer.sample(0, {1.0}), CheckFailure);          // arity
  writer.sample(100, {1.0, 2.0});
  EXPECT_THROW(writer.sample(50, {1.0, 2.0}), CheckFailure);    // clock order
  writer.finish(TrajectoryEnd{});
  EXPECT_THROW(writer.sample(200, {1.0, 2.0}), CheckFailure);   // finished
}

// The crash-consistency sweep: chop the file at every byte offset and
// require the reader to either reject it as a non-archive (chop inside
// magic/header) or recover exactly the complete-record prefix.
TEST(TrajectoryTest, TruncatedFilesRecoverEveryCompleteBlock) {
  const std::string path = tmp_path("fuzz_full.pptraj");
  TrajectoryWriter::Options options;
  options.block_samples = 3;
  {
    TrajectoryWriter writer(path, test_header(), options);
    for (int j = 0; j < 12; ++j) {
      writer.sample(j * 50, {static_cast<double>(100 + j), j * 0.25});
      if (j == 5) {
        EngineCheckpoint cp;
        cp.counts = {10, 20, 30, 40, 900};
        cp.rng_state = {5, 6, 7, 8};
        cp.interactions = 275;
        writer.checkpoint(cp);
      }
    }
    writer.finish(TrajectoryEnd{.stabilized = true, .interactions = 600});
  }
  const std::vector<std::uint8_t> full = read_file(path);
  TrajectoryReader whole(path);
  const std::size_t all_samples = whole.total_samples();
  ASSERT_FALSE(whole.torn_tail());

  const std::string chopped = tmp_path("fuzz_chop.pptraj");
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    write_file(chopped, full.data(), cut);
    TrajectoryReader* reader = nullptr;
    try {
      reader = new TrajectoryReader(chopped);
    } catch (const CheckFailure&) {
      // Legal only while the header itself is incomplete.
      EXPECT_EQ(reader, nullptr);
      continue;
    }
    // Whatever survived must be internally consistent and decodable.
    EXPECT_LE(reader->total_samples(), all_samples);
    for (std::size_t b = 0; b < reader->num_blocks(); ++b) {
      const TrajectoryReader::BlockData data = reader->decode_block(b);
      EXPECT_EQ(data.interactions.size(), reader->block(b).num_samples);
    }
    if (cut < full.size()) {
      EXPECT_TRUE(reader->torn_tail() || !reader->finished());
    } else {
      EXPECT_FALSE(reader->torn_tail());
      EXPECT_TRUE(reader->finished());
    }
    delete reader;
  }
}

TEST(TrajectoryTest, CorruptedRecordStopsParseAtTear) {
  const std::string path = tmp_path("bitrot.pptraj");
  {
    TrajectoryWriter::Options options;
    options.block_samples = 2;
    TrajectoryWriter writer(path, test_header(), options);
    for (int j = 0; j < 8; ++j) writer.sample(j * 10, {1.0 * j, 2.0 * j});
    writer.finish(TrajectoryEnd{});
  }
  std::vector<std::uint8_t> bytes = read_file(path);
  TrajectoryReader clean(path);
  ASSERT_EQ(clean.num_blocks(), 4u);
  // Flip a byte in the middle of the file: whatever record it lands in, the
  // checksum mismatch must stop the parse at that record while everything
  // before it stays readable.
  bytes[bytes.size() / 2] ^= 0xFF;
  write_file(path, bytes.data(), bytes.size());
  TrajectoryReader torn(path);
  EXPECT_TRUE(torn.torn_tail());
  EXPECT_LT(torn.num_blocks(), 4u);
  for (std::size_t b = 0; b < torn.num_blocks(); ++b) {
    EXPECT_NO_THROW(torn.decode_block(b));
  }
}

TEST(TrajectoryTest, TrailingGarbageAfterEndIsTorn) {
  const std::string path = tmp_path("trailing.pptraj");
  {
    TrajectoryWriter writer(path, test_header());
    writer.sample(0, {1.0, 2.0});
    writer.finish(TrajectoryEnd{});
  }
  std::vector<std::uint8_t> bytes = read_file(path);
  const std::size_t clean_size = bytes.size();
  bytes.push_back(0x42);
  write_file(path, bytes.data(), bytes.size());
  TrajectoryReader reader(path);
  EXPECT_TRUE(reader.finished());
  EXPECT_TRUE(reader.torn_tail());
  EXPECT_EQ(reader.torn_offset(), clean_size);
}

TEST(TrajectoryTest, SpecHashTracksTheSpec) {
  const TrajectoryHeader a = test_header();
  TrajectoryHeader b = test_header();
  EXPECT_EQ(a.compute_spec_hash(), b.compute_spec_hash());
  b.seed = 54321;
  EXPECT_NE(a.compute_spec_hash(), b.compute_spec_hash());
  TrajectoryHeader c = test_header();
  c.tau_epsilon = 0.049999999;
  EXPECT_NE(a.compute_spec_hash(), c.compute_spec_hash());
}

TEST(TrajectoryTest, ResumeReopensAtLastCheckpoint) {
  const std::string path = tmp_path("resume.pptraj");
  TrajectoryWriter::Options options;
  options.block_samples = 2;
  {
    TrajectoryWriter writer(path, test_header(), options);
    for (int j = 0; j < 4; ++j) writer.sample(j * 100, {1.0 * j, 0.0});
    EngineCheckpoint cp;
    cp.counts = {1, 2, 3, 4, 990};
    cp.rng_state = {9, 9, 9, 9};
    cp.interactions = 350;
    writer.checkpoint(cp);
    writer.sample(400, {4.0, 0.0});
    // Writer destroyed without finish(): the pending sample at 400 is
    // dropped, exactly as a killed process would drop it.
  }
  TrajectoryWriter::Resumed resumed = TrajectoryWriter::resume(path, options);
  ASSERT_FALSE(resumed.finished);
  ASSERT_TRUE(resumed.writer != nullptr);
  ASSERT_TRUE(resumed.checkpoint.has_value());
  EXPECT_EQ(resumed.checkpoint->interactions, 350);
  resumed.writer->sample(400, {4.0, 0.0});
  resumed.writer->sample(500, {5.0, 0.0});
  resumed.writer->finish(TrajectoryEnd{.stabilized = true, .interactions = 500});

  TrajectoryReader reader(path);
  EXPECT_FALSE(reader.torn_tail());
  ASSERT_TRUE(reader.finished());
  EXPECT_EQ(reader.total_samples(), 6u);
  ASSERT_EQ(reader.checkpoints().size(), 1u);

  // A finished archive has nothing to resume.
  TrajectoryWriter::Resumed again = TrajectoryWriter::resume(path, options);
  EXPECT_TRUE(again.finished);
  EXPECT_TRUE(again.writer == nullptr);
}

TEST(TrajectoryTest, ResumeWithoutCheckpointRestarts) {
  const std::string path = tmp_path("resume_scratch.pptraj");
  {
    TrajectoryWriter writer(path, test_header());
    writer.sample(0, {1.0, 2.0});
    // No checkpoint, no finish: only the header record is on disk (the
    // pending block dies with the writer).
  }
  TrajectoryWriter::Resumed resumed = TrajectoryWriter::resume(path);
  ASSERT_FALSE(resumed.finished);
  ASSERT_TRUE(resumed.writer != nullptr);
  EXPECT_FALSE(resumed.checkpoint.has_value());
  resumed.writer->sample(0, {1.0, 2.0});
  resumed.writer->finish(TrajectoryEnd{});
  TrajectoryReader reader(path);
  EXPECT_TRUE(reader.finished());
  EXPECT_EQ(reader.total_samples(), 1u);
}

}  // namespace
}  // namespace ppsim::io
