// Tests for the PRNG stack: determinism, stream independence, bounded-draw
// uniformity (chi-square), and canonical-double range.
#include "ppsim/util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "ppsim/util/stats.hpp"

namespace ppsim {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, KnownFirstOutput) {
  // Reference value from the published SplitMix64 algorithm, seed 0:
  // state becomes 0x9e3779b97f4a7c15 and mixes to 0xe220a8397b1dcdaf.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafull);
}

TEST(Xoshiro256pp, IsDeterministic) {
  Xoshiro256pp a(7);
  Xoshiro256pp b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256pp, ReseedResetsTheStream) {
  Xoshiro256pp a(7);
  const std::uint64_t first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Xoshiro256pp, JumpChangesTheStream) {
  Xoshiro256pp a(7);
  Xoshiro256pp b(7);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256pp, LongJumpChangesTheStream) {
  Xoshiro256pp a(7);
  Xoshiro256pp b(7);
  b.long_jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256pp, LongJumpDiffersFromJump) {
  Xoshiro256pp a(7);
  Xoshiro256pp b(7);
  a.jump();
  b.long_jump();
  EXPECT_NE(a(), b());
}

TEST(Xoshiro256pp, LongJumpRegression) {
  // Locked output of long_jump() on seed 7 (generated from this
  // implementation once verified against the published xoshiro256
  // LONG_JUMP constants). Guards the constants against typos.
  Xoshiro256pp rng(7);
  rng.long_jump();
  EXPECT_EQ(rng(), 0x2fcf55c02e00c40ull);
}

TEST(Xoshiro256pp, StreamsAreDistinctPerIndex) {
  Xoshiro256pp base(11);
  Xoshiro256pp s0 = base.stream(0);
  Xoshiro256pp s1 = base.stream(1);
  Xoshiro256pp s2 = base.stream(2);
  std::set<std::uint64_t> firsts = {s0(), s1(), s2()};
  EXPECT_EQ(firsts.size(), 3u);
}

TEST(Xoshiro256pp, StreamIsReproducible) {
  Xoshiro256pp base(11);
  Xoshiro256pp a = base.stream(3);
  Xoshiro256pp b = base.stream(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256pp, StreamRegression) {
  // The pre-PR3 stream() chained `index + 1` jump() calls — O(index) per
  // derivation, quadratic sweep setup. The O(1) SplitMix64 + long_jump
  // derivation is a *documented break* of the old stream outputs; these
  // locked values pin the replacement so it never drifts silently again.
  Xoshiro256pp base(11);
  Xoshiro256pp s0 = base.stream(0);
  EXPECT_EQ(s0(), 0x64d3844c757ed715ull);
  EXPECT_EQ(s0(), 0xd38223509842fdbcull);
  Xoshiro256pp s1 = base.stream(1);
  EXPECT_EQ(s1(), 0x81b3026d6bd1209ull);
  Xoshiro256pp s2 = base.stream(2);
  EXPECT_EQ(s2(), 0xac93f0175d35cfe9ull);
}

TEST(Xoshiro256pp, StreamDerivationIsConstantTimeInTheIndex) {
  // The old implementation would need 10^12 jump() calls (each 256 state
  // advances) for this index — effectively a hang. The O(1) derivation must
  // return instantly and reproducibly (locked value as above).
  Xoshiro256pp base(11);
  Xoshiro256pp far = base.stream(1'000'000'000'000ull);
  EXPECT_EQ(far(), 0x88be172a05d7b787ull);
  EXPECT_EQ(far(), 0xe886d2585d626116ull);
}

TEST(Xoshiro256pp, StreamDoesNotPerturbTheBaseGenerator) {
  Xoshiro256pp base(11);
  const Xoshiro256pp before = base;
  (void)base.stream(5);
  Xoshiro256pp untouched = before;
  Xoshiro256pp after = base;
  for (int i = 0; i < 16; ++i) EXPECT_EQ(untouched(), after());
}

TEST(Xoshiro256pp, ManyStreamsHaveDistinctFirstDraws) {
  // SplitMix64's first output is a bijection of the index, so stream states
  // are distinct by construction; their first draws colliding would signal a
  // derivation bug (probability ~2^-64 per pair for a correct one).
  Xoshiro256pp base(42);
  std::set<std::uint64_t> firsts;
  for (std::uint64_t i = 0; i < 1000; ++i) firsts.insert(base.stream(i)());
  EXPECT_EQ(firsts.size(), 1000u);
}

TEST(Xoshiro256pp, BoundedStaysInRange) {
  Xoshiro256pp rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.bounded(bound), bound);
    }
  }
}

TEST(Xoshiro256pp, BoundedOneAlwaysZero) {
  Xoshiro256pp rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Xoshiro256pp, BoundedIsUniformChiSquare) {
  // 10 buckets, 100k draws: chi-square with 9 dof; p-value must not be
  // astronomically small. Threshold chosen so a correct generator fails
  // with probability < 1e-6.
  Xoshiro256pp rng(12345);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<std::int64_t> observed(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++observed[rng.bounded(kBuckets)];
  const std::vector<double> expected(kBuckets, static_cast<double>(kDraws) / kBuckets);
  const double stat = chi_square_statistic(observed, expected);
  const double p = chi_square_sf(stat, static_cast<int>(kBuckets) - 1);
  EXPECT_GT(p, 1e-6) << "chi-square statistic " << stat;
}

TEST(Xoshiro256pp, CanonicalInHalfOpenUnitInterval) {
  Xoshiro256pp rng(99);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.canonical();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro256pp, CanonicalMeanIsHalf) {
  Xoshiro256pp rng(99);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.canonical());
  EXPECT_NEAR(stats.mean(), 0.5, 0.005);
}

TEST(Xoshiro256pp, BernoulliExtremes) {
  Xoshiro256pp rng(4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Xoshiro256pp, BernoulliMatchesProbability) {
  Xoshiro256pp rng(8);
  const double p = 0.3;
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.bernoulli(p)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, p, 0.01);
}

}  // namespace
}  // namespace ppsim
