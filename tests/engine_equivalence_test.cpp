// Cross-validation of the five USD execution paths — specialized UsdEngine,
// table-driven Simulator, virtual-dispatch Simulator, GraphSimulator on an
// explicit clique, and the counts-space CollapsedSimulator restricted to
// single-interaction rounds — which by construction realise the *same*
// Markov chain. Rather than comparing trajectories (the engines consume randomness
// differently), we compare distributions: means and variances of the key
// observables at several horizons must agree within Monte-Carlo error, and
// exact one-step transition probabilities must match the drift formulas on
// every engine.
#include <gtest/gtest.h>

#include <tuple>

#include "ppsim/analysis/drift.hpp"
#include "ppsim/core/batched_simulator.hpp"
#include "ppsim/core/collapsed_simulator.hpp"
#include "ppsim/core/graph.hpp"
#include "ppsim/core/graph_simulator.hpp"
#include "ppsim/core/simulator.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/stats.hpp"

namespace ppsim {
namespace {

constexpr Count kN = 60;
constexpr std::size_t kK = 3;
const std::vector<Count> kOpinions = {25, 20, 15};

std::vector<State> agent_layout() {
  std::vector<State> states;
  for (std::size_t op = 0; op < kOpinions.size(); ++op) {
    for (Count c = 0; c < kOpinions[op]; ++c) {
      states.push_back(UndecidedStateDynamics::opinion_state(static_cast<Opinion>(op)));
    }
  }
  return states;
}

struct Moments {
  RunningStats u;
  RunningStats x0;
};

template <typename StepFn, typename ReadU, typename ReadX0>
Moments collect(int trials, Interactions horizon, std::uint64_t seed_base,
                StepFn&& make_and_run, ReadU&& read_u, ReadX0&& read_x0) {
  Moments m;
  for (int t = 0; t < trials; ++t) {
    auto engine = make_and_run(seed_base + static_cast<std::uint64_t>(t), horizon);
    m.u.add(read_u(engine));
    m.x0.add(read_x0(engine));
  }
  return m;
}

class HorizonTest : public ::testing::TestWithParam<Interactions> {};

TEST_P(HorizonTest, AllEnginesAgreeOnMomentsOfU) {
  const Interactions horizon = GetParam();
  constexpr int kTrials = 500;
  const UndecidedStateDynamics usd(kK);
  const InteractionGraph clique = InteractionGraph::complete(static_cast<NodeId>(kN));

  const Moments fast = collect(
      kTrials, horizon, 1000,
      [&](std::uint64_t seed, Interactions h) {
        UsdEngine e(kOpinions, seed);
        for (Interactions i = 0; i < h && !e.stabilized(); ++i) e.step();
        return e;
      },
      [](const UsdEngine& e) { return static_cast<double>(e.undecided()); },
      [](const UsdEngine& e) { return static_cast<double>(e.opinion_count(0)); });

  const Moments table = collect(
      kTrials, horizon, 2000,
      [&](std::uint64_t seed, Interactions h) {
        Simulator s(usd, Configuration({0, 25, 20, 15}), seed);
        for (Interactions i = 0; i < h; ++i) s.step();
        return s.configuration();
      },
      [](const Configuration& c) { return static_cast<double>(c.count(0)); },
      [](const Configuration& c) { return static_cast<double>(c.count(1)); });

  const Moments virt = collect(
      kTrials, horizon, 3000,
      [&](std::uint64_t seed, Interactions h) {
        Simulator s(usd, Configuration({0, 25, 20, 15}), seed,
                    Simulator::Engine::kVirtual);
        for (Interactions i = 0; i < h; ++i) s.step();
        return s.configuration();
      },
      [](const Configuration& c) { return static_cast<double>(c.count(0)); },
      [](const Configuration& c) { return static_cast<double>(c.count(1)); });

  const Moments graph = collect(
      kTrials, horizon, 4000,
      [&](std::uint64_t seed, Interactions h) {
        GraphSimulator s(usd, clique, agent_layout(), seed);
        for (Interactions i = 0; i < h; ++i) s.step();
        return s.configuration();
      },
      [](const Configuration& c) { return static_cast<double>(c.count(0)); },
      [](const Configuration& c) { return static_cast<double>(c.count(1)); });

  // Single-interaction rounds (max_round = 1): each round is one draw from
  // the exact ordered-pair law, so the collapsed engine must realise the
  // sequential chain distribution step for step.
  const Moments collapsed = collect(
      kTrials, horizon, 5000,
      [&](std::uint64_t seed, Interactions h) {
        CollapsedSimulator s(usd, Configuration({0, 25, 20, 15}), seed,
                             {.max_round = 1});
        for (Interactions i = 0; i < h; ++i) s.step_round(1);
        return s.configuration();
      },
      [](const Configuration& c) { return static_cast<double>(c.count(0)); },
      [](const Configuration& c) { return static_cast<double>(c.count(1)); });

  const Moments* engines[] = {&fast, &table, &virt, &graph, &collapsed};
  const char* names[] = {"fast", "table", "virtual", "graph", "collapsed"};
  for (int i = 1; i < 5; ++i) {
    const double tol_u = 4.5 * (engines[0]->u.sem() + engines[i]->u.sem());
    EXPECT_NEAR(engines[0]->u.mean(), engines[i]->u.mean(), tol_u)
        << "u mismatch: fast vs " << names[i] << " at horizon " << horizon;
    const double tol_x = 4.5 * (engines[0]->x0.sem() + engines[i]->x0.sem());
    EXPECT_NEAR(engines[0]->x0.mean(), engines[i]->x0.mean(), tol_x)
        << "x0 mismatch: fast vs " << names[i] << " at horizon " << horizon;
  }
}

INSTANTIATE_TEST_SUITE_P(Horizons, HorizonTest,
                         ::testing::Values<Interactions>(1, 10, 100, 1000),
                         [](const ::testing::TestParamInfo<Interactions>& param_info) {
                           return "h" + std::to_string(param_info.param);
                         });

TEST(EngineEquivalenceTest, OneStepLawMatchesDriftOnEveryEngine) {
  // After exactly one interaction, P[u increased] must equal the drift
  // formula's clash probability for each engine.
  const UsdDrift drift({0, 25, 20, 15});
  const double p_clash = drift.prob_undecided_increase();
  constexpr int kTrials = 60000;
  const UndecidedStateDynamics usd(kK);
  const InteractionGraph clique = InteractionGraph::complete(static_cast<NodeId>(kN));

  int fast_clash = 0;
  int graph_clash = 0;
  int collapsed_clash = 0;
  for (int t = 0; t < kTrials; ++t) {
    UsdEngine e(kOpinions, 50000 + static_cast<std::uint64_t>(t));
    e.step();
    if (e.undecided() > 0) ++fast_clash;

    GraphSimulator g(usd, clique, agent_layout(), 90000 + static_cast<std::uint64_t>(t));
    g.step();
    if (g.count(UndecidedStateDynamics::kUndecided) > 0) ++graph_clash;

    CollapsedSimulator c(usd, Configuration({0, 25, 20, 15}),
                         130000 + static_cast<std::uint64_t>(t), {.max_round = 1});
    c.step_round(1);
    if (c.configuration().count(UndecidedStateDynamics::kUndecided) > 0) {
      ++collapsed_clash;
    }
  }
  EXPECT_NEAR(static_cast<double>(fast_clash) / kTrials, p_clash, 0.006);
  EXPECT_NEAR(static_cast<double>(graph_clash) / kTrials, p_clash, 0.006);
  EXPECT_NEAR(static_cast<double>(collapsed_clash) / kTrials, p_clash, 0.006);
}

TEST(EngineDeterminismTest, TableAndVirtualDispatchShareTrajectories) {
  // kTable and kVirtual are two dispatch modes of the *same* engine: they
  // draw the same pair from the same RNG stream and f is deterministic, so
  // with equal seeds the trajectories must be identical step for step, not
  // just distributionally.
  const UndecidedStateDynamics usd(kK);
  Simulator table(usd, Configuration({0, 25, 20, 15}), 1234,
                  Simulator::Engine::kTable);
  Simulator virt(usd, Configuration({0, 25, 20, 15}), 1234,
                 Simulator::Engine::kVirtual);
  for (int i = 0; i < 5000; ++i) {
    const bool changed_table = table.step();
    const bool changed_virt = virt.step();
    ASSERT_EQ(changed_table, changed_virt) << "diverged at interaction " << i;
    ASSERT_EQ(table.configuration(), virt.configuration())
        << "diverged at interaction " << i;
  }
  EXPECT_EQ(table.interactions(), virt.interactions());
}

TEST(EngineDeterminismTest, SameSeedReproducesRunOutcome) {
  const UndecidedStateDynamics usd(kK);
  Simulator a(usd, Configuration({0, 25, 20, 15}), 777);
  Simulator b(usd, Configuration({0, 25, 20, 15}), 777);
  const RunOutcome oa = a.run_until_stable(1'000'000);
  const RunOutcome ob = b.run_until_stable(1'000'000);
  EXPECT_EQ(oa.stabilized, ob.stabilized);
  EXPECT_EQ(oa.interactions, ob.interactions);
  EXPECT_EQ(oa.consensus, ob.consensus);
  EXPECT_EQ(a.configuration(), b.configuration());
}

TEST(EngineEquivalenceTest, StabilizationTimesShareDistribution) {
  // Full-run comparison: mean stabilization interactions across engines on
  // a biased two-party instance. The collapsed engine runs in exactness mode
  // (max_round = 1), so its stopping times follow the sequential law too.
  const UndecidedStateDynamics usd(2);
  constexpr int kTrials = 150;
  RunningStats fast_time;
  RunningStats table_time;
  RunningStats collapsed_time;
  for (int t = 0; t < kTrials; ++t) {
    UsdEngine e({70, 30}, 600 + static_cast<std::uint64_t>(t));
    e.run_until_stable(10'000'000);
    fast_time.add(static_cast<double>(e.interactions()));

    Simulator s(usd, Configuration({0, 70, 30}), 800 + static_cast<std::uint64_t>(t));
    s.set_stability_check_stride(1);  // per-step checks: exact stopping time
    const RunOutcome out = s.run_until_stable(10'000'000);
    ASSERT_TRUE(out.stabilized);
    table_time.add(static_cast<double>(out.interactions));

    CollapsedSimulator c(usd, Configuration({0, 70, 30}),
                         900'000 + static_cast<std::uint64_t>(t), {.max_round = 1});
    const RunOutcome cout_ = c.run_until_stable(10'000'000);
    ASSERT_TRUE(cout_.stabilized);
    collapsed_time.add(static_cast<double>(cout_.interactions));
  }
  EXPECT_NEAR(fast_time.mean(), table_time.mean(),
              4.5 * (fast_time.sem() + table_time.sem()));
  EXPECT_NEAR(fast_time.mean(), collapsed_time.mean(),
              4.5 * (fast_time.sem() + collapsed_time.sem()));
}

// --------------------------------------- scalar-kernel determinism anchor --

// Golden trajectories captured from the engines *before* the round-sampling
// hot path moved into the ppsim::kernels layer. The scalar kernel's contract
// is bit-identical draws to that historical inline code — these pins hold
// the anchor in place across any future kernel-layer refactor. (The values
// are draw-for-draw, not distributional: any change here means recorded
// archives and byte-identical-JSON sweep pins silently broke too.)

TEST(ScalarKernelGoldenTest, CollapsedAdaptiveRounds) {
  const UndecidedStateDynamics usd(3);
  CollapsedSimulator s(usd, Configuration({0, 40000, 35000, 25000}), 20250808);
  for (int r = 0; r < 25; ++r) s.step_round(1'000'000'000);
  EXPECT_EQ(s.interactions(), 83226);
  EXPECT_EQ(s.clamped_interactions(), 0);
  EXPECT_EQ(s.configuration().counts(),
            (std::vector<Count>{34971, 28142, 22808, 14079}));
}

TEST(ScalarKernelGoldenTest, CollapsedSingleDrawAliasPath) {
  const UndecidedStateDynamics usd(3);
  CollapsedSimulator s(usd, Configuration({0, 40, 35, 25}), 777,
                       {.max_round = 1});
  for (int r = 0; r < 500; ++r) s.step_round(1);
  EXPECT_EQ(s.interactions(), 500);
  EXPECT_EQ(s.configuration().counts(), (std::vector<Count>{13, 79, 5, 3}));
}

TEST(ScalarKernelGoldenTest, BatchedFixedRounds) {
  const UndecidedStateDynamics usd(3);
  BatchedSimulator s(usd, Configuration({0, 40000, 35000, 25000}), 424242);
  for (int r = 0; r < 25; ++r) s.step_round(1'000'000'000);
  EXPECT_EQ(s.interactions(), 156250);
  EXPECT_EQ(s.clamped_interactions(), 0);
  EXPECT_EQ(s.configuration().counts(),
            (std::vector<Count>{38294, 28796, 21403, 11507}));
}

TEST(ScalarKernelGoldenTest, FullRunsToStabilization) {
  const UndecidedStateDynamics usd(3);
  {
    CollapsedSimulator s(usd, Configuration({0, 4000, 3500, 2500}), 99);
    const RunOutcome out = s.run_until_stable(100'000'000);
    EXPECT_TRUE(out.stabilized);
    EXPECT_EQ(out.interactions, 111835);
    EXPECT_EQ(out.consensus, std::optional<Opinion>(0));
  }
  {
    BatchedSimulator s(usd, Configuration({0, 4000, 3500, 2500}), 99);
    const RunOutcome out = s.run_until_stable(100'000'000);
    EXPECT_TRUE(out.stabilized);
    EXPECT_EQ(out.interactions, 122500);
    EXPECT_EQ(out.consensus, std::optional<Opinion>(0));
  }
}

TEST(ScalarKernelGoldenTest, ExplicitScalarKernelEqualsDefault) {
  // Options::kernel = kScalar is the default; requesting it explicitly must
  // route through the same registry object and the same draws.
  const UndecidedStateDynamics usd(3);
  CollapsedSimulator::Options copts;
  copts.kernel = kernels::KernelKind::kScalar;
  CollapsedSimulator expl(usd, Configuration({0, 4000, 3500, 2500}), 5, copts);
  CollapsedSimulator dflt(usd, Configuration({0, 4000, 3500, 2500}), 5);
  EXPECT_EQ(&expl.kernel(), &dflt.kernel());
  for (int r = 0; r < 20; ++r) {
    expl.step_round(1'000'000);
    dflt.step_round(1'000'000);
    ASSERT_EQ(expl.configuration().counts(), dflt.configuration().counts());
  }
}

}  // namespace
}  // namespace ppsim
