// Checkpoint/resume: engine state snapshots continue bit-exact, and the
// acceptance pin for the trajectory archive — a recorded run killed at an
// arbitrary byte offset and resumed produces a final archive byte-identical
// to the uninterrupted one.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ppsim/analysis/hitting_times.hpp"
#include "ppsim/core/engine.hpp"
#include "ppsim/io/archive_run.hpp"
#include "ppsim/io/trajectory.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/check.hpp"

namespace ppsim {
namespace {

std::string tmp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& bytes,
                std::size_t size) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(size));
}

void expect_same_configuration(const Configuration& a, const Configuration& b) {
  ASSERT_EQ(a.num_states(), b.num_states());
  for (State s = 0; s < static_cast<State>(a.num_states()); ++s) {
    EXPECT_EQ(a.count(s), b.count(s)) << "state " << s;
  }
}

/// Snapshot mid-run, restore into a *fresh* engine (different seed, so only
/// the restored RNG state can explain agreement), continue both: the restored
/// engine must replay the original's draw sequence exactly.
void roundtrip_engine(EngineKind kind) {
  const UndecidedStateDynamics usd(3);
  const Configuration initial =
      UndecidedStateDynamics::initial_configuration({900, 600, 500});
  const Interactions seg1 = 50'000;
  const Interactions seg2 = 400'000;

  Engine original(kind, usd, initial, /*seed=*/42);
  original.run_until_stable(seg1);
  const EngineCheckpoint snapshot = original.checkpoint_state();
  EXPECT_EQ(snapshot.interactions, original.interactions());

  Engine restored(kind, usd, initial, /*seed=*/777);
  restored.restore_checkpoint(snapshot);
  expect_same_configuration(restored.configuration(), original.configuration());

  const RunOutcome a = original.run_until_stable(seg2);
  const RunOutcome b = restored.run_until_stable(seg2);
  EXPECT_EQ(a.interactions, b.interactions);
  EXPECT_EQ(a.stabilized, b.stabilized);
  EXPECT_EQ(a.clamped, b.clamped);
  expect_same_configuration(original.configuration(), restored.configuration());
}

TEST(EngineCheckpointTest, SequentialRoundtripContinuesBitExact) {
  roundtrip_engine(EngineKind::kSequential);
}

TEST(EngineCheckpointTest, BatchedRoundtripContinuesBitExact) {
  roundtrip_engine(EngineKind::kBatched);
}

TEST(EngineCheckpointTest, CollapsedRoundtripContinuesBitExact) {
  roundtrip_engine(EngineKind::kCollapsed);
}

io::ArchiveRunSpec acceptance_spec() {
  io::ArchiveRunSpec spec;
  spec.engine = EngineKind::kCollapsed;
  spec.protocol_name = "usd";
  spec.seed = 0xabcdef12u;
  spec.k = 3;
  spec.max_interactions = 5'000'000;
  spec.record_stride = 500;
  spec.checkpoint_every = 4'000;
  return spec;
}

// THE acceptance pin: record a collapsed run with checkpoints, kill it at an
// arbitrary byte offset (simulated by truncating a copy), resume, and
// require the resumed archive to be byte-identical to the uninterrupted one.
TEST(ArchiveResumeTest, TruncatedArchiveResumesToIdenticalBytes) {
  const UndecidedStateDynamics usd(3);
  const Configuration initial =
      UndecidedStateDynamics::initial_configuration({1200, 900, 900});
  const io::ArchiveChannels channels = io::usd_archive_channels(3);
  const io::ArchiveRunSpec spec = acceptance_spec();

  const std::string original = tmp_path("acceptance_original.pptraj");
  const RunOutcome full = io::record_run(usd, initial, channels, spec, original);
  EXPECT_TRUE(full.stabilized);
  const std::vector<std::uint8_t> golden = read_file(original);
  {
    io::TrajectoryReader check(original);
    ASSERT_GE(check.checkpoints().size(), 2u)
        << "spec must produce several checkpoints for the sweep to mean much";
  }

  const std::size_t size = golden.size();
  const std::vector<std::size_t> cuts = {
      0,        8,           40,           size / 8,     size / 4,
      size / 3, size / 2,    2 * size / 3, 3 * size / 4, size - 20,
      size - 1};
  const std::string chopped = tmp_path("acceptance_chop.pptraj");
  int resumed_ok = 0;
  for (const std::size_t cut : cuts) {
    write_file(chopped, golden, cut);
    std::optional<RunOutcome> out;
    try {
      out = io::resume_run(usd, initial, channels, chopped);
    } catch (const CheckFailure&) {
      // Legal only while the magic/header region itself is incomplete —
      // such a file is not an archive at all.
      EXPECT_LT(cut, std::size_t{64}) << "cut " << cut;
      continue;
    }
    ASSERT_TRUE(out.has_value()) << "cut " << cut;
    EXPECT_EQ(out->interactions, full.interactions) << "cut " << cut;
    EXPECT_EQ(out->stabilized, full.stabilized) << "cut " << cut;
    EXPECT_EQ(read_file(chopped), golden) << "cut " << cut;
    ++resumed_ok;
  }
  EXPECT_GE(resumed_ok, 7);
}

TEST(ArchiveResumeTest, FinishedArchiveHasNothingToResume) {
  const UndecidedStateDynamics usd(3);
  const Configuration initial =
      UndecidedStateDynamics::initial_configuration({500, 300, 200});
  const io::ArchiveChannels channels = io::usd_archive_channels(3);
  io::ArchiveRunSpec spec = acceptance_spec();
  spec.seed = 7;

  const std::string path = tmp_path("finished.pptraj");
  io::record_run(usd, initial, channels, spec, path);
  const std::vector<std::uint8_t> before = read_file(path);
  EXPECT_FALSE(io::resume_run(usd, initial, channels, path).has_value());
  EXPECT_EQ(read_file(path), before);  // resume of a finished run is a no-op
}

TEST(ArchiveResumeTest, ResumeRejectsMismatchedShape) {
  const UndecidedStateDynamics usd(3);
  const Configuration initial =
      UndecidedStateDynamics::initial_configuration({500, 300, 200});
  const io::ArchiveChannels channels = io::usd_archive_channels(3);
  io::ArchiveRunSpec spec = acceptance_spec();
  spec.seed = 11;

  const std::string path = tmp_path("mismatch.pptraj");
  io::record_run(usd, initial, channels, spec, path);
  // Chop off the end record so there is something to resume, then hand
  // resume_run a different population: the header must catch it.
  std::vector<std::uint8_t> bytes = read_file(path);
  write_file(path, bytes, bytes.size() - 4);
  const Configuration wrong_n =
      UndecidedStateDynamics::initial_configuration({400, 300, 200});
  EXPECT_THROW(io::resume_run(usd, wrong_n, channels, path), CheckFailure);
}

// Archive replay reproduces live-run statistics without re-simulating.
// record_stride = 1 makes the recorder sample at every engine observation
// (once per round), so the archived channels see exactly the clocks the
// live analysis loops see.
TEST(ArchiveReplayTest, ReplayMatchesLiveStatistics) {
  const UndecidedStateDynamics usd(3);
  const Configuration initial =
      UndecidedStateDynamics::initial_configuration({1100, 800, 600});
  const io::ArchiveChannels channels = io::usd_archive_channels(3);
  io::ArchiveRunSpec spec = acceptance_spec();
  spec.seed = 31337;
  spec.record_stride = 1;
  spec.checkpoint_every = 0;

  const std::string path = tmp_path("replay.pptraj");
  const RunOutcome recorded = io::record_run(usd, initial, channels, spec, path);
  const io::TrajectoryReader archive(path);

  // Live runs with the identical engine construction and seed.
  Engine live_stable(spec.engine, usd, initial, spec.seed,
                     {.round_divisor = spec.round_divisor},
                     {.tau_epsilon = spec.tau_epsilon});
  const UndecidedExcursion live_exc =
      max_undecided_over_run(live_stable, spec.max_interactions);

  const HittingResult stable = archive_time_until_stable(archive);
  EXPECT_TRUE(stable.hit);
  EXPECT_EQ(stable.interactions_used, recorded.interactions);
  EXPECT_EQ(stable.interactions_used, live_exc.interactions_used);
  EXPECT_EQ(stable.stabilized, live_exc.stabilized);

  const UndecidedExcursion replay_exc = archive_max_undecided(archive);
  EXPECT_EQ(replay_exc.max_undecided, live_exc.max_undecided);
  EXPECT_EQ(replay_exc.interactions_used, live_exc.interactions_used);

  // First-hitting of Δmax, replayed from the delta_max channel against the
  // live engine-facade measurement (both round-granular on the same rounds).
  const Count level = 600;
  Engine live_hit(spec.engine, usd, initial, spec.seed,
                  {.round_divisor = spec.round_divisor},
                  {.tau_epsilon = spec.tau_epsilon});
  const HittingResult live = time_until_delta_reaches(
      live_hit, level, spec.max_interactions);
  const HittingResult replay =
      archive_first_hit(archive, "delta_max", static_cast<double>(level));
  EXPECT_EQ(replay.hit, live.hit);
  if (live.hit) {
    EXPECT_EQ(replay.interactions_at_hit, live.interactions_at_hit);
  }
}

}  // namespace
}  // namespace ppsim
