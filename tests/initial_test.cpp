// Initial-configuration builders: exact population accounting, equal
// minorities, realised-bias guarantees, and the paper's Figure 1 setup.
#include "ppsim/analysis/initial.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "ppsim/analysis/bounds.hpp"
#include "ppsim/util/check.hpp"

namespace ppsim {
namespace {

TEST(AdversarialConfigTest, ExactPopulationAndEqualMinorities) {
  const InitialConfig c = adversarial_configuration(100000, 16, 500);
  EXPECT_EQ(c.population(), 100000);
  EXPECT_EQ(c.opinion_counts.size(), 16u);
  // all minorities identical
  std::set<Count> minority_levels(c.opinion_counts.begin() + 1, c.opinion_counts.end());
  EXPECT_EQ(minority_levels.size(), 1u);
  // realised bias within [requested, requested + k)
  EXPECT_GE(c.bias, 500);
  EXPECT_LT(c.bias, 500 + 16);
  EXPECT_EQ(c.majority() - c.minority(), c.bias);
}

TEST(AdversarialConfigTest, ZeroBiasStillValid) {
  const InitialConfig c = adversarial_configuration(1000, 8, 0);
  EXPECT_EQ(c.population(), 1000);
  EXPECT_GE(c.bias, 0);
  EXPECT_LT(c.bias, 8);
}

TEST(AdversarialConfigTest, SingleOpinionDegenerate) {
  const InitialConfig c = adversarial_configuration(50, 1, 0);
  EXPECT_EQ(c.opinion_counts.size(), 1u);
  EXPECT_EQ(c.opinion_counts[0], 50);
  EXPECT_EQ(c.bias, 0);
}

TEST(AdversarialConfigTest, ExactDivisibilityGivesRequestedBias) {
  // n = 1000, k = 4, bias = 100: (1000-100)/4 = 225 exactly, majority 325.
  const InitialConfig c = adversarial_configuration(1000, 4, 100);
  EXPECT_EQ(c.minority(), 225);
  EXPECT_EQ(c.majority(), 325);
  EXPECT_EQ(c.bias, 100);
}

TEST(AdversarialConfigTest, RejectsImpossibleInputs) {
  EXPECT_THROW(adversarial_configuration(5, 10, 0), CheckFailure);    // n < k
  EXPECT_THROW(adversarial_configuration(100, 4, -1), CheckFailure);  // negative
  EXPECT_THROW(adversarial_configuration(100, 4, 99), CheckFailure);  // no room
}

TEST(Figure1ConfigTest, MatchesPaperParameters) {
  // n = 10^6, k = 27 (= bounds::paper_k), bias = ceil(√(n ln n)) ≈ 3718.
  const Count n = 1'000'000;
  const std::size_t k = bounds::paper_k(n);
  ASSERT_EQ(k, 27u);
  const InitialConfig c = figure1_configuration(n, k);
  EXPECT_EQ(c.population(), n);
  const auto expected_bias =
      static_cast<Count>(std::ceil(std::sqrt(1e6 * std::log(1e6))));
  EXPECT_GE(c.bias, expected_bias);
  EXPECT_LT(c.bias, expected_bias + static_cast<Count>(k));
  // x_i(0) ≈ n/k for all opinions
  EXPECT_NEAR(static_cast<double>(c.minority()), 1e6 / 27.0, 200.0);
}

TEST(BalancedConfigTest, SpreadsRemainderEvenly) {
  const InitialConfig c = balanced_configuration(10, 3);  // 4, 3, 3
  EXPECT_EQ(c.opinion_counts, (std::vector<Count>{4, 3, 3}));
  EXPECT_EQ(c.bias, 1);
  const InitialConfig even = balanced_configuration(9, 3);
  EXPECT_EQ(even.opinion_counts, (std::vector<Count>{3, 3, 3}));
  EXPECT_EQ(even.bias, 0);
}

TEST(TwoPartyConfigTest, BiasBookkeeping) {
  const InitialConfig c = two_party_configuration(100, 60);
  EXPECT_EQ(c.opinion_counts, (std::vector<Count>{60, 40}));
  EXPECT_EQ(c.bias, 20);
  EXPECT_THROW(two_party_configuration(100, 40), CheckFailure);   // minority first
  EXPECT_THROW(two_party_configuration(100, 101), CheckFailure);  // too many
}

TEST(RandomConfigTest, SortedAndConserving) {
  Xoshiro256pp rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    const InitialConfig c = random_configuration(1000, 7, rng);
    EXPECT_EQ(c.population(), 1000);
    for (std::size_t i = 1; i < c.opinion_counts.size(); ++i) {
      EXPECT_LE(c.opinion_counts[i], c.opinion_counts[i - 1]);
    }
    EXPECT_EQ(c.bias, c.opinion_counts[0] - c.opinion_counts[1]);
  }
}

TEST(InitialConfigTest, BiasWithinTheoremLimitForPaperScale) {
  // The Figure 1 bias √(n ln n) is well inside Theorem 3.5's admissible
  // range (√n/(k ln n))^{1/4}·√(n ln n) — i.e. the lower bound applies to
  // the exact configuration the paper simulates.
  const Count n = 1'000'000;
  const std::size_t k = 27;
  const InitialConfig c = figure1_configuration(n, k);
  EXPECT_LT(static_cast<double>(c.bias), bounds::theorem35_max_bias(n, k));
}

}  // namespace
}  // namespace ppsim
