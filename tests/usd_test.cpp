// Undecided State Dynamics: transition semantics, engine bookkeeping,
// equivalence of the specialized engine with the generic simulator, and
// consensus behaviour under bias.
#include "ppsim/protocols/usd.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "ppsim/core/simulator.hpp"
#include "ppsim/core/runner.hpp"
#include "ppsim/util/check.hpp"
#include "ppsim/util/stats.hpp"

namespace ppsim {
namespace {

// ------------------------------------------------- protocol formulation ----

TEST(UsdProtocolTest, TransitionRulesMatchThePaper) {
  const UndecidedStateDynamics usd(3);
  const State bot = UndecidedStateDynamics::kUndecided;
  const State s1 = UndecidedStateDynamics::opinion_state(0);
  const State s2 = UndecidedStateDynamics::opinion_state(1);

  // f(s1, s2) = (⊥, ⊥) for distinct opinions
  EXPECT_EQ(usd.apply(s1, s2), (Transition{bot, bot}));
  EXPECT_EQ(usd.apply(s2, s1), (Transition{bot, bot}));
  // f(s, ⊥) = (s, s), both orders
  EXPECT_EQ(usd.apply(s1, bot), (Transition{s1, s1}));
  EXPECT_EQ(usd.apply(bot, s1), (Transition{s1, s1}));
  // identity otherwise
  EXPECT_EQ(usd.apply(s1, s1), (Transition{s1, s1}));
  EXPECT_EQ(usd.apply(bot, bot), (Transition{bot, bot}));
}

TEST(UsdProtocolTest, OutputMapsOpinionsAndUndecided) {
  const UndecidedStateDynamics usd(2);
  EXPECT_FALSE(usd.output(UndecidedStateDynamics::kUndecided).has_value());
  EXPECT_EQ(*usd.output(1), 0u);
  EXPECT_EQ(*usd.output(2), 1u);
  EXPECT_THROW(usd.output(3), CheckFailure);
}

TEST(UsdProtocolTest, StateSpaceIsKPlusOne) {
  EXPECT_EQ(UndecidedStateDynamics(1).num_states(), 2u);
  EXPECT_EQ(UndecidedStateDynamics(27).num_states(), 28u);
  EXPECT_THROW(UndecidedStateDynamics(0), CheckFailure);
}

// --------------------------------------------------------------- engine ----

TEST(UsdEngineTest, ConstructionAndAccessors) {
  UsdEngine engine({50, 30, 20}, 5, 1);
  EXPECT_EQ(engine.population(), 105);
  EXPECT_EQ(engine.num_opinions(), 3u);
  EXPECT_EQ(engine.undecided(), 5);
  EXPECT_EQ(engine.opinion_count(0), 50);
  EXPECT_EQ(engine.opinion_count(2), 20);
  EXPECT_EQ(engine.surviving_opinions(), 3u);
  EXPECT_EQ(engine.max_opinion_count(), 50);
  EXPECT_EQ(engine.min_opinion_count(), 20);
  EXPECT_EQ(engine.delta_max(), 30);
  EXPECT_THROW(engine.opinion_count(3), CheckFailure);
}

TEST(UsdEngineTest, RejectsBadConstruction) {
  EXPECT_THROW(UsdEngine({}, 1), CheckFailure);
  EXPECT_THROW(UsdEngine({-1, 2}, 1), CheckFailure);
  EXPECT_THROW(UsdEngine({1}, -1, 1), CheckFailure);
  EXPECT_THROW(UsdEngine({1}, 0, 1), CheckFailure);  // population 1
}

TEST(UsdEngineTest, PopulationConservedOverRun) {
  UsdEngine engine({400, 300, 300}, 7);
  for (int i = 0; i < 20000; ++i) {
    engine.step();
    const auto& c = engine.counts();
    ASSERT_EQ(std::accumulate(c.begin(), c.end(), Count{0}), 1000);
  }
}

TEST(UsdEngineTest, StabilizationDetection) {
  // Monochromatic opinion: stable from the start.
  UsdEngine mono({10, 0}, 1);
  EXPECT_TRUE(mono.stabilized());
  ASSERT_TRUE(mono.winner().has_value());
  EXPECT_EQ(*mono.winner(), 0u);

  // All undecided: stable, no winner.
  UsdEngine all_undecided({0, 0}, 10, 1);
  EXPECT_TRUE(all_undecided.stabilized());
  EXPECT_FALSE(all_undecided.winner().has_value());

  // Active configuration.
  UsdEngine active({5, 5}, 1);
  EXPECT_FALSE(active.stabilized());
  EXPECT_FALSE(active.winner().has_value());

  // Opinion + undecided: adoption still possible.
  UsdEngine adopt({5, 0}, 5, 1);
  EXPECT_FALSE(adopt.stabilized());
}

TEST(UsdEngineTest, TwoAgentClashThenAbsorbed) {
  // Two agents of different opinions must clash to all-undecided (the only
  // reachable stable state for n = 2 without bias).
  UsdEngine engine({1, 1}, 42);
  EXPECT_TRUE(engine.run_until_stable(100));
  EXPECT_EQ(engine.undecided(), 2);
  EXPECT_FALSE(engine.winner().has_value());
}

TEST(UsdEngineTest, StepReportsStateChanges) {
  // From all-same-opinion-plus-one-other every non-null step changes counts.
  UsdEngine engine({2, 2}, 3);
  int changes = 0;
  for (int i = 0; i < 50 && !engine.stabilized(); ++i) {
    if (engine.step()) ++changes;
  }
  EXPECT_GT(changes, 0);
}

TEST(UsdEngineTest, DeterministicForSeed) {
  UsdEngine a({600, 400}, 31337);
  UsdEngine b({600, 400}, 31337);
  a.run_until_stable(1'000'000);
  b.run_until_stable(1'000'000);
  EXPECT_EQ(a.interactions(), b.interactions());
  EXPECT_EQ(a.counts(), b.counts());
}

TEST(UsdEngineTest, SnapshotMatchesCounts) {
  UsdEngine engine({30, 20, 10}, 4, 9);
  for (int i = 0; i < 100; ++i) engine.step();
  const Configuration snap = engine.snapshot();
  EXPECT_EQ(snap.counts(), engine.counts());
  EXPECT_EQ(snap.population(), engine.population());
}

TEST(UsdEngineTest, RunObservedVisitsEveryInteraction) {
  UsdEngine engine({50, 50}, 77);
  Interactions observed = 0;
  engine.run_observed(1000, [&](const UsdEngine&) { ++observed; });
  EXPECT_EQ(observed, engine.interactions());
}

TEST(UsdEngineTest, RunUntilPredicate) {
  UsdEngine engine({500, 500}, 13);
  const bool hit = engine.run_until(
      1'000'000, [](const UsdEngine& e) { return e.undecided() >= 100; });
  EXPECT_TRUE(hit);
  EXPECT_GE(engine.undecided(), 100);
}

// -------------------------------------------- engine/simulator agreement ----

TEST(UsdEngineTest, DistributionMatchesGenericSimulator) {
  // The specialized engine and the generic table-driven simulator implement
  // the same Markov chain. Compare the mean undecided count after a fixed
  // number of interactions over many trials; the two means must agree
  // within Monte-Carlo error.
  constexpr int kTrials = 300;
  constexpr Interactions kSteps = 2000;
  RunningStats engine_u;
  RunningStats simulator_u;
  const UndecidedStateDynamics usd(3);
  for (int t = 0; t < kTrials; ++t) {
    UsdEngine engine({40, 30, 30}, 500 + static_cast<std::uint64_t>(t));
    for (Interactions i = 0; i < kSteps; ++i) engine.step();
    engine_u.add(static_cast<double>(engine.undecided()));

    Simulator sim(usd, Configuration({0, 40, 30, 30}),
                  90000 + static_cast<std::uint64_t>(t));
    for (Interactions i = 0; i < kSteps; ++i) sim.step();
    simulator_u.add(
        static_cast<double>(sim.configuration().count(UndecidedStateDynamics::kUndecided)));
  }
  const double tolerance = 4.0 * (engine_u.sem() + simulator_u.sem());
  EXPECT_NEAR(engine_u.mean(), simulator_u.mean(), tolerance);
}

// ----------------------------------------------------- consensus quality ----

TEST(UsdEngineTest, LargeBiasMajorityWinsAllTrials) {
  // n = 4000, k = 2, bias 800 >> √(n ln n) ≈ 182: the majority must win in
  // every one of 20 trials (failure probability is cosmically small).
  auto trial = [](std::uint64_t seed, std::size_t) {
    UsdEngine engine({2400, 1600}, seed);
    engine.run_until_stable(50'000'000);
    TrialResult r;
    r.stabilized = engine.stabilized();
    r.winner = engine.winner();
    r.parallel_time = engine.time();
    return r;
  };
  const auto results = run_trials(trial, 20, 4242, 0);
  for (const auto& r : results) {
    ASSERT_TRUE(r.stabilized);
    ASSERT_TRUE(r.winner.has_value());
    EXPECT_EQ(*r.winner, 0u);
  }
}

TEST(UsdEngineTest, MultiOpinionBiasMajorityWins) {
  // k = 8, majority has a huge lead: opinion 0 wins.
  std::vector<Count> counts(8, 100);
  counts[0] = 400;
  auto trial = [&counts](std::uint64_t seed, std::size_t) {
    UsdEngine engine(counts, seed);
    engine.run_until_stable(100'000'000);
    TrialResult r;
    r.stabilized = engine.stabilized();
    r.winner = engine.winner();
    return r;
  };
  const auto results = run_trials(trial, 10, 777, 0);
  for (const auto& r : results) {
    ASSERT_TRUE(r.stabilized);
    ASSERT_TRUE(r.winner.has_value());
    EXPECT_EQ(*r.winner, 0u);
  }
}

TEST(UsdEngineTest, SurvivingOpinionsMonotoneNonIncreasing) {
  UsdEngine engine({100, 100, 100, 100}, 21);
  std::size_t prev = engine.surviving_opinions();
  engine.run_observed(500'000, [&prev](const UsdEngine& e) {
    ASSERT_LE(e.surviving_opinions(), prev);
    prev = e.surviving_opinions();
  });
}

}  // namespace
}  // namespace ppsim
