// Closed-form bounds from the paper: hand-checked values, monotonicity,
// domain validation, and the relationships the paper states between them.
#include "ppsim/analysis/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ppsim/util/check.hpp"

namespace ppsim {
namespace {

TEST(BoundsTest, SettlePointFormula) {
  // n/2 - n/(4k)
  EXPECT_DOUBLE_EQ(bounds::usd_settle_point(1000, 5), 500.0 - 50.0);
  EXPECT_DOUBLE_EQ(bounds::usd_settle_point(1'000'000, 27),
                   500000.0 - 1'000'000.0 / 108.0);
}

TEST(BoundsTest, SettlePointIncreasesInK) {
  // More opinions -> more clashes -> more undecided at equilibrium.
  double prev = 0.0;
  for (std::size_t k = 2; k <= 64; k *= 2) {
    const double sp = bounds::usd_settle_point(100000, k);
    EXPECT_GT(sp, prev);
    prev = sp;
  }
  EXPECT_LT(prev, 50000.0);  // always below n/2
}

TEST(BoundsTest, Lemma31CeilingDominatesSettlePoint) {
  for (Count n : {Count{10000}, Count{100000}, Count{1000000}}) {
    for (std::size_t k : {2u, 8u, 27u, 64u}) {
      EXPECT_GT(bounds::lemma31_ceiling(n, k), bounds::usd_settle_point(n, k));
    }
  }
}

TEST(BoundsTest, Lemma31CeilingHandValue) {
  // n = 10^6, k = 27: n/2 - n/108 + 10n/676 + 3381·√(n·ln n).
  const double n = 1e6;
  const double expected = n / 2.0 - n / 108.0 + 10.0 * n / (26.0 * 26.0) +
                          (20.0 * 169.0 + 1.0) * std::sqrt(n * std::log(n));
  EXPECT_NEAR(bounds::lemma31_ceiling(1'000'000, 27), expected, 1e-6);
  EXPECT_THROW(bounds::lemma31_ceiling(1000, 1), CheckFailure);
}

TEST(BoundsTest, Theorem35LowerBoundValues) {
  // (k/25)·ln(√n/(k ln n)); hand check at n = 10^6, k = 27:
  // √n = 1000, k·ln n = 27·13.8155 ≈ 373.02, ln(2.681) ≈ 0.9862.
  const double lb = bounds::theorem35_parallel_lower_bound(1'000'000, 27);
  EXPECT_NEAR(lb, 27.0 / 25.0 * std::log(1000.0 / (27.0 * std::log(1e6))), 1e-9);
  EXPECT_GT(lb, 1.0);
  EXPECT_LT(lb, 1.2);
}

TEST(BoundsTest, Theorem35DegeneratesForLargeK) {
  // k so large that √n/(k ln n) <= 1: the bound is vacuous (0).
  EXPECT_DOUBLE_EQ(bounds::theorem35_parallel_lower_bound(10000, 100), 0.0);
}

TEST(BoundsTest, InteractionBoundIsNTimesParallel) {
  const Count n = 250000;
  const std::size_t k = 16;
  EXPECT_DOUBLE_EQ(bounds::theorem35_interaction_lower_bound(n, k),
                   static_cast<double>(n) * bounds::theorem35_parallel_lower_bound(n, k));
}

TEST(BoundsTest, LowerBoundBelowUpperBoundShape) {
  // The tightness claim: LB = Θ(k log(√n/(k log n))) <= UB = Θ(k log n)
  // pointwise (with the paper's constants, for all valid (n, k)).
  for (Count n : {Count{10000}, Count{100000}, Count{1000000}}) {
    for (std::size_t k : {4u, 8u, 16u, 32u}) {
      EXPECT_LT(bounds::theorem35_parallel_lower_bound(n, k),
                bounds::amir_parallel_upper_bound(n, k));
    }
  }
}

TEST(BoundsTest, MaxBiasExceedsWhpBias) {
  // Theorem 3.5 tolerates biases ω(√(n log n)) — strictly larger than the
  // sufficient-win bias, which is the paper's headline subtlety.
  for (Count n : {Count{100000}, Count{1000000}}) {
    for (std::size_t k : {8u, 27u}) {
      EXPECT_GT(bounds::theorem35_max_bias(n, k), bounds::whp_bias(n));
    }
  }
}

TEST(BoundsTest, WhpBiasHandValue) {
  EXPECT_NEAR(bounds::whp_bias(1'000'000), std::sqrt(1e6 * std::log(1e6)), 1e-9);
}

TEST(BoundsTest, LemmaBudgetsAndLevels) {
  EXPECT_DOUBLE_EQ(bounds::lemma33_interactions(1000, 10), 10.0 * 1000.0 / 25.0);
  EXPECT_DOUBLE_EQ(bounds::lemma34_interactions(1000, 10), 10.0 * 1000.0 / 24.0);
  EXPECT_DOUBLE_EQ(bounds::lemma33_start_level(1000, 10), 150.0);
  EXPECT_DOUBLE_EQ(bounds::lemma33_target_level(1000, 10), 200.0);
}

TEST(BoundsTest, EpochCountPositiveInValidRegime) {
  // The epoch count is Θ(log(√n/(k log n))) with a 1/4 constant in nats —
  // small at n = 10^6 (the theorem is asymptotic) but strictly positive and
  // growing in n.
  EXPECT_GT(bounds::theorem35_epochs(1'000'000, 8), 0.5);
  EXPECT_GT(bounds::theorem35_epochs(1'000'000, 27), 0.2);
  EXPECT_GT(bounds::theorem35_epochs(1'000'000'000'000, 8), 3.0);
  EXPECT_GT(bounds::theorem35_epochs(1'000'000'000'000, 8),
            bounds::theorem35_epochs(1'000'000, 8));
}

TEST(BoundsTest, OlivetoWittScale) {
  EXPECT_NEAR(bounds::oliveto_witt_escape_bound(0.1, 1320.0, 1.0),
              std::exp(-1.0), 1e-12);
  EXPECT_THROW(bounds::oliveto_witt_escape_bound(-0.1, 1.0, 1.0), CheckFailure);
}

TEST(BoundsTest, BernsteinTailKnownValue) {
  // t = 10, Σ = 50, M = 1: exp(-50/(50 + 10/3)).
  EXPECT_NEAR(bounds::bernstein_tail(10.0, 50.0, 1.0),
              std::exp(-50.0 / (50.0 + 10.0 / 3.0)), 1e-12);
}

TEST(BoundsTest, BernsteinTailDecreasesInT) {
  double prev = 1.0;
  for (double t = 1.0; t < 50.0; t += 1.0) {
    const double tail = bounds::bernstein_tail(t, 100.0, 2.0);
    EXPECT_LT(tail, prev);
    prev = tail;
  }
}

TEST(BoundsTest, Lemma32EscapeBoundMatchesBernsteinForm) {
  // N = T/(2q) steps: exponent = -(T²/8)/(N(p-q²) + 2T/3).
  const double T = 100.0;
  const double p = 0.2;
  const double q = 0.01;
  const double N = T / (2.0 * q);
  const double expected = std::exp(-(T * T / 8.0) / (N * (p - q * q) + 2.0 * T / 3.0));
  EXPECT_NEAR(bounds::lemma32_escape_bound(T, p, q, N), expected, 1e-12);
  EXPECT_THROW(bounds::lemma32_escape_bound(T, 0.01, 0.2, N), CheckFailure);  // q > p
}

TEST(BoundsTest, Lemma32ConditionScreening) {
  // Large T passes, tiny T fails.
  EXPECT_TRUE(bounds::lemma32_condition_holds(1e6, 0.2, 0.01, 1000));
  EXPECT_FALSE(bounds::lemma32_condition_holds(10.0, 0.2, 0.01, 1000));
}

TEST(BoundsTest, PaperKReproducesFigureParameters) {
  // The paper: n = 10^6 gives k = 27.
  EXPECT_EQ(bounds::paper_k(1'000'000), 27u);
}

TEST(BoundsTest, DomainChecks) {
  EXPECT_THROW(bounds::usd_settle_point(1, 2), CheckFailure);
  EXPECT_THROW(bounds::usd_settle_point(100, 0), CheckFailure);
  EXPECT_THROW(bounds::whp_bias(1), CheckFailure);
  EXPECT_THROW(bounds::paper_k(4), CheckFailure);
}

}  // namespace
}  // namespace ppsim
