// SweepRunner::run_job — the async-consumption sweep surface the service
// layer builds on: per-cell completion callbacks (fired by the last
// finisher), skip masks that hold cache-served cells empty at their original
// index, cooperative cancellation, and aggregate_sweep_cell as the shared
// (runner + cache replay) aggregation path.
#include "ppsim/core/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "ppsim/util/check.hpp"

namespace ppsim {
namespace {

SweepSpec counting_spec(unsigned threads, std::size_t cells = 3,
                        std::size_t trials = 4) {
  SweepSpec spec;
  spec.name = "sweep_job_test";
  spec.trials = trials;
  spec.base_seed = 2024;
  spec.threads = threads;
  spec.cells.resize(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    spec.cells[c].n = 10 * (c + 1);
    spec.cells[c].k = 2;
  }
  return spec;
}

SweepMetrics stream_trial(const SweepTrial& ctx) {
  return {{"stream_index", static_cast<double>(ctx.stream_index)},
          {"seed_bits", static_cast<double>(ctx.seed >> 11)}};
}

TEST(SweepJobTest, RunIsRunJobWithDefaults) {
  const SweepResult a = SweepRunner(counting_spec(2)).run(stream_trial);
  const SweepResult b =
      SweepRunner(counting_spec(2)).run_job(stream_trial, SweepJobOptions{});
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_FALSE(b.cancelled);
}

TEST(SweepJobTest, CallbackCarriesAggregatedCellsExactlyOnce) {
  std::mutex mutex;
  std::set<std::size_t> seen;
  SweepJobOptions opts;
  opts.on_cell = [&](const SweepCellResult& cr) {
    const std::lock_guard<std::mutex> lock(mutex);
    // Delivered once, already aggregated, with the final trial data.
    EXPECT_TRUE(seen.insert(cr.cell_index).second);
    EXPECT_EQ(cr.trials_run, 4u);
    EXPECT_EQ(cr.trials.size(), 4u);
    ASSERT_NE(cr.find("stream_index"), nullptr);
    EXPECT_EQ(cr.find("stream_index")->values.size(), 4u);
    EXPECT_DOUBLE_EQ(cr.values("stream_index")[0],
                     static_cast<double>(cr.cell_index * 4));
  };
  const SweepResult result =
      SweepRunner(counting_spec(4)).run_job(stream_trial, opts);
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_EQ(result.cells.size(), 3u);
}

TEST(SweepJobTest, SkippedCellsStayEmptyAtTheirOriginalIndex) {
  // The cache-hit path: the caller serves cells 0 and 2 itself and asks the
  // runner for cell 1 only. Cell 1 must keep stream indices 4..7 — the
  // seeding discipline indexes by cell position, so skipping must never
  // compact the grid.
  std::atomic<int> callbacks{0};
  SweepJobOptions opts;
  opts.skip = {true, false, true};
  opts.on_cell = [&](const SweepCellResult& cr) {
    ++callbacks;
    EXPECT_EQ(cr.cell_index, 1u);
  };
  const SweepResult result =
      SweepRunner(counting_spec(2)).run_job(stream_trial, opts);
  EXPECT_EQ(callbacks.load(), 1);
  ASSERT_EQ(result.cells.size(), 3u);
  EXPECT_EQ(result.cells[0].trials_run, 0u);
  EXPECT_TRUE(result.cells[0].trials.empty());
  EXPECT_TRUE(result.cells[0].aggregates.empty());
  EXPECT_EQ(result.cells[2].trials_run, 0u);
  const std::vector<double> streams = result.cells[1].values("stream_index");
  EXPECT_EQ(streams, (std::vector<double>{4, 5, 6, 7}));
  // And the executed cell's bytes equal the full run's cell 1.
  const SweepResult full = SweepRunner(counting_spec(2)).run(stream_trial);
  EXPECT_EQ(result.cells[1].trials, full.cells[1].trials);
}

TEST(SweepJobTest, SpliceAfterSkipReproducesTheFullRunByteForByte) {
  // The invariant the cell cache is built on: run cells {0,2} in one job and
  // cell {1} in another (skipping complements), splice the completed cells
  // together, and the assembled report is byte-identical to one cold run.
  const SweepResult full = SweepRunner(counting_spec(3)).run(stream_trial);
  SweepJobOptions first;
  first.skip = {false, true, false};
  SweepResult a = SweepRunner(counting_spec(2)).run_job(stream_trial, first);
  SweepJobOptions second;
  second.skip = {true, false, true};
  const SweepResult b =
      SweepRunner(counting_spec(2)).run_job(stream_trial, second);
  a.cells[1] = b.cells[1];
  EXPECT_EQ(a.to_json(), full.to_json());
}

TEST(SweepJobTest, SkipMaskMustMatchTheGrid) {
  SweepJobOptions opts;
  opts.skip = {true};  // 1 entry, 3 cells
  EXPECT_THROW(SweepRunner(counting_spec(1)).run_job(stream_trial, opts),
               CheckFailure);
}

TEST(SweepJobTest, PreSetCancelYieldsAnEmptyCancelledResult) {
  std::atomic<bool> cancel{true};
  std::atomic<int> ran{0};
  SweepJobOptions opts;
  opts.cancel = &cancel;
  opts.on_cell = [&](const SweepCellResult&) { ++ran; };
  const SweepResult result = SweepRunner(counting_spec(4)).run_job(
      [&](const SweepTrial& ctx) {
        ++ran;
        return stream_trial(ctx);
      },
      opts);
  EXPECT_TRUE(result.cancelled);
  EXPECT_EQ(ran.load(), 0);
  for (const SweepCellResult& cr : result.cells) {
    EXPECT_EQ(cr.trials_run, 0u);
    EXPECT_TRUE(cr.trials.empty());
  }
}

TEST(SweepJobTest, MidJobCancelDeliversOnlyFullyExecutedCells) {
  // Cancel from inside a trial of cell 1: cells whose every trial still ran
  // arrive complete and aggregated; interrupted cells come back empty, never
  // half-filled. (Which cells complete is schedule-dependent — the contract
  // is the dichotomy, not the exact set.)
  std::atomic<bool> cancel{false};
  std::mutex mutex;
  std::set<std::size_t> delivered;
  SweepJobOptions opts;
  opts.cancel = &cancel;
  opts.on_cell = [&](const SweepCellResult& cr) {
    const std::lock_guard<std::mutex> lock(mutex);
    delivered.insert(cr.cell_index);
    EXPECT_EQ(cr.trials.size(), cr.trials_run);
    EXPECT_FALSE(cr.aggregates.empty());
  };
  const SweepResult result =
      SweepRunner(counting_spec(2, /*cells=*/6, /*trials=*/8))
          .run_job(
              [&](const SweepTrial& ctx) {
                if (ctx.cell_index == 1 && ctx.trial == 2) {
                  cancel.store(true);
                }
                return stream_trial(ctx);
              },
              opts);
  EXPECT_TRUE(result.cancelled);
  for (const SweepCellResult& cr : result.cells) {
    if (delivered.count(cr.cell_index) > 0) {
      EXPECT_EQ(cr.trials.size(), cr.trials_run);
      EXPECT_GT(cr.trials_run, 0u);
    } else {
      EXPECT_EQ(cr.trials_run, 0u);
      EXPECT_TRUE(cr.trials.empty());
      EXPECT_TRUE(cr.aggregates.empty());
    }
  }
}

TEST(SweepJobTest, StaticPoolSupportsTheJobSurface) {
  // The legacy pool carries the same job semantics: callbacks, skip masks,
  // and byte-identity with the work-stealing path.
  SweepSpec spec = counting_spec(4);
  spec.scheduler = SweepSchedulerKind::kStaticPool;
  std::mutex mutex;
  std::set<std::size_t> seen;
  SweepJobOptions opts;
  opts.skip = {false, true, false};
  opts.on_cell = [&](const SweepCellResult& cr) {
    const std::lock_guard<std::mutex> lock(mutex);
    seen.insert(cr.cell_index);
  };
  const SweepResult pool = SweepRunner(spec).run_job(stream_trial, opts);
  EXPECT_EQ(seen, (std::set<std::size_t>{0, 2}));
  EXPECT_EQ(pool.cells[1].trials_run, 0u);
  const SweepResult ws =
      SweepRunner(counting_spec(4)).run_job(stream_trial, opts);
  EXPECT_EQ(pool.to_json(), ws.to_json());
}

TEST(SweepJobTest, AdaptiveJobsStreamConvergedCells) {
  SweepSpec spec = counting_spec(4, /*cells=*/2, /*trials=*/32);
  spec.stopping.adaptive = true;
  spec.stopping.rel_err = 0.2;
  spec.stopping.min_trials = 4;
  spec.stopping.metric = "seed_bits";
  std::mutex mutex;
  std::set<std::size_t> seen;
  SweepJobOptions opts;
  opts.on_cell = [&](const SweepCellResult& cr) {
    const std::lock_guard<std::mutex> lock(mutex);
    seen.insert(cr.cell_index);
    EXPECT_GE(cr.trials_run, 4u);
    EXPECT_LE(cr.trials_run, 32u);
  };
  const SweepResult result = SweepRunner(spec).run_job(stream_trial, opts);
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(result.to_json(), SweepRunner(spec).run(stream_trial).to_json());
}

TEST(SweepJobTest, AggregateSweepCellMatchesTheRunnerOutput) {
  // The cache replays stored raw trials through aggregate_sweep_cell; its
  // output must equal what the runner computed for the same data.
  const SweepResult full = SweepRunner(counting_spec(1)).run(stream_trial);
  for (const SweepCellResult& cr : full.cells) {
    SweepCellResult replay;
    replay.cell = cr.cell;
    replay.cell_index = cr.cell_index;
    replay.trials_requested = cr.trials_requested;
    replay.trials_run = cr.trials_run;
    replay.trials = cr.trials;
    aggregate_sweep_cell(replay);
    ASSERT_EQ(replay.aggregates.size(), cr.aggregates.size());
    for (std::size_t m = 0; m < cr.aggregates.size(); ++m) {
      EXPECT_EQ(replay.aggregates[m].metric, cr.aggregates[m].metric);
      EXPECT_EQ(replay.aggregates[m].values, cr.aggregates[m].values);
    }
  }
}

TEST(SweepJobTest, ErrorsStillPropagateThroughTheJobSurface) {
  SweepJobOptions opts;
  std::atomic<int> delivered{0};
  opts.on_cell = [&](const SweepCellResult&) { ++delivered; };
  EXPECT_THROW(
      SweepRunner(counting_spec(4)).run_job(
          [](const SweepTrial& ctx) -> SweepMetrics {
            if (ctx.cell_index == 2) throw std::runtime_error("boom");
            return {{"v", 1.0}};
          },
          opts),
      std::runtime_error);
}

}  // namespace
}  // namespace ppsim
