// CellCache: content-addressed storage of raw sweep-cell trial data.
//
// The invariant under test everywhere here: a cell served from cache and
// replayed through aggregate_sweep_cell() is byte-identical to the cell a
// cold run computes — the cache stores only raw trials, never derived
// aggregates, so there is no second code path that could drift.
#include "ppsim/cache/cell_cache.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ppsim/io/wire.hpp"
#include "ppsim/util/check.hpp"

namespace ppsim::cache {
namespace {

SweepSpec tiny_spec(std::size_t cells = 3, std::size_t trials = 4) {
  SweepSpec spec;
  spec.name = "cell_cache_test";
  spec.trials = trials;
  spec.base_seed = 77;
  spec.cells.resize(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    spec.cells[c].n = 100 + static_cast<Count>(c);
    spec.cells[c].k = 2;
    spec.cells[c].bias = 0.1;
  }
  return spec;
}

SweepMetrics stamp_trial(const SweepTrial& ctx) {
  return {{"stream_index", static_cast<double>(ctx.stream_index)},
          {"seed_bits", static_cast<double>(ctx.seed >> 11)}};
}

CachedCellData cached_from(const SweepCellResult& cr) {
  return {cr.trials_requested, cr.trials_run, cr.trials};
}

TEST(CanonicalCellKeyTest, KeysContentNotPresentation) {
  SweepSpec a = tiny_spec();
  const std::string key = canonical_cell_key(a, 1, "fn/v1");
  // Presentation-only fields don't move the key: sweep name, cell label,
  // thread count, scheduler choice (all pinned byte-invariant elsewhere).
  SweepSpec b = tiny_spec();
  b.name = "renamed";
  b.threads = 8;
  b.scheduler = SweepSchedulerKind::kStaticPool;
  b.cells[1].name = "labelled";
  EXPECT_EQ(canonical_cell_key(b, 1, "fn/v1"), key);
  // Content fields do: position, seed, trial cap, the trial fn identity,
  // any cell axis.
  EXPECT_NE(canonical_cell_key(a, 0, "fn/v1"), key);
  EXPECT_NE(canonical_cell_key(a, 1, "fn/v2"), key);
  SweepSpec seed = tiny_spec();
  seed.base_seed = 78;
  EXPECT_NE(canonical_cell_key(seed, 1, "fn/v1"), key);
  SweepSpec cap = tiny_spec();
  cap.trials = 5;
  EXPECT_NE(canonical_cell_key(cap, 1, "fn/v1"), key);
  SweepSpec axis = tiny_spec();
  axis.cells[1].bias = 0.2;
  EXPECT_NE(canonical_cell_key(axis, 1, "fn/v1"), key);
  SweepSpec kern = tiny_spec();
  kern.cells[1].kernel = kernels::KernelKind::kScalar;
  // Stamping the default explicitly is identity (value_or(spec.kernel)).
  EXPECT_EQ(canonical_cell_key(kern, 1, "fn/v1"), key);
  // The build version is embedded, so numeric-affecting rebuilds miss.
  EXPECT_NE(key.find("\"build\""), std::string::npos);
  EXPECT_NE(key.find("\"cell_index\": 1"), std::string::npos);
}

TEST(CanonicalCellKeyTest, HashIsSixteenHexDigitsOfFnv1a) {
  const std::string key = canonical_cell_key(tiny_spec(), 0, "fn");
  const std::string hash = cell_key_hash(key);
  ASSERT_EQ(hash.size(), 16u);
  char expected[17];
  std::snprintf(expected, sizeof expected, "%016llx",
                static_cast<unsigned long long>(io::fnv1a(key)));
  EXPECT_EQ(hash, expected);
}

TEST(CellCacheTest, MemoryHitsMissesAndLruEviction) {
  CellCache cache({.memory_capacity = 2, .disk_dir = ""});
  EXPECT_FALSE(cache.lookup("a").has_value());
  cache.insert("a", {4, 2, {{{"m", 1.0}}, {{"m", 2.0}}}});
  cache.insert("b", {4, 1, {{{"m", 3.0}}}});
  ASSERT_TRUE(cache.lookup("a").has_value());  // refreshes a
  EXPECT_EQ(cache.lookup("a")->trials_run, 2u);
  cache.insert("c", {4, 1, {{{"m", 4.0}}}});   // evicts b (LRU)
  EXPECT_FALSE(cache.lookup("b").has_value());
  EXPECT_TRUE(cache.lookup("a").has_value());
  EXPECT_TRUE(cache.lookup("c").has_value());
  const CellCacheStats s = cache.stats();
  EXPECT_EQ(s.memory_hits, 4u);  // a, a, a, c
  EXPECT_EQ(s.hits, 4u);
  EXPECT_EQ(s.disk_hits, 0u);
  EXPECT_EQ(s.misses, 2u);  // first "a", then evicted "b"
  EXPECT_EQ(s.insertions, 3u);
  EXPECT_EQ(s.evictions, 1u);
}

TEST(CellCacheTest, ReinsertUpdatesInPlaceWithoutEviction) {
  CellCache cache({.memory_capacity = 2, .disk_dir = ""});
  cache.insert("a", {2, 1, {{{"m", 1.0}}}});
  cache.insert("a", {2, 2, {{{"m", 1.0}}, {{"m", 5.0}}}});
  EXPECT_EQ(cache.lookup("a")->trials_run, 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(CellCacheTest, InsertRejectsInconsistentCounts) {
  CellCache cache({.memory_capacity = 2, .disk_dir = ""});
  EXPECT_THROW(cache.insert("x", {2, 2, {{{"m", 1.0}}}}), CheckFailure);
  EXPECT_THROW(cache.insert("x", {1, 2, {{{"m", 1.0}}, {{"m", 2.0}}}}),
               CheckFailure);
  EXPECT_THROW(CellCache({.memory_capacity = 0, .disk_dir = ""}),
               CheckFailure);
}

TEST(CellCacheTest, DiskBackSurvivesProcessBoundaries) {
  const std::string dir = testing::TempDir() + "/ppcell_disk";
  const CachedCellData data{4, 3,
                            {{{"m", 0.5}, {"x", -1.0}},
                             {{"m", 0.25}},
                             {{"m", 0.7071067811865476}}}};
  {
    CellCache writer({.memory_capacity = 4, .disk_dir = dir});
    writer.insert("key-1", data);
  }
  // A fresh cache (cold memory) over the same directory: first lookup is a
  // disk hit and promotes, second is a memory hit.
  CellCache reader({.memory_capacity = 4, .disk_dir = dir});
  const auto first = reader.lookup("key-1");
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->trials_requested, 4u);
  EXPECT_EQ(first->trials_run, 3u);
  EXPECT_EQ(first->trials, data.trials);
  ASSERT_TRUE(reader.lookup("key-1").has_value());
  const CellCacheStats s = reader.stats();
  EXPECT_EQ(s.disk_hits, 1u);
  EXPECT_EQ(s.memory_hits, 1u);
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 0u);
}

TEST(CellCacheTest, CorruptOrMismatchedDiskRecordsDegradeToMisses) {
  const std::string dir = testing::TempDir() + "/ppcell_corrupt";
  {
    CellCache writer({.memory_capacity = 4, .disk_dir = dir});
    writer.insert("victim", {1, 1, {{{"m", 1.0}}}});
  }
  const std::string path = dir + "/" + cell_key_hash("victim") + ".ppcell";
  // Flip one payload byte: the checksum catches it, lookup misses.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(10);
    f.put('\xff');
  }
  CellCache reader({.memory_capacity = 4, .disk_dir = dir});
  EXPECT_FALSE(reader.lookup("victim").has_value());
  EXPECT_EQ(reader.stats().misses, 1u);
  // A record stored under a colliding file name but a different canonical
  // key is rejected by the embedded-key comparison, not served wrongly.
  {
    CellCache writer({.memory_capacity = 4, .disk_dir = dir});
    writer.insert("other", {1, 1, {{{"m", 2.0}}}});
  }
  std::filesystem::rename(dir + "/" + cell_key_hash("other") + ".ppcell",
                          path);
  CellCache reader2({.memory_capacity = 4, .disk_dir = dir});
  EXPECT_FALSE(reader2.lookup("victim").has_value());
}

TEST(CellCacheTest, CachedReplaySplicesIntoAByteIdenticalReport) {
  // End-to-end over the job surface: cold-run a sweep while inserting every
  // cell; then "serve" the same spec with all cells skipped, filling each
  // from the cache + aggregate_sweep_cell. The two reports must be the same
  // bytes — the acceptance invariant of the whole cache layer.
  const SweepSpec spec = tiny_spec(4, 5);
  CellCache cache(
      {.memory_capacity = 8, .disk_dir = testing::TempDir() + "/ppcell_replay"});
  const SweepRunner runner(spec);
  const SweepResult cold = runner.run_job(stamp_trial, SweepJobOptions{});
  for (const SweepCellResult& cr : cold.cells) {
    cache.insert(canonical_cell_key(spec, cr.cell_index, "stamp/v1"),
                 cached_from(cr));
  }
  SweepJobOptions all_skipped;
  all_skipped.skip.assign(spec.cells.size(), true);
  SweepResult warm = runner.run_job(stamp_trial, all_skipped);
  for (std::size_t c = 0; c < spec.cells.size(); ++c) {
    const auto hit = cache.lookup(canonical_cell_key(spec, c, "stamp/v1"));
    ASSERT_TRUE(hit.has_value());
    SweepCellResult& cr = warm.cells[c];
    cr.trials_requested = hit->trials_requested;
    cr.trials_run = hit->trials_run;
    cr.trials = hit->trials;
    aggregate_sweep_cell(cr);
  }
  EXPECT_EQ(warm.to_json(), cold.to_json());
  EXPECT_EQ(cache.stats().hits, static_cast<std::uint64_t>(spec.cells.size()));
}

}  // namespace
}  // namespace ppsim::cache
