// Adaptive trial stopping (--trials auto): the quantile functions behind
// the Student-t interval, the streaming CI accumulator, the stopping rule's
// behavior through the real SweepRunner path, and a statistical calibration
// battery — over many independent adaptive runs the realized coverage of
// the final confidence interval must sit near its nominal level (fixed
// seeds, so the battery is deterministic and CI-stable).
#include "ppsim/analysis/streaming_ci.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "ppsim/core/sweep.hpp"
#include "ppsim/util/check.hpp"
#include "ppsim/util/rng.hpp"
#include "ppsim/util/stats.hpp"

namespace ppsim {
namespace {

TEST(QuantileTest, NormalQuantileMatchesTabulatedValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-6);
  EXPECT_NEAR(normal_quantile(0.95), 1.644854, 1e-6);
  EXPECT_NEAR(normal_quantile(0.841344746), 1.0, 1e-6);
  // Tail values exercise Acklam's tail branches.
  EXPECT_NEAR(normal_quantile(0.999), 3.090232, 1e-5);
  EXPECT_NEAR(normal_quantile(0.001), -3.090232, 1e-5);
}

TEST(QuantileTest, NormalQuantileIsAntisymmetric) {
  for (const double p : {0.6, 0.75, 0.9, 0.99, 0.9999}) {
    EXPECT_NEAR(normal_quantile(p), -normal_quantile(1.0 - p), 1e-8) << p;
  }
}

TEST(QuantileTest, StudentTMatchesTabulatedValues) {
  // dof 1 and 2 are exact closed forms; dof >= 3 is Cornish–Fisher.
  EXPECT_NEAR(student_t_quantile(0.975, 1), 12.7062, 1e-3);
  EXPECT_NEAR(student_t_quantile(0.975, 2), 4.30265, 1e-4);
  EXPECT_NEAR(student_t_quantile(0.975, 10), 2.22814, 2e-3);
  EXPECT_NEAR(student_t_quantile(0.975, 30), 2.04227, 2e-3);
  EXPECT_NEAR(student_t_quantile(0.95, 7), 1.89458, 2e-3);
  // Large dof converges to the normal quantile.
  EXPECT_NEAR(student_t_quantile(0.975, 100000), normal_quantile(0.975), 1e-4);
}

TEST(QuantileTest, PreconditionsAreChecked) {
  EXPECT_THROW(normal_quantile(0.0), CheckFailure);
  EXPECT_THROW(normal_quantile(1.0), CheckFailure);
  EXPECT_THROW(student_t_quantile(0.5, 0), CheckFailure);
  EXPECT_THROW(student_t_quantile(1.5, 3), CheckFailure);
}

TEST(MeanCiTest, KnownSmallSample) {
  // {1..5}: mean 3, sd sqrt(2.5), sem sqrt(0.5); t(0.975, 4) = 2.776445.
  RunningStats stats;
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) stats.add(x);
  const CiEstimate ci = mean_ci(stats, 0.95);
  EXPECT_EQ(ci.count, 5);
  EXPECT_DOUBLE_EQ(ci.mean, 3.0);
  EXPECT_NEAR(ci.half_width, 2.776445 * std::sqrt(0.5), 5e-3);
  EXPECT_NEAR(ci.relative_half_width(), ci.half_width / 3.0, 1e-12);
}

TEST(MeanCiTest, FewerThanTwoObservationsGiveInfiniteWidth) {
  RunningStats stats;
  EXPECT_TRUE(std::isinf(mean_ci(stats, 0.95).half_width));
  stats.add(42.0);
  EXPECT_TRUE(std::isinf(mean_ci(stats, 0.95).half_width));
  stats.add(42.0);
  EXPECT_FALSE(std::isinf(mean_ci(stats, 0.95).half_width));
}

TEST(MeanCiTest, RelativeHalfWidthEdgeCases) {
  CiEstimate degenerate;
  degenerate.mean = 0.0;
  degenerate.half_width = 0.0;
  EXPECT_DOUBLE_EQ(degenerate.relative_half_width(), 0.0);
  CiEstimate zero_mean;
  zero_mean.mean = 0.0;
  zero_mean.half_width = 1.0;
  EXPECT_TRUE(std::isinf(zero_mean.relative_half_width()));
}

TEST(StreamingCiTest, ConstantStreamSatisfiesAnyTolerance) {
  StreamingCi ci(0.95);
  EXPECT_FALSE(ci.within_relative_error(0.5));  // no data
  ci.add(7.0);
  EXPECT_FALSE(ci.within_relative_error(0.5));  // one observation
  ci.add(7.0);
  EXPECT_TRUE(ci.within_relative_error(1e-12));  // zero-width interval
}

TEST(StreamingCiTest, TightensWithMoreObservations) {
  // Alternating 9/11: mean 10, sd ~1. The relative half-width must shrink
  // below 5% eventually and be monotonically achievable.
  StreamingCi ci(0.95);
  int needed = -1;
  for (int i = 0; i < 4096; ++i) {
    ci.add(i % 2 == 0 ? 9.0 : 11.0);
    if (needed < 0 && ci.count() >= 2 && ci.within_relative_error(0.05)) {
      needed = i + 1;
    }
  }
  ASSERT_GT(needed, 2);
  EXPECT_LT(needed, 64);  // sem ~1/sqrt(n): a few dozen observations suffice
  EXPECT_TRUE(ci.within_relative_error(0.05));
  EXPECT_THROW(StreamingCi(0.0), CheckFailure);
  EXPECT_THROW(StreamingCi(1.0), CheckFailure);
}

// ---------------------------------------------------------------------------
// Stopping-rule behavior through the real SweepRunner adaptive path.
// ---------------------------------------------------------------------------

SweepSpec adaptive_spec(std::uint64_t seed, double rel_err,
                        std::size_t min_trials, std::size_t cap) {
  SweepSpec spec;
  spec.name = "adaptive";
  spec.base_seed = seed;
  spec.trials = cap;
  spec.cells.resize(1);
  spec.stopping.adaptive = true;
  spec.stopping.rel_err = rel_err;
  spec.stopping.confidence = 0.95;
  spec.stopping.min_trials = min_trials;
  spec.stopping.metric = "x";
  return spec;
}

// Approximately N(10, 2): 10 + 2 * (sum of 12 uniforms - 6), the classic
// Irwin–Hall construction. Deterministic per trial stream.
SweepMetrics noisy_trial(const SweepTrial& ctx) {
  double sum = 0.0;
  for (int i = 0; i < 12; ++i) {
    sum += static_cast<double>(ctx.rng() >> 11) * 0x1.0p-53;
  }
  return SweepMetrics{{"x", 10.0 + 2.0 * (sum - 6.0)}};
}

TEST(AdaptiveStoppingTest, ConstantMetricStopsAtMinTrials) {
  const SweepResult result =
      SweepRunner(adaptive_spec(1, 0.001, 8, 1024))
          .run([](const SweepTrial&) { return SweepMetrics{{"x", 5.0}}; });
  EXPECT_EQ(result.cells[0].trials_run, 8u);
  EXPECT_EQ(result.cells[0].trials_requested, 1024u);
}

TEST(AdaptiveStoppingTest, AbsentMetricStopsAtMinTrialsNotTheCap) {
  // A typo'd metric name must not silently burn the whole cap.
  SweepSpec spec = adaptive_spec(1, 0.05, 8, 1024);
  spec.stopping.metric = "no_such_metric";
  const SweepResult result = SweepRunner(spec).run(noisy_trial);
  EXPECT_EQ(result.cells[0].trials_run, 8u);
}

TEST(AdaptiveStoppingTest, TighterToleranceRunsMoreTrials) {
  const std::size_t loose =
      SweepRunner(adaptive_spec(7, 0.10, 4, 2048)).run(noisy_trial)
          .cells[0].trials_run;
  const std::size_t tight =
      SweepRunner(adaptive_spec(7, 0.02, 4, 2048)).run(noisy_trial)
          .cells[0].trials_run;
  EXPECT_GE(tight, loose);
  EXPECT_GT(tight, 4u);     // the tight tolerance cannot stop at the floor
  EXPECT_LT(tight, 2048u);  // but must converge well before the cap
}

TEST(AdaptiveStoppingTest, CapBoundsTheCellEvenWhenNeverConverged) {
  // rel_err far below what the noise allows within the cap: run to the cap.
  const SweepResult result =
      SweepRunner(adaptive_spec(3, 1e-6, 4, 64)).run(noisy_trial);
  EXPECT_EQ(result.cells[0].trials_run, 64u);
}

// ---------------------------------------------------------------------------
// Calibration battery (the satellite): realized CI coverage vs nominal.
// ---------------------------------------------------------------------------

TEST(AdaptiveStoppingTest, RealizedCoverageIsNearNominal) {
  // 250 independent adaptive runs over a metric with known true mean 10.
  // Each run stops by the rule (90% confidence, 2% relative tolerance) and
  // reports its final interval; the fraction of runs whose interval covers
  // the true mean must sit near 0.90. Adaptive stopping peeks at the data
  // (optional-stopping bias) and the metric is only approximately normal,
  // so the window is generous — but a broken quantile, a wrong sem, or a
  // rule that stops on the wrong prefix lands far outside it.
  constexpr int kReps = 250;
  constexpr double kTrueMean = 10.0;
  constexpr double kConfidence = 0.90;
  constexpr double kRelErr = 0.02;
  int covered = 0;
  std::vector<std::size_t> trials_run;
  for (int rep = 0; rep < kReps; ++rep) {
    SweepSpec spec = adaptive_spec(9000 + static_cast<std::uint64_t>(rep),
                                   kRelErr, 16, 2048);
    spec.stopping.confidence = kConfidence;
    const SweepResult result = SweepRunner(spec).run(noisy_trial);
    const SweepCellResult& cell = result.cells[0];
    trials_run.push_back(cell.trials_run);
    RunningStats stats;
    for (const double x : cell.values("x")) stats.add(x);
    ASSERT_EQ(stats.count(), static_cast<std::int64_t>(cell.trials_run));
    const CiEstimate ci = mean_ci(stats, kConfidence);
    // The stopping rule's own contract: the reported interval is within the
    // requested relative tolerance (or the cap was hit, which the bound on
    // trials_run below rules out).
    EXPECT_LE(ci.relative_half_width(), kRelErr) << "rep " << rep;
    if (std::abs(ci.mean - kTrueMean) <= ci.half_width) ++covered;
  }
  const double coverage = static_cast<double>(covered) / kReps;
  EXPECT_GE(coverage, 0.82) << "realized coverage " << coverage;
  EXPECT_LE(coverage, 0.98) << "realized coverage " << coverage;
  // Sanity on the stopping point: sem ~ 2/sqrt(n) and the target half-width
  // is 0.2, so n should land in the low hundreds — never at the floor or
  // the cap.
  for (const std::size_t n : trials_run) {
    EXPECT_GT(n, 16u);
    EXPECT_LT(n, 2048u);
  }
}

}  // namespace
}  // namespace ppsim
