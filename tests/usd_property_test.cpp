// Property-style parameterized sweeps over (n, k) grids: invariants that
// must hold for every population size and opinion count.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <tuple>

#include "ppsim/analysis/bounds.hpp"
#include "ppsim/analysis/drift.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/rng.hpp"

namespace ppsim {
namespace {

using NK = std::tuple<Count, std::size_t>;

class UsdGridTest : public ::testing::TestWithParam<NK> {
 protected:
  Count n() const { return std::get<0>(GetParam()); }
  std::size_t k() const { return std::get<1>(GetParam()); }
};

TEST_P(UsdGridTest, PopulationConservedThroughoutRun) {
  const InitialConfig init = balanced_configuration(n(), k());
  UsdEngine engine(init.opinion_counts, 1);
  for (int i = 0; i < 5000; ++i) {
    engine.step();
    const auto& c = engine.counts();
    ASSERT_EQ(std::accumulate(c.begin(), c.end(), Count{0}), n());
  }
}

TEST_P(UsdGridTest, CountsStayNonNegativeAndBounded) {
  const InitialConfig init = balanced_configuration(n(), k());
  UsdEngine engine(init.opinion_counts, 2);
  for (int i = 0; i < 5000; ++i) {
    engine.step();
    for (const Count c : engine.counts()) {
      ASSERT_GE(c, 0);
      ASSERT_LE(c, n());
    }
  }
}

TEST_P(UsdGridTest, UndecidedCannotExceedHalfPlusSlack) {
  // Coarse version of Lemma 3.1 valid at any scale: u(t) <= n/2 + O(√(n ln n)).
  // (The n/2 barrier comes from E[Δu] < 0 whenever u > n/2.)
  const InitialConfig init = balanced_configuration(n(), k());
  UsdEngine engine(init.opinion_counts, 3);
  const double cap =
      static_cast<double>(n()) / 2.0 +
      4.0 * std::sqrt(static_cast<double>(n()) * std::log(static_cast<double>(n())));
  Count max_u = 0;
  engine.run_observed(50 * n(), [&max_u](const UsdEngine& e) {
    max_u = std::max(max_u, e.undecided());
  });
  EXPECT_LT(static_cast<double>(max_u), cap);
}

TEST_P(UsdGridTest, DriftFormulasConsistentWithCounts) {
  // Algebraic identity: 2·P_inc - P_dec must equal Σ_i E[Δx_i]·(-1) ...
  // more directly, Σ_i E[Δx_i] + E[Δu] = 0 (agents are conserved).
  Xoshiro256pp rng(4);
  const InitialConfig init = random_configuration(n(), k(), rng);
  // put a third of agents into ⊥ to exercise all terms
  std::vector<Count> counts = init.opinion_counts;
  Count u = 0;
  for (auto& c : counts) {
    const Count take = c / 3;
    c -= take;
    u += take;
  }
  std::vector<Count> layout;
  layout.push_back(u);
  layout.insert(layout.end(), counts.begin(), counts.end());
  const UsdDrift drift(layout);
  double sum = drift.expected_undecided_change();
  for (Opinion i = 0; i < k(); ++i) sum += drift.expected_opinion_change(i);
  EXPECT_NEAR(sum, 0.0, 1e-12);
}

TEST_P(UsdGridTest, StabilizesWithinGenerousBudgetAndWinnerIsValid) {
  const InitialConfig init = figure1_configuration(n(), k());
  UsdEngine engine(init.opinion_counts, 5);
  // Budget: 400·k·ln(n) parallel time — far above the Amir et al. bound.
  const auto budget = static_cast<Interactions>(
      400.0 * static_cast<double>(k()) * std::log(static_cast<double>(n())) *
      static_cast<double>(n()));
  ASSERT_TRUE(engine.run_until_stable(budget))
      << "did not stabilize within " << budget << " interactions";
  if (engine.winner().has_value()) {
    EXPECT_LT(*engine.winner(), k());
    EXPECT_EQ(engine.opinion_count(*engine.winner()), n());
  } else {
    EXPECT_EQ(engine.undecided(), n());
  }
}

TEST_P(UsdGridTest, AdversarialBuilderProducesValidStart) {
  const InitialConfig init = figure1_configuration(n(), k());
  EXPECT_EQ(init.population(), n());
  EXPECT_EQ(init.opinion_counts.size(), k());
  for (std::size_t i = 1; i < k(); ++i) {
    EXPECT_EQ(init.opinion_counts[i], init.opinion_counts[1]);
  }
  EXPECT_GE(init.bias, static_cast<Count>(bounds::whp_bias(n())));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, UsdGridTest,
    ::testing::Combine(::testing::Values<Count>(1000, 5000, 20000),
                       ::testing::Values<std::size_t>(2, 3, 8, 16)),
    [](const ::testing::TestParamInfo<NK>& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_k" +
             std::to_string(std::get<1>(param_info.param));
    });

// --------------------------------------------------------- walk variance ----

class BiasSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(BiasSweepTest, LargerBiasNeverHurtsTheMajority) {
  // Win-rate sanity across the bias spectrum at small n: with bias
  // >= 4·√(n ln n) the majority wins essentially always.
  const Count n = 2000;
  const double multiplier = GetParam();
  const auto bias = static_cast<Count>(multiplier * bounds::whp_bias(n));
  const InitialConfig init = two_party_configuration(n, (n + bias) / 2);
  int wins = 0;
  constexpr int kTrials = 10;
  for (int t = 0; t < kTrials; ++t) {
    UsdEngine engine(init.opinion_counts, 1000 + static_cast<std::uint64_t>(t));
    engine.run_until_stable(10'000'000);
    if (engine.winner().has_value() && *engine.winner() == 0) ++wins;
  }
  if (multiplier >= 4.0) {
    EXPECT_EQ(wins, kTrials);
  } else {
    EXPECT_GE(wins, kTrials / 2);  // majority should still be favoured
  }
}

INSTANTIATE_TEST_SUITE_P(Multipliers, BiasSweepTest,
                         ::testing::Values(1.0, 2.0, 4.0, 6.0));

}  // namespace
}  // namespace ppsim
