// Scheduler determinism stress battery (the tentpole's pin): seeded
// randomized grids with deliberately skewed per-cell costs run at 1, 2, 8
// and 64 threads and must serialize byte-identical JSON every time — for
// fixed trial counts, for adaptive stopping, and differentially against the
// legacy static pool. Each case is kept to ~100 ms so the CI TSan lane can
// repeat the whole suite 50x (`ctest -R SweepStress --repeat until-fail:50`)
// and still finish in minutes.
//
// The trial metric is pure RNG + spin: cheap cells return after a handful
// of xorshift rounds, expensive cells after ~100x more, so trial completion
// order is thoroughly scrambled across runs while every reported number is
// a deterministic function of (base_seed, cell, trial).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "ppsim/core/sweep.hpp"
#include "ppsim/util/rng.hpp"

namespace ppsim {
namespace {

// Deterministic per-trial work: mixes the trial's private stream through a
// spin loop whose length is the cell's "cost" knob. Returns metrics that
// depend on every spin iteration, so skipping or reordering work would
// change the bytes.
SweepMetrics spin_trial(const SweepTrial& ctx) {
  const auto spins =
      static_cast<std::uint64_t>(ctx.cell.param("spins", 100.0));
  std::uint64_t acc = ctx.seed;
  for (std::uint64_t i = 0; i < spins; ++i) {
    acc ^= ctx.rng();
    acc = acc * 6364136223846793005ull + 1442695040888963407ull;
  }
  return SweepMetrics{
      {"digest", static_cast<double>(acc >> 11)},  // exact in a double
      {"draws", static_cast<double>(spins)},
  };
}

// A seeded random grid: 3-8 cells whose spin costs span two orders of
// magnitude, in shuffled order so expensive cells land at random submission
// positions (the convoy scenario the scheduler exists to fix).
SweepSpec random_spec(std::uint64_t grid_seed, unsigned threads) {
  Xoshiro256pp rng(grid_seed);
  SweepSpec spec;
  spec.name = "stress_" + std::to_string(grid_seed);
  spec.base_seed = grid_seed * 1000 + 7;
  spec.trials = 2 + static_cast<std::size_t>(rng() % 5);  // 2..6
  spec.threads = threads;
  const std::size_t cells = 3 + static_cast<std::size_t>(rng() % 6);  // 3..8
  for (std::size_t c = 0; c < cells; ++c) {
    SweepCell cell;
    cell.n = 100 + static_cast<Count>(rng() % 900);
    cell.k = 2 + static_cast<std::size_t>(rng() % 3);
    // Costs from ~40 to ~4000 spins: two orders of magnitude of skew.
    const double magnitude = static_cast<double>(rng() % 3);
    const double base = 40.0 + static_cast<double>(rng() % 60);
    double spins = base;
    for (double m = 0; m < magnitude; ++m) spins *= 10.0;
    cell.params = {{"spins", spins}};
    cell.name = "cell-" + std::to_string(c);
    spec.cells.push_back(cell);
  }
  return spec;
}

class SweepStressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SweepStressTest, FixedTrialsByteIdenticalAcrossThreadCounts) {
  const std::uint64_t grid_seed = GetParam();
  const std::string reference =
      SweepRunner(random_spec(grid_seed, 1)).run(spin_trial).to_json();
  for (const unsigned threads : {2u, 8u, 64u}) {
    const SweepResult result =
        SweepRunner(random_spec(grid_seed, threads)).run(spin_trial);
    EXPECT_EQ(reference, result.to_json())
        << "grid " << grid_seed << " threads " << threads;
  }
}

TEST_P(SweepStressTest, AdaptiveStoppingByteIdenticalAcrossThreadCounts) {
  const std::uint64_t grid_seed = GetParam();
  auto adaptive = [grid_seed](unsigned threads) {
    SweepSpec spec = random_spec(grid_seed, threads);
    spec.trials = 16;  // the cap
    spec.stopping.adaptive = true;
    spec.stopping.min_trials = 2;
    spec.stopping.rel_err = 0.05;
    spec.stopping.metric = "digest";
    return spec;
  };
  const SweepResult reference = SweepRunner(adaptive(1)).run(spin_trial);
  const std::string reference_json = reference.to_json();
  for (const SweepCellResult& cr : reference.cells) {
    EXPECT_GE(cr.trials_run, 2u);
    EXPECT_LE(cr.trials_run, 16u);
  }
  for (const unsigned threads : {2u, 8u, 64u}) {
    const SweepResult result = SweepRunner(adaptive(threads)).run(spin_trial);
    EXPECT_EQ(reference_json, result.to_json())
        << "grid " << grid_seed << " threads " << threads;
  }
}

TEST_P(SweepStressTest, StaticPoolDifferentialOracle) {
  // Same grid, both substrates, several thread counts: the scheduler swap
  // must be invisible in the bytes.
  const std::uint64_t grid_seed = GetParam();
  for (const unsigned threads : {1u, 8u}) {
    SweepSpec pool = random_spec(grid_seed, threads);
    pool.scheduler = SweepSchedulerKind::kStaticPool;
    const std::string pool_json = SweepRunner(pool).run(spin_trial).to_json();
    const std::string ws_json =
        SweepRunner(random_spec(grid_seed, threads)).run(spin_trial).to_json();
    EXPECT_EQ(pool_json, ws_json)
        << "grid " << grid_seed << " threads " << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(SeededGrids, SweepStressTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace ppsim
