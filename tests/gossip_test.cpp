// Gossip engine: conservation, exact one-round expectations against analytic
// values, stability semantics, USD-gossip behaviour, and md(c).
#include "ppsim/core/gossip.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ppsim/protocols/usd_gossip.hpp"
#include "ppsim/util/check.hpp"
#include "ppsim/util/stats.hpp"

namespace ppsim {
namespace {

TEST(GossipEngineTest, RejectsBadConstruction) {
  const UsdGossipRule rule(2);
  EXPECT_THROW(GossipEngine(rule, Configuration({1, 1}), 1), CheckFailure);  // 2 states vs 3
  EXPECT_THROW(GossipEngine(rule, Configuration({1, 0, 0}), 1), CheckFailure);  // n < 2
}

TEST(GossipEngineTest, PopulationConservedEachRound) {
  const UsdGossipRule rule(3);
  GossipEngine engine(rule, rule.initial({40, 30, 30}), 5);
  for (int r = 0; r < 50; ++r) {
    engine.step_round();
    ASSERT_EQ(engine.configuration().population(), 100);
  }
  EXPECT_EQ(engine.rounds(), 50);
}

TEST(GossipEngineTest, DeterministicGivenSeed) {
  const UsdGossipRule rule(2);
  GossipEngine a(rule, rule.initial({60, 40}), 77);
  GossipEngine b(rule, rule.initial({60, 40}), 77);
  for (int r = 0; r < 20; ++r) {
    a.step_round();
    b.step_round();
    ASSERT_EQ(a.configuration(), b.configuration());
  }
}

TEST(GossipEngineTest, MonochromaticIsStable) {
  const UsdGossipRule rule(2);
  GossipEngine engine(rule, rule.initial({100, 0}), 1);
  EXPECT_TRUE(engine.is_stable());
  const GossipOutcome out = engine.run_until_stable(100);
  EXPECT_TRUE(out.stabilized);
  EXPECT_EQ(out.rounds, 0);
}

TEST(GossipEngineTest, UsdGossipReachesConsensusWithBias) {
  const UsdGossipRule rule(2);
  GossipEngine engine(rule, rule.initial({700, 300}), 3);
  const GossipOutcome out = engine.run_until_stable(100000);
  ASSERT_TRUE(out.stabilized);
  // Strong bias: opinion 0 must win.
  EXPECT_EQ(engine.configuration().count(1), 700 + 300);
}

TEST(GossipEngineTest, OneRoundExpectationMatchesAnalytic) {
  // In a PULL round from (x_A, x_B), an A-agent becomes ⊥ iff it sees a B
  // agent: P = x_B/(n-1). Expected #A after one round:
  //   E[A'] = x_A·(1 - x_B/(n-1)) + u·x_A/(n-1)   (u = 0 here).
  const UsdGossipRule rule(2);
  constexpr Count kA = 600;
  constexpr Count kB = 400;
  constexpr double kN1 = 999.0;
  RunningStats a_after;
  for (int trial = 0; trial < 400; ++trial) {
    GossipEngine engine(rule, rule.initial({kA, kB}), 1000 + static_cast<std::uint64_t>(trial));
    engine.step_round();
    a_after.add(static_cast<double>(engine.configuration().count(1)));
  }
  const double expected = kA * (1.0 - kB / kN1);
  EXPECT_NEAR(a_after.mean(), expected, 4.0 * a_after.sem() + 1.0);
}

TEST(GossipEngineTest, UndecidedAdoptionExpectation) {
  // An undecided agent adopts opinion A with probability x_A/(n-1).
  const UsdGossipRule rule(1);
  constexpr Count kU = 500;
  constexpr Count kA = 500;
  RunningStats a_after;
  for (int trial = 0; trial < 400; ++trial) {
    GossipEngine engine(rule, rule.initial({kA}, kU), 2000 + static_cast<std::uint64_t>(trial));
    engine.step_round();
    a_after.add(static_cast<double>(engine.configuration().count(1)));
  }
  const double expected = kA + kU * (kA / 999.0);
  EXPECT_NEAR(a_after.mean(), expected, 4.0 * a_after.sem() + 1.0);
}

TEST(UsdGossipRuleTest, UpdateSemantics) {
  const UsdGossipRule rule(3);
  // ⊥ adopts whatever it sees.
  EXPECT_EQ(rule.update(0, 2), 2u);
  EXPECT_EQ(rule.update(0, 0), 0u);
  // clash with a different opinion
  EXPECT_EQ(rule.update(1, 2), 0u);
  // same opinion or seen-⊥: no change
  EXPECT_EQ(rule.update(1, 1), 1u);
  EXPECT_EQ(rule.update(1, 0), 1u);
  EXPECT_THROW(rule.update(4, 0), CheckFailure);
}

TEST(UsdGossipRuleTest, InitialBuilder) {
  const UsdGossipRule rule(2);
  const Configuration c = rule.initial({30, 20}, 5);
  EXPECT_EQ(c.count(0), 5);
  EXPECT_EQ(c.count(1), 30);
  EXPECT_EQ(c.count(2), 20);
  EXPECT_THROW(rule.initial({1, 2, 3}), CheckFailure);  // wrong k
}

TEST(MonochromaticDistanceTest, KnownValues) {
  // Monochromatic: md = 1.
  EXPECT_DOUBLE_EQ(monochromatic_distance({100, 0, 0}), 1.0);
  // k equal opinions: md = k.
  EXPECT_DOUBLE_EQ(monochromatic_distance({50, 50, 50, 50}), 4.0);
  // Mixed: 1 + (1/2)² = 1.25.
  EXPECT_DOUBLE_EQ(monochromatic_distance({100, 50}), 1.25);
  EXPECT_THROW(monochromatic_distance({0, 0}), CheckFailure);
  EXPECT_THROW(monochromatic_distance({-1, 5}), CheckFailure);
}

TEST(MonochromaticDistanceTest, BoundedByK) {
  Xoshiro256pp rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Count> counts;
    const std::size_t k = 2 + rng.bounded(8);
    for (std::size_t i = 0; i < k; ++i) {
      counts.push_back(1 + static_cast<Count>(rng.bounded(100)));
    }
    const double md = monochromatic_distance(counts);
    EXPECT_GE(md, 1.0);
    EXPECT_LE(md, static_cast<double>(k));
  }
}

}  // namespace
}  // namespace ppsim
