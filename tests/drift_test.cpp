// UsdDrift: the paper's one-step conditional expectations, validated both
// against hand-computed values and against Monte-Carlo single-interaction
// averages from the real engine.
#include "ppsim/analysis/drift.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ppsim/util/check.hpp"
#include "ppsim/util/stats.hpp"

namespace ppsim {
namespace {

TEST(UsdDriftTest, ConstructionValidation) {
  EXPECT_THROW(UsdDrift({5}), CheckFailure);        // no opinions
  EXPECT_THROW(UsdDrift({1, -1}), CheckFailure);    // negative
  EXPECT_THROW(UsdDrift({1, 0}), CheckFailure);     // n = 1
  const UsdDrift d({2, 5, 3});
  EXPECT_EQ(d.n(), 10);
  EXPECT_EQ(d.u(), 2);
  EXPECT_EQ(d.x(0), 5);
  EXPECT_EQ(d.x(1), 3);
  EXPECT_EQ(d.k(), 2u);
}

TEST(UsdDriftTest, HandComputedProbabilities) {
  // u = 4, x = (4, 2), n = 10, N2 = 90.
  const UsdDrift d({4, 4, 2});
  EXPECT_NEAR(d.prob_undecided_decrease(), 2.0 * 4 * 6 / 90.0, 1e-12);
  // clash mass: x1·(n-u-x1) + x2·(n-u-x2) = 4·2 + 2·4 = 16
  EXPECT_NEAR(d.prob_undecided_increase(), 16.0 / 90.0, 1e-12);
  EXPECT_NEAR(d.expected_undecided_change(), 2 * 16.0 / 90.0 - 48.0 / 90.0, 1e-12);

  EXPECT_NEAR(d.prob_opinion_up(0), 2.0 * 4 * 4 / 90.0, 1e-12);
  EXPECT_NEAR(d.prob_opinion_down(0), 2.0 * 4 * 2 / 90.0, 1e-12);
  EXPECT_NEAR(d.expected_opinion_change(0), 2.0 * 4 * (8 - 10 + 4) / 90.0, 1e-12);
}

TEST(UsdDriftTest, ProbabilitiesSumBelowOne) {
  const UsdDrift d({10, 30, 20, 40});
  const double total = d.prob_undecided_decrease() + d.prob_undecided_increase();
  EXPECT_GT(total, 0.0);
  EXPECT_LE(total, 1.0);
}

TEST(UsdDriftTest, ThresholdIsZeroCrossing) {
  // E[Δx_i] > 0 iff u > (n - x_i)/2: check right at and around the
  // threshold. n = 100, x_i = 20 -> u_i = 40.
  const UsdDrift at({40, 20, 40});
  EXPECT_NEAR(at.expected_opinion_change(0), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(at.opinion_threshold(0), 40.0);
  const UsdDrift above({41, 20, 39});
  EXPECT_GT(above.expected_opinion_change(0), 0.0);
  const UsdDrift below({39, 20, 41});
  EXPECT_LT(below.expected_opinion_change(0), 0.0);
}

TEST(UsdDriftTest, ThresholdDecreasesInOpinionSize) {
  // "The larger x_i is, the smaller u_i is" (Section 2).
  const UsdDrift d({10, 50, 30, 10});
  EXPECT_LT(d.opinion_threshold(0), d.opinion_threshold(1));
  EXPECT_LT(d.opinion_threshold(1), d.opinion_threshold(2));
}

TEST(UsdDriftTest, DeltaDriftSignTracksGap) {
  // 2u - n + x_i + x_j > 0 with u large: the gap widens in expectation.
  const UsdDrift wide({60, 25, 15});
  EXPECT_GT(wide.expected_delta_change(0, 1), 0.0);
  EXPECT_LT(wide.expected_delta_change(1, 0), 0.0);
  // 2u - n + x_i + x_j < 0 (needs a third opinion holding most agents):
  // the gap narrows. Here 2·4 - 100 + 30 + 20 = -42.
  const UsdDrift narrow({4, 30, 20, 46});
  EXPECT_LT(narrow.expected_delta_change(0, 1), 0.0);
  // Antisymmetry.
  EXPECT_NEAR(wide.expected_delta_change(0, 1), -wide.expected_delta_change(1, 0),
              1e-15);
}

TEST(UsdDriftTest, EqualOpinionsHaveZeroDeltaDrift) {
  const UsdDrift d({20, 40, 40});
  EXPECT_DOUBLE_EQ(d.expected_delta_change(0, 1), 0.0);
}

TEST(UsdDriftTest, SettlePointFormula) {
  const UsdDrift d({0, 500, 250, 250});
  // n = 1000, k = 3: n/2 - n/(4k) = 500 - 83.33...
  EXPECT_NEAR(d.settle_point(), 500.0 - 1000.0 / 12.0, 1e-9);
}

// ------------------------------------------------- Monte-Carlo validation ----

class DriftMonteCarloTest : public ::testing::TestWithParam<std::vector<Count>> {};

TEST_P(DriftMonteCarloTest, OneStepExpectationsMatchEngine) {
  const std::vector<Count> counts = GetParam();
  const UsdDrift drift(counts);

  const std::vector<Count> opinions(counts.begin() + 1, counts.end());
  constexpr int kTrials = 120000;
  RunningStats du;
  RunningStats dx0;
  for (int t = 0; t < kTrials; ++t) {
    UsdEngine engine(opinions, counts[0], 10000 + static_cast<std::uint64_t>(t));
    const Count u_before = engine.undecided();
    const Count x0_before = engine.opinion_count(0);
    engine.step();
    du.add(static_cast<double>(engine.undecided() - u_before));
    dx0.add(static_cast<double>(engine.opinion_count(0) - x0_before));
  }
  EXPECT_NEAR(du.mean(), drift.expected_undecided_change(), 5.0 * du.sem())
      << "E[Δu] mismatch";
  EXPECT_NEAR(dx0.mean(), drift.expected_opinion_change(0), 5.0 * dx0.sem())
      << "E[Δx_0] mismatch";
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, DriftMonteCarloTest,
    ::testing::Values(std::vector<Count>{0, 30, 20},       // no undecided yet
                      std::vector<Count>{20, 15, 15},      // symmetric opinions
                      std::vector<Count>{40, 15, 5},       // near settle point
                      std::vector<Count>{10, 20, 15, 5},   // three opinions
                      std::vector<Count>{45, 5, 5, 5}));   // undecided-dominated

TEST(UsdDriftTest, DeltaUpProbabilityMatchesMonteCarloCounts) {
  // Directly validate P(Δ_01 increases) on a 3-opinion configuration where
  // both terms (adoption by 0, clash of 1 with opinion 2) contribute.
  const std::vector<Count> counts = {10, 20, 15, 5};
  const UsdDrift drift(counts);
  constexpr int kTrials = 200000;
  int up = 0;
  int down = 0;
  for (int t = 0; t < kTrials; ++t) {
    UsdEngine engine({20, 15, 5}, 10, 777000 + static_cast<std::uint64_t>(t));
    const Count before = engine.opinion_count(0) - engine.opinion_count(1);
    engine.step();
    const Count after = engine.opinion_count(0) - engine.opinion_count(1);
    if (after > before) ++up;
    if (after < before) ++down;
  }
  const double p_up = static_cast<double>(up) / kTrials;
  const double p_down = static_cast<double>(down) / kTrials;
  EXPECT_NEAR(p_up, drift.prob_delta_up(0, 1), 0.004);
  EXPECT_NEAR(p_down, drift.prob_delta_down(0, 1), 0.004);
}

}  // namespace
}  // namespace ppsim
