// TaskScheduler: completion of static and dynamically-submitted work,
// wait_idle() semantics across rounds, steal activity under deliberately
// imbalanced submission, oversubscription, and destructor draining. The
// scheduler makes no ordering promises, so every assertion is about *what*
// ran, never about *when* — each task writes its own slot or bumps an
// atomic.
#include "ppsim/core/task_scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <vector>

namespace ppsim {
namespace {

TEST(TaskSchedulerTest, ExecutesEverySubmittedTaskExactlyOnce) {
  constexpr std::size_t kTasks = 1000;
  std::vector<std::atomic<int>> hits(kTasks);
  {
    TaskScheduler scheduler(4);
    for (std::size_t i = 0; i < kTasks; ++i) {
      scheduler.submit([&hits, i] { hits[i].fetch_add(1); });
    }
    scheduler.wait_idle();
    EXPECT_EQ(scheduler.stats().executed, kTasks);
  }
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(TaskSchedulerTest, WaitIdleCoversTasksSubmittedByRunningTasks) {
  // The adaptive-stopping controller submits follow-up waves from inside a
  // completing task; wait_idle() must block until the transitive frontier is
  // empty, not just the initially submitted tasks.
  std::atomic<int> executed{0};
  TaskScheduler scheduler(4);
  // Each root task spawns two children, each child one grandchild:
  // 8 roots -> 16 children -> 16 grandchildren = 40 tasks.
  for (int root = 0; root < 8; ++root) {
    scheduler.submit([&scheduler, &executed] {
      executed.fetch_add(1);
      for (int child = 0; child < 2; ++child) {
        scheduler.submit([&scheduler, &executed] {
          executed.fetch_add(1);
          scheduler.submit([&executed] { executed.fetch_add(1); });
        });
      }
    });
  }
  scheduler.wait_idle();
  EXPECT_EQ(executed.load(), 8 + 16 + 16);
  EXPECT_EQ(scheduler.stats().executed, 40u);
}

TEST(TaskSchedulerTest, SchedulerIsReusableAcrossWaitIdleRounds) {
  TaskScheduler scheduler(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 50; ++i) {
      scheduler.submit([&count] { count.fetch_add(1); });
    }
    scheduler.wait_idle();
    EXPECT_EQ(count.load(), (round + 1) * 50) << "round " << round;
  }
  EXPECT_EQ(scheduler.stats().executed, 250u);
}

TEST(TaskSchedulerTest, WaitIdleWithNoWorkReturnsImmediately) {
  TaskScheduler scheduler(4);
  scheduler.wait_idle();  // must not hang
  scheduler.wait_idle();  // idempotent
  EXPECT_EQ(scheduler.stats().executed, 0u);
}

TEST(TaskSchedulerTest, SingleWorkerRunsEverything) {
  TaskScheduler scheduler(1);
  EXPECT_EQ(scheduler.thread_count(), 1u);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    scheduler.submit([&count, &scheduler] {
      if (count.fetch_add(1) == 0) {
        // Worker-local submission from the only worker.
        scheduler.submit([&count] { count.fetch_add(1); });
      }
    });
  }
  scheduler.wait_idle();
  EXPECT_EQ(count.load(), 201);
  EXPECT_EQ(scheduler.stats().steals, 0u);  // nobody to steal from
}

TEST(TaskSchedulerTest, ImbalancedSubmissionTriggersStealing) {
  // All roots funnel their children onto one worker's deque (worker-local
  // submission); with several workers and enough child work the other
  // workers must acquire it by stealing. Spin work makes each task long
  // enough that the queue cannot drain before thieves look.
  TaskScheduler scheduler(4);
  std::atomic<std::uint64_t> sink{0};
  std::atomic<int> executed{0};
  scheduler.submit([&] {
    for (int i = 0; i < 512; ++i) {
      scheduler.submit([&] {
        std::uint64_t x = 88172645463325252ull;
        for (int spin = 0; spin < 20'000; ++spin) {
          x ^= x << 13;
          x ^= x >> 7;
          x ^= x << 17;
        }
        sink.fetch_add(x, std::memory_order_relaxed);
        executed.fetch_add(1);
      });
    }
  });
  scheduler.wait_idle();
  EXPECT_EQ(executed.load(), 512);
  const TaskScheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.executed, 513u);
  if (scheduler.thread_count() > 1) {
    EXPECT_GT(stats.steals, 0u);
    EXPECT_GE(stats.stolen_tasks, stats.steals);
  }
}

TEST(TaskSchedulerTest, OversubscribedWorkerCountStillCompletes) {
  // 64 workers on a small host: most park immediately; correctness must not
  // depend on workers outnumbering (or matching) the hardware.
  TaskScheduler scheduler(64);
  EXPECT_EQ(scheduler.thread_count(), 64u);
  std::atomic<int> count{0};
  for (int i = 0; i < 500; ++i) {
    scheduler.submit([&count] { count.fetch_add(1); });
  }
  scheduler.wait_idle();
  EXPECT_EQ(count.load(), 500);
}

TEST(TaskSchedulerTest, DestructorDrainsPendingTasks) {
  // Destroying the scheduler implies wait_idle(): tasks submitted but not
  // yet run still execute before the workers join.
  std::atomic<int> count{0};
  {
    TaskScheduler scheduler(2);
    for (int i = 0; i < 300; ++i) {
      scheduler.submit([&count] { count.fetch_add(1); });
    }
    // No wait_idle() on purpose.
  }
  EXPECT_EQ(count.load(), 300);
}

TEST(TaskSchedulerTest, ZeroThreadRequestIsClampedToOne) {
  TaskScheduler scheduler(0);
  EXPECT_EQ(scheduler.thread_count(), 1u);
  std::atomic<int> count{0};
  scheduler.submit([&count] { count.fetch_add(1); });
  scheduler.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

}  // namespace
}  // namespace ppsim
