// Substrate protocols: leader election, epidemic spreading, the leader-driven
// phase clock, synchronized USD, and 3-majority gossip dynamics.
#include <gtest/gtest.h>

#include <algorithm>

#include "ppsim/core/runner.hpp"
#include "ppsim/core/simulator.hpp"
#include "ppsim/protocols/epidemic.hpp"
#include "ppsim/protocols/leader_election.hpp"
#include "ppsim/protocols/phase_clock.hpp"
#include "ppsim/protocols/synchronized_usd.hpp"
#include "ppsim/protocols/three_majority.hpp"
#include "ppsim/util/check.hpp"

namespace ppsim {
namespace {

// -------------------------------------------------------- leader election ----

TEST(LeaderElectionTest, OnlyLeaderPairsReact) {
  const LeaderElection le;
  using L = LeaderElection;
  EXPECT_EQ(le.apply(L::kLeader, L::kLeader), (Transition{L::kLeader, L::kFollower}));
  EXPECT_EQ(le.apply(L::kLeader, L::kFollower), (Transition{L::kLeader, L::kFollower}));
  EXPECT_EQ(le.apply(L::kFollower, L::kFollower),
            (Transition{L::kFollower, L::kFollower}));
}

TEST(LeaderElectionTest, ElectsExactlyOneFromAnyStart) {
  const LeaderElection le;
  for (Count initial_leaders : {2, 10, 100}) {
    Simulator sim(le, Configuration({100 - initial_leaders, initial_leaders}),
                  static_cast<std::uint64_t>(initial_leaders));
    const RunOutcome out = sim.run_until_stable(10'000'000);
    ASSERT_TRUE(out.stabilized);
    EXPECT_EQ(sim.configuration().count(LeaderElection::kLeader), 1);
  }
}

TEST(LeaderElectionTest, LeaderCountMonotone) {
  const LeaderElection le;
  Simulator sim(le, LeaderElection::initial(500), 9);
  Count prev = 500;
  for (int i = 0; i < 100000 && !sim.is_stable(); ++i) {
    sim.step();
    const Count now = sim.configuration().count(LeaderElection::kLeader);
    ASSERT_LE(now, prev);
    ASSERT_GE(now, 1);
    prev = now;
  }
}

// --------------------------------------------------------------- epidemic ----

TEST(EpidemicTest, NoSourcesIsStable) {
  const Epidemic e;
  Simulator sim(e, Epidemic::initial(100, 0), 1);
  EXPECT_TRUE(sim.is_stable());
}

TEST(EpidemicTest, InfectionIsMonotone) {
  const Epidemic e;
  Simulator sim(e, Epidemic::initial(300, 1), 5);
  Count prev = 1;
  while (!sim.is_stable()) {
    sim.step();
    const Count now = sim.configuration().count(Epidemic::kInfected);
    ASSERT_GE(now, prev);
    prev = now;
  }
  EXPECT_EQ(prev, 300);
}

// ------------------------------------------------------------ phase clock ----

TEST(PhaseClockTest, EncodingRoundTrip) {
  const PhaseClock clock(8);
  EXPECT_EQ(clock.num_states(), 16u);
  for (bool leader : {false, true}) {
    for (std::size_t p = 0; p < 8; ++p) {
      const State s = clock.encode(leader, p);
      EXPECT_EQ(clock.is_leader(s), leader);
      EXPECT_EQ(clock.phase(s), p);
    }
  }
  EXPECT_THROW(PhaseClock(3), CheckFailure);
}

TEST(PhaseClockTest, WindowedRingOrder) {
  const PhaseClock clock(8);
  EXPECT_TRUE(clock.ahead(1, 0));
  EXPECT_TRUE(clock.ahead(3, 0));
  EXPECT_FALSE(clock.ahead(0, 0));
  EXPECT_FALSE(clock.ahead(4, 0));  // outside the window (= P/2)
  EXPECT_TRUE(clock.ahead(0, 7));   // wraparound: 0 is one ahead of 7
  EXPECT_FALSE(clock.ahead(7, 0));
}

TEST(PhaseClockTest, LeaderAdvancesOnlyOnPhaseEcho) {
  const PhaseClock clock(8);
  const State leader2 = clock.encode(true, 2);
  // Meets a caught-up follower: leader increments.
  const Transition echo = clock.apply(leader2, clock.encode(false, 2));
  EXPECT_EQ(clock.phase(echo.initiator), 3u);
  // Meets a lagging follower: follower adopts, leader holds.
  const Transition lag = clock.apply(leader2, clock.encode(false, 1));
  EXPECT_EQ(clock.phase(lag.initiator), 2u);
  EXPECT_EQ(clock.phase(lag.responder), 2u);
}

TEST(PhaseClockTest, FollowersPropagateNewerPhase) {
  const PhaseClock clock(8);
  const Transition t = clock.apply(clock.encode(false, 5), clock.encode(false, 3));
  EXPECT_EQ(clock.phase(t.initiator), 5u);
  EXPECT_EQ(clock.phase(t.responder), 5u);
}

TEST(PhaseClockTest, ClockTicksAndFollowersStayClose) {
  const PhaseClock clock(16);
  Simulator sim(clock, clock.initial(200), 21);
  // Run 60 parallel-time units; the leader must have advanced several
  // phases, and no follower may be outside the half-ring window behind it.
  std::size_t max_leader_phase_seen = 0;
  for (int i = 0; i < 200 * 60; ++i) {
    sim.step();
    for (State s = 0; s < clock.num_states(); ++s) {
      if (!clock.is_leader(s) || sim.configuration().count(s) == 0) continue;
      max_leader_phase_seen = std::max(max_leader_phase_seen, clock.phase(s));
    }
  }
  EXPECT_GE(max_leader_phase_seen, 2u);
  // exactly one leader at all times
  Count leaders = 0;
  for (State s = 0; s < clock.num_states(); ++s) {
    if (clock.is_leader(s)) leaders += sim.configuration().count(s);
  }
  EXPECT_EQ(leaders, 1);
}

// -------------------------------------------------------- synchronized usd ----

TEST(SynchronizedUsdTest, EncodingRoundTrip) {
  const SynchronizedUsd p(3, 8);
  EXPECT_EQ(p.num_states(), 16u * 4u);
  for (State c = 0; c < 16; ++c) {
    for (State u = 0; u <= 3; ++u) {
      const State s = p.encode(c, u);
      EXPECT_EQ(p.clock_part(s), c);
      EXPECT_EQ(p.usd_part(s), u);
    }
  }
}

TEST(SynchronizedUsdTest, InitialPlacesOneLeader) {
  const SynchronizedUsd p(2, 8);
  const Configuration c = p.initial({30, 20});
  EXPECT_EQ(c.population(), 50);
  Count leaders = 0;
  for (State s = 0; s < p.num_states(); ++s) {
    if (p.clock().is_leader(p.clock_part(s))) leaders += c.count(s);
  }
  EXPECT_EQ(leaders, 1);
  EXPECT_THROW(p.initial({0, 0}), CheckFailure);
  EXPECT_THROW(p.initial({1}), CheckFailure);
}

TEST(SynchronizedUsdTest, GatingBlocksWrongParityRules) {
  const SynchronizedUsd p(2, 8);
  const auto& clock = p.clock();
  // Both followers at phase 0 (parity 0 = cancellation): adoption must NOT
  // fire, clash must.
  const State f0 = clock.encode(false, 0);
  const State op0 = 1;
  const State op1 = 2;
  const State bot = 0;
  const Transition clash = p.apply(p.encode(f0, op0), p.encode(f0, op1));
  EXPECT_EQ(p.usd_part(clash.initiator), bot);
  EXPECT_EQ(p.usd_part(clash.responder), bot);
  const Transition no_adopt = p.apply(p.encode(f0, op0), p.encode(f0, bot));
  EXPECT_EQ(p.usd_part(no_adopt.responder), bot);

  // Both at phase 1 (parity 1 = recruitment): adoption fires, clash doesn't.
  const State f1 = clock.encode(false, 1);
  const Transition adopt = p.apply(p.encode(f1, op0), p.encode(f1, bot));
  EXPECT_EQ(p.usd_part(adopt.responder), op0);
  const Transition no_clash = p.apply(p.encode(f1, op0), p.encode(f1, op1));
  EXPECT_EQ(p.usd_part(no_clash.initiator), op0);
  EXPECT_EQ(p.usd_part(no_clash.responder), op1);
}

TEST(SynchronizedUsdTest, ReachesOpinionConsensusUnderBias) {
  const SynchronizedUsd p(2, 8);
  Simulator sim(p, p.initial({140, 60}), 33);
  bool consensus = false;
  for (int chunk = 0; chunk < 4000 && !consensus; ++chunk) {
    for (int i = 0; i < 200; ++i) sim.step();
    consensus = p.consensus_opinion(sim.configuration()).has_value();
  }
  ASSERT_TRUE(consensus);
  EXPECT_EQ(*p.consensus_opinion(sim.configuration()), 0u);
}

// ------------------------------------------------------------ 3-majority ----

TEST(ThreeMajorityTest, RejectsBadConstruction) {
  EXPECT_THROW(ThreeMajorityEngine({}, 1), CheckFailure);
  EXPECT_THROW(ThreeMajorityEngine({2, 1}, 1), CheckFailure);  // n = 3 < 4
  EXPECT_THROW(ThreeMajorityEngine({-1, 10}, 1), CheckFailure);
}

TEST(ThreeMajorityTest, PopulationConserved) {
  ThreeMajorityEngine engine({40, 30, 30}, 7);
  for (int r = 0; r < 30; ++r) {
    engine.step_round();
    Count total = 0;
    for (std::size_t i = 0; i < engine.num_opinions(); ++i) {
      total += engine.opinion_count(static_cast<Opinion>(i));
    }
    ASSERT_EQ(total, 100);
  }
}

TEST(ThreeMajorityTest, MonochromaticIsConsensus) {
  ThreeMajorityEngine engine({50, 0}, 1);
  EXPECT_TRUE(engine.consensus());
  ASSERT_TRUE(engine.winner().has_value());
  EXPECT_EQ(*engine.winner(), 0u);
  EXPECT_TRUE(engine.run_until_consensus(10));
  EXPECT_EQ(engine.rounds(), 0);
}

TEST(ThreeMajorityTest, BiasedStartConvergesToMajority) {
  auto trial = [](std::uint64_t seed, std::size_t) {
    ThreeMajorityEngine engine({700, 300}, seed);
    TrialResult r;
    r.stabilized = engine.run_until_consensus(10000);
    r.winner = engine.winner();
    return r;
  };
  const auto results = run_trials(trial, 10, 31, 0);
  for (const auto& r : results) {
    ASSERT_TRUE(r.stabilized);
    EXPECT_EQ(*r.winner, 0u);
  }
}

TEST(ThreeMajorityTest, ConvergesInLogarithmicRounds) {
  // 3-majority with strong bias converges in O(log n) rounds; allow a wide
  // band for n = 10000.
  ThreeMajorityEngine engine({7000, 3000}, 17);
  ASSERT_TRUE(engine.run_until_consensus(1000));
  EXPECT_LT(engine.rounds(), 100);
}

}  // namespace
}  // namespace ppsim
