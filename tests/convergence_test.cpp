// Convergence vs stabilization (the paper's footnote-2 distinction): for
// USD the two coincide; for quantized averaging convergence strictly
// precedes stabilization.
#include "ppsim/analysis/convergence.hpp"

#include <gtest/gtest.h>

#include "ppsim/protocols/averaging_majority.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/check.hpp"

namespace ppsim {
namespace {

TEST(ConvergenceTest, UsdConvergenceEqualsStabilization) {
  // "In the Undecided State Dynamics, convergence and stabilization are
  // equivalent": the first time all agents output the winner is the moment
  // the configuration becomes monochromatic, which is absorbing.
  const UndecidedStateDynamics usd(2);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Simulator sim(usd, Configuration({0, 700, 300}), seed);
    const ConvergenceReport report = measure_convergence(sim, 0, 100'000'000);
    ASSERT_TRUE(report.stabilized);
    ASSERT_TRUE(report.final_output.has_value());
    ASSERT_EQ(*report.final_output, 0u);
    EXPECT_EQ(report.first_convergence, report.final_convergence);
    EXPECT_EQ(report.output_breaks, 0);
  }
}

TEST(ConvergenceTest, AveragingConvergesBeforeItStabilizes) {
  // With a = 40, b = 24 (d = 16, m = 64): all values turn positive long
  // before the averaging process quiesces into two adjacent levels.
  const AveragingMajority p(64);
  bool strict_gap_seen = false;
  for (std::uint64_t seed = 10; seed <= 14; ++seed) {
    Simulator sim(p, p.initial(40, 24), seed, Simulator::Engine::kVirtual);
    const ConvergenceReport report =
        measure_convergence(sim, AveragingMajority::kOpinionA, 200'000'000);
    ASSERT_TRUE(report.stabilized) << "seed " << seed;
    ASSERT_GE(report.first_convergence, 0);
    EXPECT_LE(report.first_convergence, report.stabilization);
    if (report.first_convergence < report.stabilization / 2) strict_gap_seen = true;
  }
  EXPECT_TRUE(strict_gap_seen)
      << "averaging should typically converge well before it stabilizes";
}

TEST(ConvergenceTest, NeverConvergesToTheWrongTarget) {
  const UndecidedStateDynamics usd(2);
  Simulator sim(usd, Configuration({0, 900, 100}), 3);
  // target = minority: the run stabilizes on the majority, so convergence
  // to opinion 1 never happens.
  const ConvergenceReport report = measure_convergence(sim, 1, 100'000'000);
  ASSERT_TRUE(report.stabilized);
  EXPECT_EQ(report.first_convergence, -1);
  EXPECT_EQ(report.final_convergence, -1);
  ASSERT_TRUE(report.final_output.has_value());
  EXPECT_EQ(*report.final_output, 0u);
}

TEST(ConvergenceTest, AlreadyConvergedAtStart) {
  const UndecidedStateDynamics usd(2);
  Simulator sim(usd, Configuration({0, 10, 0}), 1);
  const ConvergenceReport report = measure_convergence(sim, 0, 1000);
  EXPECT_TRUE(report.stabilized);
  EXPECT_EQ(report.first_convergence, 0);
  EXPECT_EQ(report.stabilization, 0);
}

TEST(ConvergenceTest, BudgetExhaustionReported) {
  const UndecidedStateDynamics usd(2);
  Simulator sim(usd, Configuration({0, 500, 500}), 3);
  const ConvergenceReport report = measure_convergence(sim, 0, 100);
  EXPECT_FALSE(report.stabilized);
  EXPECT_EQ(report.stabilization, -1);
  EXPECT_THROW(measure_convergence(sim, 0, -1), CheckFailure);
}

}  // namespace
}  // namespace ppsim
