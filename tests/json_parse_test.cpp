// JsonValue: strict RFC 8259 parsing for the sweep service protocol.
//
// Requests arrive from untrusted clients over a local socket, one JSON value
// per line, so the parser must reject malformed input loudly (CheckFailure,
// never UB), bound its recursion, and consume the whole line. Round-trip
// cases pair it with JsonObject: everything the writer emits must parse back
// to the same structure, since the service echoes specs into cache keys.
#include "ppsim/util/json_parse.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "ppsim/util/check.hpp"
#include "ppsim/util/json.hpp"

namespace ppsim {
namespace {

TEST(JsonParseTest, ParsesScalars) {
  EXPECT_TRUE(JsonValue::parse("null").is_null());
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_FALSE(JsonValue::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(JsonValue::parse("3.5").as_number(), 3.5);
  EXPECT_EQ(JsonValue::parse("-17").as_int(), -17);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
  EXPECT_DOUBLE_EQ(JsonValue::parse("1e-3").as_number(), 1e-3);
  EXPECT_DOUBLE_EQ(JsonValue::parse("2E+2").as_number(), 200.0);
}

TEST(JsonParseTest, ParsesContainersAndPreservesMemberOrder) {
  const JsonValue v =
      JsonValue::parse(R"({"b": [1, 2, {"x": true}], "a": null, "c": "s"})");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "b");
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_EQ(v.members()[2].first, "c");
  const JsonValue& arr = v.at("b");
  ASSERT_EQ(arr.items().size(), 3u);
  EXPECT_EQ(arr.items()[0].as_int(), 1);
  EXPECT_TRUE(arr.items()[2].at("x").as_bool());
  EXPECT_TRUE(v.at("a").is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParseTest, GettersFallBackOnlyWhenAbsent) {
  const JsonValue v = JsonValue::parse(R"({"n": 4, "s": "x", "b": true})");
  EXPECT_EQ(v.get_int("n", 0), 4);
  EXPECT_EQ(v.get_int("absent", 9), 9);
  EXPECT_EQ(v.get_string("s", ""), "x");
  EXPECT_EQ(v.get_string("absent", "d"), "d");
  EXPECT_TRUE(v.get_bool("b", false));
  EXPECT_DOUBLE_EQ(v.get_number("n", 0.0), 4.0);
  // Present-but-mistyped members throw instead of silently falling back.
  EXPECT_THROW(v.get_int("s", 0), CheckFailure);
  EXPECT_THROW(v.get_bool("n", false), CheckFailure);
}

TEST(JsonParseTest, DecodesStringEscapes) {
  const JsonValue v =
      JsonValue::parse(R"("a\"b\\c\/d\n\t\r\b\f\u0041\u00e9")");
  EXPECT_EQ(v.as_string(), "a\"b\\c/d\n\t\r\b\f"
                           "A\xc3\xa9");
  // Surrogate pair: U+1F600 encodes as 4 UTF-8 bytes.
  EXPECT_EQ(JsonValue::parse(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  const char* bad[] = {
      "",          "{",           "[1,]",      "{\"a\":}",  "{'a':1}",
      "tru",       "nulll",       "01",        "1.",        ".5",
      "+1",        "1e",          "--1",       "\"\\x\"",   "\"unterminated",
      "\"\\ud800\"",              // lone high surrogate
      "\"\\udc00\"",              // lone low surrogate
      "{\"a\":1,}",               // trailing comma
      "{\"a\":1 \"b\":2}",        // missing comma
      "[1] 2",                    // trailing bytes
      "NaN",       "Infinity",    "\"a\tb\"",  // raw control char
      "{\"a\":1,\"a\":2}",        // duplicate key
  };
  for (const char* text : bad) {
    EXPECT_THROW(JsonValue::parse(text), CheckFailure) << "input: " << text;
  }
}

TEST(JsonParseTest, TypeMismatchesThrow) {
  const JsonValue v = JsonValue::parse("[1]");
  EXPECT_THROW(v.as_bool(), CheckFailure);
  EXPECT_THROW(v.as_string(), CheckFailure);
  EXPECT_THROW(v.members(), CheckFailure);
  EXPECT_THROW(v.at("k"), CheckFailure);
  EXPECT_THROW(JsonValue::parse("1.5").as_int(), CheckFailure);
  EXPECT_THROW(JsonValue::parse("1e300").as_int(), CheckFailure);
}

TEST(JsonParseTest, DepthIsCapped) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_THROW(JsonValue::parse(deep), CheckFailure);
  // 60 levels is inside the cap.
  std::string ok;
  for (int i = 0; i < 60; ++i) ok += '[';
  for (int i = 0; i < 60; ++i) ok += ']';
  EXPECT_NO_THROW(JsonValue::parse(ok));
}

TEST(JsonParseTest, RoundTripsWriterOutput) {
  JsonObject obj;
  obj.field("name", "sweep \"q\"\n")
      .field("n", std::int64_t{100000})
      .field("bias", 0.7071067811865476)
      .field("ok", true)
      .field("values", std::vector<double>{0.1, 1e13, -0.0});
  const JsonValue v = JsonValue::parse(obj.str());
  EXPECT_EQ(v.at("name").as_string(), "sweep \"q\"\n");
  EXPECT_EQ(v.at("n").as_int(), 100000);
  EXPECT_EQ(v.at("bias").as_number(), 0.7071067811865476);
  EXPECT_TRUE(v.at("ok").as_bool());
  ASSERT_EQ(v.at("values").items().size(), 3u);
  EXPECT_EQ(v.at("values").items()[1].as_number(), 1e13);
  EXPECT_TRUE(std::signbit(v.at("values").items()[2].as_number()));
}

TEST(JsonParseTest, AcceptsSurroundingWhitespaceOnly) {
  EXPECT_EQ(JsonValue::parse(" \t\r\n 5 \n").as_int(), 5);
  EXPECT_THROW(JsonValue::parse("5 x"), CheckFailure);
}

TEST(JsonParseTest, HugeNumbersClampLikeStrtod) {
  EXPECT_TRUE(std::isinf(JsonValue::parse("1e999").as_number()));
  EXPECT_EQ(JsonValue::parse("1e-999").as_number(), 0.0);
}

}  // namespace
}  // namespace ppsim
