// Alias table + binomial/multinomial/hypergeometric samplers: moment checks,
// conservation, degenerate cases, and distribution-shape chi-square tests.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "ppsim/util/alias_table.hpp"
#include "ppsim/util/check.hpp"
#include "ppsim/util/random_variates.hpp"
#include "ppsim/util/rng.hpp"
#include "ppsim/util/stats.hpp"

namespace ppsim {
namespace {

// ---------------------------------------------------------------- alias ----

TEST(AliasTable, RejectsBadWeights) {
  EXPECT_THROW(AliasTable(std::vector<double>{}), CheckFailure);
  EXPECT_THROW(AliasTable(std::vector<double>{1.0, -0.5}), CheckFailure);
  EXPECT_THROW(AliasTable(std::vector<double>{0.0, 0.0}), CheckFailure);
}

TEST(AliasTable, NormalizesProbabilities) {
  AliasTable t(std::vector<double>{2.0, 6.0});
  EXPECT_DOUBLE_EQ(t.probability(0), 0.25);
  EXPECT_DOUBLE_EQ(t.probability(1), 0.75);
}

TEST(AliasTable, SingleCategoryAlwaysSampled) {
  AliasTable t(std::vector<double>{3.0});
  Xoshiro256pp rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(t.sample(rng), 0u);
}

TEST(AliasTable, ZeroWeightCategoryNeverSampled) {
  AliasTable t(std::vector<double>{1.0, 0.0, 1.0});
  Xoshiro256pp rng(2);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(t.sample(rng), 1u);
}

TEST(AliasTable, EmpiricalDistributionMatchesWeights) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0, 10.0};
  AliasTable t(weights);
  Xoshiro256pp rng(77);
  constexpr int kDraws = 200000;
  std::vector<std::int64_t> hits(weights.size(), 0);
  for (int i = 0; i < kDraws; ++i) ++hits[t.sample(rng)];
  std::vector<double> expected(weights.size());
  const double sum = std::accumulate(weights.begin(), weights.end(), 0.0);
  for (std::size_t c = 0; c < weights.size(); ++c) {
    expected[c] = weights[c] / sum * kDraws;
  }
  const double stat = chi_square_statistic(hits, expected);
  EXPECT_GT(chi_square_sf(stat, static_cast<int>(weights.size()) - 1), 1e-6);
}

// ------------------------------------------------------------- binomial ----

TEST(Binomial, DegenerateCases) {
  Xoshiro256pp rng(3);
  EXPECT_EQ(binomial(rng, 0, 0.5), 0);
  EXPECT_EQ(binomial(rng, 100, 0.0), 0);
  EXPECT_EQ(binomial(rng, 100, 1.0), 100);
  EXPECT_THROW(binomial(rng, -1, 0.5), CheckFailure);
}

TEST(Binomial, ClampsProbability) {
  Xoshiro256pp rng(3);
  EXPECT_EQ(binomial(rng, 10, -0.2), 0);
  EXPECT_EQ(binomial(rng, 10, 1.7), 10);
}

TEST(Binomial, MomentsMatchTheory) {
  Xoshiro256pp rng(17);
  constexpr std::int64_t kTrials = 400;
  constexpr double kP = 0.3;
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.add(static_cast<double>(binomial(rng, kTrials, kP)));
  }
  const double mean = kTrials * kP;
  const double var = kTrials * kP * (1 - kP);
  EXPECT_NEAR(stats.mean(), mean, 4.0 * std::sqrt(var / 20000.0) + 0.5);
  EXPECT_NEAR(stats.variance(), var, 0.1 * var);
}

// ----------------------------------------------------------- multinomial ----

TEST(Multinomial, ConservesTrials) {
  Xoshiro256pp rng(5);
  const std::vector<double> w = {0.1, 0.5, 0.2, 0.2};
  for (std::int64_t trials : {0ll, 1ll, 17ll, 1000ll, 123456ll}) {
    const auto out = multinomial(rng, trials, w);
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), std::int64_t{0}), trials);
  }
}

TEST(Multinomial, ZeroWeightBucketsGetNothing) {
  Xoshiro256pp rng(6);
  const auto out = multinomial(rng, 10000, std::vector<double>{1.0, 0.0, 1.0, 0.0});
  EXPECT_EQ(out[1], 0);
  EXPECT_EQ(out[3], 0);
  EXPECT_EQ(out[0] + out[2], 10000);
}

TEST(Multinomial, RejectsInvalidInput) {
  Xoshiro256pp rng(7);
  EXPECT_THROW(multinomial(rng, 5, std::vector<double>{1.0, -1.0}), CheckFailure);
  EXPECT_THROW(multinomial(rng, 5, std::vector<double>{0.0, 0.0}), CheckFailure);
  // zero trials with zero mass is fine
  const auto out = multinomial(rng, 0, std::vector<double>{0.0, 0.0});
  EXPECT_EQ(out[0] + out[1], 0);
}

TEST(Multinomial, IntegerWeightOverloadAgreesOnMarginals) {
  Xoshiro256pp rng(8);
  const std::vector<std::int64_t> w = {1, 2, 7};
  RunningStats bucket0;
  constexpr int kReps = 5000;
  constexpr std::int64_t kTrials = 100;
  for (int i = 0; i < kReps; ++i) {
    const auto out = multinomial(rng, kTrials, w);
    bucket0.add(static_cast<double>(out[0]));
  }
  EXPECT_NEAR(bucket0.mean(), kTrials * 0.1, 0.15);
}

TEST(Multinomial, MarginalsAreBinomial) {
  Xoshiro256pp rng(9);
  const std::vector<double> w = {0.25, 0.75};
  constexpr std::int64_t kTrials = 200;
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.add(static_cast<double>(multinomial(rng, kTrials, w)[0]));
  }
  EXPECT_NEAR(stats.mean(), 50.0, 0.5);
  EXPECT_NEAR(stats.variance(), 200 * 0.25 * 0.75, 0.1 * 37.5);
}

// -------------------------------------------------------- hypergeometric ----

TEST(Hypergeometric, DegenerateCases) {
  Xoshiro256pp rng(10);
  EXPECT_EQ(hypergeometric(rng, 5, 5, 0), 0);
  EXPECT_EQ(hypergeometric(rng, 0, 10, 4), 0);
  EXPECT_EQ(hypergeometric(rng, 10, 0, 4), 4);
  EXPECT_EQ(hypergeometric(rng, 3, 3, 6), 3);  // draw everything
  EXPECT_THROW(hypergeometric(rng, 2, 2, 5), CheckFailure);
  EXPECT_THROW(hypergeometric(rng, -1, 2, 1), CheckFailure);
}

TEST(Hypergeometric, StaysInSupport) {
  Xoshiro256pp rng(11);
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t x = hypergeometric(rng, 7, 5, 6);
    EXPECT_GE(x, 1);  // max(0, draws - failures) = 1
    EXPECT_LE(x, 6);  // min(successes, draws)
  }
}

TEST(Hypergeometric, MomentsMatchTheory) {
  Xoshiro256pp rng(12);
  constexpr std::int64_t kS = 300;
  constexpr std::int64_t kF = 700;
  constexpr std::int64_t kD = 100;
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.add(static_cast<double>(hypergeometric(rng, kS, kF, kD)));
  }
  const double n = kS + kF;
  const double mean = kD * kS / n;
  const double var = kD * (kS / n) * (kF / n) * (n - kD) / (n - 1);
  EXPECT_NEAR(stats.mean(), mean, 0.2);
  EXPECT_NEAR(stats.variance(), var, 0.1 * var);
}

TEST(Hypergeometric, LargeDrawBranchMatchesMoments) {
  // draws > pool/2 exercises the complement reduction.
  Xoshiro256pp rng(13);
  constexpr std::int64_t kS = 40;
  constexpr std::int64_t kF = 60;
  constexpr std::int64_t kD = 80;
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.add(static_cast<double>(hypergeometric(rng, kS, kF, kD)));
  }
  const double n = kS + kF;
  const double mean = kD * kS / n;
  EXPECT_NEAR(stats.mean(), mean, 0.1);
}

// --------------------------- binomial stability at paper-scale parameters --

// The collapsed engine feeds the null-split binomial n up to the 2^53 count
// cap with p that can be extreme on both ends (active weight is a vanishing
// or an overwhelming fraction of n(n−1)). These pin libstdc++'s sampler in
// exactly those regimes: no overflow, no silent saturation, and the right
// first two moments.

TEST(BinomialStability, RejectsNaNProbability) {
  Xoshiro256pp rng(1);
  EXPECT_THROW(binomial(rng, 10, std::nan("")), CheckFailure);
}

TEST(BinomialStability, TinyPAtHugeNMatchesThePoissonLimit) {
  // Binomial(1e11, 1e-9) ≈ Poisson(100): mean 100, variance ~100. A naive
  // sampler walking the CDF from 0 in linear space would underflow the pmf
  // (log P(0) ≈ −100) or loop ~1e11 times; the real one must stay exact.
  Xoshiro256pp rng(2024);
  constexpr std::int64_t kN = 100'000'000'000;  // 1e11
  constexpr double kP = 1e-9;
  constexpr int kSamples = 2000;
  RunningStats stats;
  for (int i = 0; i < kSamples; ++i) {
    const std::int64_t x = binomial(rng, kN, kP);
    ASSERT_GE(x, 0);
    ASSERT_LE(x, kN);
    stats.add(static_cast<double>(x));
  }
  const double mean = static_cast<double>(kN) * kP;  // 100
  EXPECT_NEAR(stats.mean(), mean, 6.0 * std::sqrt(mean / kSamples));
  EXPECT_NEAR(stats.variance(), mean, 0.2 * mean);
}

TEST(BinomialStability, ReflectionAtPNearOne) {
  // p > 0.5 exercises the sampler's internal reflection: the complement
  // count Binomial(n, 1−p) must come out right, not the raw walk.
  Xoshiro256pp rng(2025);
  constexpr std::int64_t kN = 100'000'000'000;
  constexpr double kP = 1.0 - 1e-9;
  constexpr int kSamples = 2000;
  RunningStats complement;
  for (int i = 0; i < kSamples; ++i) {
    const std::int64_t x = binomial(rng, kN, kP);
    ASSERT_GE(x, 0);
    ASSERT_LE(x, kN);
    complement.add(static_cast<double>(kN - x));
  }
  const double mean = static_cast<double>(kN) * 1e-9;  // 100
  EXPECT_NEAR(complement.mean(), mean, 6.0 * std::sqrt(mean / kSamples));
}

TEST(BinomialStability, HalfPAtTheCountCapKeepsExactMoments) {
  // n = 2^53 is the engines' kMaxPopulation guard: every count is still
  // exactly representable in a double. sd = sqrt(n)/2 ≈ 4.7e7.
  Xoshiro256pp rng(2026);
  constexpr std::int64_t kN = std::int64_t{1} << 53;
  constexpr int kSamples = 400;
  const double mean = static_cast<double>(kN) / 2.0;
  const double sd = std::sqrt(static_cast<double>(kN)) / 2.0;
  RunningStats stats;
  for (int i = 0; i < kSamples; ++i) {
    const std::int64_t x = binomial(rng, kN, 0.5);
    ASSERT_GE(x, 0);
    ASSERT_LE(x, kN);
    // Any individual draw beyond 8σ of the mean indicates a broken sampler,
    // not bad luck (P < 1e-15 per draw).
    ASSERT_NEAR(static_cast<double>(x), mean, 8.0 * sd);
    stats.add(static_cast<double>(x));
  }
  EXPECT_NEAR(stats.mean(), mean, 6.0 * sd / std::sqrt(kSamples));
}

TEST(BinomialStability, ExtremeTailsStayInBounds) {
  // 6σ two-sided bound at several (n, p) corners of the engines' operating
  // envelope; each corner gets enough draws to catch systematic bias.
  struct Corner {
    std::int64_t n;
    double p;
  };
  const std::vector<Corner> corners = {
      {std::int64_t{1} << 53, 1e-12}, {std::int64_t{1} << 53, 1.0 - 1e-12},
      {1'000'000'000'000, 0.3},       {1'000'000'000'000, 0.7},
  };
  Xoshiro256pp rng(2027);
  for (const Corner& c : corners) {
    RunningStats stats;
    constexpr int kSamples = 200;
    const double mean = static_cast<double>(c.n) * c.p;
    const double sd = std::sqrt(mean * (1.0 - c.p));
    for (int i = 0; i < kSamples; ++i) {
      const std::int64_t x = binomial(rng, c.n, c.p);
      ASSERT_GE(x, 0) << "n=" << c.n << " p=" << c.p;
      ASSERT_LE(x, c.n) << "n=" << c.n << " p=" << c.p;
      stats.add(static_cast<double>(x));
    }
    EXPECT_NEAR(stats.mean(), mean, 6.0 * sd / std::sqrt(kSamples) + 1e-9)
        << "n=" << c.n << " p=" << c.p;
  }
}

TEST(MultinomialInto, MatchesTheAllocatingOverloadDrawForDraw) {
  // The kernels' hot path uses the buffer-reusing overload; it must consume
  // the RNG identically to the original (the wrapper contract).
  const std::vector<double> weights = {3.0, 1.0, 0.5, 7.5, 0.0, 2.0};
  Xoshiro256pp a(99);
  Xoshiro256pp b(99);
  std::vector<std::int64_t> buffer(1, 123);  // wrong size: must be resized
  for (int round = 0; round < 50; ++round) {
    multinomial_into(a, 1000 + round, weights, buffer);
    EXPECT_EQ(buffer, multinomial(b, 1000 + round, weights));
  }
  EXPECT_EQ(a(), b());  // identical stream positions afterwards
}

}  // namespace
}  // namespace ppsim
