// Recorder edge cases: stride validation, stride larger than the whole run,
// forced final samples, channel registration rules, and TSV round-trip of
// the recorded series.
#include "ppsim/core/recorder.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ppsim/util/check.hpp"

namespace ppsim {
namespace {

Recorder::Projection count_of(State s) {
  return [s](const Configuration& c, Interactions) {
    return static_cast<double>(c.count(s));
  };
}

TEST(RecorderTest, RejectsNonPositiveStride) {
  EXPECT_THROW(Recorder(0), CheckFailure);
  EXPECT_THROW(Recorder(-5), CheckFailure);
}

TEST(RecorderTest, StrideLargerThanRunKeepsOnlyInitialSample) {
  // A stride beyond the run's horizon must still record the t = 0 sample
  // (maybe_sample at interaction 0 always fires) and nothing else.
  Recorder rec(1'000'000);
  rec.add_channel("x", count_of(0));
  const Configuration config({40, 60});
  for (Interactions i = 0; i <= 500; ++i) rec.maybe_sample(config, i);
  ASSERT_EQ(rec.series().num_samples(), 1u);
  EXPECT_DOUBLE_EQ(rec.series().parallel_time[0], 0.0);
  EXPECT_DOUBLE_EQ(rec.series().channels[0][0], 40.0);
}

TEST(RecorderTest, ForcedSampleCapturesFinalConfiguration) {
  Recorder rec(1'000'000);
  rec.add_channel("x", count_of(0));
  Configuration config({40, 60});
  rec.maybe_sample(config, 0);
  config.move_agents(0, 1, 15);
  rec.sample(config, 500);  // engines force a sample at run end
  ASSERT_EQ(rec.series().num_samples(), 2u);
  EXPECT_DOUBLE_EQ(rec.series().channels[0][1], 25.0);
  EXPECT_DOUBLE_EQ(rec.series().parallel_time[1], 5.0);  // 500 / n=100
}

TEST(RecorderTest, SamplesOncePerStride) {
  Recorder rec(10);
  rec.add_channel("x", count_of(0));
  const Configuration config({100});
  for (Interactions i = 0; i < 100; ++i) rec.maybe_sample(config, i);
  EXPECT_EQ(rec.series().num_samples(), 10u);
}

TEST(RecorderTest, ChannelsMustBeAddedBeforeFirstSample) {
  Recorder rec(10);
  rec.add_channel("x", count_of(0));
  const Configuration config({100});
  rec.sample(config, 0);
  EXPECT_THROW(rec.add_channel("late", count_of(0)), CheckFailure);
}

TEST(RecorderTest, ZeroChannelRecorderStillTracksTime) {
  // Degenerate but legal: no channels, just the sampling clock.
  Recorder rec(5);
  const Configuration config({10});
  rec.maybe_sample(config, 0);
  rec.maybe_sample(config, 5);
  EXPECT_EQ(rec.series().num_samples(), 2u);
  EXPECT_TRUE(rec.series().channels.empty());
}

TEST(RecorderTest, WriteTsvAndTakeSeries) {
  Recorder rec(10);
  rec.add_channel("a", count_of(0));
  rec.add_channel("b", count_of(1));
  const Configuration config({30, 70});
  rec.maybe_sample(config, 0);
  rec.maybe_sample(config, 10);
  const TimeSeries series = std::move(rec).take_series();
  ASSERT_EQ(series.num_samples(), 2u);
  std::ostringstream os;
  series.write_tsv(os);
  EXPECT_EQ(os.str(),
            "parallel_time\ta\tb\n"
            "0\t30\t70\n"
            "0.1\t30\t70\n");
}

}  // namespace
}  // namespace ppsim
