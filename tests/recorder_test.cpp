// Recorder edge cases: stride validation, stride larger than the whole run,
// forced final samples, channel registration rules, and TSV round-trip of
// the recorded series.
#include "ppsim/core/recorder.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ppsim/util/check.hpp"

namespace ppsim {
namespace {

Recorder::Projection count_of(State s) {
  return [s](const Configuration& c, Interactions) {
    return static_cast<double>(c.count(s));
  };
}

TEST(RecorderTest, RejectsNonPositiveStride) {
  EXPECT_THROW(Recorder(0), CheckFailure);
  EXPECT_THROW(Recorder(-5), CheckFailure);
}

TEST(RecorderTest, StrideLargerThanRunKeepsOnlyInitialSample) {
  // A stride beyond the run's horizon must still record the t = 0 sample
  // (maybe_sample at interaction 0 always fires) and nothing else.
  Recorder rec(1'000'000);
  rec.add_channel("x", count_of(0));
  const Configuration config({40, 60});
  for (Interactions i = 0; i <= 500; ++i) rec.maybe_sample(config, i);
  ASSERT_EQ(rec.series().num_samples(), 1u);
  EXPECT_DOUBLE_EQ(rec.series().parallel_time[0], 0.0);
  EXPECT_DOUBLE_EQ(rec.series().channels[0][0], 40.0);
}

TEST(RecorderTest, ForcedSampleCapturesFinalConfiguration) {
  Recorder rec(1'000'000);
  rec.add_channel("x", count_of(0));
  Configuration config({40, 60});
  rec.maybe_sample(config, 0);
  config.move_agents(0, 1, 15);
  rec.sample(config, 500);  // engines force a sample at run end
  ASSERT_EQ(rec.series().num_samples(), 2u);
  EXPECT_DOUBLE_EQ(rec.series().channels[0][1], 25.0);
  EXPECT_DOUBLE_EQ(rec.series().parallel_time[1], 5.0);  // 500 / n=100
}

TEST(RecorderTest, SamplesOncePerStride) {
  Recorder rec(10);
  rec.add_channel("x", count_of(0));
  const Configuration config({100});
  for (Interactions i = 0; i < 100; ++i) rec.maybe_sample(config, i);
  EXPECT_EQ(rec.series().num_samples(), 10u);
}

TEST(RecorderTest, ChannelsMustBeAddedBeforeFirstSample) {
  Recorder rec(10);
  rec.add_channel("x", count_of(0));
  const Configuration config({100});
  rec.sample(config, 0);
  EXPECT_THROW(rec.add_channel("late", count_of(0)), CheckFailure);
}

TEST(RecorderTest, ZeroChannelRecorderStillTracksTime) {
  // Degenerate but legal: no channels, just the sampling clock.
  Recorder rec(5);
  const Configuration config({10});
  rec.maybe_sample(config, 0);
  rec.maybe_sample(config, 5);
  EXPECT_EQ(rec.series().num_samples(), 2u);
  EXPECT_TRUE(rec.series().channels.empty());
}

TEST(RecorderTest, WriteTsvAndTakeSeries) {
  Recorder rec(10);
  rec.add_channel("a", count_of(0));
  rec.add_channel("b", count_of(1));
  const Configuration config({30, 70});
  rec.maybe_sample(config, 0);
  rec.maybe_sample(config, 10);
  const TimeSeries series = std::move(rec).take_series();
  ASSERT_EQ(series.num_samples(), 2u);
  std::ostringstream os;
  series.write_tsv(os);
  EXPECT_EQ(os.str(),
            "parallel_time\ta\tb\n"
            "0\t30\t70\n"
            "0.1\t30\t70\n");
}

TEST(RecorderTest, UnevenJumpsStayOnTheStrideLattice) {
  // Regression: the sampler advances by whole strides, so an observation
  // arriving late (the engine leapt past several lattice points) must not
  // shift the lattice. With the old `next = interactions + stride` drift,
  // the sample at 32 below would have waited until 35.
  Recorder rec(10);
  rec.add_channel("x", count_of(0));
  const Configuration config({100});
  rec.maybe_sample(config, 0);
  rec.maybe_sample(config, 25);  // leapt past 10 and 20
  rec.maybe_sample(config, 32);  // next lattice point is 30, so this samples
  EXPECT_EQ(rec.series().num_samples(), 3u);
  EXPECT_EQ(rec.last_sample(), 32);
}

TEST(RecorderTest, RejectsChannelNamesThatWouldCorruptTables) {
  Recorder rec(10);
  EXPECT_THROW(rec.add_channel("a\tb", count_of(0)), CheckFailure);
  EXPECT_THROW(rec.add_channel("a\nb", count_of(0)), CheckFailure);
  EXPECT_THROW(rec.add_channel("a\rb", count_of(0)), CheckFailure);
  EXPECT_THROW(rec.add_channel("", count_of(0)), CheckFailure);
  rec.add_channel("still fine", count_of(0));  // spaces are legal
}

/// RecordSink that logs every pipeline call for fan-out assertions.
struct CapturingSink final : RecordSink {
  std::vector<std::string> opened;
  std::vector<Interactions> samples;
  std::vector<std::vector<double>> values;
  std::vector<EngineCheckpoint> checkpoints;
  std::vector<RecordFinish> finishes;
  void open(const std::vector<std::string>& names) override { opened = names; }
  void sample(Interactions i, double, const std::vector<double>& v) override {
    samples.push_back(i);
    values.push_back(v);
  }
  void checkpoint(const EngineCheckpoint& cp) override { checkpoints.push_back(cp); }
  void finish(const RecordFinish& fin) override { finishes.push_back(fin); }
};

TEST(RecorderTest, FansSamplesOutToSinksAndMemory) {
  Recorder rec(10);
  rec.add_channel("x", count_of(0));
  CapturingSink sink;
  rec.add_sink(sink);
  const Configuration config({40, 60});
  rec.maybe_sample(config, 0);
  rec.maybe_sample(config, 10);
  ASSERT_EQ(sink.opened, std::vector<std::string>{"x"});
  ASSERT_EQ(sink.samples, (std::vector<Interactions>{0, 10}));
  EXPECT_EQ(sink.values[1], std::vector<double>{40.0});
  // The built-in memory sink saw the same stream.
  EXPECT_EQ(rec.series().num_samples(), 2u);
}

TEST(RecorderTest, SinksMustAttachBeforeFirstSample) {
  Recorder rec(10);
  const Configuration config({10});
  rec.sample(config, 0);
  CapturingSink sink;
  EXPECT_THROW(rec.add_sink(sink), CheckFailure);
}

TEST(RecorderTest, KeepSeriesFalseStreamsWithoutAccumulating) {
  Recorder rec(10);
  rec.add_channel("x", count_of(0));
  rec.set_keep_series(false);
  CapturingSink sink;
  rec.add_sink(sink);
  const Configuration config({10});
  rec.maybe_sample(config, 0);
  rec.maybe_sample(config, 10);
  EXPECT_EQ(sink.samples.size(), 2u);
  EXPECT_EQ(rec.series().num_samples(), 0u);
}

TEST(RecorderTest, CheckpointLatticeAndLastSampleStamping) {
  Recorder rec(10);
  rec.add_channel("x", count_of(0));
  rec.set_checkpoint_stride(25);
  CapturingSink sink;
  rec.add_sink(sink);
  const Configuration config({10});
  rec.maybe_sample(config, 12);
  EXPECT_FALSE(rec.checkpoint_due(24));
  ASSERT_TRUE(rec.checkpoint_due(30));
  EngineCheckpoint cp;
  cp.counts = {10};
  cp.rng_state = {1, 2, 3, 4};
  cp.interactions = 30;
  rec.record_checkpoint(cp);
  ASSERT_EQ(sink.checkpoints.size(), 1u);
  // The recorder stamps its own sampling position into the checkpoint, so
  // a resumed run knows whether the end-of-run sample is still pending.
  EXPECT_EQ(sink.checkpoints[0].last_sample, 12);
  // Lattice advanced by whole strides past 30: next due at 50, not 55.
  EXPECT_FALSE(rec.checkpoint_due(49));
  EXPECT_TRUE(rec.checkpoint_due(50));
}

TEST(RecorderTest, FinalizeSkipsDuplicateFinalSample) {
  Recorder rec(10);
  rec.add_channel("x", count_of(0));
  CapturingSink sink;
  rec.add_sink(sink);
  const Configuration config({10});
  rec.maybe_sample(config, 10);
  // The run ended exactly at the last sample's clock: no duplicate sample,
  // but every sink still learns the outcome.
  rec.finalize(config, RecordFinish{.stabilized = true, .interactions = 10});
  EXPECT_EQ(sink.samples, (std::vector<Interactions>{10}));
  ASSERT_EQ(sink.finishes.size(), 1u);
  EXPECT_TRUE(sink.finishes[0].stabilized);
}

TEST(RecorderTest, FinalizeCapturesEndStateWhenNotSampled) {
  Recorder rec(1'000'000);
  rec.add_channel("x", count_of(0));
  CapturingSink sink;
  rec.add_sink(sink);
  const Configuration config({10});
  rec.maybe_sample(config, 0);
  rec.finalize(config, RecordFinish{.stabilized = false, .interactions = 777});
  EXPECT_EQ(sink.samples, (std::vector<Interactions>{0, 777}));
}

TEST(RecorderTest, ResumeRestartsBothLattices) {
  Recorder rec(10);
  rec.add_channel("x", count_of(0));
  rec.set_checkpoint_stride(25);
  EngineCheckpoint cp;
  cp.interactions = 37;
  cp.last_sample = 30;
  rec.resume_at(cp);
  EXPECT_EQ(rec.last_sample(), 30);
  const Configuration config({10});
  rec.maybe_sample(config, 38);  // next lattice point is 40
  EXPECT_EQ(rec.series().num_samples(), 0u);
  rec.maybe_sample(config, 40);
  EXPECT_EQ(rec.series().num_samples(), 1u);
  EXPECT_FALSE(rec.checkpoint_due(49));
  EXPECT_TRUE(rec.checkpoint_due(50));
}

TEST(RecorderTest, ResumeRequiresPristineRecorder) {
  Recorder rec(10);
  rec.add_channel("x", count_of(0));
  const Configuration config({10});
  rec.sample(config, 0);
  EngineCheckpoint cp;
  cp.interactions = 20;
  EXPECT_THROW(rec.resume_at(cp), CheckFailure);
}

TEST(TimeSeriesTest, WriteTsvNeverEmitsUnescapedNames) {
  // Channel names are validated at add_channel, so by the time a series is
  // written its header row cannot contain separators. Pin the validator.
  EXPECT_THROW(validate_channel_name("tab\there"), CheckFailure);
  EXPECT_THROW(validate_channel_name("newline\n"), CheckFailure);
  EXPECT_NO_THROW(validate_channel_name("plain_name"));
}

TEST(MemorySinkTest, RejectsMismatchedArity) {
  MemorySink sink;
  sink.open({"a", "b"});
  EXPECT_THROW(sink.sample(0, 0.0, {1.0}), CheckFailure);
  sink.sample(0, 0.0, {1.0, 2.0});
  EXPECT_EQ(sink.series().num_samples(), 1u);
}

}  // namespace
}  // namespace ppsim
