// Lemma 3.2 machinery: lazy-walk step law, the coupling's domination
// invariant, and the escape-probability bound.
#include "ppsim/analysis/random_walks.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ppsim/analysis/bounds.hpp"
#include "ppsim/util/check.hpp"
#include "ppsim/util/stats.hpp"

namespace ppsim {
namespace {

TEST(LazyWalkTest, RejectsInvalidRates) {
  LazyWalk bad_p(
      [](std::int64_t) {
        return WalkRates{1.5, 0.0};
      },
      1);
  EXPECT_THROW(bad_p.step(), CheckFailure);
  LazyWalk bad_q(
      [](std::int64_t) {
        return WalkRates{0.1, 0.5};
      },
      1);
  EXPECT_THROW(bad_q.step(), CheckFailure);
}

TEST(LazyWalkTest, ZeroMoveProbabilityStaysPut) {
  LazyWalk walk(0.0, 0.0, 7);
  for (int i = 0; i < 1000; ++i) walk.step();
  EXPECT_EQ(walk.position(), 0);
  EXPECT_EQ(walk.steps(), 1000);
}

TEST(LazyWalkTest, AlwaysUpWithFullDrift) {
  // p = 1, q = 1: P(+1) = 1.
  LazyWalk walk(1.0, 1.0, 7);
  for (int i = 0; i < 100; ++i) walk.step();
  EXPECT_EQ(walk.position(), 100);
}

TEST(LazyWalkTest, StepFrequencyMatchesP) {
  constexpr double kP = 0.3;
  LazyWalk walk(kP, 0.0, 11);
  std::int64_t moves = 0;
  std::int64_t prev = 0;
  constexpr int kSteps = 100000;
  for (int i = 0; i < kSteps; ++i) {
    walk.step();
    if (walk.position() != prev) ++moves;
    prev = walk.position();
  }
  EXPECT_NEAR(static_cast<double>(moves) / kSteps, kP, 0.01);
}

TEST(LazyWalkTest, MeanDriftIsQ) {
  // E[Y(t)] = q·t.
  constexpr double kP = 0.5;
  constexpr double kQ = 0.05;
  constexpr int kSteps = 2000;
  RunningStats final_pos;
  for (int trial = 0; trial < 500; ++trial) {
    LazyWalk walk(kP, kQ, 100 + static_cast<std::uint64_t>(trial));
    for (int i = 0; i < kSteps; ++i) walk.step();
    final_pos.add(static_cast<double>(walk.position()));
  }
  EXPECT_NEAR(final_pos.mean(), kQ * kSteps, 5.0 * final_pos.sem());
}

TEST(LazyWalkTest, VarianceReflectsLaziness) {
  // Var[Y(t)] ≈ p·t for q << p: the laziness insight the paper exploits
  // ("the walk actually moved for pm out of those steps").
  constexpr double kP = 0.1;
  constexpr int kSteps = 4000;
  RunningStats final_pos;
  for (int trial = 0; trial < 800; ++trial) {
    LazyWalk walk(kP, 0.0, 900 + static_cast<std::uint64_t>(trial));
    for (int i = 0; i < kSteps; ++i) walk.step();
    final_pos.add(static_cast<double>(walk.position()));
  }
  const double expected_var = kP * kSteps;  // = 400, vs 4000 for a non-lazy walk
  EXPECT_NEAR(final_pos.variance(), expected_var, 0.15 * expected_var);
}

TEST(LazyWalkTest, RunUntilLevelReportsHit) {
  LazyWalk fast(1.0, 1.0, 3);
  EXPECT_TRUE(fast.run_until_level(50, 1000));
  EXPECT_EQ(fast.steps(), 50);

  LazyWalk frozen(0.0, 0.0, 3);
  EXPECT_FALSE(frozen.run_until_level(1, 1000));
}

TEST(CoupledWalksTest, DominationInvariantHolds) {
  // The proof's coupling guarantees Ỹ(t) >= Y(t) for all t, for any rate
  // schedule with q(t) <= q_cap. Use an oscillating schedule to stress it.
  auto rates = [](std::int64_t t) {
    return WalkRates{0.4, t % 3 == 0 ? 0.02 : -0.05};
  };
  CoupledLazyWalks walks(rates, 0.02, 13);
  for (int i = 0; i < 50000; ++i) {
    walks.step();
    ASSERT_GE(walks.y_tilde(), walks.y()) << "domination broken at step " << i;
  }
}

TEST(CoupledWalksTest, IdenticalWhenQEqualsCap) {
  // With q(t) == q_cap the third interval is empty: the walks coincide.
  CoupledLazyWalks walks([](std::int64_t) { return WalkRates{0.3, 0.1}; }, 0.1, 17);
  for (int i = 0; i < 20000; ++i) {
    walks.step();
    ASSERT_EQ(walks.y(), walks.y_tilde());
  }
}

TEST(CoupledWalksTest, RejectsRateAboveCap) {
  CoupledLazyWalks walks([](std::int64_t) { return WalkRates{0.3, 0.2}; }, 0.1, 17);
  EXPECT_THROW(walks.step(), CheckFailure);
}

TEST(EscapeEstimateTest, CertainEscape) {
  const EscapeEstimate est = estimate_escape_probability(1.0, 1.0, 10, 100, 50, 3);
  EXPECT_DOUBLE_EQ(est.probability, 1.0);
  EXPECT_EQ(est.escapes, 50);
}

TEST(EscapeEstimateTest, ImpossibleEscape) {
  const EscapeEstimate est = estimate_escape_probability(0.0, 0.0, 1, 100, 50, 3);
  EXPECT_DOUBLE_EQ(est.probability, 0.0);
}

TEST(EscapeEstimateTest, BoundFromLemma32HoldsEmpirically) {
  // Pick a regime where the analytic bound is ~0.01 and check the empirical
  // escape rate stays below it. p = 0.2, q = 0.005, T = 60,
  // N = T/(2q) = 6000.
  const double p = 0.2;
  const double q = 0.005;
  const std::int64_t T = 60;
  const auto N = static_cast<std::int64_t>(static_cast<double>(T) / (2.0 * q));
  const double analytic =
      bounds::lemma32_escape_bound(static_cast<double>(T), p, q, static_cast<double>(N));
  const EscapeEstimate est = estimate_escape_probability(p, q, T, N, 2000, 99);
  EXPECT_LE(est.probability, analytic + 0.01)
      << "empirical " << est.probability << " vs bound " << analytic;
}

TEST(EscapeEstimateTest, LazinessSuppressesEscape) {
  // Same drift, same step budget: the lazier walk escapes less often — the
  // variance effect at the heart of Lemma 3.3.
  const std::int64_t T = 30;
  const std::int64_t N = 20000;
  const EscapeEstimate lazy = estimate_escape_probability(0.05, 0.0, T, N, 2000, 5);
  const EscapeEstimate busy = estimate_escape_probability(0.8, 0.0, T, N, 2000, 6);
  EXPECT_LT(lazy.probability, busy.probability);
}

}  // namespace
}  // namespace ppsim
