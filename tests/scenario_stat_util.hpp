// Shared distribution-test helpers for the statistical pins: chi-square
// goodness-of-fit p-values (wrapping util/stats chi_square_statistic /
// chi_square_sf with the conventional buckets−1 degrees of freedom) and the
// two-sample Kolmogorov–Smirnov distance. Factored out of
// kernel_distribution_test and faults_test so scenario_test pins the
// adversary's target-selection law and churn's population accounting with
// the exact same machinery.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "ppsim/util/stats.hpp"

namespace ppsim::testutil {

/// Goodness-of-fit p-value of `observed` against `expected` with the
/// conventional observed.size() − 1 degrees of freedom. Reject small values
/// (a correct sampler fails p > 1e-6 with probability < 1e-6).
inline double chi_square_pvalue(const std::vector<std::int64_t>& observed,
                                const std::vector<double>& expected) {
  const double stat = chi_square_statistic(observed, expected);
  return chi_square_sf(stat, static_cast<int>(observed.size()) - 1);
}

/// Expected histogram of `total` events uniform over `buckets` buckets.
inline std::vector<double> uniform_expectation(std::size_t buckets,
                                               std::int64_t total) {
  return std::vector<double>(
      buckets, static_cast<double>(total) / static_cast<double>(buckets));
}

/// Two-sample Kolmogorov–Smirnov distance sup_x |F_a(x) − F_b(x)|.
inline double ks_distance(std::vector<double> a, std::vector<double> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  double d = 0.0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.size() && ib < b.size()) {
    if (a[ia] <= b[ib]) {
      ++ia;
    } else {
      ++ib;
    }
    d = std::max(d, std::abs(static_cast<double>(ia) / na -
                             static_cast<double>(ib) / nb));
  }
  return d;
}

/// Two-sample KS critical distance c(α)·sqrt((na+nb)/(na·nb)); c(0.001) ≈
/// 1.949 — the constant used by the kernel-distribution pins.
inline double ks_two_sample_critical(std::size_t na, std::size_t nb,
                                     double c_alpha = 1.949) {
  const double a = static_cast<double>(na);
  const double b = static_cast<double>(nb);
  return c_alpha * std::sqrt((a + b) / (a * b));
}

}  // namespace ppsim::testutil
