// Fenwick tree: exactness against a naive reference under random updates,
// inverse-CDF sampling semantics, and edge shapes (single category, zero
// weights).
#include "ppsim/util/fenwick.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "ppsim/util/check.hpp"
#include "ppsim/util/rng.hpp"

namespace ppsim {
namespace {

TEST(FenwickTree, EmptyTreeHasZeroSizeAndTotal) {
  FenwickTree t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.total(), 0);
}

TEST(FenwickTree, ConstructFromWeights) {
  FenwickTree t(std::vector<std::int64_t>{3, 0, 5, 2});
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.total(), 10);
  EXPECT_EQ(t.weight(0), 3);
  EXPECT_EQ(t.weight(1), 0);
  EXPECT_EQ(t.weight(2), 5);
  EXPECT_EQ(t.weight(3), 2);
}

TEST(FenwickTree, RejectsNegativeWeights) {
  EXPECT_THROW(FenwickTree(std::vector<std::int64_t>{1, -1}), CheckFailure);
}

TEST(FenwickTree, PrefixSumsMatchDefinition) {
  FenwickTree t(std::vector<std::int64_t>{3, 0, 5, 2});
  EXPECT_EQ(t.prefix_sum(0), 0);
  EXPECT_EQ(t.prefix_sum(1), 3);
  EXPECT_EQ(t.prefix_sum(2), 3);
  EXPECT_EQ(t.prefix_sum(3), 8);
  EXPECT_EQ(t.prefix_sum(4), 10);
}

TEST(FenwickTree, AddUpdatesSums) {
  FenwickTree t(std::vector<std::int64_t>{1, 1, 1});
  t.add(1, 4);
  EXPECT_EQ(t.weight(1), 5);
  EXPECT_EQ(t.total(), 7);
  t.add(1, -5);
  EXPECT_EQ(t.weight(1), 0);
  EXPECT_EQ(t.total(), 2);
}

TEST(FenwickTree, FindMapsTargetsToCategories) {
  // weights [3, 0, 5, 2] -> CDF boundaries 3, 3, 8, 10.
  FenwickTree t(std::vector<std::int64_t>{3, 0, 5, 2});
  EXPECT_EQ(t.find(0), 0u);
  EXPECT_EQ(t.find(2), 0u);
  EXPECT_EQ(t.find(3), 2u);  // category 1 has zero weight and is skipped
  EXPECT_EQ(t.find(7), 2u);
  EXPECT_EQ(t.find(8), 3u);
  EXPECT_EQ(t.find(9), 3u);
}

TEST(FenwickTree, FindNeverReturnsZeroWeightCategory) {
  FenwickTree t(std::vector<std::int64_t>{0, 7, 0, 0, 4, 0});
  for (std::int64_t target = 0; target < t.total(); ++target) {
    const std::size_t c = t.find(target);
    EXPECT_GT(t.weight(c), 0) << "target " << target << " mapped to " << c;
  }
}

TEST(FenwickTree, SingleCategory) {
  FenwickTree t(std::vector<std::int64_t>{42});
  EXPECT_EQ(t.total(), 42);
  for (std::int64_t target : {0, 1, 41}) EXPECT_EQ(t.find(target), 0u);
}

TEST(FenwickTree, NonPowerOfTwoSizes) {
  for (std::size_t size : {1u, 2u, 3u, 5u, 7u, 13u, 100u, 257u}) {
    std::vector<std::int64_t> w(size);
    std::iota(w.begin(), w.end(), 1);  // 1, 2, ..., size
    FenwickTree t(w);
    std::int64_t cum = 0;
    for (std::size_t i = 0; i < size; ++i) {
      EXPECT_EQ(t.prefix_sum(i), cum);
      cum += w[i];
      // every target inside category i maps back to i
      EXPECT_EQ(t.find(cum - 1), i);
      EXPECT_EQ(t.find(cum - w[i]), i);
    }
  }
}

TEST(FenwickTree, RandomizedAgainstNaiveReference) {
  constexpr std::size_t kSize = 37;
  constexpr int kOps = 5000;
  Xoshiro256pp rng(2024);
  std::vector<std::int64_t> naive(kSize, 0);
  FenwickTree t(kSize);
  // seed with some initial mass so find() is callable
  for (std::size_t i = 0; i < kSize; ++i) {
    naive[i] = static_cast<std::int64_t>(rng.bounded(10));
    t.add(i, naive[i]);
  }
  for (int op = 0; op < kOps; ++op) {
    const auto i = static_cast<std::size_t>(rng.bounded(kSize));
    // random delta in [-naive[i], +5]: keeps weights non-negative
    const auto delta =
        static_cast<std::int64_t>(rng.bounded(static_cast<std::uint64_t>(naive[i]) + 6)) -
        naive[i];
    naive[i] += delta;
    t.add(i, delta);

    // spot-check prefix sums and find()
    const auto probe = static_cast<std::size_t>(rng.bounded(kSize + 1));
    std::int64_t expect = 0;
    for (std::size_t j = 0; j < probe; ++j) expect += naive[j];
    ASSERT_EQ(t.prefix_sum(probe), expect) << "op " << op;

    const std::int64_t total = t.total();
    if (total > 0) {
      const auto target = static_cast<std::int64_t>(
          rng.bounded(static_cast<std::uint64_t>(total)));
      const std::size_t found = t.find(target);
      // verify inverse-CDF contract: prefix_sum(found) <= target < prefix_sum(found+1)
      ASSERT_LE(t.prefix_sum(found), target);
      ASSERT_GT(t.prefix_sum(found + 1), target);
    }
  }
}

TEST(FenwickTree, SamplingDistributionMatchesWeights) {
  FenwickTree t(std::vector<std::int64_t>{1, 2, 3, 4});
  Xoshiro256pp rng(555);
  constexpr int kDraws = 100000;
  std::vector<int> hits(4, 0);
  for (int i = 0; i < kDraws; ++i) {
    const auto target =
        static_cast<std::int64_t>(rng.bounded(static_cast<std::uint64_t>(t.total())));
    ++hits[t.find(target)];
  }
  for (std::size_t c = 0; c < 4; ++c) {
    const double expected = static_cast<double>(t.weight(c)) / 10.0;
    const double actual = static_cast<double>(hits[c]) / kDraws;
    EXPECT_NEAR(actual, expected, 0.01) << "category " << c;
  }
}

}  // namespace
}  // namespace ppsim
