// Hitting-time measurements: skip-ahead exactness against a step-by-step
// reference, budget semantics, and the undecided-excursion tracker.
#include "ppsim/analysis/hitting_times.hpp"

#include <gtest/gtest.h>

#include "ppsim/util/check.hpp"

namespace ppsim {
namespace {

TEST(HittingTimesTest, AlreadyAtLevelHitsImmediately) {
  UsdEngine engine({50, 50}, 1);
  const HittingResult r = time_until_opinion_reaches(engine, 0, 50, 1000);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.interactions_at_hit, 0);
}

TEST(HittingTimesTest, SkipAheadMatchesStepByStepReference) {
  // Run the same seed twice: once through the skip-ahead helper, once
  // checking after every single interaction. First-hit times must agree
  // exactly.
  constexpr Count kLevel = 60;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    UsdEngine fast({50, 30, 20}, seed);
    const HittingResult via_helper =
        time_until_opinion_reaches(fast, 0, kLevel, 500000);

    UsdEngine slow({50, 30, 20}, seed);
    Interactions reference = -1;
    while (slow.interactions() < 500000 && !slow.stabilized()) {
      if (slow.opinion_count(0) >= kLevel) {
        reference = slow.interactions();
        break;
      }
      slow.step();
    }
    if (reference < 0 && slow.opinion_count(0) >= kLevel) {
      reference = slow.interactions();
    }

    if (via_helper.hit) {
      ASSERT_EQ(via_helper.interactions_at_hit, reference) << "seed " << seed;
    } else {
      EXPECT_LT(reference, 0) << "seed " << seed;
    }
  }
}

TEST(HittingTimesTest, DeltaSkipAheadMatchesReference) {
  constexpr Count kLevel = 30;
  for (std::uint64_t seed = 20; seed <= 26; ++seed) {
    UsdEngine fast({40, 30, 30}, seed);
    const HittingResult via_helper = time_until_delta_reaches(fast, kLevel, 300000);

    UsdEngine slow({40, 30, 30}, seed);
    Interactions reference = -1;
    while (slow.interactions() < 300000 && !slow.stabilized()) {
      if (slow.delta_max() >= kLevel) {
        reference = slow.interactions();
        break;
      }
      slow.step();
    }
    if (reference < 0 && slow.delta_max() >= kLevel) reference = slow.interactions();

    if (via_helper.hit) {
      ASSERT_EQ(via_helper.interactions_at_hit, reference) << "seed " << seed;
    } else {
      EXPECT_LT(reference, 0) << "seed " << seed;
    }
  }
}

TEST(HittingTimesTest, BudgetPreventsHit) {
  UsdEngine engine({500, 500}, 5);
  // level n is unreachable in 10 interactions from a balanced start
  const HittingResult r = time_until_opinion_reaches(engine, 0, 1000, 10);
  EXPECT_FALSE(r.hit);
  EXPECT_LE(r.interactions_used, 10);
}

TEST(HittingTimesTest, StabilizationEndsTheRun) {
  // Tiny population stabilizes long before the budget; the helper must
  // report stabilized and not spin.
  UsdEngine engine({3, 2}, 9);
  const HittingResult r = time_until_opinion_reaches(engine, 1, 5, 1'000'000);
  EXPECT_TRUE(r.stabilized || r.hit);
  EXPECT_LT(r.interactions_used, 1'000'000);
}

TEST(HittingTimesTest, TimeUntilStableMatchesEngine) {
  UsdEngine a({60, 40}, 77);
  const HittingResult r = time_until_stable(a, 10'000'000);
  ASSERT_TRUE(r.hit);

  UsdEngine b({60, 40}, 77);
  b.run_until_stable(10'000'000);
  EXPECT_EQ(r.interactions_at_hit, b.interactions());
}

TEST(HittingTimesTest, InvalidArguments) {
  UsdEngine engine({5, 5}, 1);
  EXPECT_THROW(time_until_opinion_reaches(engine, 2, 5, 100), CheckFailure);
  EXPECT_THROW(time_until_opinion_reaches(engine, 0, 5, -1), CheckFailure);
}

TEST(UndecidedExcursionTest, TracksRunningMaximum) {
  UsdEngine engine({400, 300, 300}, 3);
  const UndecidedExcursion exc = max_undecided_over_run(engine, 200000);
  EXPECT_GT(exc.max_undecided, 0);
  // The maximum is at least the final value and at most n.
  EXPECT_GE(exc.max_undecided, 0);
  EXPECT_LE(exc.max_undecided, 1000);
  EXPECT_GE(exc.interactions_used, 1);
}

TEST(UndecidedExcursionTest, StartsFromCurrentValue) {
  // All-undecided start: the max is n immediately, and the config is stable.
  UsdEngine engine({0, 0}, 10, 3);
  const UndecidedExcursion exc = max_undecided_over_run(engine, 1000);
  EXPECT_EQ(exc.max_undecided, 10);
  EXPECT_TRUE(exc.stabilized);
  EXPECT_EQ(exc.interactions_used, 0);
}

}  // namespace
}  // namespace ppsim
