// Generic engine: conservation, determinism, stability-driven termination,
// table vs virtual dispatch equivalence, predicates, and the recorder.
#include "ppsim/core/simulator.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ppsim/core/recorder.hpp"
#include "ppsim/protocols/epidemic.hpp"
#include "ppsim/protocols/leader_election.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/check.hpp"

namespace ppsim {
namespace {

TEST(SimulatorTest, RejectsMismatchedConfiguration) {
  const UndecidedStateDynamics usd(2);
  EXPECT_THROW(Simulator(usd, Configuration({1, 1}), 1), CheckFailure);
}

TEST(SimulatorTest, PopulationIsConserved) {
  const UndecidedStateDynamics usd(3);
  Simulator sim(usd, Configuration({0, 40, 30, 30}), 11);
  for (int i = 0; i < 5000; ++i) {
    sim.step();
    ASSERT_EQ(sim.configuration().population(), 100);
  }
}

TEST(SimulatorTest, DeterministicGivenSeed) {
  const UndecidedStateDynamics usd(3);
  Simulator a(usd, Configuration({0, 40, 30, 30}), 99);
  Simulator b(usd, Configuration({0, 40, 30, 30}), 99);
  for (int i = 0; i < 2000; ++i) {
    a.step();
    b.step();
  }
  EXPECT_EQ(a.configuration(), b.configuration());
}

TEST(SimulatorTest, DifferentSeedsDiverge) {
  const UndecidedStateDynamics usd(3);
  Simulator a(usd, Configuration({0, 400, 300, 300}), 1);
  Simulator b(usd, Configuration({0, 400, 300, 300}), 2);
  for (int i = 0; i < 5000; ++i) {
    a.step();
    b.step();
  }
  EXPECT_NE(a.configuration(), b.configuration());
}

TEST(SimulatorTest, EpidemicInfectsEveryone) {
  const Epidemic epidemic;
  Simulator sim(epidemic, Epidemic::initial(200, 1), 5);
  const RunOutcome out = sim.run_until_stable(1'000'000);
  ASSERT_TRUE(out.stabilized);
  EXPECT_EQ(sim.configuration().count(Epidemic::kInfected), 200);
  EXPECT_TRUE(out.consensus.has_value());
  EXPECT_EQ(*out.consensus, 1u);
}

TEST(SimulatorTest, EpidemicTakesAboutLogNParallelTime) {
  // Θ(log n) parallel time w.h.p.; for n = 1000, ln n ≈ 6.9. Accept a very
  // generous band — this is a sanity calibration, not a sharp test.
  const Epidemic epidemic;
  Simulator sim(epidemic, Epidemic::initial(1000, 1), 17);
  const RunOutcome out = sim.run_until_stable(10'000'000);
  ASSERT_TRUE(out.stabilized);
  EXPECT_GT(sim.parallel_time(), 2.0);
  EXPECT_LT(sim.parallel_time(), 60.0);
}

TEST(SimulatorTest, LeaderElectionLeavesExactlyOneLeader) {
  const LeaderElection le;
  Simulator sim(le, LeaderElection::initial(150), 23);
  const RunOutcome out = sim.run_until_stable(10'000'000);
  ASSERT_TRUE(out.stabilized);
  EXPECT_EQ(sim.configuration().count(LeaderElection::kLeader), 1);
  EXPECT_EQ(sim.configuration().count(LeaderElection::kFollower), 149);
}

TEST(SimulatorTest, StableConfigurationStopsImmediately) {
  const UndecidedStateDynamics usd(2);
  Simulator sim(usd, Configuration({0, 50, 0}), 3);
  const RunOutcome out = sim.run_until_stable(1'000'000);
  EXPECT_TRUE(out.stabilized);
  EXPECT_EQ(out.interactions, 0);
  ASSERT_TRUE(out.consensus.has_value());
  EXPECT_EQ(*out.consensus, 0u);
}

TEST(SimulatorTest, BudgetIsRespected) {
  const UndecidedStateDynamics usd(2);
  Simulator sim(usd, Configuration({0, 500, 500}), 3);
  const RunOutcome out = sim.run_until_stable(250);
  EXPECT_FALSE(out.stabilized);
  // run_until_stable works in stability-check strides; it may finish the
  // current stride but never exceeds the requested budget.
  EXPECT_LE(out.interactions, 250);
}

TEST(SimulatorTest, RunUntilPredicateFires) {
  const UndecidedStateDynamics usd(2);
  Simulator sim(usd, Configuration({0, 600, 400}), 7);
  const RunOutcome out = sim.run_until(
      [](const Configuration& c, Interactions) {
        return c.count(UndecidedStateDynamics::kUndecided) >= 100;
      },
      10'000'000);
  EXPECT_GE(sim.configuration().count(UndecidedStateDynamics::kUndecided), 100);
  EXPECT_LT(out.interactions, 10'000'000);
}

// Same-seed kTable/kVirtual trajectory identity is covered (with step-return
// and interaction-counter assertions) by EngineDeterminismTest in
// engine_equivalence_test.cpp.

TEST(SimulatorTest, ConsensusOutputRules) {
  const UndecidedStateDynamics usd(2);
  // Mixed opinions: no consensus.
  Simulator mixed(usd, Configuration({0, 5, 5}), 1);
  EXPECT_FALSE(mixed.consensus_output().has_value());
  // Undecided agents present: no consensus (uncommitted output).
  Simulator undecided(usd, Configuration({5, 5, 0}), 1);
  EXPECT_FALSE(undecided.consensus_output().has_value());
  // Monochromatic opinion: consensus.
  Simulator mono(usd, Configuration({0, 0, 10}), 1);
  ASSERT_TRUE(mono.consensus_output().has_value());
  EXPECT_EQ(*mono.consensus_output(), 1u);
}

TEST(SimulatorTest, StrideValidation) {
  const UndecidedStateDynamics usd(2);
  Simulator sim(usd, Configuration({0, 5, 5}), 1);
  EXPECT_THROW(sim.set_stability_check_stride(0), CheckFailure);
  EXPECT_NO_THROW(sim.set_stability_check_stride(10));
}

TEST(RecorderTest, SamplesAtStride) {
  Recorder rec(10);
  rec.add_channel("undecided", [](const Configuration& c, Interactions) {
    return static_cast<double>(c.count(0));
  });
  const Configuration c({3, 7});
  rec.maybe_sample(c, 0);   // sampled (first)
  rec.maybe_sample(c, 5);   // skipped
  rec.maybe_sample(c, 10);  // sampled
  rec.maybe_sample(c, 12);  // skipped
  rec.maybe_sample(c, 25);  // sampled (past due)
  EXPECT_EQ(rec.series().num_samples(), 3u);
  EXPECT_EQ(rec.series().channels[0][0], 3.0);
}

TEST(RecorderTest, ChannelsLockedAfterFirstSample) {
  Recorder rec(1);
  rec.add_channel("a", [](const Configuration&, Interactions) { return 0.0; });
  rec.sample(Configuration({1, 1}), 0);
  EXPECT_THROW(
      rec.add_channel("late", [](const Configuration&, Interactions) { return 0.0; }),
      CheckFailure);
}

TEST(RecorderTest, TsvHasHeaderAndRows) {
  Recorder rec(1);
  rec.add_channel("u", [](const Configuration& c, Interactions) {
    return static_cast<double>(c.count(0));
  });
  rec.sample(Configuration({3, 7}), 0);
  rec.sample(Configuration({4, 6}), 10);
  std::ostringstream os;
  rec.series().write_tsv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("parallel_time\tu"), std::string::npos);
  EXPECT_NE(out.find("\t3"), std::string::npos);
  EXPECT_NE(out.find("\t4"), std::string::npos);
}

TEST(RecorderTest, RecordsDuringSimulatorRun) {
  const UndecidedStateDynamics usd(2);
  Simulator sim(usd, Configuration({0, 700, 300}), 13);
  Recorder rec(100);
  rec.add_channel("undecided", [](const Configuration& c, Interactions) {
    return static_cast<double>(c.count(UndecidedStateDynamics::kUndecided));
  });
  for (int i = 0; i < 5000; ++i) {
    sim.step();
    rec.maybe_sample(sim.configuration(), sim.interactions());
  }
  EXPECT_GE(rec.series().num_samples(), 45u);
  EXPECT_LE(rec.series().num_samples(), 55u);
}

}  // namespace
}  // namespace ppsim
