// CollapsedSimulator: the exact single-interaction pair law (chi-square at
// small n against the analytic ordered-pair distribution), count
// conservation and budget accounting under adaptive rounds, the 2^53
// population / saturating-arithmetic guards, adaptivity of the τ controller,
// and distributional equivalence of full stabilization runs against the
// sequential engine.
#include "ppsim/core/collapsed_simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "ppsim/core/engine.hpp"
#include "ppsim/core/simulator.hpp"
#include "ppsim/protocols/leader_election.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/check.hpp"
#include "ppsim/util/stats.hpp"

namespace ppsim {
namespace {

constexpr std::size_t kK = 3;
const std::vector<Count> kUsdCounts = {0, 250, 200, 150};  // ⊥, x1, x2, x3

TEST(CollapsedSimulatorTest, RejectsDegenerateInputs) {
  const UndecidedStateDynamics usd(kK);
  EXPECT_THROW(CollapsedSimulator(usd, Configuration({1, 0, 0, 0}), 1, {}),
               CheckFailure);  // single agent
  EXPECT_THROW(CollapsedSimulator(usd, Configuration({0, 5, 5}), 1, {}),
               CheckFailure);  // state-space mismatch
  EXPECT_THROW(CollapsedSimulator(usd, Configuration(kUsdCounts), 1,
                                  {.tau_epsilon = 0.0}),
               CheckFailure);
  EXPECT_THROW(CollapsedSimulator(usd, Configuration(kUsdCounts), 1,
                                  {.tau_epsilon = 1.5}),
               CheckFailure);
  EXPECT_THROW(CollapsedSimulator(usd, Configuration(kUsdCounts), 1,
                                  {.max_round = -1}),
               CheckFailure);
}

TEST(CollapsedSimulatorTest, SaturationGuardRejectsPopulationsBeyondDoubleExactness) {
  // Counts above 2^53 are not exactly representable in the double-precision
  // pair weights; the constructor must refuse rather than silently round.
  const UndecidedStateDynamics usd(1);
  const Count over = CollapsedSimulator::kMaxPopulation + 1;
  EXPECT_THROW(CollapsedSimulator(usd, Configuration({0, over}), 1, {}),
               CheckFailure);
  // Exactly at the cap is accepted (and trivially stable: one opinion).
  CollapsedSimulator ok(usd, Configuration({0, CollapsedSimulator::kMaxPopulation}),
                        1, {});
  EXPECT_TRUE(ok.is_stable());
}

TEST(CollapsedSimulatorTest, SaturatingArithmeticClampsInsteadOfWrapping) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  EXPECT_EQ(sat_add(kMax, 1), kMax);
  EXPECT_EQ(sat_add(kMax, kMax), kMax);
  EXPECT_EQ(sat_add(kMin, -1), kMin);
  EXPECT_EQ(sat_add(2, 3), 5);
  EXPECT_EQ(sat_mul(kMax, 2), kMax);
  EXPECT_EQ(sat_mul(kMax, -2), kMin);
  EXPECT_EQ(sat_mul(-3, 4), -12);
  EXPECT_EQ(sat_mul(4'000'000'000, 4'000'000'000), kMax);  // n(n−1) overflow zone
}

TEST(CollapsedSimulatorTest, InteractionAccountingSaturatesAtHugeBudgets) {
  // A stable configuration leaps over the whole remaining budget in one null
  // round; with the budget at int64 max the counter must saturate, not wrap.
  const UndecidedStateDynamics usd(kK);
  CollapsedSimulator sim(usd, Configuration({0, 600, 0, 0}), 1, {});
  ASSERT_TRUE(sim.is_stable());
  sim.step_round(std::numeric_limits<Interactions>::max());
  EXPECT_EQ(sim.interactions(), std::numeric_limits<Interactions>::max());
  sim.step_round(std::numeric_limits<Interactions>::max());
  EXPECT_EQ(sim.interactions(), std::numeric_limits<Interactions>::max());
  EXPECT_EQ(sim.configuration().count(1), 600);
}

// ------------------------------------------ exact pair law at round size 1 --

// From counts {⊥=2, x1=3, x2=1} (n = 6, W = 30 ordered pairs) the one-step
// law groups into four distinguishable configuration deltas:
//   null        (⊥,⊥), (x1,x1) identities           weight 2·1 + 3·2 = 8
//   clash       (x1,x2), (x2,x1) → (⊥,⊥)            weight 3·1 + 1·3 = 6
//   adopt x1    (x1,⊥), (⊥,x1) → (x1,x1)            weight 3·2 + 2·3 = 12
//   adopt x2    (x2,⊥), (⊥,x2) → (x2,x2)            weight 1·2 + 2·1 = 4
TEST(CollapsedSimulatorTest, OneStepLawMatchesExactPairDistribution) {
  const UndecidedStateDynamics usd(2);
  const std::vector<Count> start = {2, 3, 1};
  constexpr int kTrials = 40000;
  std::map<std::vector<Count>, std::int64_t> observed;
  for (int t = 0; t < kTrials; ++t) {
    CollapsedSimulator sim(usd, Configuration(start),
                           9000 + static_cast<std::uint64_t>(t), {});
    const Interactions done = sim.step_round(1);
    ASSERT_EQ(done, 1);
    ASSERT_EQ(sim.interactions(), 1);
    ++observed[sim.configuration().counts()];
  }
  const std::vector<std::vector<Count>> outcomes = {
      {2, 3, 1},  // null
      {4, 2, 0},  // clash
      {1, 4, 1},  // adopt x1
      {1, 3, 2},  // adopt x2
  };
  const std::vector<double> weights = {8.0, 6.0, 12.0, 4.0};
  std::vector<std::int64_t> counts;
  std::vector<double> expected;
  std::int64_t total_observed = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto it = observed.find(outcomes[i]);
    counts.push_back(it == observed.end() ? 0 : it->second);
    total_observed += counts.back();
    expected.push_back(kTrials * weights[i] / 30.0);
  }
  ASSERT_EQ(total_observed, kTrials) << "one-step run reached an impossible state";
  const double stat = chi_square_statistic(counts, expected);
  // 3 degrees of freedom; reject only at the 10^-4 level so the test is
  // stable across toolchains while still pinning the law tightly.
  EXPECT_GT(chi_square_sf(stat, 3), 1e-4) << "chi-square statistic " << stat;
}

TEST(CollapsedSimulatorTest, MaxRoundOneForcesSingleInteractionRounds) {
  const UndecidedStateDynamics usd(kK);
  CollapsedSimulator sim(usd, Configuration(kUsdCounts), 17, {.max_round = 1});
  for (int i = 0; i < 500 && !sim.is_stable(); ++i) {
    EXPECT_EQ(sim.step_round(1'000'000), 1);
    EXPECT_EQ(sim.last_round_size(), 1);
  }
  EXPECT_EQ(sim.clamped_interactions(), 0);  // single draws can never overdraw
}

// ------------------------------------------------- conservation & budgets --

TEST(CollapsedSimulatorTest, AdaptiveRoundsConservePopulationAndAccountInteractions) {
  const UndecidedStateDynamics usd(kK);
  CollapsedSimulator sim(usd, Configuration(kUsdCounts), 42);
  Interactions total = 0;
  for (int round = 0; round < 2000 && !sim.is_stable(); ++round) {
    total += sim.step_round(1'000'000);
    ASSERT_EQ(sim.configuration().population(), 600) << "round " << round;
    for (const Count c : sim.configuration().counts()) ASSERT_GE(c, 0);
  }
  EXPECT_EQ(sim.interactions(), total);
}

TEST(CollapsedSimulatorTest, BudgetIsRespectedExactly) {
  const UndecidedStateDynamics usd(kK);
  CollapsedSimulator sim(usd, Configuration(kUsdCounts), 7);
  const RunOutcome out = sim.run_until_stable(10);  // budget < any τ round
  EXPECT_EQ(out.interactions, 10);
  EXPECT_EQ(sim.interactions(), 10);
}

TEST(CollapsedSimulatorTest, SameSeedGivesIdenticalTrajectory) {
  const UndecidedStateDynamics usd(kK);
  CollapsedSimulator a(usd, Configuration(kUsdCounts), 99);
  CollapsedSimulator b(usd, Configuration(kUsdCounts), 99);
  for (int round = 0; round < 500 && !a.is_stable(); ++round) {
    a.step_round(1'000'000);
    b.step_round(1'000'000);
    ASSERT_EQ(a.configuration(), b.configuration()) << "diverged at round " << round;
  }
  EXPECT_EQ(a.interactions(), b.interactions());
}

TEST(CollapsedSimulatorTest, TauControllerAdaptsToThePopulationScale) {
  // The fixed-round batched engine always leaps n/divisor; the collapsed
  // controller must scale its rounds with n (ε·n aggregate cap) and stay
  // well below n (per-state drain bound).
  const UndecidedStateDynamics usd(kK);
  Interactions small_round = 0;
  Interactions large_round = 0;
  {
    CollapsedSimulator sim(usd, Configuration({0, 500, 300, 200}), 5);
    sim.step_round(std::numeric_limits<Interactions>::max() / 2);
    small_round = sim.last_round_size();
  }
  {
    CollapsedSimulator sim(usd, Configuration({0, 500'000, 300'000, 200'000}), 5);
    sim.step_round(std::numeric_limits<Interactions>::max() / 2);
    large_round = sim.last_round_size();
  }
  EXPECT_GT(large_round, 100 * small_round);
  EXPECT_LE(large_round, 1'000'000 * 0.05 + 1);  // ε·n aggregate cap
  EXPECT_GE(small_round, 1);
}

TEST(CollapsedSimulatorTest, HandlesNonNullSelfPairs) {
  // Leader election's (L, L) -> (L, F) transition exercises the a == b bulk
  // branch and drives a state down to a single agent.
  const LeaderElection protocol;
  CollapsedSimulator sim(protocol, LeaderElection::initial(1000), 5);
  const RunOutcome out = sim.run_until_stable(50'000'000);
  ASSERT_TRUE(out.stabilized);
  EXPECT_EQ(sim.configuration().population(), 1000);
  EXPECT_EQ(sim.configuration().count(LeaderElection::kLeader), 1);
}

TEST(CollapsedSimulatorTest, StabilizesToUsdConsensus) {
  const UndecidedStateDynamics usd(kK);
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    CollapsedSimulator sim(usd, Configuration(kUsdCounts), seed);
    const RunOutcome out = sim.run_until_stable(10'000'000);
    ASSERT_TRUE(out.stabilized) << "seed " << seed;
    ASSERT_TRUE(out.consensus.has_value()) << "seed " << seed;
    EXPECT_TRUE(sim.configuration().is_monochromatic());
    EXPECT_EQ(sim.configuration().count(
                  UndecidedStateDynamics::opinion_state(*out.consensus)),
              600);
  }
}

TEST(CollapsedSimulatorTest, EngineFacadeSelectsCollapsed) {
  const UndecidedStateDynamics usd(kK);
  Engine engine(EngineKind::kCollapsed, usd, Configuration(kUsdCounts), 3);
  EXPECT_EQ(engine.kind(), EngineKind::kCollapsed);
  const RunOutcome out = engine.run_until_stable(10'000'000);
  EXPECT_TRUE(out.stabilized);
  EXPECT_TRUE(engine.is_stable());
  EXPECT_EQ(engine.interactions(), out.interactions);
  EXPECT_EQ(engine.consensus_output(), out.consensus);
  EXPECT_EQ(parse_engine("collapsed"), EngineKind::kCollapsed);
  EXPECT_EQ(to_string(EngineKind::kCollapsed), "collapsed");
}

// ----------------------------- distributional equivalence vs. sequential --

/// Two-sample Kolmogorov–Smirnov distance sup_x |F_a(x) - F_b(x)|.
double ks_distance(std::vector<double> a, std::vector<double> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  double d = 0.0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.size() && ib < b.size()) {
    if (a[ia] <= b[ib]) {
      ++ia;
    } else {
      ++ib;
    }
    d = std::max(d, std::abs(static_cast<double>(ia) / na -
                             static_cast<double>(ib) / nb));
  }
  return d;
}

TEST(CollapsedSimulatorTest, StabilizationTimesShareDistributionWithSequential) {
  // Full-run comparison against the exact sequential chain with adaptive
  // τ-leaping on: the collapsed engine's per-round drift bound (ε = 0.05)
  // must keep the stabilization-time distribution within the same KS
  // envelope the batched engine meets at round_divisor = 16.
  const UndecidedStateDynamics usd(kK);
  constexpr int kTrials = 300;
  std::vector<double> seq;
  std::vector<double> col;
  for (int t = 0; t < kTrials; ++t) {
    Simulator s(usd, Configuration(kUsdCounts), 1000 + static_cast<std::uint64_t>(t));
    s.set_stability_check_stride(1);  // exact stopping times for the KS check
    const RunOutcome so = s.run_until_stable(50'000'000);
    ASSERT_TRUE(so.stabilized);
    seq.push_back(static_cast<double>(so.interactions));

    CollapsedSimulator c(usd, Configuration(kUsdCounts),
                         500'000 + static_cast<std::uint64_t>(t));
    const RunOutcome co = c.run_until_stable(50'000'000);
    ASSERT_TRUE(co.stabilized);
    col.push_back(static_cast<double>(co.interactions));
  }
  EXPECT_LE(ks_distance(seq, col), 0.195);
  RunningStats s_stats;
  RunningStats c_stats;
  for (const double x : seq) s_stats.add(x);
  for (const double x : col) c_stats.add(x);
  EXPECT_NEAR(s_stats.mean(), c_stats.mean(),
              5.0 * (s_stats.sem() + c_stats.sem()));
}

// Regression for pair-law cache invalidation on restore. The law and its
// alias table are now invalidated through one shared generation counter
// (counts generation → law generation → alias generation); the historical
// risk was two hand-maintained dirty flags where a restore path could reset
// one but not the other, leaving a resumed run sampling from the *previous*
// configuration's law. Restoring into a simulator whose caches were built
// from a very different configuration must reproduce the original run's
// continuation draw for draw — on both the bulk (multinomial) and the
// single-draw (alias-table) round paths.
TEST(CollapsedSimulatorTest, RestoreIntoStaleCachesReproducesContinuation) {
  const UndecidedStateDynamics usd(kK);
  for (const Interactions max_round : {Interactions{0}, Interactions{1}}) {
    CollapsedSimulator::Options opts;
    opts.max_round = max_round;
    CollapsedSimulator original(usd, Configuration(kUsdCounts), 4242, opts);
    for (int r = 0; r < 12; ++r) original.step_round(5'000);
    const EngineCheckpoint cp = original.checkpoint_state();
    for (int r = 0; r < 12; ++r) original.step_round(5'000);

    // The victim has run from a different seed and configuration, so its
    // law and alias table are hot — and stale relative to the checkpoint.
    CollapsedSimulator resumed(usd, Configuration({300, 150, 100, 50}), 7,
                               opts);
    for (int r = 0; r < 12; ++r) resumed.step_round(5'000);
    resumed.restore_checkpoint(cp);
    for (int r = 0; r < 12; ++r) resumed.step_round(5'000);

    EXPECT_EQ(resumed.configuration().counts(),
              original.configuration().counts())
        << "max_round=" << max_round;
    EXPECT_EQ(resumed.interactions(), original.interactions());
    EXPECT_EQ(resumed.clamped_interactions(),
              original.clamped_interactions());
  }
}

}  // namespace
}  // namespace ppsim
