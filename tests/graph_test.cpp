// Interaction graphs and the per-agent graph engine: generator shapes,
// connectivity, clique cross-validation against the counts engine, and
// topology-dependent behaviour (epidemic on a path is Θ(n) parallel time).
#include <gtest/gtest.h>

#include <numeric>

#include "ppsim/core/graph.hpp"
#include "ppsim/core/graph_simulator.hpp"
#include "ppsim/core/simulator.hpp"
#include "ppsim/protocols/epidemic.hpp"
#include "ppsim/protocols/leader_election.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/check.hpp"
#include "ppsim/util/stats.hpp"

namespace ppsim {
namespace {

// ------------------------------------------------------------ generators ----

TEST(InteractionGraphTest, CompleteGraphShape) {
  const InteractionGraph g = InteractionGraph::complete(6);
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.num_edges(), 15u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5u);
  EXPECT_TRUE(g.is_connected());
}

TEST(InteractionGraphTest, CycleShape) {
  const InteractionGraph g = InteractionGraph::cycle(10);
  EXPECT_EQ(g.num_edges(), 10u);
  for (NodeId v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(g.is_connected());
}

TEST(InteractionGraphTest, PathShape) {
  const InteractionGraph g = InteractionGraph::path(10);
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(9), 1u);
  EXPECT_EQ(g.degree(5), 2u);
  EXPECT_TRUE(g.is_connected());
}

TEST(InteractionGraphTest, StarShape) {
  const InteractionGraph g = InteractionGraph::star(10);
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_EQ(g.degree(0), 9u);
  for (NodeId v = 1; v < 10; ++v) EXPECT_EQ(g.degree(v), 1u);
  EXPECT_TRUE(g.is_connected());
}

TEST(InteractionGraphTest, ErdosRenyiDensity) {
  Xoshiro256pp rng(1);
  const InteractionGraph g = InteractionGraph::erdos_renyi(100, 0.3, rng);
  const double expected = 0.3 * 100.0 * 99.0 / 2.0;  // ≈ 1485
  EXPECT_GT(static_cast<double>(g.num_edges()), expected * 0.8);
  EXPECT_LT(static_cast<double>(g.num_edges()), expected * 1.2);
  EXPECT_TRUE(g.is_connected());  // p far above the connectivity threshold
}

TEST(InteractionGraphTest, RandomRegularDegrees) {
  Xoshiro256pp rng(2);
  const InteractionGraph g = InteractionGraph::random_regular(50, 4, rng);
  EXPECT_EQ(g.num_edges(), 100u);
  for (NodeId v = 0; v < 50; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_THROW(InteractionGraph::random_regular(5, 3, rng), CheckFailure);  // odd n·d
}

TEST(InteractionGraphTest, DisconnectedDetected) {
  // two disjoint edges
  const InteractionGraph g(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(g.is_connected());
}

TEST(InteractionGraphTest, RejectsBadEdges) {
  EXPECT_THROW(InteractionGraph(3, {{0, 0}}), CheckFailure);  // self-loop
  EXPECT_THROW(InteractionGraph(3, {{0, 5}}), CheckFailure);  // out of range
  EXPECT_THROW(InteractionGraph(3, {}), CheckFailure);        // no edges
}

TEST(InteractionGraphTest, NeighborsWithMultiplicity) {
  const InteractionGraph g(3, {{0, 1}, {0, 1}, {1, 2}});
  EXPECT_EQ(g.degree(0), 2u);  // parallel edge counted twice
  const auto nb = g.neighbors(1);
  EXPECT_EQ(nb.size(), 3u);
}

// ---------------------------------------------------------- graph engine ----

TEST(GraphSimulatorTest, PopulationAndCountsConserved) {
  const UndecidedStateDynamics usd(2);
  const InteractionGraph g = InteractionGraph::cycle(30);
  std::vector<State> states(30, 1);
  for (std::size_t i = 15; i < 30; ++i) states[i] = 2;
  GraphSimulator sim(usd, g, states, 7);
  for (int i = 0; i < 5000; ++i) {
    sim.step();
    const Configuration c = sim.configuration();
    ASSERT_EQ(c.population(), 30);
    // counts must mirror the per-agent array
    std::vector<Count> recount(3, 0);
    for (NodeId v = 0; v < 30; ++v) ++recount[sim.state_of(v)];
    ASSERT_EQ(c.counts(), recount);
  }
}

TEST(GraphSimulatorTest, RejectsMismatchedStates) {
  const UndecidedStateDynamics usd(2);
  const InteractionGraph g = InteractionGraph::cycle(10);
  EXPECT_THROW(GraphSimulator(usd, g, std::vector<State>(9, 1), 1), CheckFailure);
  EXPECT_THROW(GraphSimulator(usd, g, std::vector<State>(10, 7), 1), CheckFailure);
}

TEST(GraphSimulatorTest, UsdOnCliqueMatchesCountsEngineDistribution) {
  // Same protocol, same (clique) topology, different engines: compare the
  // mean undecided count after a fixed horizon across trials.
  const UndecidedStateDynamics usd(2);
  const InteractionGraph clique = InteractionGraph::complete(60);
  constexpr Interactions kSteps = 800;
  constexpr int kTrials = 400;
  RunningStats graph_u;
  RunningStats counts_u;
  for (int t = 0; t < kTrials; ++t) {
    std::vector<State> states(60);
    for (std::size_t i = 0; i < 60; ++i) states[i] = i < 35 ? 1 : 2;
    GraphSimulator gsim(usd, clique, states,
                        3000 + static_cast<std::uint64_t>(t));
    for (Interactions i = 0; i < kSteps; ++i) gsim.step();
    graph_u.add(static_cast<double>(gsim.count(UndecidedStateDynamics::kUndecided)));

    Simulator csim(usd, Configuration({0, 35, 25}),
                   7000 + static_cast<std::uint64_t>(t));
    for (Interactions i = 0; i < kSteps; ++i) csim.step();
    counts_u.add(static_cast<double>(
        csim.configuration().count(UndecidedStateDynamics::kUndecided)));
  }
  EXPECT_NEAR(graph_u.mean(), counts_u.mean(),
              4.0 * (graph_u.sem() + counts_u.sem()));
}

TEST(GraphSimulatorTest, EpidemicCoversConnectedGraphs) {
  const Epidemic epidemic;
  for (const auto& g : {InteractionGraph::cycle(50), InteractionGraph::star(50),
                        InteractionGraph::path(50)}) {
    std::vector<State> states(50, Epidemic::kSusceptible);
    states[0] = Epidemic::kInfected;
    GraphSimulator sim(epidemic, g, states, 5);
    ASSERT_TRUE(sim.run_until_stable(10'000'000));
    EXPECT_EQ(sim.count(Epidemic::kInfected), 50);
  }
}

TEST(GraphSimulatorTest, EpidemicStallsAcrossDisconnection) {
  const Epidemic epidemic;
  const InteractionGraph g(4, {{0, 1}, {2, 3}});
  std::vector<State> states = {Epidemic::kInfected, Epidemic::kSusceptible,
                               Epidemic::kSusceptible, Epidemic::kSusceptible};
  GraphSimulator sim(epidemic, g, states, 5);
  ASSERT_TRUE(sim.run_until_stable(1'000'000));
  EXPECT_EQ(sim.count(Epidemic::kInfected), 2);  // only the {0,1} component
}

TEST(GraphSimulatorTest, PathEpidemicIsLinearTimeNotLog) {
  // On a path, information travels one hop at a time: Θ(n) parallel time
  // (vs Θ(log n) on the clique). Compare the two directly at n = 100.
  const Epidemic epidemic;
  const NodeId n = 100;

  std::vector<State> path_states(n, Epidemic::kSusceptible);
  path_states[0] = Epidemic::kInfected;
  const InteractionGraph path = InteractionGraph::path(n);
  GraphSimulator path_sim(epidemic, path, path_states, 3);
  ASSERT_TRUE(path_sim.run_until_stable(100'000'000));

  const InteractionGraph clique = InteractionGraph::complete(n);
  std::vector<State> clique_states(n, Epidemic::kSusceptible);
  clique_states[0] = Epidemic::kInfected;
  GraphSimulator clique_sim(epidemic, clique, clique_states, 3);
  ASSERT_TRUE(clique_sim.run_until_stable(100'000'000));

  EXPECT_GT(path_sim.parallel_time(), 4.0 * clique_sim.parallel_time());
}

TEST(GraphSimulatorTest, LeaderElectionOnCliqueLeavesOne) {
  const LeaderElection le;
  const InteractionGraph clique = InteractionGraph::complete(40);
  GraphSimulator sim(le, clique, std::vector<State>(40, LeaderElection::kLeader), 9);
  ASSERT_TRUE(sim.run_until_stable(100'000'000));
  EXPECT_EQ(sim.count(LeaderElection::kLeader), 1);
}

TEST(GraphSimulatorTest, LeaderElectionOnSparseGraphsStallsAtIndependentSet) {
  // Fratricide only fires along edges: on sparse topologies the survivors
  // are a (maximal-under-the-dynamics) *independent set* of leaders, not a
  // single one — a crisp demonstration that clique results do not transfer
  // to general graphs (the reason the paper, like most of the literature,
  // fixes the clique).
  const LeaderElection le;
  Xoshiro256pp rng(4);
  const InteractionGraph graphs[] = {
      InteractionGraph::cycle(40), InteractionGraph::star(40),
      InteractionGraph::random_regular(40, 4, rng)};
  for (const auto& g : graphs) {
    std::vector<State> states(40, LeaderElection::kLeader);
    GraphSimulator sim(le, g, states, 9);
    ASSERT_TRUE(sim.run_until_stable(100'000'000));
    EXPECT_GE(sim.count(LeaderElection::kLeader), 1);
    // stability == no edge joins two leaders
    for (std::size_t e = 0; e < g.num_edges(); ++e) {
      const auto& [a, b] = g.edge(e);
      EXPECT_FALSE(sim.state_of(a) == LeaderElection::kLeader &&
                   sim.state_of(b) == LeaderElection::kLeader);
    }
  }
}

TEST(GraphSimulatorTest, ConsensusOutputSemantics) {
  const UndecidedStateDynamics usd(2);
  const InteractionGraph g = InteractionGraph::cycle(10);
  GraphSimulator mono(usd, g, std::vector<State>(10, 1), 1);
  ASSERT_TRUE(mono.consensus_output().has_value());
  EXPECT_EQ(*mono.consensus_output(), 0u);

  std::vector<State> mixed(10, 1);
  mixed[3] = 2;
  GraphSimulator no_consensus(usd, g, mixed, 1);
  EXPECT_FALSE(no_consensus.consensus_output().has_value());
}

}  // namespace
}  // namespace ppsim
