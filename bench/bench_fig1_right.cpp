// Reproduces Figure 1 (right): zoom on the window in which the majority
// doubles its initial count. Plots the majority x1(t), the mean minority,
// and the maximum difference max_{j>=2}(x1 - x_j), all un-scaled
// (y range ~ n/10 as in the paper).
//
// Paper observations this run should show:
//   * reaching 2·x1(0) consumes most of the stabilization time (~70 of ~90
//     parallel time units at n = 10^6);
//   * the maximum difference grows slowly (doubling needs Θ(kn)
//     interactions, Lemma 3.4) and only explodes at the very end.
//
// Runs as a one-cell sweep (per-trial trajectory slots; plot renders
// trial 0, the sweep JSON aggregates doubling times across --trials).
//
// Flags: --n, --k, --seed, --samples, --max-parallel, --trials, --threads,
//        --json.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "ppsim/analysis/bounds.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/core/sweep.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/ascii_plot.hpp"
#include "ppsim/util/cli.hpp"

namespace {

using namespace ppsim;

struct Trajectory {
  std::vector<double> time;
  std::vector<double> majority;
  std::vector<double> mean_minority;
  std::vector<double> max_difference;  // max_{j>=2}(x1 - x_j)
};

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const Count n = cli.get_int("n", 1'000'000);
  const auto k = static_cast<std::size_t>(
      cli.get_int("k", static_cast<std::int64_t>(bounds::paper_k(n))));
  const std::int64_t samples = cli.get_int("samples", 400);
  const double max_parallel = cli.get_double("max-parallel", 10000.0);
  const SweepCliOptions opts = read_sweep_flags(cli, 1, 2025, "");
  cli.validate_no_unknown_flags();
  opts.scenario.require_only(false, false, false, "bench_fig1_right");

  const InitialConfig init = figure1_configuration(n, k);
  const Count doubling_level = 2 * init.majority();

  benchutil::banner("fig1_right",
                    "Figure 1 (right): majority doubling window with max difference");
  benchutil::param("n", n);
  benchutil::param("k", static_cast<std::int64_t>(k));
  benchutil::param("bias", init.bias);
  benchutil::param("x_majority(0)", init.majority());
  benchutil::param("doubling level 2*x1(0)", doubling_level);
  benchutil::param("seed", static_cast<std::int64_t>(opts.seed));

  const auto budget = static_cast<Interactions>(max_parallel * static_cast<double>(n));
  const Interactions stride = std::max<Interactions>(
      1, budget / std::max<std::int64_t>(samples * 100, 1));

  SweepSpec spec;
  spec.name = "fig1_right";
  opts.configure(spec);
  SweepCell cell;
  cell.n = n;
  cell.k = k;
  cell.bias = static_cast<double>(init.bias);
  spec.cells.push_back(cell);

  std::vector<Trajectory> trajectories(opts.trials);

  auto trial = [&](const SweepTrial& ctx) -> SweepMetrics {
    Trajectory& traj = trajectories[ctx.trial];  // private slot per trial
    auto record = [&](const UsdEngine& e) {
      traj.time.push_back(e.time());
      const auto x1 = static_cast<double>(e.opinion_count(0));
      traj.majority.push_back(x1);
      double mean_min = 0.0;
      Count min_minority = e.opinion_count(1);
      for (Opinion j = 1; j < k; ++j) {
        const Count xj = e.opinion_count(j);
        mean_min += static_cast<double>(xj);
        min_minority = std::min(min_minority, xj);
      }
      traj.mean_minority.push_back(mean_min / static_cast<double>(k - 1));
      traj.max_difference.push_back(x1 - static_cast<double>(min_minority));
    };

    UsdEngine engine(init.opinion_counts, ctx.seed);
    record(engine);
    Interactions next_sample = stride;
    Interactions doubling_time = -1;
    while (!engine.stabilized() && engine.interactions() < budget) {
      engine.step();
      if (doubling_time < 0 && engine.opinion_count(0) >= doubling_level) {
        doubling_time = engine.interactions();
        record(engine);
      }
      if (engine.interactions() >= next_sample) {
        record(engine);
        next_sample = engine.interactions() + stride;
      }
    }
    record(engine);

    SweepMetrics m = {
        {"stabilized", engine.stabilized() ? 1.0 : 0.0},
        {"parallel_time", engine.time()},
        {"doubled", doubling_time >= 0 ? 1.0 : 0.0},
    };
    if (doubling_time >= 0) {
      m.emplace_back("doubling_parallel_time", parallel_time(doubling_time, n));
      m.emplace_back("doubling_fraction",
                     parallel_time(doubling_time, n) / engine.time());
    }
    return m;
  };

  const SweepResult result = SweepRunner(spec).run(trial);
  const SweepCellResult& cr = result.cells[0];

  const double total_time = cr.values("parallel_time").front();
  benchutil::param("stabilized", cr.rate("stabilized") == 1.0 ? "yes" : "NO (budget hit)");
  benchutil::param("stabilization parallel time", total_time);
  const std::vector<double> doubling_times = cr.values("doubling_parallel_time");
  const bool doubled = cr.values("doubled").front() != 0.0;
  if (doubled) {
    benchutil::param("parallel time to double x1", doubling_times.front());
    benchutil::param("doubling fraction of total",
                     cr.values("doubling_fraction").front());
  } else {
    benchutil::param("parallel time to double x1", "never (stabilized first)");
  }

  // Zoomed table: only samples up to shortly after the doubling event.
  const Trajectory& traj = trajectories[0];
  const double zoom_end = doubled ? doubling_times.front() * 1.1 : total_time;
  Table table({"parallel_time", "majority", "mean_minority", "max_difference"});
  const std::size_t step =
      std::max<std::size_t>(1, traj.time.size() / static_cast<std::size_t>(samples));
  std::vector<double> zt;
  std::vector<double> zmaj;
  std::vector<double> zmin;
  std::vector<double> zdiff;
  for (std::size_t i = 0; i < traj.time.size(); i += step) {
    if (traj.time[i] > zoom_end) break;
    table.row()
        .cell(traj.time[i], 3)
        .cell(traj.majority[i], 0)
        .cell(traj.mean_minority[i], 0)
        .cell(traj.max_difference[i], 0)
        .done();
    zt.push_back(traj.time[i]);
    zmaj.push_back(traj.majority[i]);
    zmin.push_back(traj.mean_minority[i]);
    zdiff.push_back(traj.max_difference[i]);
  }
  benchutil::tsv_block("fig1_right", table);

  AsciiPlot plot(100, 28);
  plot.set_labels("parallel time", "agents");
  plot.add_series("majority x1(t)", 'M', zt, zmaj);
  plot.add_series("mean minority", 'm', zt, zmin);
  plot.add_series("max difference", 'D', zt, zdiff);
  std::cout << plot.render();
  benchutil::finish_sweep(result, opts);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
