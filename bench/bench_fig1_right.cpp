// Reproduces Figure 1 (right): zoom on the window in which the majority
// doubles its initial count. Plots the majority x1(t), the mean minority,
// and the maximum difference max_{j>=2}(x1 - x_j), all un-scaled
// (y range ~ n/10 as in the paper).
//
// Paper observations this run should show:
//   * reaching 2·x1(0) consumes most of the stabilization time (~70 of ~90
//     parallel time units at n = 10^6);
//   * the maximum difference grows slowly (doubling needs Θ(kn)
//     interactions, Lemma 3.4) and only explodes at the very end.
//
// Flags: --n, --k, --seed, --samples, --max-parallel.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "ppsim/analysis/bounds.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/ascii_plot.hpp"
#include "ppsim/util/cli.hpp"

namespace {

using namespace ppsim;

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const Count n = cli.get_int("n", 1'000'000);
  const auto k = static_cast<std::size_t>(
      cli.get_int("k", static_cast<std::int64_t>(bounds::paper_k(n))));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2025));
  const std::int64_t samples = cli.get_int("samples", 400);
  const double max_parallel = cli.get_double("max-parallel", 10000.0);
  cli.validate_no_unknown_flags();

  const InitialConfig init = figure1_configuration(n, k);
  const Count doubling_level = 2 * init.majority();

  benchutil::banner("fig1_right",
                    "Figure 1 (right): majority doubling window with max difference");
  benchutil::param("n", n);
  benchutil::param("k", static_cast<std::int64_t>(k));
  benchutil::param("bias", init.bias);
  benchutil::param("x_majority(0)", init.majority());
  benchutil::param("doubling level 2*x1(0)", doubling_level);
  benchutil::param("seed", static_cast<std::int64_t>(seed));

  UsdEngine engine(init.opinion_counts, seed);
  const auto budget = static_cast<Interactions>(max_parallel * static_cast<double>(n));
  const Interactions stride = std::max<Interactions>(
      1, budget / std::max<std::int64_t>(samples * 100, 1));

  std::vector<double> time;
  std::vector<double> majority;
  std::vector<double> mean_minority;
  std::vector<double> max_difference;  // max_{j>=2}(x1 - x_j)

  auto record = [&](const UsdEngine& e) {
    time.push_back(e.time());
    const auto x1 = static_cast<double>(e.opinion_count(0));
    majority.push_back(x1);
    double mean_min = 0.0;
    Count min_minority = e.opinion_count(1);
    for (Opinion j = 1; j < k; ++j) {
      const Count xj = e.opinion_count(j);
      mean_min += static_cast<double>(xj);
      min_minority = std::min(min_minority, xj);
    }
    mean_minority.push_back(mean_min / static_cast<double>(k - 1));
    max_difference.push_back(x1 - static_cast<double>(min_minority));
  };

  record(engine);
  Interactions next_sample = stride;
  Interactions doubling_time = -1;
  while (!engine.stabilized() && engine.interactions() < budget) {
    engine.step();
    if (doubling_time < 0 && engine.opinion_count(0) >= doubling_level) {
      doubling_time = engine.interactions();
      record(engine);
    }
    if (engine.interactions() >= next_sample) {
      record(engine);
      next_sample = engine.interactions() + stride;
    }
  }
  record(engine);

  const double total_time = engine.time();
  benchutil::param("stabilized", engine.stabilized() ? "yes" : "NO (budget hit)");
  benchutil::param("stabilization parallel time", total_time);
  if (doubling_time >= 0) {
    const double doubling_parallel = parallel_time(doubling_time, n);
    benchutil::param("parallel time to double x1", doubling_parallel);
    benchutil::param("doubling fraction of total", doubling_parallel / total_time);
  } else {
    benchutil::param("parallel time to double x1", "never (stabilized first)");
  }

  // Zoomed table: only samples up to shortly after the doubling event.
  const double zoom_end =
      doubling_time >= 0 ? parallel_time(doubling_time, n) * 1.1 : total_time;
  Table table({"parallel_time", "majority", "mean_minority", "max_difference"});
  const std::size_t step =
      std::max<std::size_t>(1, time.size() / static_cast<std::size_t>(samples));
  std::vector<double> zt;
  std::vector<double> zmaj;
  std::vector<double> zmin;
  std::vector<double> zdiff;
  for (std::size_t i = 0; i < time.size(); i += step) {
    if (time[i] > zoom_end) break;
    table.row()
        .cell(time[i], 3)
        .cell(majority[i], 0)
        .cell(mean_minority[i], 0)
        .cell(max_difference[i], 0)
        .done();
    zt.push_back(time[i]);
    zmaj.push_back(majority[i]);
    zmin.push_back(mean_minority[i]);
    zdiff.push_back(max_difference[i]);
  }
  benchutil::tsv_block("fig1_right", table);

  AsciiPlot plot(100, 28);
  plot.set_labels("parallel time", "agents");
  plot.add_series("majority x1(t)", 'M', zt, zmaj);
  plot.add_series("mean minority", 'm', zt, zmin);
  plot.add_series("max difference", 'D', zt, zdiff);
  std::cout << plot.render();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
