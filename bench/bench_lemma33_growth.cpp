// Lemma 3.3 validation: from the adversarial configuration (every opinion
// starts near n/k < 3n/2k), how many interactions does the *majority*
// opinion need to reach 2n/k? The lemma says at least kn/25 w.h.p. — the
// measured hitting time divided by kn/25 should be >= 1 for every trial,
// and typically much larger (the constant 1/25 is loose).
//
// One sweep cell per k; trials report the hit flag and the hitting time as
// metrics, and violations are counted from the per-trial values.
//
// Flags: --n, --trials, --seed, --kmin, --kmax, --threads, --json,
//        --tau-epsilon (collapsed drift tolerance, default 0.05),
//        --engine auto|sequential|collapsed (auto picks the counts-space
//        collapsed engine above n = 10^7; hitting times are then
//        round-granular — see docs/REPRODUCING.md).
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "ppsim/analysis/bounds.hpp"
#include "ppsim/analysis/hitting_times.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/core/sweep.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/check.hpp"
#include "ppsim/util/cli.hpp"

namespace {

using namespace ppsim;

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const Count n = cli.get_int("n", 100'000);
  const std::int64_t kmin = cli.get_int("kmin", 8);
  const std::int64_t kmax = cli.get_int("kmax", 64);
  const std::string engine_flag = cli.get_string("engine", "auto");
  const double tau_epsilon = cli.get_double("tau-epsilon", 0.05);
  const SweepCliOptions opts = read_sweep_flags(cli, 5, 33, "BENCH_lemma33_growth.json");
  cli.validate_no_unknown_flags();
  opts.scenario.require_only(false, false, false, "bench_lemma33_growth");
  const benchutil::ResolvedEngine engine =
      benchutil::resolve_usd_engine(engine_flag, n, {"collapsed"});

  benchutil::banner(
      "lemma33_growth",
      "Lemma 3.3: interactions for x_1 to reach 2n/k (lower bound: kn/25)");
  benchutil::param("n", n);
  benchutil::param("trials per k", static_cast<std::int64_t>(opts.trials));
  benchutil::param("engine", engine.name);

  SweepSpec spec;
  spec.name = "lemma33_growth";
  opts.configure(spec);
  // --trials auto pins this bench's headline metric.
  spec.stopping.metric = "hit";
  std::vector<InitialConfig> inits;
  std::vector<UndecidedStateDynamics> protocols;
  std::vector<Configuration> initials;
  for (std::int64_t k = kmin; k <= kmax; k *= 2) {
    const auto ku = static_cast<std::size_t>(k);
    inits.push_back(figure1_configuration(n, ku));
    protocols.emplace_back(ku);
    initials.push_back(
        UndecidedStateDynamics::initial_configuration(inits.back().opinion_counts));
    SweepCell cell;
    cell.n = n;
    cell.k = ku;
    cell.bias = static_cast<double>(inits.back().bias);
    cell.engine = engine.kind;
    cell.protocol = engine.protocol_label;
    cell.tau_epsilon = tau_epsilon;
    cell.params = {{"target", bounds::lemma33_target_level(n, ku)},
                   {"bound", bounds::lemma33_interactions(n, ku)}};
    spec.cells.push_back(cell);
  }

  const Interactions budget = sat_mul(100000, n);
  auto trial = [&](const SweepTrial& ctx) -> SweepMetrics {
    const auto target = static_cast<Count>(ctx.cell.param("target", 0.0));
    HittingResult r;
    if (ctx.cell.engine == EngineKind::kCollapsed) {
      Engine sim = ctx.make_engine(protocols[ctx.cell_index], initials[ctx.cell_index]);
      r = time_until_opinion_reaches(sim, 0, target, budget);
    } else {
      UsdEngine sim(inits[ctx.cell_index].opinion_counts, ctx.seed);
      r = time_until_opinion_reaches(sim, 0, target, budget);
    }
    SweepMetrics m = {{"hit", r.hit ? 1.0 : 0.0}};
    // A run that stabilized below the target never violated the bound (the
    // opinion never grew that fast) — it simply reports no hitting time.
    if (r.hit) {
      m.emplace_back("hit_interactions", static_cast<double>(r.interactions_at_hit));
    }
    return m;
  };

  const SweepResult result = SweepRunner(spec).run(trial);

  Table table({"k", "target_2n_over_k", "budget_kn_25", "mean_hit_interactions",
               "min_hit_interactions", "min_ratio_to_bound", "violations"});

  bool bound_held = true;
  for (const SweepCellResult& cr : result.cells) {
    const double bound = cr.cell.param("bound", 0.0);
    std::size_t violations = 0;
    for (const double hit : cr.values("hit_interactions")) {
      if (hit < bound) ++violations;
    }
    bound_held = bound_held && violations == 0;
    const bool any = !cr.values("hit_interactions").empty();
    table.row()
        .cell(static_cast<std::int64_t>(cr.cell.k))
        .cell(static_cast<std::int64_t>(cr.cell.param("target", 0.0)))
        .cell(bound, 0)
        .cell(any ? cr.mean("hit_interactions") : 0.0, 0)
        .cell(any ? cr.min("hit_interactions") : 0.0, 0)
        .cell(any ? cr.min("hit_interactions") / bound : 0.0, 2)
        .cell(static_cast<std::int64_t>(violations))
        .done();
  }

  benchutil::tsv_block("lemma33_growth", table);
  table.write_pretty(std::cout);
  std::cout << (bound_held
                    ? "\nLemma 3.3 bound held on every trial (ratios >> 1: the "
                      "1/25 constant is loose, as expected for a w.h.p. bound).\n"
                    : "\nBOUND VIOLATED — investigate.\n");
  benchutil::finish_sweep(result, opts);
  return bound_held ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
