// Lemma 3.3 validation: from the adversarial configuration (every opinion
// starts near n/k < 3n/2k), how many interactions does the *majority*
// opinion need to reach 2n/k? The lemma says at least kn/25 w.h.p. — the
// measured hitting time divided by kn/25 should be >= 1 for every trial,
// and typically much larger (the constant 1/25 is loose).
//
// Flags: --n, --trials, --seed, --kmin, --kmax, --threads.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "ppsim/analysis/bounds.hpp"
#include "ppsim/analysis/hitting_times.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/core/runner.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/cli.hpp"
#include "ppsim/util/stats.hpp"

namespace {

using namespace ppsim;

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const Count n = cli.get_int("n", 100'000);
  const std::size_t trials = static_cast<std::size_t>(cli.get_int("trials", 5));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 33));
  const std::int64_t kmin = cli.get_int("kmin", 8);
  const std::int64_t kmax = cli.get_int("kmax", 64);
  const auto threads = static_cast<unsigned>(cli.get_int("threads", 0));
  cli.validate_no_unknown_flags();

  benchutil::banner(
      "lemma33_growth",
      "Lemma 3.3: interactions for x_1 to reach 2n/k (lower bound: kn/25)");
  benchutil::param("n", n);
  benchutil::param("trials per k", static_cast<std::int64_t>(trials));

  Table table({"k", "target_2n_over_k", "budget_kn_25", "mean_hit_interactions",
               "min_hit_interactions", "min_ratio_to_bound", "violations"});

  bool bound_held = true;
  for (std::int64_t k = kmin; k <= kmax; k *= 2) {
    const auto ku = static_cast<std::size_t>(k);
    const InitialConfig init = figure1_configuration(n, ku);
    const auto target = static_cast<Count>(bounds::lemma33_target_level(n, ku));
    const double bound = bounds::lemma33_interactions(n, ku);

    RunningStats hit_times;
    std::size_t violations = 0;
    auto trial = [&, target](std::uint64_t trial_seed, std::size_t) {
      UsdEngine engine(init.opinion_counts, trial_seed);
      const HittingResult r =
          time_until_opinion_reaches(engine, 0, target, 100000 * n);
      TrialResult out;
      out.stabilized = r.hit;
      out.interactions = r.hit ? r.interactions_at_hit : r.interactions_used;
      return out;
    };
    const auto results = run_trials(trial, trials, seed + ku, threads);
    for (const auto& r : results) {
      // r.stabilized carries "hit"; a run that stabilized below the target
      // never violated the bound (the opinion never grew that fast).
      if (!r.stabilized) continue;
      hit_times.add(static_cast<double>(r.interactions));
      if (static_cast<double>(r.interactions) < bound) ++violations;
    }
    bound_held = bound_held && violations == 0;
    table.row()
        .cell(k)
        .cell(target)
        .cell(bound, 0)
        .cell(hit_times.count() > 0 ? hit_times.mean() : 0.0, 0)
        .cell(hit_times.count() > 0 ? hit_times.min() : 0.0, 0)
        .cell(hit_times.count() > 0 ? hit_times.min() / bound : 0.0, 2)
        .cell(static_cast<std::int64_t>(violations))
        .done();
  }

  benchutil::tsv_block("lemma33_growth", table);
  table.write_pretty(std::cout);
  std::cout << (bound_held
                    ? "\nLemma 3.3 bound held on every trial (ratios >> 1: the "
                      "1/25 constant is loose, as expected for a w.h.p. bound).\n"
                    : "\nBOUND VIOLATED — investigate.\n");
  return bound_held ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
