// Lemma 3.1 validation: max_t u(t) over full runs, against the paper's
// explicit ceiling n/2 - n/4k + 10n/(k-1)² + (20·13²+1)√(n ln n) and the
// settling point n/2 - n/4k. The ceiling's additive constant is loose by
// design (Oliveto–Witt machinery); the interesting empirical quantity is
// how far above the settle point the excursion actually goes, in units of
// √(n ln n) — the paper's drift analysis says O(1) such units.
//
// Flags: --n, --trials, --seed, --kmin, --kmax, --threads.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <mutex>
#include <vector>

#include "bench_common.hpp"
#include "ppsim/analysis/bounds.hpp"
#include "ppsim/analysis/hitting_times.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/core/runner.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/cli.hpp"

namespace {

using namespace ppsim;

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const Count n = cli.get_int("n", 100'000);
  const std::size_t trials = static_cast<std::size_t>(cli.get_int("trials", 5));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 31));
  const std::int64_t kmin = cli.get_int("kmin", 4);
  const std::int64_t kmax = cli.get_int("kmax", 64);
  const auto threads = static_cast<unsigned>(cli.get_int("threads", 0));
  cli.validate_no_unknown_flags();

  benchutil::banner("lemma31_undecided",
                    "Lemma 3.1: max_t u(t) vs the explicit ceiling and the settle point");
  benchutil::param("n", n);
  benchutil::param("trials per k", static_cast<std::int64_t>(trials));
  benchutil::param("sqrt(n ln n)", std::sqrt(static_cast<double>(n) *
                                             std::log(static_cast<double>(n))));

  Table table({"k", "settle_point", "ceiling", "max_u_worst_trial",
               "excursion_over_settle_in_sqrt_nlogn", "ceiling_respected"});

  bool all_respected = true;
  for (std::int64_t k = kmin; k <= kmax; k *= 2) {
    const auto ku = static_cast<std::size_t>(k);
    const InitialConfig init = figure1_configuration(n, ku);

    std::mutex mu;
    Count worst_max_u = 0;
    auto trial = [&](std::uint64_t trial_seed, std::size_t) {
      UsdEngine engine(init.opinion_counts, trial_seed);
      const UndecidedExcursion exc = max_undecided_over_run(engine, 100000 * n);
      {
        const std::lock_guard<std::mutex> lock(mu);
        worst_max_u = std::max(worst_max_u, exc.max_undecided);
      }
      TrialResult r;
      r.stabilized = exc.stabilized;
      return r;
    };
    run_trials(trial, trials, seed + ku, threads);

    const double settle = bounds::usd_settle_point(n, ku);
    const double ceiling = bounds::lemma31_ceiling(n, ku);
    const double unit =
        std::sqrt(static_cast<double>(n) * std::log(static_cast<double>(n)));
    const double excursion = (static_cast<double>(worst_max_u) - settle) / unit;
    const bool respected = static_cast<double>(worst_max_u) <= ceiling;
    all_respected = all_respected && respected;
    table.row()
        .cell(k)
        .cell(settle, 0)
        .cell(ceiling, 0)
        .cell(worst_max_u)
        .cell(excursion, 3)
        .cell(respected ? "yes" : "NO")
        .done();
  }

  benchutil::tsv_block("lemma31_undecided", table);
  table.write_pretty(std::cout);
  std::cout << (all_respected ? "\nLemma 3.1 ceiling respected on every run.\n"
                              : "\nCEILING VIOLATED — investigate.\n");
  return all_respected ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
