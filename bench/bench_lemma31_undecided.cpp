// Lemma 3.1 validation: max_t u(t) over full runs, against the paper's
// explicit ceiling n/2 - n/4k + 10n/(k-1)² + (20·13²+1)√(n ln n) and the
// settling point n/2 - n/4k. The ceiling's additive constant is loose by
// design (Oliveto–Witt machinery); the interesting empirical quantity is
// how far above the settle point the excursion actually goes, in units of
// √(n ln n) — the paper's drift analysis says O(1) such units.
//
// One sweep cell per k; the worst excursion per cell is the max over the
// per-trial "max_undecided" metric (no shared mutable state needed).
//
// Flags: --n, --trials, --seed, --kmin, --kmax, --threads, --json,
//        --tau-epsilon (collapsed drift tolerance, default 0.05),
//        --engine auto|sequential|collapsed (auto picks the counts-space
//        collapsed engine above n = 10^7; its per-round u(t) sampling makes
//        the excursion measurement round-granular — see docs/REPRODUCING.md).
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "ppsim/analysis/bounds.hpp"
#include "ppsim/analysis/hitting_times.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/core/sweep.hpp"
#include "ppsim/io/archive_run.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/check.hpp"
#include "ppsim/util/cli.hpp"

namespace {

using namespace ppsim;

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const Count n = cli.get_int("n", 100'000);
  const std::int64_t kmin = cli.get_int("kmin", 4);
  const std::int64_t kmax = cli.get_int("kmax", 64);
  const std::string engine_flag = cli.get_string("engine", "auto");
  const double tau_epsilon = cli.get_double("tau-epsilon", 0.05);
  const SweepCliOptions opts =
      read_sweep_flags(cli, 5, 31, "BENCH_lemma31_undecided.json");
  cli.validate_no_unknown_flags();
  opts.scenario.require_only(false, false, false, "bench_lemma31_undecided");
  const benchutil::ResolvedEngine engine =
      benchutil::resolve_usd_engine(engine_flag, n, {"collapsed"});

  benchutil::banner("lemma31_undecided",
                    "Lemma 3.1: max_t u(t) vs the explicit ceiling and the settle point");
  benchutil::param("n", n);
  benchutil::param("trials per k", static_cast<std::int64_t>(opts.trials));
  benchutil::param("engine", engine.name);
  benchutil::param("sqrt(n ln n)", std::sqrt(static_cast<double>(n) *
                                             std::log(static_cast<double>(n))));

  SweepSpec spec;
  spec.name = "lemma31_undecided";
  opts.configure(spec);
  // --trials auto pins this bench's headline metric.
  spec.stopping.metric = "max_undecided";
  std::vector<InitialConfig> inits;
  std::vector<UndecidedStateDynamics> protocols;
  std::vector<Configuration> initials;
  for (std::int64_t k = kmin; k <= kmax; k *= 2) {
    const auto ku = static_cast<std::size_t>(k);
    inits.push_back(figure1_configuration(n, ku));
    protocols.emplace_back(ku);
    initials.push_back(
        UndecidedStateDynamics::initial_configuration(inits.back().opinion_counts));
    SweepCell cell;
    cell.n = n;
    cell.k = ku;
    cell.bias = static_cast<double>(inits.back().bias);
    cell.engine = engine.kind;
    cell.protocol = engine.protocol_label;
    cell.tau_epsilon = tau_epsilon;
    spec.cells.push_back(cell);
  }

  const Interactions budget = sat_mul(100000, n);
  if (!opts.record_to.empty()) {
    std::filesystem::create_directories(opts.record_to);
  }
  auto trial = [&](const SweepTrial& ctx) -> SweepMetrics {
    UndecidedExcursion exc;
    if (!opts.record_to.empty() && ctx.trial == 0 &&
        ctx.cell.engine == EngineKind::kCollapsed) {
      // Archive cell trial 0 while measuring. The engine seed is the same
      // single ctx.rng() draw make_engine takes, and the recorder only
      // observes, so the metric is bit-identical to the unrecorded trial.
      io::ArchiveRunSpec rspec;
      rspec.engine = ctx.cell.engine;
      rspec.protocol_name = "usd";
      rspec.seed = ctx.rng();
      rspec.k = static_cast<Count>(ctx.cell.k);
      rspec.max_interactions = budget;
      rspec.record_stride = std::max<Interactions>(1, n / 10);
      rspec.checkpoint_every = opts.checkpoint_every;
      rspec.round_divisor = ctx.cell.round_divisor;
      rspec.tau_epsilon = ctx.cell.tau_epsilon;
      Engine sim(ctx.cell.engine, protocols[ctx.cell_index],
                 initials[ctx.cell_index], rspec.seed,
                 {.round_divisor = rspec.round_divisor},
                 {.tau_epsilon = rspec.tau_epsilon});
      const io::ArchiveChannels channels = io::usd_archive_channels(ctx.cell.k);
      io::ArchiveRecorder archive(
          rspec, n, protocols[ctx.cell_index].num_states(), channels,
          opts.record_to + "/lemma31_k" + std::to_string(ctx.cell.k) + ".pptraj");
      sim.set_recorder(&archive.recorder());
      archive.recorder().sample(sim.configuration(), 0);
      exc = max_undecided_over_run(sim, budget);
      archive.finalize(sim.configuration(),
                       RecordFinish{.stabilized = sim.is_stable(),
                                    .interactions = sim.interactions(),
                                    .clamped = sim.clamped_interactions(),
                                    .consensus = sim.consensus_output()});
      sim.set_recorder(nullptr);
    } else if (ctx.cell.engine == EngineKind::kCollapsed) {
      Engine sim = ctx.make_engine(protocols[ctx.cell_index], initials[ctx.cell_index]);
      exc = max_undecided_over_run(sim, budget);
    } else {
      UsdEngine sim(inits[ctx.cell_index].opinion_counts, ctx.seed);
      exc = max_undecided_over_run(sim, budget);
    }
    return {
        {"stabilized", exc.stabilized ? 1.0 : 0.0},
        {"max_undecided", static_cast<double>(exc.max_undecided)},
    };
  };

  const SweepResult result = SweepRunner(spec).run(trial);

  Table table({"k", "settle_point", "ceiling", "max_u_worst_trial",
               "excursion_over_settle_in_sqrt_nlogn", "ceiling_respected"});

  bool all_respected = true;
  for (const SweepCellResult& cr : result.cells) {
    const auto ku = cr.cell.k;
    const double settle = bounds::usd_settle_point(n, ku);
    const double ceiling = bounds::lemma31_ceiling(n, ku);
    const double unit =
        std::sqrt(static_cast<double>(n) * std::log(static_cast<double>(n)));
    const double worst_max_u = cr.max("max_undecided");
    const double excursion = (worst_max_u - settle) / unit;
    const bool respected = worst_max_u <= ceiling;
    all_respected = all_respected && respected;
    table.row()
        .cell(static_cast<std::int64_t>(ku))
        .cell(settle, 0)
        .cell(ceiling, 0)
        .cell(static_cast<std::int64_t>(worst_max_u))
        .cell(excursion, 3)
        .cell(respected ? "yes" : "NO")
        .done();
  }

  benchutil::tsv_block("lemma31_undecided", table);
  table.write_pretty(std::cout);
  std::cout << (all_respected ? "\nLemma 3.1 ceiling respected on every run.\n"
                              : "\nCEILING VIOLATED — investigate.\n");
  benchutil::finish_sweep(result, opts);
  return all_respected ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
