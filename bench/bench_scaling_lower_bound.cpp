// The headline experiment (Theorem 3.5): measured stabilization time of USD
// on the adversarial configuration, swept over k at fixed n, compared
// against
//   * the paper's lower bound   (k/25)·ln(√n/(k ln n))   — must lie below
//     every measurement, and
//   * the Amir et al. upper-bound shape k·ln n           — must describe the
//     growth (good proportional fit).
//
// The paper's claim is about *shape*: stabilization time grows ~linearly in
// k (for fixed n), sandwiched between the two bounds, making the lower bound
// "almost tight". One sweep cell per k, fanned out over --threads with
// deterministic per-trial streams; output: one row per k with measured
// mean/min/max parallel time, the two bound values, and the measured/LB
// ratio; then the fitted constants. The unified sweep JSON (--json) carries
// every per-trial value for CI trend tracking.
//
// Flags: --n, --trials, --seed, --kmin, --kmax (sweep is geometric-ish),
//        --threads, --engine auto|sequential|batched|collapsed (auto picks
//        collapsed above n = 10^7 — the counts-space engine makes
//        n = 10^9-10^11 sweeps tractable; see docs/REPRODUCING.md),
//        --round-divisor, --tau-epsilon, --json (empty disables the report).
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "ppsim/analysis/bounds.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/analysis/scaling.hpp"
#include "ppsim/core/sweep.hpp"
#include "ppsim/io/archive_run.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/check.hpp"
#include "ppsim/util/cli.hpp"

namespace {

using namespace ppsim;

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const Count n = cli.get_int("n", 250'000);
  const std::int64_t kmin = cli.get_int("kmin", 8);
  // Stay well inside k = o(√n/ln n): for n = 250k, √n/ln n ≈ 40, so the
  // default sweep tops out at 32 (the bound degenerates beyond).
  const std::int64_t kmax = cli.get_int("kmax", 32);
  const std::string engine_flag = cli.get_string("engine", "auto");
  const Interactions round_divisor = cli.get_int("round-divisor", 16);
  const double tau_epsilon = cli.get_double("tau-epsilon", 0.05);
  const SweepCliOptions opts =
      read_sweep_flags(cli, 5, 7, "BENCH_scaling_lower_bound.json");
  cli.validate_no_unknown_flags();
  opts.scenario.require_only(false, false, false, "bench_scaling_lower_bound");
  const benchutil::ResolvedEngine engine =
      benchutil::resolve_usd_engine(engine_flag, n, {"batched", "collapsed"});

  benchutil::banner("scaling_lower_bound",
                    "Theorem 3.5: stabilization time vs k, against LB (k/25)ln(sqrt(n)/(k ln n)) "
                    "and UB shape k ln n");
  benchutil::param("n", n);
  benchutil::param("trials per k", static_cast<std::int64_t>(opts.trials));
  benchutil::param("seed", static_cast<std::int64_t>(opts.seed));
  benchutil::param("engine", engine.name);
  benchutil::param("threads", static_cast<std::int64_t>(opts.threads));

  SweepSpec spec;
  spec.name = "scaling_lower_bound";
  opts.configure(spec);
  std::vector<InitialConfig> inits;
  std::vector<UndecidedStateDynamics> protocols;
  std::vector<Configuration> initials;
  for (std::int64_t k = kmin; k <= kmax; k = (k * 3) / 2) {
    const auto ku = static_cast<std::size_t>(k);
    inits.push_back(figure1_configuration(n, ku));
    protocols.emplace_back(ku);
    initials.push_back(
        UndecidedStateDynamics::initial_configuration(inits.back().opinion_counts));
    SweepCell cell;
    cell.n = n;
    cell.k = ku;
    cell.bias = static_cast<double>(inits.back().bias);
    cell.engine = engine.kind;
    cell.protocol = engine.protocol_label;
    cell.round_divisor = round_divisor;
    cell.tau_epsilon = tau_epsilon;
    spec.cells.push_back(cell);
  }

  const Interactions budget = sat_mul(100000, n);
  if (!opts.record_to.empty()) {
    std::filesystem::create_directories(opts.record_to);
  }
  auto trial = [&](const SweepTrial& ctx) -> SweepMetrics {
    TrialResult r;
    if (!opts.record_to.empty() && ctx.trial == 0 &&
        ctx.cell.engine != EngineKind::kSequential) {
      // Archive cell trial 0. record_run builds the engine with the exact
      // draw make_engine would take (one ctx.rng() call), so the recorded
      // trial's metrics are bit-identical to the unrecorded ones.
      io::ArchiveRunSpec rspec;
      rspec.engine = ctx.cell.engine;
      rspec.protocol_name = "usd";
      rspec.seed = ctx.rng();
      rspec.k = static_cast<Count>(ctx.cell.k);
      rspec.max_interactions = budget;
      rspec.checkpoint_every = opts.checkpoint_every;
      rspec.round_divisor = ctx.cell.round_divisor;
      rspec.tau_epsilon = ctx.cell.tau_epsilon;
      const std::string path =
          opts.record_to + "/scaling_k" + std::to_string(ctx.cell.k) + ".pptraj";
      const RunOutcome out =
          io::record_run(protocols[ctx.cell_index], initials[ctx.cell_index],
                         io::usd_archive_channels(ctx.cell.k), rspec, path);
      r.stabilized = out.stabilized;
      r.interactions = out.interactions;
      r.clamped = out.clamped;
      r.parallel_time = parallel_time(out.interactions, n);
      r.winner = out.consensus;
    } else if (ctx.cell.engine != EngineKind::kSequential) {
      Engine sim = ctx.make_engine(protocols[ctx.cell_index], initials[ctx.cell_index]);
      r = run_engine_trial(sim, budget);
    } else {
      UsdEngine e(inits[ctx.cell_index].opinion_counts, ctx.seed);
      e.run_until_stable(budget);
      r.stabilized = e.stabilized();
      r.interactions = e.interactions();
      r.parallel_time = e.time();
      r.winner = e.winner();
    }
    return consensus_metrics(r);
  };

  const SweepResult result = SweepRunner(spec).run(trial);

  Table table({"k", "bias", "mean_parallel_time", "min", "max", "lower_bound",
               "upper_bound_kln_n", "measured_over_lb"});
  std::vector<ScalingPoint> points;
  for (const SweepCellResult& cr : result.cells) {
    const std::size_t k = cr.cell.k;
    const double lb = bounds::theorem35_parallel_lower_bound(n, k);
    const double ub = bounds::amir_parallel_upper_bound(n, k);
    // Stabilized trials only: a budget-capped trial would smuggle the
    // 100000-parallel-time budget into the fit and the LB-ratio verdict.
    const double mean = cr.mean_where("parallel_time", "stabilized");
    table.row()
        .cell(static_cast<std::int64_t>(k))
        .cell(static_cast<std::int64_t>(cr.cell.bias))
        .cell(mean, 2)
        .cell(cr.min_where("parallel_time", "stabilized"), 2)
        .cell(cr.max_where("parallel_time", "stabilized"), 2)
        .cell(lb, 3)
        .cell(ub, 1)
        .cell(lb > 0 ? mean / lb : 0.0, 2)
        .done();
    points.push_back({n, k, mean});
    const auto stabilized =
        static_cast<std::size_t>(cr.rate("stabilized") *
                                 static_cast<double>(cr.trials.size()) + 0.5);
    std::cout << "  k=" << k << " done: mean parallel time " << format_double(mean, 2)
              << " (" << stabilized << "/" << cr.trials.size() << " stabilized, majority won "
              << format_double(cr.rate("majority_win") * 100.0, 1) << "%)\n";
  }

  benchutil::tsv_block("scaling_lower_bound", table);
  table.write_pretty(std::cout);

  const ScalingFit fit = fit_scaling(points);
  std::cout << "\naffine fit T = a*k + b (the testable form of the Θ(k·log) sandwich):\n"
            << "  a = " << format_double(fit.affine_in_k.slope, 3)
            << ", b = " << format_double(fit.affine_in_k.intercept, 2)
            << ", R^2 = " << format_double(fit.affine_in_k.r_squared, 4) << "\n";
  std::cout << "proportional fit vs LB shape k·ln(sqrt(n)/(k ln n)): c = "
            << format_double(fit.lower_bound_shape.slope, 3)
            << " (log factor ~constant at this n; see EXPERIMENTS.md)\n";
  std::cout << "proportional fit vs UB shape k·ln n:                 c = "
            << format_double(fit.upper_bound_shape.slope, 3) << "\n";
  std::cout << "min measured/LB ratio: "
            << format_double(fit.min_ratio_to_lower_bound, 2)
            << (fit.min_ratio_to_lower_bound >= 1.0
                    ? "  -> lower bound HOLDS on every point\n"
                    : "  -> LOWER BOUND VIOLATED\n");
  const bool linear_in_k = fit.affine_in_k.r_squared > 0.9;
  std::cout << (linear_in_k ? "growth is linear in k (R^2 > 0.9)\n"
                            : "WARNING: growth not cleanly linear in k\n");

  benchutil::finish_sweep(result, opts);
  return fit.min_ratio_to_lower_bound >= 1.0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
