// The headline experiment (Theorem 3.5): measured stabilization time of USD
// on the adversarial configuration, swept over k at fixed n, compared
// against
//   * the paper's lower bound   (k/25)·ln(√n/(k ln n))   — must lie below
//     every measurement, and
//   * the Amir et al. upper-bound shape k·ln n           — must describe the
//     growth (good proportional fit).
//
// The paper's claim is about *shape*: stabilization time grows ~linearly in
// k (for fixed n), sandwiched between the two bounds, making the lower bound
// "almost tight". Output: one row per k with measured mean/min/max parallel
// time, the two bound values, and the measured/LB ratio; then the fitted
// constants.
//
// Flags: --n, --trials, --seed, --kmin, --kmax (sweep is geometric-ish),
//        --threads, --engine sequential|batched (batched makes paper-scale n
//        practical), --round-divisor, --json (empty disables the report).
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "ppsim/analysis/bounds.hpp"
#include "ppsim/analysis/initial.hpp"
#include "ppsim/analysis/scaling.hpp"
#include "ppsim/core/batched_simulator.hpp"
#include "ppsim/core/runner.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/check.hpp"
#include "ppsim/util/cli.hpp"
#include "ppsim/util/stats.hpp"

namespace {

using namespace ppsim;

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const Count n = cli.get_int("n", 250'000);
  const std::size_t trials = static_cast<std::size_t>(cli.get_int("trials", 5));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const std::int64_t kmin = cli.get_int("kmin", 8);
  // Stay well inside k = o(√n/ln n): for n = 250k, √n/ln n ≈ 40, so the
  // default sweep tops out at 32 (the bound degenerates beyond).
  const std::int64_t kmax = cli.get_int("kmax", 32);
  const auto threads = static_cast<unsigned>(cli.get_int("threads", 0));
  const std::string engine = cli.get_string("engine", "sequential");
  const Interactions round_divisor = cli.get_int("round-divisor", 16);
  const std::string json_path = cli.get_string("json", "BENCH_scaling_lower_bound.json");
  cli.validate_no_unknown_flags();
  PPSIM_CHECK(engine == "sequential" || engine == "batched",
              "--engine must be sequential or batched");

  benchutil::banner("scaling_lower_bound",
                    "Theorem 3.5: stabilization time vs k, against LB (k/25)ln(sqrt(n)/(k ln n)) "
                    "and UB shape k ln n");
  benchutil::param("n", n);
  benchutil::param("trials per k", static_cast<std::int64_t>(trials));
  benchutil::param("seed", static_cast<std::int64_t>(seed));
  benchutil::param("engine", engine);

  std::vector<std::size_t> ks;
  for (std::int64_t k = kmin; k <= kmax; k = (k * 3) / 2) {
    ks.push_back(static_cast<std::size_t>(k));
  }

  Table table({"k", "bias", "mean_parallel_time", "min", "max", "lower_bound",
               "upper_bound_kln_n", "measured_over_lb"});
  std::vector<ScalingPoint> points;
  std::vector<benchutil::JsonObject> json_rows;

  for (const std::size_t k : ks) {
    const InitialConfig init = figure1_configuration(n, k);
    const UndecidedStateDynamics usd(k);
    const Configuration initial =
        UndecidedStateDynamics::initial_configuration(init.opinion_counts);
    auto trial = [&](std::uint64_t trial_seed, std::size_t) {
      TrialResult r;
      if (engine == "batched") {
        BatchedSimulator sim(usd, initial, trial_seed, {.round_divisor = round_divisor});
        const RunOutcome out = sim.run_until_stable(100000 * n);
        r.stabilized = out.stabilized;
        r.interactions = out.interactions;
        r.parallel_time = sim.parallel_time();
        r.winner = out.consensus;
      } else {
        UsdEngine e(init.opinion_counts, trial_seed);
        e.run_until_stable(100000 * n);
        r.stabilized = e.stabilized();
        r.interactions = e.interactions();
        r.parallel_time = e.time();
        r.winner = e.winner();
      }
      return r;
    };
    const auto results = run_trials(trial, trials, seed + k, threads);
    const TrialAggregate agg = aggregate(results);
    const double lb = bounds::theorem35_parallel_lower_bound(n, k);
    const double ub = bounds::amir_parallel_upper_bound(n, k);
    const double mean = agg.parallel_time.mean();
    table.row()
        .cell(static_cast<std::int64_t>(k))
        .cell(init.bias)
        .cell(mean, 2)
        .cell(agg.parallel_time.min(), 2)
        .cell(agg.parallel_time.max(), 2)
        .cell(lb, 3)
        .cell(ub, 1)
        .cell(lb > 0 ? mean / lb : 0.0, 2)
        .done();
    points.push_back({n, k, mean});
    benchutil::JsonObject row;
    row.field("k", static_cast<std::int64_t>(k))
        .field("bias", init.bias)
        .field("mean_parallel_time", mean)
        .field("min", agg.parallel_time.min())
        .field("max", agg.parallel_time.max())
        .field("lower_bound", lb)
        .field("upper_bound_kln_n", ub)
        .field("stabilized", static_cast<std::int64_t>(agg.stabilized));
    json_rows.push_back(row);
    std::cout << "  k=" << k << " done: mean parallel time " << format_double(mean, 2)
              << " (" << agg.stabilized << "/" << trials << " stabilized, majority won "
              << format_double(agg.win_rate(0) * 100.0, 1) << "%)\n";
  }

  benchutil::tsv_block("scaling_lower_bound", table);
  table.write_pretty(std::cout);

  const ScalingFit fit = fit_scaling(points);
  std::cout << "\naffine fit T = a*k + b (the testable form of the Θ(k·log) sandwich):\n"
            << "  a = " << format_double(fit.affine_in_k.slope, 3)
            << ", b = " << format_double(fit.affine_in_k.intercept, 2)
            << ", R^2 = " << format_double(fit.affine_in_k.r_squared, 4) << "\n";
  std::cout << "proportional fit vs LB shape k·ln(sqrt(n)/(k ln n)): c = "
            << format_double(fit.lower_bound_shape.slope, 3)
            << " (log factor ~constant at this n; see EXPERIMENTS.md)\n";
  std::cout << "proportional fit vs UB shape k·ln n:                 c = "
            << format_double(fit.upper_bound_shape.slope, 3) << "\n";
  std::cout << "min measured/LB ratio: "
            << format_double(fit.min_ratio_to_lower_bound, 2)
            << (fit.min_ratio_to_lower_bound >= 1.0
                    ? "  -> lower bound HOLDS on every point\n"
                    : "  -> LOWER BOUND VIOLATED\n");
  const bool linear_in_k = fit.affine_in_k.r_squared > 0.9;
  std::cout << (linear_in_k ? "growth is linear in k (R^2 > 0.9)\n"
                            : "WARNING: growth not cleanly linear in k\n");

  if (!json_path.empty()) {
    benchutil::JsonObject report;
    report.field("bench", "scaling_lower_bound")
        .field("n", n)
        .field("trials_per_k", static_cast<std::int64_t>(trials))
        .field("seed", static_cast<std::int64_t>(seed))
        .field("engine", engine)
        .field("round_divisor", round_divisor)
        .field("rows", json_rows)
        .field("affine_slope", fit.affine_in_k.slope)
        .field("affine_r_squared", fit.affine_in_k.r_squared)
        .field("min_ratio_to_lower_bound", fit.min_ratio_to_lower_bound)
        .field("lower_bound_holds", fit.min_ratio_to_lower_bound >= 1.0);
    report.write_file(json_path);
    std::cout << "json report written to " << json_path << "\n";
  }
  return fit.min_ratio_to_lower_bound >= 1.0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
