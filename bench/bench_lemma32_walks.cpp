// Lemma 3.2 validation: Monte-Carlo escape probabilities of the lazy ±1
// walk against the analytic Bernstein-based bound
//   P[Y reaches T within T/2q steps] <= exp(-(T²/8)/(N(p-q²) + 2T/3)).
// Also demonstrates the "laziness tames variance" phenomenon the paper's
// technical overview highlights: for fixed drift and budget, smaller p means
// exponentially fewer escapes.
//
// One sweep cell per walk configuration (the ablation configs are cells of
// the same sweep, tagged protocol = "laziness-ablation"), each trial running
// --walks walks from its private stream.
//
// Flags: --walks, --seed, --trials, --threads, --json.
#include <cmath>
#include <cstdint>
#include <iostream>

#include "bench_common.hpp"
#include "ppsim/analysis/bounds.hpp"
#include "ppsim/analysis/random_walks.hpp"
#include "ppsim/core/sweep.hpp"
#include "ppsim/util/cli.hpp"

namespace {

using namespace ppsim;

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::int64_t walks = cli.get_int("walks", 4000);
  const SweepCliOptions opts = read_sweep_flags(cli, 1, 32, "BENCH_lemma32_walks.json");
  cli.validate_no_unknown_flags();
  opts.scenario.require_only(false, false, false, "bench_lemma32_walks");

  benchutil::banner("lemma32_walks",
                    "Lemma 3.2: lazy-walk escape probabilities vs the analytic bound");
  benchutil::param("walks per configuration", walks);

  struct Config {
    double p;
    double q;
    std::int64_t level;
  };
  // Regimes mirroring the lemma's uses: Lemma 3.3 uses p ≈ 5/k, q ≈ 6.25/k²,
  // T = n/2k; Lemma 3.4 uses p ≈ 9/k, q ≈ 6α/nk, T = α/2. Scaled-down
  // instances keep the Monte-Carlo affordable.
  const Config configs[] = {
      {0.20, 0.0050, 60},  {0.20, 0.0100, 60},  {0.10, 0.0050, 60},
      {0.40, 0.0050, 80},  {0.05, 0.0025, 40},  {0.80, 0.0100, 100},
  };

  SweepSpec spec;
  spec.name = "lemma32_walks";
  opts.configure(spec);
  // --trials auto pins this bench's headline metric.
  spec.stopping.metric = "empirical_escape";
  for (const Config& cfg : configs) {
    const auto steps =
        static_cast<std::int64_t>(static_cast<double>(cfg.level) / (2.0 * cfg.q));
    SweepCell cell;
    cell.protocol = "lazy-walk";
    cell.params = {{"p", cfg.p},
                   {"q", cfg.q},
                   {"level", static_cast<double>(cfg.level)},
                   {"steps", static_cast<double>(steps)}};
    spec.cells.push_back(cell);
  }
  // Laziness ablation: same drift/budget, escape rate vs p.
  for (const double p : {0.05, 0.1, 0.2, 0.4, 0.8}) {
    SweepCell cell;
    cell.protocol = "laziness-ablation";
    cell.params = {{"p", p}, {"q", 0.0}, {"level", 30.0}, {"steps", 20000.0}};
    spec.cells.push_back(cell);
  }

  auto trial = [&](const SweepTrial& ctx) -> SweepMetrics {
    const EscapeEstimate est = estimate_escape_probability(
        ctx.cell.param("p", 0.0), ctx.cell.param("q", 0.0),
        static_cast<std::int64_t>(ctx.cell.param("level", 0.0)),
        static_cast<std::int64_t>(ctx.cell.param("steps", 0.0)), walks, ctx.seed);
    return {{"empirical_escape", est.probability}};
  };

  const SweepResult result = SweepRunner(spec).run(trial);

  Table table({"p", "q", "level_T", "steps_T_over_2q", "analytic_bound",
               "empirical_escape", "respected"});
  Table ablation({"p", "empirical_escape"});
  bool all_ok = true;
  for (const SweepCellResult& cr : result.cells) {
    const double p = cr.cell.param("p", 0.0);
    const double empirical = cr.mean("empirical_escape");
    if (cr.cell.protocol == "laziness-ablation") {
      ablation.row().cell(p, 2).cell(empirical, 4).done();
      continue;
    }
    const double q = cr.cell.param("q", 0.0);
    const double level = cr.cell.param("level", 0.0);
    const double steps = cr.cell.param("steps", 0.0);
    const double analytic = bounds::lemma32_escape_bound(level, p, q, steps);
    // Empirical estimate must not exceed bound + 3 binomial sigma.
    const double sigma =
        std::sqrt(std::max(analytic * (1 - analytic), 1e-6) /
                  static_cast<double>(walks));
    const bool ok = empirical <= analytic + 3.0 * sigma + 0.005;
    all_ok = all_ok && ok;
    table.row()
        .cell(p, 3)
        .cell(q, 4)
        .cell(static_cast<std::int64_t>(level))
        .cell(static_cast<std::int64_t>(steps))
        .cell(analytic, 5)
        .cell(empirical, 5)
        .cell(ok ? "yes" : "NO")
        .done();
  }

  benchutil::tsv_block("lemma32_walks", table);
  table.write_pretty(std::cout);

  std::cout << "\nLaziness ablation (drift q = 0, level 30, 20000 steps):\n";
  benchutil::tsv_block("lemma32_laziness_ablation", ablation);
  ablation.write_pretty(std::cout);

  std::cout << (all_ok ? "\nAnalytic bound respected in every configuration.\n"
                       : "\nBOUND VIOLATED — investigate.\n");
  benchutil::finish_sweep(result, opts);
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
