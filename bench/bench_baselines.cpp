// Baseline comparison (related-work landscape, Section 1.2): stabilization
// time of the two-opinion protocols on the same inputs —
//   * USD (3 states, approximate majority, fast with bias),
//   * 4-state exact majority (slow for small bias: Θ(n log n / d)),
//   * quantized averaging (many states, fast even with minimal bias),
//   * synchronized USD (phase-gated; convergence measured to opinion
//     consensus since its clock never stops).
// Swept over the initial difference d to exhibit the crossovers the
// literature describes: exactness costs time at small d; state count buys
// that time back. One sweep cell per (bias, protocol) pair, fanned out over
// --threads with deterministic per-trial streams.
//
// Flags: --n, --trials, --seed, --threads, --avg-resolution, --json.
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "ppsim/core/sweep.hpp"
#include "ppsim/protocols/averaging_majority.hpp"
#include "ppsim/protocols/four_state_majority.hpp"
#include "ppsim/protocols/synchronized_usd.hpp"
#include "ppsim/protocols/usd.hpp"
#include "ppsim/util/cli.hpp"

namespace {

using namespace ppsim;

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const Count n = cli.get_int("n", 10'000);
  const Count avg_resolution = cli.get_int("avg-resolution", 1 << 14);
  const SweepCliOptions opts = read_sweep_flags(cli, 5, 5, "BENCH_baselines.json");
  cli.validate_no_unknown_flags();
  opts.scenario.require_only(false, false, false, "bench_baselines");

  benchutil::banner("baselines",
                    "Two-opinion majority baselines: parallel time to stabilize vs bias");
  benchutil::param("n", n);
  benchutil::param("trials", static_cast<std::int64_t>(opts.trials));
  benchutil::param("averaging resolution m", avg_resolution);

  const std::vector<Count> biases = {2, 16, 128, 1024};
  const std::vector<std::string> protocols = {"usd", "four-state", "averaging",
                                              "sync-usd"};
  const Interactions budget = 100000 * n;

  SweepSpec spec;
  spec.name = "baselines";
  opts.configure(spec);
  for (const Count d : biases) {
    for (const std::string& protocol : protocols) {
      SweepCell cell;
      cell.n = n;
      cell.k = 2;
      cell.bias = static_cast<double>(d);
      cell.protocol = protocol;
      cell.engine = protocol == "averaging" ? EngineKind::kSequentialVirtual
                                            : EngineKind::kSequential;
      cell.name = protocol + " d=" + std::to_string(d);
      spec.cells.push_back(cell);
    }
  }

  const FourStateMajority four;
  const AveragingMajority avg(avg_resolution);
  const SynchronizedUsd sync(2, 8);

  auto trial = [&](const SweepTrial& ctx) -> SweepMetrics {
    const auto d = static_cast<Count>(ctx.cell.bias);
    const Count a = (n + d) / 2;
    const Count b = n - a;
    TrialResult r;
    if (ctx.cell.protocol == "usd") {
      UsdEngine engine({a, b}, ctx.seed);
      engine.run_until_stable(budget);
      r.stabilized = engine.stabilized();
      r.interactions = engine.interactions();
      r.parallel_time = engine.time();
      r.winner = engine.winner();
    } else if (ctx.cell.protocol == "four-state") {
      Engine sim = ctx.make_engine(four, FourStateMajority::initial(a, b));
      r = run_engine_trial(sim, budget);
    } else if (ctx.cell.protocol == "averaging") {
      Engine sim = ctx.make_engine(avg, avg.initial(a, b));
      r = run_engine_trial(sim, budget);
    } else {  // sync-usd: convergence = opinion consensus, checked per round
      Simulator sim(sync, sync.initial({a, b}), ctx.seed);
      while (sim.interactions() < budget) {
        for (Count i = 0; i < n; ++i) sim.step();
        if (sync.consensus_opinion(sim.configuration()).has_value()) {
          r.stabilized = true;
          break;
        }
      }
      r.interactions = sim.interactions();
      r.parallel_time = sim.parallel_time();
      r.winner = sync.consensus_opinion(sim.configuration());
    }
    return consensus_metrics(r);
  };

  const SweepResult result = SweepRunner(spec).run(trial);

  Table table({"bias", "usd_3state", "four_state", "averaging", "sync_usd",
               "usd_exact_rate", "four_state_exact_rate"});
  for (std::size_t bi = 0; bi < biases.size(); ++bi) {
    const std::size_t base = bi * protocols.size();
    const SweepCellResult& usd_cell = result.cells[base + 0];
    const SweepCellResult& four_cell = result.cells[base + 1];
    const SweepCellResult& avg_cell = result.cells[base + 2];
    const SweepCellResult& sync_cell = result.cells[base + 3];
    table.row()
        .cell(biases[bi])
        .cell(usd_cell.mean_where("parallel_time", "stabilized"), 2)
        .cell(four_cell.mean_where("parallel_time", "stabilized"), 2)
        .cell(avg_cell.mean_where("parallel_time", "stabilized"), 2)
        .cell(sync_cell.mean_where("parallel_time", "stabilized"), 2)
        .cell(usd_cell.rate("majority_win"), 3)
        .cell(four_cell.rate("majority_win"), 3)
        .done();
    std::cout << "  bias=" << biases[bi] << " done\n";
  }

  benchutil::tsv_block("baselines", table);
  table.write_pretty(std::cout);
  std::cout << "\nExpected shape: 4-state time ~ 1/bias (exactness tax at small d);\n"
               "averaging nearly flat in bias (state count amplifies it);\n"
               "USD fast but only *approximately* correct at tiny bias\n"
               "(usd_exact_rate < 1 at bias 2, = 1 at bias >= 128).\n";
  benchutil::finish_sweep(result, opts);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
